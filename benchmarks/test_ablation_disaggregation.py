"""Ablation: scaling out GPU servers behind the backend (§IV).

Compares 1×4-GPU server against 2×2-GPU servers (same total GPUs) under
heavy load with least-loaded and round-robin routing.  Disaggregation's
"schedule anywhere" promise: splitting the pool behind a load-aware
backend should cost little; naive round-robin costs more.
"""

import pytest

from repro.core import DgsfConfig
from repro.experiments import render_table
from repro.experiments.runner import make_plan, run_mixed_scenario
from repro.workloads import SMALLER_WORKLOAD_NAMES


@pytest.mark.experiment("ablation-disaggregation")
def test_gpu_server_scale_out(once):
    def run():
        plan = make_plan("exponential", seed=9, copies=8,
                         names=SMALLER_WORKLOAD_NAMES, mean_gap_s=2.0)
        rows = []
        results = {}
        configs = [
            ("1x4gpu", dict(num_gpus=4, num_gpu_servers=1)),
            ("2x2gpu_least_loaded", dict(num_gpus=2, num_gpu_servers=2,
                                         backend_policy="least_loaded")),
            ("2x2gpu_round_robin", dict(num_gpus=2, num_gpu_servers=2,
                                        backend_policy="round_robin")),
        ]
        for label, overrides in configs:
            cfg = DgsfConfig(seed=9, api_servers_per_gpu=1, **overrides)
            result = run_mixed_scenario(cfg, plan)
            results[label] = result.stats
            rows.append({
                "config": label,
                "provider_e2e_s": round(result.stats.provider_e2e_s, 1),
                "fn_e2e_sum_s": round(result.stats.function_e2e_sum_s, 1),
            })
        return rows, results

    rows, results = once(run)
    print()
    print(render_table(
        "Ablation — one big GPU server vs two small ones (same total GPUs)",
        rows,
    ))

    one_big = results["1x4gpu"]
    two_ll = results["2x2gpu_least_loaded"]
    two_rr = results["2x2gpu_round_robin"]
    # Splitting the pool can only lose scheduling flexibility; with a
    # load-aware backend the loss stays modest (statistical multiplexing).
    assert two_ll.function_e2e_sum_s >= one_big.function_e2e_sum_s * 0.95
    assert two_ll.function_e2e_sum_s <= one_big.function_e2e_sum_s * 1.6
    # Load-blind round-robin is no better than least-loaded.
    assert two_rr.function_e2e_sum_s >= two_ll.function_e2e_sum_s * 0.95
