"""Ablation: FCFS (the paper's deployed policy) vs shortest-function-first
(its stated future work, §VIII-D)."""

import pytest

from repro.core import DgsfConfig
from repro.experiments import render_table
from repro.experiments.runner import make_plan, run_mixed_scenario


def _mean_queue(stats):
    total = sum(ws.count for ws in stats.per_workload.values())
    return sum(ws.mean_queue_s * ws.count for ws in stats.per_workload.values()) / total


@pytest.mark.experiment("ablation-scheduling")
def test_fcfs_vs_sff(once):
    def run():
        plan = make_plan("exponential", seed=5, copies=8, mean_gap_s=2.0)
        rows = []
        per_discipline = {}
        for discipline in ("fcfs", "sff"):
            cfg = DgsfConfig(num_gpus=4, api_servers_per_gpu=2,
                             queue_discipline=discipline, seed=5)
            result = run_mixed_scenario(cfg, plan)
            per_discipline[discipline] = result.stats
            rows.append({
                "discipline": discipline,
                "provider_e2e_s": round(result.stats.provider_e2e_s, 1),
                "fn_e2e_sum_s": round(result.stats.function_e2e_sum_s, 1),
                "mean_queue_s": round(_mean_queue(result.stats), 2),
            })
        return rows, per_discipline

    rows, stats = once(run)
    print()
    print(render_table(
        "Ablation — queue discipline under heavy load (paper future work)",
        rows,
    ))

    fcfs, sff = stats["fcfs"], stats["sff"]
    # SFF improves throughput: lower mean queueing and total E2E sum.
    assert _mean_queue(sff) < _mean_queue(fcfs)
    assert sff.function_e2e_sum_s < fcfs.function_e2e_sum_s
    # The fairness loss: the longest workload (NLP) waits at least as long
    # under SFF as the short workloads do, relative to FCFS.
    short_gain = (
        fcfs.per_workload["kmeans"].mean_queue_s
        - sff.per_workload["kmeans"].mean_queue_s
    )
    long_gain = (
        fcfs.per_workload["nlp_qa"].mean_queue_s
        - sff.per_workload["nlp_qa"].mean_queue_s
    )
    assert short_gain >= long_gain - 1.0, "short functions benefit the most"
