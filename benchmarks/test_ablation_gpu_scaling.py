"""Ablation: GPU-count elasticity of one GPU server (§IV).

"For our evaluation we use one GPU server with four GPUs, but AWS
provides machines with up to eight GPUs."  Disaggregation's provisioning
promise: the provider scales the GPU pool independently of the function
fleet.  We sweep the GPU count under a fixed heavy arrival plan.
"""

import pytest

from repro.core import DgsfConfig
from repro.experiments import render_table
from repro.experiments.runner import make_plan, run_mixed_scenario
from repro.workloads import SMALLER_WORKLOAD_NAMES


@pytest.mark.experiment("ablation-gpu-scaling")
def test_gpu_count_sweep(once):
    def run():
        plan = make_plan("exponential", seed=4, copies=6,
                         names=SMALLER_WORKLOAD_NAMES, mean_gap_s=1.5)
        rows = []
        for gpus in (1, 2, 4, 8):
            cfg = DgsfConfig(num_gpus=gpus, api_servers_per_gpu=1, seed=4)
            result = run_mixed_scenario(cfg, plan)
            mean_queue = sum(
                ws.mean_queue_s * ws.count
                for ws in result.stats.per_workload.values()
            ) / len(result.invocations)
            rows.append({
                "gpus": gpus,
                "provider_e2e_s": round(result.stats.provider_e2e_s, 1),
                "fn_e2e_sum_s": round(result.stats.function_e2e_sum_s, 1),
                "mean_queue_s": round(mean_queue, 2),
            })
        return rows

    rows = once(run)
    print()
    print(render_table(
        "Ablation — GPU pool size under a fixed heavy arrival plan "
        "(smaller workloads, 24 invocations)",
        rows,
    ))

    by = {r["gpus"]: r for r in rows}
    # More GPUs monotonically reduce queueing and total function E2E.
    for a, b in ((1, 2), (2, 4), (4, 8)):
        assert by[b]["mean_queue_s"] <= by[a]["mean_queue_s"] + 0.01, (a, b)
        assert by[b]["fn_e2e_sum_s"] <= by[a]["fn_e2e_sum_s"] + 0.1, (a, b)
    # Severe contention at 1 GPU, near-zero queueing at 8.
    assert by[1]["mean_queue_s"] > 10 * max(by[8]["mean_queue_s"], 0.2)
    # Diminishing returns: the 4→8 step helps less than 1→2.
    gain_12 = by[1]["fn_e2e_sum_s"] - by[2]["fn_e2e_sum_s"]
    gain_48 = by[4]["fn_e2e_sum_s"] - by[8]["fn_e2e_sum_s"]
    assert gain_12 > gain_48
