"""Chaos ablation: fault injection vs. liveness and recovery cost.

DGSF's control plane must survive API-server crashes and a lossy guest
link: the monitor detects dead servers through missed §V-A ③ heartbeats,
uncommits their charges, rescues orphaned requests and re-brings the
server up (re-paying the 755 MB idle footprint).  This sweep raises the
per-session crash probability from 0 to 0.2 on top of a lossy link and
checks the two properties that make the fault model trustworthy:

* **liveness** — every invocation reaches a terminal status; nothing
  wedges waiting on a dead server,
* **consistency** — the invariant auditor finds no leaked charges,
  reservations or allocations once the dust settles, and every GPU is
  schedulable again.

Completed work also shouldn't get much slower: survivors pay at most
retry backoff and queue-behind-recovery delays.
"""

import pytest

from repro.core import DgsfConfig, FaultPlan
from repro.experiments import render_table
from repro.experiments.runner import make_plan, run_chaos_scenario


def chaos_plan(crash_prob: float) -> FaultPlan:
    return FaultPlan(
        server_crash_prob=crash_prob,
        crash_after_calls=(1, 20),
        link_drop_prob=0.005 if crash_prob > 0 else 0.0,
        delay_spike_prob=0.02 if crash_prob > 0 else 0.0,
        delay_spike_s=0.2,
        partitions=((40.0, 42.0),) if crash_prob > 0 else (),
    )


def run_level(crash_prob: float):
    config = DgsfConfig(
        num_gpus=2,
        api_servers_per_gpu=2,
        seed=3,
        fault_plan=chaos_plan(crash_prob),
        rpc_timeout_s=20.0,
        rpc_max_retries=2,
        rpc_retry_backoff_s=0.5,
    )
    plan = make_plan("exponential", seed=3, copies=2)
    result = run_chaos_scenario(config, plan)
    out = result.outcomes
    return {
        "crash_prob": crash_prob,
        "completed": out.counts.get("completed", 0),
        "failed": out.counts.get("failed", 0)
        + out.counts.get("timeout", 0),
        "completion_rate": round(out.completion_rate, 2),
        "crashes": result.crashes_detected,
        "restarts": result.servers_restarted,
        "mean_e2e_s": round(out.mean_completed_e2e_s, 1),
        "all_terminal": out.all_terminal,
        "audit_ok": result.audit.ok,
    }


@pytest.mark.experiment("ablation-faults")
def test_fault_injection_liveness_and_recovery(once):
    def run():
        return [run_level(p) for p in (0.0, 0.05, 0.2)]

    rows = once(run)
    print()
    print(render_table(
        "Chaos ablation — API-server crash probability vs. liveness "
        "(2 GPUs, sharing, lossy link)", rows,
    ))

    by = {r["crash_prob"]: r for r in rows}
    for prob, row in by.items():
        # Liveness + invariants hold at every fault level.
        assert row["all_terminal"], prob
        assert row["audit_ok"], prob
        # Every detected crash was recovered.
        assert row["restarts"] == row["crashes"], prob
    # The fault-free level is a clean baseline: all work completes,
    # nothing crashes, nothing needs restarting.
    assert by[0.0]["completion_rate"] == 1.0
    assert by[0.0]["crashes"] == 0
    # Heavy chaos actually injects faults, and work still gets done.
    assert by[0.2]["crashes"] >= 1
    assert by[0.2]["completed"] >= 1
    # Survivors don't pay an unbounded penalty.  Lost messages cost up to
    # (1 + retries) x 20 s timeouts and queueing behind recovery, so the
    # added latency is real but bounded — well under 10x the clean run.
    assert by[0.2]["mean_e2e_s"] <= 10 * by[0.0]["mean_e2e_s"]
