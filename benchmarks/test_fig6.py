"""Figure 6: per-workload queueing/execution delay under light load."""

import pytest

from repro.experiments import fig6, render_table


@pytest.mark.experiment("fig6")
def test_fig6(once):
    rows = once(lambda: fig6.run(copies=10))
    print()
    print(render_table(
        "Figure 6 — light load: per-workload mean queueing and execution "
        "delay (s); 4 vs 3 GPUs, no-sharing vs sharing(2)",
        rows,
    ))

    def mean_e2e(gpus, sharing):
        sel = [r for r in rows if r["gpus"] == gpus and r["sharing"] == sharing]
        return sum(r["mean_e2e_s"] for r in sel) / len(sel)

    def mean_queue(gpus, sharing):
        sel = [r for r in rows if r["gpus"] == gpus and r["sharing"] == sharing]
        return sum(r["mean_queue_s"] for r in sel) / len(sel)

    # Shape 1: with 4 GPUs, sharing changes little ("does not suffer
    # significant changes with and without sharing with four GPUs").
    assert abs(mean_e2e(4, "sharing2") - mean_e2e(4, "no_sharing")) \
        < 0.25 * mean_e2e(4, "no_sharing")

    # Shape 2: with 3 GPUs, contention appears and sharing reduces
    # queueing for the workload mix ("in a contended environment, sharing
    # reduces queueing latency of all functions").
    assert mean_queue(3, "no_sharing") > mean_queue(4, "no_sharing")
    assert mean_queue(3, "sharing2") < mean_queue(3, "no_sharing")
    assert mean_e2e(3, "sharing2") < mean_e2e(3, "no_sharing")
