"""Table II: workload runtimes across native / DGSF / Lambda / CPU."""

import pytest

from repro.experiments import table2, render_table
from repro.workloads import WORKLOADS


@pytest.mark.experiment("table2")
def test_table2(once):
    rows = once(lambda: table2.run(repeats=1))
    print()
    print(render_table(
        "Table II — per-workload runtimes (seconds) and migration time",
        rows,
    ))

    by_name = {r["workload"]: r for r in rows}
    for name, row in by_name.items():
        params = WORKLOADS[name]
        # Shape 1: DGSF beats native on every workload (init hidden).
        assert row["dgsf_s"] < row["native_s"], name
        # Shape 2: the gap is roughly the hidden CUDA initialization.
        assert 1.5 <= row["native_s"] - row["dgsf_s"] <= 6.0, name
        # Shape 3: CPU is 1.5–30x slower than the GPU paths.
        assert row["cpu_s"] > 1.4 * row["native_s"], name
        # Shape 4: absolute calibration within 25% of the paper.
        assert row["native_s"] == pytest.approx(params.paper_native_s, rel=0.25), name
        assert row["dgsf_s"] == pytest.approx(params.paper_dgsf_s, rel=0.25), name

    # Shape 5: K-means CPU is the extreme case (−29.6x in the paper).
    km = by_name["kmeans"]
    assert km["cpu_s"] / km["native_s"] > 15

    # Shape 6: Lambda spikes on the network-heavy workloads...
    for heavy in ("nlp_qa", "image_classification"):
        assert by_name[heavy]["lambda_s"] > by_name[heavy]["dgsf_s"] * 1.3, heavy
    # ...and stays close to DGSF for covid / face detection.
    for light in ("covidctnet", "face_detection"):
        assert by_name[light]["lambda_s"] < by_name[light]["dgsf_s"] * 1.25, light

    # Shape 7: migration time grows with the workload's memory footprint.
    migs = [(WORKLOADS[n].paper_peak_bytes, r["migration_s"]) for n, r in by_name.items()]
    migs.sort()
    assert migs[0][1] < migs[-1][1]
