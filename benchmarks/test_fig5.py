"""Figure 5: per-workload queueing/execution delay under heavy load."""

import pytest

from repro.experiments import fig5, render_table


@pytest.mark.experiment("fig5")
def test_fig5(once):
    rows = once(lambda: fig5.run(copies=10))
    print()
    print(render_table(
        "Figure 5 — heavy load: per-workload mean queueing and execution "
        "delay (s); AW vs SW, no-sharing vs sharing(2)",
        rows,
    ))

    def mean_queue(subset, sharing):
        sel = [r for r in rows if r["subset"] == subset and r["sharing"] == sharing]
        return sum(r["mean_queue_s"] for r in sel) / len(sel)

    # Shape 1: under heavy load there is real queueing (delays well above
    # the uncontended runtimes).
    assert mean_queue("aw", "no_sharing") > 5.0

    # Shape 2: sharing reduces average queueing delay (paper: "Sharing
    # reduces the average queue time of each function invocation" — up to
    # 53% for some workloads).
    assert mean_queue("aw", "sharing2") < mean_queue("aw", "no_sharing")
    assert mean_queue("sw", "sharing2") < mean_queue("sw", "no_sharing") * 1.05

    # Shape 3: image classification benefits clearly from sharing on AW
    # (paper: finishes on average 20% faster, queue time halved).
    img_ns = next(r for r in rows if r["workload"] == "image_classification"
                  and r["subset"] == "aw" and r["sharing"] == "no_sharing")
    img_sh = next(r for r in rows if r["workload"] == "image_classification"
                  and r["subset"] == "aw" and r["sharing"] == "sharing2")
    assert img_sh["mean_queue_s"] < img_ns["mean_queue_s"]

    # Shape 4: execution delay is never shorter than the uncontended
    # runtime scale (sanity bound).
    for r in rows:
        assert r["mean_exec_s"] > 5.0
