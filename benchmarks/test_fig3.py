"""Figure 3: phase breakdown (download / CUDA init / model load /
processing) under native, unoptimized DGSF, and DGSF."""

import pytest

from repro.experiments import fig3, render_table


@pytest.mark.experiment("fig3")
def test_fig3(once):
    rows = once(lambda: fig3.run())
    print()
    print(render_table("Figure 3 — phase breakdown per workload (seconds)", rows))

    by = {(r["workload"], r["variant"]): r for r in rows}
    workloads = sorted({r["workload"] for r in rows})
    for name in workloads:
        native = by[(name, "native")]
        unopt = by[(name, "dgsf_unopt")]
        opt = by[(name, "dgsf")]
        # Native pays the full CUDA init on the critical path; DGSF does not.
        assert native["cuda_init"] >= 3.0, name
        assert opt["cuda_init"] < 0.2, name
        # Unoptimized DGSF pays on-demand remote initialization too.
        assert unopt["cuda_init"] >= 3.0, name
        # Optimizations strictly help overall; per-phase they never hurt
        # beyond a small epsilon (batching shifts a few per-call costs
        # between the load and processing phases).
        assert opt["total"] < unopt["total"], name
        assert opt["model_load"] <= unopt["model_load"] + 0.05, name
        assert opt["processing"] <= unopt["processing"] + 0.05, name
        # Remoting overhead: DGSF processing ≥ native processing
        # ("an increase of 28%" for face detection).
        assert opt["processing"] >= native["processing"] * 0.99, name
        # Download phase is deployment-independent.
        assert opt["download"] == pytest.approx(native["download"], rel=0.1), name
        # Warm repeat with the API-server artifact cache: the object-store
        # GET is gone from the download phase (what remains is host-side
        # input prep, which is per-invocation), and nothing else regresses.
        warm = by[(name, "dgsf_warm")]
        assert warm["download"] < opt["download"], name
        assert warm["total"] < opt["total"], name
        assert warm["processing"] == pytest.approx(opt["processing"], rel=0.05), name

    # Face detection's specific numbers from §VIII-B: DGSF model load ≈ 1.1 s
    # vs native ≈ 1.7 s + handle creation, processing +~28%.
    fd_native = by[("face_detection", "native")]
    fd_opt = by[("face_detection", "dgsf")]
    assert fd_opt["processing"] / fd_native["processing"] == pytest.approx(
        1.28, abs=0.15
    )
    assert fd_opt["model_load"] < fd_native["model_load"]
