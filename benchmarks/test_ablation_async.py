"""Ablation of this reproduction's post-paper optimizations: async
pipelined forwarding and the API-server artifact cache.

The fig4 workloads synchronize often, so async forwarding only has to
*not lose* there (asserted in test_fig4).  This benchmark exercises the
regime the pipeline is built for — an RPC-bound stream of enqueue-only
calls interleaved with host compute — where batching holds work below
the flush threshold until the final sync, serializing server dispatch
and GPU time *after* the host loop, while async forwarding overlaps
them from the first call.
"""

import pytest

from repro.core.config import DgsfConfig, OptimizationFlags
from repro.experiments.runner import run_single_invocation
from repro.testing import make_world

ROUNDS = 40  # stays below BATCH_FLUSH_THRESHOLD=48: batching defers it all
KERNEL_S = 0.001  # per-round GPU work
HOST_S = 0.0003  # per-round host compute between enqueues


def run_rpc_bound(flags) -> dict:
    """K rounds of {enqueue kernel, host compute}, then one device sync."""
    world = make_world(DgsfConfig(num_gpus=1))
    guest, _, _ = world.attach_guest(flags=flags)

    def body():
        token = yield from guest.cudaGetFunction("timed")
        t0 = world.env.now
        for _ in range(ROUNDS):
            yield from guest.cudaLaunchKernel(token, args=(KERNEL_S,))
            yield world.env.timeout(HOST_S)
        yield from guest.cudaDeviceSynchronize()
        return world.env.now - t0

    elapsed = world.drive(body())
    return {
        "elapsed_s": elapsed,
        "async_forwarded": guest.calls_async_forwarded,
        "batched": guest.calls_batched,
        "max_in_flight": guest.max_async_in_flight_seen,
    }


@pytest.mark.experiment("ablation_async")
def test_async_beats_batching_on_rpc_bound_stream(once):
    def run_both():
        batching = run_rpc_bound(OptimizationFlags.all())
        asynch = run_rpc_bound(OptimizationFlags.all().with_(async_forward=True))
        return batching, asynch

    batching, asynch = once(run_both)
    print()
    print(
        f"RPC-bound stream ({ROUNDS} rounds x {KERNEL_S * 1e3:.1f} ms kernels): "
        f"batching {batching['elapsed_s'] * 1e3:.2f} ms, "
        f"async {asynch['elapsed_s'] * 1e3:.2f} ms "
        f"(depth {asynch['max_in_flight']})"
    )

    # Both variants forwarded every enqueue off the sync path.
    assert batching["batched"] == ROUNDS
    assert asynch["async_forwarded"] == ROUNDS
    assert asynch["max_in_flight"] > 1
    # The tentpole claim: pipelined forwarding strictly beats batching-only
    # when the stream is RPC-bound.  Batching defers ~40 ms of GPU work to
    # the sync point; async overlaps it with the host loop.
    assert asynch["elapsed_s"] < batching["elapsed_s"] - 0.005
    # Sanity on magnitude: the whole stream is bounded below by total GPU
    # work, and batching pays (host loop + GPU tail) nearly in sequence.
    assert batching["elapsed_s"] >= ROUNDS * KERNEL_S
    assert asynch["elapsed_s"] >= ROUNDS * KERNEL_S


@pytest.mark.experiment("ablation_async")
def test_artifact_cache_removes_download_on_warm_repeat(once):
    def run_pair():
        cold = run_single_invocation("kmeans", "dgsf", DgsfConfig(num_gpus=1))
        warm = run_single_invocation("kmeans", "dgsf_warm", DgsfConfig(num_gpus=1))
        return cold, warm

    cold, warm = once(run_pair)
    print()
    print(
        f"kmeans download: cold {cold.phases['download']:.3f} s, "
        f"warm {warm.phases['download']:.3f} s; "
        f"e2e {cold.e2e_s:.3f} -> {warm.e2e_s:.3f} s"
    )
    # The object-store GET is gone; what remains of the download phase is
    # host-side input prep plus the cache's millisecond staging latency.
    assert warm.phases["download"] < cold.phases["download"] * 0.5
    assert warm.e2e_s < cold.e2e_s
    # Processing is untouched: the cache sits on the setup path only.
    assert warm.phases["processing"] == pytest.approx(
        cold.phases["processing"], rel=0.05
    )
