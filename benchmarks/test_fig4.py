"""Figure 4: ablation study — cumulative optimizations vs native."""

import pytest

from repro.experiments import fig4, render_table


@pytest.mark.experiment("fig4")
def test_fig4(once):
    rows = once(lambda: fig4.run())
    print()
    print(render_table(
        "Figure 4 — ablation: GPU time (init+load+inference, seconds); "
        "optimizations added cumulatively",
        rows,
        columns=["workload", "native", "no_opt", "+handle_pooling",
                 "+descriptor_pooling", "+batching", "+async"],
    ))

    by = {r["workload"]: r for r in rows}

    for name, row in by.items():
        # Monotone improvement along the cumulative steps (small epsilon:
        # batching shifts a few localized-call timestamps by microseconds).
        eps = 0.05
        assert row["no_opt"] + eps >= row["+handle_pooling"], name
        assert row["+handle_pooling"] + eps >= row["+descriptor_pooling"], name
        assert row["+descriptor_pooling"] + eps >= row["+batching"], name
        # Async forwarding (this reproduction's extension) must never lose
        # to batching-only; its win is modest here because these workloads
        # synchronize often — benchmarks/test_ablation_async.py exercises
        # the RPC-bound regime where pipelining pays off.
        assert row["+batching"] + eps >= row["+async"], name
        # Handle pooling removes ≈ the library init (3.2 + 1.2 + 0.2 for
        # cuDNN users; ≈ 3.2 for K-means).
        saving = row["no_opt"] - row["+handle_pooling"]
        if name == "kmeans":
            # no cuDNN/cuBLAS: only the context (3.2 s)
            assert saving == pytest.approx(3.2, abs=0.6), name
        elif name == "covidctnet":
            # two TF models → two cuDNN+cuBLAS handle pairs: 3.2 + 2×1.4
            assert saving == pytest.approx(6.0, abs=1.2), name
        else:
            # context + one cuDNN + one cuBLAS handle: 3.2 + 1.2 + 0.2
            assert saving == pytest.approx(4.6, abs=1.0), name

    # Face identification is the paper's exemplar: unopt ≈ 14.5 s,
    # fully optimized ≈ 4.7 s — a ≥60% reduction.
    fid = by["face_identification"]
    assert fid["no_opt"] == pytest.approx(14.5, rel=0.25)
    assert fid["+batching"] == pytest.approx(4.7, rel=0.3)
    reduction = 1 - fid["+batching"] / fid["no_opt"]
    assert reduction >= 0.55  # paper: 67%

    # K-means "does not use any of the optimized APIs": descriptor pooling
    # and batching give it almost nothing.
    km = by["kmeans"]
    assert km["+handle_pooling"] - km["+batching"] < 1.0

    # DGSF fully-optimized beats native (init is off the critical path).
    for name, row in by.items():
        assert row["+batching"] < row["native"], name

    # Face detection and NLP see only "borderline improvement" from the
    # descriptor/batching layers relative to their large GPU work.
    for name in ("face_detection", "nlp_qa"):
        row = by[name]
        tail_saving = row["+handle_pooling"] - row["+batching"]
        assert tail_saving / row["+handle_pooling"] < 0.45, name
