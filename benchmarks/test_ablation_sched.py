"""Ablation: queue-wait fairness across dispatch disciplines.

FCFS (the paper's deployed policy, head-of-line blocking included) vs
SFF (its future work) vs this reproduction's starvation-aware
extensions: aged SFF and MQFQ-style fair queueing.
"""

import pytest

from repro.experiments import render_table, sched_ablation


@pytest.mark.experiment("ablation-sched")
def test_discipline_fairness(once):
    rows = once(lambda: sched_ablation.run(seed=3))

    print()
    print(render_table(
        "Scheduler ablation — queue wait by size class (s)",
        rows,
        columns=[
            "discipline", "size_class", "n", "mean_queue_s",
            "p50_queue_s", "p99_queue_s", "max_wait_s", "provider_e2e_s",
        ],
    ))

    cell = {(r["discipline"], r["size_class"]): r for r in rows}
    # every discipline served every size class of the contended plan
    for disc in ("fcfs", "sff", "sff_aged", "mqfq"):
        for cls in ("small", "medium", "large"):
            assert (disc, cls) in cell, (disc, cls)

    # MQFQ beats FCFS's head-of-line blocking for the small class at
    # equal offered load (the ISSUE 4 acceptance criterion).
    assert cell[("mqfq", "small")]["p99_queue_s"] < cell[("fcfs", "small")]["p99_queue_s"]
    assert cell[("mqfq", "small")]["max_wait_s"] < cell[("fcfs", "small")]["max_wait_s"]

    # SFF favours the small class at the large class's expense (§VIII-D's
    # predicted fairness loss).
    assert cell[("sff", "small")]["p99_queue_s"] < cell[("fcfs", "small")]["p99_queue_s"]
    assert cell[("sff", "large")]["max_wait_s"] > cell[("sff", "small")]["max_wait_s"]

    # The platform registers no duration hints, so aged SFF conservatively
    # degrades to FCFS here — bit-identical tails.
    for cls in ("small", "medium", "large"):
        assert cell[("sff_aged", cls)]["p99_queue_s"] == cell[("fcfs", cls)]["p99_queue_s"]
