"""Benchmark-suite configuration.

Each benchmark reproduces one table or figure of the paper: it runs the
experiment once inside pytest-benchmark (wall time of the *simulation* is
what's benchmarked), prints the paper-style rows/series, and asserts the
shape criteria documented in DESIGN.md §3.
"""

import pytest


def pytest_configure(config):
    config.addinivalue_line(
        "markers", "experiment(name): marks a paper table/figure reproduction"
    )


@pytest.fixture
def once(benchmark):
    """Run a thunk exactly once under pytest-benchmark and return its value."""

    def _run(fn):
        return benchmark.pedantic(fn, rounds=1, iterations=1, warmup_rounds=0)

    return _run
