"""Ablation: the critical-path bottleneck moves with load and flags.

Uncontended + optimized, time is the work itself (GPU compute /
downloads); with every optimization off, wire + serialization swamp it
(Fig. 4's motivation read straight off the trace); crammed onto one GPU,
the §VIII-D queue dominates regardless of discipline.
"""

import pytest

from repro.experiments import critpath_ablation, render_table


@pytest.mark.experiment("ablation-critpath")
def test_bottleneck_shifts_across_settings(once):
    rows = once(lambda: critpath_ablation.run(seed=0, copies=2))

    print()
    print(render_table(
        "Critical-path ablation — dominant resource by setting",
        rows,
        columns=[
            "setting", "n", "bottleneck_p50", "p50_share",
            "bottleneck_p95", "p95_share", "e2e_p50_s", "e2e_p95_s",
            "coverage_min",
        ],
    ))

    cell = {r["setting"]: r for r in rows}
    assert set(cell) == set(critpath_ablation.SETTINGS)

    # attribution bar: the critical path explains >= 95% of every root
    # span's wall time in every setting (run() raises otherwise, but the
    # reported minimum must clear the bar too)
    for row in rows:
        assert row["coverage_min"] >= critpath_ablation.MIN_COVERAGE, row

    # the acceptance criterion: the dominant resource CHANGES across
    # settings — a profiler that always blames the same thing is useless
    assert len({r["bottleneck_p50"] for r in rows}) >= 2

    # uncontended + optimized: the work itself dominates
    assert cell["light_opt"]["bottleneck_p50"] == "gpu_compute"
    # single-GPU contention: queueing dominates under either discipline
    assert cell["heavy_fcfs"]["bottleneck_p50"] == "queue"
    assert cell["heavy_mqfq"]["bottleneck_p50"] == "queue"
    # and the queue share at the median is larger than when uncontended
    light_queue_share = cell["light_opt"]["p50_share"] \
        if cell["light_opt"]["bottleneck_p50"] == "queue" else 0.0
    assert cell["heavy_fcfs"]["p50_share"] > light_queue_share
