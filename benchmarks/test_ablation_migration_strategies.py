"""Ablation: migration strategy comparison (quantifying Table I / §IX).

DGSF's VA-preserving migration vs Gandiva-style checkpoint/restore vs
DCUDA-style peer access, all on the §VIII-E synthetic workload: allocate
an array, run kernels, migrate between the two kernels, finish.

The trade-offs the paper argues qualitatively, measured:

* checkpoint/restore pays two PCIe crossings (slower move) and loses the
  virtual addresses (no transparency),
* peer access migrates almost instantly but leaves the source GPU's
  memory occupied and slows every subsequent kernel,
* DGSF moves once over D2D, frees the source, preserves addresses, and
  runs at full speed afterwards.
"""

import pytest

from repro.core import DgsfConfig
from repro.core.migration_strategies import MIGRATION_STRATEGIES
from repro.experiments import render_table
from repro.simcuda.types import GB, MB

from repro.testing import make_world

ARRAY_MB = 3514          # face identification's footprint (Table V row)
POST_KERNEL_WORK_S = 2.0  # post-migration compute (exposes peer penalty)


def run_strategy(name: str) -> dict:
    world = make_world(DgsfConfig(num_gpus=2))
    guest, server, rpc = world.attach_guest(declared_bytes=14 * GB)
    outcome = {}

    def body(env):
        # strategy-neutral variant of the §VIII-E microbenchmark: the
        # post-move kernel carries only *work* (checkpoint/restore
        # invalidates the original pointer — that semantic difference is
        # asserted separately in tests/test_migration_strategies.py)
        ptr = yield from guest.cudaMalloc(ARRAY_MB * MB)
        yield from guest.cudaMemset(ptr, 0, ARRAY_MB * MB)
        fptr = yield from guest.cudaGetFunction("timed")
        yield from guest.cudaLaunchKernel(fptr, args=(POST_KERNEL_WORK_S,),
                                          work=POST_KERNEL_WORK_S)
        yield from guest.cudaDeviceSynchronize()
        proc = env.process(MIGRATION_STRATEGIES[name](server, 1))
        outcome["result"] = yield proc
        yield from guest.cudaLaunchKernel(fptr, args=(POST_KERNEL_WORK_S,),
                                          work=POST_KERNEL_WORK_S)
        yield from guest.cudaDeviceSynchronize()
        # leftover memory is reclaimed by end_session, as a process exit would

    t0 = world.env.now
    world.drive(body(world.env))
    total = world.env.now - t0
    result = outcome["result"]
    residual = result.residual_source_bytes
    row = {
        "strategy": name,
        "migration_s": round(result.duration_s, 3),
        "e2e_s": round(total, 3),
        "source_mb_still_held": round(residual / MB),
        "post_penalty": result.post_access_penalty,
    }
    world.detach_guest(guest, server, rpc)
    return row


@pytest.mark.experiment("ablation-migration-strategies")
def test_strategy_tradeoffs(once):
    rows = once(lambda: [run_strategy(n) for n in
                         ("dgsf", "checkpoint_restore", "peer_access")])
    print()
    print(render_table(
        f"Ablation — migration strategies ({ARRAY_MB} MB array, "
        f"{POST_KERNEL_WORK_S} s kernel after the move)",
        rows,
    ))

    by = {r["strategy"]: r for r in rows}
    dgsf = by["dgsf"]
    ckpt = by["checkpoint_restore"]
    peer = by["peer_access"]

    # Move cost: peer ≪ dgsf < checkpoint/restore (two PCIe crossings).
    assert peer["migration_s"] < dgsf["migration_s"] < ckpt["migration_s"]

    # Residual memory: only peer access leaves the source GPU occupied.
    assert dgsf["source_mb_still_held"] == 0
    assert ckpt["source_mb_still_held"] == 0
    assert peer["source_mb_still_held"] == ARRAY_MB

    # End-to-end: peer's cheap move is eaten by the post-move slowdown —
    # with enough remaining work, DGSF wins overall.
    assert dgsf["e2e_s"] < peer["e2e_s"]
    assert dgsf["e2e_s"] < ckpt["e2e_s"]

    # Peer's post-migration kernel ran ~2.5x slower.
    assert peer["post_penalty"] == pytest.approx(2.5)
