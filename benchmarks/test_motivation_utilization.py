"""Motivation (§II): small inference batch sizes leave GPUs idle.

"One recent study found that small batch sizes can lead the GPU to
utilization under 15%" — the under-utilization that motivates sharing
GPUs across serverless functions in the first place.

We run the same number of samples through an ONNX-style session at
different batch sizes on a dedicated GPU.  Per-batch host-side work
(pre/post-processing, feed marshalling) is roughly constant while GPU
work scales with the samples per batch, so small batches starve the GPU.
"""

import pytest

from repro.core import DgsfConfig
from repro.core.deployment import DgsfDeployment
from repro.experiments import render_table
from repro.mllib import ModelSpec, OnnxInferenceSession
from repro.simcuda.types import GB, MB
from repro.workloads import register_workloads
from repro.testing import make_world

TOTAL_SAMPLES = 256
PER_SAMPLE_GPU_S = 0.004       # GPU work per sample
PER_BATCH_HOST_S = 0.080       # fixed host work per batch


def spec_for_batch(batch_size: int) -> ModelSpec:
    return ModelSpec(
        name=f"resnet-b{batch_size}",
        weight_bytes=97 * MB,
        workspace_bytes=512 * MB,
        n_layers=53,
        load_descriptor_calls=50,
        infer_descriptor_calls=4,
        launches_per_batch=8,
        cudnn_ops_per_batch=6,
        cublas_ops_per_batch=2,
        batch_work_s=PER_SAMPLE_GPU_S * batch_size,
        gpu_demand=min(1.0, 0.1 + 0.015 * batch_size),
        host_work_per_batch_s=PER_BATCH_HOST_S,
        load_work_s=0.2,
    )


def run_batch_size(batch_size: int):
    world = make_world(DgsfConfig(num_gpus=1))
    guest, server, rpc = world.attach_guest(declared_bytes=2 * GB)
    session = OnnxInferenceSession(world.env, guest, spec_for_batch(batch_size))
    world.drive(session.load())
    gpu = world.gpu_server.devices[0]
    t0 = world.env.now
    for _ in range(TOTAL_SAMPLES // batch_size):
        world.drive(session.run(input_bytes=batch_size * 600_000))
    utilization = gpu.utilization(t0, world.env.now) * 100.0
    elapsed = world.env.now - t0
    world.drive(session.close())
    world.detach_guest(guest, server, rpc)
    return utilization, elapsed


@pytest.mark.experiment("motivation-utilization")
def test_small_batches_starve_the_gpu(once):
    def run():
        rows = []
        for batch in (1, 4, 16, 64):
            util, elapsed = run_batch_size(batch)
            rows.append({
                "batch_size": batch,
                "gpu_utilization_pct": round(util, 1),
                "inference_s": round(elapsed, 2),
            })
        return rows

    rows = once(run)
    print()
    print(render_table(
        "Motivation (§II) — GPU utilization vs inference batch size "
        f"({TOTAL_SAMPLES} samples, dedicated GPU)",
        rows,
    ))

    by = {r["batch_size"]: r for r in rows}
    # The headline: batch-1 inference leaves the GPU under ~15% busy.
    assert by[1]["gpu_utilization_pct"] < 15.0
    # Utilization grows monotonically with batch size.
    utils = [by[b]["gpu_utilization_pct"] for b in (1, 4, 16, 64)]
    assert all(a < b for a, b in zip(utils, utils[1:]))
    assert by[64]["gpu_utilization_pct"] > 40.0
    # Larger batches also finish the same samples sooner.
    assert by[64]["inference_s"] < by[1]["inference_s"]
