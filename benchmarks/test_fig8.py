"""Figure 8 + §VIII-E case study: migration repairing a best-fit mistake."""

import numpy as np
import pytest

from repro.experiments import fig8, render_table


@pytest.mark.experiment("fig8")
def test_fig8(once):
    out = once(lambda: fig8.run())
    print()
    print(render_table(
        "Figure 8 — 2 GPUs, 2×NLP + 2×image-classification "
        "(paper: 43.6 / 38.9 / 50.6 / 42.6 s)",
        out["summary"],
    ))

    by = {r["scenario"]: r for r in out["summary"]}
    no_share = by["no_sharing"]["total_s"]
    worst = by["sharing2_worst_fit"]["total_s"]
    best = by["sharing2_best_fit"]["total_s"]
    best_mig = by["sharing2_best_fit_migration"]["total_s"]

    # Shape 1 (the paper's exact ordering): worst-fit is the best
    # scenario, best-fit (two NLPs packed together) is the worst, and
    # migration recovers most of best-fit's loss.
    assert worst < no_share, "worst-fit sharing should beat no sharing (−11% in paper)"
    assert best > no_share, "best-fit packs the two NLPs together: worst case"
    assert best_mig < best, "migration must improve on best-fit (−16% in paper)"
    assert by["sharing2_best_fit_migration"]["migrations"] >= 1
    assert by["sharing2_best_fit"]["migrations"] == 0

    # Shape 2: the improvements are in the paper's ballpark (paper:
    # worst-fit −11% vs no sharing; migration −16% vs best-fit).
    assert 0.03 <= (no_share - worst) / no_share <= 0.35
    assert 0.02 <= (best - best_mig) / best <= 0.30

    # Shape 3 (Fig. 8b): under best-fit without migration, one GPU goes
    # idle while the other stays busy near the end of the run.
    series = out["series"]["sharing2_best_fit"]
    t = np.asarray(series["t"])
    g0 = np.asarray(series["gpu0_pct"])
    g1 = np.asarray(series["gpu1_pct"])
    tail = t > t.max() * 0.7
    lo = np.minimum(g0, g1)[tail]
    hi = np.maximum(g0, g1)[tail]
    assert lo.mean() < 25.0, "one GPU should be (near-)idle in the tail"
    assert hi.mean() > 60.0, "the other should stay busy with the two NLPs"
