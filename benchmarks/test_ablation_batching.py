"""Ablation: batch flush threshold (a DGSF design knob).

The guest accumulates enqueue-only calls and ships them at sync points or
when the buffer reaches the flush threshold.  Threshold 1 degenerates to
one message per call (all the latency savings gone but still one-way);
larger thresholds amortize the per-message cost until sync points
dominate and returns diminish.
"""

import pytest

from repro.core import DgsfConfig
from repro.experiments import render_table
from repro.mllib import OnnxInferenceSession
from repro.simcuda.types import GB, MB
from repro.workloads import WORKLOADS
from repro.testing import make_world


def run_with_threshold(threshold: int):
    from repro.core.guest import GuestLibrary
    from repro.simnet.rpc import RpcClient

    world = make_world(DgsfConfig(num_gpus=1))
    server = world.gpu_server.api_servers[0]
    conn = world.dep.network.connect(world.dep.fn_host, world.dep.gpu_host)
    server.begin_session(14 * GB)
    rpc_server = server.serve_endpoint(conn.b)
    guest = GuestLibrary(
        world.env, RpcClient(conn.a),
        flags=world.dep.config.optimizations,
        batch_flush_threshold=threshold,
    )
    world.drive(guest.attach(world.dep.kernels.names()))
    spec = WORKLOADS["image_classification"].spec
    session = OnnxInferenceSession(world.env, guest, spec)
    world.drive(session.load())
    t0, m0 = world.env.now, guest.messages_sent
    for _ in range(4):
        world.drive(session.run(input_bytes=4 * MB))
    elapsed = world.env.now - t0
    messages = guest.messages_sent - m0
    world.drive(session.close())
    world.detach_guest(guest, server, rpc_server)
    return elapsed, messages


@pytest.mark.experiment("ablation-batching")
def test_batch_threshold_sweep(once):
    def run():
        rows = []
        for threshold in (1, 4, 16, 48, 128):
            elapsed, messages = run_with_threshold(threshold)
            rows.append({
                "flush_threshold": threshold,
                "inference_s": round(elapsed, 3),
                "messages": messages,
            })
        return rows

    rows = once(run)
    print()
    print(render_table("Ablation — batch flush threshold (4 ResNet batches)",
                       rows))

    by = {r["flush_threshold"]: r for r in rows}
    # Message count decreases monotonically with the threshold.
    msgs = [by[t]["messages"] for t in (1, 4, 16, 48, 128)]
    assert all(a >= b for a, b in zip(msgs, msgs[1:]))
    # Batching amortization: the enqueue-only traffic collapses; what
    # remains at threshold 48 is dominated by the unavoidable synchronous
    # round trips.
    assert by[48]["messages"] < by[1]["messages"] * 0.65
    # Diminishing returns: 48 → 128 changes (almost) nothing.
    assert by[128]["messages"] >= by[48]["messages"] * 0.95
    assert by[128]["inference_s"] == pytest.approx(by[48]["inference_s"], rel=0.1)
