"""Table IV: light load (exponential gaps, mean 3 s) with 4 vs 3 GPUs."""

import pytest

from repro.experiments import table4, render_table
from repro.experiments.reporting import pct_change


@pytest.mark.experiment("table4")
def test_table4(once):
    rows = once(lambda: table4.run(copies=10))
    print()
    print(render_table(
        "Table IV — light load: provider end-to-end and Σ function E2E (s), "
        "4 vs 3 GPUs",
        rows,
    ))
    by = {r["config"]: r for r in rows}
    base = by["no_sharing"]
    for label in ("sharing2_best_fit", "sharing2_worst_fit"):
        row = by[label]
        print(f"  {label}: 3-GPU e2e {pct_change(row['gpus3_end_to_end_s'], base['gpus3_end_to_end_s'])}, "
              f"3-GPU sum {pct_change(row['gpus3_fn_e2e_sum_s'], base['gpus3_fn_e2e_sum_s'])}")

    # Shape 1: with 4 GPUs at light load, sharing matters far less than
    # with 3 GPUs ("the end-to-end time ... with and without sharing is
    # the same since there is no queueing"; our light load retains a bit
    # more queueing, so we assert the relative ordering of effects).
    for label in ("sharing2_best_fit", "sharing2_worst_fit"):
        row = by[label]
        effect4 = (base["gpus4_fn_e2e_sum_s"] - row["gpus4_fn_e2e_sum_s"]) \
            / base["gpus4_fn_e2e_sum_s"]
        effect3 = (base["gpus3_fn_e2e_sum_s"] - row["gpus3_fn_e2e_sum_s"]) \
            / base["gpus3_fn_e2e_sum_s"]
        assert effect4 < effect3, label
        assert abs(effect4) < 0.15, label

    # Shape 2: dropping to 3 GPUs creates contention; without sharing it
    # hurts clearly, and sharing recovers much of it (paper: −10% e2e,
    # −27/−28% sum vs 3-GPU no-sharing).
    assert base["gpus3_end_to_end_s"] > base["gpus4_end_to_end_s"] * 1.05
    assert base["gpus3_fn_e2e_sum_s"] > base["gpus4_fn_e2e_sum_s"] * 1.3
    for label in ("sharing2_best_fit", "sharing2_worst_fit"):
        row = by[label]
        assert row["gpus3_end_to_end_s"] < base["gpus3_end_to_end_s"], label
        assert row["gpus3_fn_e2e_sum_s"] < base["gpus3_fn_e2e_sum_s"] * 0.95, label

    # Shape 3: 3 GPUs with sharing is only modestly slower than 4 GPUs
    # (paper: +5.5% provider time) — the provider can shrink the pool.
    shared = by["sharing2_worst_fit"]
    assert shared["gpus3_end_to_end_s"] < shared["gpus4_end_to_end_s"] * 1.35
