"""Ablation: migration responsiveness (monitor confirmation window).

The monitor migrates only after observing sustained imbalance
(`migration_confirm_checks` × 0.5 s).  Too small risks reacting to
transient idleness (a GPU whose next function is still downloading);
too large misses the recovery window the §VIII-E scenario exposes.
"""

import pytest

from repro.core import DgsfConfig
from repro.core.deployment import DgsfDeployment
from repro.experiments import render_table
from repro.workloads import register_workloads


def run_scenario(confirm_checks: int, migration: bool = True):
    cfg = DgsfConfig(
        num_gpus=2, api_servers_per_gpu=2, policy="best_fit",
        migration_enabled=migration, migration_confirm_checks=confirm_checks,
        seed=0,
    )
    dep = DgsfDeployment(cfg)
    dep.setup()
    register_workloads(dep.platform, names=["nlp_qa", "image_classification"])
    t0 = dep.env.now
    procs = [
        dep.platform.invoke(name)[1]
        for name in ("nlp_qa", "nlp_qa", "image_classification",
                     "image_classification")
    ]
    dep.env.run(until=dep.env.all_of(procs))
    return (
        dep.env.now - t0,
        len(dep.gpu_server.monitor.migration_records),
    )


@pytest.mark.experiment("ablation-migration")
def test_migration_confirmation_window(once):
    def run():
        rows = []
        no_mig, _ = run_scenario(4, migration=False)
        rows.append({"confirm_checks": "off", "total_s": round(no_mig, 1),
                     "migrations": 0})
        for checks in (2, 4, 16):
            total, migs = run_scenario(checks)
            rows.append({"confirm_checks": checks, "total_s": round(total, 1),
                         "migrations": migs})
        return rows

    rows = once(run)
    print()
    print(render_table(
        "Ablation — migration confirmation window (§VIII-E scenario, "
        "best-fit sharing)", rows,
    ))

    by = {r["confirm_checks"]: r for r in rows}
    # Migration (any reasonable window) beats no migration.
    for checks in (2, 4):
        assert by[checks]["total_s"] <= by["off"]["total_s"] + 0.5, checks
        assert by[checks]["migrations"] >= 1, checks
    # An over-conservative window forfeits (part of) the benefit.
    assert by[16]["total_s"] >= by[4]["total_s"] - 0.5
