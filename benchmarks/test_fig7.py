"""Figure 7: GPU utilization moving average during a burst."""

import pytest

from repro.experiments import fig7, render_table, render_series


@pytest.mark.experiment("fig7")
def test_fig7(once):
    out = once(lambda: fig7.run(bursts=10, burst_gap_s=2.0))
    print()
    print(render_table(
        "Figure 7 — burst: average NVML utilization and provider E2E",
        out["summary"],
    ))
    ns = out["series"]["no_sharing"]
    sh = out["series"]["sharing2_best_fit"]
    n = min(len(ns["t"]), len(sh["t"]))
    print(render_series(
        "Figure 7 — fleet utilization moving average (window 5, %)",
        ns["t"][:n],
        {
            "no_sharing": ns["utilization_pct"][:n],
            "sharing2": sh["utilization_pct"][:n],
        },
        max_points=25,
    ))
    print(f"  utilization increase with sharing: "
          f"{out['utilization_increase_pct']}% (paper: +16%)")

    base, shared = out["summary"]
    # Shape 1: sharing raises average utilization during the burst
    # (paper: 31.8% → 37.1%, +16%).
    assert shared["avg_utilization_pct"] > base["avg_utilization_pct"]
    assert 5.0 <= out["utilization_increase_pct"] <= 45.0

    # Shape 2: utilization is far from 100% for both (NVML sampling
    # semantics + idle gaps between phases).
    assert base["avg_utilization_pct"] < 75.0
    assert shared["avg_utilization_pct"] < 80.0

    # Shape 3: sharing also shortens the burst's completion time
    # (paper: 220 s → 200 s, −9%).
    assert shared["provider_e2e_s"] < base["provider_e2e_s"]
    reduction = 1 - shared["provider_e2e_s"] / base["provider_e2e_s"]
    assert 0.02 <= reduction <= 0.35
