"""Table III: heavy load (exponential gaps, mean 2 s) — provider E2E and
Σ function E2E, all-workloads vs smaller-workloads, sharing vs not."""

import pytest

from repro.experiments import table3, render_table
from repro.experiments.reporting import pct_change


@pytest.mark.experiment("table3")
def test_table3(once):
    rows = once(lambda: table3.run(copies=10))
    print()
    print(render_table(
        "Table III — heavy load: provider end-to-end and Σ function E2E (s)",
        rows,
    ))
    by = {r["config"]: r for r in rows}
    base = by["no_sharing"]
    for label in ("sharing2_best_fit", "sharing2_worst_fit"):
        row = by[label]
        print(f"  {label}: AW e2e {pct_change(row['aw_end_to_end_s'], base['aw_end_to_end_s'])}, "
              f"AW sum {pct_change(row['aw_fn_e2e_sum_s'], base['aw_fn_e2e_sum_s'])}, "
              f"SW e2e {pct_change(row['sw_end_to_end_s'], base['sw_end_to_end_s'])}, "
              f"SW sum {pct_change(row['sw_fn_e2e_sum_s'], base['sw_fn_e2e_sum_s'])}")

    # Shape: sharing reduces provider end-to-end and total function E2E
    # under heavy load, for both workload subsets (paper: −7/−8% e2e,
    # −17/−20% sum on AW).
    for label in ("sharing2_best_fit", "sharing2_worst_fit"):
        row = by[label]
        assert row["aw_end_to_end_s"] < base["aw_end_to_end_s"], label
        assert row["aw_fn_e2e_sum_s"] < base["aw_fn_e2e_sum_s"], label
        assert row["sw_end_to_end_s"] < base["sw_end_to_end_s"] * 1.02, label
        assert row["sw_fn_e2e_sum_s"] < base["sw_fn_e2e_sum_s"], label

    # The smaller-workload subset finishes much faster than all-workloads.
    for row in rows:
        assert row["sw_end_to_end_s"] < row["aw_end_to_end_s"]
        assert row["sw_fn_e2e_sum_s"] < row["aw_fn_e2e_sum_s"]
