"""Table V: synthetic migration microbenchmark."""

import pytest

from repro.experiments import table5, render_table


@pytest.mark.experiment("table5")
def test_table5(once):
    rows = once(lambda: table5.run())
    print()
    print(render_table(
        "Table V — synthetic single-array workload: native vs DGSF vs "
        "DGSF + forced migration (seconds)",
        rows,
    ))

    by = {r["array_mb"]: r for r in rows}

    for size, row in by.items():
        # Native is dominated by the 3.2 s CUDA init ("95% of the
        # end-to-end time").
        assert row["native_s"] == pytest.approx(3.2, abs=0.4), size
        # DGSF without migration is orders of magnitude faster.
        assert row["dgsf_s"] < 0.5, size
        assert row["dgsf_s"] < row["native_s"] / 10, size
        # Forced migration adds its cost to the end-to-end time.
        assert row["dgsf_migration_e2e_s"] > row["dgsf_s"], size
        assert row["dgsf_migration_e2e_s"] >= row["migration_s"] * 0.9, size

    # Migration cost is monotone in the array size and lands in the
    # paper's range (0.5 s … 2.1 s).
    sizes = sorted(by)
    migs = [by[s]["migration_s"] for s in sizes]
    assert all(a <= b + 1e-9 for a, b in zip(migs, migs[1:]))
    assert 0.2 <= by[323]["migration_s"] <= 0.8
    assert 1.2 <= by[13194]["migration_s"] <= 3.0

    # "around 78% of the end-to-end time for the largest memory
    # allocation" — migration dominates the largest case.
    big = by[13194]
    assert big["migration_s"] / big["dgsf_migration_e2e_s"] > 0.6
