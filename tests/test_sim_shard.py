"""Tests for the sharded simulation runtime (repro.sim.shard).

Covers the ISSUE-7 correctness bar: shards=1 epoch-stepping is pop-order
bit-identical to a plain single-process run; merged outcomes are
seed-stable and shard-count-invariant; and the conservative epoch
barrier handles its edge cases (boundary-timestamped envelopes,
empty-epoch fast-forward, shards with zero arrivals).

Scenario callables used by spawn-based tests live at module level so the
worker processes can re-import them by reference.
"""

import pytest

from repro.errors import ConfigurationError, SimulationError
from repro.faas.topology import pool_collect, pool_scenario
from repro.sim.shard import (
    ShardSim,
    ShardSpec,
    assign_groups,
    pop_order_crc,
    run_sharded,
)
from repro.simnet.envelope import (
    Envelope,
    GroupPort,
    WIRE_VERSION,
    decode_envelope,
    encode_envelope,
    normalize_payload,
)

POOL_ARGS = (120, 2, 0.05, 0.18, None, 0)          # no cross-group traffic
SYNC_ARGS = (120, 2, 0.05, 0.18, 0.5, 6)           # heartbeats to group 0
LOOKAHEAD = 2e-3


def sharded(num_shards, scenario=pool_scenario, args=POOL_ARGS, seed=7,
            lookahead=None, **kw):
    return run_sharded(
        scenario, num_shards=num_shards, total_groups=4, seed=seed,
        lookahead_s=lookahead, scenario_args=args, collect=pool_collect,
        mode=kw.pop("mode", "inline"), **kw,
    )


# --- group assignment --------------------------------------------------------

def test_assign_groups_round_robin():
    assert assign_groups(5, 2) == [(0, 2, 4), (1, 3)]
    assert assign_groups(3, 3) == [(0,), (1,), (2,)]
    assert assign_groups(4, 1) == [(0, 1, 2, 3)]


@pytest.mark.parametrize("groups,shards", [(0, 1), (4, 0), (2, 3)])
def test_assign_groups_rejects_bad_shapes(groups, shards):
    with pytest.raises(ConfigurationError):
        assign_groups(groups, shards)


# --- envelope codec ----------------------------------------------------------

def test_envelope_round_trips_through_wire_form():
    env = Envelope(src=1, dst=0, channel="hb", send_time=1.5,
                   deliver_time=1.502, seq=3, payload={"k": [1, 2]})
    wire = encode_envelope(env)
    assert wire[0] == WIRE_VERSION
    assert decode_envelope(wire) == env


def test_envelope_rejects_unknown_wire_version():
    wire = (WIRE_VERSION + 1, 1, 0, "hb", 0.0, 0.1, 1, None)
    with pytest.raises(ConfigurationError):
        decode_envelope(wire)


def test_envelope_v1_wire_still_decodes():
    # an 8-field v1 tuple (no trace-context slot) from a pre-bump worker
    v1 = (1, 3, 0, "hb", 1.5, 1.502, 7, {"k": [1, 2]})
    env = decode_envelope(v1)
    assert env.src == 3 and env.seq == 7
    assert env.payload == {"k": [1, 2]}
    assert env.trace_ctx is None


def test_envelope_trace_ctx_rides_the_v2_wire():
    env = Envelope(src=1, dst=0, channel="report", send_time=1.5,
                   deliver_time=1.502, seq=3, payload=None,
                   trace_ctx=(42, 9000))
    wire = encode_envelope(env)
    assert wire[0] == WIRE_VERSION == 2
    assert len(wire) == 9
    decoded = decode_envelope(wire)
    assert decoded.trace_ctx == (42, 9000)
    assert decoded == env
    # a pickled-then-json'd wire turns the tuple into a list; decode
    # must canonicalize it back so frozen-dataclass equality holds
    as_list = wire[:8] + ([42, 9000],)
    assert decode_envelope(as_list).trace_ctx == (42, 9000)


def test_envelope_wire_field_count_must_match_version():
    with pytest.raises(ConfigurationError):
        decode_envelope((1, 1, 0, "hb", 0.0, 0.1, 1, None, None))  # v1 w/ 9
    with pytest.raises(ConfigurationError):
        decode_envelope((2, 1, 0, "hb", 0.0, 0.1, 1, None))        # v2 w/ 8


def test_envelope_sort_key_ignores_trace_ctx():
    bare = Envelope(src=1, dst=0, channel="c", send_time=0.0,
                    deliver_time=1.0, seq=4, payload=None)
    traced = Envelope(src=1, dst=0, channel="c", send_time=0.0,
                      deliver_time=1.0, seq=4, payload=None,
                      trace_ctx=(99, 1))
    assert bare.sort_key() == traced.sort_key()


def test_normalize_payload_canonicalizes_tuples_and_rejects_objects():
    assert normalize_payload((1, (2, 3))) == [1, [2, 3]]
    assert normalize_payload({"a": (1,)}) == {"a": [1]}
    with pytest.raises(ConfigurationError):
        normalize_payload({1: "non-string key"})
    with pytest.raises(ConfigurationError):
        normalize_payload(object())


def test_envelope_sort_key_is_layout_canonical():
    early = Envelope(src=2, dst=0, channel="c", send_time=0.0,
                     deliver_time=1.0, seq=9, payload=None)
    tie_lower_src = Envelope(src=1, dst=0, channel="c", send_time=0.5,
                             deliver_time=2.0, seq=5, payload=None)
    tie_higher_src = Envelope(src=3, dst=0, channel="c", send_time=0.5,
                              deliver_time=2.0, seq=1, payload=None)
    ordered = sorted([tie_higher_src, tie_lower_src, early],
                     key=Envelope.sort_key)
    assert ordered == [early, tie_lower_src, tie_higher_src]


def test_port_send_enforces_lookahead_bound():
    from repro.sim.core import Environment

    port = GroupPort(Environment(), group_id=1, lookahead_s=0.1)
    with pytest.raises(ConfigurationError):
        port.send(0, "c", None, delay_s=0.05)   # faster than the lookahead
    with pytest.raises(ConfigurationError):
        port.send(0, "c", None, delay_s=float("inf"))
    envelope = port.send(0, "c", None)          # defaults to the lookahead
    assert envelope.deliver_time == pytest.approx(0.1)
    assert len(port.drain_outbox()) == 1
    assert port.drain_outbox() == []            # drained


def test_port_rejects_past_due_delivery():
    from repro.sim.core import Environment

    env = Environment()
    env.run(until=5.0)
    port = GroupPort(env, group_id=0, lookahead_s=0.1)
    stale = Envelope(src=1, dst=0, channel="c", send_time=1.0,
                     deliver_time=2.0, seq=1, payload=None)
    with pytest.raises(ConfigurationError):
        port.deliver(stale)


# --- shards=1 bit-identity ---------------------------------------------------

def _plain_run_crc(args=POOL_ARGS, lookahead=float("inf"), seed=7):
    spec = ShardSpec(
        shard_id=0, num_shards=1, groups=(0, 1, 2, 3), total_groups=4,
        seed=seed, lookahead_s=lookahead, scenario=pool_scenario,
        scenario_args=args, collect=pool_collect, record_pop_trace=True,
    )
    sim = ShardSim(spec)
    sim.env.run()
    return pop_order_crc(sim.env._pop_trace), len(sim.env._pop_trace)


def test_single_shard_epoch_stepping_is_bit_identical():
    """The acceptance bar: epoch-stepped run(until=T) windows process the
    exact pop sequence of one env.run(), across ~hundreds of barriers."""
    plain_crc, plain_n = _plain_run_crc(lookahead=LOOKAHEAD)
    stepped = sharded(1, lookahead=LOOKAHEAD, record_pop_trace=True)
    assert stepped.n_epochs > 50          # the barrier actually sliced it
    assert stepped.shards[0]["pop_n"] == plain_n
    assert stepped.pop_crc == plain_crc


def test_single_shard_infinite_lookahead_single_epoch():
    plain_crc, _ = _plain_run_crc()
    r = sharded(1, record_pop_trace=True)
    assert r.n_epochs == 1
    assert r.pop_crc == plain_crc


# --- shard-count invariance --------------------------------------------------

def test_merged_outcome_invariant_across_shard_counts():
    results = {s: sharded(s) for s in (1, 2, 4)}
    digests = {s: r.merged_digest for s, r in results.items()}
    assert len(set(digests.values())) == 1, digests
    assert results[1].merged == results[4].merged
    assert sorted(results[2].merged) == [0, 1, 2, 3]


def test_merged_outcome_invariant_with_cross_shard_traffic():
    results = {s: sharded(s, args=SYNC_ARGS, lookahead=LOOKAHEAD)
               for s in (1, 2, 4)}
    assert len({r.merged_digest for r in results.values()}) == 1
    # 3 sender groups x 6 beats all arrive at group 0, on every layout
    for r in results.values():
        assert r.merged[0]["hb_received"] == 18
        assert r.merged[0]["hb_groups"] == [1, 2, 3]
    # with >1 shard the heartbeats really crossed shard boundaries
    assert results[4].n_envelopes == 18


def test_same_seed_same_digest_different_seed_differs():
    assert sharded(2).merged_digest == sharded(2).merged_digest
    assert sharded(2, seed=8).merged_digest != sharded(2).merged_digest


def test_process_mode_matches_inline_mode():
    inline = sharded(2, args=SYNC_ARGS, lookahead=LOOKAHEAD)
    procs = sharded(2, args=SYNC_ARGS, lookahead=LOOKAHEAD, mode="process")
    assert procs.mode == "process"
    assert procs.merged == inline.merged
    assert procs.merged_digest == inline.merged_digest
    assert procs.events_processed == inline.events_processed
    assert procs.n_epochs == inline.n_epochs
    assert procs.n_envelopes == inline.n_envelopes


# --- epoch-barrier edge cases ------------------------------------------------

def boundary_send_scenario(ctx):
    """Group 1 sends at the exact global-candidate time, so the envelope's
    deliver_time lands exactly on the epoch boundary (candidate + L)."""
    env = ctx.env

    def sender():
        yield env.timeout(1.0)  # the only event anywhere: candidate = 1.0
        ctx.port(1).send(0, "edge", {"sent_at": env.now})

    def receiver():
        envelope = yield ctx.port(0).recv("edge")
        ctx.state["recv_t"] = env.now
        ctx.state["payload"] = envelope.payload

    if 1 in ctx.groups:
        env.process(sender())
    if 0 in ctx.groups:
        ctx.state.setdefault("recv_t", None)
        env.process(receiver())


def boundary_collect(ctx):
    rows = {}
    for g in ctx.groups:
        rows[g] = ({"recv_t": ctx.state.get("recv_t"),
                    "payload": ctx.state.get("payload")}
                   if g == 0 else {})
    return rows


@pytest.mark.parametrize("num_shards", [1, 2])
def test_envelope_on_exact_epoch_boundary_delivered_on_time(num_shards):
    r = run_sharded(
        boundary_send_scenario, num_shards=num_shards, total_groups=2,
        seed=0, lookahead_s=0.5, collect=boundary_collect, mode="inline",
    )
    # sent at t=1.0, lookahead 0.5, epoch end = candidate(1.0) + 0.5 = 1.5:
    # deliver_time sits exactly on the barrier and must arrive at 1.5 sharp
    assert r.merged[0]["recv_t"] == pytest.approx(1.5)
    assert r.merged[0]["payload"] == {"sent_at": 1.0}
    assert r.n_envelopes == 1


def sparse_scenario(ctx):
    """Events 1000s of simulated time apart: epochs must fast-forward."""
    env = ctx.env

    def worker(g):
        for _ in range(3):
            yield env.timeout(1000.0)
        ctx.state[g] = {"done_at": env.now}

    for g in ctx.groups:
        env.process(worker(g))


def sparse_collect(ctx):
    return {g: ctx.state[g] for g in ctx.groups}


def test_empty_epochs_fast_forward_instead_of_stepping():
    r = run_sharded(
        sparse_scenario, num_shards=2, total_groups=2, seed=0,
        lookahead_s=1.0, collect=sparse_collect, mode="inline",
    )
    # Naive lookahead-sized windows would need ~3000 epochs; choosing the
    # global candidate as the window base skips the dead time entirely.
    assert r.n_epochs <= 4
    assert r.merged[0]["done_at"] == pytest.approx(3000.0)
    # and the skips show up in the sync telemetry
    assert r.sync["fast_forwards"] >= 1
    assert r.metrics.total("shard.fast_forwards") == r.sync["fast_forwards"]


def zero_arrival_scenario(ctx, active_groups):
    env = ctx.env

    def worker(g):
        yield env.timeout(1.0)
        ctx.state[g] = {"n": 1, "at": env.now}

    for g in ctx.groups:
        ctx.state[g] = {"n": 0, "at": None}
        if g in active_groups:
            env.process(worker(g))


def zero_arrival_collect(ctx):
    return {g: ctx.state[g] for g in ctx.groups}


def test_shard_with_zero_arrivals_terminates_cleanly():
    # groups 1 and 2 are silent; shard 1 of 2 (groups {1, 3}) is half idle
    r = run_sharded(
        zero_arrival_scenario, num_shards=2, total_groups=4, seed=0,
        lookahead_s=0.5, scenario_args=((0, 3),),
        collect=zero_arrival_collect, mode="inline",
    )
    assert r.merged[0] == {"n": 1, "at": 1.0}
    assert r.merged[1] == {"n": 0, "at": None}
    assert r.merged[3] == {"n": 1, "at": 1.0}
    # a fully silent deployment also terminates (no events at all)
    empty = run_sharded(
        zero_arrival_scenario, num_shards=2, total_groups=4, seed=0,
        lookahead_s=0.5, scenario_args=((),),
        collect=zero_arrival_collect, mode="inline",
    )
    assert empty.n_epochs == 0
    assert all(row == {"n": 0, "at": None} for row in empty.merged.values())


# --- runtime validation ------------------------------------------------------

def test_run_sharded_rejects_bad_config():
    with pytest.raises(ConfigurationError):
        sharded(2, lookahead=0.0)
    with pytest.raises(ConfigurationError):
        run_sharded(pool_scenario, num_shards=1, total_groups=1,
                    scenario_args=POOL_ARGS, mode="warp-drive")


def test_context_rejects_foreign_group_port():
    spec = ShardSpec(shard_id=0, num_shards=2, groups=(0, 2),
                     total_groups=4, seed=0, lookahead_s=1.0,
                     scenario=lambda ctx: None)
    sim = ShardSim(spec)
    with pytest.raises(ConfigurationError):
        sim.ctx.port(1)


def crashing_scenario(ctx):
    raise RuntimeError("boom at build time")


def test_worker_build_failure_propagates():
    with pytest.raises((SimulationError, RuntimeError)):
        run_sharded(crashing_scenario, num_shards=2, total_groups=2,
                    seed=0, mode="process")


def until_scenario(ctx):
    env = ctx.env

    def forever(g):
        n = 0
        while True:
            yield env.timeout(1.0)
            n += 1
            ctx.state[g] = {"ticks": n}

    for g in ctx.groups:
        ctx.state[g] = {"ticks": 0}
        env.process(forever(g))


def until_collect(ctx):
    return {g: ctx.state[g] for g in ctx.groups}


def test_until_bounds_runs_with_forever_loops():
    r = run_sharded(until_scenario, num_shards=2, total_groups=2, seed=0,
                    lookahead_s=0.25, collect=until_collect,
                    until=10.0, mode="inline")
    assert r.merged[0]["ticks"] == 10
    assert r.merged[1]["ticks"] == 10


def test_metrics_merge_across_shards():
    from repro.faas.topology import pool_metrics_collect

    r = run_sharded(
        pool_scenario, num_shards=2, total_groups=4, seed=7,
        scenario_args=POOL_ARGS, collect=pool_collect,
        metrics_collect=pool_metrics_collect, mode="inline",
    )
    assert r.metrics.total("shard.invocations_completed") == 4 * POOL_ARGS[0]
    (hist,) = r.metrics.find("shard.invocation_latency_s")
    assert hist.count == 4 * POOL_ARGS[0]


# --- sync-layer telemetry ----------------------------------------------------

def test_sync_telemetry_accounts_for_epochs_and_envelopes():
    r = sharded(2, args=SYNC_ARGS, lookahead=LOOKAHEAD)
    sync = r.sync
    assert sync["n_epochs"] == r.n_epochs > 0
    assert sync["n_envelopes"] == r.n_envelopes == 18
    assert sync["envelopes_sent"] == sync["envelopes_received"] == 18
    assert sync["envelope_bytes"] > 0
    assert sync["load_imbalance"] >= 1.0
    assert sync["fast_forwards"] >= 0
    assert sync["diagnostics"] == []
    # per-shard rows account for every event the run processed
    assert [row["shard_id"] for row in sync["per_shard"]] == [0, 1]
    assert sum(row["events"] for row in sync["per_shard"]) == r.events_processed
    for row in sync["per_shard"]:
        assert row["epochs_run"] == r.n_epochs
        assert row["barrier_stall_wall_s"] >= 0.0
    # the epoch log keeps one row per epoch (under the cap), each carrying
    # per-shard event/wall vectors
    assert len(sync["epoch_log"]) == min(r.n_epochs, 4096)
    assert sync["epoch_log_dropped"] == max(0, r.n_epochs - 4096)
    first = sync["epoch_log"][0]
    assert len(first["events"]) == 2 and len(first["wall_s"]) == 2
    assert first["t_end"] > first["candidate"]
    # and the deterministic slice lands in the metrics registry
    assert r.metrics.total("shard.epochs") == r.n_epochs
    assert r.metrics.total("shard.envelopes_sent") == 18
    assert r.metrics.total("shard.envelopes_received") == 18
    assert r.metrics.total("shard.events") == r.events_processed
    assert r.metrics.total("shard.events", shard=0) > 0
    (gauge,) = r.metrics.find("shard.load_imbalance")
    assert gauge.values[-1] == pytest.approx(sync["load_imbalance"])


def test_sync_telemetry_is_deterministic_where_promised():
    a = sharded(2, args=SYNC_ARGS, lookahead=LOOKAHEAD)
    b = sharded(2, args=SYNC_ARGS, lookahead=LOOKAHEAD, mode="process")
    for key in ("n_epochs", "fast_forwards", "n_envelopes", "envelope_bytes",
                "envelopes_sent", "envelopes_received", "load_imbalance"):
        assert a.sync[key] == b.sync[key], key
    assert [row["events"] for row in a.sync["epoch_log"]] == \
        [row["events"] for row in b.sync["epoch_log"]]


# --- distributed tracing -----------------------------------------------------

def test_tracing_is_pure_bookkeeping_bit_identity():
    """Acceptance bar: shards=1 with tracing pops the exact sequence of a
    plain untraced env.run() and reaches the same merged outcome."""
    plain_crc, plain_n = _plain_run_crc(lookahead=LOOKAHEAD)
    untraced = sharded(1, lookahead=LOOKAHEAD, record_pop_trace=True)
    traced = sharded(1, lookahead=LOOKAHEAD, record_pop_trace=True,
                     tracing=True)
    assert traced.pop_crc == untraced.pop_crc == plain_crc
    assert traced.shards[0]["pop_n"] == plain_n
    assert traced.merged_digest == untraced.merged_digest
    assert untraced.tracer is None and untraced.trace_digest == 0
    assert traced.tracer is not None and traced.trace_digest != 0
    assert len(traced.tracer.records) > 0


def test_single_shard_trace_digest_matches_unsharded_tracer():
    spec = ShardSpec(
        shard_id=0, num_shards=1, groups=(0, 1, 2, 3), total_groups=4,
        seed=7, lookahead_s=LOOKAHEAD, scenario=pool_scenario,
        scenario_args=POOL_ARGS, collect=pool_collect, tracing=True,
    )
    sim = ShardSim(spec)
    sim.env.run()
    r = sharded(1, lookahead=LOOKAHEAD, tracing=True)
    # the merge renumbers span ids, but the canonical digest is invariant
    assert r.trace_digest == sim.ctx.tracer.digest()


def test_trace_merge_is_mode_invariant_and_tracks_are_per_shard():
    inline = sharded(2, args=SYNC_ARGS, lookahead=LOOKAHEAD, tracing=True)
    procs = sharded(2, args=SYNC_ARGS, lookahead=LOOKAHEAD, tracing=True,
                    mode="process")
    assert inline.trace_digest == procs.trace_digest != 0
    assert len(inline.tracer.records) == len(procs.tracer.records)
    assert inline.merged_digest == procs.merged_digest
    # every shard owns a distinct track prefix in the merged timeline
    prefixes = {rec.pid.split("/", 1)[0] for rec in procs.tracer.records}
    assert {"shard0", "shard1"} <= prefixes
    # cross-shard heartbeats left flight spans + delivery instants
    names = {rec.name for rec in procs.tracer.records}
    assert "envelope:send" in names and "envelope:recv" in names


def test_tracing_does_not_change_merged_outcome_across_counts():
    untraced = sharded(2, args=SYNC_ARGS, lookahead=LOOKAHEAD).merged_digest
    for s in (1, 2, 4):
        traced = sharded(s, args=SYNC_ARGS, lookahead=LOOKAHEAD, tracing=True)
        assert traced.merged_digest == untraced, s


def foreign_tracer_scenario(ctx):
    """A scenario that builds its own tracer instead of using ctx.tracer —
    the spans can never leave the worker, which must be loud."""
    from repro.obs import Tracer

    tracer = Tracer(ctx.env, max_spans=64)
    ctx.note_tracer(tracer)

    def worker():
        span = tracer.begin("orphan", cat="invocation",
                            trace_id=tracer.new_trace_id())
        yield ctx.env.timeout(1.0)
        span.end()

    ctx.env.process(worker())


def foreign_collect(ctx):
    return {g: {} for g in ctx.groups}


def test_foreign_tracer_loss_is_loud_not_silent():
    with pytest.warns(RuntimeWarning, match="stayed behind"):
        r = run_sharded(
            foreign_tracer_scenario, num_shards=2, total_groups=2,
            seed=0, lookahead_s=1.0, collect=foreign_collect, mode="inline",
        )
    assert any("stayed behind" in d for d in r.sync["diagnostics"])
    # the same run with tracing=True has nothing to warn about: the
    # scenario is handed the shard tracer and notes it as non-foreign
    import warnings as _warnings

    def shared_tracer_scenario(ctx):
        ctx.note_tracer(ctx.tracer)

    with _warnings.catch_warnings():
        _warnings.simplefilter("error")
        clean = run_sharded(
            shared_tracer_scenario, num_shards=1, total_groups=1,
            seed=0, collect=foreign_collect, mode="inline", tracing=True,
        )
    assert clean.sync["diagnostics"] == []
