"""Unit tests for physical allocations and virtual-address management."""

import numpy as np
import pytest

from repro.simcuda.errors import CudaError
from repro.simcuda.phys import PhysicalAllocation
from repro.simcuda.va import AddressSpace, VA_ALIGNMENT


# --- PhysicalAllocation --------------------------------------------------------

def test_allocation_payload_capped():
    alloc = PhysicalAllocation(device_id=0, size=10 * 1024 * 1024, payload_cap=4096)
    assert alloc.size == 10 * 1024 * 1024
    assert alloc.payload_bytes == 4096


def test_allocation_small_fully_materialized():
    alloc = PhysicalAllocation(0, 100, payload_cap=4096)
    assert alloc.payload_bytes == 100


def test_allocation_write_read_roundtrip():
    alloc = PhysicalAllocation(0, 1024, payload_cap=4096)
    data = np.arange(64, dtype=np.uint8)
    alloc.write(10, data)
    back = alloc.read(10, 64)
    assert np.array_equal(back, data)


def test_allocation_write_beyond_window_ignored():
    alloc = PhysicalAllocation(0, 1 << 20, payload_cap=256)
    alloc.write(1000, np.ones(16, dtype=np.uint8))  # beyond window: no-op
    assert np.count_nonzero(alloc.data) == 0


def test_allocation_write_clipped_at_window_edge():
    alloc = PhysicalAllocation(0, 1 << 20, payload_cap=256)
    alloc.write(250, np.full(16, 7, dtype=np.uint8))
    assert np.all(alloc.data[250:256] == 7)


def test_allocation_zero_size_rejected():
    with pytest.raises(CudaError):
        PhysicalAllocation(0, 0, payload_cap=256)


def test_allocation_release_and_use_after_release():
    alloc = PhysicalAllocation(0, 128, payload_cap=256)
    alloc.release()
    with pytest.raises(CudaError):
        alloc.read(0, 4)
    with pytest.raises(CudaError):
        alloc.release()


def test_copy_payload_between_allocations():
    src = PhysicalAllocation(0, 512, payload_cap=4096)
    dst = PhysicalAllocation(1, 512, payload_cap=4096)
    src.write(0, np.arange(256, dtype=np.uint8))
    dst.copy_payload_from(src)
    assert np.array_equal(dst.read(0, 256), np.arange(256, dtype=np.uint8))


# --- AddressSpace ------------------------------------------------------------------

def test_reserve_returns_aligned_disjoint_ranges():
    space = AddressSpace()
    a = space.reserve(1000)
    b = space.reserve(1000)
    assert a % VA_ALIGNMENT == 0
    assert b % VA_ALIGNMENT == 0
    assert b >= a + VA_ALIGNMENT


def test_reserve_fixed_address():
    space = AddressSpace()
    va = space.reserve(4096)
    space2 = AddressSpace()
    assert space2.reserve(4096, fixed_addr=va) == va


def test_reserve_fixed_overlap_rejected():
    space = AddressSpace()
    va = space.reserve(VA_ALIGNMENT * 2)
    with pytest.raises(CudaError):
        space.reserve(4096, fixed_addr=va + VA_ALIGNMENT)


def test_reserve_fixed_unaligned_rejected():
    space = AddressSpace()
    with pytest.raises(CudaError):
        space.reserve(4096, fixed_addr=12345)


def test_reserve_invalid_size():
    space = AddressSpace()
    with pytest.raises(CudaError):
        space.reserve(0)


def test_map_requires_reservation():
    space = AddressSpace()
    alloc = PhysicalAllocation(0, 4096, payload_cap=4096)
    with pytest.raises(CudaError):
        space.map(0xDEAD0000, alloc)


def test_map_unmap_cycle():
    space = AddressSpace()
    alloc = PhysicalAllocation(0, 4096, payload_cap=4096)
    va = space.reserve(4096)
    mapping = space.map(va, alloc)
    assert mapping.allocation is alloc
    returned = space.unmap(va)
    assert returned is alloc
    with pytest.raises(CudaError):
        space.unmap(va)


def test_double_map_rejected():
    space = AddressSpace()
    alloc = PhysicalAllocation(0, 4096, payload_cap=4096)
    va = space.reserve(4096)
    space.map(va, alloc)
    with pytest.raises(CudaError):
        space.map(va, PhysicalAllocation(0, 4096, payload_cap=4096))


def test_map_larger_than_reservation_rejected():
    space = AddressSpace()
    va = space.reserve(4096)  # rounds up to alignment
    big = PhysicalAllocation(0, VA_ALIGNMENT * 2, payload_cap=4096)
    with pytest.raises(CudaError):
        space.map(va, big)


def test_free_reservation_requires_unmapped():
    space = AddressSpace()
    alloc = PhysicalAllocation(0, 4096, payload_cap=4096)
    va = space.reserve(4096)
    space.map(va, alloc)
    with pytest.raises(CudaError):
        space.free_reservation(va)
    space.unmap(va)
    space.free_reservation(va)
    with pytest.raises(CudaError):
        space.free_reservation(va)


def test_translate_interior_pointer():
    space = AddressSpace()
    alloc = PhysicalAllocation(0, 8192, payload_cap=8192)
    va = space.reserve(8192)
    space.map(va, alloc)
    mapping, offset = space.translate(va + 100)
    assert mapping.allocation is alloc
    assert offset == 100


def test_translate_unmapped_pointer_fails():
    space = AddressSpace()
    with pytest.raises(CudaError):
        space.translate(0x1234)


def test_is_device_pointer():
    space = AddressSpace()
    alloc = PhysicalAllocation(0, 4096, payload_cap=4096)
    va = space.reserve(4096)
    space.map(va, alloc)
    assert space.is_device_pointer(va)
    assert space.is_device_pointer(va + 4095)
    assert not space.is_device_pointer(va + VA_ALIGNMENT)


def test_remap_swaps_backing():
    """The core migration primitive: same VA, new physical memory."""
    space = AddressSpace()
    old = PhysicalAllocation(0, 4096, payload_cap=4096)
    new = PhysicalAllocation(1, 4096, payload_cap=4096)
    old.write(0, np.full(16, 3, np.uint8))
    new.copy_payload_from(old)
    va = space.reserve(4096)
    space.map(va, old)
    space.remap(va, new)
    mapping, _ = space.translate(va)
    assert mapping.allocation is new
    assert np.all(mapping.allocation.read(0, 16) == 3)


def test_snapshot_lists_mappings():
    space = AddressSpace()
    sizes = [4096, 8192, 1024]
    vas = []
    for s in sizes:
        alloc = PhysicalAllocation(0, s, payload_cap=4096)
        va = space.reserve(s)
        space.map(va, alloc)
        vas.append(va)
    snap = space.snapshot()
    assert len(snap) == 3
    assert [v for v, _ in snap] == sorted(vas)


def test_mapped_bytes_accounting():
    space = AddressSpace()
    alloc = PhysicalAllocation(0, 4096, payload_cap=4096)
    va = space.reserve(4096)
    assert space.mapped_bytes() == 0
    space.map(va, alloc)
    assert space.mapped_bytes() == 4096
