"""Edge-case coverage for the guest library's less-travelled paths."""

import numpy as np
import pytest

from repro.core import DgsfConfig, OptimizationFlags
from repro.simcuda.errors import CudaError
from repro.simcuda.types import GB, MB
from repro.testing import make_world


@pytest.fixture(scope="module")
def unopt_world():
    return make_world(DgsfConfig(num_gpus=1, optimizations=OptimizationFlags.none()))


@pytest.fixture
def unopt(unopt_world):
    guest, server, rpc = unopt_world.attach_guest(flags=OptimizationFlags.none())
    yield unopt_world, guest
    unopt_world.detach_guest(guest, server, rpc)


def test_unopt_device_count_always_remotes(unopt):
    world, guest = unopt
    before = guest.calls_forwarded
    world.drive(guest.cudaGetDeviceCount())
    world.drive(guest.cudaGetDeviceCount())
    assert guest.calls_forwarded == before + 2  # no caching without the opt


def test_unopt_set_device_remotes_and_validates(unopt):
    world, guest = unopt
    world.drive(guest.cudaSetDevice(0))
    with pytest.raises(CudaError):
        world.drive(guest.cudaSetDevice(1))


def test_unopt_malloc_host_costs_a_round_trip(unopt):
    world, guest = unopt
    before = guest.calls_forwarded
    hptr = world.drive(guest.cudaMallocHost(4096))
    world.drive(guest.cudaFreeHost(hptr))
    assert guest.calls_forwarded >= before + 2


def test_unopt_pointer_attributes_remote_for_device_ptr(unopt):
    world, guest = unopt
    ptr = world.drive(guest.cudaMalloc(1 * MB))
    before = guest.calls_forwarded
    attrs = world.drive(guest.cudaPointerGetAttributes(ptr))
    assert attrs.is_device
    assert guest.calls_forwarded == before + 1
    world.drive(guest.cudaFree(ptr))


def test_unopt_event_record_is_synchronous(unopt):
    world, guest = unopt
    event = world.drive(guest.cudaEventCreate())
    before = guest.calls_forwarded
    world.drive(guest.cudaEventRecord(event))
    assert guest.calls_forwarded == before + 1
    world.drive(guest.cudaEventSynchronize(event))


def test_unopt_push_call_configuration_remotes(unopt):
    world, guest = unopt
    before = guest.calls_forwarded
    world.drive(guest.pushCallConfiguration(grid=(2, 1, 1), block=(64, 1, 1)))
    assert guest.calls_forwarded == before + 1


# --- optimized-path edges ---------------------------------------------------------

@pytest.fixture(scope="module")
def opt_world():
    return make_world(DgsfConfig(num_gpus=1))


@pytest.fixture
def opt(opt_world):
    guest, server, rpc = opt_world.attach_guest(declared_bytes=2 * GB)
    yield opt_world, guest
    opt_world.detach_guest(guest, server, rpc)


def test_pointer_attributes_unknown_pointer_raises(opt):
    world, guest = opt
    with pytest.raises(CudaError):
        world.drive(guest.cudaPointerGetAttributes(0x1234))


def test_descriptor_of_unknown_kind_rejected(opt):
    world, guest = opt
    with pytest.raises(CudaError):
        world.drive(guest.cudnnCreateDescriptor("widget"))


def test_remote_stream_tokens_validated(opt):
    world, guest = opt
    with pytest.raises(CudaError):
        world.drive(guest.cudaStreamSynchronize(0x7777))
    with pytest.raises(CudaError):
        world.drive(guest.cudaStreamDestroy(0x7777))


def test_remote_event_tokens_validated(opt):
    world, guest = opt
    with pytest.raises(CudaError):
        world.drive(guest.cudaEventSynchronize(0x7777))


def test_async_memcpy_d2d_is_batched(opt):
    world, guest = opt
    a = world.drive(guest.cudaMalloc(1 * MB))
    b = world.drive(guest.cudaMalloc(1 * MB))
    batched0 = guest.calls_batched
    world.drive(guest.memcpyD2D(b, a, 1 * MB, sync=False))
    assert guest.calls_batched == batched0 + 1
    world.drive(guest.cudaDeviceSynchronize())
    world.drive(guest.cudaFree(a))
    world.drive(guest.cudaFree(b))


def test_async_memset_is_batched_and_applies(opt):
    world, guest = opt
    ptr = world.drive(guest.cudaMalloc(64))
    world.drive(guest.cudaMemset(ptr, 0x11, 64, sync=False))
    world.drive(guest.cudaDeviceSynchronize())
    back = world.drive(guest.memcpyD2H(ptr, 64))
    assert np.all(back[:64] == 0x11)
    world.drive(guest.cudaFree(ptr))


def test_large_batch_flushes_at_threshold(opt):
    world, guest = opt
    fptr = world.drive(guest.cudaGetFunction("timed"))
    msgs0 = guest.messages_sent

    def run(env):
        for _ in range(guest.batch_flush_threshold * 2):
            yield from guest.cudaLaunchKernel(fptr, args=(0.0001,))

    world.drive(run(world.env))
    # two threshold-triggered flushes without any sync point
    assert guest.messages_sent - msgs0 >= 2
    world.drive(guest.cudaDeviceSynchronize())


def test_properties_follow_current_gpu_after_migration():
    from repro.core.migration import migrate_api_server

    world = make_world(DgsfConfig(num_gpus=2))
    guest, server, rpc = world.attach_guest(declared_bytes=1 * GB)
    props0 = world.drive(guest.cudaGetDeviceProperties(0))
    world.drive(guest.cudaMalloc(1 * MB))
    proc = world.env.process(migrate_api_server(server, 1))
    world.env.run(until=proc)
    props1 = world.drive(guest.cudaGetDeviceProperties(0))
    # same *model* of GPU, still exactly one visible device
    assert props1["name"] == props0["name"]
    assert world.drive(guest.cudaGetDeviceCount()) == 1
    world.detach_guest(guest, server, rpc)
