"""§V-A step ③: periodic API-server update messages + GPU-server shutdown."""

import pytest

from repro.core import DgsfConfig
from repro.errors import SimulationError
from repro.simcuda.types import GB, MB
from repro.testing import make_world


def test_servers_report_stats_periodically():
    world = make_world(DgsfConfig(num_gpus=2))
    world.env.run(until=world.env.now + 2.0)
    monitor = world.monitor
    assert set(monitor.last_stats) == {0, 1}
    for stats in monitor.last_stats.values():
        assert not stats.busy
        assert stats.used_bytes == 0


def test_stats_reflect_session_state():
    world = make_world(DgsfConfig(num_gpus=1))
    guest, server, rpc = world.attach_guest(declared_bytes=2 * GB)
    world.drive(guest.cudaMalloc(256 * MB))
    world.env.run(until=world.env.now + 1.0)
    stats = world.monitor.last_stats[server.server_id]
    assert stats.busy
    assert stats.used_bytes == 256 * MB
    assert stats.api_calls > 0
    world.detach_guest(guest, server, rpc)
    world.env.run(until=world.env.now + 1.0)
    stats = world.monitor.last_stats[server.server_id]
    assert not stats.busy


def test_stats_lag_behind_live_state():
    """The monitor's view is reported, hence slightly stale."""
    world = make_world(DgsfConfig(num_gpus=1))
    world.env.run(until=world.env.now + 1.0)
    guest, server, rpc = world.attach_guest()
    # immediately after attach, the last report may still say idle
    stats = world.monitor.last_stats[server.server_id]
    assert stats.t <= world.env.now
    world.detach_guest(guest, server, rpc)


def test_shutdown_releases_all_static_memory():
    world = make_world(DgsfConfig(num_gpus=2))
    assert all(d.mem_used > 0 for d in world.gpu_server.devices)
    world.drive(world.gpu_server.shutdown())
    assert all(d.mem_used == 0 for d in world.gpu_server.devices)


def test_shutdown_with_busy_server_rejected():
    world = make_world(DgsfConfig(num_gpus=1))
    guest, server, rpc = world.attach_guest()
    with pytest.raises(SimulationError):
        world.drive(world.gpu_server.shutdown())
    world.detach_guest(guest, server, rpc)
    world.drive(world.gpu_server.shutdown())
