"""Unit tests for the discrete-event simulation kernel."""

import pytest

from repro.errors import SimulationError
from repro.sim import Environment, Event, Interrupt


def test_timeout_advances_clock():
    env = Environment()
    log = []

    def proc(env):
        yield env.timeout(2.5)
        log.append(env.now)
        yield env.timeout(1.5)
        log.append(env.now)

    env.process(proc(env))
    env.run()
    assert log == [2.5, 4.0]
    assert env.now == 4.0


def test_timeout_value_passthrough():
    env = Environment()

    def proc(env):
        got = yield env.timeout(1.0, value="payload")
        return got

    p = env.process(proc(env))
    env.run()
    assert p.value == "payload"


def test_negative_delay_rejected():
    env = Environment()
    with pytest.raises(ValueError):
        env.timeout(-1.0)


def test_process_return_value():
    env = Environment()

    def proc(env):
        yield env.timeout(1)
        return 42

    p = env.process(proc(env))
    env.run()
    assert p.value == 42


def test_process_join():
    env = Environment()

    def child(env):
        yield env.timeout(3)
        return "child-result"

    def parent(env):
        result = yield env.process(child(env))
        return (env.now, result)

    p = env.process(parent(env))
    env.run()
    assert p.value == (3, "child-result")


def test_event_succeed_wakes_waiter():
    env = Environment()
    gate = env.event()

    def opener(env):
        yield env.timeout(5)
        gate.succeed("open")

    def waiter(env):
        value = yield gate
        return (env.now, value)

    env.process(opener(env))
    w = env.process(waiter(env))
    env.run()
    assert w.value == (5, "open")


def test_event_fail_raises_in_waiter():
    env = Environment()
    gate = env.event()

    def failer(env):
        yield env.timeout(1)
        gate.fail(RuntimeError("boom"))

    def waiter(env):
        try:
            yield gate
        except RuntimeError as exc:
            return f"caught {exc}"

    env.process(failer(env))
    w = env.process(waiter(env))
    env.run()
    assert w.value == "caught boom"


def test_unhandled_process_failure_propagates():
    env = Environment()

    def bad(env):
        yield env.timeout(1)
        raise ValueError("unhandled")

    env.process(bad(env))
    with pytest.raises(ValueError, match="unhandled"):
        env.run()


def test_double_trigger_rejected():
    env = Environment()
    ev = env.event()
    ev.succeed(1)
    with pytest.raises(SimulationError):
        ev.succeed(2)


def test_run_until_time():
    env = Environment()

    def ticker(env):
        while True:
            yield env.timeout(1)

    env.process(ticker(env))
    env.run(until=10)
    assert env.now == 10


def test_run_until_event_returns_value():
    env = Environment()

    def proc(env):
        yield env.timeout(7)
        return "done"

    p = env.process(proc(env))
    assert env.run(until=p) == "done"
    assert env.now == 7


def test_run_until_past_time_rejected():
    env = Environment(initial_time=10)
    with pytest.raises(ValueError):
        env.run(until=5)


def test_deadlock_detected_when_awaited_event_never_fires():
    env = Environment()
    never = env.event()

    def waiter(env):
        yield never

    p = env.process(waiter(env))
    with pytest.raises(SimulationError, match="deadlock"):
        env.run(until=p)


def test_interrupt_delivers_cause():
    env = Environment()

    def victim(env):
        try:
            yield env.timeout(100)
        except Interrupt as i:
            return ("interrupted", i.cause, env.now)

    def attacker(env, target):
        yield env.timeout(2)
        target.interrupt("migrate")

    v = env.process(victim(env))
    env.process(attacker(env, v))
    env.run()
    assert v.value == ("interrupted", "migrate", 2)


def test_interrupt_dead_process_is_error():
    env = Environment()

    def quick(env):
        yield env.timeout(1)

    p = env.process(quick(env))
    env.run()
    with pytest.raises(SimulationError):
        p.interrupt()


def test_interrupted_process_can_rewait():
    env = Environment()
    log = []

    def victim(env):
        start = env.now
        try:
            yield env.timeout(100)
        except Interrupt:
            log.append(env.now)
        yield env.timeout(3)
        log.append(env.now)

    def attacker(env, target):
        yield env.timeout(2)
        target.interrupt()

    v = env.process(victim(env))
    env.process(attacker(env, v))
    env.run()
    assert log == [2, 5]


def test_all_of_waits_for_all():
    env = Environment()

    def proc(env):
        t1 = env.timeout(1, value="a")
        t2 = env.timeout(5, value="b")
        results = yield env.all_of([t1, t2])
        return (env.now, sorted(results.values()))

    p = env.process(proc(env))
    env.run()
    assert p.value == (5, ["a", "b"])


def test_any_of_returns_first():
    env = Environment()

    def proc(env):
        t1 = env.timeout(1, value="fast")
        t2 = env.timeout(5, value="slow")
        results = yield env.any_of([t1, t2])
        return (env.now, list(results.values()))

    p = env.process(proc(env))
    env.run()
    assert p.value == (1, ["fast"])


def test_empty_all_of_fires_immediately():
    env = Environment()

    def proc(env):
        result = yield env.all_of([])
        return result

    p = env.process(proc(env))
    env.run()
    assert p.value == {}


def test_yielding_non_event_fails_process():
    env = Environment()

    def bad(env):
        yield 42

    env.process(bad(env))
    with pytest.raises(TypeError):
        env.run()


def test_events_at_same_time_fifo_order():
    env = Environment()
    order = []

    def proc(env, name):
        yield env.timeout(1)
        order.append(name)

    for name in "abc":
        env.process(proc(env, name))
    env.run()
    assert order == ["a", "b", "c"]


def test_step_on_empty_queue_raises():
    env = Environment()
    with pytest.raises(SimulationError):
        env.step()


def test_peek_empty_is_inf():
    env = Environment()
    assert env.peek() == float("inf")


def test_already_processed_event_resumes_immediately():
    env = Environment()

    def proc(env):
        t = env.timeout(1, value="x")
        yield env.timeout(5)  # t processes long before we wait on it
        value = yield t
        return (env.now, value)

    p = env.process(proc(env))
    env.run()
    assert p.value == (5, "x")
