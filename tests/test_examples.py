"""The examples must run end-to-end (they double as acceptance tests)."""

import runpy
import sys
from pathlib import Path

import pytest

EXAMPLES = Path(__file__).resolve().parent.parent / "examples"


def run_example(name: str, capsys) -> str:
    runpy.run_path(str(EXAMPLES / name), run_name="__main__")
    return capsys.readouterr().out


def test_quickstart(capsys):
    out = run_example("quickstart.py", capsys)
    assert "result: 3 (expected 3)" in out
    assert "no 3.2 s CUDA init" in out


def test_migration_demo(capsys):
    out = run_example("migration_demo.py", capsys)
    assert "virtual address map identical across GPUs: OK" in out
    assert "data intact and kernels still running after migration: OK" in out
    assert "cuDNN handle translated to the destination GPU: OK" in out


def test_custom_workload(capsys):
    out = run_example("custom_workload.py", capsys)
    assert "identical under native and DGSF backends" in out
    assert "image pipeline produced 150528 bytes" in out


@pytest.mark.slow
def test_serverless_inference(capsys):
    out = run_example("serverless_inference.py", capsys)
    assert "sharing vs no sharing:" in out
    assert "avg GPU utilization" in out


def test_class_gpu_service(capsys):
    out = run_example("class_gpu_service.py", capsys)
    assert "GPU-hours" in out
    assert "of dedicated" in out


def test_call_trace_analysis(capsys):
    out = run_example("call_trace_analysis.py", capsys)
    assert "routing of interposed calls" in out
    assert "top APIs by interposition time" in out


def test_experiments_cli_runs(capsys):
    """The `python -m repro.experiments` entry point works."""
    from repro.experiments.__main__ import main

    main(["table5"])
    out = capsys.readouterr().out
    assert "Table V" in out
    assert "13194" in out
