"""Unit tests for the driver API (low-level memory management)."""

import numpy as np
import pytest

from repro.sim import Environment
from repro.simcuda import DriverAPI, SimGPU, CudaError
from repro.simcuda.types import MB


@pytest.fixture
def setup():
    env = Environment()
    gpus = [SimGPU(env, i) for i in range(2)]
    drv = DriverAPI(env, gpus)
    drv.cuInit()
    return env, gpus, drv


def drive(env, gen):
    p = env.process(gen)
    return env.run(until=p)


def test_requires_cuinit():
    env = Environment()
    drv = DriverAPI(env, [SimGPU(env, 0)])
    with pytest.raises(CudaError, match="NOT_INITIALIZED"):
        drv.cuDeviceGetCount()


def test_device_count_and_properties(setup):
    env, gpus, drv = setup
    assert drv.cuDeviceGetCount() == 2
    props = drv.cuDeviceGetProperties(1)
    assert "V100" in props.name


def test_no_devices_rejected():
    env = Environment()
    with pytest.raises(CudaError):
        DriverAPI(env, [])


def test_ctx_create_costs_init_time_and_memory(setup):
    env, gpus, drv = setup
    ctx = drive(env, drv.cuCtxCreate(0))
    assert env.now == pytest.approx(3.2)
    assert gpus[0].mem_used == 303 * MB
    drv.cuCtxDestroy(ctx)
    assert gpus[0].mem_used == 0


def test_mem_create_map_translate(setup):
    env, gpus, drv = setup
    ctx = drive(env, drv.cuCtxCreate(0))
    alloc = drive(env, drv.cuMemCreate(0, 4 * MB))
    va = drv.cuMemAddressReserve(ctx, 4 * MB)
    drv.cuMemMap(ctx, va, alloc)
    mapping, offset = ctx.address_space.translate(va + 5)
    assert mapping.allocation is alloc and offset == 5


def test_map_foreign_device_allocation_rejected(setup):
    """CUDA cannot map GPU-1 memory into a GPU-0 context — the reason
    migration must *copy* data."""
    env, gpus, drv = setup
    ctx0 = drive(env, drv.cuCtxCreate(0))
    alloc1 = drive(env, drv.cuMemCreate(1, 1 * MB))
    va = drv.cuMemAddressReserve(ctx0, 1 * MB)
    with pytest.raises(CudaError, match="MAP_FAILED"):
        drv.cuMemMap(ctx0, va, alloc1)


def test_dtod_cross_gpu_copy_moves_payload(setup):
    env, gpus, drv = setup
    src = drive(env, drv.cuMemCreate(0, 1 * MB))
    dst = drive(env, drv.cuMemCreate(1, 1 * MB))
    src.write(0, np.arange(100, dtype=np.uint8))
    drive(env, drv.cuMemcpyDtoD(dst, src, 1 * MB))
    assert np.array_equal(dst.read(0, 100), np.arange(100, dtype=np.uint8))


def test_dtod_copy_size_validated(setup):
    env, gpus, drv = setup
    src = drive(env, drv.cuMemCreate(0, 1 * MB))
    dst = drive(env, drv.cuMemCreate(1, 1 * MB))
    with pytest.raises(CudaError):
        drive(env, drv.cuMemcpyDtoD(dst, src, 2 * MB))


def test_mem_release_frees_device_memory(setup):
    env, gpus, drv = setup
    alloc = drive(env, drv.cuMemCreate(0, 8 * MB))
    assert gpus[0].mem_used == 8 * MB
    drive(env, drv.cuMemRelease(alloc))
    assert gpus[0].mem_used == 0


def test_fixed_va_rebuild_across_contexts(setup):
    """Migration invariant: the destination context can reproduce the
    source context's address map exactly via fixed-address reservation."""
    env, gpus, drv = setup
    ctx0 = drive(env, drv.cuCtxCreate(0))
    vas = []
    for size in (1 * MB, 2 * MB, 4 * MB):
        alloc = drive(env, drv.cuMemCreate(0, size))
        va = drv.cuMemAddressReserve(ctx0, size)
        drv.cuMemMap(ctx0, va, alloc)
        vas.append((va, size))

    ctx1 = drive(env, drv.cuCtxCreate(1))
    for va, size in vas:
        alloc = drive(env, drv.cuMemCreate(1, size))
        got = drv.cuMemAddressReserve(ctx1, size, fixed_addr=va)
        assert got == va
        drv.cuMemMap(ctx1, got, alloc)
    assert ctx1.address_space.snapshot() == ctx0.address_space.snapshot()
