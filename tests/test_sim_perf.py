"""Smoke checks on simulation-kernel performance.

Guards the event-loop hot path (``Environment.run``/``step``) and the
``Store`` fast path against accidental slowdowns.  The throughput floor
is deliberately loose — it catches order-of-magnitude regressions (an
accidentally quadratic scan, per-event allocation storms), not CI noise.
"""

import time

from repro.core.config import DgsfConfig
from repro.experiments.runner import build_deployment
from repro.sim import Environment
from repro.workloads import register_workloads


def test_event_loop_throughput_floor():
    env = Environment()

    def ticker():
        for _ in range(30_000):
            yield env.timeout(0.001)

    env.process(ticker())
    t0 = time.perf_counter()
    env.run()
    elapsed = time.perf_counter() - t0
    assert env.events_processed >= 30_000
    rate = env.events_processed / max(elapsed, 1e-9)
    # Pure-Python heap loop comfortably clears hundreds of k events/s;
    # fail only on an order-of-magnitude collapse.
    assert rate > 50_000, f"event loop slowed to {rate:.0f} events/s"


def test_run_until_deadline_uses_fast_path():
    env = Environment()

    def ticker():
        while True:
            yield env.timeout(1.0)

    env.process(ticker())
    env.run(until=500.5)
    assert env.now == 500.5
    assert env.events_processed >= 500


def test_invocation_event_budget():
    """Event-count ceiling for a standard invocation: pipelining/caching
    layers must not silently multiply kernel events (13.5k at capture)."""
    dep = build_deployment("dgsf", DgsfConfig(num_gpus=1, seed=0))
    dep.setup()
    register_workloads(dep.platform, names=["face_identification"])
    inv, proc = dep.platform.invoke("face_identification")
    dep.env.run(until=proc)
    assert inv.status == "completed"
    assert dep.env.events_processed <= 17_000
