"""Tests for the flight-recorder bundle (repro.obs.flight).

One small traced sharded run is frozen to disk once per module; the
tests then exercise the write/load/validate surfaces — including the
corruption paths a CI-artifact consumer relies on to distrust a
half-uploaded or hand-edited bundle.
"""

import json

import pytest

from repro.errors import ConfigurationError
from repro.faas.topology import pool_collect, pool_scenario
from repro.obs import (
    load_bundle_records,
    load_chrome_records,
    trace_digest,
    validate_flight_bundle,
    write_flight_bundle,
)
from repro.sim.shard import run_sharded

SYNC_ARGS = (60, 2, 0.05, 0.18, 0.5, 4)
LOOKAHEAD = 2e-3


@pytest.fixture(scope="module")
def traced_result():
    return run_sharded(
        pool_scenario, num_shards=2, total_groups=4, seed=7,
        lookahead_s=LOOKAHEAD, scenario_args=SYNC_ARGS,
        collect=pool_collect, mode="inline", tracing=True,
    )


@pytest.fixture(scope="module")
def bundle(tmp_path_factory, traced_result):
    out_dir = tmp_path_factory.mktemp("flight")
    manifest = write_flight_bundle(traced_result, out_dir)
    return out_dir, manifest


def test_write_requires_a_traced_run():
    untraced = run_sharded(
        pool_scenario, num_shards=1, total_groups=2, seed=7,
        scenario_args=(30, 2, 0.05, 0.18, None, 0),
        collect=pool_collect, mode="inline",
    )
    with pytest.raises(ConfigurationError, match="tracing=True"):
        write_flight_bundle(untraced, "/tmp/never-written")


def test_bundle_writes_every_file_and_validates(bundle, traced_result):
    out_dir, manifest = bundle
    for name in manifest["files"] + ["manifest.json"]:
        assert (out_dir / name).is_file(), name
    assert manifest["num_shards"] == 2
    assert manifest["trace_digest"] == traced_result.trace_digest
    assert manifest["merged_digest"] == traced_result.merged_digest
    assert manifest["n_span_records"] == len(traced_result.tracer.records)
    assert validate_flight_bundle(out_dir) == []


def test_records_json_round_trips_the_exact_digest(bundle, traced_result):
    out_dir, manifest = bundle
    records = load_bundle_records(out_dir / "records.json")
    assert trace_digest(records) == manifest["trace_digest"]
    assert trace_digest(records) == traced_result.tracer.digest()


def test_chrome_trace_reverses_track_name_mapping(bundle):
    out_dir, _ = bundle
    records = load_chrome_records(out_dir / "trace.json")
    assert records
    tracks = {r["pid"] for r in records}
    # per-shard process tracks survive the int-pid round trip
    assert any(t.startswith("shard0/") for t in tracks)
    assert any(t.startswith("shard1/") for t in tracks)
    spans = [r for r in records if r["ph"] == "X"]
    assert all(r["dur_us"] >= 0 for r in spans)


def test_epochs_file_carries_sync_telemetry(bundle, traced_result):
    out_dir, _ = bundle
    epochs = json.loads((out_dir / "epochs.json").read_text())
    assert epochs["n_epochs"] == traced_result.n_epochs
    assert epochs["n_envelopes"] == traced_result.n_envelopes
    assert len(epochs["per_shard"]) == 2


def _copy_bundle(bundle_dir, tmp_path):
    clone = tmp_path / "clone"
    clone.mkdir()
    for path in bundle_dir.iterdir():
        (clone / path.name).write_text(path.read_text())
    return clone


def test_validation_catches_missing_file(bundle, tmp_path):
    clone = _copy_bundle(bundle[0], tmp_path)
    (clone / "records.json").unlink()
    problems = validate_flight_bundle(clone)
    assert problems == ["missing bundle file: records.json"]


def test_validation_catches_tampered_records(bundle, tmp_path):
    clone = _copy_bundle(bundle[0], tmp_path)
    snapshot = json.loads((clone / "records.json").read_text())
    snapshot["records"][0][5] += 1.0      # shift one span's t_start
    (clone / "records.json").write_text(json.dumps(snapshot))
    problems = validate_flight_bundle(clone)
    assert any("digest" in p for p in problems)


def test_validation_catches_foreign_bundle_version(bundle, tmp_path):
    clone = _copy_bundle(bundle[0], tmp_path)
    manifest = json.loads((clone / "manifest.json").read_text())
    manifest["version"] = 999
    (clone / "manifest.json").write_text(json.dumps(manifest))
    problems = validate_flight_bundle(clone)
    assert problems and "unsupported bundle version" in problems[0]


def test_validation_catches_inconsistent_epochs(bundle, tmp_path):
    clone = _copy_bundle(bundle[0], tmp_path)
    epochs = json.loads((clone / "epochs.json").read_text())
    epochs["n_epochs"] += 1
    (clone / "epochs.json").write_text(json.dumps(epochs))
    problems = validate_flight_bundle(clone)
    assert any("n_epochs" in p for p in problems)


def test_validation_of_garbage_directory_is_readable(tmp_path):
    problems = validate_flight_bundle(tmp_path / "nope")
    assert len(problems) == 1 and "manifest.json unreadable" in problems[0]
