"""Property-based tests (hypothesis) for the simulation kernel."""

import numpy as np
from hypothesis import given, settings, strategies as st

from repro.sim import Environment, FairShareEngine
from repro.sim.rng import RngRegistry
from repro.simcuda.nvml import moving_average


works = st.lists(
    st.floats(min_value=0.01, max_value=5.0, allow_nan=False),
    min_size=1, max_size=8,
)


@given(works)
@settings(max_examples=60, deadline=None)
def test_fairshare_conserves_total_work(work_list):
    """All tasks submitted at t=0 to a capacity-1 engine finish exactly at
    t = Σ work (processor sharing conserves service)."""
    env = Environment()
    eng = FairShareEngine(env)
    events = [eng.submit(w) for w in work_list]
    env.run(until=env.all_of(events))
    assert abs(env.now - sum(work_list)) < 1e-6 * max(1.0, sum(work_list))


@given(works)
@settings(max_examples=60, deadline=None)
def test_fairshare_completion_order_matches_work_order(work_list):
    """With simultaneous arrival and equal demand, smaller jobs never
    finish after larger ones (PS is size-monotone)."""
    env = Environment()
    eng = FairShareEngine(env)
    finish = {}

    def waiter(env, idx, done):
        yield done
        finish[idx] = env.now

    for i, w in enumerate(work_list):
        env.process(waiter(env, i, eng.submit(w)))
    env.run()
    order = sorted(range(len(work_list)), key=lambda i: finish[i])
    for a, b in zip(order, order[1:]):
        assert work_list[a] <= work_list[b] + 1e-9


@given(
    works,
    st.lists(st.floats(min_value=0.0, max_value=10.0), min_size=1, max_size=8),
)
@settings(max_examples=40, deadline=None)
def test_fairshare_never_exceeds_capacity(work_list, gaps):
    """Total service delivered can never exceed elapsed time × capacity."""
    env = Environment()
    eng = FairShareEngine(env)

    submitted = list(zip(work_list, gaps))  # zip truncates to the shorter

    def driver(env):
        for w, g in submitted:
            eng.submit(w)
            yield env.timeout(g)

    env.process(driver(env))
    env.run()
    total_work = sum(w for w, _ in submitted)
    # everything completed by `now`; service ≤ capacity × elapsed time
    assert total_work <= env.now + 1e-9


@given(st.lists(st.floats(min_value=0, max_value=100), min_size=1, max_size=50),
       st.integers(min_value=1, max_value=10))
@settings(max_examples=60, deadline=None)
def test_moving_average_stays_within_bounds(values, window):
    out = moving_average(values, window)
    assert len(out) == len(values)
    assert out.min() >= min(values) - 1e-9
    assert out.max() <= max(values) + 1e-9


@given(st.integers(min_value=0, max_value=2**32 - 1), st.text(min_size=1, max_size=20))
@settings(max_examples=50, deadline=None)
def test_rng_streams_deterministic(seed, name):
    a = RngRegistry(seed).stream(name).random(8)
    b = RngRegistry(seed).stream(name).random(8)
    assert np.array_equal(a, b)


@given(st.lists(st.floats(min_value=0.001, max_value=3.0), min_size=1, max_size=10))
@settings(max_examples=40, deadline=None)
def test_timeouts_fire_in_order(delays):
    """Events scheduled at increasing times are processed in time order."""
    env = Environment()
    fired = []

    def proc(env, d):
        yield env.timeout(d)
        fired.append(d)

    for d in delays:
        env.process(proc(env, d))
    env.run()
    assert fired == sorted(delays)
