"""Function execution time limits (paper §II: providers bound runtime)."""

import pytest

from repro.core import DgsfConfig
from repro.core.deployment import DgsfDeployment
from repro.faas import FunctionSpec
from repro.faas.platform import FunctionTimeLimitExceeded
from repro.simcuda.types import GB, MB
from repro.sim import Environment
from repro.simnet import Network
from repro.faas.platform import ServerlessPlatform


def make_platform():
    env = Environment()
    net = Network(env)
    host = net.add_host("fn")
    return env, ServerlessPlatform(env, host)


def test_function_killed_at_limit():
    env, platform = make_platform()

    def slow(fc):
        yield fc.env.timeout(100.0)
        return "never"

    platform.register(FunctionSpec("slow", slow, max_duration_s=5.0))
    inv, proc = platform.invoke("slow")
    with pytest.raises(FunctionTimeLimitExceeded):
        env.run(until=proc)
    assert inv.status == "timeout"
    assert env.now == pytest.approx(5.0)


def test_function_within_limit_completes():
    env, platform = make_platform()

    def quick(fc):
        yield fc.env.timeout(2.0)
        return "done"

    platform.register(FunctionSpec("quick", quick, max_duration_s=5.0))
    inv, proc = platform.invoke("quick")
    env.run(until=proc)
    assert inv.status == "completed"
    assert inv.result == "done"


def test_no_limit_means_unlimited():
    env, platform = make_platform()

    def long(fc):
        yield fc.env.timeout(1000.0)
        return "ok"

    platform.register(FunctionSpec("long", long))
    inv, proc = platform.invoke("long")
    env.run(until=proc)
    assert inv.status == "completed"


def test_watchdog_survives_body_failure():
    """Regression: a handler that raises before its deadline must not take
    the watchdog process (and with it the whole simulation) down."""
    env, platform = make_platform()

    def broken(fc):
        yield fc.env.timeout(0.5)
        raise RuntimeError("handler bug")

    platform.register(FunctionSpec("broken", broken, max_duration_s=60.0))
    inv, proc = platform.invoke("broken")
    with pytest.raises(RuntimeError):
        env.run(until=proc)
    assert inv.status == "failed"
    # Pre-fix the watchdog re-raised the body's exception here as an
    # unhandled process failure.
    env.run()
    assert env.now < 60.0


def test_watchdog_deadline_cancelled_on_completion():
    """Regression: after a function finishes, its watchdog's deadline must
    not linger in the event heap keeping the run alive to the full limit."""
    env, platform = make_platform()

    def quick(fc):
        yield fc.env.timeout(2.0)
        return "done"

    platform.register(FunctionSpec("quick", quick, max_duration_s=1000.0))
    inv, proc = platform.invoke("quick")
    env.run(until=proc)
    assert inv.status == "completed"
    env.run()  # drain; pre-fix this idled until the 1000 s deadline fired
    assert env.now == pytest.approx(2.0)


def test_timeout_releases_gpu_lease_and_memory():
    """A timed-out GPU function must not leak its API server or memory."""
    dep = DgsfDeployment(DgsfConfig(num_gpus=1))
    dep.setup()
    base = dep.gpu_server.devices[0].mem_used

    def hog(fc):
        gpu = yield from fc.acquire_gpu()
        yield from gpu.cudaMalloc(1 * GB)
        fptr = yield from gpu.cudaGetFunction("timed")
        yield from gpu.cudaLaunchKernel(fptr, args=(1000.0,))
        yield from gpu.cudaDeviceSynchronize()

    def follower(fc):
        gpu = yield from fc.acquire_gpu()
        yield from gpu.cudaGetDeviceCount()
        return "ran"

    dep.platform.register(
        FunctionSpec("hog", hog, gpu_mem_bytes=2 * GB, max_duration_s=3.0)
    )
    dep.platform.register(
        FunctionSpec("follower", follower, gpu_mem_bytes=2 * GB)
    )
    inv, proc = dep.platform.invoke("hog")
    with pytest.raises(FunctionTimeLimitExceeded):
        dep.env.run(until=proc)
    assert inv.status == "timeout"
    # the 1000 s kernel is still draining on the GPU, but the *session*
    # cleanup is queued behind it; the monitor slot must come back
    inv2, proc2 = dep.platform.invoke("follower")
    dep.env.run(until=proc2)
    assert inv2.result == "ran"
    assert dep.gpu_server.devices[0].mem_used == base
    assert dep.gpu_server.monitor.committed[0] == 0
