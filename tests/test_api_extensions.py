"""Tests for the extended API surface: cudaMemGetInfo, event timing."""

import pytest

from repro.core import DgsfConfig
from repro.simcuda import CudaError, LocalCudaRuntime, SimGPU
from repro.simcuda.types import GB, MB
from repro.sim import Environment
from repro.testing import make_world


def drive(env, gen):
    proc = env.process(gen)
    return env.run(until=proc)


# --- native runtime -----------------------------------------------------------

def test_native_mem_get_info_tracks_allocations():
    env = Environment()
    gpu = SimGPU(env, 0)
    rt = LocalCudaRuntime(env, [gpu])
    free0, total = drive(env, rt.cudaMemGetInfo())
    assert total == 16 * GB
    assert free0 == total - 303 * MB  # context footprint
    ptr = drive(env, rt.cudaMalloc(1 * GB))
    free1, _ = drive(env, rt.cudaMemGetInfo())
    assert free0 - free1 == 1 * GB
    drive(env, rt.cudaFree(ptr))


def test_native_event_elapsed_time():
    env = Environment()
    gpu = SimGPU(env, 0)
    rt = LocalCudaRuntime(env, [gpu])
    fptr = drive(env, rt.cudaGetFunction("timed"))
    from repro.simcuda.types import Dim3

    def run(env):
        e1 = yield from rt.cudaEventCreate()
        e2 = yield from rt.cudaEventCreate()
        yield from rt.cudaEventRecord(e1)
        yield from rt.cudaLaunchKernel(fptr, Dim3(1), Dim3(1), (0.75,))
        yield from rt.cudaEventRecord(e2)
        yield from rt.cudaEventSynchronize(e2)
        return (yield from rt.cudaEventElapsedTime(e1, e2))

    ms = drive(env, run(env))
    assert ms == pytest.approx(750.0, abs=20.0)


def test_native_elapsed_time_requires_completed_events():
    env = Environment()
    rt = LocalCudaRuntime(env, [SimGPU(env, 0)])

    def run(env):
        e1 = yield from rt.cudaEventCreate()
        e2 = yield from rt.cudaEventCreate()
        return (yield from rt.cudaEventElapsedTime(e1, e2))

    with pytest.raises(CudaError):
        drive(env, run(env))


# --- DGSF guest ------------------------------------------------------------------

def test_guest_mem_get_info_is_restricted_to_declared_budget():
    """The function must see its *declared* budget, not the GPU server's
    real memory state (information hiding, §V-B)."""
    world = make_world(DgsfConfig(num_gpus=2))
    guest, server, rpc = world.attach_guest(declared_bytes=2 * GB)
    free, total = world.drive(guest.cudaMemGetInfo())
    assert total == 2 * GB
    assert free == 2 * GB
    ptr = world.drive(guest.cudaMalloc(512 * MB))
    free2, total2 = world.drive(guest.cudaMemGetInfo())
    assert total2 == 2 * GB
    assert free2 == 2 * GB - 512 * MB
    world.drive(guest.cudaFree(ptr))
    world.detach_guest(guest, server, rpc)


def test_guest_mem_get_info_cached_locally_after_first_call():
    world = make_world(DgsfConfig(num_gpus=1))
    guest, server, rpc = world.attach_guest(declared_bytes=1 * GB)
    world.drive(guest.cudaMemGetInfo())
    before = guest.calls_forwarded
    world.drive(guest.cudaMemGetInfo())
    assert guest.calls_forwarded == before  # localized on second call
    world.detach_guest(guest, server, rpc)


def test_guest_event_elapsed_time_over_network():
    world = make_world(DgsfConfig(num_gpus=1))
    guest, server, rpc = world.attach_guest()
    fptr = world.drive(guest.cudaGetFunction("timed"))

    def run(env):
        e1 = yield from guest.cudaEventCreate()
        e2 = yield from guest.cudaEventCreate()
        yield from guest.cudaEventRecord(e1)
        yield from guest.cudaLaunchKernel(fptr, args=(0.5,))
        yield from guest.cudaEventRecord(e2)
        yield from guest.cudaEventSynchronize(e2)
        return (yield from guest.cudaEventElapsedTime(e1, e2))

    ms = world.drive(run(world.env))
    assert ms == pytest.approx(500.0, abs=30.0)
    world.detach_guest(guest, server, rpc)
