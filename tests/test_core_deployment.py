"""Full-stack deployment tests: platform + provider + GPU server."""

import numpy as np
import pytest

from repro.core import DgsfConfig
from repro.core.deployment import DgsfDeployment, NativeDeployment
from repro.core.stats import summarize_invocations
from repro.faas import FunctionSpec
from repro.simcuda.types import GB, MB


def gpu_handler(fc):
    """A minimal GPU function: malloc, H2D, kernel, D2H, free."""
    t0 = fc.env.now
    gpu = yield from fc.acquire_gpu()
    yield from gpu.cudaGetDeviceCount()
    fc.add_phase("cuda_init_app", fc.env.now - t0 - fc.invocation.phases.get("gpu_queue", 0.0))
    ptr = yield from gpu.cudaMalloc(1 * MB)
    yield from gpu.memcpyH2D(ptr, 1 * MB, payload=np.arange(256, dtype=np.uint8))
    fptr = yield from gpu.cudaGetFunction("increment")
    yield from gpu.cudaLaunchKernel(fptr, args=(0.5, ptr, 256))
    yield from gpu.cudaDeviceSynchronize()
    data = yield from gpu.memcpyD2H(ptr, 256)
    yield from gpu.cudaFree(ptr)
    return int(data[0])


def test_dgsf_function_runs_end_to_end():
    dep = DgsfDeployment(DgsfConfig(num_gpus=2))
    dep.setup()
    dep.platform.register(
        FunctionSpec(name="f", handler=gpu_handler, gpu_mem_bytes=1 * GB)
    )
    inv, proc = dep.platform.invoke("f")
    dep.env.run(until=proc)
    assert inv.status == "completed"
    assert inv.result == 1  # incremented once
    assert "gpu_queue" in inv.phases
    assert inv.phases["cuda_init_app"] < 0.1  # remote context was pre-created


def test_native_function_pays_cuda_init():
    dep = NativeDeployment(num_gpus=1)
    dep.setup()
    dep.platform.register(
        FunctionSpec(name="f", handler=gpu_handler, gpu_mem_bytes=1 * GB)
    )
    inv, proc = dep.platform.invoke("f")
    dep.env.run(until=proc)
    assert inv.status == "completed"
    assert inv.result == 1
    assert inv.phases["cuda_init_app"] >= 3.2


def test_dgsf_beats_native_for_init_bound_function():
    """The paper's headline: pre-initialization makes DGSF faster than
    native for short functions despite remoting overhead."""

    def run(dep):
        dep.setup()
        dep.platform.register(
            FunctionSpec(name="f", handler=gpu_handler, gpu_mem_bytes=1 * GB)
        )
        inv, proc = dep.platform.invoke("f")
        dep.env.run(until=proc)
        return inv.e2e_s

    native = run(NativeDeployment(num_gpus=1))
    dgsf = run(DgsfDeployment(DgsfConfig(num_gpus=1)))
    assert dgsf < native
    assert native - dgsf > 2.0  # most of the 3.2 s init is hidden


def test_functions_queue_for_gpu_when_server_busy():
    dep = DgsfDeployment(DgsfConfig(num_gpus=1))
    dep.setup()
    dep.platform.register(
        FunctionSpec(name="f", handler=gpu_handler, gpu_mem_bytes=1 * GB)
    )
    inv1, p1 = dep.platform.invoke("f")
    inv2, p2 = dep.platform.invoke("f")
    dep.env.run(until=dep.env.all_of([p1, p2]))
    waits = sorted([inv1.phases["gpu_queue"], inv2.phases["gpu_queue"]])
    assert waits[0] < 0.01
    assert waits[1] > 0.3  # waited for the first function's GPU


def test_gpu_memory_released_between_invocations():
    dep = DgsfDeployment(DgsfConfig(num_gpus=1))
    dep.setup()
    base = dep.gpu_server.devices[0].mem_used
    dep.platform.register(
        FunctionSpec(name="f", handler=gpu_handler, gpu_mem_bytes=1 * GB)
    )
    for _ in range(3):
        inv, proc = dep.platform.invoke("f")
        dep.env.run(until=proc)
    assert dep.gpu_server.devices[0].mem_used == base
    assert dep.gpu_server.monitor.committed[0] == 0


def test_lambda_deployment_is_slower():
    def run(dep):
        dep.setup()
        dep.storage.put_object("blob", 200 * MB)

        def handler(fc):
            yield from fc.download(["blob"])
            return (yield from gpu_handler(fc))

        dep.platform.register(
            FunctionSpec(name="f", handler=handler, gpu_mem_bytes=1 * GB)
        )
        inv, proc = dep.platform.invoke("f")
        dep.env.run(until=proc)
        return inv

    fast = run(DgsfDeployment(DgsfConfig(num_gpus=1)))
    slow = run(DgsfDeployment.lambda_deployment(DgsfConfig(num_gpus=1)))
    assert slow.phases["download"] > fast.phases["download"] * 1.5
    assert slow.e2e_s > fast.e2e_s


def test_summarize_invocations():
    dep = DgsfDeployment(DgsfConfig(num_gpus=2))
    dep.setup()
    dep.platform.register(
        FunctionSpec(name="f", handler=gpu_handler, gpu_mem_bytes=1 * GB)
    )
    procs = [dep.platform.invoke("f")[1] for _ in range(4)]
    dep.env.run(until=dep.env.all_of(procs))
    stats = summarize_invocations(dep.platform.invocations)
    assert stats.per_workload["f"].count == 4
    assert stats.function_e2e_sum_s >= stats.per_workload["f"].mean_e2e_s * 4 * 0.99
    assert stats.provider_e2e_s > 0


def test_summarize_empty_rejected():
    with pytest.raises(ValueError):
        summarize_invocations([])


def test_setup_twice_rejected():
    from repro.errors import ConfigurationError

    dep = DgsfDeployment(DgsfConfig(num_gpus=1))
    dep.setup()
    with pytest.raises(ConfigurationError):
        dep.setup()
