"""Full coverage of the native GPU session facade (interface parity with
the guest library — the same workload code must run on both)."""

import numpy as np
import pytest

from repro.core.deployment import NativeGpuSession
from repro.simcuda import LocalCudaRuntime, SimGPU, CudaError
from repro.simcuda.types import GB, MB
from repro.sim import Environment


@pytest.fixture
def native():
    env = Environment()
    gpu = SimGPU(env, 0)
    session = NativeGpuSession(env, LocalCudaRuntime(env, [gpu]))
    return env, gpu, session


def drive(env, gen):
    proc = env.process(gen)
    return env.run(until=proc)


def test_facade_method_parity_with_guest():
    """Every public GPU-API method of the guest must exist on the native
    facade with the same name (the workload contract)."""
    from repro.core.guest import GuestLibrary

    guest_api = {
        name for name in dir(GuestLibrary)
        if name.startswith(("cuda", "cudnn", "cublas", "memcpy", "pushCall"))
    }
    native_api = {
        name for name in dir(NativeGpuSession)
        if name.startswith(("cuda", "cudnn", "cublas", "memcpy", "pushCall"))
    }
    missing = guest_api - native_api
    assert not missing, f"native facade missing: {sorted(missing)}"


def test_device_management(native):
    env, gpu, s = native
    assert drive(env, s.cudaGetDeviceCount()) == 1
    props = drive(env, s.cudaGetDeviceProperties(0))
    assert "V100" in props["name"]
    drive(env, s.cudaSetDevice(0))


def test_memory_roundtrip(native):
    env, gpu, s = native
    data = np.arange(512, dtype=np.uint8)
    ptr = drive(env, s.cudaMalloc(512))
    drive(env, s.memcpyH2D(ptr, 512, payload=data))
    back = drive(env, s.memcpyD2H(ptr, 512))
    assert np.array_equal(back[:512], data)
    drive(env, s.cudaFree(ptr))


def test_d2d_and_memset(native):
    env, gpu, s = native
    a = drive(env, s.cudaMalloc(128))
    b = drive(env, s.cudaMalloc(128))
    drive(env, s.cudaMemset(a, 0x3C, 128))
    drive(env, s.memcpyD2D(b, a, 128))
    back = drive(env, s.memcpyD2H(b, 128))
    assert np.all(back[:128] == 0x3C)


def test_host_memory_and_attrs(native):
    env, gpu, s = native
    hptr = drive(env, s.cudaMallocHost(4096))
    attrs = drive(env, s.cudaPointerGetAttributes(hptr))
    assert not attrs.is_device
    drive(env, s.cudaFreeHost(hptr))
    dptr = drive(env, s.cudaMalloc(4096))
    attrs = drive(env, s.cudaPointerGetAttributes(dptr))
    assert attrs.is_device


def test_kernels_streams_events(native):
    env, gpu, s = native
    fptr = drive(env, s.cudaGetFunction("timed"))
    stream = drive(env, s.cudaStreamCreate())
    event = drive(env, s.cudaEventCreate())

    def run(env):
        yield from s.pushCallConfiguration(grid=(2, 1, 1), block=(32, 1, 1))
        yield from s.cudaLaunchKernel(fptr, grid=(2, 1, 1), block=(32, 1, 1),
                                      args=(0.4,), stream=stream)
        yield from s.cudaEventRecord(event, stream)
        t0 = env.now
        yield from s.cudaEventSynchronize(event)
        return env.now - t0

    waited = drive(env, run(env))
    assert waited == pytest.approx(0.4, abs=0.02)
    drive(env, s.cudaStreamDestroy(stream))


def test_cudnn_and_cublas(native):
    env, gpu, s = native
    h = drive(env, s.cudnnCreate())
    d = drive(env, s.cudnnCreateDescriptor("tensor"))
    drive(env, s.cudnnSetDescriptor(d, n=4))
    drive(env, s.cudnnDestroyDescriptor(d))
    t0 = env.now
    drive(env, s.cudnnOp(h, "conv_fwd", 0.3, sync=True))
    assert env.now - t0 == pytest.approx(0.3, abs=0.02)
    hb = drive(env, s.cublasCreate())
    drive(env, s.cublasOp(hb, "gemm", 0.1, sync=True))


def test_device_synchronize_and_counters(native):
    env, gpu, s = native
    fptr = drive(env, s.cudaGetFunction("timed"))

    def run(env):
        yield from s.cudaLaunchKernel(fptr, args=(0.2,))
        yield from s.cudaDeviceSynchronize()

    drive(env, run(env))
    assert s.calls_intercepted > 0
    assert s.calls_forwarded == 0  # nothing crosses a network natively
