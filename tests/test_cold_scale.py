"""Container pool elasticity (cold-start scale-out extension)."""

import pytest

from repro.errors import ConfigurationError
from repro.faas import ContainerPool
from repro.sim import Environment
from repro.simnet import Network


def make(replicas=1, cold_start_s=2.0, max_replicas=3):
    env = Environment()
    net = Network(env)
    host = net.add_host("fn")
    pool = ContainerPool(env, host, "f", replicas=replicas,
                         cold_start_s=cold_start_s, max_replicas=max_replicas)
    return env, pool


def test_warm_replicas_are_instant():
    env, pool = make()

    def user(env):
        t0 = env.now
        c, token = yield from pool.acquire()
        waited = env.now - t0
        pool.release(c, token)
        return waited

    p = env.process(user(env))
    env.run(until=p)
    assert p.value == 0.0
    assert pool.cold_starts == 0


def test_scale_out_pays_cold_start():
    env, pool = make(replicas=1, cold_start_s=2.0, max_replicas=2)
    starts = []

    def user(env, hold):
        c, token = yield from pool.acquire()
        starts.append(env.now)
        yield env.timeout(hold)
        pool.release(c, token)

    env.process(user(env, 10.0))
    env.process(user(env, 1.0))
    env.run()
    assert starts[0] == 0.0
    assert starts[1] == pytest.approx(2.0)  # cold container boot
    assert pool.cold_starts == 1
    assert pool.replicas == 2


def test_scale_out_bounded_by_max_replicas():
    env, pool = make(replicas=1, cold_start_s=0.5, max_replicas=2)
    starts = []

    def user(env, name):
        c, token = yield from pool.acquire()
        starts.append((name, env.now))
        yield env.timeout(5.0)
        pool.release(c, token)

    for name in "abc":
        env.process(user(env, name))
    env.run()
    # third user had to wait for a release (cap 2)
    assert starts[2][1] >= 5.0
    assert pool.replicas == 2


def test_default_pool_never_scales():
    env = Environment()
    net = Network(env)
    pool = ContainerPool(env, net.add_host("x"), "f", replicas=2)
    assert pool.max_replicas == 2
    assert pool.cold_starts == 0


def test_invalid_max_replicas_rejected():
    env = Environment()
    net = Network(env)
    with pytest.raises(ConfigurationError):
        ContainerPool(env, net.add_host("x"), "f", replicas=4, max_replicas=2)


def test_cold_containers_become_warm_for_reuse():
    env, pool = make(replicas=1, cold_start_s=1.0, max_replicas=2)
    log = []

    def user(env, name, delay, hold):
        yield env.timeout(delay)
        t0 = env.now
        c, token = yield from pool.acquire()
        log.append((name, env.now - t0))
        yield env.timeout(hold)
        pool.release(c, token)

    env.process(user(env, "a", 0.0, 5.0))
    env.process(user(env, "b", 0.0, 5.0))   # cold start
    env.process(user(env, "c", 8.0, 1.0))   # both containers warm by then
    env.run()
    assert dict((n, w) for n, w in log)["c"] == 0.0
    assert pool.cold_starts == 1
