"""API-server artifact cache: LRU policy, download integration, lifecycle.

The cache keeps models/inputs staged on the API server's machine so warm
repeats skip the object-store GET; it is invalidated on server crash and
teardown (the staging directory dies with the process).
"""

import pytest

from repro.core.config import DgsfConfig
from repro.core.deployment import DgsfDeployment
from repro.errors import ConfigurationError
from repro.faas.storage import ArtifactCache, ObjectStore
from repro.sim import Environment
from repro.workloads import register_workloads


# --- LRU policy (pure unit tests) --------------------------------------------

def test_lru_eviction_order_respects_recency():
    cache = ArtifactCache(100)
    cache.insert("a", 60)
    cache.insert("b", 30)
    assert cache.lookup("a") == 60  # touch: a is now most-recent
    cache.insert("c", 30)  # needs room: evicts b, not a
    assert "a" in cache and "c" in cache and "b" not in cache
    assert cache.used_bytes == 90
    assert cache.evictions == 1


def test_oversized_object_is_not_admitted():
    cache = ArtifactCache(100)
    cache.insert("small", 40)
    cache.insert("huge", 1000)  # would evict everything for a sure miss
    assert "huge" not in cache
    assert "small" in cache
    assert cache.evictions == 0


def test_reinsert_replaces_and_counters_track_bytes():
    cache = ArtifactCache(100)
    assert cache.lookup("x") is None
    cache.insert("x", 40)
    cache.insert("x", 70)  # replaced, not duplicated
    assert cache.used_bytes == 70
    assert cache.lookup("x") == 70
    assert cache.hits == 1 and cache.misses == 1
    assert cache.hit_bytes == 70


def test_invalidate_all_empties_and_counts_once():
    cache = ArtifactCache(100)
    cache.insert("a", 10)
    cache.insert("b", 20)
    cache.invalidate_all()
    assert len(cache) == 0 and cache.used_bytes == 0
    assert cache.invalidations == 1
    cache.invalidate_all()  # already empty: not another invalidation
    assert cache.invalidations == 1


def test_cache_requires_positive_capacity():
    with pytest.raises(ConfigurationError):
        ArtifactCache(0)


# --- download integration ----------------------------------------------------

def test_download_through_cache_skips_store_on_warm_repeat():
    env = Environment()
    store = ObjectStore(env)
    store.put_object("model", 100_000_000)
    store.put_object("input", 10_000_000)
    cache = ArtifactCache(1 << 30)

    def run_once():
        def body():
            got = yield from store.download_through_cache(
                "host", ["model", "input"], cache
            )
            return got, env.now

        t0 = env.now
        proc = env.process(body())
        got, t_end = env.run(until=proc)
        return got, t_end - t0

    cold_bytes, cold_time = run_once()
    warm_bytes, warm_time = run_once()
    assert cold_bytes == warm_bytes == 110_000_000
    # Warm: only the local staging latency remains.
    assert warm_time == pytest.approx(cache.hit_latency_s)
    assert warm_time < cold_time / 10
    assert cache.hits == 2 and cache.misses == 2


# --- deployment lifecycle ----------------------------------------------------

def warm_deployment(workload="kmeans", cache_bytes=4 << 30):
    dep = DgsfDeployment(DgsfConfig(num_gpus=1, artifact_cache_bytes=cache_bytes))
    dep.setup()
    register_workloads(dep.platform, names=[workload])
    return dep


def invoke(dep, workload="kmeans"):
    inv, proc = dep.platform.invoke(workload)
    dep.env.run(until=proc)
    assert inv.status == "completed", inv.result
    return inv


def test_warm_repeat_skips_object_store_download():
    dep = warm_deployment()
    cold = invoke(dep)
    server = dep.gpu_server.api_servers[0]
    assert server.artifact_cache is not None
    assert server.artifact_cache.used_bytes > 0  # survives session teardown
    warm = invoke(dep)
    assert warm.phases["download"] < cold.phases["download"]
    assert warm.e2e_s < cold.e2e_s
    assert server.artifact_cache.hits > 0


def test_crash_invalidates_cache():
    dep = warm_deployment()
    invoke(dep)
    server = dep.gpu_server.api_servers[0]
    cache = server.artifact_cache
    assert cache.used_bytes > 0
    server.crash()
    assert cache.used_bytes == 0
    assert cache.invalidations == 1


def test_shutdown_invalidates_cache():
    dep = warm_deployment()
    invoke(dep)
    caches = [s.artifact_cache for s in dep.gpu_server.api_servers]
    assert any(c.used_bytes > 0 for c in caches)

    def teardown():
        yield from dep.gpu_server.shutdown()

    proc = dep.env.process(teardown())
    dep.env.run(until=proc)
    assert all(c.used_bytes == 0 for c in caches)


def test_cache_disabled_by_default():
    dep = DgsfDeployment(DgsfConfig(num_gpus=1))
    dep.setup()
    register_workloads(dep.platform, names=["kmeans"])
    assert all(s.artifact_cache is None for s in dep.gpu_server.api_servers)
    cold = invoke(dep)
    repeat = invoke(dep)
    # Without the cache the repeat pays the full download again.
    assert repeat.phases["download"] == pytest.approx(
        cold.phases["download"], rel=0.01
    )


def test_cpu_only_functions_never_acquire_a_gpu_for_caching():
    dep = warm_deployment()

    class FakeSpec:
        gpu_mem_bytes = 0

    class FakeContext:
        spec = FakeSpec()

        def acquire_gpu(self):
            raise AssertionError("CPU-only function must not acquire a GPU")
            yield  # pragma: no cover

    gen = dep.platform.gpu_provider.artifact_cache_for(FakeContext())
    try:
        while True:
            next(gen)
    except StopIteration as stop:
        assert stop.value is None
