"""LLM serving: decode engine, KV-cache ledger charges, determinism
goldens, and shard-layout invariance.

The engine-level tests drive ``llmConfigure``/``llmSubmit``/``llmStep``
through a manually attached guest (the remoting layer, not the faas
platform), so the monitor ledger assertions see exactly one session.
The end-to-end goldens pin the chat workloads' token timelines: traces
come from each workload's fixed ``trace_seed``, so emission CRCs must be
bit-identical across reruns, platform seeds, and shard layouts.
"""

import pytest

from repro.core import DgsfConfig
from repro.errors import ConfigurationError
from repro.experiments.llm_ablation import run_llm_scenario
from repro.faas.topology import llm_shard_collect, llm_shard_scenario
from repro.sim.shard import run_sharded
from repro.simcuda.errors import CudaError
from repro.simcuda.types import GB, MB
from repro.testing import make_world

ENGINE_KWARGS = dict(
    kv_bytes_per_token=1 * MB,
    kv_page_tokens=16,          # page = 16 MB
    prefill_s_per_token=0.0001,
    decode_base_s=0.002,
    decode_s_per_seq=0.001,
    max_batch=4,
)

LLM_SHARD_ARGS = (2, 1, 3.0, "llm_chat", "continuous")  # copies, gpus, gap, wl, mode
LLM_HORIZON_S = 400.0


def attach_llm_guest(world, declared=1 * GB):
    """Grant a server through the monitor (so it holds a ledger charge),
    then wire a guest to it — the path ``charge_extra`` requires."""
    req = world.monitor.submit_request(declared)
    server = world.env.run(until=req.granted)
    guest, api_server, rpc_server = world.attach_guest(
        api_server=server, declared_bytes=declared
    )
    return guest, api_server, rpc_server


def teardown_llm_guest(world, guest, api_server, rpc_server):
    world.detach_guest(guest, api_server, rpc_server)
    world.monitor.release(api_server)


# -- engine lifecycle + validation --------------------------------------------

def test_llm_configure_validates_mode_and_rejects_reconfigure():
    world = make_world(DgsfConfig(num_gpus=1))
    guest, api_server, rpc_server = attach_llm_guest(world)
    with pytest.raises(CudaError, match="cudaErrorInvalidValue"):
        world.drive(guest.llmConfigure(mode="speculative", **ENGINE_KWARGS))
    world.drive(guest.llmConfigure(**ENGINE_KWARGS))
    with pytest.raises(CudaError, match="already configured"):
        world.drive(guest.llmConfigure(**ENGINE_KWARGS))
    teardown_llm_guest(world, guest, api_server, rpc_server)


def test_llm_step_without_configure_is_an_error():
    world = make_world(DgsfConfig(num_gpus=1))
    guest, api_server, rpc_server = attach_llm_guest(world)
    with pytest.raises(CudaError, match="cudaErrorInitializationError"):
        world.drive(guest.llmStep())
    teardown_llm_guest(world, guest, api_server, rpc_server)


def test_llm_config_batch_cap_clamps_engine_max_batch():
    world = make_world(DgsfConfig(num_gpus=1, llm_max_decode_batch=2))
    guest, api_server, rpc_server = attach_llm_guest(world)
    kwargs = dict(ENGINE_KWARGS, max_batch=8)
    granted_batch = world.drive(guest.llmConfigure(**kwargs))
    assert granted_batch == 2
    teardown_llm_guest(world, guest, api_server, rpc_server)


def test_llm_config_rejects_nonpositive_batch_cap():
    with pytest.raises(ConfigurationError):
        DgsfConfig(llm_max_decode_batch=0)


# -- KV pages are real ledger charges -----------------------------------------

def test_kv_pages_charge_and_release_through_monitor_ledger():
    declared = 1 * GB
    page_bytes = ENGINE_KWARGS["kv_bytes_per_token"] * ENGINE_KWARGS["kv_page_tokens"]
    world = make_world(DgsfConfig(num_gpus=1))
    guest, api_server, rpc_server = attach_llm_guest(world, declared=declared)
    world.drive(guest.llmConfigure(**ENGINE_KWARGS))
    world.drive(guest.llmSubmit(1, prompt_tokens=40, output_tokens=8))

    emissions = world.drive(guest.llmStep())
    assert emissions == [(1, 1, False)]
    # 40 prompt + 1 generated + 1 next = 42 context tokens -> 3 pages of 16
    charged = world.monitor.charged_bytes(api_server)
    assert charged == declared + 3 * page_bytes
    # the charge is on the device's committed ledger, not a side account
    device = world.monitor.charged_device(api_server)
    assert world.monitor.committed[device] >= charged

    while True:
        emissions = world.drive(guest.llmStep())
        if not emissions or emissions[-1][2]:
            break
    # sequence finished: pages released, base declared charge intact
    assert world.monitor.charged_bytes(api_server) == declared
    stats = world.drive(guest.llmStats())
    assert stats["kv_pages_peak"] == 3
    assert stats["n_iterations"] == 8
    teardown_llm_guest(world, guest, api_server, rpc_server)


def test_storm_scenario_denies_pages_and_preempts():
    records, dep = run_llm_scenario("llm_chat_storm", "continuous", copies=2,
                                    burst_gap_s=0.15)
    assert all(rec.status == "completed" for rec in records)
    totals = {k: sum(rec.result[k] for rec in records)
              for k in ("n_kv_denials", "n_preemptions", "n_recomputes")}
    assert totals["n_kv_denials"] > 0
    assert totals["n_preemptions"] > 0
    assert totals["n_recomputes"] > 0
    # cache pressure was visible on the committed gauge (near/at capacity)
    peak = max(max(g.values) for g in dep.metrics.find("gpu.committed_frac")
               if g.values)
    assert peak > 0.95


def test_migration_moves_engine_under_cache_pressure():
    records, dep = run_llm_scenario(
        "llm_chat_long", "continuous", num_gpus=2, migration_enabled=True,
        policy="best_fit", copies=2, burst_gap_s=0.5,
    )
    assert all(rec.status == "completed" for rec in records)
    moves = [m for server in dep.gpu_servers
             for m in server.monitor.migration_records]
    assert len(moves) >= 1


# -- determinism goldens ------------------------------------------------------

def _crc_census(records):
    return sorted(
        (rec.result["emission_crc"], rec.result["n_tokens"]) for rec in records
    )


def test_llm_serve_rerun_is_bit_identical():
    first, _ = run_llm_scenario("llm_chat", "continuous")
    second, _ = run_llm_scenario("llm_chat", "continuous")
    assert _crc_census(first) == _crc_census(second)
    assert ([round(rec.t_end, 9) for rec in first]
            == [round(rec.t_end, 9) for rec in second])


def test_llm_token_counts_are_platform_seed_stable():
    # chat traces are drawn from the workload's fixed trace_seed, never
    # from the platform seed, so token counts cannot move with it
    a, _ = run_llm_scenario("llm_chat", "continuous", seed=0)
    b, _ = run_llm_scenario("llm_chat", "continuous", seed=1)
    assert (sorted(rec.result["n_tokens"] for rec in a)
            == sorted(rec.result["n_tokens"] for rec in b))


# -- shard-layout invariance --------------------------------------------------

def run_llm_sharded(num_shards, scenario_args=LLM_SHARD_ARGS, **kw):
    return run_sharded(
        llm_shard_scenario, num_shards=num_shards, total_groups=2, seed=0,
        scenario_args=scenario_args, collect=llm_shard_collect,
        until=LLM_HORIZON_S, mode="inline", **kw,
    )


def test_llm_outcome_invariant_across_shard_layouts():
    solo = run_llm_sharded(1)
    split = run_llm_sharded(2)
    assert solo.merged == split.merged
    assert solo.merged_digest == split.merged_digest
    for row in solo.merged.values():
        assert row["n"] == row["completed"] == 2
        assert row["n_tokens"] > 0
        assert len(row["emission_crcs"]) == 2


def test_tracing_leaves_llm_outcome_unchanged_and_emits_token_instants():
    plain = run_llm_sharded(2)
    traced = run_llm_sharded(
        2, scenario_args=LLM_SHARD_ARGS[:-1] + ("continuous", True),
        tracing=True,
    )
    assert traced.merged == plain.merged
    assert traced.merged_digest == plain.merged_digest
    assert traced.tracer is not None and traced.trace_digest != 0
    tokens = [rec for rec in traced.tracer.records if rec.name == "llm_token"]
    merged_tokens = sum(row["n_tokens"] for row in traced.merged.values())
    assert len(tokens) == merged_tokens  # one instant per emitted token
