"""Forwarded-API counters: the paper's §V-C reduction claims.

"DGSF is able to reduce the number of forwarded CUDA APIs when doing
inference by up to 48% for ONNX runtime and up to 96% for TensorFlow."
"""

import pytest

from repro.core import DgsfConfig, OptimizationFlags
from repro.mllib import OnnxInferenceSession, TfSession
from repro.simcuda.types import GB, MB
from repro.workloads import WORKLOADS
from repro.testing import make_world


def run_session(flags, framework, spec, batches=4):
    world = make_world(DgsfConfig(num_gpus=1, optimizations=flags))
    guest, server, rpc = world.attach_guest(
        declared_bytes=14 * GB, flags=flags
    )
    if framework == "onnx":
        session = OnnxInferenceSession(world.env, guest, spec)
        world.drive(session.load())
    else:
        session = TfSession(world.env, guest, spec, arena_bytes=512 * MB)
        world.drive(session.load())
    start_fwd = guest.calls_forwarded_individually
    start_int = guest.calls_intercepted
    for _ in range(batches):
        world.drive(session.run(input_bytes=1 * MB))
    # the paper's metric: calls that still cross as their own message
    # (batched calls are piggybacked, localized calls never leave)
    forwarded = guest.calls_forwarded_individually - start_fwd
    intercepted = guest.calls_intercepted - start_int
    world.drive(session.close())
    world.detach_guest(guest, server, rpc)
    return forwarded, intercepted


def reduction(framework, spec):
    unopt_fwd, _ = run_session(OptimizationFlags.none(), framework, spec)
    # batched calls still cross the network as calls (fewer messages);
    # the *forwarded* reduction comes from localization, so measure the
    # fully-optimized guest's synchronous+batched traffic vs unoptimized
    opt_fwd, _ = run_session(OptimizationFlags.all(), framework, spec)
    return 1.0 - opt_fwd / unopt_fwd


def test_onnx_forwarded_reduction_near_paper():
    spec = WORKLOADS["face_identification"].spec
    red = reduction("onnx", spec)
    # paper: up to 48% for ONNX Runtime (our per-call aggregation shifts
    # the ratio somewhat; the ONNX≪TF ordering is the robust claim)
    assert 0.35 <= red <= 0.85, f"ONNX reduction {red:.0%}"


def test_tf_forwarded_reduction_near_paper():
    spec = WORKLOADS["covidctnet"].spec
    red = reduction("tf", spec)
    # paper: up to 96% for TensorFlow — TF's traffic is almost entirely
    # localizable/batchable
    assert red >= 0.70, f"TF reduction {red:.0%}"


def test_tf_reduction_exceeds_onnx_reduction():
    onnx_red = reduction("onnx", WORKLOADS["face_identification"].spec)
    tf_red = reduction("tf", WORKLOADS["covidctnet"].spec)
    assert tf_red > onnx_red


def test_message_reduction_is_much_larger_than_call_reduction():
    """Batching collapses many forwarded calls into few messages."""
    spec = WORKLOADS["face_identification"].spec
    world = make_world(DgsfConfig(num_gpus=1))
    guest, server, rpc = world.attach_guest(declared_bytes=14 * GB)
    session = OnnxInferenceSession(world.env, guest, spec)
    world.drive(session.load())
    m0, c0 = guest.messages_sent, guest.calls_forwarded
    world.drive(session.run(input_bytes=1 * MB))
    messages = guest.messages_sent - m0
    calls = guest.calls_forwarded - c0
    assert messages < calls  # batches carry multiple calls per message
    world.drive(session.close())
    world.detach_guest(guest, server, rpc)
