"""Failure-injection tests: the system must stay consistent when
functions misbehave or exhaust resources."""

import numpy as np
import pytest

from repro.core import DgsfConfig
from repro.core.deployment import DgsfDeployment
from repro.errors import SimulationError
from repro.faas import FunctionSpec
from repro.simcuda.errors import CudaError
from repro.simcuda.types import GB, MB
from repro.testing import make_world


def test_oom_function_fails_but_server_is_reusable():
    """A function that blows its declared limit dies with a CudaError;
    the API server must clean up fully and serve the next function."""
    dep = DgsfDeployment(DgsfConfig(num_gpus=1))
    dep.setup()
    base = dep.gpu_server.devices[0].mem_used

    def greedy(fc):
        gpu = yield from fc.acquire_gpu()
        yield from gpu.cudaMalloc(500 * MB)      # fine
        yield from gpu.cudaMalloc(700 * MB)      # exceeds 1 GB declared

    def modest(fc):
        gpu = yield from fc.acquire_gpu()
        ptr = yield from gpu.cudaMalloc(100 * MB)
        yield from gpu.cudaFree(ptr)
        return "ok"

    dep.platform.register(FunctionSpec("greedy", greedy, gpu_mem_bytes=1 * GB))
    dep.platform.register(FunctionSpec("modest", modest, gpu_mem_bytes=1 * GB))

    inv, proc = dep.platform.invoke("greedy")
    with pytest.raises(CudaError, match="cudaErrorMemoryAllocation"):
        dep.env.run(until=proc)
    assert inv.status == "failed"
    # leaked 500 MB must have been reclaimed at session end
    assert dep.gpu_server.devices[0].mem_used == base
    assert dep.gpu_server.monitor.committed[0] == 0

    inv2, proc2 = dep.platform.invoke("modest")
    dep.env.run(until=proc2)
    assert inv2.status == "completed"
    assert inv2.result == "ok"


def test_handler_crash_releases_gpu_lease():
    """A Python exception mid-GPU-phase must release the API server."""
    dep = DgsfDeployment(DgsfConfig(num_gpus=1))
    dep.setup()

    def crasher(fc):
        gpu = yield from fc.acquire_gpu()
        yield from gpu.cudaMalloc(10 * MB)
        raise RuntimeError("application bug")

    def follower(fc):
        gpu = yield from fc.acquire_gpu()
        yield from gpu.cudaGetDeviceCount()
        return "ran"

    dep.platform.register(FunctionSpec("crasher", crasher, gpu_mem_bytes=1 * GB))
    dep.platform.register(FunctionSpec("follower", follower, gpu_mem_bytes=1 * GB))
    inv, proc = dep.platform.invoke("crasher")
    with pytest.raises(RuntimeError):
        dep.env.run(until=proc)
    assert not dep.gpu_server.api_servers[0].busy
    inv2, proc2 = dep.platform.invoke("follower")
    dep.env.run(until=proc2)
    assert inv2.result == "ran"


def test_guest_double_free_raises_locally():
    world = make_world(DgsfConfig(num_gpus=1))
    guest, server, rpc = world.attach_guest()
    ptr = world.drive(guest.cudaMalloc(1 * MB))
    world.drive(guest.cudaFree(ptr))
    with pytest.raises(CudaError):
        world.drive(guest.cudaFree(ptr))
    world.detach_guest(guest, server, rpc)


def test_guest_free_of_foreign_pointer_raises():
    world = make_world(DgsfConfig(num_gpus=1))
    guest, server, rpc = world.attach_guest()
    with pytest.raises(CudaError):
        world.drive(guest.cudaFree(0xDEAD_BEEF))
    world.detach_guest(guest, server, rpc)


def test_launch_with_invalid_token_fails_at_server():
    world = make_world(DgsfConfig(num_gpus=1))
    # disable batching so the launch error surfaces synchronously
    from repro.core import OptimizationFlags
    flags = OptimizationFlags.all().with_(batching=False)
    guest, server, rpc = world.attach_guest(flags=flags)
    with pytest.raises(CudaError, match="cudaErrorInvalidResourceHandle"):
        world.drive(guest.cudaLaunchKernel(0x999, args=(0.1,)))
    world.detach_guest(guest, server, rpc)


def test_pool_exhaustion_falls_back_to_inline_creation():
    """When the shared handle pool runs dry, cudnnCreate still works —
    it just pays the full 1.2 s inline."""
    world = make_world(DgsfConfig(num_gpus=1, pool_handles_per_gpu=1))
    guest, server, rpc = world.attach_guest(declared_bytes=4 * GB)
    t0 = world.env.now
    h1 = world.drive(guest.cudnnCreate())   # server's own handle: fast
    h2 = world.drive(guest.cudnnCreate())   # shared pool: fast
    assert world.env.now - t0 < 0.3
    t0 = world.env.now
    h3 = world.drive(guest.cudnnCreate())   # pool dry: inline creation
    assert world.env.now - t0 >= 1.2
    assert len({h1, h2, h3}) == 3
    world.detach_guest(guest, server, rpc)


def test_migration_without_free_slot_is_refused():
    world = make_world(DgsfConfig(num_gpus=2))
    from repro.core.migration import migrate_api_server

    g1, s1, r1 = world.attach_guest(api_server=world.gpu_server.api_servers[0])
    # occupy GPU 1's migration slot
    world.gpu_server.claim_migration_slot(world.gpu_server.api_servers[1], 1)
    with pytest.raises(SimulationError, match="no free migration slot"):
        world.drive(migrate_api_server(s1, 1))
    world.detach_guest(g1, s1, r1)


def test_deterministic_across_runs():
    """Same seed → bit-identical mixed-scenario statistics."""
    from repro.experiments.runner import make_plan, run_mixed_scenario

    def run():
        plan = make_plan("exponential", seed=11, copies=1,
                         names=["kmeans", "face_identification"])
        cfg = DgsfConfig(num_gpus=2, seed=11)
        return run_mixed_scenario(cfg, plan).stats

    a, b = run(), run()
    assert a.provider_e2e_s == b.provider_e2e_s
    assert a.function_e2e_sum_s == b.function_e2e_sum_s


def test_different_seeds_differ():
    from repro.experiments.runner import make_plan

    p1 = make_plan("exponential", seed=1, copies=2)
    p2 = make_plan("exponential", seed=2, copies=2)
    assert list(p1.times) != list(p2.times) or p1.names != p2.names
