"""Unit tests for the repro.obs metrics registry."""

import numpy as np
import pytest

from repro.obs import Counter, Gauge, Histogram, MetricsRegistry, percentile


# --- instruments -------------------------------------------------------------

def test_counter_increments_and_rejects_negative():
    c = Counter("x", {})
    c.inc()
    c.inc(4)
    assert c.value == 5
    with pytest.raises(ValueError):
        c.inc(-1)


def test_gauge_keeps_series_and_last_value():
    g = Gauge("g", {})
    assert g.value is None
    g.set(0.5, t=1.0)
    g.set(0.7, t=2.0)
    assert g.value == 0.7
    assert g.series() == [(1.0, 0.5), (2.0, 0.7)]


def test_histogram_percentiles_match_numpy():
    h = Histogram("h", {})
    rng = np.random.default_rng(7)
    values = rng.uniform(0, 100, size=257)
    for v in values:
        h.observe(float(v))
    for q in (50, 95, 99):
        assert h.percentile(q) == pytest.approx(float(np.percentile(values, q)))
    assert h.p50 == h.percentile(50)
    assert h.mean == pytest.approx(float(values.mean()))
    assert h.count == 257


def test_histogram_empty_raises():
    h = Histogram("h", {})
    with pytest.raises(ValueError):
        h.mean
    with pytest.raises(ValueError):
        h.percentile(50)


def test_percentile_single_value_and_interpolation():
    assert percentile([3.0], 50) == 3.0
    assert percentile([1.0, 2.0], 50) == pytest.approx(1.5)
    assert percentile([0.0, 10.0], 95) == pytest.approx(9.5)
    with pytest.raises(ValueError):
        percentile([], 50)


# --- registry ----------------------------------------------------------------

def test_registry_get_or_create_is_idempotent():
    reg = MetricsRegistry()
    a = reg.counter("rpc.calls", guest=1)
    b = reg.counter("rpc.calls", guest=1)
    assert a is b
    other = reg.counter("rpc.calls", guest=2)
    assert other is not a
    assert len(reg) == 2


def test_registry_kind_mismatch_raises():
    reg = MetricsRegistry()
    reg.counter("m")
    with pytest.raises(TypeError):
        reg.gauge("m")
    with pytest.raises(TypeError):
        reg.histogram("m")


def test_registry_find_matches_label_superset():
    reg = MetricsRegistry()
    reg.counter("cache.hits", server=0, tier="ssd").inc(3)
    reg.counter("cache.hits", server=1, tier="ssd").inc(5)
    reg.counter("cache.misses", server=0).inc(9)
    hits = list(reg.find("cache.hits", tier="ssd"))
    assert len(hits) == 2
    only0 = list(reg.find("cache.hits", server=0))
    assert len(only0) == 1 and only0[0].value == 3
    assert reg.total("cache.hits") == 8
    assert reg.total("cache.hits", server=1) == 5
    assert reg.total("nothing.here") == 0


def test_registry_as_dict_snapshot():
    reg = MetricsRegistry()
    reg.counter("a.b", x=1).inc(2)
    reg.gauge("g").set(0.25, t=3.0)
    reg.histogram("h").observe(1.0)
    snap = reg.as_dict()
    assert snap["a.b{x=1}"] == 2
    assert snap["g"]["last"] == 0.25
    assert snap["h"]["count"] == 1


# --- percentile edge cases ---------------------------------------------------

def test_percentile_empty_series_raises():
    with pytest.raises(ValueError):
        percentile([], 50)
    h = Histogram("h", {})
    with pytest.raises(ValueError):
        h.percentile(95)
    with pytest.raises(ValueError):
        h.mean


def test_percentile_single_sample_is_that_sample():
    for q in (0, 50, 95, 100):
        assert percentile([7.5], q) == 7.5


def test_percentile_q0_and_q100_are_min_and_max():
    values = [9.0, 1.0, 5.0, 3.0]
    assert percentile(values, 0) == 1.0
    assert percentile(values, 100) == 9.0


def test_percentile_sorts_its_input():
    shuffled = [30.0, 10.0, 20.0]
    assert percentile(shuffled, 50) == 20.0
    # and does not mutate the caller's list
    assert shuffled == [30.0, 10.0, 20.0]


def test_percentile_interpolates_between_ranks():
    # pos = 0.75 * (2 - 1) = 0.75 between 10 and 20
    assert percentile([10.0, 20.0], 75) == pytest.approx(17.5)


# --- cross-shard snapshot merge ----------------------------------------------

def _registry_with_hist(values, name="lat"):
    registry = MetricsRegistry()
    hist = registry.histogram(name)
    for v in values:
        hist.observe(float(v))
    return registry


def test_merge_snapshot_adds_counters_and_resorts_gauges():
    a = MetricsRegistry()
    a.counter("reqs", shard=0).inc(3)
    a.gauge("load").set(1.0, t=2.0)
    b = MetricsRegistry()
    b.counter("reqs", shard=0).inc(4)
    b.gauge("load").set(0.5, t=1.0)

    merged = MetricsRegistry()
    merged.merge_snapshot(a.snapshot())
    merged.merge_snapshot(b.snapshot())
    assert merged.total("reqs") == 7
    (gauge,) = merged.find("load")
    assert gauge.times == [1.0, 2.0]        # re-sorted by sample time
    assert gauge.values == [0.5, 1.0]


def test_merge_snapshot_rejects_unknown_kind():
    with pytest.raises(ValueError):
        MetricsRegistry().merge_snapshot([("thermometer", "t", (), 1)])


def test_histogram_merge_below_cap_is_exact():
    from repro.obs.metrics import _HISTOGRAM_CAP

    merged = MetricsRegistry()
    merged.merge_snapshot(_registry_with_hist(range(100)).snapshot())
    merged.merge_snapshot(_registry_with_hist(range(100, 300)).snapshot())
    (hist,) = merged.find("lat")
    assert hist.count == 300
    assert hist.total == sum(range(300))
    assert len(hist.observations) == 300 < _HISTOGRAM_CAP
    assert not hist.truncated and hist.dropped == 0


def test_histogram_merge_recaps_pooled_sample_at_the_bound():
    """Two shards each just under the 65536 retention cap: the pooled
    sample crosses it and must be strided down, while count/total stay
    exact accumulators."""
    from repro.obs.metrics import _HISTOGRAM_CAP

    n = _HISTOGRAM_CAP - 1          # largest untruncated single-shard sample
    merged = MetricsRegistry()
    merged.merge_snapshot(_registry_with_hist(range(n)).snapshot())
    merged.merge_snapshot(_registry_with_hist(range(n, 2 * n)).snapshot())
    (hist,) = merged.find("lat")
    assert hist.count == 2 * n                       # exact, not sampled
    assert hist.total == sum(range(2 * n))           # exact, not sampled
    assert len(hist.observations) < _HISTOGRAM_CAP   # re-capped
    assert hist.truncated and hist._stride == 2
    assert hist.dropped == 2 * n - len(hist.observations)
    # the retained sample still spans the value range usefully
    assert hist.percentile(50) == pytest.approx(n, rel=0.05)


def test_histogram_merge_exactly_at_cap_still_strides():
    # len(observations) == cap must trigger the re-cap (>= bound), never
    # leave a full-to-the-brim sample that the next observe would mangle
    from repro.obs.metrics import _HISTOGRAM_CAP

    half = _HISTOGRAM_CAP // 2
    merged = MetricsRegistry()
    merged.merge_snapshot(_registry_with_hist(range(half)).snapshot())
    merged.merge_snapshot(
        _registry_with_hist(range(half, _HISTOGRAM_CAP)).snapshot())
    (hist,) = merged.find("lat")
    assert hist.count == _HISTOGRAM_CAP
    assert len(hist.observations) == _HISTOGRAM_CAP // 2
    assert hist._stride == 2


def test_histogram_merge_of_already_truncated_shards():
    from repro.obs.metrics import _HISTOGRAM_CAP

    n = _HISTOGRAM_CAP + 10          # each shard already strided
    a = _registry_with_hist(range(n))
    b = _registry_with_hist(range(n, 2 * n))
    (ha,) = a.find("lat")
    assert ha.truncated
    merged = MetricsRegistry()
    merged.merge_snapshot(a.snapshot())
    merged.merge_snapshot(b.snapshot())
    (hist,) = merged.find("lat")
    assert hist.count == 2 * n
    assert hist.total == sum(range(2 * n))
    assert len(hist.observations) < _HISTOGRAM_CAP
    assert hist.percentile(95) == pytest.approx(1.9 * n, rel=0.05)
