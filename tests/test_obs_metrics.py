"""Unit tests for the repro.obs metrics registry."""

import numpy as np
import pytest

from repro.obs import Counter, Gauge, Histogram, MetricsRegistry, percentile


# --- instruments -------------------------------------------------------------

def test_counter_increments_and_rejects_negative():
    c = Counter("x", {})
    c.inc()
    c.inc(4)
    assert c.value == 5
    with pytest.raises(ValueError):
        c.inc(-1)


def test_gauge_keeps_series_and_last_value():
    g = Gauge("g", {})
    assert g.value is None
    g.set(0.5, t=1.0)
    g.set(0.7, t=2.0)
    assert g.value == 0.7
    assert g.series() == [(1.0, 0.5), (2.0, 0.7)]


def test_histogram_percentiles_match_numpy():
    h = Histogram("h", {})
    rng = np.random.default_rng(7)
    values = rng.uniform(0, 100, size=257)
    for v in values:
        h.observe(float(v))
    for q in (50, 95, 99):
        assert h.percentile(q) == pytest.approx(float(np.percentile(values, q)))
    assert h.p50 == h.percentile(50)
    assert h.mean == pytest.approx(float(values.mean()))
    assert h.count == 257


def test_histogram_empty_raises():
    h = Histogram("h", {})
    with pytest.raises(ValueError):
        h.mean
    with pytest.raises(ValueError):
        h.percentile(50)


def test_percentile_single_value_and_interpolation():
    assert percentile([3.0], 50) == 3.0
    assert percentile([1.0, 2.0], 50) == pytest.approx(1.5)
    assert percentile([0.0, 10.0], 95) == pytest.approx(9.5)
    with pytest.raises(ValueError):
        percentile([], 50)


# --- registry ----------------------------------------------------------------

def test_registry_get_or_create_is_idempotent():
    reg = MetricsRegistry()
    a = reg.counter("rpc.calls", guest=1)
    b = reg.counter("rpc.calls", guest=1)
    assert a is b
    other = reg.counter("rpc.calls", guest=2)
    assert other is not a
    assert len(reg) == 2


def test_registry_kind_mismatch_raises():
    reg = MetricsRegistry()
    reg.counter("m")
    with pytest.raises(TypeError):
        reg.gauge("m")
    with pytest.raises(TypeError):
        reg.histogram("m")


def test_registry_find_matches_label_superset():
    reg = MetricsRegistry()
    reg.counter("cache.hits", server=0, tier="ssd").inc(3)
    reg.counter("cache.hits", server=1, tier="ssd").inc(5)
    reg.counter("cache.misses", server=0).inc(9)
    hits = list(reg.find("cache.hits", tier="ssd"))
    assert len(hits) == 2
    only0 = list(reg.find("cache.hits", server=0))
    assert len(only0) == 1 and only0[0].value == 3
    assert reg.total("cache.hits") == 8
    assert reg.total("cache.hits", server=1) == 5
    assert reg.total("nothing.here") == 0


def test_registry_as_dict_snapshot():
    reg = MetricsRegistry()
    reg.counter("a.b", x=1).inc(2)
    reg.gauge("g").set(0.25, t=3.0)
    reg.histogram("h").observe(1.0)
    snap = reg.as_dict()
    assert snap["a.b{x=1}"] == 2
    assert snap["g"]["last"] == 0.25
    assert snap["h"]["count"] == 1


# --- percentile edge cases ---------------------------------------------------

def test_percentile_empty_series_raises():
    with pytest.raises(ValueError):
        percentile([], 50)
    h = Histogram("h", {})
    with pytest.raises(ValueError):
        h.percentile(95)
    with pytest.raises(ValueError):
        h.mean


def test_percentile_single_sample_is_that_sample():
    for q in (0, 50, 95, 100):
        assert percentile([7.5], q) == 7.5


def test_percentile_q0_and_q100_are_min_and_max():
    values = [9.0, 1.0, 5.0, 3.0]
    assert percentile(values, 0) == 1.0
    assert percentile(values, 100) == 9.0


def test_percentile_sorts_its_input():
    shuffled = [30.0, 10.0, 20.0]
    assert percentile(shuffled, 50) == 20.0
    # and does not mutate the caller's list
    assert shuffled == [30.0, 10.0, 20.0]


def test_percentile_interpolates_between_ranks():
    # pos = 0.75 * (2 - 1) = 0.75 between 10 and 20
    assert percentile([10.0, 20.0], 75) == pytest.approx(17.5)
