"""Full-stack sharding tests (repro.faas.topology + repro.sim.shard).

Each group hosts a complete DgsfDeployment (servers, scheduler, API
backend); the shard layout must be an implementation detail — the merged
outcome summary has to be identical whether the groups share one
Environment or are split across shards.
"""

import pytest

from repro.errors import ConfigurationError
from repro.faas.topology import (
    DEFAULT_LOOKAHEAD_S,
    DGSF_PLAN_START_S,
    dgsf_collect,
    dgsf_scenario,
    pool_collect,
    pool_scenario,
)
from repro.sim.shard import run_sharded

DGSF_ARGS = (2, 2, 2.0)        # copies, num_gpus, mean_gap_s
HORIZON_S = 4000.0


def run_dgsf(num_shards, seed=0, until=HORIZON_S, lookahead=None, **kw):
    scenario_args = kw.pop("scenario_args", DGSF_ARGS)
    return run_sharded(
        dgsf_scenario, num_shards=num_shards, total_groups=2, seed=seed,
        scenario_args=scenario_args, collect=dgsf_collect,
        until=until, lookahead_s=lookahead, mode="inline", **kw,
    )


def test_dgsf_outcome_invariant_across_shard_layouts():
    """Co-resident (1 shard) vs one-deployment-per-shard (2 shards)."""
    solo = run_dgsf(1)
    split = run_dgsf(2)
    assert solo.merged == split.merged
    assert solo.merged_digest == split.merged_digest
    for row in solo.merged.values():
        assert row["outcomes"]["total"] == row["n"] >= 1
        assert row["outcomes"]["all_terminal"]


def test_dgsf_merged_outcome_is_seed_stable():
    # Note: the outcome *summary* is insensitive to the seed itself at this
    # scale (kernel durations are deterministic and DGSF shares GPUs, so
    # e2e doesn't depend on arrival spacing) — the property under test is
    # that repeated runs of one seed are digest-identical.
    assert run_dgsf(2).merged_digest == run_dgsf(2).merged_digest


def test_dgsf_collect_raises_when_horizon_truncates_plan():
    # The plan starts at DGSF_PLAN_START_S; a horizon before any
    # invocation can complete must fail loudly, not report partial data.
    with pytest.raises(ConfigurationError):
        run_dgsf(1, until=DGSF_PLAN_START_S + 0.5)


def test_pool_collect_raises_on_incomplete_invocations():
    # Cut the run off mid-stream: invocations are still in flight.
    with pytest.raises(ConfigurationError):
        run_sharded(
            pool_scenario, num_shards=1, total_groups=2, seed=7,
            scenario_args=(500, 2, 0.05, 0.18, None, 0),
            collect=pool_collect, until=1.0, mode="inline",
        )


def test_traced_dgsf_stitches_cross_shard_report():
    """The acceptance bar: a control-plane envelope carrying trace context
    joins spans from both shards into one trace tree in the merged trace."""
    r = run_dgsf(2, scenario_args=(2, 2, 2.0, None, True),
                 lookahead=DEFAULT_LOOKAHEAD_S, tracing=True)
    assert r.tracer is not None and r.trace_digest != 0
    assert r.n_envelopes >= 1
    assert isinstance(r.alerts, list)
    reports = [rec for rec in r.tracer.records
               if rec.name == "envelope:send"
               and rec.args.get("channel") == "report"]
    assert len(reports) == 1
    stitch_trace = reports[0].trace_id
    trace_spans = [rec for rec in r.tracer.records
                   if rec.trace_id == stitch_trace]
    tracks = {rec.pid.split("/", 1)[0] for rec in trace_spans}
    assert {"shard0", "shard1"} <= tracks  # the tree really crosses shards
    cats = {rec.cat for rec in trace_spans}
    assert "invocation" in cats           # rooted at a real invocation
    names = {rec.name for rec in trace_spans}
    assert "envelope:recv" in names       # delivered on the far shard


def test_tracing_leaves_dgsf_outcome_unchanged():
    plain = run_dgsf(2, lookahead=DEFAULT_LOOKAHEAD_S)
    traced = run_dgsf(2, scenario_args=(2, 2, 2.0, None, True),
                      lookahead=DEFAULT_LOOKAHEAD_S, tracing=True)
    assert traced.merged == plain.merged
    assert traced.merged_digest == plain.merged_digest
    assert traced.n_epochs == plain.n_epochs
    assert traced.n_envelopes == plain.n_envelopes


def test_pool_latencies_are_aggregated_in_invocation_order():
    r = run_sharded(
        pool_scenario, num_shards=2, total_groups=2, seed=7,
        scenario_args=(100, 2, 0.05, 0.18, None, 0),
        collect=pool_collect, mode="inline",
    )
    for row in r.merged.values():
        assert row["n"] == 100
        assert 0.0 < row["p50_ms"] <= row["p95_ms"] <= row["max_ms"]
