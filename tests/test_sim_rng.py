"""Unit tests for named RNG streams."""

import numpy as np

from repro.sim import RngRegistry


def test_same_seed_same_stream():
    a = RngRegistry(seed=42).stream("arrivals")
    b = RngRegistry(seed=42).stream("arrivals")
    assert np.array_equal(a.random(10), b.random(10))


def test_different_names_are_independent():
    reg = RngRegistry(seed=42)
    a = reg.stream("arrivals").random(10)
    b = reg.stream("network").random(10)
    assert not np.array_equal(a, b)


def test_different_seeds_differ():
    a = RngRegistry(seed=1).stream("x").random(10)
    b = RngRegistry(seed=2).stream("x").random(10)
    assert not np.array_equal(a, b)


def test_creation_order_does_not_matter():
    r1 = RngRegistry(seed=7)
    r1.stream("zzz")
    x1 = r1.stream("aaa").random(5)
    r2 = RngRegistry(seed=7)
    x2 = r2.stream("aaa").random(5)
    assert np.array_equal(x1, x2)


def test_stream_is_cached():
    reg = RngRegistry(seed=0)
    assert reg.stream("s") is reg.stream("s")
    assert "s" in reg


def test_reset_restarts_streams():
    reg = RngRegistry(seed=3)
    first = reg.stream("s").random(4)
    reg.reset()
    again = reg.stream("s").random(4)
    assert np.array_equal(first, again)
