"""Unit tests for named RNG streams."""

import numpy as np

from repro.sim import RngRegistry


def test_same_seed_same_stream():
    a = RngRegistry(seed=42).stream("arrivals")
    b = RngRegistry(seed=42).stream("arrivals")
    assert np.array_equal(a.random(10), b.random(10))


def test_different_names_are_independent():
    reg = RngRegistry(seed=42)
    a = reg.stream("arrivals").random(10)
    b = reg.stream("network").random(10)
    assert not np.array_equal(a, b)


def test_different_seeds_differ():
    a = RngRegistry(seed=1).stream("x").random(10)
    b = RngRegistry(seed=2).stream("x").random(10)
    assert not np.array_equal(a, b)


def test_creation_order_does_not_matter():
    r1 = RngRegistry(seed=7)
    r1.stream("zzz")
    x1 = r1.stream("aaa").random(5)
    r2 = RngRegistry(seed=7)
    x2 = r2.stream("aaa").random(5)
    assert np.array_equal(x1, x2)


def test_stream_is_cached():
    reg = RngRegistry(seed=0)
    assert reg.stream("s") is reg.stream("s")
    assert "s" in reg


def test_reset_restarts_streams():
    reg = RngRegistry(seed=3)
    first = reg.stream("s").random(4)
    reg.reset()
    again = reg.stream("s").random(4)
    assert np.array_equal(first, again)


# --- forked substreams (sharded runs) ---------------------------------------

def test_fork_is_stable_and_independent_of_parent_draws():
    baseline = RngRegistry(seed=9).fork("group[2]").stream("arrivals").random(8)
    parent = RngRegistry(seed=9)
    parent.stream("arrivals").random(1000)  # parent consumption is irrelevant
    assert np.array_equal(
        baseline, parent.fork("group[2]").stream("arrivals").random(8))


def test_fork_draws_do_not_shift_with_sibling_draw_count():
    """The shard-invariance property: group A's stream is bit-identical no
    matter how much randomness group B consumes."""
    solo = RngRegistry(seed=5).fork("group[0]").stream("x").random(16)

    reg = RngRegistry(seed=5)
    reg.fork("group[1]").stream("x").random(3)       # light sibling use
    light = reg.fork("group[0]").stream("x").random(16)

    reg2 = RngRegistry(seed=5)
    sibling = reg2.fork("group[1]")
    for name in ("x", "y", "z"):
        sibling.stream(name).random(5000)            # heavy sibling use
    heavy = reg2.fork("group[0]").stream("x").random(16)

    assert np.array_equal(solo, light)
    assert np.array_equal(solo, heavy)


def test_forks_differ_from_each_other_and_from_root():
    reg = RngRegistry(seed=4)
    root = reg.stream("s").random(8)
    a = reg.fork("a").stream("s").random(8)
    b = reg.fork("b").stream("s").random(8)
    assert not np.array_equal(root, a)
    assert not np.array_equal(a, b)


def test_nested_forks_are_namespaced_not_flattened():
    reg = RngRegistry(seed=4)
    nested = reg.fork("a").fork("b").stream("s").random(8)
    flat = reg.fork("ab").stream("s").random(8)
    assert not np.array_equal(nested, flat)


def test_spawn_matches_indexed_namespace():
    reg = RngRegistry(seed=11)
    assert np.array_equal(
        reg.spawn(3).stream("s").random(8),
        RngRegistry(seed=11, namespace="[3]/").stream("s").random(8))
    assert not np.array_equal(
        reg.spawn(3).stream("s").random(8),
        reg.spawn(4).stream("s").random(8))


def test_fork_rejects_empty_name_and_negative_spawn():
    import pytest

    reg = RngRegistry(seed=0)
    with pytest.raises(ValueError):
        reg.fork("")
    with pytest.raises(ValueError):
        reg.spawn(-1)


def test_root_namespace_entropy_unchanged():
    """The root registry's derivation must stay the historical
    [seed, *ord(name)] — determinism goldens depend on it."""
    legacy = np.random.default_rng(
        np.random.SeedSequence([42] + [ord(c) for c in "arrivals"]))
    assert np.array_equal(
        legacy.random(8), RngRegistry(seed=42).stream("arrivals").random(8))
