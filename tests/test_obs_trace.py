"""Unit tests for the repro.obs span tracer and Chrome export."""

import json

import pytest

from repro.obs import Tracer
from repro.sim import Environment


def make_tracer(**kw):
    return Tracer(Environment(), **kw)


# --- span lifecycle ----------------------------------------------------------

def test_begin_end_records_span():
    tracer = make_tracer()
    span = tracer.begin("work", cat="test", pid="p", tid="t",
                        trace_id=tracer.new_trace_id(), foo=1)
    tracer.env.run(until=2.5)
    span.end(status="ok")
    (rec,) = tracer.records
    assert rec.name == "work" and rec.cat == "test"
    assert rec.t_start == 0.0 and rec.t_end == 2.5
    assert rec.args == {"foo": 1, "status": "ok"}
    assert rec.ph == "X"


def test_end_is_idempotent():
    tracer = make_tracer()
    span = tracer.begin("once")
    span.end()
    span.end()
    assert len(tracer.records) == 1


def test_end_at_explicit_time():
    tracer = make_tracer()
    span = tracer.begin("s")
    tracer.env.run(until=5.0)
    span.end(t_end=3.0)
    assert tracer.records[0].t_end == 3.0


def test_children_share_trace_and_parent():
    tracer = make_tracer()
    root = tracer.begin("root", trace_id=tracer.new_trace_id())
    child = root.child("child")
    child.end()
    root.child_complete("done", 0.0, 1.0, cat="phase")
    root.instant("blip", detail="x")
    root.end()
    by_name = {r.name: r for r in tracer.records}
    for name in ("child", "done", "blip"):
        assert by_name[name].parent_id == root.span_id
        assert by_name[name].trace_id == root.trace_id
    assert by_name["blip"].ph == "i"
    assert by_name["done"].cat == "phase"


def test_phase_helper_records_trailing_window():
    tracer = make_tracer()
    root = tracer.begin("root", trace_id=tracer.new_trace_id())
    tracer.env.run(until=4.0)
    root.phase("download", 1.5)
    (rec,) = tracer.records
    assert rec.t_start == pytest.approx(2.5)
    assert rec.t_end == pytest.approx(4.0)
    assert rec.cat == "phase"


def test_complete_with_raw_parent_id():
    """Server-side layers only carry the wire (trace_id, span_id) context."""
    tracer = make_tracer()
    tracer.complete("srv:exec", 1.0, 2.0, cat="server",
                    trace_id=42, parent_id=7, server=3)
    (rec,) = tracer.records
    assert rec.trace_id == 42 and rec.parent_id == 7
    assert rec.duration_s == pytest.approx(1.0)


# --- bounding ----------------------------------------------------------------

def test_tracer_never_drops_silently():
    tracer = make_tracer(max_spans=3)
    for i in range(5):
        tracer.complete(f"s{i}", 0.0, 1.0)
    assert len(tracer.records) == 3
    assert tracer.dropped == 2
    assert tracer.summary()["dropped"] == 2
    assert tracer.to_chrome()["otherData"]["dropped"] == 2


def test_max_spans_validation():
    with pytest.raises(ValueError):
        make_tracer(max_spans=0)


# --- queries -----------------------------------------------------------------

def test_queries_by_cat_name_and_trace():
    tracer = make_tracer()
    t1, t2 = tracer.new_trace_id(), tracer.new_trace_id()
    tracer.complete("a", 0, 1, cat="rpc", trace_id=t1)
    tracer.complete("b", 0, 2, cat="phase", trace_id=t1)
    tracer.complete("c", 0, 3, cat="rpc", trace_id=t2)
    tracer.instant("retry", trace_id=t2)
    assert len(tracer.spans()) == 3
    assert [r.name for r in tracer.spans("rpc")] == ["a", "c"]
    assert [r.name for r in tracer.instants("retry")] == ["retry"]
    grouped = tracer.by_trace()
    assert {len(grouped[t1]), len(grouped[t2])} == {2}
    s = tracer.summary()
    assert s["spans"] == 3 and s["instants"] == 1 and s["traces"] == 2


# --- Chrome export -----------------------------------------------------------

def test_chrome_export_format(tmp_path):
    tracer = make_tracer()
    trace_id = tracer.new_trace_id()
    root = tracer.begin("invocation:x", cat="invocation",
                        pid="invocations", tid="inv-1", trace_id=trace_id)
    tracer.env.run(until=1.25)
    root.phase("download", 1.0)
    root.instant("blip")
    root.end()
    out = tracer.to_chrome()
    assert out["displayTimeUnit"] == "ms"
    events = out["traceEvents"]
    meta = [e for e in events if e["ph"] == "M"]
    assert {m["name"] for m in meta} == {"process_name", "thread_name"}
    # integer pids/tids, names carried in metadata
    assert all(isinstance(e["pid"], int) for e in events)
    xs = [e for e in events if e["ph"] == "X"]
    root_ev = next(e for e in xs if e["name"] == "invocation:x")
    assert root_ev["ts"] == 0.0 and root_ev["dur"] == pytest.approx(1.25e6)
    phase_ev = next(e for e in xs if e["name"] == "download")
    assert phase_ev["args"]["parent_id"] == root.span_id
    assert phase_ev["args"]["trace_id"] == trace_id
    inst = next(e for e in events if e["ph"] == "i")
    assert inst["s"] == "t"
    # round-trips through a file as valid JSON
    path = tmp_path / "trace.json"
    tracer.dump_chrome(path)
    assert json.loads(path.read_text())["otherData"]["clock"] == "sim-seconds"


# --- open spans at export time -----------------------------------------------

def test_open_spans_counted_and_closed_synthetically():
    tracer = make_tracer()
    trace_id = tracer.new_trace_id()
    root = tracer.begin("invocation:live", cat="invocation", trace_id=trace_id)
    rpc = tracer.begin("rpc:launch", cat="rpc", parent=root)
    tracer.env.run(until=3.0)
    assert tracer.open_spans == 2
    assert tracer.summary()["open_spans"] == 2
    out = tracer.to_chrome()
    assert out["otherData"]["open_spans"] == 2
    # both in-flight spans are exported, flagged, and end at env.now
    synthetic = [e for e in out["traceEvents"]
                 if e["ph"] == "X" and e["args"].get("open") is True]
    assert {e["name"] for e in synthetic} == {"invocation:live", "rpc:launch"}
    for e in synthetic:
        assert e["ts"] + e["dur"] == pytest.approx(3.0e6)
    # export is a view: nothing was stored and the spans stay open
    assert tracer.records == []
    assert tracer.open_spans == 2
    # a real end later records normally, without the flag
    rpc.end()
    root.end()
    assert tracer.open_spans == 0
    assert all("open" not in r.args for r in tracer.records)
    assert not any(e["args"].get("open")
                   for e in tracer.to_chrome()["traceEvents"]
                   if e["ph"] == "X")


def test_open_span_started_in_future_never_ends_before_start():
    tracer = make_tracer()
    tracer.begin("late", t_start=5.0)
    assert tracer.env.now == 0.0
    (rec,) = [e for e in tracer.to_chrome()["traceEvents"] if e["ph"] == "X"]
    # synthetic end clamps to t_start: duration is never negative
    assert rec["dur"] == 0.0


# --- snapshot / merge / digest (the sharded-trace substrate) -----------------

def _record_workload(tracer, n=3):
    for i in range(n):
        root = tracer.begin("invocation", cat="invocation", pid="group0",
                            tid=f"inv-{i}", trace_id=tracer.new_trace_id(),
                            index=i)
        root.child_complete("phase", float(i), i + 0.5, cat="phase")
        root.end(t_end=i + 1.0)


def test_namespaced_counters_are_disjoint_blocks():
    a = Tracer(Environment(), namespace=0)
    b = Tracer(Environment(), namespace=3)
    _record_workload(a, n=2)
    _record_workload(b, n=2)
    a_ids = {r.span_id for r in a.records} | {r.trace_id for r in a.records}
    b_ids = {r.span_id for r in b.records} | {r.trace_id for r in b.records}
    assert a_ids.isdisjoint(b_ids)
    assert all(i >= 3 * (1 << 40) for i in b_ids)
    # ids are deterministic: a rebuilt tracer allocates identically
    b2 = Tracer(Environment(), namespace=3)
    _record_workload(b2, n=2)
    assert [r.span_id for r in b2.records] == [r.span_id for r in b.records]


def test_digest_is_invariant_to_id_namespace():
    a = Tracer(Environment(), namespace=0)
    b = Tracer(Environment(), namespace=7)
    _record_workload(a)
    _record_workload(b)
    assert [r.span_id for r in a.records] != [r.span_id for r in b.records]
    assert a.digest() == b.digest() != 0


def test_digest_canonicalizes_unknown_parents():
    from repro.obs import trace_digest

    a = Tracer(Environment())
    a.complete("leaf", 0.0, 1.0, parent_id=10**9)      # dangling parent
    b = Tracer(Environment())
    b.complete("leaf", 0.0, 1.0, parent_id=10**9 + 5)  # different dangler
    assert trace_digest(a.records) == trace_digest(b.records)
    c = Tracer(Environment())
    c.complete("leaf", 0.5, 1.0, parent_id=10**9)      # different content
    assert trace_digest(c.records) != trace_digest(a.records)


def test_snapshot_round_trips_through_merge_target():
    source = Tracer(Environment(), namespace=2)
    _record_workload(source)
    still_open = source.begin("inflight", cat="rpc")
    source.env.run(until=10.0)

    target = Tracer(None, max_spans=100)
    added = target.merge_snapshot(source.snapshot())
    assert added == len(source.records) + 1   # open span shipped too
    assert target.now == 10.0                 # merged clock follows t_end
    assert target.digest() == source.digest()
    (inflight,) = [r for r in target.records if r.name == "inflight"]
    assert inflight.args.get("open") is True
    still_open.end()


def test_merge_track_prefix_rehomes_processes():
    source = Tracer(Environment(), namespace=1)
    _record_workload(source, n=1)
    target = Tracer(None)
    target.merge_snapshot(source.snapshot(), track_prefix="shard1/")
    assert {r.pid for r in target.records} == {"shard1/group0"}
    # prefixing changes the canonical content, by design
    assert target.digest() != source.digest()


def test_merge_in_shard_order_is_deterministic():
    def build(namespace):
        t = Tracer(Environment(), namespace=namespace)
        _record_workload(t, n=2)
        return t.snapshot()

    merged_a = Tracer(None)
    merged_b = Tracer(None)
    for ns in (0, 1):
        merged_a.merge_snapshot(build(ns), track_prefix=f"shard{ns}/")
        merged_b.merge_snapshot(build(ns), track_prefix=f"shard{ns}/")
    assert merged_a.digest() == merged_b.digest()


def test_merge_rejects_foreign_snapshot_versions():
    target = Tracer(None)
    with pytest.raises(ValueError):
        target.merge_snapshot({"version": 999, "records": []})
    with pytest.raises(ValueError):
        target.merge_snapshot(["not", "a", "snapshot"])


def test_merge_accumulates_drops_instead_of_losing_spans():
    source = Tracer(Environment(), max_spans=2)
    _record_workload(source, n=3)   # 6 records against a cap of 2
    assert source.dropped > 0
    target = Tracer(None, max_spans=1)
    target.merge_snapshot(source.snapshot())
    assert len(target.records) == 1
    assert target.dropped == source.dropped + 1
