"""Unit tests for the repro.obs span tracer and Chrome export."""

import json

import pytest

from repro.obs import Tracer
from repro.sim import Environment


def make_tracer(**kw):
    return Tracer(Environment(), **kw)


# --- span lifecycle ----------------------------------------------------------

def test_begin_end_records_span():
    tracer = make_tracer()
    span = tracer.begin("work", cat="test", pid="p", tid="t",
                        trace_id=tracer.new_trace_id(), foo=1)
    tracer.env.run(until=2.5)
    span.end(status="ok")
    (rec,) = tracer.records
    assert rec.name == "work" and rec.cat == "test"
    assert rec.t_start == 0.0 and rec.t_end == 2.5
    assert rec.args == {"foo": 1, "status": "ok"}
    assert rec.ph == "X"


def test_end_is_idempotent():
    tracer = make_tracer()
    span = tracer.begin("once")
    span.end()
    span.end()
    assert len(tracer.records) == 1


def test_end_at_explicit_time():
    tracer = make_tracer()
    span = tracer.begin("s")
    tracer.env.run(until=5.0)
    span.end(t_end=3.0)
    assert tracer.records[0].t_end == 3.0


def test_children_share_trace_and_parent():
    tracer = make_tracer()
    root = tracer.begin("root", trace_id=tracer.new_trace_id())
    child = root.child("child")
    child.end()
    root.child_complete("done", 0.0, 1.0, cat="phase")
    root.instant("blip", detail="x")
    root.end()
    by_name = {r.name: r for r in tracer.records}
    for name in ("child", "done", "blip"):
        assert by_name[name].parent_id == root.span_id
        assert by_name[name].trace_id == root.trace_id
    assert by_name["blip"].ph == "i"
    assert by_name["done"].cat == "phase"


def test_phase_helper_records_trailing_window():
    tracer = make_tracer()
    root = tracer.begin("root", trace_id=tracer.new_trace_id())
    tracer.env.run(until=4.0)
    root.phase("download", 1.5)
    (rec,) = tracer.records
    assert rec.t_start == pytest.approx(2.5)
    assert rec.t_end == pytest.approx(4.0)
    assert rec.cat == "phase"


def test_complete_with_raw_parent_id():
    """Server-side layers only carry the wire (trace_id, span_id) context."""
    tracer = make_tracer()
    tracer.complete("srv:exec", 1.0, 2.0, cat="server",
                    trace_id=42, parent_id=7, server=3)
    (rec,) = tracer.records
    assert rec.trace_id == 42 and rec.parent_id == 7
    assert rec.duration_s == pytest.approx(1.0)


# --- bounding ----------------------------------------------------------------

def test_tracer_never_drops_silently():
    tracer = make_tracer(max_spans=3)
    for i in range(5):
        tracer.complete(f"s{i}", 0.0, 1.0)
    assert len(tracer.records) == 3
    assert tracer.dropped == 2
    assert tracer.summary()["dropped"] == 2
    assert tracer.to_chrome()["otherData"]["dropped"] == 2


def test_max_spans_validation():
    with pytest.raises(ValueError):
        make_tracer(max_spans=0)


# --- queries -----------------------------------------------------------------

def test_queries_by_cat_name_and_trace():
    tracer = make_tracer()
    t1, t2 = tracer.new_trace_id(), tracer.new_trace_id()
    tracer.complete("a", 0, 1, cat="rpc", trace_id=t1)
    tracer.complete("b", 0, 2, cat="phase", trace_id=t1)
    tracer.complete("c", 0, 3, cat="rpc", trace_id=t2)
    tracer.instant("retry", trace_id=t2)
    assert len(tracer.spans()) == 3
    assert [r.name for r in tracer.spans("rpc")] == ["a", "c"]
    assert [r.name for r in tracer.instants("retry")] == ["retry"]
    grouped = tracer.by_trace()
    assert {len(grouped[t1]), len(grouped[t2])} == {2}
    s = tracer.summary()
    assert s["spans"] == 3 and s["instants"] == 1 and s["traces"] == 2


# --- Chrome export -----------------------------------------------------------

def test_chrome_export_format(tmp_path):
    tracer = make_tracer()
    trace_id = tracer.new_trace_id()
    root = tracer.begin("invocation:x", cat="invocation",
                        pid="invocations", tid="inv-1", trace_id=trace_id)
    tracer.env.run(until=1.25)
    root.phase("download", 1.0)
    root.instant("blip")
    root.end()
    out = tracer.to_chrome()
    assert out["displayTimeUnit"] == "ms"
    events = out["traceEvents"]
    meta = [e for e in events if e["ph"] == "M"]
    assert {m["name"] for m in meta} == {"process_name", "thread_name"}
    # integer pids/tids, names carried in metadata
    assert all(isinstance(e["pid"], int) for e in events)
    xs = [e for e in events if e["ph"] == "X"]
    root_ev = next(e for e in xs if e["name"] == "invocation:x")
    assert root_ev["ts"] == 0.0 and root_ev["dur"] == pytest.approx(1.25e6)
    phase_ev = next(e for e in xs if e["name"] == "download")
    assert phase_ev["args"]["parent_id"] == root.span_id
    assert phase_ev["args"]["trace_id"] == trace_id
    inst = next(e for e in events if e["ph"] == "i")
    assert inst["s"] == "t"
    # round-trips through a file as valid JSON
    path = tmp_path / "trace.json"
    tracer.dump_chrome(path)
    assert json.loads(path.read_text())["otherData"]["clock"] == "sim-seconds"


# --- open spans at export time -----------------------------------------------

def test_open_spans_counted_and_closed_synthetically():
    tracer = make_tracer()
    trace_id = tracer.new_trace_id()
    root = tracer.begin("invocation:live", cat="invocation", trace_id=trace_id)
    rpc = tracer.begin("rpc:launch", cat="rpc", parent=root)
    tracer.env.run(until=3.0)
    assert tracer.open_spans == 2
    assert tracer.summary()["open_spans"] == 2
    out = tracer.to_chrome()
    assert out["otherData"]["open_spans"] == 2
    # both in-flight spans are exported, flagged, and end at env.now
    synthetic = [e for e in out["traceEvents"]
                 if e["ph"] == "X" and e["args"].get("open") is True]
    assert {e["name"] for e in synthetic} == {"invocation:live", "rpc:launch"}
    for e in synthetic:
        assert e["ts"] + e["dur"] == pytest.approx(3.0e6)
    # export is a view: nothing was stored and the spans stay open
    assert tracer.records == []
    assert tracer.open_spans == 2
    # a real end later records normally, without the flag
    rpc.end()
    root.end()
    assert tracer.open_spans == 0
    assert all("open" not in r.args for r in tracer.records)
    assert not any(e["args"].get("open")
                   for e in tracer.to_chrome()["traceEvents"]
                   if e["ph"] == "X")


def test_open_span_started_in_future_never_ends_before_start():
    tracer = make_tracer()
    tracer.begin("late", t_start=5.0)
    assert tracer.env.now == 0.0
    (rec,) = [e for e in tracer.to_chrome()["traceEvents"] if e["ph"] == "X"]
    # synthetic end clamps to t_start: duration is never negative
    assert rec["dur"] == 0.0
