"""End-to-end observability acceptance tests.

The bar (mirroring ISSUE/ROADMAP): a traced run exports valid Chrome
trace-event JSON whose per-invocation span tree sums (within rounding) to
the invocation's measured end-to-end latency, with phase attribution
covering >= 95% of wall sim-time — and tracing must not perturb the
simulated timeline at all.
"""

import json
import subprocess
import sys
from pathlib import Path

import pytest

from repro.core.config import DgsfConfig
from repro.core.stats import CacheStats, OutcomeSummary, summarize_invocations
from repro.experiments.runner import (
    run_single_invocation,
    run_single_invocation_traced,
)
from repro.obs import (
    aggregate_breakdowns,
    breakdown_table_rows,
    invocation_breakdowns,
)

REPO_ROOT = Path(__file__).resolve().parent.parent


@pytest.fixture(scope="module")
def traced_face_id():
    return run_single_invocation_traced("face_identification", "dgsf")


# --- the acceptance bar ------------------------------------------------------

def test_span_tree_sums_to_measured_e2e(traced_face_id):
    inv, dep = traced_face_id
    (row,) = invocation_breakdowns(dep.tracer, [inv])
    assert row["e2e_matches_span"] is True
    assert abs(row["e2e_s"] - inv.e2e_s) < 1e-9
    assert row["status"] == "completed"
    assert row["workload"] == "face_identification"


def test_phase_attribution_covers_95_percent(traced_face_id):
    inv, dep = traced_face_id
    (row,) = invocation_breakdowns(dep.tracer, [inv])
    assert row["coverage"] >= 0.95
    # phase spans match the invocation's own phase dict exactly
    for name, seconds in inv.phases.items():
        assert row["phases"][name] == pytest.approx(seconds, abs=1e-12)


def test_tracing_does_not_perturb_the_timeline():
    """Bit-identical latency with tracing on vs off (same seed)."""
    baseline = run_single_invocation("kmeans", "dgsf")
    traced, dep = run_single_invocation_traced("kmeans", "dgsf")
    assert traced.e2e_s == baseline.e2e_s
    assert traced.phases == baseline.phases
    assert dep.tracer.dropped == 0


def test_chrome_export_is_valid_and_complete(traced_face_id, tmp_path):
    inv, dep = traced_face_id
    path = tmp_path / "trace.json"
    dep.tracer.dump_chrome(path)
    doc = json.loads(path.read_text())
    assert set(doc) == {"traceEvents", "displayTimeUnit", "otherData"}
    phs = {e["ph"] for e in doc["traceEvents"]}
    assert phs <= {"M", "X", "i"}
    names = {e["name"] for e in doc["traceEvents"]}
    # every layer shows up: platform root, phases, guest RPC, server exec,
    # GPU queue
    assert "invocation:face_identification" in names
    assert "download" in names and "processing" in names
    assert any(n.startswith("rpc:") for n in names)
    assert any(n.startswith("srv:") for n in names)
    assert "gpu_request" in names


def test_cross_layer_spans_share_the_trace(traced_face_id):
    inv, dep = traced_face_id
    records = dep.tracer.by_trace()[inv.trace_id]
    cats = {r.cat for r in records}
    assert {"invocation", "phase", "rpc", "server", "queue"} <= cats
    root = next(r for r in records if r.cat == "invocation")
    # server spans are stitched in via the propagated wire context
    for r in records:
        if r.cat in ("rpc", "queue"):
            assert r.parent_id == root.span_id


# --- aggregation -------------------------------------------------------------

def test_aggregate_and_table_rows(traced_face_id):
    inv, dep = traced_face_id
    rows = invocation_breakdowns(dep.tracer, [inv])
    agg = aggregate_breakdowns(rows)
    assert agg["count"] == 1
    assert agg["coverage_min"] >= 0.95
    assert agg["e2e"]["p50"] == pytest.approx(inv.e2e_s)
    assert "face_identification" in agg["workloads"]
    table = breakdown_table_rows(agg)
    assert any(r["phase"] == "e2e" for r in table)
    assert all({"workload", "phase", "mean_s", "p50_s", "p95_s", "p99_s"}
               <= set(r) for r in table)


def test_aggregate_empty_rows():
    assert aggregate_breakdowns([]) == {"count": 0, "workloads": {}}


# --- registry-backed summary views -------------------------------------------

def test_run_stats_percentiles(traced_face_id):
    inv, _ = traced_face_id
    stats = summarize_invocations([inv])
    assert stats.p50_e2e_s == pytest.approx(inv.e2e_s)
    ws = stats.per_workload["face_identification"]
    assert ws.p95_e2e_s == pytest.approx(inv.e2e_s)
    row = ws.as_row()
    assert {"p50_e2e_s", "p95_e2e_s", "p99_e2e_s"} <= set(row)
    assert {"p50_e2e_s", "p95_e2e_s", "p99_e2e_s"} <= set(stats.as_dict())


def test_outcome_summary_from_registry(traced_face_id):
    inv, dep = traced_face_id
    outcomes = OutcomeSummary.from_registry(dep.metrics)
    assert outcomes.counts == {"completed": 1}
    assert outcomes.total == 1
    assert outcomes.completion_rate == 1.0
    assert outcomes.all_terminal
    assert outcomes.mean_completed_e2e_s == pytest.approx(inv.e2e_s)
    # a wedged invocation shows up as the shortfall vs expected_total
    short = OutcomeSummary.from_registry(dep.metrics, expected_total=2)
    assert short.total == 2
    assert not short.all_terminal
    assert short.completion_rate == 0.5


def test_cache_stats_from_registry():
    inv, dep = run_single_invocation_traced(
        "kmeans", "dgsf_warm", DgsfConfig(num_gpus=1)
    )
    view = CacheStats.from_registry(dep.metrics)
    assert view.hits > 0
    assert view.hit_rate > 0
    # the per-server object view and the registry view agree
    summed = sum(
        s.artifact_cache.hits for s in dep.gpu_server.api_servers
        if s.artifact_cache is not None
    )
    assert view.hits == summed


# --- the CLI -----------------------------------------------------------------

def test_profile_report_cli_smoke(tmp_path):
    out_dir = tmp_path / "prof"
    proc = subprocess.run(
        [sys.executable, str(REPO_ROOT / "scripts" / "profile_report.py"),
         "--workload", "kmeans", "--out-dir", str(out_dir),
         "--min-coverage", "0.95"],
        capture_output=True, text=True,
        env={"PYTHONPATH": str(REPO_ROOT / "src"), "PATH": "/usr/bin:/bin"},
    )
    assert proc.returncode == 0, proc.stderr
    assert "trace validation OK" in proc.stdout
    for name in ("trace.json", "breakdown.json", "metrics.json"):
        assert (out_dir / name).exists()
    breakdown = json.loads((out_dir / "breakdown.json").read_text())
    assert breakdown["aggregate"]["coverage_min"] >= 0.95


def test_breakdowns_skip_invocations_without_traces(traced_face_id):
    """A workload with zero completed (traced) invocations yields no rows
    and an empty aggregate — never a partial row or a crash."""
    inv, dep = traced_face_id

    class Untraced:
        trace_id = None

    rows = invocation_breakdowns(dep.tracer, [Untraced()])
    assert rows == []
    assert aggregate_breakdowns(rows) == {"count": 0, "workloads": {}}
    assert breakdown_table_rows(aggregate_breakdowns(rows)) == []
