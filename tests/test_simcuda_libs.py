"""Unit tests for the cuDNN and cuBLAS library models."""

import pytest

from repro.sim import Environment
from repro.simcuda import (
    CudaError,
    CudnnLibrary,
    CublasLibrary,
    DriverAPI,
    SimGPU,
)
from repro.simcuda.cudnn import DESCRIPTOR_KINDS
from repro.simcuda.types import MB


@pytest.fixture
def setup():
    env = Environment()
    gpu = SimGPU(env, 0)
    drv = DriverAPI(env, [gpu])
    drv.cuInit()
    p = env.process(drv.cuCtxCreate(0))
    ctx = env.run(until=p)
    return env, gpu, ctx


def drive(env, gen):
    p = env.process(gen)
    return env.run(until=p)


def test_cudnn_handle_costs_time_and_memory(setup):
    env, gpu, ctx = setup
    lib = CudnnLibrary(env, ctx)
    t0 = env.now
    handle = drive(env, lib.cudnnCreate())
    assert env.now - t0 == pytest.approx(1.2)
    assert gpu.mem_used == 303 * MB + 386 * MB
    drive(env, lib.cudnnDestroy(handle))
    assert gpu.mem_used == 303 * MB


def test_cublas_handle_costs_time_and_memory(setup):
    env, gpu, ctx = setup
    lib = CublasLibrary(env, ctx)
    t0 = env.now
    handle = drive(env, lib.cublasCreate())
    assert env.now - t0 == pytest.approx(0.2)
    assert gpu.mem_used == 303 * MB + 70 * MB
    drive(env, lib.cublasDestroy(handle))
    assert gpu.mem_used == 303 * MB


def test_idle_api_server_footprint_matches_paper(setup):
    """Context + cuDNN + cuBLAS handles ≈ 755 MB (paper §V-C: 759 MB raw,
    reported as 755 MB)."""
    env, gpu, ctx = setup
    cudnn = CudnnLibrary(env, ctx)
    cublas = CublasLibrary(env, ctx)
    drive(env, cudnn.cudnnCreate())
    drive(env, cublas.cublasCreate())
    total_mb = gpu.mem_used / MB
    assert 750 <= total_mb <= 765


def test_cudnn_descriptor_lifecycle(setup):
    env, gpu, ctx = setup
    lib = CudnnLibrary(env, ctx)
    for kind in DESCRIPTOR_KINDS:
        desc = drive(env, lib.cudnnCreateDescriptor(kind))
        drive(env, lib.cudnnSetDescriptor(desc, n=1, c=3, h=224, w=224))
        drive(env, lib.cudnnDestroyDescriptor(desc))
        with pytest.raises(CudaError):
            drive(env, lib.cudnnDestroyDescriptor(desc))


def test_cudnn_descriptor_bad_kind(setup):
    env, gpu, ctx = setup
    lib = CudnnLibrary(env, ctx)
    with pytest.raises(CudaError):
        drive(env, lib.cudnnCreateDescriptor("not-a-kind"))


def test_cudnn_op_requires_valid_handle(setup):
    env, gpu, ctx = setup
    lib = CudnnLibrary(env, ctx)
    with pytest.raises(CudaError):
        drive(env, lib.cudnnConvolutionForward(0xBAD, 0.001))


def test_cudnn_op_executes_on_gpu(setup):
    env, gpu, ctx = setup
    lib = CudnnLibrary(env, ctx)
    handle = drive(env, lib.cudnnCreate())

    def run(env):
        done = yield from lib.cudnnConvolutionForward(handle, 0.5)
        yield done

    t0 = env.now
    drive(env, run(env))
    assert env.now - t0 == pytest.approx(0.5, abs=0.01)


def test_cublas_gemm_executes_on_gpu(setup):
    env, gpu, ctx = setup
    lib = CublasLibrary(env, ctx)
    handle = drive(env, lib.cublasCreate())

    def run(env):
        done = yield from lib.cublasSgemm(handle, 0.25)
        yield done

    t0 = env.now
    drive(env, run(env))
    assert env.now - t0 == pytest.approx(0.25, abs=0.01)


def test_negative_work_rejected(setup):
    env, gpu, ctx = setup
    cudnn = CudnnLibrary(env, ctx)
    cublas = CublasLibrary(env, ctx)
    h1 = drive(env, cudnn.cudnnCreate())
    h2 = drive(env, cublas.cublasCreate())
    with pytest.raises(CudaError):
        drive(env, cudnn.cudnnOp(h1, "x", -1.0))
    with pytest.raises(CudaError):
        drive(env, cublas.cublasOp(h2, "x", -1.0))


def test_adopted_handles_are_usable(setup):
    """API servers pool handles created elsewhere; the library must accept
    an adopted handle as its own."""
    env, gpu, ctx = setup
    lib1 = CudnnLibrary(env, ctx)
    handle = drive(env, lib1.cudnnCreate())
    lib2 = CudnnLibrary(env, ctx)
    lib2.adopt_handle(lib1._handles[handle])

    def run(env):
        done = yield from lib2.cudnnConvolutionForward(handle, 0.01)
        yield done

    drive(env, run(env))  # no error
