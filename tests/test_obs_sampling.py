"""Tests for adaptive trace sampling (repro.obs.sampling) and its wiring:
deterministic head decisions, tail-keep rules, NullSpan rejection,
gauge decimation, metric exemplars, and shard/mode invariance of the
kept-trace set."""

import pytest

from repro.faas.topology import pool_collect, pool_scenario
from repro.obs.metrics import _GAUGE_CAP, MetricsRegistry
from repro.obs.sampling import (
    INTERESTING_NAMES,
    KEPT,
    OUT,
    PENDING,
    TraceSampler,
    sample_key_hash,
)
from repro.obs.slo import GpuImbalanceRule, LatencyRule, SloEngine, \
    evaluate_cluster_slo
from repro.obs.trace import NullSpan, Tracer, trace_digest
from repro.sim.core import Environment
from repro.sim.shard import run_sharded


# -- sampler unit behaviour ---------------------------------------------------

def test_sample_key_hash_is_deterministic_and_uniformish():
    values = [sample_key_hash(f"scope|wl|{i}") for i in range(2000)]
    assert values == [sample_key_hash(f"scope|wl|{i}") for i in range(2000)]
    assert all(0.0 <= v < 1.0 for v in values)
    frac = sum(1 for v in values if v < 0.25) / len(values)
    assert 0.15 < frac < 0.35  # loose: CRC32 spreads keys roughly uniformly


def test_head_decisions_bit_identical_across_reruns():
    def kept_set():
        sampler = TraceSampler(0.1)
        return frozenset(
            i for i in range(1000)
            if sampler.register(i, key=f"g0|kmeans|{i}")
        )
    first = kept_set()
    assert first == kept_set()
    assert 0 < len(first) < 1000


def test_rate_bounds_and_shortcuts():
    with pytest.raises(ValueError):
        TraceSampler(1.5)
    assert TraceSampler(1.0).head_decision("anything") is True
    assert TraceSampler(0.0).head_decision("anything") is False


def test_failed_root_is_tail_kept():
    sampler = TraceSampler(0.0)
    sampler.register(1, key="k", scope="g0", workload="wl", t_start=0.0)
    assert sampler.state(1) == PENDING
    resolutions = sampler.on_root_end(1, 0.0, 2.0, "failed")
    assert (1, True, "status:failed") in resolutions
    assert sampler.state(1) == KEPT


def test_interesting_instant_promotes_pending():
    assert "kv_preempt" in INTERESTING_NAMES
    sampler = TraceSampler(0.0)
    sampler.register(7, key="k", scope="g0", workload="llm", t_start=0.0)
    resolutions = sampler.note_record(7, "kv_preempt")
    assert resolutions == [(7, True, "kv_preempt")]
    assert sampler.state(7) == KEPT
    assert sampler.summary()["tail_kept"] == {"kv_preempt": 1}


def test_window_latency_champion_is_kept_rest_out():
    sampler = TraceSampler(0.0, window_s=60.0)
    for tid, e2e in ((1, 0.5), (2, 3.0), (3, 1.0)):
        sampler.register(tid, key=f"k{tid}", scope="g0", workload="wl",
                         t_start=10.0)
        sampler.on_root_end(tid, 10.0, 10.0 + e2e, "completed")
    resolutions = sampler.finalize()
    assert (2, True, "latency_max") in resolutions
    assert sampler.state(2) == KEPT
    assert sampler.state(1) == OUT and sampler.state(3) == OUT
    assert sampler.out_traces == 2
    sampler.finalize()  # idempotent
    assert sampler.out_traces == 2


def test_alert_overlap_and_exemplars_promote_scope_filtered():
    sampler = TraceSampler(0.0)
    sampler.register(1, key="a", scope="g0", workload="wl", t_start=0.0)
    sampler.register(2, key="b", scope="g1", workload="wl", t_start=0.0)
    sampler.register(3, key="c", scope="g0", workload="wl", t_start=0.0)
    sampler.on_root_end(3, 0.0, 1.0, "completed")  # closed, within retention
    resolutions = sampler.note_alert(5.0, scope="g0")
    kept = {tid for tid, kept_flag, _ in resolutions if kept_flag}
    assert kept == {1, 3}           # g1's pending is untouched
    assert sampler.state(2) == PENDING
    # exemplar ids are promoted even when outside the alert's scope
    resolutions = sampler.note_alert(6.0, scope="g0", exemplar_trace_ids=(2,))
    assert (2, True, "exemplar") in resolutions


def test_retention_expiry_finalizes_closed_pendings():
    sampler = TraceSampler(0.0, window_s=10.0, retention_s=20.0)
    sampler.register(1, key="a", scope="g0", workload="wl", t_start=0.0)
    sampler.on_root_end(1, 0.0, 1.0, "completed")
    sampler.register(2, key="b", scope="g0", workload="wl", t_start=1.0)
    sampler.on_root_end(2, 1.0, 3.0, "completed")  # displaces 1 as champion
    # much later, a third root end triggers expiry of the closed pool
    sampler.register(3, key="c", scope="g0", workload="wl", t_start=90.0)
    resolutions = sampler.on_root_end(3, 90.0, 91.0, "completed")
    assert (1, False, "sampled_out") in resolutions   # non-champion, aged out
    assert sampler.state(2) == PENDING                # champion survives
    late = sampler.note_alert(92.0, scope="g1", exemplar_trace_ids=(1,))
    assert late == [] and sampler.late_keeps == 1     # loud, not silent


def test_register_foreign_adopts_remote_decision():
    sampler = TraceSampler(0.5)
    sampler.register_foreign(11, sampled=True)
    sampler.register_foreign(12, sampled=False)
    assert sampler.state(11) == KEPT
    assert sampler.state(12) == "foreign"
    # a local decision always wins over a later foreign registration
    sampler.register(13, key="x" * 3, scope="g0", workload="wl")
    state = sampler.state(13)
    sampler.register_foreign(13, sampled=state != KEPT)
    assert sampler.state(13) == state


# -- tracer integration -------------------------------------------------------

def _emit(tracer):
    root = tracer.begin("invocation:wl", cat="invocation",
                        trace_id=tracer.new_trace_id())
    tracer.sample_root(root.trace_id, key="g0|wl|1", scope="g0", workload="wl")
    child = root.child("phase:run", cat="phase")
    child.end()
    root.end(status="completed")
    return root.trace_id


def test_rate_one_sampler_exports_identical_timeline():
    env_a, env_b = Environment(), Environment()
    # same namespace => same id streams, so the record lists are comparable
    plain = Tracer(env_a, namespace=5)
    sampled = Tracer(env_b, namespace=5, sampler=TraceSampler(1.0))
    _emit(plain)
    _emit(sampled)
    sampled.finalize_sampling()
    assert [r.__dict__ for r in sampled.records] \
        == [r.__dict__ for r in plain.records]
    assert trace_digest(sampled.records) == trace_digest(plain.records)
    assert sampled.sampled_out == 0


def test_nullspan_rejects_children_of_out_traces_cheaply():
    env = Environment()
    tracer = Tracer(env, sampler=TraceSampler(0.0))
    # two traces in one window: the slower is champion, the faster is out
    tids = []
    for key, e2e in (("a", 5.0), ("b", 1.0)):
        root = tracer.begin("invocation:wl", cat="invocation",
                            trace_id=tracer.new_trace_id())
        tracer.sample_root(root.trace_id, key=key, scope="g0", workload="wl")
        root.end(t_end=e2e, status="completed")
        tids.append(root.trace_id)
    tracer.finalize_sampling()
    out_tid = next(t for t in tids if tracer._sampler.state(t) == OUT)
    before = tracer.sampled_out
    span = tracer.begin("rpc:late", cat="rpc", trace_id=out_tid)
    assert isinstance(span, NullSpan)
    grandchild = span.child("nested")
    assert isinstance(grandchild, NullSpan)
    span.instant("note")
    span.end()
    span.end()  # double-end guards
    assert tracer.sampled_out > before
    assert all(r.trace_id != out_tid for r in tracer.records)


def test_sampled_out_and_dropped_are_separate_counters():
    env = Environment()
    tracer = Tracer(env, max_spans=6, sampler=TraceSampler(0.0))
    # a pending trace's buffered spans count against the budget; overflow
    # is 'dropped' (budget), not 'sampled_out' (decision)
    root = tracer.begin("invocation:wl", cat="invocation",
                        trace_id=tracer.new_trace_id())
    tracer.sample_root(root.trace_id, key="k", scope="g0", workload="wl")
    for i in range(8):
        root.child_complete(f"phase:{i}", 0.0, 0.0, cat="phase")
    assert tracer.dropped == 2          # 6 buffered, 2 over budget
    assert tracer.sampled_out == 0      # no decision made yet
    root.end(status="failed")           # tail-keeps + flushes the buffer;
    tracer.finalize_sampling()          # the root record itself then loses
    assert tracer.dropped == 3          # the budget race to its children
    assert tracer.sampled_out == 0
    assert len(tracer.records) == 6     # the 6 buffered children


# -- gauge decimation (bounded series memory) --------------------------------

def test_gauge_series_memory_is_bounded_and_loud():
    reg = MetricsRegistry()
    gauge = reg.gauge("gpu.utilization", gpu_server="s0", device=0)
    n = 3 * _GAUGE_CAP
    for i in range(n):
        gauge.set(float(i % 100), i * 0.001)
    assert len(gauge.values) < _GAUGE_CAP
    assert gauge.count == n
    assert gauge.truncated
    assert gauge.dropped == n - len(gauge.values)
    assert gauge.value == float((n - 1) % 100)  # .value stays exact
    # decimation must be visible in the export, never silent
    as_dict = reg.as_dict()
    text = str(as_dict)
    assert "sample_dropped" in text


def test_slo_rules_fire_on_decimated_gauge_series():
    reg = MetricsRegistry()
    hot = reg.gauge("gpu.utilization", gpu_server="s0", device=0)
    idle = reg.gauge("gpu.utilization", gpu_server="s0", device=1)
    n = 2 * _GAUGE_CAP
    for i in range(n):
        t = i * 0.001
        hot.set(1.0, t)
        idle.set(0.0, t)
    assert hot.truncated and idle.truncated
    engine = evaluate_cluster_slo(reg, rules=[GpuImbalanceRule(
        min_spread=0.4, window_s=10.0, min_samples=3)])
    assert any(e.rule == "gpu-imbalance" and e.state == "firing"
               for e in engine.alerts)


def test_live_slo_stream_sees_every_set_despite_decimation():
    reg = MetricsRegistry()
    seen = []
    reg.subscribe(lambda metric, value, t: seen.append(value))
    gauge = reg.gauge("gpu.utilization", gpu_server="s0", device=0)
    n = _GAUGE_CAP + 10
    for i in range(n):
        gauge.set(float(i), i * 0.001)
    assert len(seen) == n           # notify is per set, not per kept sample
    assert len(gauge.values) < n    # storage is decimated anyway


# -- metric exemplars ---------------------------------------------------------

def test_histogram_exemplars_and_alert_exemplar_trace_ids():
    reg = MetricsRegistry()
    hist = reg.histogram("invocation.e2e_s", workload="wl")
    engine = SloEngine([LatencyRule(threshold_s=1.0, window_s=300.0,
                                    min_count=3)]).attach(reg)
    fired = []
    engine.on_alert(fired.append)
    for i, (v, tid) in enumerate(((0.1, 101), (5.0, 102), (7.0, 103))):
        hist.observe(v, trace_id=tid)
        engine.evaluate(float(i))
    assert hist.last_trace_id == 103
    dumped = reg.as_dict()
    text = str(dumped)
    assert "exemplars" in text
    assert fired, "latency rule should have fired"
    exemplars = fired[0].details.get("exemplars")
    assert exemplars and set(exemplars) <= {101, 102, 103}
    assert 103 in exemplars or 102 in exemplars  # worst offenders first


# -- sharded integration: invariance of the kept set -------------------------

POOL_ARGS = (40, 2, 0.05, 0.18, 10.0, 2)


def _run_pool(num_shards, mode, rate=0.2):
    return run_sharded(
        pool_scenario, num_shards=num_shards, total_groups=4, seed=7,
        lookahead_s=5.0, scenario_args=POOL_ARGS, collect=pool_collect,
        mode=mode, tracing=True, trace_sample_rate=rate,
    )


def _kept_invocations(tracer):
    return frozenset(
        (r.pid.split("/", 1)[-1], r.tid, r.name,
         round(r.t_start, 9), round(r.t_end, 9))
        for r in tracer.records
        if r.trace_id is not None and r.cat == "invocation"
    )


def test_kept_set_identical_across_reruns_and_shard_counts():
    one = _run_pool(1, "inline")
    two = _run_pool(2, "inline")
    rerun = _run_pool(2, "inline")
    assert _kept_invocations(one.tracer) == _kept_invocations(two.tracer)
    assert one.tracer.sampled_out == two.tracer.sampled_out
    assert two.trace_digest == rerun.trace_digest  # bit-identical rerun
    sampling = two.tracer.summary()["sampling"]
    assert sampling["head_kept"] > 0 and sampling["out_traces"] > 0
    assert sampling["foreign_pending"] == 0  # coordinator resolved them all


def test_kept_set_identical_inline_vs_process():
    inline = _run_pool(2, "inline")
    process = _run_pool(2, "process")
    assert _kept_invocations(inline.tracer) == _kept_invocations(process.tracer)
    assert inline.tracer.sampled_out == process.tracer.sampled_out
    assert inline.trace_digest == process.trace_digest


def test_eviction_storm_preemption_traces_survive_one_percent_rate():
    from repro.experiments.llm_ablation import run_llm_scenario

    records, dep = run_llm_scenario(
        "llm_chat_storm", "request", trace_sample_rate=0.01,
    )
    assert sum(rec.result["n_preemptions"] for rec in records) > 0
    tracer = dep.tracer
    kept = set(tracer.by_trace())
    preempt_traces = {
        r.trace_id for r in tracer.records if r.name == "kv_preempt"
    }
    assert preempt_traces, "storm run must emit kv_preempt instants"
    assert preempt_traces <= kept
    sampling = tracer.summary()["sampling"]
    assert sampling["rate"] == 0.01
    total_kept = sampling["head_kept"] + sum(sampling["tail_kept"].values())
    assert total_kept == len(kept)
