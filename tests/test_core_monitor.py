"""Tests for the monitor: FCFS queueing, policies, scheduling accounting."""

import pytest

from repro.core import DgsfConfig
from repro.core.monitor import GpuRequest
from repro.errors import SimulationError
from repro.sim.core import Event
from repro.simcuda.types import GB, MB
from repro.testing import make_world


def grant_value(world, request):
    """Run until a request is granted; return the assigned API server."""
    return world.env.run(until=request.granted)


def release_server(world, server):
    world.drive(_end(server))
    world.monitor.release(server)


def _end(server):
    yield from server.end_session()


def begin(world, server, declared):
    server.begin_session(declared)


def test_immediate_grant_when_idle():
    world = make_world(DgsfConfig(num_gpus=2))
    req = world.monitor.submit_request(1 * GB)
    server = grant_value(world, req)
    assert not server.busy  # session begins at the provider, not the monitor
    assert world.monitor.committed[server.home_device_id] == 1 * GB


def test_fcfs_queueing_when_all_busy():
    world = make_world(DgsfConfig(num_gpus=1))
    r1 = world.monitor.submit_request(1 * GB)
    s1 = grant_value(world, r1)
    begin(world, s1, 1 * GB)
    r2 = world.monitor.submit_request(1 * GB)
    world.env.run(until=world.env.now + 1.0)
    assert not r2.granted.triggered
    assert world.monitor.queue_length == 1
    release_server(world, s1)
    s2 = grant_value(world, r2)
    assert s2 is s1


def test_head_of_line_blocking_is_fcfs():
    """A large queued request blocks later small ones (paper §VIII-D)."""
    world = make_world(DgsfConfig(num_gpus=1, api_servers_per_gpu=2))
    # occupy one API server with a big function
    r1 = world.monitor.submit_request(10 * GB)
    s1 = grant_value(world, r1)
    begin(world, s1, 10 * GB)
    # big request that doesn't fit next to it → queues
    r_big = world.monitor.submit_request(12 * GB)
    # small request that *would* fit, but FCFS must not overtake
    r_small = world.monitor.submit_request(1 * GB)
    world.env.run(until=world.env.now + 0.5)
    assert not r_big.granted.triggered
    assert not r_small.granted.triggered


def test_request_larger_than_any_gpu_rejected():
    world = make_world(DgsfConfig(num_gpus=1))
    with pytest.raises(SimulationError):
        world.monitor.submit_request(20 * GB)
    with pytest.raises(SimulationError):
        world.monitor.submit_request(0)


def test_best_fit_packs_two_small_on_one_gpu():
    world = make_world(DgsfConfig(num_gpus=2, api_servers_per_gpu=2, policy="best_fit"))
    r1 = world.monitor.submit_request(2 * GB)
    s1 = grant_value(world, r1)
    begin(world, s1, 2 * GB)
    r2 = world.monitor.submit_request(2 * GB)
    s2 = grant_value(world, r2)
    # best fit condenses: both land on the same GPU
    assert s2.home_device_id == s1.home_device_id


def test_worst_fit_spreads_across_gpus():
    world = make_world(DgsfConfig(num_gpus=2, api_servers_per_gpu=2, policy="worst_fit"))
    r1 = world.monitor.submit_request(2 * GB)
    s1 = grant_value(world, r1)
    begin(world, s1, 2 * GB)
    r2 = world.monitor.submit_request(2 * GB)
    s2 = grant_value(world, r2)
    assert s2.home_device_id != s1.home_device_id


def test_no_sharing_means_one_function_per_gpu():
    world = make_world(DgsfConfig(num_gpus=2, api_servers_per_gpu=1))
    servers = []
    for _ in range(2):
        req = world.monitor.submit_request(1 * GB)
        s = grant_value(world, req)
        begin(world, s, 1 * GB)
        servers.append(s)
    r3 = world.monitor.submit_request(1 * GB)
    world.env.run(until=world.env.now + 0.5)
    assert not r3.granted.triggered  # both GPUs' single servers busy


def test_release_uncommits_memory():
    world = make_world(DgsfConfig(num_gpus=1))
    req = world.monitor.submit_request(4 * GB)
    s = grant_value(world, req)
    begin(world, s, 4 * GB)
    dev = s.home_device_id
    assert world.monitor.committed[dev] == 4 * GB
    release_server(world, s)
    assert world.monitor.committed[dev] == 0


def test_release_unknown_server_rejected():
    world = make_world(DgsfConfig(num_gpus=1))
    with pytest.raises(SimulationError):
        world.monitor.release(world.gpu_server.api_servers[0])


def test_memory_fit_respects_committed():
    """Two 8 GB functions cannot share one 16 GB GPU (static + committed)."""
    world = make_world(DgsfConfig(num_gpus=1, api_servers_per_gpu=2))
    r1 = world.monitor.submit_request(8 * GB)
    s1 = grant_value(world, r1)
    begin(world, s1, 8 * GB)
    r2 = world.monitor.submit_request(8 * GB)
    world.env.run(until=world.env.now + 0.5)
    assert not r2.granted.triggered


def test_grant_event_is_required():
    """GpuRequest must be constructed with its grant event — a request
    whose ``granted`` silently defaults to None blows up only much later,
    deep inside ``_grant``."""
    with pytest.raises(TypeError):
        GpuRequest(declared_bytes=1 * GB, invocation_id=1, submitted_at=0.0)


def test_queued_demand_resets_imbalance_streak():
    """Regression: a streak built before a request queued must not fire a
    migration on the first tick after the queue drains — queued demand
    invalidates the whole observation, not just the current tick."""
    world = make_world(DgsfConfig(num_gpus=2))
    monitor = world.monitor
    env = world.env
    moves = []

    def fake_find():
        return ("sentinel-server", 1)

    def fake_migrate(server, target):
        moves.append((server, target))
        yield env.timeout(0.0)

    monitor._find_imbalance = fake_find
    monitor._migrate_one = fake_migrate
    env.process(monitor._migration_loop(), name="test-migration")
    period = monitor.period_s

    # Build a streak one short of firing, with an empty queue.
    env.run(until=env.now + period * (monitor.confirm_checks - 1) + period / 4)
    assert moves == []
    assert monitor._imbalance_streak == monitor.confirm_checks - 1

    # A request queues; one tick passes while it waits.
    request = GpuRequest(
        declared_bytes=1 * GB, invocation_id=-1,
        submitted_at=env.now, granted=Event(env),
    )
    monitor._queue.append(request)
    env.run(until=env.now + period)
    monitor._queue.remove(request)

    # First tick after the queue drained: the stale streak must NOT fire.
    env.run(until=env.now + period)
    assert moves == []

    # Sustained imbalance over a fresh confirmation window still migrates.
    env.run(until=env.now + period * monitor.confirm_checks)
    assert len(moves) == 1


def test_find_imbalance_orders_and_fits_on_charged_bytes(monkeypatch):
    """Regression: candidate ordering and target fit must use the same
    accounting — the charge ledger.  A server's live ``used_bytes`` can
    run far below its charge while its function is still allocating, so
    ordering candidates by used bytes picks the *most* expensive move
    (here: one that fills the target completely) instead of the cheapest
    charge."""
    from repro.core.api_server import ApiServer

    world = make_world(DgsfConfig(num_gpus=2, api_servers_per_gpu=2))
    monitor = world.monitor
    gpu1 = world.gpu_server.devices[1].device_id

    heavy_req = monitor.submit_request(6 * GB)
    heavy = grant_value(world, heavy_req)
    begin(world, heavy, 6 * GB)
    light_req = monitor.submit_request(3 * GB)
    light = grant_value(world, light_req)
    begin(world, light, 3 * GB)
    assert heavy.home_device_id == light.home_device_id  # best-fit packs
    assert heavy.charged_bytes == 6 * GB
    assert light.charged_bytes == 3 * GB

    # let the §V-A ③ heartbeats report both servers busy
    world.env.run(until=world.env.now + monitor.period_s)

    # live used bytes lag the charges: the heavier-charged server is
    # still allocating and shows *less* used memory than the lighter one
    used = {heavy.server_id: 1 * GB, light.server_id: 3 * GB}
    monkeypatch.setattr(
        ApiServer, "used_bytes",
        property(lambda self: used.get(self.server_id, 0)),
    )

    # Give the idle GPU exactly 6 GB of schedulable headroom: the heavy
    # charge "fits" only by filling the target completely; ordering by
    # used bytes would pick it anyway.  Charged-bytes ordering moves the
    # genuinely cheapest charge instead.
    monitor.committed[gpu1] = monitor.schedulable_capacity[gpu1] - 6 * GB
    server, target = monitor._find_imbalance()
    assert (server, target) == (light, gpu1)

    # With less headroom the heavy charge cannot move at all; the light
    # one still can — the fit check reads the ledger, not used bytes.
    monitor.committed[gpu1] = monitor.schedulable_capacity[gpu1] - 4 * GB
    server, target = monitor._find_imbalance()
    assert (server, target) == (light, gpu1)

    monitor.committed[gpu1] = 0
    release_server(world, heavy)
    release_server(world, light)


def test_queue_metrics():
    world = make_world(DgsfConfig(num_gpus=1))
    r1 = world.monitor.submit_request(1 * GB)
    s1 = grant_value(world, r1)
    begin(world, s1, 1 * GB)
    world.monitor.submit_request(1 * GB)
    world.monitor.submit_request(1 * GB)
    assert world.monitor.requests_total == 3
    assert world.monitor.requests_queued_peak == 2
