"""Unit tests for simulation resources (Resource, Container, Store)."""

import pytest

from repro.errors import SimulationError
from repro.sim import Environment, Resource, PriorityResource, Container, Store


def test_resource_serializes_access():
    env = Environment()
    res = Resource(env, capacity=1)
    log = []

    def user(env, name, hold):
        with res.request() as req:
            yield req
            log.append((name, "in", env.now))
            yield env.timeout(hold)
            log.append((name, "out", env.now))

    env.process(user(env, "a", 2))
    env.process(user(env, "b", 3))
    env.run()
    assert log == [("a", "in", 0), ("a", "out", 2), ("b", "in", 2), ("b", "out", 5)]


def test_resource_capacity_two_runs_concurrently():
    env = Environment()
    res = Resource(env, capacity=2)
    starts = []

    def user(env, name):
        with res.request() as req:
            yield req
            starts.append((name, env.now))
            yield env.timeout(5)

    for name in "abc":
        env.process(user(env, name))
    env.run()
    assert starts == [("a", 0), ("b", 0), ("c", 5)]


def test_resource_count_tracks_users():
    env = Environment()
    res = Resource(env, capacity=3)

    def user(env):
        with res.request() as req:
            yield req
            yield env.timeout(1)

    env.process(user(env))
    env.process(user(env))
    env.run(until=0.5)
    assert res.count == 2
    env.run()
    assert res.count == 0


def test_resource_invalid_capacity():
    env = Environment()
    with pytest.raises(ValueError):
        Resource(env, capacity=0)


def test_release_without_holding_is_error():
    env = Environment()
    res = Resource(env)

    def holder(env):
        req = res.request()
        yield req
        res.release(req)
        with pytest.raises(SimulationError):
            res.release(req)

    p = env.process(holder(env))
    env.run(until=p)


def test_request_cancel_via_context_manager():
    env = Environment()
    res = Resource(env, capacity=1)
    got = []

    def holder(env):
        with res.request() as req:
            yield req
            yield env.timeout(10)

    def impatient(env):
        with res.request() as req:
            result = yield env.any_of([req, env.timeout(1)])
            got.append(req.triggered)
        # leaving the with-block cancels the ungranted request

    def third(env):
        yield env.timeout(2)
        with res.request() as req:
            yield req
            got.append(("third", env.now))

    env.process(holder(env))
    env.process(impatient(env))
    env.process(third(env))
    env.run()
    assert got[0] is False
    assert got[1] == ("third", 10)


def test_priority_resource_orders_waiters():
    env = Environment()
    res = PriorityResource(env, capacity=1)
    order = []

    def holder(env):
        with res.request(priority=0) as req:
            yield req
            yield env.timeout(5)

    def waiter(env, name, prio, delay):
        yield env.timeout(delay)
        with res.request(priority=prio) as req:
            yield req
            order.append(name)
            yield env.timeout(1)

    env.process(holder(env))
    env.process(waiter(env, "low", 10, 1))
    env.process(waiter(env, "high", 1, 2))
    env.run()
    assert order == ["high", "low"]


def test_container_get_blocks_until_level():
    env = Environment()
    tank = Container(env, capacity=100, init=0)
    log = []

    def producer(env):
        yield env.timeout(3)
        yield tank.put(50)

    def consumer(env):
        yield tank.get(30)
        log.append(env.now)

    env.process(producer(env))
    env.process(consumer(env))
    env.run()
    assert log == [3]
    assert tank.level == 20


def test_container_put_blocks_at_capacity():
    env = Environment()
    tank = Container(env, capacity=10, init=10)
    log = []

    def producer(env):
        yield tank.put(5)
        log.append(("put", env.now))

    def consumer(env):
        yield env.timeout(2)
        yield tank.get(6)

    env.process(producer(env))
    env.process(consumer(env))
    env.run()
    assert log == [("put", 2)]
    assert tank.level == 9


def test_container_validation():
    env = Environment()
    with pytest.raises(ValueError):
        Container(env, capacity=0)
    with pytest.raises(ValueError):
        Container(env, capacity=5, init=6)
    tank = Container(env, capacity=5)
    with pytest.raises(ValueError):
        tank.get(-1)
    with pytest.raises(ValueError):
        tank.put(-1)


def test_store_fifo():
    env = Environment()
    store = Store(env)
    got = []

    def producer(env):
        for i in range(3):
            yield env.timeout(1)
            yield store.put(i)

    def consumer(env):
        for _ in range(3):
            item = yield store.get()
            got.append((item, env.now))

    env.process(producer(env))
    env.process(consumer(env))
    env.run()
    assert got == [(0, 1), (1, 2), (2, 3)]


def test_store_filtered_get():
    env = Environment()
    store = Store(env)
    got = []

    def producer(env):
        yield store.put(("reply", 7))
        yield store.put(("reply", 3))

    def consumer(env):
        item = yield store.get(lambda m: m[1] == 3)
        got.append(item)

    env.process(producer(env))
    env.process(consumer(env))
    env.run()
    assert got == [("reply", 3)]
    assert store.items == [("reply", 7)]


def test_store_capacity_blocks_put():
    env = Environment()
    store = Store(env, capacity=1)
    log = []

    def producer(env):
        yield store.put("a")
        yield store.put("b")
        log.append(("b-in", env.now))

    def consumer(env):
        yield env.timeout(4)
        item = yield store.get()
        log.append((item, env.now))

    env.process(producer(env))
    env.process(consumer(env))
    env.run()
    assert ("b-in", 4) in log
