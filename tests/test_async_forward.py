"""Guest-library async forwarding (pipelined RPC) semantics.

Enqueue-only calls leave immediately on the pipelined channel; remote
failures are deferred and surface at the next synchronization point;
backpressure bounds the in-flight depth; lost replies become deferred
errors instead of hangs.
"""

import pytest

from repro.core.config import DgsfConfig, OptimizationFlags
from repro.core.guest import GuestRpcError
from repro.simcuda.errors import CudaError
from repro.simnet import LinkFaultInjector
from repro.testing import make_world

ASYNC_FLAGS = OptimizationFlags.all().with_(async_forward=True)


def attach(world, **kwargs):
    return world.attach_guest(flags=ASYNC_FLAGS, **kwargs)


def test_async_launch_returns_immediately_and_drains_at_sync():
    world = make_world(DgsfConfig(num_gpus=1))
    guest, api_server, _ = attach(world)

    def body():
        token = yield from guest.cudaGetFunction("timed")
        t0 = world.env.now
        for _ in range(10):
            yield from guest.cudaLaunchKernel(token, args=(0.001,))
        issue_time = world.env.now - t0
        depth_before_sync = guest.async_in_flight
        yield from guest.cudaDeviceSynchronize()
        return issue_time, depth_before_sync

    issue_time, depth = world.drive(body())
    # Issuing 10 launches costs only guest-side time — far less than one
    # network round trip each (the sync path would pay >= 10 * 2.4 ms).
    assert issue_time < 0.001
    assert depth > 0  # replies genuinely outstanding while issuing
    assert guest.calls_async_forwarded == 10
    assert guest.max_async_in_flight_seen > 1
    # The sync point harvested everything.
    assert guest.async_in_flight == 0
    assert guest.async_deferred_errors == 0
    assert api_server.requests_handled >= 11  # 10 launches + sync


def test_remote_failure_is_deferred_to_next_sync_point():
    world = make_world(DgsfConfig(num_gpus=1))
    guest, _, _ = attach(world)

    def body():
        # Unknown kernel token: the server raises, but the guest has
        # already moved on — the error must NOT surface here ...
        yield from guest.cudaLaunchKernel(0xDEAD_BEEF, args=(0.001,))
        assert guest._deferred_error is None  # reply not even back yet
        yield world.env.timeout(0.1)  # host compute; failure arrives meanwhile
        # ... but at the next synchronization point.
        with pytest.raises(CudaError):
            yield from guest.cudaDeviceSynchronize()
        # The error was consumed: the next sync is clean.
        yield from guest.cudaDeviceSynchronize()

    world.drive(body())
    assert guest.async_deferred_errors == 1
    assert guest.async_in_flight == 0


def test_backpressure_caps_in_flight_depth():
    world = make_world(DgsfConfig(num_gpus=1))
    guest, _, _ = attach(world, async_max_in_flight=4)

    def body():
        token = yield from guest.cudaGetFunction("timed")
        for _ in range(20):
            yield from guest.cudaLaunchKernel(token, args=(0.0001,))
            assert guest.async_in_flight <= 4
        yield from guest.cudaDeviceSynchronize()

    world.drive(body())
    assert guest.calls_async_forwarded == 20
    # Sync round trips add at most one to the channel depth.
    assert guest.rpc.max_in_flight <= 5
    assert guest.async_in_flight == 0
    assert guest.async_deferred_errors == 0


def test_lost_async_reply_surfaces_as_deferred_error_at_sync():
    world = make_world(DgsfConfig(num_gpus=1))
    guest, _, _ = attach(world)
    conn = guest.rpc.endpoint.connection

    def body():
        token = yield from guest.cudaGetFunction("timed")
        now = world.env.now
        # Drop everything the server sends for the next 100 ms: the async
        # launch below goes out before the window opens, its reply is
        # born inside it.
        conn.faults = LinkFaultInjector(None, partitions=[(now + 1e-4, now + 0.1)])
        yield from guest.cudaLaunchKernel(token, args=(0.0001,))
        yield world.env.timeout(0.5)  # host compute; window heals meanwhile
        with pytest.raises(GuestRpcError, match="reply lost"):
            yield from guest.cudaDeviceSynchronize()

    world.drive(body())
    assert guest.async_replies_lost == 1
    assert guest.async_deferred_errors == 1
    assert guest.async_in_flight == 0


def test_detach_abandons_pending_without_raising():
    world = make_world(DgsfConfig(num_gpus=1))
    guest, api_server, rpc_server = attach(world)
    conn = guest.rpc.endpoint.connection

    def body():
        token = yield from guest.cudaGetFunction("timed")
        now = world.env.now
        conn.faults = LinkFaultInjector(None, partitions=[(now + 1e-4, now + 0.1)])
        yield from guest.cudaLaunchKernel(token, args=(0.0001,))
        yield world.env.timeout(0.5)

    world.drive(body())
    assert guest.async_in_flight == 1
    conn.faults = None
    # Process exit is not a synchronization point: no error escapes.
    world.detach_guest(guest, api_server, rpc_server)
    assert guest.async_in_flight == 0
    assert guest._deferred_error is None


def test_flags_off_never_touches_async_path():
    world = make_world(DgsfConfig(num_gpus=1))
    guest, _, _ = world.attach_guest(flags=OptimizationFlags.all())

    def body():
        token = yield from guest.cudaGetFunction("timed")
        for _ in range(5):
            yield from guest.cudaLaunchKernel(token, args=(0.001,))
        yield from guest.cudaDeviceSynchronize()

    world.drive(body())
    assert guest.calls_async_forwarded == 0
    assert guest.async_in_flight == 0
    assert guest.calls_batched == 5
