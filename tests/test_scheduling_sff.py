"""Shortest-function-first queue discipline (the paper's future work)."""

import pytest

from repro.core import DgsfConfig
from repro.errors import ConfigurationError, SimulationError
from repro.simcuda.types import GB
from repro.testing import make_world


def grant(world, req):
    return world.env.run(until=req.granted)


def occupy(world, declared=1 * GB):
    req = world.monitor.submit_request(declared)
    server = grant(world, req)
    server.begin_session(declared)
    return server


def release(world, server):
    proc = world.env.process(server.end_session())
    world.env.run(until=proc)
    world.monitor.release(server)


def test_config_validates_discipline():
    with pytest.raises(ConfigurationError):
        DgsfConfig(queue_discipline="random")
    assert DgsfConfig(queue_discipline="sff").queue_discipline == "sff"


def test_monitor_rejects_unknown_discipline():
    from repro.core.monitor import Monitor
    from repro.core.policies import BestFit

    world = make_world(DgsfConfig(num_gpus=1))
    with pytest.raises(SimulationError):
        Monitor(world.env, world.gpu_server, BestFit(), queue_discipline="lifo")


def test_sff_overtakes_blocked_large_head():
    """Under SFF, a small request is not blocked by an infeasible large
    head-of-line request (the FCFS pathology of §VIII-D)."""
    world = make_world(DgsfConfig(num_gpus=1, api_servers_per_gpu=2,
                                  queue_discipline="sff"))
    s1 = occupy(world, 10 * GB)
    big = world.monitor.submit_request(12 * GB, expected_duration_s=30)
    small = world.monitor.submit_request(1 * GB, expected_duration_s=5)
    world.env.run(until=world.env.now + 0.5)
    assert not big.granted.triggered
    assert small.granted.triggered  # overtook the blocked head
    release(world, s1)


def test_fcfs_does_not_overtake():
    world = make_world(DgsfConfig(num_gpus=1, api_servers_per_gpu=2,
                                  queue_discipline="fcfs"))
    s1 = occupy(world, 10 * GB)
    world.monitor.submit_request(12 * GB)
    small = world.monitor.submit_request(1 * GB)
    world.env.run(until=world.env.now + 0.5)
    assert not small.granted.triggered
    release(world, s1)


def test_sff_prefers_shortest_expected_duration():
    world = make_world(DgsfConfig(num_gpus=1, queue_discipline="sff"))
    s1 = occupy(world)
    slow = world.monitor.submit_request(1 * GB, expected_duration_s=60)
    fast = world.monitor.submit_request(1 * GB, expected_duration_s=2)
    release(world, s1)  # frees the single API server → SFF picks `fast`
    server = grant(world, fast)
    assert not slow.granted.triggered
    server.begin_session(1 * GB)
    release(world, server)
    grant(world, slow)


def test_sff_reduces_mean_queueing_under_heavy_load():
    """The paper's hypothesis: SFF "could improve throughput at some loss
    of fairness".  Mean queueing should drop; the longest functions may
    wait longer (the fairness loss)."""
    from repro.experiments.runner import make_plan, run_mixed_scenario

    plan = make_plan("exponential", seed=3, copies=4, mean_gap_s=1.5)

    def run(discipline):
        cfg = DgsfConfig(num_gpus=2, api_servers_per_gpu=2,
                         queue_discipline=discipline, seed=3)
        return run_mixed_scenario(cfg, plan).stats

    fcfs = run("fcfs")
    sff = run("sff")
    mean_queue = lambda stats: sum(
        ws.mean_queue_s * ws.count for ws in stats.per_workload.values()
    ) / sum(ws.count for ws in stats.per_workload.values())
    assert mean_queue(sff) < mean_queue(fcfs)
