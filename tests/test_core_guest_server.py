"""End-to-end API remoting tests: guest library ↔ API server over the
simulated network."""

import numpy as np
import pytest

from repro.core import DgsfConfig, OptimizationFlags
from repro.simcuda.errors import CudaError
from repro.simcuda.types import MB
from repro.testing import make_world


@pytest.fixture(scope="module")
def shared_world():
    return make_world(DgsfConfig(num_gpus=2))


@pytest.fixture
def session(shared_world):
    guest, server, rpc = shared_world.attach_guest()
    yield shared_world, guest, server
    shared_world.detach_guest(guest, server, rpc)


def test_restricted_device_count_is_one(session):
    world, guest, server = session
    # the GPU server has 2 GPUs, but functions must see exactly 1 (§V-B)
    assert world.drive(guest.cudaGetDeviceCount()) == 1


def test_device_properties_describe_assigned_gpu(session):
    world, guest, server = session
    props = world.drive(guest.cudaGetDeviceProperties(0))
    assert "V100" in props["name"]
    with pytest.raises(CudaError):
        world.drive(guest.cudaGetDeviceProperties(1))


def test_malloc_memcpy_roundtrip_through_network(session):
    world, guest, server = session
    data = np.arange(4096, dtype=np.uint8)
    ptr = world.drive(guest.cudaMalloc(4096))
    world.drive(guest.memcpyH2D(ptr, 4096, payload=data))
    back = world.drive(guest.memcpyD2H(ptr, 4096))
    assert np.array_equal(back[:4096], data)
    world.drive(guest.cudaFree(ptr))


def test_malloc_respects_declared_limit(shared_world):
    guest, server, rpc = shared_world.attach_guest(declared_bytes=100 * MB)
    try:
        with pytest.raises(CudaError, match="cudaErrorMemoryAllocation"):
            shared_world.drive(guest.cudaMalloc(200 * MB))
        # within the limit is fine
        ptr = shared_world.drive(guest.cudaMalloc(50 * MB))
        assert ptr > 0
    finally:
        shared_world.detach_guest(guest, server, rpc)


def test_kernel_launch_executes_payload_remotely(session):
    world, guest, server = session
    ptr = world.drive(guest.cudaMalloc(64))
    fptr = world.drive(guest.cudaGetFunction("fill"))

    def run(env):
        yield from guest.cudaLaunchKernel(fptr, args=(0.001, ptr, 64, 0x5A))
        yield from guest.cudaDeviceSynchronize()

    world.drive(run(world.env))
    back = world.drive(guest.memcpyD2H(ptr, 64))
    assert np.all(back[:64] == 0x5A)
    world.drive(guest.cudaFree(ptr))


def test_attach_preregisters_kernels(session):
    world, guest, server = session
    before = guest.calls_forwarded
    world.drive(guest.cudaGetFunction("timed"))
    # resolved from the attach-time token map: no new network call
    assert guest.calls_forwarded == before


def test_streams_and_events_remote(session):
    world, guest, server = session
    stream = world.drive(guest.cudaStreamCreate())
    fptr = world.drive(guest.cudaGetFunction("timed"))

    def run(env):
        yield from guest.cudaLaunchKernel(fptr, args=(0.3,), stream=stream)
        t0 = env.now
        yield from guest.cudaStreamSynchronize(stream)
        return env.now - t0

    waited = world.drive(run(world.env))
    assert waited == pytest.approx(0.3, abs=0.05)
    world.drive(guest.cudaStreamDestroy(stream))


def test_memset_remote(session):
    world, guest, server = session
    ptr = world.drive(guest.cudaMalloc(128))
    world.drive(guest.cudaMemset(ptr, 0xEE, 128))
    back = world.drive(guest.memcpyD2H(ptr, 128))
    assert np.all(back[:128] == 0xEE)
    world.drive(guest.cudaFree(ptr))


def test_pointer_attributes_localized(session):
    world, guest, server = session
    ptr = world.drive(guest.cudaMalloc(1 * MB))
    before = guest.calls_forwarded
    attrs = world.drive(guest.cudaPointerGetAttributes(ptr))
    assert attrs.is_device
    assert guest.calls_forwarded == before  # answered locally (§V-C)
    world.drive(guest.cudaFree(ptr))


def test_host_alloc_fully_emulated(session):
    world, guest, server = session
    before = guest.calls_forwarded
    hptr = world.drive(guest.cudaMallocHost(4096))
    attrs = world.drive(guest.cudaPointerGetAttributes(hptr))
    assert not attrs.is_device
    world.drive(guest.cudaFreeHost(hptr))
    assert guest.calls_forwarded == before


def test_descriptor_pooling_never_forwards(session):
    world, guest, server = session
    before = guest.calls_forwarded
    descs = [world.drive(guest.cudnnCreateDescriptor("tensor")) for _ in range(10)]
    for d in descs:
        world.drive(guest.cudnnSetDescriptor(d, n=1, c=3))
        world.drive(guest.cudnnDestroyDescriptor(d))
    assert guest.calls_forwarded == before
    # destroyed descriptors are recycled by the guest-side pool
    again = world.drive(guest.cudnnCreateDescriptor("tensor"))
    assert again in descs


def test_cudnn_handle_pooled_is_fast(session):
    world, guest, server = session
    t0 = world.env.now
    handle = world.drive(guest.cudnnCreate())
    # pooled: no 1.2 s creation on the critical path
    assert world.env.now - t0 < 0.1
    assert handle > 0


def test_cublas_handle_pooled_is_fast(session):
    world, guest, server = session
    t0 = world.env.now
    world.drive(guest.cublasCreate())
    assert world.env.now - t0 < 0.1


def test_cudnn_op_runs_on_gpu(session):
    world, guest, server = session
    handle = world.drive(guest.cudnnCreate())
    t0 = world.env.now
    world.drive(guest.cudnnOp(handle, "conv_fwd", 0.4, sync=True))
    assert world.env.now - t0 == pytest.approx(0.4, abs=0.05)


def test_batching_reduces_messages(session):
    world, guest, server = session
    fptr = world.drive(guest.cudaGetFunction("timed"))
    msgs_before = guest.messages_sent

    def run(env):
        for _ in range(20):
            yield from guest.cudaLaunchKernel(fptr, args=(0.0001,))
        yield from guest.cudaDeviceSynchronize()

    world.drive(run(world.env))
    # 20 launches + 1 sync collapse into 1 batch message + 1 sync round trip
    assert guest.messages_sent - msgs_before <= 3
    assert guest.calls_batched >= 20


def test_batched_ops_execute_in_order(session):
    world, guest, server = session
    ptr = world.drive(guest.cudaMalloc(16))
    inc = world.drive(guest.cudaGetFunction("increment"))

    def run(env):
        for _ in range(7):
            yield from guest.cudaLaunchKernel(inc, args=(0.001, ptr, 16))
        yield from guest.cudaDeviceSynchronize()

    world.drive(run(world.env))
    back = world.drive(guest.memcpyD2H(ptr, 16))
    assert np.all(back[:16] == 7)
    world.drive(guest.cudaFree(ptr))


def test_session_cleanup_frees_leaked_allocations(shared_world):
    device = shared_world.gpu_server.devices[0]
    base = device.mem_used
    guest, server, rpc = shared_world.attach_guest(declared_bytes=1 << 30)
    shared_world.drive(guest.cudaMalloc(256 * MB))  # leaked on purpose
    assert device.mem_used > base
    shared_world.detach_guest(guest, server, rpc)
    assert device.mem_used == base


def test_server_busy_rejects_second_session(shared_world):
    from repro.errors import SimulationError

    guest, server, rpc = shared_world.attach_guest()
    try:
        with pytest.raises(SimulationError):
            server.begin_session(1 * MB)
    finally:
        shared_world.detach_guest(guest, server, rpc)


def test_unoptimized_guest_forwards_descriptors():
    world = make_world(DgsfConfig(num_gpus=1, optimizations=OptimizationFlags.none()))
    guest, server, rpc = world.attach_guest(flags=OptimizationFlags.none())
    before = guest.calls_forwarded
    d = world.drive(guest.cudnnCreateDescriptor("tensor"))
    world.drive(guest.cudnnSetDescriptor(d, n=1))
    world.drive(guest.cudnnDestroyDescriptor(d))
    assert guest.calls_forwarded == before + 3
    world.detach_guest(guest, server, rpc)


def test_unoptimized_cudnn_create_pays_full_cost():
    world = make_world(DgsfConfig(num_gpus=1, optimizations=OptimizationFlags.none()))
    guest, server, rpc = world.attach_guest(flags=OptimizationFlags.none())
    t0 = world.env.now
    world.drive(guest.cudnnCreate())
    assert world.env.now - t0 >= 1.2  # inline creation, on the critical path
    world.detach_guest(guest, server, rpc)


def test_forwarded_call_reduction_with_optimizations():
    """The headline §V-C claim: optimizations cut forwarded APIs sharply."""

    def run_calls(world, guest):
        def body(env):
            ptr = yield from guest.cudaMalloc(1 * MB)
            fptr = yield from guest.cudaGetFunction("timed")
            for _ in range(30):
                yield from guest.pushCallConfiguration()
                yield from guest.cudaLaunchKernel(fptr, args=(0.0001,))
            for _ in range(30):
                d = yield from guest.cudnnCreateDescriptor("tensor")
                yield from guest.cudnnSetDescriptor(d, n=1)
                yield from guest.cudnnDestroyDescriptor(d)
            yield from guest.cudaDeviceSynchronize()
            yield from guest.cudaFree(ptr)

        world.drive(body(world.env))
        return guest.calls_forwarded

    w1 = make_world(DgsfConfig(num_gpus=1, optimizations=OptimizationFlags.none()))
    g1, s1, r1 = w1.attach_guest(flags=OptimizationFlags.none())
    unopt = run_calls(w1, g1)

    w2 = make_world(DgsfConfig(num_gpus=1))
    g2, s2, r2 = w2.attach_guest()
    opt = run_calls(w2, g2)

    # with optimizations: descriptors and push-configs localized entirely,
    # launches batched (still counted as forwarded calls, but few messages)
    assert opt < unopt * 0.55
    assert g2.messages_sent < g1.messages_sent * 0.3
