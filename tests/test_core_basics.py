"""Unit tests for DGSF config, API classification, and policies."""

import pytest

from repro.errors import ConfigurationError
from repro.core import (
    DgsfConfig,
    OptimizationFlags,
    ApiClass,
    classify,
    make_policy,
    BestFit,
    WorstFit,
)


# --- config ----------------------------------------------------------------------

def test_config_defaults():
    cfg = DgsfConfig()
    assert cfg.num_gpus == 4
    assert not cfg.sharing_enabled
    assert cfg.optimizations.handle_pooling


def test_config_validation():
    with pytest.raises(ConfigurationError):
        DgsfConfig(num_gpus=0)
    with pytest.raises(ConfigurationError):
        DgsfConfig(api_servers_per_gpu=0)
    with pytest.raises(ConfigurationError):
        DgsfConfig(policy="random")
    with pytest.raises(ConfigurationError):
        DgsfConfig(monitor_period_s=0)


def test_config_with_override():
    cfg = DgsfConfig().with_(api_servers_per_gpu=2)
    assert cfg.sharing_enabled
    assert cfg.num_gpus == 4


def test_flags_none_and_all():
    none = OptimizationFlags.none()
    assert not any(
        (none.handle_pooling, none.descriptor_pooling, none.batching, none.avoid_unnecessary)
    )
    assert all(
        (OptimizationFlags.all().handle_pooling, OptimizationFlags.all().batching)
    )


def test_flags_with():
    flags = OptimizationFlags.none().with_(handle_pooling=True)
    assert flags.handle_pooling and not flags.batching


# --- classification -------------------------------------------------------------------

def test_descriptor_apis_localizable_only_with_pooling():
    on = OptimizationFlags.all()
    off = OptimizationFlags.none()
    assert classify("cudnnCreateDescriptor", on) is ApiClass.LOCALIZABLE
    assert classify("cudnnCreateDescriptor", off) is ApiClass.REMOTABLE_SYNC


def test_launches_batchable_only_with_batching():
    on = OptimizationFlags.all()
    off = OptimizationFlags.none()
    assert classify("cudaLaunchKernel", on) is ApiClass.BATCHABLE
    assert classify("cudaLaunchKernel", off) is ApiClass.REMOTABLE_SYNC


def test_pointer_attributes_localizable_with_avoidance():
    on = OptimizationFlags.all()
    off = OptimizationFlags.none()
    assert classify("cudaPointerGetAttributes", on) is ApiClass.LOCALIZABLE
    assert classify("cudaPointerGetAttributes", off) is ApiClass.REMOTABLE_SYNC


def test_malloc_always_remotable():
    assert classify("cudaMalloc", OptimizationFlags.all()) is ApiClass.REMOTABLE_SYNC
    assert classify("cudaDeviceSynchronize", OptimizationFlags.all()) is ApiClass.REMOTABLE_SYNC


# --- policies ----------------------------------------------------------------------------

class FakeGpu:
    def __init__(self, device_id, free):
        self.device_id = device_id
        self.schedulable_free = free


def test_best_fit_packs_tightest():
    policy = BestFit()
    gpus = [FakeGpu(0, 10_000), FakeGpu(1, 4_000), FakeGpu(2, 7_000)]
    assert policy.choose(gpus, 3_000) == 1


def test_worst_fit_spreads():
    policy = WorstFit()
    gpus = [FakeGpu(0, 10_000), FakeGpu(1, 4_000), FakeGpu(2, 7_000)]
    assert policy.choose(gpus, 3_000) == 0


def test_policy_returns_none_when_nothing_fits():
    policy = BestFit()
    gpus = [FakeGpu(0, 1_000)]
    assert policy.choose(gpus, 3_000) is None


def test_policy_empty_candidates():
    assert BestFit().choose([], 1) is None


def test_best_fit_tie_break_is_deterministic():
    policy = BestFit()
    gpus = [FakeGpu(1, 5_000), FakeGpu(0, 5_000)]
    assert policy.choose(gpus, 1_000) == 0


def test_make_policy():
    assert make_policy("best_fit").name == "best_fit"
    assert make_policy("worst_fit").name == "worst_fit"
    assert make_policy("first_fit").name == "first_fit"
    with pytest.raises(ConfigurationError):
        make_policy("magic")
