"""The shipped workload table must validate; broken tables must not."""

import dataclasses

import pytest

from repro.errors import ConfigurationError
from repro.simcuda.types import GB, MB
from repro.workloads import WORKLOADS
from repro.workloads.validation import (
    validate_all,
    validate_workload,
    ValidationIssue,
)


def test_shipped_table_is_consistent():
    assert validate_all() == []


def test_every_workload_validates_individually():
    for params in WORKLOADS.values():
        assert validate_workload(params) == [], params.name


def _broken(name, **overrides):
    return dataclasses.replace(WORKLOADS[name], **overrides)


def test_underdeclared_budget_detected():
    broken = _broken("face_identification", declared_gpu_bytes=1 * GB)
    issues = validate_workload(broken)
    assert any("declared" in str(i) for i in issues)


def test_oversized_declaration_detected():
    broken = _broken("face_identification", declared_gpu_bytes=15 * GB)
    issues = validate_workload(broken)
    assert any("static footprint" in str(i) for i in issues)


def test_peak_drift_detected():
    broken = _broken("face_identification", paper_peak_bytes=1 * GB)
    issues = validate_workload(broken)
    assert any("Table II" in str(i) for i in issues)


def test_input_overrun_detected():
    broken = _broken("nlp_qa", input_bytes_per_batch=1 * GB)
    issues = validate_workload(broken)
    assert any("input object" in str(i) for i in issues)


def test_missing_anchor_detected():
    broken = _broken("kmeans", paper_native_s=0.0)
    issues = validate_workload(broken)
    assert any("anchor" in str(i) for i in issues)


def test_cpu_faster_than_gpu_detected():
    broken = _broken("kmeans", cpu_run_s=1.0)
    issues = validate_workload(broken)
    assert any("CPU baseline" in str(i) for i in issues)


def test_validate_all_raises_on_issue(monkeypatch):
    import repro.workloads.validation as v

    broken = _broken("kmeans", cpu_run_s=1.0)
    monkeypatch.setitem(v.WORKLOADS, "kmeans", broken)
    with pytest.raises(ConfigurationError, match="calibration inconsistent"):
        validate_all()
    issues = validate_all(raise_on_issue=False)
    assert issues


def test_issue_str():
    issue = ValidationIssue("w", "bad thing")
    assert str(issue) == "w: bad thing"
