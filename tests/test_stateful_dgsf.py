"""Hypothesis stateful test: random API sequences with random migrations.

Drives a guest↔API-server pair with arbitrary interleavings of malloc,
free, H2D/D2H copies, kernel launches, syncs and forced migrations, and
checks the global invariants after every step:

* device memory accounting always balances what the model thinks is live,
* data written to an allocation reads back intact — including across any
  number of migrations,
* the virtual address map stays consistent (every live pointer resolves).
"""

import numpy as np
from hypothesis import settings
from hypothesis.stateful import (
    RuleBasedStateMachine,
    initialize,
    invariant,
    precondition,
    rule,
)
import hypothesis.strategies as st

from repro.core import DgsfConfig
from repro.core.migration import migrate_api_server
from repro.simcuda.types import GB, MB
from repro.testing import make_world


class DgsfMachine(RuleBasedStateMachine):
    @initialize()
    def setup(self):
        self.world = make_world(DgsfConfig(num_gpus=2))
        guest, server, rpc = self.world.attach_guest(declared_bytes=13 * GB)
        self.guest = guest
        self.server = server
        self.rpc = rpc
        #: ptr -> (size, expected bytes written so far)
        self.live: dict[int, tuple[int, np.ndarray]] = {}
        self.static_mem = {
            d.device_id: d.mem_used for d in self.world.gpu_server.devices
        }
        self.counter = 0

    # -- actions -------------------------------------------------------------
    @rule(size_kb=st.integers(min_value=1, max_value=2048))
    def malloc(self, size_kb):
        if len(self.live) >= 12:
            return
        size = size_kb * 1024
        ptr = self.world.drive(self.guest.cudaMalloc(size))
        self.live[ptr] = (size, np.zeros(min(size, 256), dtype=np.uint8))

    @precondition(lambda self: self.live)
    @rule(data=st.data())
    def write(self, data):
        ptr = data.draw(st.sampled_from(sorted(self.live)))
        size, _ = self.live[ptr]
        self.counter = (self.counter + 1) % 250
        payload = np.full(min(size, 256), self.counter, dtype=np.uint8)
        self.world.drive(self.guest.memcpyH2D(ptr, size, payload=payload))
        self.live[ptr] = (size, payload.copy())

    @precondition(lambda self: self.live)
    @rule(data=st.data())
    def read_back(self, data):
        ptr = data.draw(st.sampled_from(sorted(self.live)))
        size, expected = self.live[ptr]
        got = self.world.drive(self.guest.memcpyD2H(ptr, len(expected)))
        assert np.array_equal(got[: len(expected)], expected), (
            f"data mismatch at {ptr:#x} on GPU {self.server.current_device_id}"
        )

    @precondition(lambda self: self.live)
    @rule(data=st.data())
    def increment_kernel(self, data):
        ptr = data.draw(st.sampled_from(sorted(self.live)))
        size, expected = self.live[ptr]
        fptr = self.world.drive(self.guest.cudaGetFunction("increment"))

        def run(env):
            yield from self.guest.cudaLaunchKernel(
                fptr, args=(0.001, ptr, len(expected))
            )
            yield from self.guest.cudaDeviceSynchronize()

        self.world.drive(run(self.world.env))
        self.live[ptr] = (size, (expected + 1).astype(np.uint8))

    @precondition(lambda self: self.live)
    @rule(data=st.data())
    def free(self, data):
        ptr = data.draw(st.sampled_from(sorted(self.live)))
        self.world.drive(self.guest.cudaFree(ptr))
        del self.live[ptr]

    @rule()
    def sync(self):
        self.world.drive(self.guest.cudaDeviceSynchronize())

    @rule()
    def migrate(self):
        target = 1 - self.server.current_device_id
        proc = self.world.env.process(migrate_api_server(self.server, target))
        self.world.env.run(until=proc)
        assert self.server.current_device_id == target

    # -- invariants -----------------------------------------------------------
    @invariant()
    def memory_accounting_balances(self):
        if not hasattr(self, "world"):
            return
        live_bytes = sum(size for size, _ in self.live.values())
        devices = self.world.gpu_server.devices
        total_static = sum(self.static_mem.values())
        total_used = sum(d.mem_used for d in devices)
        assert total_used == total_static + live_bytes

    @invariant()
    def all_live_pointers_resolve(self):
        if not hasattr(self, "world"):
            return
        space = self.server.context.address_space
        for ptr in self.live:
            mapping, offset = space.translate(ptr)
            assert offset == 0
            assert mapping.allocation.device_id == self.server.current_device_id

    def teardown(self):
        if hasattr(self, "world"):
            self.world.detach_guest(self.guest, self.server, self.rpc)


TestDgsfStateful = DgsfMachine.TestCase
TestDgsfStateful.settings = settings(
    max_examples=12, stateful_step_count=25, deadline=None
)
