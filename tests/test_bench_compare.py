"""Tests for the perf-regression gate (scripts/bench_compare.py)."""

import importlib.util
import json
from pathlib import Path

import pytest

_SPEC = importlib.util.spec_from_file_location(
    "bench_compare",
    Path(__file__).resolve().parent.parent / "scripts" / "bench_compare.py",
)
bench_compare = importlib.util.module_from_spec(_SPEC)
_SPEC.loader.exec_module(bench_compare)


def sched_doc(**overrides):
    doc = {
        "experiment": "sched_ablation",
        "seed": 3,
        "copies": 4,
        "python": "3.12.0",
        "wall_seconds": 10.0,
        "rows": [
            {"discipline": "fcfs", "size_class": "small", "n": 8,
             "mean_queue_s": 10.0, "p99_queue_s": 40.0},
            {"discipline": "fcfs", "size_class": "large", "n": 4,
             "mean_queue_s": 30.0, "p99_queue_s": 90.0},
        ],
    }
    doc.update(overrides)
    return doc


def write(tmp_path, name, doc):
    path = tmp_path / name
    path.write_text(json.dumps(doc))
    return str(path)


def run(tmp_path, baseline, fresh, *extra):
    return bench_compare.main(
        [write(tmp_path, "base.json", baseline),
         write(tmp_path, "fresh.json", fresh), *extra]
    )


def test_identical_runs_pass(tmp_path, capsys):
    assert run(tmp_path, sched_doc(), sched_doc()) == 0
    assert "OK: 2 row(s)" in capsys.readouterr().out


def test_within_band_passes(tmp_path):
    fresh = sched_doc()
    # band for 10.0 at defaults: 0.05 + 0.02 * 10 = 0.25
    fresh["rows"][0]["mean_queue_s"] = 10.2
    assert run(tmp_path, sched_doc(), fresh) == 0


@pytest.mark.parametrize("direction", [1.15, 0.85])
def test_out_of_band_either_direction_fails(tmp_path, capsys, direction):
    fresh = sched_doc()
    fresh["rows"][0]["mean_queue_s"] = 10.0 * direction
    assert run(tmp_path, sched_doc(), fresh) == 1
    err = capsys.readouterr().err
    assert "REGRESSION" in err and "mean_queue_s" in err


def test_count_field_must_match_exactly(tmp_path, capsys):
    fresh = sched_doc()
    fresh["rows"][0]["n"] = 9  # within any band, but counts are exact
    assert run(tmp_path, sched_doc(), fresh) == 1
    assert "count changed" in capsys.readouterr().err


def test_compat_mismatch_is_not_comparable(tmp_path, capsys):
    assert run(tmp_path, sched_doc(), sched_doc(seed=4)) == 2
    assert "NOT COMPARABLE" in capsys.readouterr().err


def test_unknown_experiment_is_not_comparable(tmp_path):
    assert run(tmp_path, sched_doc(experiment="mystery"),
               sched_doc(experiment="mystery")) == 2


def test_environment_keys_are_ignored(tmp_path):
    fresh = sched_doc(python="3.11.9", wall_seconds=99.0)
    assert run(tmp_path, sched_doc(), fresh) == 0


def test_subset_fresh_run_passes_by_default(tmp_path, capsys):
    fresh = sched_doc()
    fresh["rows"] = fresh["rows"][:1]  # CI covers fewer rows than baseline
    assert run(tmp_path, sched_doc(), fresh) == 0
    assert "OK: 1 row(s)" in capsys.readouterr().out


def test_require_full_rejects_subset(tmp_path, capsys):
    fresh = sched_doc()
    fresh["rows"] = fresh["rows"][:1]
    assert run(tmp_path, sched_doc(), fresh, "--require-full") == 1
    assert "missing from fresh run" in capsys.readouterr().err


def test_fresh_only_row_fails(tmp_path, capsys):
    fresh = sched_doc()
    fresh["rows"].append({"discipline": "sff", "size_class": "small", "n": 8,
                          "mean_queue_s": 5.0})
    assert run(tmp_path, sched_doc(), fresh) == 1
    assert "missing from baseline" in capsys.readouterr().err


def test_empty_fresh_run_is_not_comparable(tmp_path):
    assert run(tmp_path, sched_doc(), sched_doc(rows=[])) == 2


def test_wider_tolerance_accepts_drift(tmp_path):
    fresh = sched_doc()
    fresh["rows"][0]["mean_queue_s"] = 11.0
    assert run(tmp_path, sched_doc(), fresh) == 1
    assert run(tmp_path, sched_doc(), fresh, "--rel-tol", "0.15") == 0


def test_ablation_sections_both_compared(tmp_path, capsys):
    doc = {
        "experiment": "fig4_ablation_plus_async_cache",
        "seed": 0,
        "ablation": [{"workload": "kmeans", "native": 5.0, "no_opt": 20.0}],
        "warm_cache": [{"workload": "kmeans", "cold_e2e": 11.0, "warm_e2e": 9.0}],
    }
    assert run(tmp_path, doc, json.loads(json.dumps(doc))) == 0
    assert "OK: 2 row(s)" in capsys.readouterr().out
    bad = json.loads(json.dumps(doc))
    bad["warm_cache"][0]["warm_e2e"] = 12.0
    assert run(tmp_path, doc, bad) == 1


def kernel_doc(**overrides):
    doc = {
        "experiment": "kernel_bench",
        "seed": 7,
        "events": 1000,
        "python": "3.11.7",
        "wall_seconds": 5.0,
        "scenarios": [
            {"scenario": "timer_flood", "impl": "wheel", "n_events": 1000,
             "final_now": 39.9, "timeouts_recycled": 0,
             "sched_wall_s": 0.1, "wall_s": 0.5, "events_per_sec": 2000.0},
            {"scenario": "timer_flood", "impl": "legacy", "n_events": 1000,
             "final_now": 39.9, "timeouts_recycled": 0,
             "sched_wall_s": 0.1, "wall_s": 1.5, "events_per_sec": 700.0},
        ],
        "speedups": [{"scenario": "timer_flood", "speedup": 2.9}],
        "order": [{"scenario": "timer_flood", "n_events": 500,
                   "order_n": 500, "order_crc": 123456789}],
    }
    doc.update(overrides)
    return doc


def test_kernel_bench_machine_dependent_fields_ignored(tmp_path):
    fresh = kernel_doc()
    # A different machine: throughput and speedup swing wildly — fine.
    fresh["scenarios"][0]["events_per_sec"] = 9999.0
    fresh["scenarios"][0]["wall_s"] = 0.01
    fresh["speedups"][0]["speedup"] = 1.1
    assert run(tmp_path, kernel_doc(), fresh) == 0


def test_kernel_bench_order_crc_is_exact(tmp_path, capsys):
    fresh = kernel_doc()
    fresh["order"][0]["order_crc"] = 987654321  # pop order changed
    assert run(tmp_path, kernel_doc(), fresh) == 1
    assert "order_crc" in capsys.readouterr().err


def test_kernel_bench_event_count_is_exact(tmp_path, capsys):
    fresh = kernel_doc()
    fresh["scenarios"][1]["n_events"] = 999
    assert run(tmp_path, kernel_doc(), fresh) == 1
    assert "n_events" in capsys.readouterr().err


def test_kernel_bench_different_event_scale_not_comparable(tmp_path):
    assert run(tmp_path, kernel_doc(), kernel_doc(events=500)) == 2


def test_quick_kernel_run_gates_order_section_only(tmp_path):
    """verify.sh gates a --quick (100k) run against the 1M baseline on the
    size-independent order section: --skip-compat events + --sections."""
    fresh = kernel_doc(events=100_000, quick=True)
    fresh["scenarios"] = [dict(s, n_events=100_000) for s in fresh["scenarios"]]
    # full comparison: not comparable (different event scale)
    assert run(tmp_path, kernel_doc(), fresh) == 2
    # the verify.sh invocation: order rows only, events exempted
    assert run(tmp_path, kernel_doc(), fresh,
               "--sections", "order", "--skip-compat", "events") == 0
    bad = json.loads(json.dumps(fresh))
    bad["order"][0]["order_crc"] = 1
    assert run(tmp_path, kernel_doc(), bad,
               "--sections", "order", "--skip-compat", "events") == 1


def test_unknown_section_name_is_not_comparable(tmp_path, capsys):
    assert run(tmp_path, kernel_doc(), kernel_doc(),
               "--sections", "nonsense") == 2
    assert "unknown section" in capsys.readouterr().err


def shard_doc(**overrides):
    doc = {
        "experiment": "shard_bench",
        "seed": 7,
        "profile": "full",
        "cpu_count": 4,
        "scaleout": [
            {"scenario": "pool", "shards": 1, "groups": 8,
             "invocations": 1_000_000, "n_events": 5_000_016,
             "n_epochs": 1, "n_envelopes": 0, "merged_crc": 111,
             "wall_s": 40.0, "events_per_sec": 125_000.0, "scaleout": 1.0},
            {"scenario": "pool", "shards": 4, "groups": 8,
             "invocations": 1_000_000, "n_events": 5_000_016,
             "n_epochs": 1, "n_envelopes": 0, "merged_crc": 111,
             "wall_s": 15.0, "events_per_sec": 333_000.0, "scaleout": 2.7},
        ],
        "smoke": [
            {"scenario": "pool", "shards": 1, "groups": 8,
             "invocations": 50_000, "n_events": 250_016, "n_epochs": 1,
             "n_envelopes": 0, "merged_crc": 222, "pop_crc": 333,
             "wall_s": 2.0, "events_per_sec": 125_000.0, "scaleout": 1.0},
            {"scenario": "sync", "shards": 2, "groups": 8,
             "invocations": 50_000, "n_events": 250_400, "n_epochs": 64,
             "n_envelopes": 210, "merged_crc": 444,
             "wall_s": 2.5, "events_per_sec": 100_000.0, "scaleout": 0.9},
        ],
        "tracing": [
            {"scenario": "pool", "shards": 2, "groups": 8,
             "invocations": 20_000, "n_events": 100_016,
             "merged_crc": 555, "trace_digest": 666, "n_spans": 60_000,
             "n_envelopes": 0, "events_per_sec_ratio": 0.55},
        ],
    }
    doc.update(overrides)
    return doc


def test_shard_bench_throughput_ignored_digest_exact(tmp_path, capsys):
    fresh = shard_doc()
    # another machine: wall/throughput/scaleout swing freely
    fresh["scaleout"][1].update(wall_s=60.0, events_per_sec=83_000.0,
                                scaleout=0.66)
    fresh["cpu_count"] = 1
    assert run(tmp_path, shard_doc(), fresh) == 0
    # ...but a merged-outcome digest change is a correctness regression
    bad = shard_doc()
    bad["smoke"][1]["merged_crc"] = 999
    assert run(tmp_path, shard_doc(), bad) == 1
    assert "merged_crc" in capsys.readouterr().err


def test_shard_bench_epoch_and_envelope_counts_exact(tmp_path, capsys):
    bad = shard_doc()
    bad["smoke"][1]["n_envelopes"] = 211
    assert run(tmp_path, shard_doc(), bad) == 1
    assert "n_envelopes" in capsys.readouterr().err


def test_shard_bench_smoke_only_fresh_run(tmp_path):
    """The verify.sh shape: fresh smoke rows gated against the committed
    full-profile baseline with --sections smoke."""
    fresh = shard_doc(profile="smoke", scaleout=[])
    assert run(tmp_path, shard_doc(), fresh, "--sections", "smoke") == 0


def test_real_committed_baselines_self_compare(tmp_path):
    """The committed baselines must be valid inputs to their own gate."""
    root = Path(__file__).resolve().parent.parent
    for name in ("BENCH_sched.json", "BENCH_ablation.json",
                 "BENCH_kernel.json", "BENCH_shard.json"):
        path = root / name
        assert bench_compare.main([str(path), str(path)]) == 0


# --- shard_bench tracing section ---------------------------------------------

def test_tracing_digest_and_span_count_are_exact_gated(tmp_path, capsys):
    fresh = shard_doc()
    fresh["tracing"][0]["trace_digest"] += 1
    assert run(tmp_path, shard_doc(), fresh, "--sections", "tracing") == 1
    assert "trace_digest" in capsys.readouterr().err

    fresh = shard_doc()
    fresh["tracing"][0]["n_spans"] -= 10
    assert run(tmp_path, shard_doc(), fresh, "--sections", "tracing") == 1
    assert "n_spans" in capsys.readouterr().err


def test_tracing_overhead_ratio_is_never_banded(tmp_path):
    fresh = shard_doc()
    # 10x slower tracing is a machine property, not a regression
    fresh["tracing"][0]["events_per_sec_ratio"] = 0.05
    assert run(tmp_path, shard_doc(), fresh, "--sections", "tracing") == 0


def test_smoke_and_tracing_sections_compare_together(tmp_path, capsys):
    """The verify.sh shape: fresh smoke+tracing rows against the committed
    full baseline, scaleout left to the manual refresh."""
    fresh = shard_doc(profile="smoke", scaleout=[])
    assert run(tmp_path, shard_doc(), fresh,
               "--sections", "smoke,tracing") == 0
    assert "OK: 3 row(s)" in capsys.readouterr().out
