"""Unit tests for the simulated GPU device."""

import pytest

from repro.sim import Environment
from repro.simcuda import SimGPU, CudaError
from repro.simcuda.costs import CostModel
from repro.simcuda.types import GB, MB


@pytest.fixture
def env():
    return Environment()


@pytest.fixture
def gpu(env):
    return SimGPU(env, device_id=0)


def test_memory_accounting(gpu):
    assert gpu.mem_free == 16 * GB
    alloc = gpu.alloc_phys(1 * GB)
    assert gpu.mem_used == 1 * GB
    gpu.free_phys(alloc)
    assert gpu.mem_used == 0


def test_out_of_memory_raises(gpu):
    gpu.alloc_phys(15 * GB)
    with pytest.raises(CudaError, match="cudaErrorMemoryAllocation"):
        gpu.alloc_phys(2 * GB)


def test_free_foreign_allocation_rejected(env):
    gpu0 = SimGPU(env, 0)
    gpu1 = SimGPU(env, 1)
    alloc = gpu0.alloc_phys(1 * MB)
    with pytest.raises(CudaError):
        gpu1.free_phys(alloc)


def test_reserve_bytes_for_runtime_footprints(gpu):
    gpu.reserve_bytes(303 * MB)
    assert gpu.mem_used == 303 * MB
    gpu.unreserve_bytes(303 * MB)
    assert gpu.mem_used == 0
    with pytest.raises(CudaError):
        gpu.unreserve_bytes(1)


def test_reserve_beyond_capacity_rejected(gpu):
    with pytest.raises(CudaError):
        gpu.reserve_bytes(17 * GB)


def test_kernel_launch_takes_work_time(env, gpu):
    done = gpu.launch(work_s=2.0)
    env.run(until=done)
    assert env.now == pytest.approx(2.0)


def test_concurrent_kernels_share_compute(env, gpu):
    d1 = gpu.launch(1.0)
    d2 = gpu.launch(1.0)
    env.run(until=env.all_of([d1, d2]))
    assert env.now == pytest.approx(2.0)


def test_h2d_copy_time_matches_bandwidth(env):
    costs = CostModel(h2d_bandwidth_Bps=10e9, memcpy_overhead_s=0.0)
    gpu = SimGPU(env, 0, costs=costs)
    done = gpu.copy_h2d(10_000_000_000)
    env.run(until=done)
    assert env.now == pytest.approx(1.0)


def test_d2d_copy_engine_is_separate_from_compute(env, gpu):
    """A migration copy must not be slowed by a running kernel."""
    k = gpu.launch(5.0)
    c = gpu.copy_d2d(7_500_000_000)  # 1 s at 7.5 GB/s
    env.run(until=c)
    assert env.now == pytest.approx(1.0, rel=0.01)
    env.run(until=k)
    assert env.now == pytest.approx(5.0)


def test_negative_copy_rejected(gpu):
    with pytest.raises(CudaError):
        gpu.copy_h2d(-1)


def test_utilization_reflects_kernel_residency(env, gpu):
    def driver(env):
        done = gpu.launch(1.0)
        yield done
        yield env.timeout(1.0)
        done = gpu.launch(2.0)
        yield done

    p = env.process(driver(env))
    env.run(until=p)
    assert gpu.utilization(0.0, 4.0) == pytest.approx(3.0 / 4.0)
