"""SLO engine tests: sliding windows, burn-rate/imbalance/starvation
rules, the engine's transition log, and the chaos-driven fire -> clear
behaviour required by the alerting acceptance criteria."""

import pytest

from repro.core import DgsfConfig, FaultPlan
from repro.experiments.runner import make_plan, run_chaos_scenario
from repro.obs import MetricsRegistry, SloEngine
from repro.obs.slo import (
    BurnRateRule,
    GpuImbalanceRule,
    LatencyRule,
    QueueStarvationRule,
    SlidingWindow,
)


def make_engine(rules):
    """Engine + registry with a manually-driven clock."""
    now = [0.0]
    registry = MetricsRegistry(clock=lambda: now[0])
    engine = SloEngine(rules).attach(registry)
    return engine, registry, now


# --- sliding window ----------------------------------------------------------

def test_sliding_window_prunes_and_aggregates():
    win = SlidingWindow(10.0)
    win.add(0.0, 1.0)
    win.add(5.0, 3.0)
    win.add(9.0, 2.0)
    assert win.count == 3 and win.total == 6.0
    assert win.mean() == pytest.approx(2.0)
    win.prune(12.0)  # cutoff 2.0 drops the t=0 sample
    assert win.count == 2 and win.total == 5.0
    win.prune(100.0)
    assert win.count == 0 and win.total == 0.0
    assert win.mean() is None


def test_sliding_window_rejects_bad_width():
    with pytest.raises(ValueError):
        SlidingWindow(0.0)


# --- burn-rate rule ----------------------------------------------------------

def test_burn_rate_fires_on_failures_and_clears_on_successes():
    engine, registry, now = make_engine([BurnRateRule()])

    def record(status):
        registry.counter("invocation.status", status=status).inc()

    now[0] = 10.0
    record("failed")  # 100% error rate in every window
    assert "availability-burn" in engine.active
    assert engine.alerts[-1].state == "firing"
    assert engine.alerts[-1].severity == "page"
    # the failure ages out of the fast 60 s window; fresh successes make
    # its burn zero, and one recovered window is enough to clear
    now[0] = 100.0
    record("completed")
    assert "availability-burn" not in engine.active
    assert engine.alerts[-1].state == "resolved"
    assert engine.alerts[-1].details["fired_at"] == 10.0


def test_burn_rate_clears_on_quiet_recovery():
    """No traffic at all: an explicit evaluate (the monitor's health-tick
    pulse) must still clear the alert once the windows drain."""
    engine, registry, now = make_engine([BurnRateRule()])
    now[0] = 10.0
    registry.counter("invocation.status", status="timeout").inc()
    assert "availability-burn" in engine.active
    engine.evaluate(500.0)  # both windows empty by now
    assert "availability-burn" not in engine.active


def test_burn_rate_needs_every_window_burning():
    """A single old failure among many successes keeps the fast window's
    burn below its factor, so the rule must not fire."""
    engine, registry, now = make_engine([BurnRateRule()])
    for i in range(99):
        now[0] = float(i)
        registry.counter("invocation.status", status="completed").inc()
    now[0] = 99.0
    registry.counter("invocation.status", status="failed").inc()
    # fast window (60 s): 1/61 = 1.6% error < 5% burn threshold
    assert "availability-burn" not in engine.active


def test_burn_rate_rejects_bad_target():
    with pytest.raises(ValueError):
        BurnRateRule(target=1.0)


# --- latency rule ------------------------------------------------------------

def test_latency_rule_needs_min_count_then_fires():
    engine, registry, now = make_engine(
        [LatencyRule(threshold_s=100.0, min_count=3)]
    )
    for i in range(2):
        now[0] = float(i)
        registry.histogram("invocation.e2e_s").observe(500.0)
    assert "latency-p95" not in engine.active  # below min_count
    now[0] = 2.0
    registry.histogram("invocation.e2e_s").observe(500.0)
    assert "latency-p95" in engine.active
    assert engine.active["latency-p95"].details["p95_s"] == pytest.approx(500.0)


# --- gpu imbalance rule ------------------------------------------------------

def test_gpu_imbalance_fires_on_skew_and_names_devices():
    engine, registry, now = make_engine(
        [GpuImbalanceRule(min_spread=0.4, min_samples=3)]
    )
    for i in range(3):
        t = float(i)
        registry.gauge("gpu.utilization", gpu_server="gpu0", device=0).set(0.9, t=t)
        registry.gauge("gpu.utilization", gpu_server="gpu0", device=1).set(0.1, t=t)
    assert "gpu-imbalance" in engine.active
    details = engine.active["gpu-imbalance"].details
    assert details["spread"] == pytest.approx(0.8)
    assert details["busiest"]["gpu"] == "gpu0/gpu0"
    assert details["idlest"]["gpu"] == "gpu0/gpu1"


def test_gpu_imbalance_needs_two_devices():
    engine, registry, now = make_engine([GpuImbalanceRule(min_samples=1)])
    registry.gauge("gpu.utilization", gpu_server="gpu0", device=0).set(1.0, t=0.0)
    assert "gpu-imbalance" not in engine.active


# --- queue starvation rule ---------------------------------------------------

def test_queue_starvation_fires_then_clears_on_grant():
    engine, registry, now = make_engine([QueueStarvationRule(max_wait_s=60.0)])
    now[0] = 0.0
    registry.counter("scheduler.enqueued", discipline="fcfs").inc()
    assert "queue-starvation" not in engine.active
    engine.evaluate(61.0)
    assert "queue-starvation" in engine.active
    assert engine.active["queue-starvation"].details["oldest_wait_s"] == 61.0
    now[0] = 62.0
    registry.counter("scheduler.granted", discipline="fcfs").inc()
    assert "queue-starvation" not in engine.active


def test_queue_starvation_cancel_also_drains():
    engine, registry, now = make_engine([QueueStarvationRule(max_wait_s=60.0)])
    registry.counter("scheduler.enqueued", discipline="fcfs").inc()
    now[0] = 10.0
    registry.counter("scheduler.cancelled", discipline="fcfs").inc()
    engine.evaluate(1000.0)
    assert "queue-starvation" not in engine.active


# --- engine ------------------------------------------------------------------

def test_engine_rejects_duplicate_rule_names():
    with pytest.raises(ValueError):
        SloEngine([BurnRateRule(), BurnRateRule()])


def test_engine_summary_and_alert_log():
    engine, registry, now = make_engine([BurnRateRule()])
    now[0] = 10.0
    registry.counter("invocation.status", status="failed").inc()
    engine.evaluate(500.0)
    assert engine.summary() == {
        "events": 2,
        "fired": {"availability-burn": 1},
        "active": [],
    }
    log = engine.alert_log()
    assert [e["state"] for e in log] == ["firing", "resolved"]
    assert all(isinstance(e["details"], dict) for e in log)


def test_unrouted_metrics_are_ignored():
    engine, registry, now = make_engine([BurnRateRule()])
    registry.counter("guest.rpc_retries").inc()
    assert engine.alerts == []


# --- chaos integration: crash -> burn fires, recovery -> clears --------------

def test_chaos_run_fires_and_clears_availability_burn():
    plan = FaultPlan(
        server_crash_prob=0.2,
        crash_after_calls=(1, 20),
        link_drop_prob=0.005,
        delay_spike_prob=0.02,
        delay_spike_s=0.2,
        partitions=((40.0, 42.0),),
    )
    config = DgsfConfig(
        num_gpus=2,
        api_servers_per_gpu=2,
        seed=3,
        fault_plan=plan,
        rpc_timeout_s=20.0,
        rpc_max_retries=2,
        rpc_retry_backoff_s=0.5,
    )
    result = run_chaos_scenario(config, make_plan("exponential", seed=3, copies=2))
    assert result.crashes_detected > 0
    assert result.outcomes.counts.get("failed", 0) > 0
    burn = [e for e in result.alerts if e.rule == "availability-burn"]
    states = [e.state for e in burn]
    # crashes push failures through the burn windows -> the alert fires;
    # post-recovery successes (and sim time) drain them -> it clears
    assert "firing" in states and "resolved" in states
    assert burn[-1].state == "resolved"
    for firing, resolved in zip(burn[::2], burn[1::2]):
        assert firing.state == "firing" and resolved.state == "resolved"
        assert resolved.t > firing.t
    # the structured log round-trips for the alerts.json artifact
    assert result.deployment.slo.alert_log()[0]["rule"]


# --- cluster-level re-evaluation over a merged registry ----------------------

def test_evaluate_cluster_slo_sees_cross_shard_imbalance():
    from repro.obs.slo import evaluate_cluster_slo

    # each shard hosts ONE device: no per-shard engine can see a spread
    shard_a = MetricsRegistry()
    shard_b = MetricsRegistry()
    for i in range(4):
        t = float(i)
        shard_a.gauge("gpu.utilization", gpu_server="g0", device=0).set(0.9, t=t)
        shard_b.gauge("gpu.utilization", gpu_server="g1", device=0).set(0.1, t=t)

    merged = MetricsRegistry()
    merged.merge_snapshot(shard_a.snapshot())
    merged.merge_snapshot(shard_b.snapshot())

    cluster = evaluate_cluster_slo(merged)
    assert "gpu-imbalance" in cluster.active
    details = cluster.active["gpu-imbalance"].details
    assert details["spread"] == pytest.approx(0.8)
    assert details["busiest"]["gpu"] == "g0/gpu0"
    assert details["idlest"]["gpu"] == "g1/gpu0"
    # the replay produced a real transition log, in time order
    log = cluster.alert_log()
    assert log and log[0]["rule"] == "gpu-imbalance"
    assert [e["t"] for e in log] == sorted(e["t"] for e in log)


def test_evaluate_cluster_slo_balanced_cluster_stays_quiet():
    from repro.obs.slo import evaluate_cluster_slo

    merged = MetricsRegistry()
    for shard, util in ((0, 0.5), (1, 0.52)):
        reg = MetricsRegistry()
        for i in range(4):
            reg.gauge("gpu.utilization", gpu_server=f"g{shard}",
                      device=0).set(util, t=float(i))
        merged.merge_snapshot(reg.snapshot())
    cluster = evaluate_cluster_slo(merged)
    assert cluster.active == {}
    assert cluster.alert_log() == []


def test_evaluate_cluster_slo_empty_registry_and_custom_rules():
    from repro.obs.slo import evaluate_cluster_slo

    empty = evaluate_cluster_slo(MetricsRegistry())
    assert empty.alert_log() == [] and empty.active == {}
    # custom rule list replaces the default
    custom = evaluate_cluster_slo(
        MetricsRegistry(), rules=[GpuImbalanceRule(min_spread=0.1)])
    assert [r.name for r in custom.rules] == ["gpu-imbalance"]
    assert custom.rules[0].min_spread == 0.1
