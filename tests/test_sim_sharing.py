"""Unit tests for the processor-sharing GPU compute model."""

import pytest

from repro.errors import SimulationError
from repro.sim import Environment, FairShareEngine


def run_until(env, event):
    env.run(until=event)
    return env.now


def test_single_task_runs_at_full_rate():
    env = Environment()
    eng = FairShareEngine(env)
    done = eng.submit(work=4.0)
    assert run_until(env, done) == pytest.approx(4.0)


def test_two_tasks_halve_each_other():
    env = Environment()
    eng = FairShareEngine(env)
    d1 = eng.submit(work=2.0)
    d2 = eng.submit(work=2.0)
    env.run(until=env.all_of([d1, d2]))
    # Both share the engine at rate 1/2 → each takes 4s.
    assert env.now == pytest.approx(4.0)


def test_unequal_tasks_finish_in_order():
    env = Environment()
    eng = FairShareEngine(env)
    short = eng.submit(work=1.0)
    long = eng.submit(work=3.0)
    t_short = run_until(env, short)
    t_long = run_until(env, long)
    # Shared at 0.5 until short finishes at t=2 (long has 2.0 left),
    # then long runs alone → finishes at t=4.
    assert t_short == pytest.approx(2.0)
    assert t_long == pytest.approx(4.0)


def test_late_arrival_slows_running_task():
    env = Environment()
    eng = FairShareEngine(env)
    results = {}

    def first(env):
        done = eng.submit(work=4.0)
        yield done
        results["first"] = env.now

    def second(env):
        yield env.timeout(2.0)
        done = eng.submit(work=1.0)
        yield done
        results["second"] = env.now

    env.process(first(env))
    env.process(second(env))
    env.run()
    # first runs alone 0-2 (2 units done), then shares: needs 2 more units at
    # rate .5 → would finish at t=6; second needs 1 unit at rate .5 → t=4.
    # After second finishes at 4, first has 1 unit left at full rate → t=5.
    assert results["second"] == pytest.approx(4.0)
    assert results["first"] == pytest.approx(5.0)


def test_low_demand_task_does_not_consume_full_share():
    env = Environment()
    eng = FairShareEngine(env)
    # demand 0.25 task alone: runs at 0.25 → work 1.0 takes 4s.
    done = eng.submit(work=1.0, demand=0.25)
    assert run_until(env, done) == pytest.approx(4.0)


def test_max_min_fairness_redistributes_surplus():
    env = Environment()
    eng = FairShareEngine(env)
    small = eng.submit(work=0.3, demand=0.2)  # capped at 0.2
    big = eng.submit(work=8.0, demand=1.0)    # gets the remaining 0.8
    t_small = run_until(env, small)
    assert t_small == pytest.approx(0.3 / 0.2)
    t_big = run_until(env, big)
    # big did 0.8*1.5=1.2 units by t=1.5, then full rate: 6.8 more → t=8.3
    assert t_big == pytest.approx(1.5 + 6.8)


def test_zero_work_completes_immediately():
    env = Environment()
    eng = FairShareEngine(env)
    done = eng.submit(work=0.0)

    def waiter(env):
        yield done
        return env.now

    p = env.process(waiter(env))
    env.run()
    assert p.value == 0.0


def test_zero_work_completes_via_event_path_not_inline():
    """Pins the docstring's promise: ``submit`` returns an *untriggered*
    event, and completion arrives through the engine's zero-horizon
    wake-up — same sim time, later event turn — so a timeout created
    right after ``submit`` is always serviced first."""
    env = Environment()
    eng = FairShareEngine(env)
    order = []
    done = eng.submit(work=0.0)
    assert not done.triggered  # event path, not inline
    t0 = env.timeout(0.0)
    t0.callbacks.append(lambda _e: order.append("timeout"))
    done.callbacks.append(lambda _e: order.append("done"))
    env.run()
    assert env.now == 0.0
    assert done.triggered
    assert order == ["timeout", "done"]
    assert eng.active_tasks == 0
    # the zero-width busy interval is not recorded
    assert eng.busy_intervals == []


def test_zero_work_blip_does_not_disturb_running_task():
    env = Environment()
    eng = FairShareEngine(env)
    running = eng.submit(work=2.0)
    zero = eng.submit(work=0.0)
    env.run(until=zero)
    assert env.now == 0.0
    env.run(until=running)
    # the instantaneous co-runner charges no time against the real task
    assert env.now == pytest.approx(2.0)


def test_invalid_parameters():
    env = Environment()
    eng = FairShareEngine(env)
    with pytest.raises(ValueError):
        eng.submit(work=-1.0)
    with pytest.raises(ValueError):
        eng.submit(work=1.0, demand=0.0)
    with pytest.raises(ValueError):
        eng.submit(work=1.0, demand=1.5)
    with pytest.raises(ValueError):
        FairShareEngine(env, capacity=0)


def test_cancel_removes_task():
    env = Environment()
    eng = FairShareEngine(env)
    keep = eng.submit(work=2.0)
    drop = eng.submit(work=2.0)

    def canceller(env):
        yield env.timeout(1.0)
        assert eng.cancel(drop) is True
        assert eng.cancel(drop) is False  # already gone

    env.process(canceller(env))
    t = run_until(env, keep)
    # 0-1: shared (0.5 units done); 1-: alone, 1.5 left → t=2.5
    assert t == pytest.approx(2.5)


def test_utilization_tracks_busy_time():
    env = Environment()
    eng = FairShareEngine(env)

    def driver(env):
        done = eng.submit(work=2.0)
        yield done
        yield env.timeout(2.0)  # idle gap
        done = eng.submit(work=1.0)
        yield done

    p = env.process(driver(env))
    env.run(until=p)
    assert env.now == pytest.approx(5.0)
    assert eng.utilization(0.0, 5.0) == pytest.approx(3.0 / 5.0)
    assert eng.utilization(2.0, 4.0) == pytest.approx(0.0)
    assert eng.utilization(0.0, 2.0) == pytest.approx(1.0)


def test_utilization_open_interval_counts_running_task():
    env = Environment()
    eng = FairShareEngine(env)
    eng.submit(work=10.0)
    env.run(until=4.0)
    assert eng.utilization(0.0, 4.0) == pytest.approx(1.0)


def test_utilization_invalid_window():
    env = Environment()
    eng = FairShareEngine(env)
    with pytest.raises(ValueError):
        eng.utilization(2.0, 2.0)  # zero width
    with pytest.raises(ValueError):
        eng.utilization(3.0, 2.0)  # reversed


def test_utilization_open_busy_interval_clipped_at_now():
    env = Environment()
    eng = FairShareEngine(env)
    eng.submit(work=10.0)
    env.run(until=4.0)
    # window reaching past now: the open interval contributes only [0, now]
    assert eng.utilization(0.0, 8.0) == pytest.approx(0.5)


def test_mean_load_zero_width_and_window_validation():
    env = Environment()
    eng = FairShareEngine(env)
    # zero-width [0, 0] window is defined as 0.0, not a division by zero
    assert eng.mean_load(0.0, 0.0) == 0.0
    with pytest.raises(SimulationError):
        eng.mean_load(1.0, 1.0)  # start != 0
    done = eng.submit(work=1.0)
    env.run(until=done)
    with pytest.raises(SimulationError):
        eng.mean_load(0.0, env.now / 2)  # end != now
    assert eng.mean_load(0.0, env.now) == pytest.approx(1.0)


def test_capacity_scales_rates():
    env = Environment()
    eng = FairShareEngine(env, capacity=2.0)
    d1 = eng.submit(work=2.0, demand=1.0)
    d2 = eng.submit(work=2.0, demand=1.0)
    env.run(until=env.all_of([d1, d2]))
    # capacity 2 with two demand-1 tasks → both at rate 1 → 2s.
    assert env.now == pytest.approx(2.0)


def test_many_tasks_complete_and_engine_drains():
    env = Environment()
    eng = FairShareEngine(env)
    events = [eng.submit(work=1.0) for _ in range(10)]
    env.run(until=env.all_of(events))
    assert env.now == pytest.approx(10.0)
    assert eng.active_tasks == 0
