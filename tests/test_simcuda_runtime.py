"""Unit tests for the local (native) CUDA runtime implementation."""

import numpy as np
import pytest

from repro.sim import Environment
from repro.simcuda import (
    CudaError,
    LocalCudaRuntime,
    SimGPU,
    MemcpyKind,
    Dim3,
)
from repro.simcuda.costs import CostModel
from repro.simcuda.types import MB


@pytest.fixture
def setup():
    env = Environment()
    gpu = SimGPU(env, 0)
    rt = LocalCudaRuntime(env, [gpu])
    return env, gpu, rt


def drive(env, gen):
    """Run one runtime-call generator to completion, return its value."""
    p = env.process(gen)
    return env.run(until=p)


def test_first_call_pays_cuda_init(setup):
    env, gpu, rt = setup
    count = drive(env, rt.cudaGetDeviceCount())
    assert count == 1
    assert env.now >= 3.2  # paper: CUDA init 3.2 s on the critical path
    assert rt.init_time_spent == pytest.approx(3.2)


def test_second_call_does_not_pay_init_again(setup):
    env, gpu, rt = setup
    drive(env, rt.cudaGetDeviceCount())
    t1 = env.now
    drive(env, rt.cudaGetDeviceCount())
    assert env.now - t1 < 0.001


def test_init_reserves_context_memory(setup):
    env, gpu, rt = setup
    drive(env, rt.cudaGetDeviceCount())
    assert gpu.mem_used == 303 * MB


def test_malloc_free_roundtrip(setup):
    env, gpu, rt = setup
    ptr = drive(env, rt.cudaMalloc(64 * MB))
    assert gpu.mem_used == 303 * MB + 64 * MB
    drive(env, rt.cudaFree(ptr))
    assert gpu.mem_used == 303 * MB


def test_free_unknown_pointer_fails(setup):
    env, gpu, rt = setup
    drive(env, rt.cudaGetDeviceCount())
    with pytest.raises(CudaError):
        drive(env, rt.cudaFree(0xBAD))


def test_memcpy_h2d_d2h_roundtrip(setup):
    env, gpu, rt = setup
    data = np.arange(1024, dtype=np.uint8)
    ptr = drive(env, rt.cudaMalloc(1024))
    drive(env, rt.cudaMemcpy(ptr, data, 1024, MemcpyKind.HostToDevice))
    out = np.zeros(1024, dtype=np.uint8)
    drive(env, rt.cudaMemcpy(out, ptr, 1024, MemcpyKind.DeviceToHost))
    assert np.array_equal(out, data)


def test_memcpy_d2d_moves_data(setup):
    env, gpu, rt = setup
    data = np.full(256, 9, dtype=np.uint8)
    src = drive(env, rt.cudaMalloc(256))
    dst = drive(env, rt.cudaMalloc(256))
    drive(env, rt.cudaMemcpy(src, data, 256, MemcpyKind.HostToDevice))
    drive(env, rt.cudaMemcpy(dst, src, 256, MemcpyKind.DeviceToDevice))
    out = np.zeros(256, dtype=np.uint8)
    drive(env, rt.cudaMemcpy(out, dst, 256, MemcpyKind.DeviceToHost))
    assert np.array_equal(out, data)


def test_memcpy_time_scales_with_size():
    env = Environment()
    costs = CostModel(h2d_bandwidth_Bps=1e9, memcpy_overhead_s=0.0)
    gpu = SimGPU(env, 0, costs=costs)
    rt = LocalCudaRuntime(env, [gpu], costs=costs)
    ptr = drive(env, rt.cudaMalloc(2_000_000_000))
    t0 = env.now
    drive(env, rt.cudaMemcpy(ptr, None, 1_000_000_000, MemcpyKind.HostToDevice))
    assert env.now - t0 == pytest.approx(1.0, rel=0.01)


def test_memset_writes_value(setup):
    env, gpu, rt = setup
    ptr = drive(env, rt.cudaMalloc(128))
    drive(env, rt.cudaMemset(ptr, 7, 128))
    out = np.zeros(128, dtype=np.uint8)
    drive(env, rt.cudaMemcpy(out, ptr, 128, MemcpyKind.DeviceToHost))
    assert np.all(out == 7)


def test_kernel_launch_with_payload(setup):
    env, gpu, rt = setup
    ptr = drive(env, rt.cudaMalloc(64))
    fptr = drive(env, rt.cudaGetFunction("fill"))

    def run(env):
        done = yield from rt.cudaLaunchKernel(
            fptr, Dim3(1), Dim3(64), (0.001, ptr, 64, 0xAB)
        )
        yield done
        yield from rt.cudaDeviceSynchronize()

    drive(env, run(env))
    out = np.zeros(64, dtype=np.uint8)
    drive(env, rt.cudaMemcpy(out, ptr, 64, MemcpyKind.DeviceToHost))
    assert np.all(out == 0xAB)


def test_kernel_launches_on_stream_are_ordered(setup):
    env, gpu, rt = setup
    ptr = drive(env, rt.cudaMalloc(16))
    inc = drive(env, rt.cudaGetFunction("increment"))

    def run(env):
        for _ in range(5):
            yield from rt.cudaLaunchKernel(inc, Dim3(1), Dim3(1), (0.01, ptr, 16))
        yield from rt.cudaDeviceSynchronize()

    drive(env, run(env))
    out = np.zeros(16, dtype=np.uint8)
    drive(env, rt.cudaMemcpy(out, ptr, 16, MemcpyKind.DeviceToHost))
    assert np.all(out == 5)


def test_unknown_kernel_rejected(setup):
    env, gpu, rt = setup
    from repro.errors import ConfigurationError
    with pytest.raises(ConfigurationError):
        drive(env, rt.cudaGetFunction("no_such_kernel"))


def test_streams_create_sync_destroy(setup):
    env, gpu, rt = setup
    stream = drive(env, rt.cudaStreamCreate())
    fptr = drive(env, rt.cudaGetFunction("timed"))

    def run(env):
        yield from rt.cudaLaunchKernel(fptr, Dim3(1), Dim3(1), (0.5,), stream=stream)
        t0 = env.now
        yield from rt.cudaStreamSynchronize(stream)
        return env.now - t0

    waited = drive(env, run(env))
    assert waited == pytest.approx(0.5, abs=0.01)
    drive(env, rt.cudaStreamDestroy(stream))
    with pytest.raises(CudaError):
        drive(env, rt.cudaStreamSynchronize(stream))


def test_events_record_and_synchronize(setup):
    env, gpu, rt = setup
    fptr = drive(env, rt.cudaGetFunction("timed"))
    event = drive(env, rt.cudaEventCreate())

    def run(env):
        yield from rt.cudaLaunchKernel(fptr, Dim3(1), Dim3(1), (1.0,))
        yield from rt.cudaEventRecord(event)
        t0 = env.now
        yield from rt.cudaEventSynchronize(event)
        return env.now - t0

    waited = drive(env, run(env))
    assert waited == pytest.approx(1.0, abs=0.01)


def test_malloc_host_and_pointer_attributes(setup):
    env, gpu, rt = setup
    hptr = drive(env, rt.cudaMallocHost(4096))
    dptr = drive(env, rt.cudaMalloc(4096))
    ha = drive(env, rt.cudaPointerGetAttributes(hptr))
    da = drive(env, rt.cudaPointerGetAttributes(dptr))
    assert not ha.is_device
    assert da.is_device and da.device_id == 0
    drive(env, rt.cudaFreeHost(hptr))
    with pytest.raises(CudaError):
        drive(env, rt.cudaFreeHost(hptr))


def test_set_device_validates(setup):
    env, gpu, rt = setup
    drive(env, rt.cudaSetDevice(0))
    with pytest.raises(CudaError):
        drive(env, rt.cudaSetDevice(3))


def test_multi_gpu_native_runtime_reports_count():
    env = Environment()
    gpus = [SimGPU(env, i) for i in range(4)]
    rt = LocalCudaRuntime(env, gpus)
    assert drive(env, rt.cudaGetDeviceCount()) == 4


def test_device_synchronize_waits_all_streams(setup):
    env, gpu, rt = setup
    fptr = drive(env, rt.cudaGetFunction("timed"))
    s1 = drive(env, rt.cudaStreamCreate())

    def run(env):
        yield from rt.cudaLaunchKernel(fptr, Dim3(1), Dim3(1), (1.0,), stream=0)
        yield from rt.cudaLaunchKernel(fptr, Dim3(1), Dim3(1), (1.0,), stream=s1)
        t0 = env.now
        yield from rt.cudaDeviceSynchronize()
        return env.now - t0

    waited = drive(env, run(env))
    # both streams run concurrently on the shared engine: 2 s total
    assert waited == pytest.approx(2.0, abs=0.05)
