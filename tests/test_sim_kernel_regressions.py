"""Regression tests for the kernel hot-path bug sweep + event wheel.

Covers the three bugfix satellites (each of these fails on the
pre-refactor code), the kernel edge cases called out in the issue, and
wheel-specific behaviour: order parity with the frozen legacy heap
kernel, overflow migration, cursor rebase, and Timeout pooling.
"""

import random
import time

import pytest

from repro.errors import SimulationError
from repro.sim import Environment, Resource
from repro.sim.core import Interrupt, Timeout
from repro.sim.legacy import LegacyHeapEnvironment
from repro.faas.workload_gen import schedule_arrivals, uniform_arrivals
from repro.obs.metrics import Histogram, MetricsRegistry, _percentile


# --- bugfix 1: Event.cancel() on a pending event must not poison it ---------

def test_cancel_pending_event_is_noop_and_later_succeed_still_fires():
    """Old code set _cancelled on a pending event; a later succeed() then
    scheduled an entry that step() dropped silently, hanging the waiter."""
    env = Environment()
    gate = env.event()
    got = []

    def waiter(env):
        value = yield gate
        got.append(value)

    def toggler(env):
        yield env.timeout(1)
        gate.cancel()  # pending: must be a no-op
        gate.succeed("delivered")

    env.process(waiter(env))
    env.process(toggler(env))
    env.run()
    assert got == ["delivered"]


def test_cancel_scheduled_timeout_still_tombstones():
    env = Environment()
    t5 = env.timeout(5)
    env.timeout(10)
    t5.cancel()
    env.run()
    assert env.now == 10
    assert env.stats()["events_processed"] == 1


def test_cancel_processed_event_is_noop():
    env = Environment()
    t = env.timeout(1)
    env.run()
    t.cancel()  # already processed: nothing to tombstone
    assert not t._cancelled


# --- bugfix 2: Resource._cancel tombstones instead of O(n) rebuild ----------

def test_resource_cancel_preserves_grant_order():
    env = Environment()
    res = Resource(env, capacity=1)
    held = res.request()
    waiters = [res.request() for _ in range(4)]
    granted = []
    for i, req in enumerate(waiters):
        req.callbacks.append(lambda _ev, i=i: granted.append(i))
    waiters[1].cancel()
    waiters[2].cancel()
    assert res.queued == 2
    res.release(held)
    env.run()
    res.release(waiters[0])
    env.run()
    assert granted == [0, 3]
    assert res.queued == 0


def test_resource_request_granted_when_queue_holds_only_tombstones():
    env = Environment()
    res = Resource(env, capacity=1)
    held = res.request()
    waiting = res.request()
    waiting.cancel()
    res.release(held)
    # Queue may still physically hold the tombstone; a new request must
    # see an effectively empty queue and be granted immediately.
    fresh = res.request()
    assert fresh.triggered
    assert res.queued == 0


def test_resource_double_cancel_does_not_corrupt_tombstone_count():
    env = Environment()
    res = Resource(env, capacity=1)
    held = res.request()
    a, b = res.request(), res.request()
    a.cancel()
    a.cancel()  # second cancel must be a no-op
    assert res.queued == 1
    res.release(held)
    env.run()
    assert b.triggered
    assert res.queued == 0


def test_resource_mass_cancellation_is_not_quadratic():
    """Old code rebuilt the whole heap per cancel: O(n) each, quadratic in
    total — ~10k waiters took multiple seconds.  Tombstoning is amortized
    O(1) per cancel."""
    env = Environment()
    res = Resource(env, capacity=1)
    held = res.request()
    waiters = [res.request() for _ in range(10_000)]
    start = time.perf_counter()
    for req in waiters:
        req.cancel()
    elapsed = time.perf_counter() - start
    assert elapsed < 2.5, f"mass cancellation took {elapsed:.2f}s"
    assert res.queued == 0
    # Compaction keeps the physical queue bounded too.
    assert len(res.queue) < 10_000
    res.release(held)
    fresh = res.request()
    assert fresh.triggered


# --- bugfix 3: Histogram sorted-snapshot cache + bounded memory -------------

def test_histogram_caches_sorted_snapshot_between_observes():
    h = Histogram("x", {})
    for v in [5.0, 1.0, 3.0]:
        h.observe(v)
    assert h._sorted is None  # lazily built
    assert h.p50 == 3.0
    first = h._sorted
    assert h.p95 == h.percentile(95)
    assert h._sorted is first  # p95/p99 reuse the p50 sort
    h.observe(2.0)
    assert h._sorted is None  # invalidated by observe


def test_histogram_memory_is_bounded_and_truncation_reported():
    h = Histogram("lat", {})
    n = 70_000
    rng = random.Random(1)
    values = [rng.random() for _ in range(n)]
    for v in values:
        h.observe(v)
    assert len(h.observations) < 65_536  # old code: == 70_000
    assert h.count == n  # exact despite truncation
    assert h.total == pytest.approx(sum(values), rel=1e-12)
    assert h.truncated
    assert h.dropped == n - len(h.observations)
    # The retained systematic sample still estimates percentiles well.
    assert h.p50 == pytest.approx(0.5, abs=0.02)
    assert h.p99 == pytest.approx(0.99, abs=0.02)


def test_histogram_exact_below_cap_and_as_dict_reports_truncation():
    reg = MetricsRegistry()
    small = reg.histogram("small")
    for v in [1.0, 2.0, 3.0]:
        small.observe(v)
    assert not small.truncated and small.dropped == 0
    big = reg.histogram("big")
    for i in range(70_000):
        big.observe(float(i))
    snap = reg.as_dict()
    assert "sample_dropped" not in snap["small"]
    assert snap["big"]["sample_dropped"] == big.dropped > 0
    assert snap["big"]["count"] == 70_000
    assert snap["small"]["mean"] == 2.0


def test_histogram_truncation_is_deterministic():
    def build():
        h = Histogram("d", {})
        rng = random.Random(9)
        for _ in range(200_000):
            h.observe(rng.random())
        return h
    a, b = build(), build()
    assert a.observations == b.observations
    assert a.p95 == b.p95 and a.count == b.count and a.total == b.total


def test_percentile_helper_signature_unchanged():
    assert _percentile([3.0, 1.0, 2.0], 50) == 2.0


# --- kernel edge cases (issue checklist) ------------------------------------

def test_run_until_event_that_fails_during_run():
    env = Environment()
    doomed = env.event()

    def failer(env):
        yield env.timeout(2)
        doomed.fail(RuntimeError("mid-run failure"))

    env.process(failer(env))
    with pytest.raises(RuntimeError, match="mid-run failure"):
        env.run(until=doomed)
    assert env.now == 2


def test_interrupt_process_whose_target_already_triggered():
    """Interrupt lands while the victim's awaited timeout is already in
    the queue (triggered, not yet processed): the victim must get the
    Interrupt and must NOT be resumed a second time by the timeout."""
    env = Environment()
    log = []

    def victim(env):
        try:
            yield env.timeout(1)
            log.append("timeout-resumed")
        except Interrupt as intr:
            log.append(f"interrupted:{intr.cause}")
        # survive past the interrupt; the detached timeout still fires
        yield env.timeout(5)
        log.append("done")

    def attacker(env):
        yield env.timeout(1)  # same fire time as the victim's target
        if v.is_alive:
            v.interrupt("evict")

    # Attacker first: its t=1 timeout gets the smaller eid, so it fires
    # before the victim's — the interrupt arrives while the victim's
    # target is triggered and sitting in the queue.
    env.process(attacker(env))
    v = env.process(victim(env))
    env.run()
    assert log == ["interrupted:evict", "done"]


def test_condition_over_duplicate_and_already_processed_events():
    env = Environment()

    def proc(env):
        early = env.timeout(1, value="early")
        yield env.timeout(2)  # `early` is processed by now
        dup = env.timeout(3, value="dup")
        result = yield env.all_of([early, dup, dup, early])
        return list(result.values())

    p = env.process(proc(env))
    env.run(until=p)
    # The result dict is keyed by event, so duplicates collapse — but the
    # condition must neither hang nor double-count the repeated members.
    assert p.value == ["early", "dup"]


def test_cancelled_tombstones_never_advance_now():
    env = Environment()
    for delay in (1.0, 2.0, 3.0):
        env.timeout(delay).cancel()
    env.run()
    assert env.now == 0.0
    assert env.stats()["events_processed"] == 0
    assert env.stats()["events_pending"] == 0


# --- wheel-specific: parity, overflow, rebase, pooling ----------------------

def _mixed_scenario(env, seed: int):
    """A scenario exercising ties, cancellations, urgent events and both
    near- and far-future delays."""
    rng = random.Random(seed)

    def worker(env, wrng):
        for _ in range(30):
            roll = wrng.random()
            if roll < 0.1:
                # far future: lands in the overflow heap on the wheel
                yield env.timeout(60.0 + wrng.random() * 200.0)
            elif roll < 0.2:
                # exact tie with other workers
                target = float(int(env.now) + 1)
                yield env.timeout(target - env.now)
            else:
                yield env.timeout(wrng.random() * 3.0)
            if wrng.random() < 0.15:
                env.timeout(wrng.random() * 50.0).cancel()

    for _ in range(40):
        env.process(worker(env, random.Random(rng.randrange(1 << 30))))


@pytest.mark.parametrize("seed", [0, 1, 2])
def test_wheel_pops_in_exact_legacy_heap_order(seed):
    traces = {}
    for cls in (Environment, LegacyHeapEnvironment):
        env = cls()
        trace = []
        env._pop_trace = trace
        _mixed_scenario(env, seed)
        env.run()
        traces[cls.__name__] = trace
    assert traces["Environment"] == traces["LegacyHeapEnvironment"]


def test_overflow_migration_and_cursor_rebase():
    env = Environment()
    log = []

    def proc(env):
        # far beyond the wheel horizon (1024 buckets x 0.05s = 51.2s)
        yield env.timeout(500.0)
        log.append(env.now)
        yield env.timeout(0.01)
        log.append(env.now)
        # an idle gap of several full wheel revolutions
        yield env.timeout(10_000.0)
        log.append(env.now)

    env.process(proc(env))
    env.run()
    assert log == [500.0, 500.01, 10_500.01]
    assert env.stats()["events_pending"] == 0


def test_timeout_pool_recycles_fire_and_forget_timeouts():
    env = Environment()

    def proc(env):
        for _ in range(500):
            yield env.timeout(0.5)

    env.process(proc(env))
    env.run()
    assert env.stats()["timeouts_recycled"] > 400


def test_pool_never_recycles_referenced_timeouts():
    env = Environment()
    keep = env.timeout(1, value="keep")
    for _ in range(10):
        env.timeout(2)
    env.run()
    # `keep` is still alive and must retain its identity/value
    assert keep.value == "keep"
    assert type(keep) is Timeout


def test_timeout_batch_matches_sequential_timeouts():
    a, b = Environment(), Environment()
    delays = [3.0, 1.0, 2.0, 1.0]
    for d in delays:
        a.timeout(d, value=d)
    b.timeout_batch(delays, value="v")
    ta, tb = [], []
    a._pop_trace, b._pop_trace = ta, tb
    a.run()
    b.run()
    assert ta == tb  # same (time, priority, eid) sequence


def test_timeout_batch_rejects_negative_delay():
    env = Environment()
    with pytest.raises(ValueError):
        env.timeout_batch([1.0, -0.5])


def test_schedule_arrivals_alignment_and_past_entries():
    env = Environment()
    plan = uniform_arrivals(["w0", "w1", "w2"], gap_s=2.0)
    arrivals = schedule_arrivals(env, plan)
    assert arrivals[0] is None  # t=0 entry is due now
    assert arrivals[1] is not None and arrivals[2] is not None
    env.run()
    assert env.now == 4.0


def test_legacy_env_timeout_batch_uses_heap():
    env = LegacyHeapEnvironment()
    env.timeout_batch([1.0, 2.0])
    env.run()
    assert env.now == 2.0
    assert env.stats()["events_processed"] == 2


def test_step_outside_run_matches_run_semantics():
    env = Environment()
    env.timeout(1)
    env.timeout(2)
    env.step()
    assert env.now == 1
    env.step()
    assert env.now == 2
    with pytest.raises(SimulationError):
        env.step()
