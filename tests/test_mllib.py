"""Tests for the ML client libraries (ONNX-like, TF-like, CuPy, OpenCV)."""

import numpy as np
import pytest

from repro.core import DgsfConfig
from repro.errors import SimulationError, ConfigurationError
from repro.mllib import (
    ModelSpec,
    OnnxInferenceSession,
    TfSession,
    CupyContext,
)
from repro.mllib.opencvlib import cv_upload, cv_resize, cv_filter, cv_download
from repro.simcuda.types import GB, MB
from repro.testing import make_world


SMALL_SPEC = ModelSpec(
    name="toy",
    weight_bytes=10 * MB,
    workspace_bytes=20 * MB,
    n_layers=4,
    load_descriptor_calls=12,
    infer_descriptor_calls=4,
    launches_per_batch=8,
    cudnn_ops_per_batch=4,
    cublas_ops_per_batch=2,
    batch_work_s=0.12,
    gpu_demand=0.8,
)


@pytest.fixture(scope="module")
def shared_world():
    return make_world(DgsfConfig(num_gpus=1))


@pytest.fixture
def session(shared_world):
    guest, server, rpc = shared_world.attach_guest(declared_bytes=4 * GB)
    yield shared_world, guest
    shared_world.detach_guest(guest, server, rpc)


def test_model_spec_validation():
    with pytest.raises(ConfigurationError):
        ModelSpec(
            name="bad", weight_bytes=0, workspace_bytes=0, n_layers=1,
            load_descriptor_calls=0, infer_descriptor_calls=0,
            launches_per_batch=0, cudnn_ops_per_batch=0,
            cublas_ops_per_batch=0, batch_work_s=0.0, gpu_demand=1.0,
        )
    with pytest.raises(ConfigurationError):
        ModelSpec(
            name="bad", weight_bytes=1, workspace_bytes=0, n_layers=1,
            load_descriptor_calls=0, infer_descriptor_calls=0,
            launches_per_batch=0, cudnn_ops_per_batch=0,
            cublas_ops_per_batch=0, batch_work_s=0.0, gpu_demand=1.5,
        )


def test_onnx_session_load_and_run(session):
    world, guest = session
    sess = OnnxInferenceSession(world.env, guest, SMALL_SPEC)
    world.drive(sess.load())
    t0 = world.env.now
    out = world.drive(sess.run(input_bytes=1 * MB))
    took = world.env.now - t0
    assert out is not None
    # the batch's GPU work dominates: ≈ batch_work_s plus small overheads
    assert SMALL_SPEC.batch_work_s <= took <= SMALL_SPEC.batch_work_s + 0.2
    world.drive(sess.close())


def test_onnx_run_before_load_rejected(session):
    world, guest = session
    sess = OnnxInferenceSession(world.env, guest, SMALL_SPEC)
    with pytest.raises(SimulationError):
        world.drive(sess.run(input_bytes=1024))


def test_onnx_close_frees_device_memory(shared_world):
    device = shared_world.gpu_server.devices[0]
    guest, server, rpc = shared_world.attach_guest(declared_bytes=4 * GB)
    base = device.mem_used
    sess = OnnxInferenceSession(shared_world.env, guest, SMALL_SPEC)
    shared_world.drive(sess.load())
    shared_world.drive(sess.run(input_bytes=1 * MB))
    assert device.mem_used > base
    shared_world.drive(sess.close())
    assert device.mem_used == base
    shared_world.detach_guest(guest, server, rpc)


def test_tf_arena_spike_and_trim(shared_world):
    """TF's allocator transiently holds the arena, then trims it."""
    device = shared_world.gpu_server.devices[0]
    guest, server, rpc = shared_world.attach_guest(declared_bytes=8 * GB)
    base = device.mem_used
    spec = SMALL_SPEC
    sess = TfSession(shared_world.env, guest, spec, arena_bytes=2 * GB)
    shared_world.drive(sess.load())
    peak = server.session.peak_bytes
    assert peak >= 2 * GB  # the transient spike
    steady = device.mem_used - base
    assert steady < 1 * GB  # trimmed back to the working set
    out = shared_world.drive(sess.run(input_bytes=1 * MB))
    assert out is not None
    shared_world.drive(sess.close())
    assert device.mem_used == base
    shared_world.detach_guest(guest, server, rpc)


def test_tf_spike_exceeding_declared_fails(shared_world):
    """Under-declaring GPU memory kills the TF workload at the arena grab —
    exactly why CovidCTNet must request a whole GPU (paper §VII)."""
    from repro.simcuda.errors import CudaError

    guest, server, rpc = shared_world.attach_guest(declared_bytes=1 * GB)
    sess = TfSession(shared_world.env, guest, SMALL_SPEC, arena_bytes=2 * GB)
    with pytest.raises(CudaError, match="cudaErrorMemoryAllocation"):
        shared_world.drive(sess.load())
    shared_world.detach_guest(guest, server, rpc)


def test_tf_is_chattier_than_onnx(shared_world):
    """TF's call stream must contain far more interceptable calls per op —
    the substrate of the paper's 96% vs 48% reduction numbers."""
    guest, server, rpc = shared_world.attach_guest(declared_bytes=4 * GB)
    onnx = OnnxInferenceSession(shared_world.env, guest, SMALL_SPEC)
    shared_world.drive(onnx.load())
    before = guest.calls_intercepted
    shared_world.drive(onnx.run(input_bytes=1 * MB))
    onnx_calls = guest.calls_intercepted - before
    shared_world.drive(onnx.close())
    shared_world.detach_guest(guest, server, rpc)

    guest, server, rpc = shared_world.attach_guest(declared_bytes=4 * GB)
    tf = TfSession(shared_world.env, guest, SMALL_SPEC, arena_bytes=100 * MB)
    shared_world.drive(tf.load())
    before = guest.calls_intercepted
    shared_world.drive(tf.run(input_bytes=1 * MB))
    tf_calls = guest.calls_intercepted - before
    shared_world.drive(tf.close())
    shared_world.detach_guest(guest, server, rpc)

    assert tf_calls > onnx_calls


def test_cupy_array_roundtrip(session):
    world, guest = session
    cp = CupyContext(world.env, guest)
    host = np.arange(64, dtype=np.float32)
    arr = world.drive(cp.array(host))
    back = world.drive(cp.asnumpy(arr))
    assert np.array_equal(back[: host.nbytes].view(np.float32), host)
    world.drive(cp.free(arr))


def test_cupy_axpy_computes(session):
    world, guest = session
    cp = CupyContext(world.env, guest)
    x = world.drive(cp.array(np.ones(16, dtype=np.float32)))
    y = world.drive(cp.array(np.full(16, 2.0, dtype=np.float32)))
    world.drive(cp.axpy(3.0, x, y))
    back = world.drive(cp.asnumpy(y))
    assert np.allclose(back[:64].view(np.float32), 5.0)
    world.drive(cp.free_all())


def test_cupy_double_free_rejected(session):
    world, guest = session
    cp = CupyContext(world.env, guest)
    arr = world.drive(cp.empty((4, 4)))
    world.drive(cp.free(arr))
    with pytest.raises(SimulationError):
        world.drive(cp.free(arr))


def test_opencv_pipeline(session):
    world, guest = session
    frame = np.random.default_rng(0).integers(
        0, 255, size=(64, 64, 3), dtype=np.uint8
    )
    mat = world.drive(cv_upload(guest, frame))
    assert mat.height == 64 and mat.channels == 3
    resized = world.drive(cv_resize(guest, mat, 32, 32))
    assert resized.nbytes == 32 * 32 * 3
    world.drive(cv_filter(guest, resized))
    data = world.drive(cv_download(guest, resized))
    assert len(data) == 32 * 32 * 3
    world.drive(guest.cudaFree(mat.ptr))
    world.drive(guest.cudaFree(resized.ptr))
