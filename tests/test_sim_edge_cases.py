"""Edge cases across the sim kernel, resources, and network layers."""

import pytest

from repro.errors import SimulationError
from repro.sim import Environment, AllOf, AnyOf
from repro.sim.core import Event
from repro.simnet import Network, NetworkProfile, RpcClient, RpcServer


def test_environment_stats_counters():
    env = Environment()

    def proc(env):
        for _ in range(3):
            yield env.timeout(1)

    env.process(proc(env))
    env.run()
    stats = env.stats()
    assert stats["now"] == 3
    assert stats["events_processed"] >= 4  # init + 3 timeouts
    assert stats["processes_created"] == 1
    assert stats["events_pending"] == 0


def test_condition_fails_when_member_fails():
    env = Environment()
    good = env.timeout(1, value="ok")
    bad = env.event()

    def failer(env):
        yield env.timeout(0.5)
        bad.fail(RuntimeError("member failed"))

    def waiter(env):
        try:
            yield env.all_of([good, bad])
        except RuntimeError as exc:
            return str(exc)

    env.process(failer(env))
    w = env.process(waiter(env))
    env.run()
    assert w.value == "member failed"


def test_condition_rejects_cross_environment_events():
    env1, env2 = Environment(), Environment()
    with pytest.raises(SimulationError):
        AllOf(env1, [env1.timeout(1), env2.timeout(1)])


def test_anyof_with_already_processed_event():
    env = Environment()

    def proc(env):
        early = env.timeout(1, value="early")
        yield env.timeout(2)
        result = yield env.any_of([early, env.timeout(100)])
        return list(result.values())

    p = env.process(proc(env))
    env.run(until=p)
    assert p.value == ["early"]


def test_event_trigger_copies_outcome():
    env = Environment()
    src = env.event()
    dst = env.event()
    src.succeed("payload")

    def proc(env):
        yield src
        dst.trigger(src)
        value = yield dst
        return value

    p = env.process(proc(env))
    env.run(until=p)
    assert p.value == "payload"


def test_run_until_already_failed_event():
    env = Environment()
    ev = env.event()
    ev.fail(ValueError("pre-failed"))
    ev.defuse()
    env.run()  # drain
    with pytest.raises(ValueError, match="pre-failed"):
        env.run(until=ev)


def test_nested_process_failure_propagates_to_parent():
    env = Environment()

    def child(env):
        yield env.timeout(1)
        raise KeyError("inner")

    def parent(env):
        try:
            yield env.process(child(env))
        except KeyError:
            return "handled"

    p = env.process(parent(env))
    env.run(until=p)
    assert p.value == "handled"


# --- network edges -------------------------------------------------------------------

def test_rpc_oneway_handler_error_is_swallowed():
    """A failing one-way call must not kill the server loop."""
    env = Environment()
    net = Network(env)
    conn = net.connect(net.add_host("a"), net.add_host("b"))

    def handler(req):
        if False:
            yield
        if req.method == "bad":
            raise RuntimeError("boom")
        return "fine"

    client = RpcClient(conn.a)
    server = RpcServer(conn.b, handler)
    server.start()

    def caller(env):
        client.call_oneway("bad")
        result = yield from client.call("good")
        return result

    p = env.process(caller(env))
    env.run(until=p)
    assert p.value == "fine"
    assert server.requests_handled == 2


def test_zero_byte_send_costs_only_header_and_latency():
    env = Environment()
    net = Network(env, default_profile=NetworkProfile(latency_s=0.01))
    conn = net.connect(net.add_host("a"), net.add_host("b"))
    got = []

    def receiver(env):
        yield conn.b.recv()
        got.append(env.now)

    conn.a.send(None)
    env.process(receiver(env))
    env.run()
    assert got[0] == pytest.approx(0.01, abs=0.001)


def test_many_interleaved_connections_are_independent():
    env = Environment()
    net = Network(env)
    a, b = net.add_host("a"), net.add_host("b")
    conns = [net.connect(a, b) for _ in range(4)]
    results = []

    def echo(conn, tag):
        msg = yield conn.b.recv()
        conn.b.send(f"{msg}-{tag}")

    def ask(conn, tag):
        conn.a.send(tag)
        reply = yield conn.a.recv()
        results.append(reply)

    for i, conn in enumerate(conns):
        env.process(echo(conn, i))
        env.process(ask(conn, f"m{i}"))
    env.run()
    assert sorted(results) == [f"m{i}-{i}" for i in range(4)]


def test_nic_accounting_counts_bytes():
    env = Environment()
    net = Network(env)
    a, b = net.add_host("a"), net.add_host("b")
    conn = net.connect(a, b)
    conn.a.send("x", extra_bytes=1000)
    assert a.nic.bytes_sent >= 1000
    assert conn.a.messages_sent == 1
    assert conn.a.bytes_out >= 1000
