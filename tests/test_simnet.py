"""Unit tests for the network model (NIC, hosts, connections, RPC)."""

import numpy as np
import pytest

from repro.errors import ConfigurationError
from repro.sim import Environment
from repro.simnet import (
    NIC,
    LinkFaultInjector,
    Network,
    NetworkProfile,
    RpcClient,
    RpcServer,
    RpcError,
    RpcTimeout,
    payload_size,
    MESSAGE_HEADER_BYTES,
)


# --- serialization -----------------------------------------------------------

def test_payload_size_scalars_and_strings():
    assert payload_size(None) == 1
    assert payload_size(7) == 8
    assert payload_size(3.14) == 8
    assert payload_size("abcd") == 8 + 4


def test_payload_size_arrays_and_containers():
    arr = np.zeros(100, dtype=np.float64)
    assert payload_size(arr) == 8 + 800
    assert payload_size([1, 2, 3]) == 8 + 24
    assert payload_size({"k": 1}) == 8 + (8 + 1) + 8


def test_payload_size_nested():
    inner = [np.zeros(10, dtype=np.uint8)]
    assert payload_size(inner) == 8 + (8 + 10)


# --- NIC ---------------------------------------------------------------------

def test_nic_serialization_is_fifo():
    env = Environment()
    nic = NIC(env, bandwidth_bps=8e6)  # 1 MB/s
    d1 = nic.transmit(1_000_000)  # 1 s on the wire
    d2 = nic.transmit(1_000_000)  # queued behind the first
    assert d1 == pytest.approx(1.0)
    assert d2 == pytest.approx(2.0)


def test_nic_idles_between_sends():
    env = Environment()
    nic = NIC(env, bandwidth_bps=8e6)
    nic.transmit(1_000_000)
    env._now = 5.0  # simulate idle time passing
    assert nic.transmit(1_000_000) == pytest.approx(1.0)


def test_nic_rejects_bad_args():
    env = Environment()
    with pytest.raises(ValueError):
        NIC(env, bandwidth_bps=0)
    nic = NIC(env, bandwidth_bps=1e9)
    with pytest.raises(ValueError):
        nic.transmit(-1)


# --- network / connection ----------------------------------------------------

def make_pair(latency=1e-3, bandwidth=10e9):
    env = Environment()
    net = Network(env, default_profile=NetworkProfile(latency_s=latency))
    a = net.add_host("fn", bandwidth_bps=bandwidth)
    b = net.add_host("gpu", bandwidth_bps=bandwidth)
    conn = net.connect(a, b)
    return env, conn


def test_message_delivery_includes_latency():
    env, conn = make_pair(latency=0.5)
    got = []

    def receiver(env):
        msg = yield conn.b.recv()
        got.append((msg, env.now))

    def sender(env):
        conn.a.send("hello")
        yield env.timeout(0)

    env.process(receiver(env))
    env.process(sender(env))
    env.run()
    assert got[0][0] == "hello"
    assert got[0][1] >= 0.5


def test_large_transfer_is_bandwidth_bound():
    env, conn = make_pair(latency=0.0, bandwidth=8e9)  # 1 GB/s
    got = []

    def receiver(env):
        yield conn.b.recv()
        got.append(env.now)

    def sender(env):
        conn.a.send("blob", extra_bytes=1_000_000_000)
        yield env.timeout(0)

    env.process(receiver(env))
    env.process(sender(env))
    env.run()
    assert got[0] == pytest.approx(1.0, rel=1e-3)


def test_per_direction_fifo_order():
    env, conn = make_pair()
    got = []

    def receiver(env):
        for _ in range(3):
            msg = yield conn.b.recv()
            got.append(msg)

    def sender(env):
        for i in range(3):
            conn.a.send(i)
        yield env.timeout(0)

    env.process(receiver(env))
    env.process(sender(env))
    env.run()
    assert got == [0, 1, 2]


def test_bidirectional_traffic():
    env, conn = make_pair()
    log = []

    def side_a(env):
        conn.a.send("ping")
        msg = yield conn.a.recv()
        log.append(msg)

    def side_b(env):
        msg = yield conn.b.recv()
        conn.b.send(msg + "-pong")

    env.process(side_a(env))
    env.process(side_b(env))
    env.run()
    assert log == ["ping-pong"]


def test_duplicate_host_rejected():
    env = Environment()
    net = Network(env)
    net.add_host("x")
    with pytest.raises(ConfigurationError):
        net.add_host("x")


def test_directional_profile_override():
    env = Environment()
    net = Network(env)
    net.add_host("a")
    net.add_host("b")
    slow = NetworkProfile(latency_s=1.0)
    net.set_profile("a", "b", slow)
    conn = net.connect("a", "b")
    times = {}

    def fwd(env):
        conn.a.send("x")
        yield env.timeout(0)

    def recv_b(env):
        yield conn.b.recv()
        times["fwd"] = env.now
        conn.b.send("y")

    def recv_a(env):
        yield conn.a.recv()
        times["rev"] = env.now

    env.process(fwd(env))
    env.process(recv_b(env))
    env.process(recv_a(env))
    env.run()
    assert times["fwd"] >= 1.0
    # reverse direction uses the default (fast) profile
    assert times["rev"] - times["fwd"] < 0.1


def test_bandwidth_derating_slows_transfers():
    env = Environment()
    net = Network(env, default_profile=NetworkProfile(latency_s=0.0, bandwidth_factor=0.5))
    a = net.add_host("a", bandwidth_bps=8e9)
    b = net.add_host("b", bandwidth_bps=8e9)
    conn = net.connect(a, b)
    got = []

    def receiver(env):
        yield conn.b.recv()
        got.append(env.now)

    conn.a.send("blob", extra_bytes=1_000_000_000)
    env.process(receiver(env))
    env.run()
    # 1 GB at an effective 0.5 GB/s → ~2 s
    assert got[0] == pytest.approx(2.0, rel=1e-2)


def test_jitter_requires_rng_and_is_reproducible():
    profile = NetworkProfile(latency_s=0.001, jitter_stddev=0.01)
    assert profile.sample_latency(None) == 0.001
    rng1 = np.random.default_rng(1)
    rng2 = np.random.default_rng(1)
    assert profile.sample_latency(rng1) == profile.sample_latency(rng2)
    assert profile.sample_latency(rng1) >= 0.001


# --- RPC ---------------------------------------------------------------------

def make_rpc(handler, latency=1e-4):
    env, conn = make_pair(latency=latency)
    client = RpcClient(conn.a)
    server = RpcServer(conn.b, handler)
    server.start()
    return env, client, server


def test_rpc_roundtrip():
    def handler(req):
        yield req.msg_id and iter(())  # no-op placeholder
        return ("echo", req.method, req.args)
        yield  # pragma: no cover

    def handler_gen(req):
        if False:
            yield
        return ("echo", req.method, req.args)

    env, client, server = make_rpc(handler_gen)

    def caller(env):
        result = yield from client.call("cudaMalloc", 1024)
        return result

    p = env.process(caller(env))
    env.run(until=p)
    assert p.value == ("echo", "cudaMalloc", (1024,))
    assert server.requests_handled == 1


def test_rpc_handler_consumes_sim_time():
    def handler(req):
        yield req_env.timeout(2.0)
        return "slow-done"

    env, client, server = make_rpc(handler)
    req_env = env

    def caller(env):
        result = yield from client.call("work")
        return (result, env.now)

    p = env.process(caller(env))
    env.run(until=p)
    assert p.value[0] == "slow-done"
    assert p.value[1] >= 2.0


def test_rpc_remote_error_propagates():
    def handler(req):
        if False:
            yield
        raise ValueError("device out of memory")

    env, client, _ = make_rpc(handler)

    def caller(env):
        try:
            yield from client.call("cudaMalloc", 1 << 60)
        except RpcError as exc:
            return str(exc)

    p = env.process(caller(env))
    env.run(until=p)
    assert "device out of memory" in p.value


def test_rpc_oneway_does_not_wait():
    handled = []

    def handler(req):
        if False:
            yield
        handled.append(req.method)
        return None

    env, client, _ = make_rpc(handler)

    def caller(env):
        client.call_oneway("enqueue", 1)
        done_at = env.now  # returns immediately
        yield env.timeout(1.0)
        return done_at

    p = env.process(caller(env))
    env.run()
    assert p.value == 0.0
    assert handled == ["enqueue"]


def test_rpc_batch_amortizes_messages():
    def handler(req):
        if False:
            yield
        return req.method

    env, client, server = make_rpc(handler)

    def caller(env):
        results = yield from client.call_batch(
            [("a", (), 0), ("b", (), 0), ("c", (), 0)]
        )
        return results

    p = env.process(caller(env))
    env.run(until=p)
    assert p.value == ["a", "b", "c"]
    assert client.calls_sent == 3
    assert client.messages_sent == 1


def test_rpc_empty_batch_is_noop():
    def handler(req):
        if False:
            yield
        return None

    env, client, _ = make_rpc(handler)

    def caller(env):
        result = yield from client.call_batch([])
        return result

    p = env.process(caller(env))
    env.run(until=p)
    assert p.value == []


def test_rpc_concurrent_calls_match_replies():
    def handler(req):
        # Reverse completion order: first request takes longer.
        yield henv.timeout(1.0 if req.method == "slow" else 0.0)
        return req.method.upper()

    env, client, _ = make_rpc(handler)
    henv = env
    results = {}

    def caller(env, method):
        value = yield from client.call(method)
        results[method] = (value, env.now)

    env.process(caller(env, "slow"))
    env.process(caller(env, "fast"))
    env.run()
    assert results["slow"][0] == "SLOW"
    assert results["fast"][0] == "FAST"


def test_rpc_reply_bulk_bytes_charged_on_success_and_error():
    """Regression: the error path must charge ``reply_extra_bytes`` on the
    wire exactly like the success path — an error reply to a 1 GB D2H copy
    used to travel for free."""

    def handler(req):
        if False:
            yield
        if req.method == "boom":
            raise ValueError("injected")
        return "ok"

    for method in ("fine", "boom"):
        env, conn = make_pair(latency=1e-4)
        client = RpcClient(conn.a)
        server = RpcServer(conn.b, handler)
        server.start()

        def caller(env):
            try:
                yield from client.call(method, reply_extra_bytes=1_000_000_000)
            except RpcError:
                pass

        p = env.process(caller(env))
        env.run(until=p)
        assert conn.b.bytes_out >= 1_000_000_000, method


def test_rpc_timeout_raises_then_late_reply_stays_deliverable():
    def handler(req):
        yield henv.timeout(3.0)
        return req.method.upper()

    env, client, server = make_rpc(handler)
    henv = env

    def caller(env):
        with pytest.raises(RpcTimeout):
            yield from client.call("first", timeout_s=1.0)
        t_timeout = env.now
        # the abandoned receive was withdrawn; a fresh call still matches
        # its own reply even with the stale msg-1 reply in the inbox
        result = yield from client.call("retry")
        return (t_timeout, result, env.now)

    p = env.process(caller(env))
    env.run(until=p)
    t_timeout, result, t_done = p.value
    assert t_timeout == pytest.approx(1.0, abs=1e-2)
    assert result == "RETRY"
    assert t_done >= 4.0  # retry waited behind the first in-flight handler


def test_rpc_killed_server_goes_silent():
    """kill() mid-handler models a crash: no reply, not even an error."""

    def handler(req):
        yield henv.timeout(1.0)
        return "never"

    env, client, server = make_rpc(handler)
    henv = env

    def killer(env):
        yield env.timeout(0.5)
        server.kill()

    def caller(env):
        with pytest.raises(RpcTimeout):
            yield from client.call("work", timeout_s=2.0)
        return env.now

    env.process(killer(env))
    p = env.process(caller(env))
    env.run(until=p)
    assert p.value == pytest.approx(2.0, abs=1e-2)
    assert server.endpoint.messages_sent == 0


# --- link fault injection ----------------------------------------------------

def test_fault_injector_validation():
    with pytest.raises(ConfigurationError):
        LinkFaultInjector(None, drop_prob=1.5)
    with pytest.raises(ConfigurationError):
        LinkFaultInjector(None, delay_spike_s=-1.0)
    with pytest.raises(ConfigurationError):
        LinkFaultInjector(None, partitions=[(2.0, 1.0)])
    with pytest.raises(ConfigurationError):
        LinkFaultInjector(None, drop_prob=0.5)  # probabilistic ⇒ RNG required


def test_dropped_message_charges_wire_but_never_arrives():
    env, conn = make_pair(latency=1e-3)
    conn.faults = LinkFaultInjector(np.random.default_rng(0), drop_prob=1.0)
    got = []

    def receiver(env):
        msg = yield conn.b.recv()
        got.append(msg)

    env.process(receiver(env))
    conn.a.send("doomed", extra_bytes=1000)
    env.run(until=2.0)
    assert got == []
    assert conn.faults.messages_dropped == 1
    assert conn.a.bytes_out > 1000  # wire time/bytes still charged


def test_partition_window_drops_then_heals():
    env, conn = make_pair(latency=1e-3)
    conn.faults = LinkFaultInjector(None, partitions=[(1.0, 2.0)])
    got = []

    def receiver(env):
        while True:
            msg = yield conn.b.recv()
            got.append(msg)

    def sender(env):
        yield env.timeout(1.5)
        conn.a.send("lost")  # inside the window
        yield env.timeout(1.0)
        conn.a.send("healed")  # after it

    env.process(receiver(env))
    env.process(sender(env))
    env.run(until=4.0)
    assert got == ["healed"]
    assert conn.faults.messages_dropped == 1


def test_delay_spike_slows_delivery():
    env, conn = make_pair(latency=1e-3)
    conn.faults = LinkFaultInjector(
        np.random.default_rng(0), delay_spike_prob=1.0, delay_spike_s=0.5
    )
    got = []

    def receiver(env):
        yield conn.b.recv()
        got.append(env.now)

    env.process(receiver(env))
    conn.a.send("slow")
    env.run(until=2.0)
    assert got and got[0] >= 0.5
    assert conn.faults.delay_spikes == 1


def test_rpc_server_stop():
    def handler(req):
        if False:
            yield
        return None

    env, client, server = make_rpc(handler)

    def caller(env):
        yield from client.call("x")
        server.stop()
        client.call_oneway("y")  # will be ignored after stop drains
        yield env.timeout(1.0)

    p = env.process(caller(env))
    env.run()
    # One handled before stop; the oneway after stop is at most one more.
    assert server.requests_handled <= 2
