"""Tests for VA-preserving live migration (paper §V-D)."""

import numpy as np
import pytest

from repro.core import DgsfConfig
from repro.core.migration import migrate_api_server
from repro.errors import SimulationError
from repro.simcuda.types import GB, MB
from repro.testing import make_world


@pytest.fixture
def world():
    return make_world(DgsfConfig(num_gpus=2))


def migrate(world, server, target):
    proc = world.env.process(migrate_api_server(server, target))
    return world.env.run(until=proc)


def test_migration_preserves_virtual_addresses_and_data(world):
    guest, server, rpc = world.attach_guest(declared_bytes=1 * GB)
    data = np.arange(1024, dtype=np.uint8)
    ptr = world.drive(guest.cudaMalloc(1 * MB))
    world.drive(guest.memcpyH2D(ptr, 1 * MB, payload=data))
    snapshot_before = server.context.address_space.snapshot()

    record = migrate(world, server, target=1)

    assert server.current_device_id == 1
    assert record.moved_bytes == 1 * MB
    # the address map is byte-identical in the destination context
    assert server.context.address_space.snapshot() == snapshot_before
    # and the *same pointer* still reads the same data, now from GPU 1
    back = world.drive(guest.memcpyD2H(ptr, 1024))
    assert np.array_equal(back[:1024], data)
    world.detach_guest(guest, server, rpc)


def test_migration_moves_physical_memory_between_gpus(world):
    guest, server, rpc = world.attach_guest(declared_bytes=2 * GB)
    g0, g1 = world.gpu_server.devices
    used0_before = g0.mem_used
    used1_before = g1.mem_used
    world.drive(guest.cudaMalloc(512 * MB))
    assert g0.mem_used == used0_before + 512 * MB
    migrate(world, server, target=1)
    assert g0.mem_used == used0_before
    assert g1.mem_used == used1_before + 512 * MB
    world.detach_guest(guest, server, rpc)


def test_kernels_resolve_in_new_context_after_migration(world):
    """Function pointers are per-context; launches after migration must
    use the destination context's pointers (§V-B)."""
    guest, server, rpc = world.attach_guest(declared_bytes=1 * GB)
    ptr = world.drive(guest.cudaMalloc(16))
    inc = world.drive(guest.cudaGetFunction("increment"))

    def launch_and_sync(env):
        yield from guest.cudaLaunchKernel(inc, args=(0.001, ptr, 16))
        yield from guest.cudaDeviceSynchronize()

    world.drive(launch_and_sync(world.env))
    migrate(world, server, target=1)
    world.drive(launch_and_sync(world.env))  # must not raise
    back = world.drive(guest.memcpyD2H(ptr, 16))
    assert np.all(back[:16] == 2)
    world.detach_guest(guest, server, rpc)


def test_streams_translated_after_migration(world):
    guest, server, rpc = world.attach_guest(declared_bytes=1 * GB)
    stream = world.drive(guest.cudaStreamCreate())
    fptr = world.drive(guest.cudaGetFunction("timed"))
    migrate(world, server, target=1)

    def run(env):
        yield from guest.cudaLaunchKernel(fptr, args=(0.2,), stream=stream)
        t0 = env.now
        yield from guest.cudaStreamSynchronize(stream)
        return env.now - t0

    waited = world.drive(run(world.env))
    assert waited == pytest.approx(0.2, abs=0.05)
    world.detach_guest(guest, server, rpc)


def test_cudnn_handle_twin_installed_on_migration(world):
    guest, server, rpc = world.attach_guest(declared_bytes=2 * GB)
    handle = world.drive(guest.cudnnCreate())
    migrate(world, server, target=1)
    # the op must find a twin handle on GPU 1 via the translation map
    world.drive(guest.cudnnOp(handle, "conv_fwd", 0.05, sync=True))
    world.detach_guest(guest, server, rpc)


def test_migration_waits_for_pending_kernels(world):
    guest, server, rpc = world.attach_guest(declared_bytes=1 * GB)
    fptr = world.drive(guest.cudaGetFunction("timed"))

    def launch(env):
        yield from guest.cudaLaunchKernel(fptr, args=(2.0,))
        # a cheap sync call flushes the batch so the launch reaches the
        # server, but returns while the kernel is still running
        yield from guest.cudaGetDeviceCount()

    world.drive(launch(world.env))
    t0 = world.env.now
    migrate(world, server, target=1)
    # migration had to wait for the 2 s kernel to drain
    assert world.env.now - t0 >= 2.0
    world.detach_guest(guest, server, rpc)


def test_migration_cost_scales_with_moved_bytes(world):
    durations = {}
    for size_mb in (323, 3514):
        guest, server, rpc = world.attach_guest(declared_bytes=14 * GB)
        world.drive(guest.cudaMalloc(size_mb * MB))
        record = migrate(world, server, target=1)
        durations[size_mb] = record.duration_s
        world.detach_guest(guest, server, rpc)
    assert durations[3514] > durations[323]
    # Table V scale: 323 MB ≈ 0.4–0.6 s, 3514 MB under ~1.2 s
    assert 0.3 <= durations[323] <= 0.7
    assert durations[3514] <= 1.3


def test_migrating_idle_server_rejected(world):
    server = world.gpu_server.api_servers[0]
    with pytest.raises(SimulationError):
        migrate(world, server, target=1)


def test_migrating_to_same_gpu_rejected(world):
    guest, server, rpc = world.attach_guest()
    with pytest.raises(SimulationError):
        migrate(world, server, target=server.current_device_id)
    world.detach_guest(guest, server, rpc)


def test_server_returns_home_after_function_ends(world):
    guest, server, rpc = world.attach_guest(declared_bytes=1 * GB)
    world.drive(guest.cudaMalloc(1 * MB))
    migrate(world, server, target=1)
    assert server.migrated
    world.detach_guest(guest, server, rpc)
    assert server.current_device_id == server.home_device_id
    # the migration slot on GPU 1 is free again
    assert world.gpu_server.migration_slot_available(1)


def test_migration_blocks_api_calls_until_done(world):
    """API calls issued during a migration wait at the exec lock."""
    guest, server, rpc = world.attach_guest(declared_bytes=14 * GB)
    world.drive(guest.cudaMalloc(3 * GB))
    t0 = world.env.now

    mig_proc = world.env.process(migrate_api_server(server, 1))
    # while migrating, issue a malloc from the guest
    call_proc = world.env.process(guest.cudaMalloc(1 * MB))
    world.env.run(until=world.env.all_of([mig_proc, call_proc]))
    record = mig_proc.value
    # the call could not complete before the migration finished
    assert record.duration_s > 0.3
    world.detach_guest(guest, server, rpc)


def test_second_migration_releases_previous_slot():
    world = make_world(DgsfConfig(num_gpus=3))
    guest, server, rpc = world.attach_guest(declared_bytes=1 * GB)
    world.drive(guest.cudaMalloc(1 * MB))
    migrate(world, server, target=1)
    assert not world.gpu_server.migration_slot_available(1)
    migrate(world, server, target=2)
    assert world.gpu_server.migration_slot_available(1)
    assert not world.gpu_server.migration_slot_available(2)
    world.detach_guest(guest, server, rpc)
