"""Unit tests for the serverless substrate (storage, containers, platform)."""

import numpy as np
import pytest

from repro.errors import ConfigurationError
from repro.sim import Environment
from repro.simnet import Network
from repro.faas import (
    ObjectStore,
    StorageProfile,
    S3_LAMBDA,
    ContainerPool,
    ServerlessPlatform,
    FunctionSpec,
    exponential_gap_arrivals,
    burst_arrivals,
    uniform_arrivals,
    interleave_workloads,
)


@pytest.fixture
def world():
    env = Environment()
    net = Network(env)
    host = net.add_host("fn-server")
    return env, net, host


def drive(env, gen):
    p = env.process(gen)
    return env.run(until=p)


# --- storage --------------------------------------------------------------------

def test_download_time_per_stream_capped(world):
    env, net, host = world
    store = ObjectStore(env, StorageProfile(per_stream_Bps=100e6, get_latency_s=0.0))
    store.put_object("model", 100_000_000)  # 100 MB at 100 MB/s → 1 s
    size = drive(env, store.download(host, "model"))
    assert size == 100_000_000
    assert env.now == pytest.approx(1.0, rel=0.01)


def test_download_includes_get_latency(world):
    env, net, host = world
    store = ObjectStore(env, StorageProfile(per_stream_Bps=1e9, get_latency_s=0.5))
    store.put_object("tiny", 1)
    drive(env, store.download(host, "tiny"))
    assert env.now >= 0.5


def test_concurrent_downloads_share_host_ingress(world):
    env, net, host = world
    # Per-stream cap = host ingress → two streams halve each other.
    store = ObjectStore(env, StorageProfile(per_stream_Bps=1.25e9, get_latency_s=0.0))
    store.put_object("a", 1_250_000_000)
    store.put_object("b", 1_250_000_000)
    total = drive(env, store.download_many(host, ["a", "b"]))
    assert total == 2_500_000_000
    assert env.now == pytest.approx(2.0, rel=0.02)


def test_missing_object_raises(world):
    env, net, host = world
    store = ObjectStore(env)
    with pytest.raises(ConfigurationError):
        store.object_size("ghost")


def test_invalid_object_size_rejected(world):
    env, net, host = world
    store = ObjectStore(env)
    with pytest.raises(ConfigurationError):
        store.put_object("zero", 0)


def test_lambda_profile_is_slower_and_variable(world):
    env, net, host = world
    rng = np.random.default_rng(0)
    lo, hi = S3_LAMBDA.per_stream_range
    sampled = S3_LAMBDA.sample_stream_Bps(rng)
    assert lo <= sampled <= hi
    # Without an rng the nominal value is used.
    assert S3_LAMBDA.sample_stream_Bps(None) == S3_LAMBDA.per_stream_Bps
    # Lambda's nominal throughput is well below the default profile's.
    from repro.faas import S3_DEFAULT
    assert S3_LAMBDA.per_stream_Bps < S3_DEFAULT.per_stream_Bps / 2


# --- containers ---------------------------------------------------------------------

def test_container_pool_limits_concurrency(world):
    env, net, host = world
    pool = ContainerPool(env, host, "fn", replicas=2)
    active = []
    peak = []

    def user(env):
        container, token = yield from pool.acquire()
        active.append(container)
        peak.append(len(active))
        yield env.timeout(1.0)
        active.remove(container)
        pool.release(container, token)

    for _ in range(5):
        env.process(user(env))
    env.run()
    assert max(peak) == 2
    assert pool.available == 2


def test_container_pool_validation(world):
    env, net, host = world
    with pytest.raises(ConfigurationError):
        ContainerPool(env, host, "fn", replicas=0)


def test_container_counts_invocations(world):
    env, net, host = world
    pool = ContainerPool(env, host, "fn", replicas=1)

    def user(env):
        c, token = yield from pool.acquire()
        yield env.timeout(0.1)
        pool.release(c, token)

    for _ in range(3):
        env.process(user(env))
    env.run()
    assert sum(c.invocations_served for c in pool._containers) == 3


# --- platform -----------------------------------------------------------------------

def make_platform(env, host, storage=None):
    return ServerlessPlatform(env, host, storage=storage)


def test_invoke_runs_handler_and_records_times(world):
    env, net, host = world
    platform = make_platform(env, host)

    def handler(fc):
        yield fc.env.timeout(2.0)
        return "ok"

    platform.register(FunctionSpec(name="f", handler=handler))
    inv, proc = platform.invoke("f")
    env.run(until=proc)
    assert inv.status == "completed"
    assert inv.result == "ok"
    assert inv.e2e_s == pytest.approx(2.0)
    assert inv.queue_s == pytest.approx(0.0)


def test_invocations_queue_when_replicas_busy(world):
    env, net, host = world
    platform = make_platform(env, host)

    def handler(fc):
        yield fc.env.timeout(1.0)

    platform.register(FunctionSpec(name="f", handler=handler, min_replicas=1))
    inv1, p1 = platform.invoke("f")
    inv2, p2 = platform.invoke("f")
    env.run()
    assert inv1.queue_s == pytest.approx(0.0)
    assert inv2.queue_s == pytest.approx(1.0)
    assert inv2.e2e_s == pytest.approx(2.0)


def test_handler_failure_marks_invocation(world):
    env, net, host = world
    platform = make_platform(env, host)

    def handler(fc):
        yield fc.env.timeout(0.1)
        raise RuntimeError("boom")

    platform.register(FunctionSpec(name="f", handler=handler))
    inv, proc = platform.invoke("f")
    with pytest.raises(RuntimeError):
        env.run(until=proc)
    assert inv.status == "failed"


def test_duplicate_function_rejected(world):
    env, net, host = world
    platform = make_platform(env, host)
    spec = FunctionSpec(name="f", handler=lambda fc: iter(()))
    platform.register(spec)
    with pytest.raises(ConfigurationError):
        platform.register(spec)


def test_unknown_function_rejected(world):
    env, net, host = world
    platform = make_platform(env, host)
    with pytest.raises(ConfigurationError):
        platform.invoke("ghost")


def test_phase_accounting_via_context(world):
    env, net, host = world
    store = ObjectStore(env, StorageProfile(per_stream_Bps=100e6, get_latency_s=0.0))
    store.put_object("model", 50_000_000)
    platform = make_platform(env, host, storage=store)

    def handler(fc):
        yield from fc.download(["model"])
        yield from fc.timed_phase("processing", fc.env.timeout(1.5))
        return None

    platform.register(FunctionSpec(name="f", handler=handler))
    inv, proc = platform.invoke("f")
    env.run(until=proc)
    assert inv.phases["download"] == pytest.approx(0.5, rel=0.02)
    assert inv.phases["processing"] == pytest.approx(1.5)


def test_run_plan_launches_at_scheduled_times(world):
    env, net, host = world
    platform = make_platform(env, host)
    started = []

    def handler(fc):
        started.append(fc.env.now)
        yield fc.env.timeout(0.1)

    platform.register(FunctionSpec(name="f", handler=handler))
    plan = uniform_arrivals(["f", "f", "f"], gap_s=2.0)
    records = drive(env, platform.run_plan(plan))
    assert started == [0.0, 2.0, 4.0]
    assert len(records) == 3
    assert all(r.status == "completed" for r in records)


def test_invocation_accessors_before_completion(world):
    env, net, host = world
    platform = make_platform(env, host)

    def handler(fc):
        yield fc.env.timeout(5.0)

    platform.register(FunctionSpec(name="f", handler=handler))
    inv, proc = platform.invoke("f")
    env.run(until=1.0)
    with pytest.raises(ValueError):
        _ = inv.e2e_s


# --- arrival generators ------------------------------------------------------------------

def test_interleave_is_reproducible():
    rng1 = np.random.default_rng(9)
    rng2 = np.random.default_rng(9)
    s1 = interleave_workloads(["a", "b", "c"], 10, rng1)
    s2 = interleave_workloads(["a", "b", "c"], 10, rng2)
    assert s1 == s2
    assert sorted(s1) == sorted(["a"] * 10 + ["b"] * 10 + ["c"] * 10)


def test_exponential_gap_mean_is_respected():
    rng = np.random.default_rng(3)
    names = ["w"] * 5000
    plan = exponential_gap_arrivals(names, mean_gap_s=2.0, rng=rng)
    gaps = np.diff(plan.times)
    assert abs(gaps.mean() - 2.0) < 0.1
    assert plan.times[0] == 0.0


def test_burst_arrivals_structure():
    plan = burst_arrivals(["a", "b"], bursts=3, burst_gap_s=2.0)
    assert len(plan) == 6
    times = plan.times
    assert list(times) == [0.0, 0.0, 2.0, 2.0, 4.0, 4.0]


def test_arrival_validation():
    rng = np.random.default_rng(0)
    with pytest.raises(ConfigurationError):
        exponential_gap_arrivals(["a"], mean_gap_s=0, rng=rng)
    with pytest.raises(ConfigurationError):
        burst_arrivals(["a"], bursts=0, burst_gap_s=1)
    with pytest.raises(ConfigurationError):
        uniform_arrivals(["a"], gap_s=-1)
    with pytest.raises(ConfigurationError):
        interleave_workloads(["a"], 0, rng)
