"""Tests for the six paper workloads and the synthetic microbenchmark."""

import numpy as np
import pytest

from repro.core import DgsfConfig
from repro.core.deployment import DgsfDeployment, NativeDeployment
from repro.core.migration import migrate_api_server
from repro.errors import ConfigurationError
from repro.simcuda.types import GB, MB
from repro.workloads import (
    WORKLOADS,
    ALL_WORKLOAD_NAMES,
    SMALLER_WORKLOAD_NAMES,
    make_handler,
    make_cpu_handler,
    register_workloads,
    synthetic_migration_workload,
)
from repro.testing import make_world


def run_one(dep, name):
    dep.setup()
    register_workloads(dep.platform, names=[name])
    inv, proc = dep.platform.invoke(name)
    dep.env.run(until=proc)
    assert inv.status == "completed"
    return inv


def test_workload_table_is_complete():
    assert set(ALL_WORKLOAD_NAMES) == {
        "kmeans",
        "covidctnet",
        "face_detection",
        "face_identification",
        "nlp_qa",
        "image_classification",
    }
    assert set(SMALLER_WORKLOAD_NAMES) <= set(ALL_WORKLOAD_NAMES)
    assert "covidctnet" not in SMALLER_WORKLOAD_NAMES
    assert "face_detection" not in SMALLER_WORKLOAD_NAMES


def test_unknown_workload_rejected():
    with pytest.raises(ConfigurationError):
        make_handler("ghost")
    with pytest.raises(ConfigurationError):
        make_cpu_handler("ghost")


def test_kmeans_runs_native_and_pays_init():
    inv = run_one(NativeDeployment(num_gpus=1), "kmeans")
    assert inv.phases["cuda_init"] >= 3.2
    assert inv.phases["processing"] > 5.0
    # Table II scale: native ≈ 14 s
    assert 10.0 <= inv.e2e_s <= 18.0


def test_kmeans_runs_dgsf_and_hides_init():
    inv = run_one(DgsfDeployment(DgsfConfig(num_gpus=1)), "kmeans")
    total_init = inv.phases.get("cuda_init", 0.0)
    assert total_init < 0.2
    assert 7.0 <= inv.e2e_s <= 14.0


def test_faceid_dgsf_faster_than_native():
    native = run_one(NativeDeployment(num_gpus=1), "face_identification")
    dgsf = run_one(DgsfDeployment(DgsfConfig(num_gpus=1)), "face_identification")
    assert dgsf.e2e_s < native.e2e_s
    # paper: 13.4 → 10.5 (22% speedup); allow generous tolerance
    assert 2.0 < native.e2e_s - dgsf.e2e_s < 4.5


def test_covid_peak_memory_requires_whole_gpu():
    dep = DgsfDeployment(DgsfConfig(num_gpus=1))
    dep.setup()
    register_workloads(dep.platform, names=["covidctnet"])
    server = dep.gpu_server.api_servers[0]
    peaks = []
    orig_end = server.end_session

    def capture_end():
        peaks.append(server.session.peak_bytes)
        return orig_end()

    server.end_session = capture_end
    inv, proc = dep.platform.invoke("covidctnet")
    dep.env.run(until=proc)
    assert inv.status == "completed"
    # the transient two-arena spike: ≈ 13 538 MB (paper §VII)
    assert peaks[0] >= 13_000 * MB
    assert peaks[0] <= WORKLOADS["covidctnet"].declared_gpu_bytes


def test_onnx_workload_peaks_match_table2():
    dep = DgsfDeployment(DgsfConfig(num_gpus=1))
    dep.setup()
    register_workloads(dep.platform, names=["face_identification"])
    server = dep.gpu_server.api_servers[0]
    peaks = []
    orig_end = server.end_session

    def capture_end():
        peaks.append(server.session.peak_bytes)
        return orig_end()

    server.end_session = capture_end
    inv, proc = dep.platform.invoke("face_identification")
    dep.env.run(until=proc)
    expected = WORKLOADS["face_identification"].paper_peak_bytes
    assert peaks[0] == pytest.approx(expected, rel=0.05)


def test_cpu_handler_matches_table2_scale():
    dep = NativeDeployment(num_gpus=1)
    dep.setup()
    register_workloads(dep.platform, names=["kmeans"], cpu=True)
    inv, proc = dep.platform.invoke("kmeans")
    dep.env.run(until=proc)
    assert inv.e2e_s == pytest.approx(429.1 + inv.phases["download"], rel=0.05)


def test_workload_phases_recorded():
    inv = run_one(DgsfDeployment(DgsfConfig(num_gpus=1)), "nlp_qa")
    for phase in ("download", "model_load", "processing", "gpu_queue"):
        assert phase in inv.phases, f"missing phase {phase}"


def test_synthetic_workload_data_correct():
    world = make_world(DgsfConfig(num_gpus=2))
    guest, server, rpc = world.attach_guest(declared_bytes=14 * GB)
    head = world.drive(
        synthetic_migration_workload(world.env, guest, 323 * MB)
    )
    assert np.all(head == 2)  # memset(0) + two increment kernels
    world.detach_guest(guest, server, rpc)


def test_synthetic_workload_survives_forced_migration():
    world = make_world(DgsfConfig(num_gpus=2))
    guest, server, rpc = world.attach_guest(declared_bytes=14 * GB)

    def force_migration():
        proc = world.env.process(migrate_api_server(server, 1))
        yield proc

    head = world.drive(
        synthetic_migration_workload(
            world.env, guest, 323 * MB, between_kernels=force_migration
        )
    )
    assert np.all(head == 2)  # data intact across the migration
    assert server.current_device_id == 1
    world.detach_guest(guest, server, rpc)
