"""Tests for the guest-side call tracer."""

import pytest

from repro.core import DgsfConfig
from repro.core.tracing import CallTrace, CallRecord, attach_trace
from repro.simcuda.types import GB, MB
from repro.testing import make_world


@pytest.fixture
def traced():
    world = make_world(DgsfConfig(num_gpus=1))
    guest, server, rpc = world.attach_guest(declared_bytes=2 * GB)
    trace = attach_trace(guest)
    yield world, guest, trace
    world.detach_guest(guest, server, rpc)


def test_trace_records_calls_with_routes(traced):
    world, guest, trace = traced
    ptr = world.drive(guest.cudaMalloc(1 * MB))            # remote
    world.drive(guest.cudaPointerGetAttributes(ptr))        # local
    fptr = world.drive(guest.cudaGetFunction("timed"))      # local (attach map)
    world.drive(guest.cudaLaunchKernel(fptr, args=(0.01,))) # batched
    world.drive(guest.cudaDeviceSynchronize())              # remote
    world.drive(guest.cudaFree(ptr))                        # remote

    by_route = trace.counts_by_route()
    assert by_route["remote"] >= 3
    assert by_route["local"] >= 2
    assert by_route["batched"] == 1
    apis = trace.counts_by_api()
    assert apis["cudaMalloc"] == 1
    assert apis["cudaLaunchKernel"] == 1


def test_trace_durations_reflect_remoting_cost(traced):
    world, guest, trace = traced
    world.drive(guest.cudaMalloc(1 * MB))
    world.drive(guest.cudaPointerGetAttributes(
        next(iter(guest._device_allocs))
    ))
    times = trace.time_by_api()
    # a remoted call costs a round trip; a localized call is microseconds
    assert times["cudaMalloc"] > times["cudaPointerGetAttributes"] * 10


def test_top_by_time_ranks_dominant_apis(traced):
    world, guest, trace = traced
    for _ in range(5):
        world.drive(guest.cudaDeviceSynchronize())
    world.drive(guest.cudaGetDeviceCount())
    top = trace.top_by_time(1)
    assert top[0][0] == "cudaDeviceSynchronize"


def test_trace_window_filter():
    trace = CallTrace()
    for t in (0.0, 1.0, 2.0, 3.0):
        trace.add(CallRecord(t=t, api="x", route="remote", duration_s=0.1))
    sub = trace.between(1.0, 3.0)
    assert len(sub) == 2
    assert all(1.0 <= r.t < 3.0 for r in sub.records)


def test_trace_capacity_bound():
    trace = CallTrace(max_records=2)
    for t in range(5):
        trace.add(CallRecord(t=float(t), api="x", route="local", duration_s=0))
    assert len(trace) == 2


def test_trace_truncation_is_never_silent():
    """Records refused at the cap are counted, not dropped silently."""
    trace = CallTrace(max_records=2)
    for t in range(5):
        trace.add(CallRecord(t=float(t), api="x", route="local", duration_s=0))
    assert trace.dropped == 3
    assert trace.truncated
    summary = trace.summary()
    assert summary["dropped"] == 3
    assert summary["truncated"] is True
    assert summary["records"] == 2
    # sub-traces inherit the truncation marker: the window may be missing
    # records too
    assert trace.between(0.0, 1.5).dropped == 3


def test_untruncated_trace_reports_clean_summary():
    trace = CallTrace()
    trace.add(CallRecord(t=0.0, api="x", route="remote", duration_s=0.1))
    summary = trace.summary()
    assert summary["dropped"] == 0
    assert summary["truncated"] is False
    assert summary["by_route"] == {"remote": 1}


def test_traced_guest_still_returns_correct_results(traced):
    """Tracing must be transparent to the application."""
    import numpy as np

    world, guest, trace = traced
    data = np.arange(128, dtype=np.uint8)
    ptr = world.drive(guest.cudaMalloc(128))
    world.drive(guest.memcpyH2D(ptr, 128, payload=data))
    back = world.drive(guest.memcpyD2H(ptr, 128))
    assert np.array_equal(back[:128], data)
    world.drive(guest.cudaFree(ptr))
