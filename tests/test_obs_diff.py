"""Tests for differential regression attribution (repro.obs.diff) and
its bench_compare --explain integration: cohort attribution over
critpath rows, additive delta decomposition, the formatted regression
line, the difffolded flame diff, and artifact-loading dispatch."""

import importlib.util
import json
from pathlib import Path

import pytest

from repro.errors import ConfigurationError
from repro.obs.critpath import RESOURCES
from repro.obs.diff import (
    attribution_from_tracer,
    cohort_attribution,
    diff_attribution,
    dump_flame_diff,
    flame_diff,
    format_diff_row,
    load_attribution,
)
from repro.obs.diff import main as diff_main
from repro.obs.trace import Tracer
from repro.sim.core import Environment

_SPEC = importlib.util.spec_from_file_location(
    "bench_compare",
    Path(__file__).resolve().parent.parent / "scripts" / "bench_compare.py",
)
bench_compare = importlib.util.module_from_spec(_SPEC)
_SPEC.loader.exec_module(bench_compare)


def critpath_row(workload, e2e_s, **resources):
    """Synthetic invocation_critpaths row; unnamed categories get 0."""
    res = {name: 0.0 for name in RESOURCES}
    res.update(resources)
    return {"workload": workload, "e2e_s": e2e_s, "resources": res}


def attribution_entry(latency_s, pcts=(50, 95, 99), **categories):
    cats = {name: 0.0 for name in RESOURCES}
    cats.update(categories)
    entry = {"count": 10}
    for pct in pcts:
        entry[f"p{pct}"] = {"latency_s": latency_s, "cohort": 1,
                            "categories": dict(cats)}
    return entry


# -- layer 1: cohort attribution ----------------------------------------------

def test_cohort_attribution_is_an_additive_split():
    rows = [
        critpath_row("wl", 1.0 + i * 0.1,
                     queue=0.5 + i * 0.1, gpu_compute=0.4, cpu=0.1)
        for i in range(10)
    ]
    attr = cohort_attribution(rows)
    entry = attr["wl"]
    assert entry["count"] == 10
    # p99 cohort: the single slowest invocation (e2e 1.9)
    p99 = entry["p99"]
    assert p99["cohort"] == 1
    assert p99["latency_s"] == pytest.approx(1.9)
    assert sum(p99["categories"].values()) == pytest.approx(1.9)
    # p50 cohort is the upper half: mean latency above the overall mean
    p50 = entry["p50"]
    assert p50["cohort"] == 5
    assert p50["latency_s"] > sum(r["e2e_s"] for r in rows) / len(rows)


def test_cohort_attribution_groups_by_workload():
    rows = [critpath_row("a", 1.0, cpu=1.0), critpath_row("b", 2.0, queue=2.0)]
    attr = cohort_attribution(rows, percentiles=(99,))
    assert set(attr) == {"a", "b"}
    assert attr["b"]["p99"]["categories"]["queue"] == pytest.approx(2.0)


def test_attribution_from_tracer_uses_critical_path():
    tracer = Tracer(Environment())
    root = tracer.begin("invocation:wl", cat="invocation",
                        trace_id=tracer.new_trace_id())
    root.child_complete("gpu_request", 0.0, 0.4, cat="queue")
    root.child_complete("srv:run", 0.4, 0.9, cat="server")
    root.end(t_end=1.0, status="completed", workload="wl")
    attr = attribution_from_tracer(tracer, percentiles=(99,))
    cats = attr["wl"]["p99"]["categories"]
    assert cats["queue"] == pytest.approx(0.4)
    assert cats["gpu_compute"] == pytest.approx(0.5)
    assert cats["cpu"] == pytest.approx(0.1)  # uncovered root remainder
    assert attr["wl"]["p99"]["latency_s"] == pytest.approx(1.0)


# -- layer 2: alignment + diff table ------------------------------------------

def test_diff_attribution_blames_the_moved_category():
    base = {"steady/continuous": attribution_entry(
        1.0, queue=0.3, gpu_compute=0.6, cpu=0.1)}
    fresh = {"steady/continuous": attribution_entry(
        1.04, queue=0.34, gpu_compute=0.6, cpu=0.1)}
    rows = diff_attribution(base, fresh, percentiles=(99,))
    assert len(rows) == 1
    row = rows[0]
    assert row["workload"] == "steady/continuous"
    assert row["percentile"] == "p99"
    assert row["regression"] is True
    assert row["top"] == "queue"
    assert row["delta_latency_s"] == pytest.approx(0.04)
    assert row["shares"]["queue"] == pytest.approx(1.0)


def test_diff_attribution_handles_improvements_and_mixed_movement():
    base = {"wl": attribution_entry(1.0, queue=0.5, gpu_compute=0.5)}
    fresh = {"wl": attribution_entry(0.92, queue=0.40, gpu_compute=0.52)}
    (row,) = diff_attribution(base, fresh, percentiles=(95,))
    assert row["regression"] is False
    assert row["top"] == "queue"  # the dominant mover, sign-aware
    # shares are over the dominant direction only (queue got faster)
    assert row["shares"]["queue"] == pytest.approx(1.0)
    assert row["shares"]["gpu_compute"] == 0.0


def test_diff_attribution_skips_unshared_workloads():
    base = {"old": attribution_entry(1.0, cpu=1.0)}
    fresh = {"new": attribution_entry(1.0, cpu=1.0)}
    assert diff_attribution(base, fresh) == []


def test_format_diff_row_names_major_contributors_only():
    row = {
        "workload": "steady/continuous", "percentile": "p99",
        "delta_latency_s": 0.040,
        "shares": {"queue": 0.80, "gpu_compute": 0.15, "cpu": 0.04,
                   "wire": 0.01},
    }
    line = format_diff_row(row)
    assert line == ("steady/continuous p99 +40.0 ms: "
                    "80% queue, 15% gpu_compute")
    flat = dict(row, shares={name: 0.0 for name in RESOURCES},
                delta_latency_s=0.0)
    assert "no attributed movement" in format_diff_row(flat)


# -- layer 3: flame diff ------------------------------------------------------

def test_flame_diff_emits_difffolded_lines(tmp_path):
    base = {"invocation:wl;gpu_request": 0.001}
    fresh = {"invocation:wl;gpu_request": 0.002, "invocation:wl;srv:run": 0.0005}
    lines = flame_diff(base, fresh)
    assert lines == [
        "invocation:wl;gpu_request 1000 2000",
        "invocation:wl;srv:run 0 500",
    ]
    out = tmp_path / "flame_diff.folded"
    assert dump_flame_diff(base, fresh, out) == 2
    assert out.read_text().splitlines() == lines


# -- artifact loading + CLI ---------------------------------------------------

def test_load_attribution_dispatch(tmp_path):
    attr = {"wl": attribution_entry(1.0, cpu=1.0)}
    wrapped = tmp_path / "wrapped.json"
    wrapped.write_text(json.dumps({"attribution": attr}))
    assert load_attribution(wrapped) == attr

    bare = tmp_path / "bare.json"
    bare.write_text(json.dumps(attr))
    assert load_attribution(bare) == attr

    bench = tmp_path / "bench.json"
    bench.write_text(json.dumps({"rows": [
        {"scenario": "steady", "mode": "continuous",
         "attribution": attr["wl"]},
    ]}))
    assert load_attribution(bench) == {"steady/continuous": attr["wl"]}


def test_load_attribution_rejects_attribution_less_bench(tmp_path):
    bench = tmp_path / "bench.json"
    bench.write_text(json.dumps({"rows": [{"scenario": "s", "mode": "m"}]}))
    with pytest.raises(ConfigurationError, match="no attribution"):
        load_attribution(bench)


def test_diff_cli_prints_table_and_writes_artifact(tmp_path, capsys):
    base = tmp_path / "base.json"
    fresh = tmp_path / "fresh.json"
    base.write_text(json.dumps(
        {"attribution": {"wl": attribution_entry(1.0, queue=1.0, pcts=(99,))}}))
    fresh.write_text(json.dumps(
        {"attribution": {"wl": attribution_entry(1.1, queue=1.1, pcts=(99,))}}))
    out_dir = tmp_path / "out"
    assert diff_main([str(base), str(fresh), "--out", str(out_dir)]) == 0
    assert "wl p99 +100.0 ms: 100% queue" in capsys.readouterr().out
    dumped = json.loads((out_dir / "diff.json").read_text())
    assert dumped["rows"][0]["top"] == "queue"


# -- bench_compare --explain integration --------------------------------------

def llm_doc(p99=120.0, queue=0.030):
    return {
        "experiment": "llm_bench",
        "seed": 5,
        "copies": 2,
        "rows": [{
            "scenario": "steady", "mode": "continuous",
            "n_requests": 40, "p99_token_ms": p99,
            "attribution": attribution_entry(
                p99 / 1e3, pcts=(99,), queue=queue,
                gpu_compute=p99 / 1e3 - queue),
        }],
    }


def write(tmp_path, name, doc):
    path = tmp_path / name
    path.write_text(json.dumps(doc))
    return str(path)


def test_bench_compare_explain_attributes_banded_failure(tmp_path, capsys):
    base = write(tmp_path, "base.json", llm_doc())
    fresh = write(tmp_path, "fresh.json", llm_doc(p99=160.0, queue=0.070))
    out = tmp_path / "diff.json"
    rc = bench_compare.main([base, fresh, "--explain",
                             "--explain-out", str(out)])
    assert rc == 1  # the banded p99 failure still fails the gate
    err = capsys.readouterr().err
    assert "attribution (why the tail moved):" in err
    assert "100% queue" in err and "<-- regression" in err
    dumped = json.loads(out.read_text())
    assert dumped["rows"][0]["top"] == "queue"


def test_bench_compare_explain_quiet_without_attribution(tmp_path, capsys):
    def plain(p99):
        doc = llm_doc(p99=p99)
        del doc["rows"][0]["attribution"]
        return doc

    base = write(tmp_path, "base.json", plain(120.0))
    fresh = write(tmp_path, "fresh.json", plain(160.0))
    assert bench_compare.main([base, fresh, "--explain"]) == 1
    assert "no attribution maps" in capsys.readouterr().err
