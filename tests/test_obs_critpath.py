"""Unit + integration tests for critical-path extraction (repro.obs.critpath)."""

import pytest

from repro.core.config import DgsfConfig
from repro.experiments.runner import run_single_invocation_traced
from repro.obs import (
    Tracer,
    aggregate_critpaths,
    bottleneck_table,
    critical_path,
    critpath_report,
    dump_folded,
    folded_stacks,
    invocation_critpaths,
)
from repro.obs.critpath import RESOURCES, resource_of
from repro.sim import Environment


def make_tracer():
    return Tracer(Environment())


def build_tree(tracer):
    """Hand-built invocation: root [0, 10] with
    platform_queue [0,1], download [1,3], gpu_queue [3,4],
    processing [4,10] containing rpc [5,8] containing
    xfer [5,6] and srv [6,7.5]."""
    trace_id = tracer.new_trace_id()
    root = tracer.begin("invocation:w", cat="invocation", pid="invocations",
                        tid="inv-1", trace_id=trace_id,
                        workload="w", invocation_id=1)
    c = root.child_complete
    c("platform_queue", 0.0, 1.0, cat="phase")
    c("download", 1.0, 3.0, cat="phase")
    c("gpu_queue", 3.0, 4.0, cat="phase")
    c("processing", 4.0, 10.0, cat="phase")
    c("rpc:launch", 5.0, 8.0, cat="rpc")
    c("xfer:RpcRequest", 5.0, 6.0, cat="net")
    c("srv:launch", 6.0, 7.5, cat="server")
    tracer.env.run(until=10.0)
    root.end(status="completed")
    return trace_id


# --- resource classification -------------------------------------------------

def test_resource_of_phase_and_cats():
    tracer = make_tracer()
    build_tree(tracer)
    by_name = {r.name: r for r in tracer.records}
    assert resource_of(by_name["platform_queue"]) == "queue"
    assert resource_of(by_name["gpu_queue"]) == "queue"
    assert resource_of(by_name["download"]) == "object_store"
    assert resource_of(by_name["processing"]) == "cpu"
    assert resource_of(by_name["rpc:launch"]) == "serialization"
    assert resource_of(by_name["xfer:RpcRequest"]) == "wire"
    assert resource_of(by_name["srv:launch"]) == "gpu_compute"


# --- sweep -------------------------------------------------------------------

def test_critical_path_innermost_span_wins():
    tracer = make_tracer()
    trace_id = build_tree(tracer)
    segments = critical_path(tracer.by_trace()[trace_id])
    # segments partition the root exactly
    assert segments[0].t_start == 0.0 and segments[-1].t_end == 10.0
    for a, b in zip(segments, segments[1:]):
        assert a.t_end == b.t_start
    by_resource = {}
    for seg in segments:
        by_resource[seg.resource] = by_resource.get(seg.resource, 0.0) + seg.duration_s
    assert by_resource == pytest.approx({
        "queue": 2.0,            # platform_queue + gpu_queue
        "object_store": 2.0,     # download
        "cpu": 1.0 + 2.0,        # processing outside the rpc ([4,5] + [8,10])
        "serialization": 0.5,    # rpc gap not covered by xfer/srv ([7.5,8])
        "wire": 1.0,             # xfer
        "gpu_compute": 1.5,      # srv
    })
    # the nested interval carries the full stack, outermost first
    srv_seg = next(s for s in segments if s.resource == "gpu_compute")
    assert srv_seg.stack == (
        "invocation:w", "processing", "rpc:launch", "srv:launch")


def test_critical_path_clips_spans_to_root_extent():
    tracer = make_tracer()
    trace_id = tracer.new_trace_id()
    root = tracer.begin("invocation:w", cat="invocation", trace_id=trace_id)
    # teardown RPC that outlives the root must be clipped at t=4
    root.child_complete("rpc:detach", 3.0, 6.0, cat="rpc")
    tracer.env.run(until=4.0)
    root.end()
    segments = critical_path(tracer.by_trace()[trace_id])
    assert segments[-1].t_end == 4.0
    rpc = next(s for s in segments if s.resource == "serialization")
    assert (rpc.t_start, rpc.t_end) == (3.0, 4.0)


def test_critical_path_empty_without_root():
    tracer = make_tracer()
    tracer.complete("rpc:x", 0.0, 1.0, cat="rpc", trace_id=7)
    assert critical_path(tracer.by_trace()[7]) == []


# --- per-invocation rows and aggregation -------------------------------------

def test_invocation_critpaths_rows_and_coverage():
    tracer = make_tracer()
    build_tree(tracer)
    (row,) = invocation_critpaths(tracer)
    assert row["workload"] == "w" and row["status"] == "completed"
    assert row["e2e_s"] == 10.0
    assert row["attributed_s"] == pytest.approx(10.0)
    assert row["coverage"] == pytest.approx(1.0)
    assert row["dominant"] == "cpu"
    assert set(row["resources"]) == set(RESOURCES)


def test_uncovered_root_time_counts_against_coverage():
    tracer = make_tracer()
    trace_id = tracer.new_trace_id()
    root = tracer.begin("invocation:w", cat="invocation", trace_id=trace_id,
                        workload="w", invocation_id=2)
    root.child_complete("download", 0.0, 6.0, cat="phase")
    tracer.env.run(until=10.0)
    root.end()
    (row,) = invocation_critpaths(tracer)
    # [6, 10] is root-only: attributed to cpu but NOT covered
    assert row["coverage"] == pytest.approx(0.6)
    assert row["resources"]["object_store"] == pytest.approx(6.0)
    assert row["resources"]["cpu"] == pytest.approx(4.0)


def test_aggregate_and_bottleneck_table():
    tracer = make_tracer()
    build_tree(tracer)
    rows = invocation_critpaths(tracer)
    agg = aggregate_critpaths(rows)
    assert agg["count"] == 1
    assert agg["workloads"]["w"]["top_bottleneck"]["p50"] == "cpu"
    table = bottleneck_table(agg)
    assert {(r["workload"], r["percentile"]) for r in table} == {
        ("w", "p50"), ("w", "p95")}
    assert aggregate_critpaths([]) == {"count": 0, "workloads": {}}


def test_critpath_report_flags_violations():
    tracer = make_tracer()
    trace_id = tracer.new_trace_id()
    root = tracer.begin("invocation:w", cat="invocation", trace_id=trace_id,
                        workload="w", invocation_id=3)
    root.child_complete("download", 0.0, 1.0, cat="phase")
    tracer.env.run(until=10.0)
    root.end()
    report = critpath_report(tracer, min_coverage=0.95)
    assert len(report["violations"]) == 1
    assert "coverage" in report["violations"][0]


# --- folded export -----------------------------------------------------------

def test_folded_stacks_and_dump(tmp_path):
    tracer = make_tracer()
    build_tree(tracer)
    stacks = folded_stacks(tracer)
    assert stacks["invocation:w;download"] == pytest.approx(2.0)
    assert stacks[
        "invocation:w;processing;rpc:launch;srv:launch"
    ] == pytest.approx(1.5)
    path = tmp_path / "flame.folded"
    n = dump_folded(stacks, path)
    lines = path.read_text().splitlines()
    assert len(lines) == n == len(stacks)
    for line in lines:
        stack, _, weight = line.rpartition(" ")
        assert stack and int(weight) >= 1
    assert "invocation:w;download 2000000" in lines


# --- end-to-end over a real traced run ---------------------------------------

def test_real_invocation_attribution_covers_e2e():
    inv, dep = run_single_invocation_traced(
        "kmeans", "dgsf", DgsfConfig(num_gpus=1, seed=0)
    )
    (row,) = invocation_critpaths(dep.tracer, [inv])
    assert row["coverage"] >= 0.95
    assert sum(row["resources"].values()) == pytest.approx(inv.e2e_s)
    # an uncontended kmeans run is compute-bound
    assert row["dominant"] == "gpu_compute"
    # wire time is visible now that xfer spans join the trace
    assert row["resources"]["wire"] > 0.0
