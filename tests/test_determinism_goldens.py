"""Bit-identical determinism goldens.

These values were captured from the simulator with default flags and no
faults; they must stay *exactly* equal (``==`` on floats, no approx).
Anything that reorders event creation, renames/reorders RNG streams, or
changes the cost model will trip these — which is the point: the async
pipelining and cache layers must be invisible while their flags are off.

If a change is *supposed* to alter the timeline (a cost-model change, a
new mandatory phase), re-capture the constants and say so in the commit.
"""

from repro.core.config import DgsfConfig
from repro.experiments.runner import run_mixed_scenario, run_single_invocation
from repro.faas.workload_gen import exponential_gap_arrivals
from repro.sim.rng import RngRegistry

FACE_ID_DGSF_E2E = 10.632098228949541
FACE_ID_DGSF_PHASES = {
    "cuda_init": 0.004890598400006496,
    "download": 5.6759869257142865,
    "gpu_queue": 0.004799999999999471,
    "model_load": 1.0790491612278785,
    "processing": 3.8575309260073585,
}
FACE_ID_UNOPT_E2E = 21.95291271165436
KMEANS_DGSF_E2E = 11.361748619862041
MIXED_PROVIDER_E2E = 26.877116275928223
MIXED_FUNCTION_E2E_SUM = 107.12672355760257
#: contended mixed plan (2 GPUs, sharing(2), every workload × 4) per
#: discipline.  fcfs and sff were captured BEFORE the scheduler layer was
#: extracted from the monitor — the extraction must be event-for-event
#: invisible.  sff_aged equals fcfs here because the platform registers
#: no duration hints, so every request's starvation bound is zero and
#: aged SFF conservatively degrades to FCFS.
DISCIPLINE_GOLDENS = {
    "fcfs": (190.80676231822642, 1737.078470391451),
    "sff": (172.8089731872337, 1548.5746535162375),
    "sff_aged": (190.80676231822642, 1737.078470391451),
    "mqfq": (178.45615095292126, 1609.4807497078716),
}


def test_single_invocation_timeline_is_bit_identical():
    inv = run_single_invocation(
        "face_identification", "dgsf", DgsfConfig(num_gpus=1, seed=0)
    )
    assert inv.e2e_s == FACE_ID_DGSF_E2E
    assert dict(inv.phases) == FACE_ID_DGSF_PHASES


def test_unoptimized_timeline_is_bit_identical():
    inv = run_single_invocation(
        "face_identification", "dgsf_unopt", DgsfConfig(num_gpus=1, seed=0)
    )
    assert inv.e2e_s == FACE_ID_UNOPT_E2E


def test_kmeans_timeline_is_bit_identical():
    inv = run_single_invocation("kmeans", "dgsf", DgsfConfig(num_gpus=1, seed=0))
    assert inv.e2e_s == KMEANS_DGSF_E2E


def test_mixed_scenario_is_bit_identical():
    plan = exponential_gap_arrivals(
        ["face_identification", "kmeans"] * 3,
        mean_gap_s=2.0,
        rng=RngRegistry(seed=7).stream("arrivals"),
    )
    res = run_mixed_scenario(DgsfConfig(num_gpus=2, seed=7), plan)
    assert res.stats.provider_e2e_s == MIXED_PROVIDER_E2E
    assert res.stats.function_e2e_sum_s == MIXED_FUNCTION_E2E_SUM


def test_every_discipline_timeline_is_bit_identical():
    from repro.experiments.runner import make_plan

    plan = make_plan("exponential", seed=3, copies=4, mean_gap_s=1.5)
    for discipline, (provider_e2e, fn_e2e_sum) in DISCIPLINE_GOLDENS.items():
        cfg = DgsfConfig(num_gpus=2, api_servers_per_gpu=2,
                         queue_discipline=discipline, seed=3)
        res = run_mixed_scenario(cfg, plan)
        assert res.stats.provider_e2e_s == provider_e2e, discipline
        assert res.stats.function_e2e_sum_s == fn_e2e_sum, discipline


def test_repeat_run_reproduces_itself():
    a = run_single_invocation("kmeans", "dgsf", DgsfConfig(num_gpus=1, seed=3))
    b = run_single_invocation("kmeans", "dgsf", DgsfConfig(num_gpus=1, seed=3))
    assert a.e2e_s == b.e2e_s
    assert dict(a.phases) == dict(b.phases)


def test_mixed_scenario_with_full_observability_is_bit_identical():
    """Tracing + the always-attached SLO engine + critical-path analysis
    are pure bookkeeping: with every observability layer active the mixed
    timeline must still match the goldens bit for bit."""
    from repro.obs import invocation_critpaths

    plan = exponential_gap_arrivals(
        ["face_identification", "kmeans"] * 3,
        mean_gap_s=2.0,
        rng=RngRegistry(seed=7).stream("arrivals"),
    )
    res = run_mixed_scenario(
        DgsfConfig(num_gpus=2, seed=7, tracing_enabled=True), plan
    )
    assert res.stats.provider_e2e_s == MIXED_PROVIDER_E2E
    assert res.stats.function_e2e_sum_s == MIXED_FUNCTION_E2E_SUM
    # the SLO engine streamed the whole run without injecting sim events
    dep = res.deployment
    assert dep.slo is not None
    assert dep.metrics.total("invocation.status") == len(res.invocations)
    # offline critical-path extraction meets the attribution bar on the
    # exact timeline the goldens pin
    rows = invocation_critpaths(dep.tracer, res.invocations)
    assert len(rows) == len(res.invocations)
    assert all(row["coverage"] >= 0.95 for row in rows)
