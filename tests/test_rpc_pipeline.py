"""Pipelined RPC: multiple in-flight requests on one connection.

Covers :meth:`RpcClient.call_async` / :class:`PendingReply` (the channel
underneath the guest's async forwarding) and pins the wire accounting of
one-way batches.
"""

import pytest

from repro.sim import Environment
from repro.simnet import (
    Network,
    NetworkProfile,
    RpcClient,
    RpcError,
    RpcServer,
    RpcTimeout,
    payload_size,
    MESSAGE_HEADER_BYTES,
)


def make_pair(latency=1e-3, bandwidth=10e9):
    env = Environment()
    net = Network(env, default_profile=NetworkProfile(latency_s=latency))
    a = net.add_host("fn", bandwidth_bps=bandwidth)
    b = net.add_host("gpu", bandwidth_bps=bandwidth)
    return env, net.connect(a, b)


def make_rpc(handler, latency=1e-3):
    env, conn = make_pair(latency=latency)
    client = RpcClient(conn.a)
    server = RpcServer(conn.b, handler)
    server.start()
    return env, conn, client, server


# --- pipelining --------------------------------------------------------------

def test_multiple_in_flight_replies_in_request_order():
    henv = {}

    def handler(req):
        yield henv["env"].timeout(1.0)
        return req.args[0]

    env, _, client, _ = make_rpc(handler, latency=0.5)
    henv["env"] = env
    order = []

    def caller(env):
        pendings = [client.call_async("work", i) for i in range(3)]
        assert client.in_flight == 3
        assert client.max_in_flight == 3
        for p in pendings:
            value = yield from p.wait()
            order.append((value, env.now))
        return env.now

    p = env.process(caller(env))
    env.run(until=p)
    # FIFO link + sequential server dispatch: replies in request order.
    assert [v for v, _ in order] == [0, 1, 2]
    # Pipelined: requests all arrive at t=0.5, handlers run back-to-back
    # (done ~1.5/2.5/3.5, replies +0.5).  Sequentially this would be ~6 s.
    assert p.value == pytest.approx(4.0, abs=0.1)
    assert client.in_flight == 0
    assert client.replies_harvested == 3


def test_result_is_nonblocking_and_requires_arrival():
    def handler(req):
        if False:
            yield
        return req.args[0] * 2

    env, _, client, _ = make_rpc(handler)

    def caller(env):
        pending = client.call_async("double", 21)
        with pytest.raises(RpcError):
            pending.result()  # not arrived yet
        yield env.timeout(1.0)  # plenty for the round trip
        assert pending.arrived
        return pending.result()

    p = env.process(caller(env))
    env.run(until=p)
    assert p.value == 42
    assert client.in_flight == 0


def test_wait_timeout_composes_and_late_reply_stays_deliverable():
    henv = {}

    def handler(req):
        yield henv["env"].timeout(3.0)
        return req.method.upper()

    env, _, client, _ = make_rpc(handler)
    henv["env"] = env

    def caller(env):
        pending = client.call_async("slow")
        with pytest.raises(RpcTimeout):
            yield from pending.wait(timeout_s=1.0)
        assert client.in_flight == 0  # timed-out handle is done
        # The abandoned receive was withdrawn; a fresh call still matches
        # its own reply even with the stale reply in the inbox.
        result = yield from client.call("retry")
        return result

    p = env.process(caller(env))
    env.run(until=p)
    assert p.value == "RETRY"


def test_abandon_releases_in_flight_without_consuming():
    def handler(req):
        if False:
            yield
        return "ok"

    env, _, client, _ = make_rpc(handler)

    def caller(env):
        pending = client.call_async("drop-me")
        pending.abandon()
        assert client.in_flight == 0
        pending.abandon()  # idempotent
        assert client.in_flight == 0
        # The connection still works for subsequent calls.
        return (yield from client.call("after"))

    p = env.process(caller(env))
    env.run(until=p)
    assert p.value == "ok"


def test_async_error_reply_raises_on_harvest():
    def handler(req):
        if False:
            yield
        raise ValueError("injected remote failure")

    env, _, client, _ = make_rpc(handler)

    def caller(env):
        pending = client.call_async("boom")
        yield env.timeout(1.0)
        assert pending.arrived
        with pytest.raises(RpcError, match="injected remote failure"):
            pending.result()
        return client.in_flight

    p = env.process(caller(env))
    env.run(until=p)
    assert p.value == 0


def test_sync_call_still_works_through_async_path():
    """call() is now built on call_async(); the sync contract is unchanged."""

    def handler(req):
        if False:
            yield
        return ("echo",) + req.args

    env, _, client, server = make_rpc(handler)

    def caller(env):
        return (yield from client.call("ping", 1, 2))

    p = env.process(caller(env))
    env.run(until=p)
    assert p.value == ("echo", 1, 2)
    assert client.max_in_flight == 1
    assert server.requests_handled == 1


# --- one-way batch wire accounting -------------------------------------------

def test_oneway_batch_bytes_pinned():
    """Regression: a one-way batch is one message whose bulk payload bytes
    are charged exactly once (neither dropped nor double-counted)."""

    def handler(req):
        if False:
            yield
        return None

    env, conn, client, _ = make_rpc(handler)
    calls = [("launch", (1, 2), 1000), ("launch", (3, 4), 500), ("sync", (), 0)]

    def caller(env):
        gen = client.call_batch(calls, oneway=True)
        try:
            next(gen)
        except (StopIteration, TypeError):
            pass
        yield env.timeout(1.0)

    p = env.process(caller(env))
    env.run(until=p)

    # One message carrying three calls.
    assert client.messages_sent == 1
    assert client.calls_sent == 3
    # Exact wire size: header + batch envelope + per-sub request framing
    # + the bulk payloads (1000 + 500), charged once.
    subs = sum(
        16 + payload_size(m) + payload_size(tuple(a)) for (m, a, _x) in calls
    )
    envelope = 16 + payload_size("__batch__") + payload_size(())
    extra = sum(x for (_m, _a, x) in calls)
    assert conn.a.bytes_out == MESSAGE_HEADER_BYTES + envelope + subs + extra


def test_oneway_batch_cheaper_than_individual_oneways():
    def handler(req):
        if False:
            yield
        return None

    calls = [("op", (i,), 0) for i in range(8)]

    env1, conn1, client1, _ = make_rpc(handler)

    def batched(env):
        gen = client1.call_batch(calls, oneway=True)
        try:
            next(gen)
        except (StopIteration, TypeError):
            pass
        yield env.timeout(1.0)

    p = env1.process(batched(env1))
    env1.run(until=p)

    env2, conn2, client2, _ = make_rpc(handler)

    def individual(env):
        for (m, a, x) in calls:
            client2.call_oneway(m, *a, extra_bytes=x)
        yield env.timeout(1.0)

    p = env2.process(individual(env2))
    env2.run(until=p)

    # Same calls, one header instead of eight.
    assert client1.messages_sent == 1
    assert client2.messages_sent == 8
    saved = conn2.a.bytes_out - conn1.a.bytes_out
    assert saved >= 7 * MESSAGE_HEADER_BYTES - 8 * 16  # batching amortizes framing
    assert conn1.a.bytes_out < conn2.a.bytes_out
