"""Tests for the alternative migration strategies (Table I comparison)."""

import numpy as np
import pytest

from repro.core import DgsfConfig
from repro.core.migration import migrate_api_server
from repro.core.migration_strategies import (
    MIGRATION_STRATEGIES,
    checkpoint_restore_migration,
    peer_access_migration,
)
from repro.errors import SimulationError
from repro.simcuda.types import GB, MB
from repro.testing import make_world


@pytest.fixture
def world():
    return make_world(DgsfConfig(num_gpus=2))


def run(world, gen):
    proc = world.env.process(gen)
    return world.env.run(until=proc)


def test_registry_contains_all_strategies():
    assert set(MIGRATION_STRATEGIES) == {"dgsf", "checkpoint_restore", "peer_access"}


def test_checkpoint_restore_moves_data_but_changes_addresses(world):
    guest, server, rpc = world.attach_guest(declared_bytes=2 * GB)
    ptr = world.drive(guest.cudaMalloc(256 * MB))
    world.drive(guest.memcpyH2D(ptr, 256 * MB,
                                payload=np.arange(64, dtype=np.uint8)))
    va_before = set(server.session.allocations)
    outcome = run(world, checkpoint_restore_migration(server, 1))
    assert outcome.moved_bytes == 256 * MB
    assert outcome.residual_source_bytes == 0
    # addresses are NOT preserved — the paper's generality argument
    va_after = set(server.session.allocations)
    assert va_before != va_after
    # the data itself did survive the host round trip
    new_ptr = next(iter(va_after))
    mapping, _ = server.context.address_space.translate(new_ptr)
    assert np.array_equal(mapping.allocation.read(0, 64),
                          np.arange(64, dtype=np.uint8))
    # the old guest pointer is dead — exactly why this breaks transparency
    with pytest.raises(Exception):
        server.context.address_space.translate(ptr)
    world.detach_guest(guest, server, rpc)


def test_checkpoint_restore_slower_than_dgsf_for_same_data(world):
    """Two PCIe crossings + snapshot bookkeeping beat one D2D copy — DGSF
    must migrate faster."""
    durations = {}
    for label, strategy in (
        ("dgsf", migrate_api_server),
        ("ckpt", checkpoint_restore_migration),
    ):
        w = make_world(DgsfConfig(num_gpus=2))
        guest, server, rpc = w.attach_guest(declared_bytes=14 * GB)
        w.drive(guest.cudaMalloc(4 * GB))
        outcome = run(w, strategy(server, 1))
        durations[label] = (
            outcome.duration_s if hasattr(outcome, "duration_s") else outcome
        )
        w.detach_guest(guest, server, rpc)
    assert durations["dgsf"] < durations["ckpt"]


def test_peer_access_is_fast_but_leaves_memory_behind(world):
    guest, server, rpc = world.attach_guest(declared_bytes=2 * GB)
    world.drive(guest.cudaMalloc(512 * MB))
    g0, g1 = world.gpu_server.devices
    used0 = g0.mem_used
    outcome = run(world, peer_access_migration(server, 1))
    assert outcome.duration_s < 0.2
    assert outcome.residual_source_bytes == 512 * MB
    assert outcome.post_access_penalty > 1.0
    # the source GPU still holds the data (cannot host another function)
    assert g0.mem_used == used0
    assert server.current_device_id == 1
    assert server.memory_device_id == 0
    world.detach_guest(guest, server, rpc)


def test_peer_access_slows_subsequent_kernels(world):
    guest, server, rpc = world.attach_guest(declared_bytes=2 * GB)
    world.drive(guest.cudaMalloc(64 * MB))
    fptr = world.drive(guest.cudaGetFunction("timed"))

    def timed_launch(env):
        t0 = env.now
        yield from guest.cudaLaunchKernel(fptr, args=(1.0,), work=1.0)
        yield from guest.cudaDeviceSynchronize()
        return env.now - t0

    before = world.drive(timed_launch(world.env))
    run(world, peer_access_migration(server, 1))
    after = world.drive(timed_launch(world.env))
    assert after > before * 2.0  # the 2.5x remote-access penalty
    world.detach_guest(guest, server, rpc)


def test_peer_access_memory_ops_still_work(world):
    """Frees and copies route to the source context after a peer move."""
    guest, server, rpc = world.attach_guest(declared_bytes=2 * GB)
    data = np.arange(100, dtype=np.uint8)
    ptr = world.drive(guest.cudaMalloc(64 * MB))
    world.drive(guest.memcpyH2D(ptr, 64 * MB, payload=data))
    run(world, peer_access_migration(server, 1))
    back = world.drive(guest.memcpyD2H(ptr, 100))
    assert np.array_equal(back[:100], data)
    world.drive(guest.cudaFree(ptr))
    world.detach_guest(guest, server, rpc)


def test_dgsf_cannot_migrate_peer_split_session(world):
    guest, server, rpc = world.attach_guest(declared_bytes=2 * GB)
    world.drive(guest.cudaMalloc(1 * MB))
    run(world, peer_access_migration(server, 1))
    with pytest.raises(SimulationError, match="peer-access"):
        run(world, migrate_api_server(server, 0))
    world.detach_guest(guest, server, rpc)


def test_session_end_resets_peer_state(world):
    guest, server, rpc = world.attach_guest(declared_bytes=2 * GB)
    world.drive(guest.cudaMalloc(1 * MB))
    run(world, peer_access_migration(server, 1))
    world.detach_guest(guest, server, rpc)
    assert server.memory_device_id == server.home_device_id
    assert server.kernel_work_multiplier == 1.0
    assert world.gpu_server.migration_slot_available(1)
