"""Tests for the multi-GPU-server backend (§IV scaling)."""

import pytest

from repro.core import DgsfConfig
from repro.core.backend import GpuBackend
from repro.core.deployment import DgsfDeployment
from repro.errors import ConfigurationError
from repro.faas import FunctionSpec
from repro.simcuda.types import GB, MB


def gpu_handler(fc):
    gpu = yield from fc.acquire_gpu()
    ptr = yield from gpu.cudaMalloc(16 * MB)
    fptr = yield from gpu.cudaGetFunction("timed")
    yield from gpu.cudaLaunchKernel(fptr, args=(1.0,))
    yield from gpu.cudaDeviceSynchronize()
    yield from gpu.cudaFree(ptr)
    return "done"


def make(num_servers, policy="least_loaded", gpus=1):
    dep = DgsfDeployment(DgsfConfig(
        num_gpus=gpus, num_gpu_servers=num_servers, backend_policy=policy,
    ))
    dep.setup()
    dep.platform.register(
        FunctionSpec(name="f", handler=gpu_handler, gpu_mem_bytes=1 * GB)
    )
    return dep


def test_backend_validates_policy():
    with pytest.raises(ConfigurationError):
        GpuBackend(policy="magic")
    with pytest.raises(ConfigurationError):
        DgsfConfig(backend_policy="magic")
    with pytest.raises(ConfigurationError):
        DgsfConfig(num_gpu_servers=0)


def test_backend_requires_registered_servers():
    backend = GpuBackend()
    with pytest.raises(ConfigurationError):
        backend.choose(1 * GB)


def test_all_servers_come_up_and_register():
    dep = make(num_servers=3)
    assert len(dep.gpu_servers) == 3
    assert len(dep.backend.servers) == 3
    assert all(s.ready.triggered for s in dep.gpu_servers)
    # each server has its own network host
    hosts = {s.host.name for s in dep.gpu_servers}
    assert len(hosts) == 3


def test_least_loaded_spreads_concurrent_functions():
    dep = make(num_servers=2, policy="least_loaded")
    inv1, p1 = dep.platform.invoke("f")
    inv2, p2 = dep.platform.invoke("f")
    dep.env.run(until=dep.env.all_of([p1, p2]))
    routed = sorted(dep.backend.routed.values())
    assert routed == [1, 1]  # one function per server
    # neither function queued: two servers, one API server each
    assert inv1.phases["gpu_queue"] < 0.1
    assert inv2.phases["gpu_queue"] < 0.1


def test_single_server_would_have_queued():
    dep = make(num_servers=1)
    inv1, p1 = dep.platform.invoke("f")
    inv2, p2 = dep.platform.invoke("f")
    dep.env.run(until=dep.env.all_of([p1, p2]))
    waits = sorted([inv1.phases["gpu_queue"], inv2.phases["gpu_queue"]])
    assert waits[1] > 0.5  # one of them had to wait


def test_round_robin_alternates():
    dep = make(num_servers=2, policy="round_robin")
    for _ in range(4):
        inv, proc = dep.platform.invoke("f")
        dep.env.run(until=proc)
    routed = sorted(dep.backend.routed.values())
    assert routed == [2, 2]


def test_backend_skips_servers_too_small_for_request():
    backend = GpuBackend()

    class FakeServer:
        def __init__(self, cap):
            self.monitor = type("M", (), {"schedulable_capacity": {0: cap},
                                          "queue_length": 0})()
            self.api_servers = []

    small = FakeServer(2 * GB)
    big = FakeServer(14 * GB)
    backend.register(small)
    backend.register(big)
    assert backend.choose(10 * GB) is big
    with pytest.raises(ConfigurationError):
        backend.choose(20 * GB)


def test_releases_go_back_to_the_owning_server():
    dep = make(num_servers=2)
    for _ in range(6):
        inv, proc = dep.platform.invoke("f")
        dep.env.run(until=proc)
    for server in dep.gpu_servers:
        assert all(not a.busy for a in server.api_servers)
        assert all(v == 0 for v in server.monitor.committed.values())
