"""Integration tests for GPU-server bring-up and static footprints."""

import pytest

from repro.core import DgsfConfig
from repro.simcuda.types import MB
from repro.testing import make_world


def test_bringup_announces_capacity():
    world = make_world(DgsfConfig(num_gpus=4, api_servers_per_gpu=2))
    assert world.gpu_server.capacity == 8
    assert world.gpu_server.ready.triggered


def test_bringup_runs_in_parallel_not_serially():
    """All contexts/handles initialize concurrently: bring-up should take
    roughly one context (3.2 s) + handle pool creation, not #servers × 3.2 s."""
    world = make_world(DgsfConfig(num_gpus=4, api_servers_per_gpu=2))
    assert world.env.now < 12.0


def test_idle_footprint_per_gpu():
    """Per GPU: one home API server (755 MB) + spare context (303 MB) +
    shared pool handles (456 MB per set)."""
    world = make_world(DgsfConfig(num_gpus=1, api_servers_per_gpu=1,
                                  pool_handles_per_gpu=1))
    used_mb = world.gpu_server.devices[0].mem_used / MB
    assert used_mb == pytest.approx(755 + 303 + 456, abs=10)


def test_schedulable_capacity_fits_largest_workload():
    """Face detection declares ~13.2 GB; it must fit on a GPU even with
    sharing-2 — the paper runs it in every mixed experiment."""
    world = make_world(DgsfConfig(num_gpus=4, api_servers_per_gpu=2,
                                  pool_handles_per_gpu=1))
    free = world.monitor.schedulable_free(0)
    assert free >= 13_500 * MB


def test_migration_slot_claim_release():
    world = make_world(DgsfConfig(num_gpus=2))
    server = world.gpu_server.api_servers[0]
    assert world.gpu_server.migration_slot_available(1)
    ctx = world.gpu_server.claim_migration_slot(server, 1)
    assert not world.gpu_server.migration_slot_available(1)
    assert server.contexts[1] is ctx
    world.gpu_server.release_migration_slot(server, 1)
    assert world.gpu_server.migration_slot_available(1)


def test_double_claim_rejected():
    from repro.errors import SimulationError

    world = make_world(DgsfConfig(num_gpus=2))
    s0, s1 = world.gpu_server.api_servers[:2]
    world.gpu_server.claim_migration_slot(s0, 1)
    with pytest.raises(SimulationError):
        world.gpu_server.claim_migration_slot(s1, 1)


def test_api_servers_distributed_across_gpus():
    world = make_world(DgsfConfig(num_gpus=3, api_servers_per_gpu=2))
    homes = [s.home_device_id for s in world.gpu_server.api_servers]
    assert sorted(homes) == [0, 0, 1, 1, 2, 2]


def test_idle_api_servers_listed():
    world = make_world(DgsfConfig(num_gpus=2))
    assert len(world.gpu_server.idle_api_servers()) == 2
    world.gpu_server.api_servers[0].begin_session(1 * MB)
    assert len(world.gpu_server.idle_api_servers()) == 1
