"""Unit tests for NVML-style utilization sampling."""

import numpy as np
import pytest

from repro.sim import Environment
from repro.simcuda import NvmlSampler, SimGPU, moving_average


def test_sampler_sees_busy_gpu():
    env = Environment()
    gpu = SimGPU(env, 0)
    sampler = NvmlSampler(env, [gpu])
    sampler.start()
    gpu.launch(1.0)
    env.run(until=2.0)
    sampler.stop()
    times, utils = sampler.series(0)
    # Samples within the first second should read ~100%, later ones 0%.
    early = utils[times <= 1.0]
    late = utils[times >= 1.4]
    assert np.all(early > 99)
    assert np.all(late < 1)


def test_sampler_partial_window():
    env = Environment()
    gpu = SimGPU(env, 0)
    sampler = NvmlSampler(env, [gpu], query_interval_s=0.2, sample_window_s=0.2)
    sampler.start()
    gpu.launch(0.1)  # busy for half of the first window
    env.run(until=0.25)
    times, utils = sampler.series(0)
    assert utils[0] == pytest.approx(50.0, abs=1.0)


def test_average_utilization_across_gpus():
    env = Environment()
    g0, g1 = SimGPU(env, 0), SimGPU(env, 1)
    sampler = NvmlSampler(env, [g0, g1])
    sampler.start()
    g0.launch(2.0)  # g1 stays idle
    env.run(until=2.0)
    avg = sampler.average_utilization()
    assert 40 <= avg <= 60
    assert sampler.average_utilization(0) > 90
    assert sampler.average_utilization(1) < 5


def test_sampler_validation():
    env = Environment()
    with pytest.raises(ValueError):
        NvmlSampler(env, [], query_interval_s=0)


def test_moving_average_basic():
    vals = [0, 10, 20, 30, 40]
    out = moving_average(vals, window=2)
    assert out == pytest.approx([0, 5, 15, 25, 35])


def test_moving_average_window_one_is_identity():
    vals = np.array([3.0, 1.0, 4.0])
    assert np.array_equal(moving_average(vals, 1), vals)


def test_moving_average_warmup_grows():
    out = moving_average([10, 20, 30, 40, 50], window=5)
    assert out[0] == 10
    assert out[4] == pytest.approx(30)


def test_moving_average_empty_and_invalid():
    assert moving_average([], 5).size == 0
    with pytest.raises(ValueError):
        moving_average([1], 0)


# --- edge cases: zero-length windows, crashes, migration ---------------------

def test_zero_length_window_rejected_by_engine():
    """The utilization engine refuses an empty window — the contract the
    sampler's ``now <= start`` guard exists to respect."""
    env = Environment()
    gpu = SimGPU(env, 0)
    env.run(until=1.0)
    with pytest.raises(ValueError):
        gpu.utilization(1.0, 1.0)


def test_sampler_window_clamped_at_time_zero():
    """A sample window larger than elapsed sim time clamps to [0, now]
    instead of producing a zero/negative-length window."""
    env = Environment()
    gpu = SimGPU(env, 0)
    sampler = NvmlSampler(env, [gpu], query_interval_s=0.1, sample_window_s=5.0)
    sampler.start()
    gpu.launch(0.35)
    env.run(until=0.31)
    assert sampler.times == pytest.approx([0.1, 0.2, 0.3])
    for util in sampler.samples[0]:
        assert util == pytest.approx(1.0)


def test_sampler_survives_api_server_crash_and_teardown():
    """Crashing an API server (and later tearing the whole GPU server
    down) must not wedge or corrupt the sampler: it keeps emitting samples
    and its bound gauge series stays in lockstep."""
    from repro.core import DgsfConfig
    from repro.testing import make_world

    world = make_world(DgsfConfig(num_gpus=1))
    sampler = world.gpu_server.nvml
    sampler.start()
    world.env.run(until=world.env.now + 1.0)
    before_crash = len(sampler.times)
    assert before_crash > 0
    server = world.gpu_server.api_servers[0]
    server.crash()
    world.env.run(until=world.env.now + 10.0)  # crash + full re-bring-up
    assert not server.dead
    after_recovery = len(sampler.times)
    assert after_recovery > before_crash
    world.env.run(until=world.env.now + 1.0)
    assert len(sampler.times) > after_recovery
    # gauge series (bound by the deployment) mirrors the raw samples
    (gauge,) = world.dep.metrics.find("gpu.utilization", device=0)
    assert gauge.times == sampler.times
    assert gauge.values == sampler.samples[0]
    # teardown: sampling continues (reads 0%) without raising
    world.drive(world.gpu_server.shutdown())
    world.env.run(until=world.env.now + 1.0)
    assert sampler.samples[0][-1] == pytest.approx(0.0)


def test_samples_survive_live_migration():
    """Live-migrating an API server between GPUs must leave the sampler's
    per-device streams intact — equal length, strictly increasing times —
    and attribute post-migration kernel work to the target GPU."""
    from repro.core import DgsfConfig
    from repro.core.migration import migrate_api_server
    from repro.simcuda.types import GB, MB
    from repro.testing import make_world

    world = make_world(DgsfConfig(num_gpus=2))
    sampler = world.gpu_server.nvml
    sampler.start()
    guest, server, rpc = world.attach_guest(declared_bytes=1 * GB)
    ptr = world.drive(guest.cudaMalloc(64 * MB))
    world.drive(guest.memcpyH2D(ptr, 64 * MB))
    proc = world.env.process(migrate_api_server(server, 1))
    world.env.run(until=proc)
    assert server.current_device_id == 1
    # post-migration work lands on GPU 1
    inc = world.drive(guest.cudaGetFunction("increment"))
    world.drive(guest.cudaLaunchKernel(inc, args=(0.5, ptr, 16)))
    world.drive(guest.cudaDeviceSynchronize())
    world.env.run(until=world.env.now + 0.5)
    assert len(sampler.samples[0]) == len(sampler.samples[1]) == len(sampler.times)
    assert all(b > a for a, b in zip(sampler.times, sampler.times[1:]))
    tail = sampler.samples[1][-6:]
    assert max(tail) > 0.0  # GPU 1 saw the post-migration kernel
    world.detach_guest(guest, server, rpc)
