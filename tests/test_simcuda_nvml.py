"""Unit tests for NVML-style utilization sampling."""

import numpy as np
import pytest

from repro.sim import Environment
from repro.simcuda import NvmlSampler, SimGPU, moving_average


def test_sampler_sees_busy_gpu():
    env = Environment()
    gpu = SimGPU(env, 0)
    sampler = NvmlSampler(env, [gpu])
    sampler.start()
    gpu.launch(1.0)
    env.run(until=2.0)
    sampler.stop()
    times, utils = sampler.series(0)
    # Samples within the first second should read ~100%, later ones 0%.
    early = utils[times <= 1.0]
    late = utils[times >= 1.4]
    assert np.all(early > 99)
    assert np.all(late < 1)


def test_sampler_partial_window():
    env = Environment()
    gpu = SimGPU(env, 0)
    sampler = NvmlSampler(env, [gpu], query_interval_s=0.2, sample_window_s=0.2)
    sampler.start()
    gpu.launch(0.1)  # busy for half of the first window
    env.run(until=0.25)
    times, utils = sampler.series(0)
    assert utils[0] == pytest.approx(50.0, abs=1.0)


def test_average_utilization_across_gpus():
    env = Environment()
    g0, g1 = SimGPU(env, 0), SimGPU(env, 1)
    sampler = NvmlSampler(env, [g0, g1])
    sampler.start()
    g0.launch(2.0)  # g1 stays idle
    env.run(until=2.0)
    avg = sampler.average_utilization()
    assert 40 <= avg <= 60
    assert sampler.average_utilization(0) > 90
    assert sampler.average_utilization(1) < 5


def test_sampler_validation():
    env = Environment()
    with pytest.raises(ValueError):
        NvmlSampler(env, [], query_interval_s=0)


def test_moving_average_basic():
    vals = [0, 10, 20, 30, 40]
    out = moving_average(vals, window=2)
    assert out == pytest.approx([0, 5, 15, 25, 35])


def test_moving_average_window_one_is_identity():
    vals = np.array([3.0, 1.0, 4.0])
    assert np.array_equal(moving_average(vals, 1), vals)


def test_moving_average_warmup_grows():
    out = moving_average([10, 20, 30, 40, 50], window=5)
    assert out[0] == 10
    assert out[4] == pytest.approx(30)


def test_moving_average_empty_and_invalid():
    assert moving_average([], 5).size == 0
    with pytest.raises(ValueError):
        moving_average([1], 0)
