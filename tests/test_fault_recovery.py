"""Crash/recovery paths: injected API-server death, RPC timeouts and
retries, orphaned-request rescue, and seeded chaos runs.

The chaos tests are property-style: under a seeded schedule of mid-call
server crashes, message drops and partition windows, every invocation of
a mixed workload run must reach a terminal status, the invariant auditor
must find nothing, and every GPU must end up schedulable again.
"""

import pytest

from repro.core import (
    DgsfConfig,
    FaultPlan,
    GuestRpcError,
    audit_deployment,
    audit_gpu_server,
)
from repro.core.deployment import DgsfDeployment
from repro.experiments.runner import make_plan, run_chaos_scenario
from repro.faas import FunctionSpec
from repro.simcuda.types import GB
from repro.simnet import LinkFaultInjector
from repro.testing import make_world


# --- detection + re-bring-up -------------------------------------------------

def test_idle_server_crash_detected_and_restarted():
    world = make_world(DgsfConfig(num_gpus=1))
    server = world.gpu_server.api_servers[0]
    device = world.gpu_server.devices[0]
    base = device.mem_used
    server.crash()
    assert server.dead
    assert device.mem_used < base  # the 755 MB idle footprint was freed
    world.env.run(until=world.env.now + 10.0)
    assert not server.dead and not server.recovering
    assert server.schedulable
    assert world.monitor.crashes_detected == 1
    assert world.gpu_server.servers_restarted == 1
    assert device.mem_used == base  # footprint re-charged by re-bring-up
    audit_gpu_server(
        world.gpu_server, end_state=True, check_schedulable=True
    ).raise_if_failed()


def test_missed_heartbeats_declare_server_dead():
    """A server whose §V-A ③ stats stream goes silent (hung process) is
    crashed by the monitor's health loop and brought back up."""
    world = make_world(DgsfConfig(num_gpus=1))
    server = world.gpu_server.api_servers[0]
    server._stats_generation += 1  # silence the stats loop: a hung process
    world.env.run(until=world.env.now + 15.0)
    assert server.crashes == 1
    assert world.monitor.crashes_detected == 1
    assert world.gpu_server.servers_restarted == 1
    assert server.schedulable


def test_crash_between_grant_and_session_requeues_request():
    """A request granted a server that dies before the session begins is
    transparently re-queued and granted the restarted server."""
    world = make_world(DgsfConfig(num_gpus=1))
    monitor = world.monitor
    req = monitor.submit_request(1 * GB)
    server = world.env.run(until=req.granted)
    server.crash()
    clone = world.env.run(until=req.resubmitted)
    assert req.superseded is clone
    assert monitor.requests_requeued == 1
    replacement = world.env.run(until=clone.granted)
    assert replacement is server  # same (only) server, re-brought-up
    assert not server.dead
    monitor.cancel(clone)
    audit_gpu_server(
        world.gpu_server, end_state=True, check_schedulable=True
    ).raise_if_failed()


def test_requeued_request_does_not_double_count_queue_wait():
    """Regression: a crash-requeued clone kept the orphan's original
    submit time, so the wait already accounted to the first grant was
    reported again on the clone's grant — the two ``gpu_request`` queue
    spans overlapped and summed to more than the invocation's wall wait
    (critical-path coverage could exceed 100%).  The clone's accounting
    window must start at the requeue."""
    world = make_world(DgsfConfig(num_gpus=1, tracing_enabled=True))
    monitor = world.monitor
    env = world.env
    t_submit = env.now
    req = monitor.submit_request(1 * GB)
    server = env.run(until=req.granted)
    env.run(until=env.now + 1.0)  # let some granted-but-unattached time pass
    t_crash = env.now
    server.crash()
    clone = env.run(until=req.resubmitted)
    assert clone.accounted_from >= t_crash
    assert clone.submitted_at == req.submitted_at  # provenance preserved
    env.run(until=clone.granted)
    spans = [s for s in world.dep.tracer.spans(cat="queue")
             if s.name == "gpu_request"]
    assert len(spans) == 2
    spans.sort(key=lambda s: s.t_start)
    # non-overlapping accounting windows whose sum is bounded by the wall
    assert spans[1].t_start >= spans[0].t_end
    total_wait = sum(s.t_end - s.t_start for s in spans)
    assert total_wait <= env.now - t_submit + 1e-9
    monitor.cancel(clone)
    audit_gpu_server(
        world.gpu_server, end_state=True, check_schedulable=True
    ).raise_if_failed()


# --- guest-side RPC timeout + retry ------------------------------------------

def test_guest_retries_idempotent_call_through_partition():
    world = make_world()
    guest, api_server, rpc_server = world.attach_guest(rpc_timeout_s=5.0)
    conn = guest.rpc.endpoint.connection
    t0 = world.env.now
    conn.faults = LinkFaultInjector(None, partitions=[(t0, t0 + 6.0)])

    def call():
        yield from guest.cudaDeviceSynchronize()
        return world.env.now - t0

    proc = world.env.process(call())
    world.env.run(until=proc)
    # dropped at t0 and at the first retry (t0+5.25); second retry lands
    # after the partition heals
    assert guest.rpc_timeouts == 2
    assert guest.rpc_retries == 2
    assert proc.value > 10.0
    conn.faults = None
    world.detach_guest(guest, api_server, rpc_server)


def test_non_idempotent_call_fails_without_retry():
    world = make_world()
    guest, api_server, rpc_server = world.attach_guest(rpc_timeout_s=2.0)
    conn = guest.rpc.endpoint.connection
    conn.faults = LinkFaultInjector(
        None, partitions=[(world.env.now, float("inf"))]
    )

    def call():
        with pytest.raises(GuestRpcError):
            yield from guest.cudaMalloc(1024)

    proc = world.env.process(call())
    world.env.run(until=proc)
    assert guest.rpc_timeouts == 1
    assert guest.rpc_retries == 0  # cudaMalloc is not idempotent
    conn.faults = None
    world.detach_guest(guest, api_server, rpc_server)


# --- end-to-end: crash under an attached function ----------------------------

def test_mid_session_crash_fails_function_and_recovers():
    plan = FaultPlan(server_crash_prob=1.0, crash_after_calls=(6, 6), max_crashes=1)
    config = DgsfConfig(
        num_gpus=1,
        fault_plan=plan,
        rpc_timeout_s=1.0,
        rpc_max_retries=1,
        rpc_retry_backoff_s=0.25,
    )
    dep = DgsfDeployment(config)
    dep.setup()

    def victim(fc):
        gpu = yield from fc.acquire_gpu()
        for _ in range(10):
            yield from gpu.cudaDeviceSynchronize()
        return "survived"

    dep.platform.register(FunctionSpec("victim", victim, gpu_mem_bytes=1 * GB))
    inv, proc = dep.platform.invoke("victim")
    with pytest.raises(GuestRpcError):
        dep.env.run(until=proc)
    assert inv.status == "failed"
    dep.env.run(until=dep.env.now + 15.0)
    server = dep.gpu_server.api_servers[0]
    assert server.schedulable
    assert dep.gpu_server.monitor.crashes_detected == 1
    assert dep.gpu_server.servers_restarted == 1
    audit_deployment(dep, end_state=True, check_schedulable=True).raise_if_failed()


# --- seeded chaos ------------------------------------------------------------

CHAOS_PLAN = FaultPlan(
    server_crash_prob=0.2,
    crash_after_calls=(1, 20),
    link_drop_prob=0.01,
    delay_spike_prob=0.02,
    delay_spike_s=0.2,
    partitions=((40.0, 43.0),),
)


def chaos_config(seed: int) -> DgsfConfig:
    return DgsfConfig(
        num_gpus=2,
        api_servers_per_gpu=2,
        seed=seed,
        fault_plan=CHAOS_PLAN,
        rpc_timeout_s=20.0,
        rpc_max_retries=2,
        rpc_retry_backoff_s=0.5,
        heartbeat_timeout_s=2.0,
    )


@pytest.mark.parametrize("seed", [7, 11])
def test_chaos_mixed_run_terminates_clean(seed):
    plan = make_plan("exponential", seed=seed, copies=2)
    result = run_chaos_scenario(chaos_config(seed), plan)
    assert result.outcomes.total == len(plan)
    assert result.outcomes.all_terminal, result.outcomes.counts
    result.audit.raise_if_failed()
    # every detected crash was recovered
    assert result.servers_restarted == result.crashes_detected
    # at least some invocations made it through despite the faults
    assert result.outcomes.counts.get("completed", 0) > 0


def test_chaos_run_is_deterministic():
    def fingerprint():
        plan = make_plan("exponential", seed=7, copies=2)
        result = run_chaos_scenario(chaos_config(7), plan)
        return [
            (inv.function_name, inv.status, round(inv.t_end, 9))
            for inv in result.invocations
        ], result.crashes_detected

    assert fingerprint() == fingerprint()
