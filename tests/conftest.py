"""Shared fixtures for the test suite (thin wrapper over repro.testing).

World fixtures audit the deployment's scheduler/memory invariants at
teardown: a test that passes but leaks a charge or corrupts the byte
accounting fails here instead of poisoning a later test.
"""

import pytest

from repro.testing import DgsfWorld, make_world  # noqa: F401 (re-export)
from repro.core import DgsfConfig, audit_deployment


@pytest.fixture
def world() -> DgsfWorld:
    """Default 4-GPU, no-sharing, all-optimizations world."""
    w = make_world()
    yield w
    audit_deployment(w.dep).raise_if_failed()


@pytest.fixture
def world_2gpu_sharing() -> DgsfWorld:
    w = make_world(DgsfConfig(num_gpus=2, api_servers_per_gpu=2))
    yield w
    audit_deployment(w.dep).raise_if_failed()
