"""Shared fixtures for the test suite (thin wrapper over repro.testing)."""

import pytest

from repro.testing import DgsfWorld, make_world  # noqa: F401 (re-export)
from repro.core import DgsfConfig


@pytest.fixture
def world() -> DgsfWorld:
    """Default 4-GPU, no-sharing, all-optimizations world."""
    return make_world()


@pytest.fixture
def world_2gpu_sharing() -> DgsfWorld:
    return make_world(DgsfConfig(num_gpus=2, api_servers_per_gpu=2))
