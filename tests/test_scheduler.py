"""Dispatch disciplines: aged SFF starvation bound, MQFQ fairness/stickiness.

The starvation repro (satellite of ISSUE 4) drives the monitor directly:
a large hinted request behind a continuous stream of small feasible
requests waits for the whole stream under plain ``sff`` (its wait grows
with the stream length — unbounded starvation), but under ``sff_aged``
it is granted within its configured bound plus one session's drain time.
"""

import pytest

from repro.core import DgsfConfig
from repro.core.scheduler import (
    DISCIPLINES, AgedSffScheduler, make_scheduler, size_class,
)
from repro.errors import ConfigurationError
from repro.simcuda.types import GB
from repro.testing import make_world


def grant(world, req):
    return world.env.run(until=req.granted)


def occupy(world, declared=1 * GB, flow_key=None, expected=0.0):
    req = world.monitor.submit_request(
        declared, expected_duration_s=expected, flow_key=flow_key
    )
    server = grant(world, req)
    server.begin_session(declared)
    return server


def release(world, server):
    proc = world.env.process(server.end_session())
    world.env.run(until=proc)
    world.monitor.release(server)


# -- configuration ------------------------------------------------------------
def test_config_accepts_new_disciplines():
    for disc in DISCIPLINES:
        assert DgsfConfig(queue_discipline=disc).queue_discipline == disc


def test_config_validates_scheduler_knobs():
    with pytest.raises(ConfigurationError):
        DgsfConfig(sff_aging_factor=0.0)
    with pytest.raises(ConfigurationError):
        DgsfConfig(sff_aging_factor=-1.0)
    with pytest.raises(ConfigurationError):
        DgsfConfig(mqfq_throttle_window_s=-0.1)
    DgsfConfig(mqfq_throttle_window_s=0.0)  # pure start-tag order is valid


def test_make_scheduler_rejects_unknown_discipline():
    with pytest.raises(ConfigurationError):
        make_scheduler("lifo", monitor=None)


def test_size_class_boundaries():
    assert size_class(600 * 1024 * 1024) == "small"
    assert size_class(2 * GB - 1) == "small"
    assert size_class(2 * GB) == "medium"
    assert size_class(8 * GB - 1) == "medium"
    assert size_class(8 * GB) == "large"
    assert size_class(14 * GB) == "large"


# -- aged SFF -----------------------------------------------------------------
BIG_EXPECTED_S = 30.0
HOLD_S = 2.0


def _run_starvation(discipline: str, n_smalls: int, aging: float = 1.0) -> float:
    """Queue wait of one large hinted request behind ``n_smalls`` small
    feasible requests on a single-server world; the stream keeps at least
    one small request queued whenever the server frees up."""
    world = make_world(DgsfConfig(num_gpus=1, queue_discipline=discipline,
                                  sff_aging_factor=aging))
    env, monitor = world.env, world.monitor
    blocker = occupy(world)
    big = monitor.submit_request(2 * GB, expected_duration_s=BIG_EXPECTED_S)

    def small_session(req):
        server = yield req.granted
        server.begin_session(1 * GB)
        yield env.timeout(HOLD_S)
        yield from server.end_session()
        monitor.release(server)

    def feeder():
        for _ in range(n_smalls):
            req = monitor.submit_request(1 * GB, expected_duration_s=2.0)
            env.process(small_session(req))
            yield env.timeout(HOLD_S / 2)

    env.process(feeder())
    release(world, blocker)
    env.run(until=big.granted)
    assert big.granted.triggered
    return big.granted_at - big.submitted_at


def test_sff_starves_large_request_unboundedly():
    """Plain SFF makes the large request wait out the entire small stream:
    doubling the stream roughly doubles the wait — no bound exists."""
    short_stream = _run_starvation("sff", n_smalls=15)
    long_stream = _run_starvation("sff", n_smalls=30)
    assert long_stream > short_stream + 20.0
    # and the wait sails past the bound sff_aged would have enforced
    assert long_stream > BIG_EXPECTED_S + HOLD_S + 1.0


def test_sff_aged_bounds_the_starvation():
    """Same workload, ``sff_aged``: once the large request's wait reaches
    ``expected / aging_factor`` it blocks the line FCFS-style, so its wait
    is bounded by the aging bound plus one small session's drain time —
    independent of how long the small stream runs."""
    bound = BIG_EXPECTED_S / 1.0
    for n_smalls in (15, 30):
        wait = _run_starvation("sff_aged", n_smalls=n_smalls, aging=1.0)
        assert wait <= bound + HOLD_S + 1.0


def test_sff_aged_starvation_grant_counted():
    world = make_world(DgsfConfig(num_gpus=1, queue_discipline="sff_aged",
                                  sff_aging_factor=1.0))
    # hint the blocker so its own grant doesn't count as a starvation grant
    blocker = occupy(world, expected=5.0)
    big = world.monitor.submit_request(2 * GB, expected_duration_s=1.0)
    world.env.run(until=world.env.now + 2.0)  # wait past the 1 s bound
    release(world, blocker)
    grant(world, big)
    assert world.dep.metrics.total(
        "scheduler.starvation_grants", discipline="sff_aged"
    ) == 1


def test_sff_aged_credit_reorders_before_the_bound():
    """An older request's wait credit can beat a shorter newcomer even
    before anything is starved (aged key = expected - factor * wait)."""
    world = make_world(DgsfConfig(num_gpus=1, queue_discipline="sff_aged",
                                  sff_aging_factor=1.0))
    blocker = occupy(world)
    old = world.monitor.submit_request(1 * GB, expected_duration_s=10.0)
    world.env.run(until=world.env.now + 4.0)
    new = world.monitor.submit_request(1 * GB, expected_duration_s=8.0)
    release(world, blocker)  # aged keys: old 10-4=6 beats new 8-0=8
    server = grant(world, old)
    assert not new.granted.triggered
    server.begin_session(1 * GB)
    release(world, server)
    grant(world, new)


def test_sff_aged_unhinted_degrades_to_fcfs():
    """With no duration hint the starvation bound is zero, so every
    request is immediately 'starved' and dispatch is plain FCFS — an
    infeasible large head blocks a small later request (conservative
    treatment of unknown cost)."""
    world = make_world(DgsfConfig(num_gpus=1, api_servers_per_gpu=2,
                                  queue_discipline="sff_aged"))
    s1 = occupy(world, 10 * GB)
    world.monitor.submit_request(12 * GB)
    small = world.monitor.submit_request(1 * GB)
    world.env.run(until=world.env.now + 0.5)
    assert not small.granted.triggered
    release(world, s1)


def test_aged_scheduler_rejects_bad_factor():
    with pytest.raises(ConfigurationError):
        AgedSffScheduler(monitor=None, aging_factor=0.0)


# -- MQFQ ---------------------------------------------------------------------
def test_mqfq_overtakes_blocked_large_flow():
    """A small flow is not blocked by an infeasible large flow's head
    (the §VIII-D FCFS pathology), as long as it stays inside the window."""
    world = make_world(DgsfConfig(num_gpus=1, api_servers_per_gpu=2,
                                  queue_discipline="mqfq"))
    s1 = occupy(world, 10 * GB)
    big = world.monitor.submit_request(12 * GB, expected_duration_s=30,
                                       flow_key="big")
    small = world.monitor.submit_request(1 * GB, expected_duration_s=5,
                                         flow_key="small")
    world.env.run(until=world.env.now + 0.5)
    assert not big.granted.triggered
    assert small.granted.triggered
    release(world, s1)


def test_mqfq_throttle_window_bounds_overtaking():
    """A blocked flow pins virtual time, so other flows can run ahead by
    at most the throttle window ``T`` of virtual time before they stall;
    once the blocked flow is served, the clock advances and they resume."""
    world = make_world(DgsfConfig(num_gpus=1, api_servers_per_gpu=2,
                                  queue_discipline="mqfq",
                                  mqfq_throttle_window_s=6.0))
    blocker = occupy(world, 10 * GB)
    big = world.monitor.submit_request(12 * GB, expected_duration_s=30.0,
                                       flow_key="big")  # infeasible: pins V=0
    # each small costs 5 virtual seconds; start tags run 0, 5, 10, ...
    s = occupy(world, 1 * GB, flow_key="small", expected=5.0)
    release(world, s)
    s = occupy(world, 1 * GB, flow_key="small", expected=5.0)
    release(world, s)
    third = world.monitor.submit_request(1 * GB, expected_duration_s=5.0,
                                         flow_key="small")
    world.env.run(until=world.env.now + 0.5)
    # start tag 10 > V(0) + T(6): throttled despite a free, fitting GPU
    assert not third.granted.triggered
    release(world, blocker)  # big becomes feasible and is served
    server = grant(world, big)
    assert server is not None
    # with the big flow drained, V advances to the small flow's start tag
    grant(world, third)


def test_mqfq_wide_window_does_not_throttle():
    world = make_world(DgsfConfig(num_gpus=1, api_servers_per_gpu=2,
                                  queue_discipline="mqfq",
                                  mqfq_throttle_window_s=100.0))
    blocker = occupy(world, 10 * GB)
    world.monitor.submit_request(12 * GB, expected_duration_s=30.0,
                                 flow_key="big")
    for _ in range(3):
        s = occupy(world, 1 * GB, flow_key="small", expected=5.0)
        release(world, s)
    release(world, blocker)


def test_mqfq_stickiness_prefers_last_device():
    """A repeat invocation of a flow goes back to the GPU that served it
    last (warm API-server/artifact-cache state) even when the placement
    policy would choose another GPU."""
    world = make_world(DgsfConfig(num_gpus=2, api_servers_per_gpu=2,
                                  policy="worst_fit", queue_discipline="mqfq"))
    warm1 = occupy(world, 1 * GB, flow_key="warm", expected=1.0)
    warm_device = warm1.home_device_id
    release(world, warm1)
    # load the warm device so worst-fit would now pick the other GPU
    other = occupy(world, 4 * GB, flow_key="other", expected=1.0)
    assert other.home_device_id == warm_device  # worst-fit tie-break
    warm2 = occupy(world, 1 * GB, flow_key="warm", expected=1.0)
    assert warm2.home_device_id == warm_device  # sticky, against worst-fit
    metrics = world.dep.metrics
    assert metrics.total("scheduler.sticky_hits", discipline="mqfq") >= 1
    # a cold flow has no sticky device and follows the policy instead
    cold = occupy(world, 1 * GB, flow_key="cold", expected=1.0)
    assert cold.home_device_id != warm_device
    for server in (other, warm2, cold):
        release(world, server)


def test_mqfq_cancel_keeps_flow_in_sync():
    world = make_world(DgsfConfig(num_gpus=1, queue_discipline="mqfq"))
    blocker = occupy(world)
    first = world.monitor.submit_request(1 * GB, expected_duration_s=2.0,
                                         flow_key="f")
    second = world.monitor.submit_request(1 * GB, expected_duration_s=2.0,
                                          flow_key="f")
    world.monitor.cancel(first)
    assert world.monitor.queue_length == 1
    release(world, blocker)
    grant(world, second)
    assert not first.granted.triggered


# -- unhinted fallback flows (regression: shared-flow starvation) -------------
def test_mqfq_unhinted_fallback_flow_is_per_invocation():
    """Unhinted requests with invocation identity must not share a flow;
    the size-class fallback survives only for anonymous submissions."""
    world = make_world(DgsfConfig(num_gpus=1, queue_discipline="mqfq"))
    sched = world.monitor.scheduler
    blocker = occupy(world)
    r1 = world.monitor.submit_request(1 * GB, invocation_id=101)
    r2 = world.monitor.submit_request(1 * GB, invocation_id=102)
    anon = world.monitor.submit_request(1 * GB)
    assert sched.flow_key(r1) == "~inv:101"
    assert sched.flow_key(r2) == "~inv:102"
    assert sched.flow_key(r1) != sched.flow_key(r2)
    assert sched.flow_key(anon) == "~small"
    for req in (r1, r2, anon):
        world.monitor.cancel(req)
    # drained per-invocation flows are pruned, not leaked
    assert not [k for k in sched._flows if k.startswith("~inv:")]
    release(world, blocker)


def test_mqfq_chatty_unhinted_does_not_penalize_classmate():
    """Regression: unhinted requests used to share one ``~{size_class}``
    flow, so a served chatty request advanced the shared flow's virtual
    tags and every unhinted classmate enqueued afterwards reactivated at
    the chatty function's *finish* tag — queued behind every hinted flow
    despite having consumed nothing.  With per-invocation fallback flows
    the classmate activates at the current virtual time and competes
    start-tag-fairly with hinted traffic."""
    world = make_world(DgsfConfig(num_gpus=1, queue_discipline="mqfq"))
    monitor = world.monitor
    blocker = occupy(world)
    chatty = monitor.submit_request(1 * GB, invocation_id=1,
                                    expected_duration_s=30.0)
    release(world, blocker)
    server = grant(world, chatty)
    server.begin_session(1 * GB)
    # while the chatty request holds the only server, a hinted flow and
    # an unhinted classmate both queue up
    o1 = monitor.submit_request(1 * GB, expected_duration_s=1.0,
                                flow_key="other")
    o2 = monitor.submit_request(1 * GB, expected_duration_s=1.0,
                                flow_key="other")
    victim = monitor.submit_request(1 * GB, invocation_id=2,
                                    expected_duration_s=1.0)
    release(world, server)
    s = grant(world, o1)
    s.begin_session(1 * GB)
    release(world, s)
    # the classmate's flow did NOT inherit the chatty 30 s finish tag:
    # it beats the hinted flow's second request under start-tag order
    s = grant(world, victim)
    assert not o2.granted.triggered
    s.begin_session(1 * GB)
    release(world, s)
    s = grant(world, o2)
    s.begin_session(1 * GB)
    release(world, s)


# -- pending-wait flush (regression: survivorship bias) -----------------------
def test_pending_waits_flushed_at_teardown():
    """Regression: ``scheduler.queue_wait_s`` recorded only at grant time,
    so a saturated run's still-queued requests — the ones that define the
    tail — never appeared.  ``observe_pending_waits`` folds them in under
    ``outcome="abandoned"``; grants stay labeled ``outcome="granted"``."""
    world = make_world(DgsfConfig(num_gpus=1, queue_discipline="fcfs"))
    blocker = occupy(world)
    stuck = world.monitor.submit_request(1 * GB)
    world.env.run(until=world.env.now + 5.0)
    assert not stuck.granted.triggered
    world.monitor.observe_pending_waits()
    metrics = world.dep.metrics
    abandoned = list(metrics.find("scheduler.queue_wait_s",
                                  discipline="fcfs", outcome="abandoned"))
    assert abandoned and abandoned[0].count == 1
    assert abandoned[0].observations[0] >= 5.0
    # the blocker's own grant landed in the granted-labeled histogram
    granted = list(metrics.find("scheduler.queue_wait_s",
                                discipline="fcfs", outcome="granted"))
    assert granted and granted[0].count == 1
    # the abandoned wait also feeds the per-class max-wait bookkeeping
    assert world.monitor.scheduler.max_wait_s["small"] >= 5.0
    world.monitor.cancel(stuck)
    release(world, blocker)


# -- metrics ------------------------------------------------------------------
def test_scheduler_metrics_recorded():
    world = make_world(DgsfConfig(num_gpus=1, queue_discipline="fcfs"))
    server = occupy(world)
    release(world, server)
    metrics = world.dep.metrics
    assert metrics.total("scheduler.enqueued", discipline="fcfs") == 1
    assert metrics.total("scheduler.granted", discipline="fcfs") == 1
    hists = list(metrics.find("scheduler.queue_wait_s",
                              discipline="fcfs", size_class="small"))
    assert hists and hists[0].count == 1
    assert world.monitor.scheduler.max_wait_s["small"] >= 0.0
