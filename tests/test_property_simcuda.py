"""Property-based tests for the simulated CUDA memory subsystem."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.sim import Environment
from repro.simcuda import SimGPU, CudaError
from repro.simcuda.phys import PhysicalAllocation
from repro.simcuda.va import AddressSpace, VA_ALIGNMENT
from repro.simnet.serialization import payload_size


sizes = st.lists(st.integers(min_value=1, max_value=1 << 22), min_size=1, max_size=12)


@given(sizes)
@settings(max_examples=50, deadline=None)
def test_address_space_reservations_never_overlap(size_list):
    space = AddressSpace()
    ranges = []
    for size in size_list:
        va = space.reserve(size)
        ranges.append((va, va + size))
    ranges.sort()
    for (s1, e1), (s2, e2) in zip(ranges, ranges[1:]):
        assert e1 <= s2, "reserved ranges must be disjoint"


@given(sizes)
@settings(max_examples=50, deadline=None)
def test_address_space_snapshot_rebuild_roundtrip(size_list):
    """Any mapping layout can be reproduced exactly at fixed addresses in
    a fresh space — the migration invariant."""
    src = AddressSpace()
    for size in size_list:
        alloc = PhysicalAllocation(0, size, payload_cap=64)
        va = src.reserve(size)
        src.map(va, alloc)
    dst = AddressSpace()
    for va, size in src.snapshot():
        got = dst.reserve(size, fixed_addr=va)
        assert got == va
        dst.map(va, PhysicalAllocation(1, size, payload_cap=64))
    assert dst.snapshot() == src.snapshot()


@given(sizes)
@settings(max_examples=50, deadline=None)
def test_translate_agrees_with_mapping_layout(size_list):
    space = AddressSpace()
    mapped = []
    for size in size_list:
        alloc = PhysicalAllocation(0, size, payload_cap=64)
        va = space.reserve(size)
        space.map(va, alloc)
        mapped.append((va, size, alloc))
    for va, size, alloc in mapped:
        for offset in {0, size // 2, size - 1}:
            mapping, got_offset = space.translate(va + offset)
            assert mapping.allocation is alloc
            assert got_offset == offset


@given(st.lists(st.integers(min_value=1, max_value=1 << 28), min_size=1, max_size=20))
@settings(max_examples=50, deadline=None)
def test_device_memory_accounting_balances(size_list):
    env = Environment()
    gpu = SimGPU(env, 0)
    live = []
    for size in size_list:
        try:
            live.append(gpu.alloc_phys(size))
        except CudaError:
            break
    assert gpu.mem_used == sum(a.size for a in live)
    for alloc in live:
        gpu.free_phys(alloc)
    assert gpu.mem_used == 0


@given(st.integers(min_value=1, max_value=1 << 20), st.integers(min_value=16, max_value=4096))
@settings(max_examples=50, deadline=None)
def test_payload_window_write_read_consistent(size, cap):
    alloc = PhysicalAllocation(0, size, payload_cap=cap)
    rng = np.random.default_rng(0)
    data = rng.integers(0, 256, size=min(size, cap), dtype=np.uint8)
    alloc.write(0, data)
    back = alloc.read(0, len(data))
    assert np.array_equal(back, data)


payload_values = st.recursive(
    st.one_of(
        st.none(),
        st.booleans(),
        st.integers(min_value=-2**31, max_value=2**31),
        st.floats(allow_nan=False, allow_infinity=False),
        st.text(max_size=30),
        st.binary(max_size=64),
    ),
    lambda children: st.one_of(
        st.lists(children, max_size=5),
        st.dictionaries(st.text(max_size=8), children, max_size=4),
    ),
    max_leaves=20,
)


@given(payload_values)
@settings(max_examples=80, deadline=None)
def test_payload_size_positive_and_superadditive(value):
    size = payload_size(value)
    assert size >= 1
    # wrapping in a list adds container overhead, never shrinks
    assert payload_size([value]) > size


@given(st.integers(min_value=1, max_value=1 << 30))
@settings(max_examples=30, deadline=None)
def test_va_alignment_always_respected(size):
    space = AddressSpace()
    va = space.reserve(size)
    assert va % VA_ALIGNMENT == 0
    assert space.reservations[va] >= size
