"""Batching under faults: a retried sync call must not replay the batch.

The guest flushes its batch buffer (one-way) immediately before every
synchronous round trip.  If that round trip's *reply* is lost and the
idempotent call is retried, the already-shipped batch must not be sent —
or applied — a second time: ``_flush_now`` hands the buffer off before
the send, and the retry loop sits below the flush.
"""

import pytest

from repro.core.config import DgsfConfig, OptimizationFlags
from repro.simnet import LinkFaultInjector
from repro.testing import make_world


def test_retried_sync_does_not_replay_batched_calls():
    world = make_world(DgsfConfig(num_gpus=1))
    guest, api_server, _ = world.attach_guest(
        flags=OptimizationFlags.all(),
        rpc_timeout_s=0.5,
        rpc_retry_backoff_s=0.25,
    )
    conn = guest.rpc.endpoint.connection
    n_launches = 6

    def body():
        token = yield from guest.cudaGetFunction("timed")
        handled_before = api_server.requests_handled
        for _ in range(n_launches):
            yield from guest.cudaLaunchKernel(token, args=(0.0001,))
        assert len(guest._batch) == n_launches  # buffered, nothing sent yet
        # Open a partition that swallows the sync call's reply (born a few
        # ms from now) but heals before the retry fires at now+0.75: the
        # batch and the sync request leave *now*, before the window opens.
        now = world.env.now
        conn.faults = LinkFaultInjector(None, partitions=[(now + 1e-4, now + 0.2)])
        yield from guest.cudaDeviceSynchronize()
        return handled_before

    handled_before = world.drive(body())

    # The guest saw exactly one lost reply and one retry.
    assert guest.rpc_timeouts == 1
    assert guest.rpc_retries == 1
    assert guest._batch == []
    # Server side: the batch was applied exactly once (n_launches calls),
    # the sync twice (original + retry) — never 2 * n_launches.
    handled = api_server.requests_handled - handled_before
    assert handled == n_launches + 2
    # Client side: the batch crossed the wire in exactly one message.
    assert guest.calls_batched == n_launches
    assert guest.messages_sent >= 3  # attach/getFunction + batch + 2 syncs


def test_flush_threshold_under_faults_still_applies_once():
    """A threshold-triggered mid-stream flush followed by a retried sync:
    neither flush may be duplicated by the retry."""
    world = make_world(DgsfConfig(num_gpus=1))
    guest, api_server, _ = world.attach_guest(
        flags=OptimizationFlags.all(),
        batch_flush_threshold=4,
        rpc_timeout_s=0.5,
        rpc_retry_backoff_s=0.25,
    )
    conn = guest.rpc.endpoint.connection

    def body():
        token = yield from guest.cudaGetFunction("timed")
        handled_before = api_server.requests_handled
        for _ in range(10):  # two threshold flushes (4+4) + 2 left over
            yield from guest.cudaLaunchKernel(token, args=(0.0001,))
        assert len(guest._batch) == 2
        now = world.env.now
        conn.faults = LinkFaultInjector(None, partitions=[(now + 1e-4, now + 0.2)])
        yield from guest.cudaDeviceSynchronize()
        return handled_before

    handled_before = world.drive(body())
    assert guest.rpc_retries == 1
    handled = api_server.requests_handled - handled_before
    # 10 launches once each + sync applied twice.
    assert handled == 10 + 2
    assert guest._batch == []


def test_exhausted_retries_fail_cleanly_without_batch_replay():
    """When every retry reply is lost the guest raises GuestRpcError; the
    batch still went over exactly once."""
    from repro.core.guest import GuestRpcError

    world = make_world(DgsfConfig(num_gpus=1))
    guest, api_server, _ = world.attach_guest(
        flags=OptimizationFlags.all(),
        rpc_timeout_s=0.2,
        rpc_max_retries=1,
        rpc_retry_backoff_s=0.1,
    )
    conn = guest.rpc.endpoint.connection

    def body():
        token = yield from guest.cudaGetFunction("timed")
        handled_before = api_server.requests_handled
        for _ in range(3):
            yield from guest.cudaLaunchKernel(token, args=(0.0001,))
        now = world.env.now
        # Window outlives every retry: all sync replies are lost.
        conn.faults = LinkFaultInjector(None, partitions=[(now + 1e-4, now + 60.0)])
        with pytest.raises(GuestRpcError):
            yield from guest.cudaDeviceSynchronize()
        return handled_before

    handled_before = world.drive(body())
    assert guest.rpc_timeouts == 2  # original + 1 retry
    handled = api_server.requests_handled - handled_before
    # Batch once, first sync once; the retry's *request* died inside the
    # partition window.  Crucially not 2 * 3: the batch never re-flushed.
    assert handled == 3 + 1
