#!/usr/bin/env python
"""Serverless ML inference: the paper's mixed-workload scenario.

Deploys the six paper workloads on a 4-GPU DGSF server, drives them with
a Poisson-like arrival process (the §VIII-D methodology), and compares
*no sharing* against *sharing with two API servers per GPU* — printing
the provider's end-to-end time, the per-workload queueing/execution
split, and the GPU utilization gain.

Run:  python examples/serverless_inference.py
"""

from repro.core import DgsfConfig
from repro.experiments.runner import make_plan, run_mixed_scenario
from repro.experiments.reporting import render_table, pct_change


def main():
    # Ten of each workload, exponential inter-arrival gaps (mean 2 s),
    # shuffled in a random-but-consistent order.
    plan = make_plan("exponential", seed=7, copies=3, mean_gap_s=2.0)
    print(f"arrival plan: {len(plan)} invocations over "
          f"{plan.times.max():.0f} s of arrivals\n")

    results = {}
    for label, servers_per_gpu in (("no_sharing", 1), ("sharing_two", 2)):
        config = DgsfConfig(
            num_gpus=4,
            api_servers_per_gpu=servers_per_gpu,
            policy="worst_fit",
            seed=7,
        )
        result = run_mixed_scenario(config, plan, sample_utilization=True)
        results[label] = result
        rows = [ws.as_row() for ws in result.stats.per_workload.values()]
        print(render_table(
            f"--- {label}: provider end-to-end "
            f"{result.stats.provider_e2e_s:.1f} s, "
            f"avg GPU utilization {result.avg_utilization:.1f}% ---",
            rows,
        ))
        print()

    base = results["no_sharing"].stats
    shared = results["sharing_two"].stats
    print("sharing vs no sharing:")
    print(f"  provider end-to-end: "
          f"{pct_change(shared.provider_e2e_s, base.provider_e2e_s)}")
    print(f"  sum of function E2E: "
          f"{pct_change(shared.function_e2e_sum_s, base.function_e2e_sum_s)}")
    util_base = results["no_sharing"].avg_utilization
    util_shared = results["sharing_two"].avg_utilization
    print(f"  avg GPU utilization: {util_base:.1f}% -> {util_shared:.1f}%")


if __name__ == "__main__":
    main()
