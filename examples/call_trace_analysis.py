#!/usr/bin/env python
"""Analyze a workload's interposed call stream (the §V-C methodology).

DGSF's optimizations were designed by looking at what real frameworks
send through the CUDA API boundary.  This example attaches a
:class:`repro.core.tracing.CallTrace` to the guest library, runs an
ArcFace-style inference session, and prints:

* the call mix (how many of each API crossed the interposition layer),
* how each call was routed (localized / batched / remoted),
* which APIs dominate interposition time — the candidates the paper's
  optimizations target.

Run:  python examples/call_trace_analysis.py
"""

from repro.core import DgsfConfig
from repro.core.deployment import DgsfDeployment
from repro.core.guest import GuestLibrary
from repro.core.tracing import attach_trace
from repro.mllib import OnnxInferenceSession
from repro.simcuda.types import GB, MB
from repro.simnet.rpc import RpcClient
from repro.workloads import WORKLOADS


def main():
    dep = DgsfDeployment(DgsfConfig(num_gpus=1))
    dep.setup()
    server = dep.gpu_server.api_servers[0]
    conn = dep.network.connect(dep.fn_host, dep.gpu_host)
    server.begin_session(4 * GB)
    server.serve_endpoint(conn.b)
    guest = GuestLibrary(dep.env, RpcClient(conn.a), flags=dep.config.optimizations)
    trace = attach_trace(guest)

    spec = WORKLOADS["face_identification"].spec
    session = OnnxInferenceSession(dep.env, guest, spec)

    def scenario():
        yield from guest.attach(dep.kernels.names())
        yield from session.load()
        load_end = dep.env.now
        for _ in range(4):
            yield from session.run(input_bytes=1 * MB)
        yield from session.close()
        return load_end

    proc = dep.env.process(scenario())
    load_end = dep.env.run(until=proc)

    print(f"traced {len(trace)} interposed calls "
          f"({guest.calls_forwarded} crossed the network, "
          f"{guest.messages_sent} messages)\n")

    routes = trace.counts_by_route()
    total = sum(routes.values())
    print("routing of interposed calls:")
    for route in ("local", "batched", "remote"):
        n = routes.get(route, 0)
        print(f"  {route:8s} {n:6d}  ({n / total:5.1%})")

    print("\ntop APIs by interposition time (optimization targets):")
    for api, seconds in trace.top_by_time(8):
        print(f"  {api:28s} {seconds * 1000:9.1f} ms")

    inference = trace.between(load_end, dep.env.now)
    print(f"\ninference-phase slice: {len(inference)} calls, "
          f"{inference.counts_by_route()}")


if __name__ == "__main__":
    main()
