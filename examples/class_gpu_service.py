#!/usr/bin/env python
"""The paper's motivating case study (§III): a CUDA programming class.

100+ students run short CUDA jobs from a web IDE.  With GPU-enabled
containers the provider bills for the *container's* GPU the whole time a
student has the IDE open — even while they are just editing code.  With
DGSF the IDE runs in a cheap CPU container and a serverless function
grabs a disaggregated GPU only while CUDA code actually executes, so
"only GPU active use time is billed".

This example simulates an hour of a lab session: students alternate
editing (no GPU needed) and test runs (a short kernel), and we compare
GPU-hours billed under the two models.

Run:  python examples/class_gpu_service.py
"""

from repro.core import DgsfConfig
from repro.core.deployment import DgsfDeployment
from repro.faas import FunctionSpec
from repro.simcuda.types import GB, MB

N_STUDENTS = 24
SESSION_S = 3600.0          # one hour lab session
EDIT_S = 300.0              # editing time between test runs
RUN_KERNEL_S = 12.0         # one student test run's GPU work


def student_job(fc):
    """One student test run: compile output upload, kernel, results."""
    gpu = yield from fc.acquire_gpu()
    ptr = yield from gpu.cudaMalloc(64 * MB)
    yield from gpu.memcpyH2D(ptr, 64 * MB)
    fptr = yield from gpu.cudaGetFunction("timed")
    yield from gpu.cudaLaunchKernel(fptr, args=(RUN_KERNEL_S,))
    yield from gpu.cudaDeviceSynchronize()
    yield from gpu.memcpyD2H(ptr, 4096)
    yield from gpu.cudaFree(ptr)
    return "ok"


def main():
    dep = DgsfDeployment(DgsfConfig(num_gpus=4, api_servers_per_gpu=2))
    dep.setup()
    dep.platform.register(
        FunctionSpec("student-run", student_job, gpu_mem_bytes=1 * GB,
                     min_replicas=N_STUDENTS)
    )

    def student(env, student_id):
        """Edit → run → edit → run ... for the whole session."""
        rng_offset = (student_id * 37) % int(EDIT_S)
        yield env.timeout(rng_offset)  # staggered starts
        runs = 0
        while env.now < SESSION_S:
            yield env.timeout(EDIT_S)
            inv, proc = dep.platform.invoke("student-run")
            yield proc
            runs += 1
        return runs

    procs = [
        dep.env.process(student(dep.env, i), name=f"student-{i}")
        for i in range(N_STUDENTS)
    ]
    dep.env.run(until=dep.env.all_of(procs))

    invocations = dep.platform.invocations
    total_runs = len(invocations)
    gpu_busy_s = sum(
        inv.e2e_s - inv.phases.get("gpu_queue", 0.0) for inv in invocations
    )

    # Billing comparison.
    dedicated_gpu_hours = N_STUDENTS * SESSION_S / 3600.0
    dgsf_gpu_hours = gpu_busy_s / 3600.0
    mean_queue = sum(i.phases.get("gpu_queue", 0.0) for i in invocations) / total_runs

    print(f"{N_STUDENTS} students, {total_runs} test runs over a "
          f"{SESSION_S / 3600:.0f} h session")
    print(f"  GPU-enabled containers bill : {dedicated_gpu_hours:7.2f} GPU-hours")
    print(f"  DGSF bills (active use only): {dgsf_gpu_hours:7.2f} GPU-hours "
          f"({dgsf_gpu_hours / dedicated_gpu_hours:.1%} of dedicated)")
    print(f"  physical GPUs needed        : 4 (shared), "
          f"mean GPU queue wait {mean_queue:.2f} s")
    assert dgsf_gpu_hours < dedicated_gpu_hours / 5, \
        "DGSF should bill a small fraction of dedicated GPU time"


if __name__ == "__main__":
    main()
