#!/usr/bin/env python
"""Live migration demo: move a running function between GPUs.

Shows the §V-D mechanism end-to-end:

1. a function allocates device memory and fills it with data through the
   remoted CUDA API,
2. the API server is live-migrated from GPU 0 to GPU 1 — physical memory
   is copied but every *virtual address* is preserved via fixed-address
   ``cuMemAddressReserve`` in the destination context,
3. the function keeps running with its original pointers and its data
   intact, kernels re-resolve to the new context's function pointers, and
   the cuDNN handle is translated to a twin on the new GPU.

Run:  python examples/migration_demo.py
"""

import numpy as np

from repro.core import DgsfConfig
from repro.core.deployment import DgsfDeployment
from repro.core.guest import GuestLibrary
from repro.core.migration import migrate_api_server
from repro.simcuda.types import GB, MB
from repro.simnet.rpc import RpcClient


def main():
    dep = DgsfDeployment(DgsfConfig(num_gpus=2))
    dep.setup()
    env = dep.env
    server = dep.gpu_server.api_servers[0]

    # Wire a guest library straight to the API server (what the platform
    # does per invocation).
    conn = dep.network.connect(dep.fn_host, dep.gpu_host)
    server.begin_session(declared_bytes=2 * GB)
    server.serve_endpoint(conn.b)
    guest = GuestLibrary(env, RpcClient(conn.a), flags=dep.config.optimizations)

    def scenario():
        yield from guest.attach(["increment"])
        # The "application": one buffer with recognizable data + a handle.
        ptr = yield from guest.cudaMalloc(256 * MB)
        yield from guest.memcpyH2D(ptr, 256 * MB,
                                   payload=np.arange(100, dtype=np.uint8))
        cudnn = yield from guest.cudnnCreate()
        inc = yield from guest.cudaGetFunction("increment")
        yield from guest.cudaLaunchKernel(inc, args=(0.01, ptr, 100))
        yield from guest.cudaDeviceSynchronize()

        print(f"before migration: running on GPU {server.current_device_id}, "
              f"GPU0 used {dep.gpu_server.devices[0].mem_used // MB} MB, "
              f"GPU1 used {dep.gpu_server.devices[1].mem_used // MB} MB")
        va_map_before = server.context.address_space.snapshot()

        # --- live migration (normally triggered by the monitor) ---
        record = yield env.process(migrate_api_server(server, 1))
        print(f"migrated {record.moved_bytes // MB} MB in "
              f"{record.duration_s:.2f} s "
              f"(GPU {record.source_device} -> {record.target_device})")
        print(f"after migration:  running on GPU {server.current_device_id}, "
              f"GPU0 used {dep.gpu_server.devices[0].mem_used // MB} MB, "
              f"GPU1 used {dep.gpu_server.devices[1].mem_used // MB} MB")

        # Virtual addresses are identical — the application never noticed.
        assert server.context.address_space.snapshot() == va_map_before
        print("virtual address map identical across GPUs: OK")

        # The same pointer still works: launch again, read the data back.
        yield from guest.cudaLaunchKernel(inc, args=(0.01, ptr, 100))
        yield from guest.cudaDeviceSynchronize()
        data = yield from guest.memcpyD2H(ptr, 100)
        expected = (np.arange(100) + 2) % 256
        assert np.array_equal(data[:100], expected.astype(np.uint8))
        print("data intact and kernels still running after migration: OK")

        # The cuDNN handle transparently maps to a twin on GPU 1.
        yield from guest.cudnnOp(cudnn, "conv_fwd", 0.01, sync=True)
        print("cuDNN handle translated to the destination GPU: OK")

        yield from guest.cudaFree(ptr)

    proc = env.process(scenario())
    env.run(until=proc)


if __name__ == "__main__":
    main()
