#!/usr/bin/env python
"""Build your own GPU serverless workload.

Two patterns downstream users need:

1. **Scientific code via the CuPy-like API** — a Monte-Carlo pipeline
   written against :class:`repro.mllib.cupylib.CupyContext`, deployed as
   a serverless function (runs identically on native or DGSF GPUs).
2. **Image pipeline via the OpenCV-like API** — upload / resize / filter
   / download with :mod:`repro.mllib.opencvlib`.

It also shows the three-line comparison harness: run the same function
under a native deployment and under DGSF and compare end-to-end times.

Run:  python examples/custom_workload.py
"""

import numpy as np

from repro.core import DgsfConfig
from repro.core.deployment import DgsfDeployment, NativeDeployment
from repro.faas import FunctionSpec
from repro.mllib import CupyContext
from repro.mllib.opencvlib import cv_upload, cv_resize, cv_filter, cv_download
from repro.simcuda.types import GB, MB


def monte_carlo_handler(fc):
    """Estimate a dot-product-ish statistic on the GPU with CuPy-style ops."""
    gpu = yield from fc.acquire_gpu()
    cp = CupyContext(fc.env, gpu)

    rng = np.random.default_rng(0)
    x = yield from cp.array(rng.random(4096).astype(np.float32))
    acc = yield from cp.array(np.zeros(4096, dtype=np.float32))
    for step in range(8):
        # acc += 0.5 * x  (each axpy is one batched kernel launch)
        yield from cp.axpy(0.5, x, acc, work_s=0.02)
    data = yield from cp.asnumpy(acc)
    yield from cp.free_all()
    first = data[:4].view(np.float32)
    return float(first[0])  # 8 * 0.5 * x[0]


def image_pipeline_handler(fc):
    """Decode → upload → resize → filter → download, OpenCV-CUDA style."""
    gpu = yield from fc.acquire_gpu()
    frame = np.random.default_rng(1).integers(
        0, 255, size=(480, 640, 3), dtype=np.uint8
    )
    mat = yield from cv_upload(gpu, frame)
    small = yield from cv_resize(gpu, mat, 224, 224, work_s=0.01)
    yield from cv_filter(gpu, small, work_s=0.02)
    pixels = yield from cv_download(gpu, small)
    yield from gpu.cudaFree(mat.ptr)
    yield from gpu.cudaFree(small.ptr)
    return len(pixels)


def run_under(deployment, name, handler):
    deployment.setup()
    deployment.platform.register(
        FunctionSpec(name=name, handler=handler, gpu_mem_bytes=1 * GB)
    )
    inv, proc = deployment.platform.invoke(name)
    deployment.env.run(until=proc)
    return inv


def main():
    # --- Monte-Carlo function: native vs DGSF ---
    native = run_under(NativeDeployment(num_gpus=1), "mc", monte_carlo_handler)
    dgsf = run_under(DgsfDeployment(DgsfConfig(num_gpus=1)), "mc", monte_carlo_handler)
    x0 = native.result
    assert abs(dgsf.result - x0) < 1e-6, "identical math under both backends"
    print("monte-carlo estimate identical under native and DGSF backends")
    print(f"  native e2e: {native.e2e_s:6.2f} s  (pays 3.2 s CUDA init)")
    print(f"  dgsf   e2e: {dgsf.e2e_s:6.2f} s  (init pre-created remotely)")
    assert dgsf.e2e_s < native.e2e_s

    # --- Image pipeline on DGSF ---
    inv = run_under(
        DgsfDeployment(DgsfConfig(num_gpus=1)), "imgpipe", image_pipeline_handler
    )
    print(f"image pipeline produced {inv.result} bytes "
          f"in {inv.e2e_s:.2f} s on a disaggregated GPU")


if __name__ == "__main__":
    main()
