#!/usr/bin/env python
"""Quickstart: run one GPU serverless function on DGSF.

Builds a complete DGSF world (serverless platform + network + a 2-GPU
disaggregated GPU server), deploys a small CUDA function, invokes it, and
shows that:

* the function sees exactly one GPU even though the server has two,
* data written through the remoted API round-trips correctly,
* the expensive CUDA initialization happened at GPU-server bring-up, not
  on the function's critical path (the core DGSF benefit).

Run:  python examples/quickstart.py
"""

import numpy as np

from repro.core import DgsfConfig
from repro.core.deployment import DgsfDeployment
from repro.faas import FunctionSpec
from repro.simcuda.types import GB, MB


def my_gpu_function(fc):
    """A serverless function using the GPU through plain CUDA calls.

    Handlers are generators: every GPU/API call is ``yield from``-ed so
    the simulation can account its time.
    """
    # Ask the platform for a GPU — under DGSF this contacts the GPU
    # server's monitor and attaches to an API server (paper §V-A).
    gpu = yield from fc.acquire_gpu()

    count = yield from gpu.cudaGetDeviceCount()
    props = yield from gpu.cudaGetDeviceProperties(0)
    print(f"    function sees {count} GPU: {props['name']}")

    # Allocate, upload, compute, download.
    data = np.arange(256, dtype=np.uint8)
    ptr = yield from gpu.cudaMalloc(1 * MB)
    yield from gpu.memcpyH2D(ptr, 1 * MB, payload=data)

    increment = yield from gpu.cudaGetFunction("increment")
    for _ in range(3):
        yield from gpu.cudaLaunchKernel(increment, args=(0.05, ptr, 256))
    yield from gpu.cudaDeviceSynchronize()

    result = yield from gpu.memcpyD2H(ptr, 256)
    yield from gpu.cudaFree(ptr)
    return int(result[0])  # 0 + 3 increments = 3


def main():
    # A DGSF deployment: 2 physical GPUs, one API server each, all
    # serverless optimizations on.
    deployment = DgsfDeployment(DgsfConfig(num_gpus=2))
    deployment.setup()  # GPU-server bring-up (contexts + handle pools)
    print(f"GPU server ready: {deployment.gpu_server!r}")

    deployment.platform.register(
        FunctionSpec(name="quickstart", handler=my_gpu_function,
                     gpu_mem_bytes=1 * GB)
    )

    invocation, proc = deployment.platform.invoke("quickstart")
    deployment.env.run(until=proc)

    assert invocation.result == 3, "three increments must be visible"
    print(f"    result: {invocation.result} (expected 3)")
    print(f"    end-to-end: {invocation.e2e_s * 1000:.1f} ms "
          f"(no 3.2 s CUDA init on the critical path!)")
    print(f"    phases: { {k: round(v, 4) for k, v in invocation.phases.items()} }")


if __name__ == "__main__":
    main()
