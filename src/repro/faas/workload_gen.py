"""Arrival processes for the mixed-workload experiments.

The paper (§VIII-D) drives the GPU server with three arrival patterns:

* exponential gaps with rate 2 — "a function is launched on average every
  two seconds" (heavy load),
* exponential gaps with rate 3 — light load,
* bursts — "launch all six workloads at once (a burst) ten times, with an
  interval of two seconds between each burst".

Workload identity is interleaved "in a random (but consistent) order":
we shuffle with a seeded stream so every configuration under comparison
sees the identical sequence.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import ConfigurationError

__all__ = [
    "ArrivalPlan",
    "exponential_gap_arrivals",
    "burst_arrivals",
    "uniform_arrivals",
    "interleave_workloads",
    "schedule_arrivals",
]


def schedule_arrivals(env, plan) -> list:
    """Pre-create the arrival timeouts for ``plan`` in one kernel batch.

    Returns a list aligned with the plan's entries: a ``Timeout`` firing
    at the entry's launch time for every entry strictly in the future,
    and ``None`` for entries due now or in the past (the driver proceeds
    without waiting, exactly like the old per-entry
    ``if t > env.now: yield env.timeout(...)`` pattern).

    Batching goes through :meth:`Environment.timeout_batch`, so a
    million-entry plan costs one Python call instead of a million — see
    ``scripts/bench_kernel.py``.  Timeouts are created in plan order, so
    eid assignment (and therefore same-time tie-breaking) is
    deterministic for a given plan.
    """
    now = env.now
    delays = [t - now for t, _ in plan if t > now]
    batch = iter(env.timeout_batch(delays))
    return [next(batch) if t > now else None for t, _ in plan]


@dataclass(frozen=True)
class ArrivalPlan:
    """A fully materialized invocation schedule."""

    #: (launch_time_s, workload_name) sorted by launch time
    entries: tuple[tuple[float, str], ...]

    def __len__(self) -> int:
        return len(self.entries)

    def __iter__(self):
        return iter(self.entries)

    @property
    def names(self) -> list[str]:
        return [name for _, name in self.entries]

    @property
    def times(self) -> np.ndarray:
        return np.asarray([t for t, _ in self.entries])


def interleave_workloads(
    workload_names: list[str], copies: int, rng: np.random.Generator
) -> list[str]:
    """``copies`` instances of each workload, shuffled reproducibly."""
    if copies <= 0:
        raise ConfigurationError("copies must be positive")
    sequence = [name for name in workload_names for _ in range(copies)]
    rng.shuffle(sequence)
    return sequence


def exponential_gap_arrivals(
    names: list[str], mean_gap_s: float, rng: np.random.Generator
) -> ArrivalPlan:
    """Launch times with i.i.d. exponential gaps (mean ``mean_gap_s``)."""
    if mean_gap_s <= 0:
        raise ConfigurationError("mean gap must be positive")
    gaps = rng.exponential(mean_gap_s, size=len(names))
    times = np.concatenate([[0.0], np.cumsum(gaps)[:-1]])
    return ArrivalPlan(tuple(zip(times.tolist(), names)))


def uniform_arrivals(names: list[str], gap_s: float) -> ArrivalPlan:
    """Fixed-interval launches (paper's 3-second interval scenario)."""
    if gap_s < 0:
        raise ConfigurationError("gap must be non-negative")
    return ArrivalPlan(tuple((i * gap_s, name) for i, name in enumerate(names)))


def burst_arrivals(
    workload_names: list[str], bursts: int, burst_gap_s: float
) -> ArrivalPlan:
    """``bursts`` back-to-back launches of every workload, gap between bursts."""
    if bursts <= 0:
        raise ConfigurationError("bursts must be positive")
    entries = []
    for b in range(bursts):
        t = b * burst_gap_s
        for name in workload_names:
            entries.append((t, name))
    return ArrivalPlan(tuple(entries))
