"""S3-like object storage with bandwidth-limited downloads.

Each workload begins by pulling its model and inputs from remote storage
("All of the data required by each function, such as models and inputs
are downloaded from AWS S3", paper §VI).  The cost model has two limits:

* a per-stream throughput cap (S3 GET streams peak at a few Gbps),
* the downloading host's ingress bandwidth, shared fairly by all
  concurrent downloads on that host (max-min via
  :class:`~repro.sim.sharing.FairShareEngine`).

The Lambda profile has lower, *variable* per-stream throughput — this is
what makes the network-heavy NLP and image-classification workloads spike
on Lambda (§VIII-B).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Generator, Optional

import numpy as np

from repro.errors import ConfigurationError
from repro.sim.core import Environment
from repro.sim.sharing import FairShareEngine
from repro.simnet.net import Host

__all__ = ["StorageProfile", "ObjectStore", "S3_DEFAULT", "S3_LAMBDA"]


@dataclass(frozen=True)
class StorageProfile:
    """Characteristics of the path from one environment to object storage."""

    #: nominal per-stream GET throughput (bytes/s)
    per_stream_Bps: float
    #: fixed per-GET latency (request + first byte)
    get_latency_s: float = 0.030
    #: if set, the per-stream throughput of each GET is drawn uniformly
    #: from [lo, hi] — models Lambda's variable egress (§VIII-B)
    per_stream_range: Optional[tuple[float, float]] = None

    def sample_stream_Bps(self, rng: Optional[np.random.Generator]) -> float:
        if self.per_stream_range is not None and rng is not None:
            lo, hi = self.per_stream_range
            return float(rng.uniform(lo, hi))
        return self.per_stream_Bps


#: OpenFaaS deployment on EC2: fast, stable S3 access (~2.8 Gbps/stream).
S3_DEFAULT = StorageProfile(per_stream_Bps=350e6)

#: AWS Lambda: lower and highly variable throughput.
S3_LAMBDA = StorageProfile(
    per_stream_Bps=80e6,
    get_latency_s=0.050,
    per_stream_range=(50e6, 110e6),
)


class ObjectStore:
    """The object store plus per-host ingress contention model."""

    def __init__(
        self,
        env: Environment,
        profile: StorageProfile = S3_DEFAULT,
        rng: Optional[np.random.Generator] = None,
    ):
        self.env = env
        self.profile = profile
        self.rng = rng
        self._objects: dict[str, int] = {}
        self._ingress: dict[str, FairShareEngine] = {}
        #: per-host ingress capacity (bytes/s); default 10 Gbps
        self._ingress_Bps: dict[str, float] = {}

    # -- catalog ----------------------------------------------------------------
    def put_object(self, name: str, size_bytes: int) -> None:
        if size_bytes <= 0:
            raise ConfigurationError(f"object {name!r} must have positive size")
        self._objects[name] = int(size_bytes)

    def object_size(self, name: str) -> int:
        try:
            return self._objects[name]
        except KeyError:
            raise ConfigurationError(f"no such object {name!r}") from None

    def __contains__(self, name: str) -> bool:
        return name in self._objects

    # -- downloads -----------------------------------------------------------------
    def set_host_ingress(self, host_name: str, bandwidth_Bps: float) -> None:
        if host_name in self._ingress:
            raise ConfigurationError(f"ingress for {host_name!r} already active")
        self._ingress_Bps[host_name] = bandwidth_Bps

    def download(self, host: Host | str, name: str) -> Generator:
        """Download ``name`` to ``host``; returns the object size.

        Concurrent downloads on the same host share its ingress bandwidth
        (max-min fair); each stream is additionally capped at the profile's
        per-stream throughput.
        """
        host_name = host.name if isinstance(host, Host) else host
        size = self.object_size(name)
        engine = self._engine_for(host_name)
        stream_Bps = self.profile.sample_stream_Bps(self.rng)
        demand = min(1.0, stream_Bps / self._capacity_for(host_name))
        yield self.env.timeout(self.profile.get_latency_s)
        # Work is expressed in "seconds at full host ingress"; demand caps
        # the stream at its own throughput.
        work = size / self._capacity_for(host_name)
        yield engine.submit(work, demand=demand, owner=name)
        return size

    def download_many(self, host: Host | str, names: list[str]) -> Generator:
        """Download several objects concurrently; returns total bytes."""
        procs = [
            self.env.process(self.download(host, name), name=f"get-{name}")
            for name in names
        ]
        yield self.env.all_of(procs)
        return sum(p.value for p in procs)

    # -- internals --------------------------------------------------------------------
    def _capacity_for(self, host_name: str) -> float:
        return self._ingress_Bps.get(host_name, 1.25e9)  # 10 Gbps default

    def _engine_for(self, host_name: str) -> FairShareEngine:
        if host_name not in self._ingress:
            self._ingress[host_name] = FairShareEngine(self.env, capacity=1.0)
        return self._ingress[host_name]
