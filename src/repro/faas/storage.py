"""S3-like object storage with bandwidth-limited downloads.

Each workload begins by pulling its model and inputs from remote storage
("All of the data required by each function, such as models and inputs
are downloaded from AWS S3", paper §VI).  The cost model has two limits:

* a per-stream throughput cap (S3 GET streams peak at a few Gbps),
* the downloading host's ingress bandwidth, shared fairly by all
  concurrent downloads on that host (max-min via
  :class:`~repro.sim.sharing.FairShareEngine`).

The Lambda profile has lower, *variable* per-stream throughput — this is
what makes the network-heavy NLP and image-classification workloads spike
on Lambda (§VIII-B).
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass
from typing import Generator, Optional

import numpy as np

from repro.errors import ConfigurationError
from repro.sim.core import Environment
from repro.sim.sharing import FairShareEngine
from repro.simnet.net import Host

__all__ = ["StorageProfile", "ObjectStore", "ArtifactCache", "S3_DEFAULT", "S3_LAMBDA"]


@dataclass(frozen=True)
class StorageProfile:
    """Characteristics of the path from one environment to object storage."""

    #: nominal per-stream GET throughput (bytes/s)
    per_stream_Bps: float
    #: fixed per-GET latency (request + first byte)
    get_latency_s: float = 0.030
    #: if set, the per-stream throughput of each GET is drawn uniformly
    #: from [lo, hi] — models Lambda's variable egress (§VIII-B)
    per_stream_range: Optional[tuple[float, float]] = None

    def sample_stream_Bps(self, rng: Optional[np.random.Generator]) -> float:
        if self.per_stream_range is not None and rng is not None:
            lo, hi = self.per_stream_range
            return float(rng.uniform(lo, hi))
        return self.per_stream_Bps


#: OpenFaaS deployment on EC2: fast, stable S3 access (~2.8 Gbps/stream).
S3_DEFAULT = StorageProfile(per_stream_Bps=350e6)

#: AWS Lambda: lower and highly variable throughput.
S3_LAMBDA = StorageProfile(
    per_stream_Bps=80e6,
    get_latency_s=0.050,
    per_stream_range=(50e6, 110e6),
)


class ArtifactCache:
    """API-server-local LRU cache of downloaded artifacts.

    Keeps models/inputs staged on the API server's machine so repeat
    invocations of a function on the same server skip the object-store
    GET entirely — the dominant setup cost for warm invocations (cf. the
    setup-path caching of arXiv:2404.14691).  Capacity is in bytes
    (:attr:`~repro.core.config.DgsfConfig.artifact_cache_bytes`); entries
    are evicted least-recently-used.  The cache is host-side state, so it
    survives GPU-to-GPU migration of its API server, but it dies with the
    server process: :meth:`invalidate_all` is called on crash/teardown.
    """

    def __init__(self, capacity_bytes: int, hit_latency_s: float = 0.002,
                 metrics=None, **labels):
        if capacity_bytes <= 0:
            raise ConfigurationError("ArtifactCache needs a positive capacity")
        self.capacity_bytes = int(capacity_bytes)
        #: local staging cost charged per cache hit (ms-scale: the bytes
        #: are already on the machine, only a lookup + mmap remains)
        self.hit_latency_s = hit_latency_s
        self._entries: OrderedDict[str, int] = OrderedDict()
        self.used_bytes = 0
        # counters live in the (possibly shared) metrics registry — the
        # attribute names below stay readable so core.stats summaries work
        if metrics is None:
            from repro.obs.metrics import MetricsRegistry

            metrics = MetricsRegistry()
        self.metrics = metrics
        c = metrics.counter
        self._c_hits = c("artifact_cache.hits", **labels)
        self._c_misses = c("artifact_cache.misses", **labels)
        self._c_hit_bytes = c("artifact_cache.hit_bytes", **labels)
        self._c_miss_bytes = c("artifact_cache.miss_bytes", **labels)
        self._c_evictions = c("artifact_cache.evictions", **labels)
        self._c_invalidations = c("artifact_cache.invalidations", **labels)

    @property
    def hits(self) -> int:
        return self._c_hits.value

    @property
    def misses(self) -> int:
        return self._c_misses.value

    @property
    def hit_bytes(self) -> int:
        return self._c_hit_bytes.value

    @property
    def miss_bytes(self) -> int:
        return self._c_miss_bytes.value

    @property
    def evictions(self) -> int:
        return self._c_evictions.value

    @property
    def invalidations(self) -> int:
        return self._c_invalidations.value

    def __contains__(self, name: str) -> bool:
        return name in self._entries

    def __len__(self) -> int:
        return len(self._entries)

    def lookup(self, name: str) -> Optional[int]:
        """Return the cached size of ``name`` (touching LRU) or None."""
        size = self._entries.get(name)
        if size is None:
            self._c_misses.inc()
            return None
        self._entries.move_to_end(name)
        self._c_hits.inc()
        self._c_hit_bytes.inc(size)
        return size

    def insert(self, name: str, size_bytes: int) -> None:
        """Admit an artifact, evicting LRU entries to make room.

        Objects larger than the whole cache are not admitted (they would
        evict everything for a guaranteed future miss).
        """
        size = int(size_bytes)
        self._c_miss_bytes.inc(size)
        if size > self.capacity_bytes:
            return
        if name in self._entries:
            self.used_bytes -= self._entries.pop(name)
        while self.used_bytes + size > self.capacity_bytes:
            _, evicted = self._entries.popitem(last=False)
            self.used_bytes -= evicted
            self._c_evictions.inc()
        self._entries[name] = size
        self.used_bytes += size

    def invalidate_all(self) -> None:
        """Drop everything (server crash / teardown: the staging directory
        died with the process)."""
        if self._entries:
            self._c_invalidations.inc()
        self._entries.clear()
        self.used_bytes = 0


class ObjectStore:
    """The object store plus per-host ingress contention model."""

    def __init__(
        self,
        env: Environment,
        profile: StorageProfile = S3_DEFAULT,
        rng: Optional[np.random.Generator] = None,
    ):
        self.env = env
        self.profile = profile
        self.rng = rng
        self._objects: dict[str, int] = {}
        self._ingress: dict[str, FairShareEngine] = {}
        #: per-host ingress capacity (bytes/s); default 10 Gbps
        self._ingress_Bps: dict[str, float] = {}

    # -- catalog ----------------------------------------------------------------
    def put_object(self, name: str, size_bytes: int) -> None:
        if size_bytes <= 0:
            raise ConfigurationError(f"object {name!r} must have positive size")
        self._objects[name] = int(size_bytes)

    def object_size(self, name: str) -> int:
        try:
            return self._objects[name]
        except KeyError:
            raise ConfigurationError(f"no such object {name!r}") from None

    def __contains__(self, name: str) -> bool:
        return name in self._objects

    # -- downloads -----------------------------------------------------------------
    def set_host_ingress(self, host_name: str, bandwidth_Bps: float) -> None:
        if host_name in self._ingress:
            raise ConfigurationError(f"ingress for {host_name!r} already active")
        self._ingress_Bps[host_name] = bandwidth_Bps

    def download(self, host: Host | str, name: str) -> Generator:
        """Download ``name`` to ``host``; returns the object size.

        Concurrent downloads on the same host share its ingress bandwidth
        (max-min fair); each stream is additionally capped at the profile's
        per-stream throughput.
        """
        host_name = host.name if isinstance(host, Host) else host
        size = self.object_size(name)
        engine = self._engine_for(host_name)
        stream_Bps = self.profile.sample_stream_Bps(self.rng)
        demand = min(1.0, stream_Bps / self._capacity_for(host_name))
        yield self.env.timeout(self.profile.get_latency_s)
        # Work is expressed in "seconds at full host ingress"; demand caps
        # the stream at its own throughput.
        work = size / self._capacity_for(host_name)
        yield engine.submit(work, demand=demand, owner=name)
        return size

    def download_many(self, host: Host | str, names: list[str]) -> Generator:
        """Download several objects concurrently; returns total bytes."""
        procs = [
            self.env.process(self.download(host, name), name=f"get-{name}")
            for name in names
        ]
        yield self.env.all_of(procs)
        return sum(p.value for p in procs)

    def download_through_cache(
        self, host: Host | str, names: list[str], cache: ArtifactCache
    ) -> Generator:
        """Like :meth:`download_many`, but serviced from an API-server-local
        :class:`ArtifactCache` first.

        Cache hits cost only the cache's local staging latency (charged
        once — staging is local and parallel); misses go to the object
        store concurrently and are admitted to the cache on completion.
        Returns total bytes made available (hit + miss).
        """
        hit_bytes = 0
        misses: list[str] = []
        for name in names:
            size = cache.lookup(name)
            if size is None:
                misses.append(name)
            else:
                hit_bytes += size
        if hit_bytes:
            yield self.env.timeout(cache.hit_latency_s)
        miss_bytes = 0
        if misses:
            miss_bytes = yield from self.download_many(host, misses)
            for name in misses:
                cache.insert(name, self.object_size(name))
        return hit_bytes + miss_bytes

    # -- internals --------------------------------------------------------------------
    def _capacity_for(self, host_name: str) -> float:
        return self._ingress_Bps.get(host_name, 1.25e9)  # 10 Gbps default

    def _engine_for(self, host_name: str) -> FairShareEngine:
        if host_name not in self._ingress:
            self._ingress[host_name] = FairShareEngine(self.env, capacity=1.0)
        return self._ingress[host_name]
