"""Shard-aware topology builders: what actually runs inside a shard.

The shard runtime (:mod:`repro.sim.shard`) is scenario-agnostic — it
spawns workers, steps epochs, and merges rows.  This module supplies the
scenarios, each a module-level function so ``multiprocessing`` spawn can
pickle it by reference:

* :func:`pool_scenario` — the independent-GPU-pool queueing model used by
  ``scripts/bench_shard.py``: per group, a pre-drawn Poisson arrival
  stream feeds an M/M/c GPU pool (a few kernel events per invocation), so
  a million-invocation deployment is dominated by event-queue throughput
  — exactly what sharding is meant to scale.  An optional heartbeat
  stream to group 0 (the manager's home) exercises the cross-shard
  envelope path and epoch barriers.
* :func:`dgsf_scenario` — the full-stack variant: one
  :class:`~repro.core.deployment.DgsfDeployment` per group sharing the
  shard's environment, brought up concurrently from t=0 and driven by
  per-group arrival plans that start at a fixed absolute time.  Used by
  the shard-count-invariance tests and the ``shard`` ablation.

Invariance rules every scenario here obeys (and new ones must):

* all randomness comes from ``ctx.group_rngs(g)`` — keyed by group id,
  never by shard id or worker index;
* group-to-group traffic goes through ``ctx.port(g)``, even when both
  groups share a shard;
* anything time-synchronized across groups (plan starts) anchors to an
  absolute sim time, not to "after my neighbours finished bring-up";
* collected rows are JSON-shaped with rounded floats, aggregated in
  invocation-index order, so the merged digest is layout-independent.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.errors import ConfigurationError
from repro.sim.resources import Resource

__all__ = [
    "pool_scenario",
    "pool_collect",
    "pool_metrics_collect",
    "dgsf_scenario",
    "dgsf_collect",
    "llm_shard_scenario",
    "llm_shard_collect",
    "DEFAULT_LOOKAHEAD_S",
    "DGSF_PLAN_START_S",
]

#: default cross-group link latency (= conservative lookahead) for
#: heartbeat-carrying topologies: LAN-ish 2 ms
DEFAULT_LOOKAHEAD_S = 2e-3

#: absolute sim time at which every group's arrival plan starts in
#: :func:`dgsf_scenario` — far past any group's bring-up, so plan timing
#: never depends on which groups share a shard
DGSF_PLAN_START_S = 60.0


# ---------------------------------------------------------------------------
# independent-pool queueing scenario (bench + determinism tests)
# ---------------------------------------------------------------------------

def _pool_invocation(env, gpu, service_s, index, stats, tracer=None, group=0):
    t0 = env.now
    request = gpu.request()
    yield request
    t_acquired = env.now
    yield env.timeout(service_s)
    gpu.release(request)
    t_end = env.now
    stats["lat"][index] = t_end - t0
    stats["completed"] += 1
    if tracer is not None:
        # one root span + queue/service children per invocation: enough
        # structure for critpath attribution and the bench tracing section
        trace_id = tracer.new_trace_id()
        # head-sample on (group, index): stable across shard layouts
        tracer.sample_root(trace_id, key=f"group{group}|pool|{index}",
                           scope=f"group{group}", workload="pool",
                           t_start=t0)
        root = tracer.begin(
            "invocation", cat="invocation", pid=f"group{group}",
            tid=f"inv-{index}", trace_id=trace_id,
            t_start=t0, invocation_id=index, group=group,
        )
        root.child_complete("gpu_queue", t0, t_acquired, cat="phase")
        root.child_complete("service", t_acquired, t_end, cat="server")
        root.end(t_end)


def _pool_driver(env, gpu, arrival_times, service_times, stats,
                 tracer=None, group=0):
    arrivals = env.timeout_batch([t - env.now for t in arrival_times])
    for i, arrival in enumerate(arrivals):
        yield arrival
        env.process(_pool_invocation(env, gpu, service_times[i], i, stats,
                                     tracer=tracer, group=group))


def _heartbeat_sender(ctx, group_id, period_s, count):
    port = ctx.port(group_id)
    for k in range(count):
        yield ctx.env.timeout(period_s)
        port.send(0, "hb", {"group": group_id, "k": k})


def _heartbeat_sink(ctx, sink_stats):
    port = ctx.port(0)
    while True:
        envelope = yield port.recv("hb")
        sink_stats["hb_received"] += 1
        sink_stats["hb_last_t"] = ctx.env.now
        sink_stats["hb_groups"].add(envelope.payload["group"])


def pool_scenario(ctx, invocations_per_group=1000, num_gpus=4,
                  mean_gap_s=0.05, service_mean_s=0.18,
                  heartbeat_period_s: Optional[float] = None,
                  heartbeat_count: int = 0):
    """Per group: Poisson arrivals into an M/M/c GPU pool.

    With ``heartbeat_period_s`` set, every group g>0 sends
    ``heartbeat_count`` envelopes to group 0, whose sink counts them —
    the cross-shard sync path under test.  Group 0 always hosts the sink
    (it owns the manager), so ``run_sharded`` must be given a finite
    lookahead no larger than the heartbeat link delay.
    """
    if invocations_per_group <= 0:
        raise ConfigurationError("invocations_per_group must be positive")
    env = ctx.env
    for g in ctx.groups:
        rngs = ctx.group_rngs(g)
        gaps = rngs.stream("arrivals").exponential(
            mean_gap_s, size=invocations_per_group)
        service = rngs.stream("service").exponential(
            service_mean_s, size=invocations_per_group)
        arrival_times = np.cumsum(gaps).tolist()
        stats = {
            "lat": np.zeros(invocations_per_group),
            "completed": 0,
            "hb_received": 0,
            "hb_last_t": -1.0,
            "hb_groups": set(),
        }
        ctx.state[g] = stats
        gpu = Resource(env, capacity=num_gpus)
        env.process(
            _pool_driver(env, gpu, arrival_times, service.tolist(), stats,
                         tracer=ctx.tracer, group=g),
            name=f"pool-{g}",
        )
        if heartbeat_period_s is not None and g != 0:
            env.process(
                _heartbeat_sender(ctx, g, heartbeat_period_s, heartbeat_count),
                name=f"hb-{g}",
            )
        if heartbeat_period_s is not None and g == 0:
            env.process(_heartbeat_sink(ctx, stats), name="hb-sink")


def pool_collect(ctx) -> dict:
    """Per-group latency aggregates, rounded for digest stability."""
    rows = {}
    for g in ctx.groups:
        stats = ctx.state[g]
        lat = stats["lat"]
        if stats["completed"] != len(lat):
            raise ConfigurationError(
                f"group {g}: {stats['completed']}/{len(lat)} invocations completed"
            )
        lat_ms = lat * 1e3
        rows[g] = {
            "n": int(stats["completed"]),
            "mean_ms": round(float(lat_ms.mean()), 6),
            "p50_ms": round(float(np.percentile(lat_ms, 50)), 6),
            "p95_ms": round(float(np.percentile(lat_ms, 95)), 6),
            "max_ms": round(float(lat_ms.max()), 6),
            "hb_received": int(stats["hb_received"]),
            "hb_groups": sorted(stats["hb_groups"]),
            "hb_last_t": round(float(stats["hb_last_t"]), 9),
        }
    return rows


def pool_metrics_collect(ctx) -> list:
    """A tiny per-group metrics snapshot (exercises cross-process merge)."""
    from repro.obs import MetricsRegistry

    registry = MetricsRegistry()
    for g in ctx.groups:
        stats = ctx.state[g]
        registry.counter("shard.invocations_completed").inc(stats["completed"])
        hist = registry.histogram("shard.invocation_latency_s")
        for value in stats["lat"]:
            hist.observe(float(value))
    return registry.snapshot()


# ---------------------------------------------------------------------------
# full-stack scenario: one DgsfDeployment per group
# ---------------------------------------------------------------------------

def _dgsf_group_driver(ctx, group_id, deployment, ready_events, plan):
    from repro.sim.core import AllOf
    from repro.workloads import register_workloads

    env = ctx.env
    yield AllOf(env, ready_events)
    deployment.finish_setup()
    register_workloads(deployment.platform, names=sorted(set(plan.names)))
    if env.now > DGSF_PLAN_START_S:
        raise ConfigurationError(
            f"group {group_id} bring-up overran the plan anchor "
            f"({env.now} > {DGSF_PLAN_START_S})"
        )
    yield env.timeout(DGSF_PLAN_START_S - env.now)
    records = yield from deployment.platform.run_plan(plan)
    ctx.state[group_id]["records"] = records
    if group_id != 0 and ctx.lookahead_s != float("inf"):
        # completion report to group 0 (the manager's home), carrying the
        # last invocation's trace context — a control-plane hop that
        # stitches a cross-shard leg onto the invocation's trace tree.
        # Gated on a finite lookahead: with no cross-group links declared
        # there is no wire to send it over (and the timeline must stay
        # identical to the historical link-free runs).
        trace_ctx = None
        if ctx.tracer is not None and records:
            span = records[-1]._span
            if span is not None:
                trace_ctx = (span.trace_id, span.span_id)
        ctx.port(group_id).send(
            0, "report",
            {"group": group_id, "n": len(records)},
            trace_ctx=trace_ctx,
        )


def dgsf_scenario(ctx, copies=2, num_gpus=2, mean_gap_s=2.0,
                  workload_names: Optional[list] = None,
                  tracing_enabled: bool = False):
    """One full DGSF deployment per group, co-resident on the shard's env.

    Bring-up runs concurrently from t=0 (see
    :meth:`~repro.core.deployment.DgsfDeployment.start_servers`) and each
    group's arrival plan is anchored at the absolute
    :data:`DGSF_PLAN_START_S`, so a group's timeline is bit-identical no
    matter which shard it landed on.  Monitor health loops tick forever —
    drive this scenario with ``run_sharded(..., until=<horizon>)``.
    """
    from repro.core.config import DgsfConfig
    from repro.core.deployment import DgsfDeployment
    from repro.faas.workload_gen import (
        exponential_gap_arrivals,
        interleave_workloads,
    )
    from repro.workloads import SMALLER_WORKLOAD_NAMES

    names = workload_names or SMALLER_WORKLOAD_NAMES[:2]
    for g in ctx.groups:
        group_rngs = ctx.group_rngs(g)
        deployment = DgsfDeployment(
            DgsfConfig(num_gpus=num_gpus, seed=ctx.seed,
                       tracing_enabled=tracing_enabled),
            env=ctx.env,
            rngs=group_rngs.fork("deployment"),
            # the shard tracer (when the run traces) so every deployment's
            # spans ship home in the harvest; a deployment-private tracer
            # would stay behind in the worker — note_tracer() makes that
            # loss loud instead of silent
            tracer=ctx.tracer,
            sample_scope=f"group{g}",
        )
        ctx.note_tracer(deployment.tracer)
        ctx.register_slo(g, deployment.slo)
        ready_events = deployment.start_servers()
        sequence = interleave_workloads(
            names, copies, group_rngs.stream("interleave"))
        plan = exponential_gap_arrivals(
            sequence, mean_gap_s, group_rngs.stream("gaps"))
        ctx.state[g] = {"deployment": deployment, "records": None}
        ctx.env.process(
            _dgsf_group_driver(ctx, g, deployment, ready_events, plan),
            name=f"group-{g}",
        )


def dgsf_collect(ctx) -> dict:
    """Per-group outcome census + latency aggregates (rounded)."""
    from repro.core.stats import summarize_outcomes

    rows = {}
    for g in ctx.groups:
        records = ctx.state[g]["records"]
        if records is None:
            raise ConfigurationError(
                f"group {g} plan did not finish before the horizon"
            )
        summary = summarize_outcomes(records)
        e2es = [inv.e2e_s for inv in records if inv.status == "completed"]
        rows[g] = {
            "outcomes": summary.as_dict(),
            "n": len(records),
            "p50_e2e_s": round(float(np.percentile(e2es, 50)), 6) if e2es else None,
            "p95_e2e_s": round(float(np.percentile(e2es, 95)), 6) if e2es else None,
        }
    return rows


# ---------------------------------------------------------------------------
# LLM serving scenario: one chat-serving deployment per group
# ---------------------------------------------------------------------------

def _llm_group_driver(ctx, group_id, deployment, ready_events, plan, llm_mode):
    from repro.sim.core import AllOf
    from repro.workloads import register_llm_workloads

    env = ctx.env
    yield AllOf(env, ready_events)
    deployment.finish_setup()
    register_llm_workloads(deployment.platform, names=sorted(set(plan.names)))
    if env.now > DGSF_PLAN_START_S:
        raise ConfigurationError(
            f"group {group_id} bring-up overran the plan anchor "
            f"({env.now} > {DGSF_PLAN_START_S})"
        )
    yield env.timeout(DGSF_PLAN_START_S - env.now)
    records = yield from deployment.platform.run_plan(plan, llm_mode=llm_mode)
    ctx.state[group_id]["records"] = records


def llm_shard_scenario(ctx, copies=2, num_gpus=1, burst_gap_s=3.0,
                       workload: str = "llm_chat",
                       llm_mode: str = "continuous",
                       tracing_enabled: bool = False):
    """One chat-serving DGSF deployment per group (shard-safe).

    Like :func:`dgsf_scenario` but the arrival plan is a burst plan
    (deterministic without RNG) of one LLM workload, and the batching
    mode is threaded through invocation params.  Chat traces come from
    each workload's fixed ``trace_seed``, so per-token timelines — and
    hence the merged digest — are bit-identical no matter which shard a
    group lands on.  Drive with ``run_sharded(..., until=<horizon>)``.
    """
    from repro.core.config import DgsfConfig
    from repro.core.deployment import DgsfDeployment
    from repro.faas.workload_gen import burst_arrivals

    for g in ctx.groups:
        group_rngs = ctx.group_rngs(g)
        deployment = DgsfDeployment(
            DgsfConfig(num_gpus=num_gpus, api_servers_per_gpu=2,
                       queue_discipline="mqfq", seed=ctx.seed,
                       tracing_enabled=tracing_enabled),
            env=ctx.env,
            rngs=group_rngs.fork("deployment"),
            tracer=ctx.tracer,
            sample_scope=f"group{g}",
        )
        ctx.note_tracer(deployment.tracer)
        ctx.register_slo(g, deployment.slo)
        ready_events = deployment.start_servers()
        plan = burst_arrivals([workload], bursts=copies, burst_gap_s=burst_gap_s)
        ctx.state[g] = {"deployment": deployment, "records": None}
        ctx.env.process(
            _llm_group_driver(ctx, g, deployment, ready_events, plan, llm_mode),
            name=f"group-{g}",
        )


def llm_shard_collect(ctx) -> dict:
    """Per-group token/emission census: exact counts plus the per-stream
    emission CRCs, so the merged digest pins the entire token timeline."""
    rows = {}
    for g in ctx.groups:
        records = ctx.state[g]["records"]
        if records is None:
            raise ConfigurationError(
                f"group {g} plan did not finish before the horizon"
            )
        completed = [inv for inv in records if inv.status == "completed"]
        rows[g] = {
            "n": len(records),
            "completed": len(completed),
            "n_tokens": sum(inv.result["n_tokens"] for inv in completed),
            "n_iterations": sum(inv.result["n_iterations"] for inv in completed),
            "emission_crcs": sorted(
                inv.result["emission_crc"] for inv in completed
            ),
        }
    return rows
