"""The serverless platform: function registry and invoker.

The platform is deliberately agnostic to what a function does with a GPU
("DGSF is agnostic to the serverless functions platform", §VI).  A
*gpu_provider* — installed by :mod:`repro.core.deployment` — is asked for
a GPU runtime per invocation; with no provider, functions run CPU-only or
use a locally attached GPU supplied by the handler itself.

Each :class:`Invocation` records the timestamps and phase breakdown the
paper's figures are built from (queueing vs execution delay, download /
init / model-load / processing phases).
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Any, Callable, Generator, Optional

from repro.errors import ConfigurationError, ReproError
from repro.sim.core import Environment, Event, Interrupt
from repro.simnet.net import Host
from repro.faas.container import ContainerPool
from repro.faas.storage import ObjectStore
from repro.faas.workload_gen import schedule_arrivals

__all__ = [
    "FunctionSpec",
    "FunctionContext",
    "Invocation",
    "ServerlessPlatform",
    "FunctionTimeLimitExceeded",
]


class FunctionTimeLimitExceeded(ReproError):
    """The provider killed a function that exceeded its time limit."""

_inv_ids = itertools.count(1)


@dataclass
class FunctionSpec:
    """A deployed function: code plus declared resource requirements.

    Matching the paper's model, the developer declares host memory and —
    with DGSF — the GPU memory the function needs ("the developer
    specifies the amount of GPU memory a function requires just like it
    does for host memory", §II).
    """

    name: str
    #: generator function taking a FunctionContext
    handler: Callable[["FunctionContext"], Generator]
    memory_mb: int = 3008
    #: GPU memory the function declares (0 = CPU-only function)
    gpu_mem_bytes: int = 0
    min_replicas: int = 10
    #: optional runtime hint for shortest-function-first scheduling
    expected_duration_s: float = 0.0
    #: provider-imposed execution time limit (0 = unlimited); serverless
    #: platforms always bound function runtime (paper §II)
    max_duration_s: float = 0.0


@dataclass
class Invocation:
    """One function invocation and its measured timeline."""

    invocation_id: int
    function_name: str
    t_submit: float
    t_start: float = -1.0
    t_end: float = -1.0
    status: str = "pending"
    #: phase name -> accumulated seconds (download, cuda_init, model_load,
    #: processing, gpu_queue, ...)
    phases: dict[str, float] = field(default_factory=dict)
    result: Any = None
    #: trace id when the platform has a tracer attached (None otherwise)
    trace_id: Optional[int] = None

    # root span handle while tracing (class attr, not a dataclass field:
    # span handles must stay out of repr/compare and of __init__)
    _span = None

    @property
    def e2e_s(self) -> float:
        """Launch-to-completion time (the paper's function E2E)."""
        if self.t_end < 0:
            raise ValueError(f"invocation {self.invocation_id} not finished")
        return self.t_end - self.t_submit

    @property
    def queue_s(self) -> float:
        """Time spent before the handler began executing."""
        if self.t_start < 0:
            raise ValueError(f"invocation {self.invocation_id} never started")
        return self.t_start - self.t_submit

    def add_phase(self, name: str, seconds: float) -> None:
        self.phases[name] = self.phases.get(name, 0.0) + seconds
        # add_phase is always called at the phase's end, so a traced
        # invocation can emit the span retroactively: [now-seconds, now].
        if self._span is not None and seconds > 0:
            self._span.phase(name, seconds)

    def bind_span(self, span) -> None:
        """Attach a root tracing span (set by the platform when tracing)."""
        self._span = span
        self.trace_id = span.trace_id


class FunctionContext:
    """Everything a handler needs: env, host, storage, GPU access, metrics."""

    def __init__(
        self,
        env: Environment,
        invocation: Invocation,
        host: Host,
        storage: Optional[ObjectStore],
        platform: "ServerlessPlatform",
        params: dict,
        spec: "FunctionSpec" = None,
    ):
        self.env = env
        self.invocation = invocation
        self.host = host
        self.storage = storage
        self.platform = platform
        self.spec = spec
        #: per-invocation parameters passed to invoke()
        self.params = params
        #: populated by acquire_gpu()
        self.gpu = None
        self._gpu_lease = None

    def acquire_gpu(self):
        """Request a GPU at the point of first use (the guest library's
        first interposed call, §V-A) — *after* downloads, matching the
        paper's queueing dynamics.  Returns the GPU session facade."""
        if self._gpu_lease is not None:
            return self.gpu
        provider = self.platform.gpu_provider
        if provider is None:
            raise ConfigurationError("no GPU provider installed")
        self._gpu_lease = yield from provider.acquire(self, self.spec)
        self.gpu = self._gpu_lease.gpu
        return self.gpu

    def add_phase(self, name: str, seconds: float) -> None:
        self.invocation.add_phase(name, seconds)

    def timed_phase(self, name: str, gen) -> Generator:
        """Run ``gen`` (a generator or an event) and account its duration
        to phase ``name``."""
        t0 = self.env.now
        if isinstance(gen, Event):
            result = yield gen
        else:
            result = yield from gen
        self.add_phase(name, self.env.now - t0)
        return result

    def download(self, names: list[str]) -> Generator:
        """Download objects, accounted to the 'download' phase.

        When the GPU provider offers an API-server-local artifact cache
        (``artifact_cache_for``, see :mod:`repro.core.deployment`), the
        download is serviced through it — repeat invocations on the same
        server skip the object-store GET.  With no provider or the cache
        disabled, the plain object-store path is taken unchanged.
        """
        if self.storage is None:
            raise ConfigurationError("no object store configured")
        provider = self.platform.gpu_provider
        hook = getattr(provider, "artifact_cache_for", None)
        cache = None
        if hook is not None:
            cache = yield from hook(self)
        if cache is None:
            return (yield from self.timed_phase(
                "download", self.storage.download_many(self.host, names)
            ))
        return (yield from self.timed_phase(
            "download",
            self.storage.download_through_cache(self.host, names, cache),
        ))


class ServerlessPlatform:
    """Function registry + invoker with warm-container pools."""

    def __init__(
        self,
        env: Environment,
        function_host: Host,
        storage: Optional[ObjectStore] = None,
    ):
        self.env = env
        self.function_host = function_host
        self.storage = storage
        self._specs: dict[str, FunctionSpec] = {}
        self._pools: dict[str, ContainerPool] = {}
        #: hook installed by repro.core.deployment: generator function
        #: (FunctionContext) -> context-ish object with .gpu APIs + release
        self.gpu_provider = None
        self.invocations: list[Invocation] = []
        #: optional repro.obs.Tracer — when set, every invocation gets a
        #: root span plus one child span per measured phase
        self.tracer = None
        #: optional repro.obs.MetricsRegistry — when set, terminal
        #: invocation outcomes and latencies are published to it
        self.metrics = None
        #: invocations submitted but not yet finished (mirrors the
        #: ``invocation.active`` gauge when a registry is attached)
        self.active_invocations = 0
        #: stable sampling-key prefix (the deployment's group name in
        #: sharded topologies).  Head-sampling keys are built from
        #: ``scope|workload|per-platform-arrival-seq`` — never from raw
        #: trace ids, whose counter values shift with shard packing.
        self.sample_scope = ""
        self._sample_seq = 0

    # -- registry ---------------------------------------------------------------
    def register(self, spec: FunctionSpec) -> None:
        if spec.name in self._specs:
            raise ConfigurationError(f"function {spec.name!r} already registered")
        self._specs[spec.name] = spec
        self._pools[spec.name] = ContainerPool(
            self.env,
            self.function_host,
            spec.name,
            replicas=spec.min_replicas,
            memory_mb=spec.memory_mb,
        )

    def spec(self, name: str) -> FunctionSpec:
        try:
            return self._specs[name]
        except KeyError:
            raise ConfigurationError(f"unknown function {name!r}") from None

    # -- invocation ---------------------------------------------------------------
    def invoke(self, name: str, **params) -> tuple[Invocation, Event]:
        """Submit an invocation now; returns (record, completion event)."""
        spec = self.spec(name)
        invocation = Invocation(
            invocation_id=next(_inv_ids),
            function_name=name,
            t_submit=self.env.now,
        )
        self.invocations.append(invocation)
        self.active_invocations += 1
        if self.metrics is not None:
            self.metrics.gauge("invocation.active").set(
                self.active_invocations, t=self.env.now
            )
        if self.tracer is not None:
            trace_id = self.tracer.new_trace_id()
            self._sample_seq += 1
            self.tracer.sample_root(
                trace_id,
                key=f"{self.sample_scope}|{name}|{self._sample_seq}",
                scope=self.sample_scope,
                workload=name,
            )
            invocation.bind_span(self.tracer.begin(
                f"invocation:{name}",
                cat="invocation",
                pid="invocations",
                tid=f"inv-{invocation.invocation_id}",
                trace_id=trace_id,
                workload=name,
                invocation_id=invocation.invocation_id,
            ))
        proc = self.env.process(
            self._run(spec, invocation, params), name=f"inv-{invocation.invocation_id}"
        )
        return invocation, proc

    def run_plan(self, plan, **params) -> Generator:
        """Launch every entry of an :class:`ArrivalPlan`; wait for all.

        Returns the invocation records in launch order.  The arrival
        timeouts are pre-created in one kernel batch
        (:func:`repro.faas.workload_gen.schedule_arrivals`) instead of one
        ``timeout()`` call per entry; an already-fired arrival (same-time
        burst entries) is yielded and resumes immediately.
        """
        records = []
        procs = []
        arrivals = schedule_arrivals(self.env, plan)
        for (t, name), arrival in zip(plan, arrivals):
            if arrival is not None:
                yield arrival
            inv, proc = self.invoke(name, **params)
            records.append(inv)
            procs.append(proc)
        yield self.env.all_of(procs)
        return records

    # -- internals -------------------------------------------------------------------
    def _run(self, spec: FunctionSpec, invocation: Invocation, params: dict) -> Generator:
        pool = self._pools[spec.name]
        container, token = yield from pool.acquire()
        invocation.status = "running"
        invocation.t_start = self.env.now
        if invocation._span is not None and invocation.t_start > invocation.t_submit:
            # Pre-start wait is a phase of the trace's breakdown but is
            # deliberately NOT an Invocation.phases entry: phases holds
            # only handler-measured intervals (queue_s already covers it).
            invocation._span.child_complete(
                "platform_queue", invocation.t_submit, invocation.t_start,
                cat="phase",
            )
        ctx = FunctionContext(
            self.env, invocation, container.host, self.storage, self, params,
            spec=spec,
        )
        watchdog = None
        try:
            if spec.max_duration_s > 0:
                body = self.env.process(
                    spec.handler(ctx), name=f"body-{invocation.invocation_id}"
                )
                watchdog = self.env.process(
                    self._watchdog(body, spec.max_duration_s),
                    name=f"watchdog-{invocation.invocation_id}",
                )
                try:
                    invocation.result = yield body
                except Interrupt:
                    invocation.status = "timeout"
                    invocation.result = FunctionTimeLimitExceeded(
                        f"{spec.name} exceeded its {spec.max_duration_s}s limit"
                    )
                    raise invocation.result
                invocation.status = "completed"
            else:
                invocation.result = yield from spec.handler(ctx)
                invocation.status = "completed"
        except FunctionTimeLimitExceeded:
            raise
        except Exception as exc:
            invocation.status = "failed"
            invocation.result = exc
            raise
        finally:
            invocation.t_end = self.env.now
            if invocation._span is not None:
                # Close at t_end: lease release below may consume further
                # sim time that belongs to the platform, not the function.
                invocation._span.end(
                    t_end=invocation.t_end, status=invocation.status
                )
            self.active_invocations -= 1
            if self.metrics is not None:
                self.metrics.gauge("invocation.active").set(
                    self.active_invocations, t=self.env.now
                )
                self.metrics.counter(
                    "invocation.status",
                    workload=invocation.function_name,
                    status=invocation.status,
                ).inc(trace_id=invocation.trace_id)
                self.metrics.histogram(
                    "invocation.e2e_s",
                    workload=invocation.function_name,
                    status=invocation.status,
                ).observe(invocation.e2e_s, trace_id=invocation.trace_id)
                self.metrics.histogram(
                    "invocation.queue_s", workload=invocation.function_name
                ).observe(invocation.queue_s, trace_id=invocation.trace_id)
            if ctx._gpu_lease is not None:
                yield from ctx._gpu_lease.release()
            pool.release(container, token)

    def _watchdog(self, body, limit_s: float):
        """Kill the function body if it outlives the provider's limit."""
        deadline = self.env.timeout(limit_s)
        try:
            yield self.env.any_of([body, deadline])
        except Exception:
            # The body failed before the deadline; _run observes and
            # reports that failure — the watchdog must not crash the sim.
            pass
        finally:
            # On early completion/failure the deadline would otherwise sit
            # in the event heap until it fires, keeping the run alive for
            # up to the full limit.
            deadline.cancel()
        if body.is_alive:
            body.interrupt("time limit exceeded")
