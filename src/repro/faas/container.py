"""Warm execution environments.

The paper always measures warm starts ("For all our measurements we
assume a warm start... by setting the minimum amount of replicas for each
function", §VI), so containers here are pre-provisioned and acquiring one
is instantaneous when a replica is free — invocations only queue if all
replicas of a function are busy.
"""

from __future__ import annotations

import itertools
from typing import Generator

from repro.errors import ConfigurationError
from repro.sim.core import Environment
from repro.sim.resources import Resource
from repro.simnet.net import Host

__all__ = ["Container", "ContainerPool"]

_ids = itertools.count(1)


class Container:
    """One warm replica of a function's execution environment."""

    def __init__(self, host: Host, function_name: str, memory_mb: int):
        self.container_id = next(_ids)
        self.host = host
        self.function_name = function_name
        self.memory_mb = memory_mb
        self.invocations_served = 0

    def __repr__(self) -> str:
        return f"<Container {self.container_id} fn={self.function_name}>"


class ContainerPool:
    """Fixed-size pool of warm replicas for one function."""

    def __init__(
        self,
        env: Environment,
        host: Host,
        function_name: str,
        replicas: int,
        memory_mb: int = 3008,
        cold_start_s: float = 0.0,
        max_replicas: int = 0,
    ):
        """``replicas`` warm containers are always available (the paper's
        measurement setup).  With ``max_replicas > replicas`` the pool can
        scale out under pressure, paying ``cold_start_s`` per cold
        container — the elasticity the paper factors out (§IV) but real
        platforms exhibit.
        """
        if replicas <= 0:
            raise ConfigurationError("replicas must be positive")
        if max_replicas and max_replicas < replicas:
            raise ConfigurationError("max_replicas must be >= replicas")
        self.env = env
        self.host = host
        self.function_name = function_name
        self.memory_mb = memory_mb
        self.cold_start_s = cold_start_s
        self.max_replicas = max_replicas or replicas
        self._containers = [
            Container(host, function_name, memory_mb) for _ in range(replicas)
        ]
        self._free = list(self._containers)
        self._gate = Resource(env, capacity=self.max_replicas)
        self.cold_starts = 0

    @property
    def replicas(self) -> int:
        return len(self._containers)

    @property
    def available(self) -> int:
        return len(self._free)

    def acquire(self) -> Generator:
        """Wait for a replica; returns (container, release_token).

        Warm replicas are handed out instantly; beyond them, cold
        containers are created up to ``max_replicas`` at ``cold_start_s``
        each.
        """
        request = self._gate.request()
        yield request
        if self._free:
            container = self._free.pop()
        else:
            # scale out: create a cold container
            self.cold_starts += 1
            if self.cold_start_s > 0:
                yield self.env.timeout(self.cold_start_s)
            container = Container(self.host, self.function_name, self.memory_mb)
            self._containers.append(container)
        return container, request

    def release(self, container: Container, request) -> None:
        container.invocations_served += 1
        self._free.append(container)
        self._gate.release(request)
