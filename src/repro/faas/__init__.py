"""Serverless platform substrate.

Models the parts of OpenFaaS / AWS Lambda that the paper's evaluation
actually exercises:

* warm execution environments (the paper always measures warm starts and
  factors container creation out, §IV/§VI),
* an S3-like object store — every function downloads its model and inputs
  from remote storage at the start of each invocation (§VI),
* arrival processes: exponential-gap sequences for the load experiments
  and back-to-back bursts for the utilization experiment (§VIII-D).
"""

from repro.faas.storage import ObjectStore, StorageProfile, S3_DEFAULT, S3_LAMBDA
from repro.faas.container import Container, ContainerPool
from repro.faas.platform import (
    ServerlessPlatform,
    FunctionSpec,
    FunctionContext,
    Invocation,
)
from repro.faas.workload_gen import (
    exponential_gap_arrivals,
    burst_arrivals,
    uniform_arrivals,
    interleave_workloads,
    ArrivalPlan,
)
from repro.faas.topology import (
    dgsf_collect,
    dgsf_scenario,
    pool_collect,
    pool_metrics_collect,
    pool_scenario,
)

__all__ = [
    "ObjectStore",
    "StorageProfile",
    "S3_DEFAULT",
    "S3_LAMBDA",
    "Container",
    "ContainerPool",
    "ServerlessPlatform",
    "FunctionSpec",
    "FunctionContext",
    "Invocation",
    "exponential_gap_arrivals",
    "burst_arrivals",
    "uniform_arrivals",
    "interleave_workloads",
    "ArrivalPlan",
    "dgsf_collect",
    "dgsf_scenario",
    "pool_collect",
    "pool_metrics_collect",
    "pool_scenario",
]
