"""The four ONNX Runtime workloads (§VII).

Face detection (RetinaFace), face identification (ArcFace), question
answering (BERT/SQuAD) and image classification (ResNet-50) share one GPU
phase: create an inference session, load the model, run the batches.
Their differences — call mixes, work, memory, demand — live entirely in
their :class:`~repro.workloads.params.WorkloadParams`.
"""

from __future__ import annotations

from typing import Generator

from repro.mllib.onnxrt import OnnxInferenceSession
from repro.workloads.params import WorkloadParams

__all__ = ["onnx_gpu_phase"]


def onnx_gpu_phase(fc, params: WorkloadParams) -> Generator:
    env = fc.env

    t0 = env.now
    # gpu_queue accrued before this window (e.g. early acquisition by the
    # artifact-cache path) must not be charged against cuda_init: only the
    # delta accrued inside the window is queueing, the rest is init.
    q0 = fc.invocation.phases.get("gpu_queue", 0.0)
    gpu = yield from fc.acquire_gpu()
    yield from gpu.cudaGetDeviceCount()
    queued = fc.invocation.phases.get("gpu_queue", 0.0) - q0
    fc.add_phase("cuda_init", env.now - t0 - queued)

    t0 = env.now
    session = OnnxInferenceSession(env, gpu, params.spec)
    yield from session.load()
    fc.add_phase("model_load", env.now - t0)

    t0 = env.now
    out = None
    for _ in range(params.n_batches):
        out = yield from session.run(params.input_bytes_per_batch)
    fc.add_phase("processing", env.now - t0)

    yield from session.close()
    return out is not None
