"""Synthetic migration microbenchmark (paper §VIII-E, Table V).

"We create a synthetic workload that allocates a fixed size, single array
of GPU memory, zeroes the array using cudaMemset and launches two kernels
that perform simple arithmetic operations on the array elements.  This is
the worst case for migration since there is a single large array."

The experiment forcefully migrates the API server between the two kernel
launches; Table V reports end-to-end and migration time for array sizes
taken from the workloads' footprints (323 / 3514 / 7802 / 13194 MB).
"""

from __future__ import annotations

from typing import Generator, Optional

__all__ = ["synthetic_migration_workload"]


def synthetic_migration_workload(
    env,
    gpu,
    array_bytes: int,
    kernel_work_s: float = 0.005,
    between_kernels: Optional[object] = None,
) -> Generator:
    """Run the §VIII-E microbenchmark on an attached GPU session.

    ``between_kernels``: optional zero-argument callable returning a
    generator, run between the two kernel launches — the hook the
    experiment uses to force a migration at that exact point.  Returns
    the first bytes of the array for correctness checks (each ``increment``
    kernel adds one to every element; after memset(0) + 2 kernels the
    array holds 2s).
    """
    ptr = yield from gpu.cudaMalloc(array_bytes)
    yield from gpu.cudaMemset(ptr, 0, array_bytes)
    inc = yield from gpu.cudaGetFunction("increment")

    yield from gpu.cudaLaunchKernel(inc, args=(kernel_work_s, ptr, array_bytes))
    yield from gpu.cudaDeviceSynchronize()

    if between_kernels is not None:
        yield from between_kernels()

    yield from gpu.cudaLaunchKernel(inc, args=(kernel_work_s, ptr, array_bytes))
    yield from gpu.cudaDeviceSynchronize()

    head = yield from gpu.memcpyD2H(ptr, 64)
    yield from gpu.cudaFree(ptr)
    return head
