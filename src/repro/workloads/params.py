"""Calibrated parameters for the six paper workloads (§VII, Table II).

Every number is anchored to the paper where one exists:

* download sizes: §VII's per-workload model/input sizes,
* peak GPU memory: Table II's "Peak GPU Memory Usage" row,
* declared GPU memory: the requirement the developer states — for
  CovidCTNet this is "the memory of an entire GPU" because TF's
  allocators spike to 13 538 MB (§VII),
* compute/work splits: derived from Table II's native runtimes minus the
  known components (3.2 s CUDA init, bandwidth-limited downloads), and
  from Figure 3/4's phase breakdowns,
* call-mix counts: chosen so that the ablation's per-optimization savings
  land near Figure 4 given the modeled per-call remoting overhead
  (≈2.4 ms per synchronous round trip; one modeled call stands for a
  small burst of real calls, keeping simulated-event counts tractable
  while preserving every aggregate the paper reports).

``host_prep_s`` captures input decode/pre-processing the paper folds into
its download phase (image decoding, CT-scan preparation).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.mllib.model import ModelSpec
from repro.simcuda.types import MB

__all__ = [
    "WorkloadParams",
    "WORKLOADS",
    "ALL_WORKLOAD_NAMES",
    "SMALLER_WORKLOAD_NAMES",
]


@dataclass(frozen=True)
class WorkloadParams:
    """Everything needed to run one workload in any execution variant."""

    name: str
    #: "onnx" | "tf" | "cuda"
    framework: str
    #: (object name, bytes) downloaded from storage at invocation start
    model_object: Optional[tuple[str, int]]
    input_object: tuple[str, int]
    #: CPU-side input decode/preparation (accounted to the download phase)
    host_prep_s: float
    #: GPU memory the function declares to the platform
    declared_gpu_bytes: int
    #: Table II peak for reference/assertions
    paper_peak_bytes: int
    #: model call-mix/work spec (None for the raw-CUDA K-means)
    spec: Optional[ModelSpec]
    #: inference batches per invocation
    n_batches: int
    #: input bytes uploaded per batch
    input_bytes_per_batch: int
    #: Table II CPU runtime (6 threads), reproduced as calibrated compute
    cpu_run_s: float
    #: Table II native/DGSF runtimes (for bench assertions/reports)
    paper_native_s: float = 0.0
    paper_dgsf_s: float = 0.0
    paper_lambda_s: float = 0.0
    #: K-means only: iteration structure
    kmeans_rounds: int = 0
    kmeans_round_work_s: float = 0.0


def _onnx(name, weights_mb, workspace_mb, layers, load_desc, infer_desc,
          launches, cudnn_ops, cublas_ops, batch_work, demand,
          load_work, sync_ops=0, host_work=0.0) -> ModelSpec:
    return ModelSpec(
        name=name,
        weight_bytes=int(weights_mb * MB),
        workspace_bytes=int(workspace_mb * MB),
        n_layers=layers,
        load_descriptor_calls=load_desc,
        infer_descriptor_calls=infer_desc,
        launches_per_batch=launches,
        cudnn_ops_per_batch=cudnn_ops,
        cublas_ops_per_batch=cublas_ops,
        batch_work_s=batch_work,
        gpu_demand=demand,
        load_work_s=load_work,
        sync_ops_per_batch=sync_ops,
        host_work_per_batch_s=host_work,
    )


WORKLOADS: dict[str, WorkloadParams] = {}


def _register(p: WorkloadParams) -> None:
    WORKLOADS[p.name] = p


# ----------------------------------------------------------------------
# K-means (Altis CUDA implementation): 1M 16-d points, 16 clusters.
# Input 235.3 MB; peak 323 MB; native 14.0 s, DGSF 9.9 s, CPU 429.1 s.
# Uses no cuDNN/cuBLAS — benefits only from context pre-creation (§VIII-C).
# ----------------------------------------------------------------------
_register(WorkloadParams(
    name="kmeans",
    framework="cuda",
    model_object=None,
    input_object=("kmeans/points", int(235.3 * MB)),
    host_prep_s=0.2,
    declared_gpu_bytes=600 * MB,
    paper_peak_bytes=323 * MB,
    spec=None,
    n_batches=0,
    input_bytes_per_batch=0,
    cpu_run_s=429.1,
    paper_native_s=14.0,
    paper_dgsf_s=9.9,
    paper_lambda_s=9.9,
    kmeans_rounds=400,
    kmeans_round_work_s=10.1 / 400,
))

# ----------------------------------------------------------------------
# CovidCTNet (TensorFlow, two models): models 47.3 MB, 2 CT scans 155.5 MB.
# Steady peak 7 802 MB but a transient 13 538 MB allocator spike forces a
# whole-GPU declaration (§VII).  native 25.1 s, DGSF 22.4 s, CPU 99.2 s.
# ----------------------------------------------------------------------
_register(WorkloadParams(
    name="covidctnet",
    framework="tf",
    model_object=("covid/models", int(47.3 * MB)),
    input_object=("covid/scans", int(155.5 * MB)),
    host_prep_s=0.6,
    declared_gpu_bytes=14_000 * MB,
    paper_peak_bytes=7_802 * MB,
    # per model (two are created): arena spike handled by the workload
    spec=_onnx("covidctnet", 23.6, 3_877, 24, 225, 22, 110, 10, 2,
               batch_work=0.8, demand=0.7, load_work=1.1, sync_ops=149,
               host_work=1.2),
    n_batches=8,
    input_bytes_per_batch=int(155.5 * MB / 8),
    cpu_run_s=99.2,
    paper_native_s=25.1,
    paper_dgsf_s=22.4,
    paper_lambda_s=24.6,
))

# ----------------------------------------------------------------------
# Face detection (RetinaFace/ResNet50 on ONNX Runtime): model 104.4 MB,
# 256 WIDER-FACE images ≈ 30 MB, batch 16.  Peak 13 194 MB.
# native 18.5 s (download+prep ≈ 4.4, init 3.2, load 1.7, infer 9.1 — §VIII-B),
# DGSF 16.4 s (load 1.1, infer 11.7).  CPU 71.0 s.
# ----------------------------------------------------------------------
_register(WorkloadParams(
    name="face_detection",
    framework="onnx",
    model_object=("facedet/retinaface", int(104.4 * MB)),
    input_object=("facedet/widerface", 30 * MB),
    host_prep_s=4.0,
    declared_gpu_bytes=13_500 * MB,
    paper_peak_bytes=13_194 * MB,
    spec=_onnx("retinaface", 104.4, 13_050, 56, 350, 8, 10, 18, 5,
               batch_work=0.21, demand=0.8, load_work=1.45, sync_ops=36,
               host_work=9.1 / 16 - 0.21),
    n_batches=16,
    input_bytes_per_batch=(30 * MB) // 16,
    cpu_run_s=71.0,
    paper_native_s=18.5,
    paper_dgsf_s=16.4,
    paper_lambda_s=17.9,
))

# ----------------------------------------------------------------------
# Face identification (ArcFace LResNet100E-IR on ONNX Runtime):
# model 249 MB, 256 LFW faces ≈ 17 MB, batch 16.  Peak 3 514 MB.
# The Fig. 4 exemplar: unoptimized processing 14.5 s → 4.7 s fully
# optimized (handle pooling −4.9, descriptor pooling −1.5, batching −3.4).
# native 13.4 s, DGSF 10.5 s, Lambda 18.0 s, CPU 42.1 s.
# ----------------------------------------------------------------------
_register(WorkloadParams(
    name="face_identification",
    framework="onnx",
    model_object=("faceid/arcface", 249 * MB),
    input_object=("faceid/lfw_pairs", 17 * MB),
    host_prep_s=4.9,
    declared_gpu_bytes=4_000 * MB,
    paper_peak_bytes=3_514 * MB,
    spec=_onnx("arcface", 249, 3_230, 100, 500, 19, 33, 14, 7,
               batch_work=0.05, demand=0.6, load_work=0.85, sync_ops=41,
               host_work=2.1 / 16 - 0.05),
    n_batches=16,
    input_bytes_per_batch=(17 * MB) // 16,
    cpu_run_s=42.1,
    paper_native_s=13.4,
    paper_dgsf_s=10.5,
    paper_lambda_s=18.0,
))

# ----------------------------------------------------------------------
# Question answering (BERT/SQuAD via MLPerf on ONNX Runtime):
# model 1.2 GB, 512 questions ≈ 61.7 MB, batch 16.  Peak 4 028 MB.
# Compute-heavy (demand 1.0) — two NLP instances "don't share the GPU
# well" (§VIII-E).  native 34.3 s, DGSF 32.4 s, Lambda 60.4 s, CPU 347 s.
# ----------------------------------------------------------------------
_register(WorkloadParams(
    name="nlp_qa",
    framework="onnx",
    model_object=("nlp/bert_large", 1_228 * MB),
    input_object=("nlp/squad_inputs", int(61.7 * MB)),
    host_prep_s=1.0,
    declared_gpu_bytes=4_500 * MB,
    paper_peak_bytes=4_028 * MB,
    spec=_onnx("bert", 1_228, 2_700, 24, 275, 6, 7, 5, 8,
               batch_work=0.71, demand=1.0, load_work=1.6, sync_ops=17,
               host_work=23.5 / 32 - 0.71),
    n_batches=32,
    input_bytes_per_batch=int(61.7 * MB) // 32,
    cpu_run_s=347.0,
    paper_native_s=34.3,
    paper_dgsf_s=32.4,
    paper_lambda_s=60.4,
))

# ----------------------------------------------------------------------
# Image classification (ResNet-50 v1.5 via MLPerf on ONNX Runtime):
# model 97.4 MB, 2048 preprocessed ImageNet images ≈ 1.2 GB.  Peak 7 650 MB.
# (We run 32 batches of 64 instead of 128 batches of 16 to bound event
# count; per-invocation totals are identical.)  native 26.7 s, DGSF 24.8 s,
# Lambda 47.1 s, CPU 66.7 s.
# ----------------------------------------------------------------------
_register(WorkloadParams(
    name="image_classification",
    framework="onnx",
    model_object=("imgclass/resnet50", int(97.4 * MB)),
    input_object=("imgclass/imagenet_npy", 1_228 * MB),
    host_prep_s=1.3,
    declared_gpu_bytes=8_000 * MB,
    paper_peak_bytes=7_650 * MB,
    spec=_onnx("resnet50", 97.4, 7_514, 53, 300, 20, 30, 11, 4,
               batch_work=0.20, demand=0.55, load_work=1.3, sync_ops=15,
               host_work=0.30),
    n_batches=32,
    input_bytes_per_batch=(1_228 * MB) // 32,
    cpu_run_s=66.7,
    paper_native_s=26.7,
    paper_dgsf_s=24.8,
    paper_lambda_s=47.1,
))


ALL_WORKLOAD_NAMES = list(WORKLOADS)

#: Table III's "Smaller Workloads": the four with smaller memory
#: footprints (excludes CovidCTNet's whole-GPU claim and face detection).
SMALLER_WORKLOAD_NAMES = [
    "kmeans",
    "face_identification",
    "nlp_qa",
    "image_classification",
]
