"""Calibration validation: keep the workload table honest.

The per-workload parameters in :mod:`repro.workloads.params` encode many
numbers from the paper; this module checks their *internal consistency*
so a future edit cannot silently break an invariant the experiments rely
on (e.g. a declared GPU budget smaller than the workload's own peak, or
ONNX buffer sizes that no longer add up to Table II's peak column).

Run :func:`validate_all` in tests or ad hoc:

    python -c "from repro.workloads.validation import validate_all; validate_all()"
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import ConfigurationError
from repro.simcuda.costs import DEFAULT_COSTS
from repro.simcuda.types import GB, MB
from repro.workloads.params import (
    WORKLOADS,
    SMALLER_WORKLOAD_NAMES,
    WorkloadParams,
)

__all__ = ["ValidationIssue", "validate_workload", "validate_all"]


@dataclass(frozen=True)
class ValidationIssue:
    workload: str
    message: str

    def __str__(self) -> str:
        return f"{self.workload}: {self.message}"


def _onnx_peak_estimate(p: WorkloadParams) -> int:
    """What the ONNX session will actually hold at peak."""
    spec = p.spec
    return (
        spec.weight_bytes
        + spec.workspace_bytes
        + max(p.input_bytes_per_batch, 1)
        + (1 << 14)  # output buffer
    )


def validate_workload(p: WorkloadParams) -> list[ValidationIssue]:
    issues: list[ValidationIssue] = []

    def bad(msg: str) -> None:
        issues.append(ValidationIssue(p.name, msg))

    # --- declared budget must cover the workload's own peak -----------------
    if p.framework == "onnx":
        est = _onnx_peak_estimate(p)
        if est > p.declared_gpu_bytes:
            bad(f"declared {p.declared_gpu_bytes} < estimated peak {est}")
        # the estimate should match Table II's peak within 10%
        if abs(est - p.paper_peak_bytes) > 0.10 * p.paper_peak_bytes:
            bad(
                f"buffer sizes imply peak {est / MB:.0f} MB but Table II "
                f"says {p.paper_peak_bytes / MB:.0f} MB"
            )
    if p.framework == "tf":
        # CovidCTNet: two arenas spike to ~13538 MB (§VII)
        from repro.workloads.covidctnet import ARENA_BYTES_PER_MODEL

        spike = 2 * ARENA_BYTES_PER_MODEL + 2 * p.spec.weight_bytes
        if spike > p.declared_gpu_bytes:
            bad(f"arena spike {spike} exceeds declared {p.declared_gpu_bytes}")
        steady = 2 * (p.spec.workspace_bytes + p.spec.weight_bytes)
        if abs(steady - p.paper_peak_bytes) > 0.05 * p.paper_peak_bytes:
            bad(
                f"steady working set {steady / MB:.0f} MB vs Table II "
                f"{p.paper_peak_bytes / MB:.0f} MB"
            )

    # --- the declaration must fit on a GPU next to static footprints --------
    static_per_gpu = (
        2 * 755 * MB      # two home API servers (sharing level 2)
        + 303 * MB        # spare migration-slot context
        + (386 + 70) * MB # one shared pool handle set
    )
    if p.declared_gpu_bytes + static_per_gpu > 16 * GB:
        bad(
            f"declared {p.declared_gpu_bytes / MB:.0f} MB cannot fit next "
            f"to the {static_per_gpu / MB:.0f} MB static footprint"
        )

    # --- batch structure ------------------------------------------------------
    if p.framework != "cuda":
        if p.n_batches <= 0:
            bad("ML workloads need at least one batch")
        if p.spec.batch_work_s + p.spec.host_work_per_batch_s <= 0:
            bad("batch must consume time")
        total_input = p.input_bytes_per_batch * p.n_batches
        declared_input = p.input_object[1]
        if total_input > declared_input * 1.05:
            bad(
                f"batches upload {total_input} B but the input object is "
                f"only {declared_input} B"
            )
    else:
        if p.kmeans_rounds <= 0 or p.kmeans_round_work_s <= 0:
            bad("CUDA workloads need an iteration structure")

    # --- paper anchors present -----------------------------------------------
    if p.paper_native_s <= 0 or p.paper_dgsf_s <= 0:
        bad("missing Table II anchors")
    if p.cpu_run_s <= p.paper_native_s:
        bad("CPU baseline should be slower than the GPU paths")
    # native must be long enough to contain the CUDA init it pays
    if p.paper_native_s < DEFAULT_COSTS.cuda_init_s:
        bad("native runtime shorter than the CUDA init it includes")

    return issues


def validate_all(raise_on_issue: bool = True) -> list[ValidationIssue]:
    issues: list[ValidationIssue] = []
    for params in WORKLOADS.values():
        issues.extend(validate_workload(params))
    # cross-workload invariants
    for name in SMALLER_WORKLOAD_NAMES:
        if name not in WORKLOADS:
            issues.append(ValidationIssue(name, "SW subset references unknown workload"))
    big = {"covidctnet", "face_detection"}
    for name in big & set(SMALLER_WORKLOAD_NAMES):
        issues.append(ValidationIssue(name, "whole-GPU workload in the SW subset"))
    if raise_on_issue and issues:
        raise ConfigurationError(
            "workload calibration inconsistent:\n  "
            + "\n  ".join(str(i) for i in issues)
        )
    return issues
