"""CovidCTNet workload (TensorFlow, two models — §VII).

Diagnoses COVID-19 from CT scans using *two* TensorFlow models whose
greedy allocators briefly coexist: "for a brief moment during execution,
allocates a large amount of memory: 13538MB.  If we didn't oversize the
function requirements, this workload would fail due to an out of memory
error."  Both arenas are grabbed before either is trimmed, reproducing
the spike and hence the whole-GPU declaration.
"""

from __future__ import annotations

from typing import Generator

from repro.mllib.tflib import TfSession
from repro.simcuda.types import MB
from repro.workloads.params import WorkloadParams

__all__ = ["covid_gpu_phase", "ARENA_BYTES_PER_MODEL"]

#: each model's transient arena: 2 × 6769 MB = the 13 538 MB spike
ARENA_BYTES_PER_MODEL = 6_769 * MB


def covid_gpu_phase(fc, params: WorkloadParams) -> Generator:
    env = fc.env

    t0 = env.now
    # only gpu_queue accrued inside this window counts as queueing here
    # (early acquisition by the artifact-cache path records it earlier)
    q0 = fc.invocation.phases.get("gpu_queue", 0.0)
    gpu = yield from fc.acquire_gpu()
    yield from gpu.cudaGetDeviceCount()
    queued = fc.invocation.phases.get("gpu_queue", 0.0) - q0
    fc.add_phase("cuda_init", env.now - t0 - queued)

    # -- model load: both models, arenas coexisting --
    t0 = env.now
    lung_model = TfSession(env, gpu, params.spec, arena_bytes=ARENA_BYTES_PER_MODEL)
    covid_model = TfSession(env, gpu, params.spec, arena_bytes=ARENA_BYTES_PER_MODEL)
    yield from lung_model.load(trim=False)
    yield from covid_model.load(trim=False)       # spike: both arenas live
    yield from lung_model.trim_arena()
    yield from covid_model.trim_arena()
    fc.add_phase("model_load", env.now - t0)

    # -- processing: scans go through both models --
    t0 = env.now
    out = None
    for batch in range(params.n_batches):
        session = lung_model if batch % 2 == 0 else covid_model
        out = yield from session.run(params.input_bytes_per_batch)
    fc.add_phase("processing", env.now - t0)

    yield from lung_model.close()
    yield from covid_model.close()
    return out is not None
