"""K-means workload (Altis GPU benchmark suite implementation, §VII).

One million 16-dimensional points, 16 clusters, iterative assign/update
rounds on the GPU.  This workload calls the CUDA runtime *directly* (no
cuDNN/cuBLAS), so under DGSF it "only benefits from CUDA runtime
pre-creation" (§VIII-C) — a useful control in the ablation.
"""

from __future__ import annotations

from typing import Generator

from repro.simcuda.types import MB
from repro.workloads.params import WorkloadParams

__all__ = ["kmeans_gpu_phase"]

#: problem shape from the paper: 1M points, 16 dims, 16 clusters
N_POINTS = 1_000_000
N_DIMS = 16
N_CLUSTERS = 16

POINTS_BYTES = int(235.3 * MB)      # the full input buffer
ASSIGN_BYTES = N_POINTS * 4         # int32 assignment per point
CENTROID_BYTES = N_CLUSTERS * N_DIMS * 4
AUX_BYTES = 83 * MB                 # scratch (distances, reductions)
SYNC_EVERY = 25                     # convergence check cadence


def kmeans_gpu_phase(fc, params: WorkloadParams) -> Generator:
    """The GPU portion: upload, iterate, download results."""
    env = fc.env

    # -- GPU attach + CUDA init (native pays 3.2 s here; DGSF's remote
    # context was pre-created, so only the handshake remains) --
    t0 = env.now
    # only gpu_queue accrued inside this window counts as queueing here
    # (early acquisition by the artifact-cache path records it earlier)
    q0 = fc.invocation.phases.get("gpu_queue", 0.0)
    gpu = yield from fc.acquire_gpu()
    yield from gpu.cudaGetDeviceCount()
    queued = fc.invocation.phases.get("gpu_queue", 0.0) - q0
    fc.add_phase("cuda_init", env.now - t0 - queued)

    # -- "model load": allocations + input upload --
    t0 = env.now
    points = yield from gpu.cudaMalloc(POINTS_BYTES)
    centroids = yield from gpu.cudaMalloc(CENTROID_BYTES)
    assignments = yield from gpu.cudaMalloc(ASSIGN_BYTES)
    aux = yield from gpu.cudaMalloc(AUX_BYTES)
    yield from gpu.memcpyH2D(points, POINTS_BYTES, sync=True)
    yield from gpu.memcpyH2D(centroids, CENTROID_BYTES, sync=True)
    fc.add_phase("model_load", env.now - t0)

    # -- processing: assign/update rounds --
    t0 = env.now
    assign_fn = yield from gpu.cudaGetFunction("kmeans_assign")
    update_fn = yield from gpu.cudaGetFunction("kmeans_update")
    half = params.kmeans_round_work_s / 2.0
    for round_idx in range(params.kmeans_rounds):
        yield from gpu.cudaLaunchKernel(
            assign_fn,
            grid=(N_POINTS // 256, 1, 1), block=(256, 1, 1),
            args=(half, points, centroids, assignments, N_POINTS, N_CLUSTERS, N_DIMS),
        )
        yield from gpu.cudaLaunchKernel(
            update_fn,
            grid=(N_CLUSTERS, 1, 1), block=(256, 1, 1),
            args=(half, points, centroids, assignments, N_POINTS, N_CLUSTERS, N_DIMS),
        )
        if (round_idx + 1) % SYNC_EVERY == 0:
            # convergence check: download the (tiny) centroid table
            yield from gpu.memcpyD2H(centroids, CENTROID_BYTES)
    yield from gpu.cudaDeviceSynchronize()
    result = yield from gpu.memcpyD2H(assignments, ASSIGN_BYTES)
    fc.add_phase("processing", env.now - t0)

    for ptr in (points, centroids, assignments, aux):
        yield from gpu.cudaFree(ptr)
    return len(result)
