"""Chat-serving LLM workloads (continuous batching + KV-cache pressure).

Three scenario families over one GPU phase:

* ``llm_chat`` — steady chat traffic: short prompts, short replies,
  modest KV footprint.  The baseline for the continuous-vs-request
  batching ablation.
* ``llm_chat_long`` — the same traffic with a fraction of long-context
  outliers (retrieval-augmented prompts): KV growth is bursty and
  imbalance between co-resident functions shows up, which is what the
  migration experiment leans on.
* ``llm_chat_storm`` — cache-eviction storm: two co-resident engines
  whose declared reservations nearly fill the GPU, with heavyweight
  per-token KV.  Page charges get denied, LIFO preemption/recompute
  kicks in, and the force-charge progress guarantee is exercised.

Deliberately kept OUT of :data:`repro.workloads.params.WORKLOADS` — the
six paper workloads and their goldens stay untouched; LLM workloads
register through :func:`register_llm_workloads`.

Traces are seeded by each workload's fixed ``trace_seed`` (never by
invocation id), so every invocation replays an identical trace and token
counts are seed-stable across runs and shard layouts.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Generator, Optional

from repro.errors import ConfigurationError
from repro.faas.platform import FunctionSpec, ServerlessPlatform
from repro.faas.storage import ObjectStore
from repro.mllib.llm import LlmModelSpec, LlmSession, make_chat_trace
from repro.simcuda.types import GB, KB, MB

__all__ = [
    "LlmWorkloadParams",
    "LLM_WORKLOADS",
    "ALL_LLM_WORKLOAD_NAMES",
    "llm_gpu_phase",
    "make_llm_handler",
    "register_llm_workloads",
    "stage_llm_objects",
]


@dataclass(frozen=True)
class LlmWorkloadParams:
    """One chat-serving scenario: a model plus a traffic shape."""

    name: str
    #: (object name, bytes) for the weights download
    model_object: tuple[str, int]
    #: host-side tokenizer/runtime setup folded into the download phase
    host_prep_s: float
    #: GPU memory the function declares (weights + activations headroom;
    #: KV pages are charged dynamically on top via the monitor ledger)
    declared_gpu_bytes: int
    spec: LlmModelSpec
    #: traffic shape — replayed identically on every invocation
    n_requests: int
    mean_gap_s: float
    prompt_mean_tokens: int
    output_mean_tokens: int
    trace_seed: int
    long_context_frac: float = 0.0
    long_prompt_tokens: int = 0

    def trace(self):
        return make_chat_trace(
            n_requests=self.n_requests,
            mean_gap_s=self.mean_gap_s,
            prompt_mean_tokens=self.prompt_mean_tokens,
            output_mean_tokens=self.output_mean_tokens,
            seed=self.trace_seed,
            long_context_frac=self.long_context_frac,
            long_prompt_tokens=self.long_prompt_tokens,
        )


LLM_WORKLOADS: dict[str, LlmWorkloadParams] = {}


def _register(p: LlmWorkloadParams) -> None:
    LLM_WORKLOADS[p.name] = p


# ----------------------------------------------------------------------
# Steady chat: a small chat model, short prompts/replies.  KV pages are
# 64 tokens x 256 KB = 16 MB; a typical sequence holds 2-3 pages.
# ----------------------------------------------------------------------
_register(LlmWorkloadParams(
    name="llm_chat",
    model_object=("llm/chat-weights", int(1.5 * GB)),
    host_prep_s=0.3,
    declared_gpu_bytes=int(2.5 * GB),
    spec=LlmModelSpec(
        name="chat-3b",
        weight_bytes=int(1.5 * GB),
        kv_bytes_per_token=256 * KB,
        kv_page_tokens=64,
        prefill_s_per_token=2e-4,
        decode_base_s=8e-3,
        decode_s_per_seq=2e-3,
        max_batch=8,
    ),
    n_requests=10,
    mean_gap_s=0.3,
    prompt_mean_tokens=96,
    output_mean_tokens=48,
    trace_seed=11,
))

# ----------------------------------------------------------------------
# Long-context outliers: 15% of prompts are 1024-token retrieval dumps.
# Same model; KV demand is bursty, so co-resident imbalance appears.
# ----------------------------------------------------------------------
_register(LlmWorkloadParams(
    name="llm_chat_long",
    model_object=("llm/chat-weights", int(1.5 * GB)),
    host_prep_s=0.3,
    declared_gpu_bytes=int(2.5 * GB),
    spec=LlmModelSpec(
        name="chat-3b",
        weight_bytes=int(1.5 * GB),
        kv_bytes_per_token=256 * KB,
        kv_page_tokens=64,
        prefill_s_per_token=2e-4,
        decode_base_s=8e-3,
        decode_s_per_seq=2e-3,
        max_batch=8,
    ),
    n_requests=10,
    mean_gap_s=0.25,
    prompt_mean_tokens=96,
    output_mean_tokens=96,
    trace_seed=13,
    long_context_frac=0.15,
    long_prompt_tokens=1024,
))

# ----------------------------------------------------------------------
# Cache-eviction storm: two of these co-resident on one 16 GB V100
# commit ~13 GB of declared memory, leaving ~1 GB of schedulable
# headroom for KV.  Pages are 64 tokens x 1 MB = 64 MB, so a handful of
# growing sequences exhaust it: charge denials, LIFO preemption with
# recompute, and force-charged progress all fire.  Physical usage stays
# far below capacity — the pressure is in the ledger, as designed.
# ----------------------------------------------------------------------
_register(LlmWorkloadParams(
    name="llm_chat_storm",
    model_object=("llm/chat-weights", int(1.5 * GB)),
    host_prep_s=0.3,
    declared_gpu_bytes=int(6.5 * GB),
    spec=LlmModelSpec(
        name="chat-3b-wide-kv",
        weight_bytes=int(1.5 * GB),
        kv_bytes_per_token=1 * MB,
        kv_page_tokens=64,
        prefill_s_per_token=2e-4,
        decode_base_s=8e-3,
        decode_s_per_seq=2e-3,
        max_batch=4,
    ),
    n_requests=8,
    mean_gap_s=0.15,
    prompt_mean_tokens=128,
    output_mean_tokens=64,
    trace_seed=17,
))

ALL_LLM_WORKLOAD_NAMES = tuple(LLM_WORKLOADS)


def stage_llm_objects(store: ObjectStore, names: list[str] | None = None) -> None:
    """Upload the LLM weights objects into the store."""
    for params in LLM_WORKLOADS.values():
        if names is not None and params.name not in names:
            continue
        obj, size = params.model_object
        if obj not in store:
            store.put_object(obj, size)


def llm_gpu_phase(fc, params: LlmWorkloadParams) -> Generator:
    """Acquire a GPU, load weights, serve the chat trace, tear down.

    The batching mode comes through invocation params (``llm_mode``), so
    the same registered function serves both arms of the ablation.
    """
    env = fc.env
    mode = fc.params.get("llm_mode", "continuous")

    t0 = env.now
    q0 = fc.invocation.phases.get("gpu_queue", 0.0)
    gpu = yield from fc.acquire_gpu()
    yield from gpu.cudaGetDeviceCount()
    queued = fc.invocation.phases.get("gpu_queue", 0.0) - q0
    fc.add_phase("cuda_init", env.now - t0 - queued)

    t0 = env.now
    session = LlmSession(
        env, gpu, params.spec,
        metrics=getattr(fc.platform, "metrics", None),
        workload=params.name,
        span=fc.invocation._span,
    )
    yield from session.load(mode)
    fc.add_phase("model_load", env.now - t0)

    t0 = env.now
    summary = yield from session.serve(params.trace(), mode)
    fc.add_phase("processing", env.now - t0)

    yield from session.close()
    return summary


def make_llm_handler(name: str):
    params = LLM_WORKLOADS.get(name)
    if params is None:
        raise ConfigurationError(f"unknown LLM workload {name!r}")

    def handler(fc) -> Generator:
        objects = [params.model_object[0]]
        yield from fc.download(objects)
        t0 = fc.env.now
        yield fc.env.timeout(params.host_prep_s)
        fc.add_phase("download", fc.env.now - t0)
        result = yield from llm_gpu_phase(fc, params)
        return result

    handler.__name__ = f"{name}_handler"
    return handler


def register_llm_workloads(
    platform: ServerlessPlatform,
    names: list[str] | None = None,
    min_replicas: int = 12,
) -> None:
    """Register the LLM workloads (and stage their weights)."""
    if platform.storage is not None:
        stage_llm_objects(platform.storage, names)
    for params in LLM_WORKLOADS.values():
        if names is not None and params.name not in names:
            continue
        platform.register(
            FunctionSpec(
                name=params.name,
                handler=make_llm_handler(params.name),
                gpu_mem_bytes=params.declared_gpu_bytes,
                min_replicas=min_replicas,
            )
        )
