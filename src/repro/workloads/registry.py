"""Handler construction and platform registration for the workloads."""

from __future__ import annotations

from typing import Generator

from repro.errors import ConfigurationError
from repro.faas.platform import FunctionSpec, ServerlessPlatform
from repro.faas.storage import ObjectStore
from repro.workloads.params import WorkloadParams, WORKLOADS
from repro.workloads.kmeans import kmeans_gpu_phase
from repro.workloads.covidctnet import covid_gpu_phase
from repro.workloads.onnx_workloads import onnx_gpu_phase

__all__ = ["make_handler", "make_cpu_handler", "register_workloads", "stage_objects"]

_GPU_PHASES = {
    "cuda": kmeans_gpu_phase,
    "tf": covid_gpu_phase,
    "onnx": onnx_gpu_phase,
}


def stage_objects(store: ObjectStore, names: list[str] | None = None) -> None:
    """Upload every workload's model/input objects into the store."""
    for params in WORKLOADS.values():
        if names is not None and params.name not in names:
            continue
        if params.model_object is not None:
            obj, size = params.model_object
            if obj not in store:
                store.put_object(obj, size)
        obj, size = params.input_object
        if obj not in store:
            store.put_object(obj, size)


def _download_phase(fc, params: WorkloadParams) -> Generator:
    """Model + input download from S3, plus host-side preparation.

    The paper folds input decoding into its download phase; we do too
    (``host_prep_s``).
    """
    objects = [params.input_object[0]]
    if params.model_object is not None:
        objects.insert(0, params.model_object[0])
    yield from fc.download(objects)
    t0 = fc.env.now
    yield fc.env.timeout(params.host_prep_s)
    fc.add_phase("download", fc.env.now - t0)


def make_handler(name: str):
    """Build the GPU handler for one workload (any deployment variant)."""
    params = WORKLOADS.get(name)
    if params is None:
        raise ConfigurationError(f"unknown workload {name!r}")
    gpu_phase = _GPU_PHASES[params.framework]

    def handler(fc) -> Generator:
        yield from _download_phase(fc, params)
        result = yield from gpu_phase(fc, params)
        return result

    handler.__name__ = f"{name}_handler"
    return handler


def make_cpu_handler(name: str):
    """CPU baseline: same download phase, calibrated compute time.

    Substitution note (see DESIGN.md): the paper's CPU rows come from
    hand-optimized pthreads/6-vCPU implementations and serve only to show
    GPU-vs-CPU scale; we reproduce them as calibrated compute phases.
    """
    params = WORKLOADS.get(name)
    if params is None:
        raise ConfigurationError(f"unknown workload {name!r}")

    def handler(fc) -> Generator:
        yield from _download_phase(fc, params)
        t0 = fc.env.now
        yield fc.env.timeout(params.cpu_run_s)
        fc.add_phase("processing", fc.env.now - t0)
        return True

    handler.__name__ = f"{name}_cpu_handler"
    return handler


def register_workloads(
    platform: ServerlessPlatform,
    names: list[str] | None = None,
    cpu: bool = False,
    min_replicas: int = 12,
) -> None:
    """Register workloads (and stage their objects) on a platform."""
    if platform.storage is not None:
        stage_objects(platform.storage, names)
    for params in WORKLOADS.values():
        if names is not None and params.name not in names:
            continue
        platform.register(
            FunctionSpec(
                name=params.name,
                handler=make_cpu_handler(params.name) if cpu else make_handler(params.name),
                gpu_mem_bytes=0 if cpu else params.declared_gpu_bytes,
                min_replicas=min_replicas,
            )
        )
