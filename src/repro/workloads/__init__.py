"""The six paper workloads plus the synthetic migration microbenchmark.

Each workload (paper §VII) is a handler generator against the GPU session
facade, with four execution variants sharing one code path:

* **native** — locally attached GPU (first call pays CUDA init),
* **DGSF** — remoted through the guest library (OpenFaaS network),
* **DGSF on Lambda** — same, over the degraded Lambda network profile,
* **CPU** — the calibrated CPU baseline (see DESIGN.md substitutions).

Workload parameters (downloads, call mixes, kernel work, memory
footprints) live in :mod:`repro.workloads.params`, each constant traced
back to a paper number.
"""

from repro.workloads.params import (
    WorkloadParams,
    WORKLOADS,
    ALL_WORKLOAD_NAMES,
    SMALLER_WORKLOAD_NAMES,
)
from repro.workloads.registry import (
    make_handler,
    make_cpu_handler,
    register_workloads,
    stage_objects,
)
from repro.workloads.synthetic import synthetic_migration_workload
from repro.workloads.llm_workloads import (
    LlmWorkloadParams,
    LLM_WORKLOADS,
    ALL_LLM_WORKLOAD_NAMES,
    make_llm_handler,
    register_llm_workloads,
    stage_llm_objects,
)

__all__ = [
    "WorkloadParams",
    "WORKLOADS",
    "ALL_WORKLOAD_NAMES",
    "SMALLER_WORKLOAD_NAMES",
    "make_handler",
    "make_cpu_handler",
    "register_workloads",
    "stage_objects",
    "synthetic_migration_workload",
    "LlmWorkloadParams",
    "LLM_WORKLOADS",
    "ALL_LLM_WORKLOAD_NAMES",
    "make_llm_handler",
    "register_llm_workloads",
    "stage_llm_objects",
]
