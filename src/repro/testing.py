"""Test/benchmark harness helpers: a fully brought-up DGSF world.

Lives in the package (rather than in ``tests/``) so both the test suite
and the benchmark suite can import it regardless of how pytest was
invoked."""

from __future__ import annotations

from repro.core import DgsfConfig
from repro.core.deployment import DgsfDeployment
from repro.core.guest import GuestLibrary
from repro.simnet.rpc import RpcClient


class DgsfWorld:
    """A brought-up deployment plus helpers for direct guest↔server tests."""

    def __init__(self, deployment: DgsfDeployment):
        self.dep = deployment
        self.env = deployment.env
        self.gpu_server = deployment.gpu_server
        self.monitor = deployment.gpu_server.monitor

    def drive(self, gen):
        """Run one generator to completion in the simulation."""
        proc = self.env.process(gen)
        return self.env.run(until=proc)

    def attach_guest(self, api_server=None, declared_bytes=2 << 30, flags=None,
                     kernel_names=None, **guest_kwargs):
        """Manually wire a guest library to an API server (bypassing the
        platform) — used by tests that poke the remoting layer directly.

        Extra keyword arguments are forwarded to :class:`GuestLibrary`
        (e.g. ``rpc_timeout_s`` for fault-path tests)."""
        if api_server is None:
            api_server = self.gpu_server.api_servers[0]
        conn = self.dep.network.connect(self.dep.fn_host, self.dep.gpu_host)
        api_server.begin_session(declared_bytes)
        rpc_server = api_server.serve_endpoint(conn.b)
        guest = GuestLibrary(
            self.env,
            RpcClient(conn.a),
            flags=flags if flags is not None else self.dep.config.optimizations,
            costs=self.dep.costs,
            **guest_kwargs,
        )
        self.drive(guest.attach(kernel_names or self.dep.kernels.names()))
        return guest, api_server, rpc_server

    def detach_guest(self, guest, api_server, rpc_server):
        self.drive(guest.detach())
        api_server.stop_serving()
        self.drive(api_server.end_session())


def make_world(config: DgsfConfig | None = None, **dep_kwargs) -> DgsfWorld:
    dep = DgsfDeployment(config=config or DgsfConfig(), **dep_kwargs)
    dep.setup()
    return DgsfWorld(dep)
