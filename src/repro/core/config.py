"""DGSF deployment configuration."""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Optional

from repro.errors import ConfigurationError
from repro.core.faults import FaultPlan

__all__ = ["OptimizationFlags", "DgsfConfig"]


@dataclass(frozen=True)
class OptimizationFlags:
    """The serverless specializations of §V-C, individually toggleable.

    The ablation study (Fig. 4) adds them cumulatively in this order:
    handle pooling → descriptor pooling → batching + unnecessary-API
    avoidance.
    """

    #: pre-created CUDA contexts and cuDNN/cuBLAS handle pools on the API
    #: server ("startup optimizations")
    handle_pooling: bool = True
    #: guest-side pooling of cuDNN descriptors — descriptor create/set/
    #: destroy never leave the guest
    descriptor_pooling: bool = True
    #: accumulate enqueue-only APIs locally and ship them in batches
    batching: bool = True
    #: emulate localizable APIs on the guest (cudaPointerGetAttributes,
    #: __cudaPushCallConfiguration, cudaMallocHost, device-count caching)
    avoid_unnecessary: bool = True
    #: forward enqueue-only APIs immediately on a pipelined channel instead
    #: of buffering them for a batched flush; errors are deferred to the
    #: next synchronization point.  Off by default (and excluded from
    #: :meth:`all`) so pre-existing timelines stay bit-identical.
    async_forward: bool = False

    @classmethod
    def none(cls) -> "OptimizationFlags":
        """Unoptimized DGSF (the ablation baseline)."""
        return cls(False, False, False, False)

    @classmethod
    def all(cls) -> "OptimizationFlags":
        """Every §V-C optimization of the paper's ablation (Fig. 4).

        ``async_forward`` is this reproduction's extension beyond the
        paper's final ablation step, so it stays off here; enable it
        explicitly with ``all().with_(async_forward=True)``.
        """
        return cls(True, True, True, True)

    def with_(self, **kwargs) -> "OptimizationFlags":
        return replace(self, **kwargs)


@dataclass(frozen=True)
class DgsfConfig:
    """Configuration of one DGSF deployment."""

    #: number of physical GPUs in the GPU server (paper: 4, also 3 and 2)
    num_gpus: int = 4
    #: API servers per GPU; 1 = "no sharing", 2 = "Sharing (Two)"
    api_servers_per_gpu: int = 1
    #: GPU assignment policy: "best_fit" | "worst_fit" | "first_fit"
    policy: str = "best_fit"
    #: queue discipline at the monitor: "fcfs" (the paper's deployed
    #: policy), "sff" — shortest-function-first, which the paper leaves
    #: as future work ("could improve throughput at some loss of
    #: fairness", §VIII-D) — "sff_aged" (SFF with a wait-time credit that
    #: bounds starvation), or "mqfq" (MQFQ-style per-function-class fair
    #: queueing with GPU stickiness; an extension beyond the paper)
    queue_discipline: str = "fcfs"
    #: aging credit rate for ``sff_aged``: a request's effective SFF key
    #: shrinks by ``sff_aging_factor`` seconds per second waited, and once
    #: the credit covers its full expected duration (wait ≥ expected /
    #: factor) it is dispatched FCFS-style, ahead of any shorter work
    sff_aging_factor: float = 0.1
    #: MQFQ throttle window ``T`` (seconds of virtual time): a flow whose
    #: start tag leads global virtual time by more than this is throttled
    #: until the laggards catch up
    mqfq_throttle_window_s: float = 60.0
    #: number of disaggregated GPU servers behind the backend (§IV:
    #: "Scaling up GPU servers in DGSF is simple")
    num_gpu_servers: int = 1
    #: how the backend picks a GPU server per function: "least_loaded"
    #: (optimize latency) or "round_robin"; §IV discusses the policy space
    backend_policy: str = "least_loaded"
    #: enable monitor-driven migration (§V-D)
    migration_enabled: bool = False
    #: imbalance check period for the monitor
    monitor_period_s: float = 0.5
    #: consecutive imbalance observations required before migrating — a
    #: transient idle GPU (e.g. a function still downloading) must not
    #: trigger a move
    migration_confirm_checks: int = 4
    #: optimization flags for guests attached to this deployment
    optimizations: OptimizationFlags = field(default_factory=OptimizationFlags)
    #: experiment seed (drives arrivals, jitter, input selection)
    seed: int = 0
    #: how many cuDNN/cuBLAS handle twins each per-GPU shared pool
    #: precreates.  Kept small: each set costs 456 MB of device memory and
    #: the largest workload (face detection, ~13.2 GB) must still fit on a
    #: GPU next to the static footprints.
    pool_handles_per_gpu: int = 1
    #: faults to inject (None = perfect hardware, the default)
    fault_plan: Optional[FaultPlan] = None
    #: guest RPC reply deadline; 0 disables timeouts (waits forever)
    rpc_timeout_s: float = 0.0
    #: retry budget for idempotent remotable calls after an RPC timeout
    rpc_max_retries: int = 2
    #: base of the bounded exponential backoff between retries
    rpc_retry_backoff_s: float = 0.25
    #: monitor declares an API server dead after this long without a
    #: §V-A ③ stats heartbeat (heartbeats arrive every monitor_period_s/2)
    heartbeat_timeout_s: float = 2.0
    #: capacity of each API server's artifact cache (bytes).  Repeat
    #: invocations on the same server skip the object-store download for
    #: cached artifacts; 0 (the default) disables caching entirely so the
    #: download path is untouched.
    artifact_cache_bytes: int = 0
    #: backpressure bound for async forwarding: at most this many
    #: enqueue-only calls may be unharvested in flight per guest
    async_max_in_flight: int = 64
    #: record nested sim-time spans for every invocation into a
    #: :class:`repro.obs.Tracer` (Chrome trace-event export).  Tracing is
    #: pure bookkeeping — it creates no events and draws no RNG — so the
    #: timeline is identical with it on or off; it defaults off only to
    #: avoid the memory cost on large runs.
    tracing_enabled: bool = False
    #: bound on stored trace records; past it the tracer counts drops
    #: (never silently) instead of growing
    trace_max_spans: int = 250_000
    #: head-sampling probability per invocation trace (1.0 = keep every
    #: trace, today's behaviour).  Below 1.0 the deployment attaches a
    #: :class:`repro.obs.sampling.TraceSampler`: roots are head-sampled
    #: on a stable key hash and tail-keep rules still retain interesting
    #: traces (errors/preemptions, SLO-alert overlap, per-window latency
    #: maxima) — a deterministic, seed-stable representative trace set
    #: for million-invocation runs
    trace_sample_rate: float = 1.0
    #: deployment-wide cap on concurrently decoding sequences per LLM
    #: engine — ``llmConfigure`` clamps the guest's requested batch to it
    llm_max_decode_batch: int = 8

    def __post_init__(self):
        if self.num_gpus <= 0:
            raise ConfigurationError("num_gpus must be positive")
        if self.api_servers_per_gpu <= 0:
            raise ConfigurationError("api_servers_per_gpu must be positive")
        if self.policy not in ("best_fit", "worst_fit", "first_fit"):
            raise ConfigurationError(f"unknown policy {self.policy!r}")
        if self.queue_discipline not in ("fcfs", "sff", "sff_aged", "mqfq"):
            raise ConfigurationError(
                f"unknown queue discipline {self.queue_discipline!r}"
            )
        if self.sff_aging_factor <= 0:
            raise ConfigurationError("sff_aging_factor must be positive")
        if self.mqfq_throttle_window_s < 0:
            raise ConfigurationError("mqfq_throttle_window_s must be non-negative")
        if self.num_gpu_servers <= 0:
            raise ConfigurationError("num_gpu_servers must be positive")
        if self.backend_policy not in ("least_loaded", "round_robin"):
            raise ConfigurationError(
                f"unknown backend policy {self.backend_policy!r}"
            )
        if self.monitor_period_s <= 0:
            raise ConfigurationError("monitor_period_s must be positive")
        if self.rpc_timeout_s < 0:
            raise ConfigurationError("rpc_timeout_s must be non-negative")
        if self.rpc_max_retries < 0:
            raise ConfigurationError("rpc_max_retries must be non-negative")
        if self.rpc_retry_backoff_s < 0:
            raise ConfigurationError("rpc_retry_backoff_s must be non-negative")
        if self.heartbeat_timeout_s <= 0:
            raise ConfigurationError("heartbeat_timeout_s must be positive")
        if self.artifact_cache_bytes < 0:
            raise ConfigurationError("artifact_cache_bytes must be non-negative")
        if self.async_max_in_flight <= 0:
            raise ConfigurationError("async_max_in_flight must be positive")
        if self.trace_max_spans <= 0:
            raise ConfigurationError("trace_max_spans must be positive")
        if not 0.0 <= self.trace_sample_rate <= 1.0:
            raise ConfigurationError("trace_sample_rate must be in [0, 1]")
        if self.llm_max_decode_batch <= 0:
            raise ConfigurationError("llm_max_decode_batch must be positive")

    @property
    def sharing_enabled(self) -> bool:
        return self.api_servers_per_gpu > 1

    def with_(self, **kwargs) -> "DgsfConfig":
        from dataclasses import replace as _replace

        return _replace(self, **kwargs)
