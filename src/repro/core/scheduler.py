"""Pluggable dispatch disciplines for the monitor's GPU request queue.

The paper's deployed policy is FCFS, which admits head-of-line blocking
("a serverless function requiring a large portion of the GPU can force
other serverless functions to wait in queue", §VIII-D), and its stated
future-work alternative — shortest-function-first — trades that for
unbounded starvation of large/long functions.  This module extracts the
dispatch decision out of :class:`repro.core.monitor.Monitor` into small
scheduler objects so disciplines can be compared under one accounting,
and adds two starvation-aware disciplines beyond the paper's prototype:

* ``fcfs`` — grant from the head while the head fits somewhere
  (event-for-event identical to the pre-extraction monitor loop).
* ``sff`` — repeatedly grant the feasible request with the smallest
  expected duration (event-for-event identical to the pre-extraction
  loop; starves large requests under a stream of small feasible ones).
* ``sff_aged`` — SFF with a per-request wait-time credit: a request's
  aged key is ``expected_duration_s - sff_aging_factor * wait_s``.  Once
  the credit consumes the whole expected duration (wait has reached
  ``expected_duration_s / sff_aging_factor``, the request's *starvation
  bound*), the request is dispatched FCFS-style: the oldest starved
  request becomes an exclusive head of line that blocks every younger
  grant until it fits.  That bounds any request's queue wait by its
  starvation bound plus the drain time of the sessions then running.
  Requests with no duration hint (``expected_duration_s == 0``) have a
  zero bound and therefore always queue FCFS-style — unknown cost is
  treated conservatively.
* ``mqfq`` — MQFQ-style virtual-time fair queueing (Fuerst et al.,
  2025) over per-function-class *flows*.  Each flow carries virtual
  start/finish tags advanced by its requests' expected costs; dispatch
  serves the eligible flow with the smallest start tag, and a flow more
  than the throttle window ``T`` of virtual time ahead of the global
  virtual clock is ineligible until the clock catches up, which bounds
  how far small-function flows can race ahead of a blocked large flow.
  Repeat invocations of a flow prefer the GPU that served it last
  (*stickiness*), keeping warm API-server / artifact-cache state hot.

Schedulers only reorder grants: all byte accounting, tracing and event
plumbing stays in the monitor, which calls back through
``monitor._grant``.  Every discipline is deterministic — no RNG, no
event creation — so runs reproduce bit-identically.

Metrics (when the monitor carries a registry): ``scheduler.enqueued`` /
``scheduler.granted`` counters, a ``scheduler.queue_wait_s`` histogram
labeled by discipline and request size class, ``scheduler.
starvation_grants`` (aged SFF) and ``scheduler.sticky_hits`` /
``scheduler.sticky_misses`` (MQFQ).
"""

from __future__ import annotations

import collections
from typing import Optional, TYPE_CHECKING

from repro.errors import ConfigurationError

if TYPE_CHECKING:  # pragma: no cover - import cycle guard, typing only
    from repro.core.monitor import GpuRequest

__all__ = [
    "DISCIPLINES",
    "DispatchScheduler",
    "FcfsScheduler",
    "SffScheduler",
    "AgedSffScheduler",
    "MqfqScheduler",
    "make_scheduler",
    "size_class",
]

#: every queue discipline the monitor accepts
DISCIPLINES = ("fcfs", "sff", "sff_aged", "mqfq")

_GB = 1 << 30


def size_class(declared_bytes: int) -> str:
    """Bucket a request's declared GPU memory for fairness reporting.

    The boundaries track the paper's workload set: kmeans (600 MB) is
    small, face identification / NLP (4–4.5 GB) are medium, image
    classification / face detection / CovidCTNet (8–14 GB) are large.
    """
    if declared_bytes < 2 * _GB:
        return "small"
    if declared_bytes < 8 * _GB:
        return "medium"
    return "large"


class DispatchScheduler:
    """Base queue + bookkeeping shared by every discipline.

    Subclasses implement :meth:`dispatch`, granting zero or more queued
    requests through ``monitor._grant`` until nothing more fits.  The
    arrival-ordered deque ``_queue`` is the single source of truth for
    membership (length, cancellation, introspection); disciplines that
    need extra structure (MQFQ's flows) keep it in sync.
    """

    name = "abstract"

    def __init__(self, monitor, metrics=None):
        self.monitor = monitor
        self.metrics = metrics
        self._queue: collections.deque = collections.deque()
        #: size_class -> worst queue wait observed at grant time (s)
        self.max_wait_s: dict[str, float] = {}
        self.granted_total = 0

    # -- queue membership ---------------------------------------------------
    def __len__(self) -> int:
        return len(self._queue)

    def queued(self) -> tuple:
        """Arrival-ordered snapshot of the waiting requests."""
        return tuple(self._queue)

    def enqueue(self, request: "GpuRequest") -> None:
        self._queue.append(request)
        if self.metrics is not None:
            self.metrics.counter("scheduler.enqueued", discipline=self.name).inc()
            self._publish_backlog()

    def requeue(self, request: "GpuRequest") -> None:
        """Put a crash-rescued request back at the front of the line."""
        self._queue.appendleft(request)
        if self.metrics is not None:
            # counted as a (re-)arrival so enqueued/granted stay paired for
            # stream consumers (the SLO queue-starvation rule FIFO-matches
            # them)
            self.metrics.counter("scheduler.enqueued", discipline=self.name).inc()
            self._publish_backlog()

    def remove(self, request: "GpuRequest") -> bool:
        """Drop a cancelled request; True if it was queued here."""
        try:
            self._queue.remove(request)
        except ValueError:
            return False
        if self.metrics is not None:
            self.metrics.counter("scheduler.cancelled", discipline=self.name).inc()
            self._publish_backlog()
        return True

    def _publish_backlog(self) -> None:
        self.metrics.gauge("scheduler.backlog", discipline=self.name).set(
            len(self._queue), t=self.monitor.env.now
        )

    # -- dispatch -----------------------------------------------------------
    def dispatch(self) -> None:
        raise NotImplementedError

    def _grant(self, request: "GpuRequest", device_id: int) -> None:
        # wait_start (not submitted_at): a crash-requeued clone's window
        # opens at the requeue, so the pre-crash wait — already observed
        # against the orphan's grant — is not double counted
        wait = self.monitor.env.now - request.wait_start()
        cls = size_class(request.declared_bytes)
        if wait > self.max_wait_s.get(cls, -1.0):
            self.max_wait_s[cls] = wait
        self.granted_total += 1
        if self.metrics is not None:
            self.metrics.counter("scheduler.granted", discipline=self.name).inc()
            self.metrics.histogram(
                "scheduler.queue_wait_s", discipline=self.name, size_class=cls,
                outcome="granted",
            ).observe(wait)
            self._publish_backlog()
        self.monitor._grant(request, device_id)

    def flush_pending_waits(self) -> None:
        """Observe the waits of everything still queued (survivorship fix).

        ``scheduler.queue_wait_s`` used to record only at grant time, so
        the requests still waiting when a saturated run ends — exactly
        the ones that define p99 under backlog — never appeared in the
        histogram.  Harnesses call this at teardown/snapshot time; the
        still-queued waits land labeled ``outcome="abandoned"`` (grants
        carry ``outcome="granted"``) and update ``max_wait_s`` the same
        way a grant would.  Idempotent by construction only when the
        queue is empty; call it once per run.
        """
        now = self.monitor.env.now
        for request in self._queue:
            wait = now - request.wait_start()
            cls = size_class(request.declared_bytes)
            if wait > self.max_wait_s.get(cls, -1.0):
                self.max_wait_s[cls] = wait
            if self.metrics is not None:
                self.metrics.histogram(
                    "scheduler.queue_wait_s", discipline=self.name,
                    size_class=cls, outcome="abandoned",
                ).observe(wait)


class FcfsScheduler(DispatchScheduler):
    """FCFS: grant from the head while the head fits somewhere.

    A large head request blocks smaller later ones — the paper's
    deployed policy (§VIII-D), head-of-line blocking included.
    """

    name = "fcfs"

    def dispatch(self) -> None:
        monitor = self.monitor
        while self._queue:
            head = self._queue[0]
            views = monitor._gpu_views()
            choice = monitor.policy.choose(views, head.declared_bytes) if views else None
            if choice is None:
                return  # head-of-line blocks
            self._queue.popleft()
            self._grant(head, choice)


class SffScheduler(DispatchScheduler):
    """Shortest-function-first (the paper's future-work policy):
    repeatedly grant the feasible queued request with the smallest
    expected duration — better throughput, unbounded unfairness."""

    name = "sff"

    def dispatch(self) -> None:
        monitor = self.monitor
        progress = True
        while progress and self._queue:
            progress = False
            views = monitor._gpu_views()
            if not views:
                return
            candidates = []
            for idx, request in enumerate(self._queue):
                choice = monitor.policy.choose(views, request.declared_bytes)
                if choice is not None:
                    candidates.append((request.expected_duration_s, idx, choice))
            if not candidates:
                return
            _, idx, choice = min(candidates)
            request = self._queue[idx]
            del self._queue[idx]
            self._grant(request, choice)
            progress = True


class AgedSffScheduler(DispatchScheduler):
    """SFF with wait-time aging: starvation is bounded by construction.

    While no request has exhausted its credit, dispatch is SFF on the
    *aged* key ``expected_duration_s - aging_factor * wait_s`` (ties
    break toward the oldest request).  Once a request's wait reaches its
    starvation bound ``expected_duration_s / aging_factor``, it is
    starved: the oldest starved request is dispatched FCFS-style — it
    must be granted before anything younger, blocking the line exactly
    like an FCFS head until capacity frees up for it.
    """

    name = "sff_aged"

    def __init__(self, monitor, metrics=None, aging_factor: float = 0.1):
        super().__init__(monitor, metrics)
        if aging_factor <= 0:
            raise ConfigurationError("sff_aging_factor must be positive")
        self.aging_factor = aging_factor

    def wait_bound_s(self, request: "GpuRequest") -> float:
        """Wait after which ``request`` is dispatched FCFS-style."""
        return request.expected_duration_s / self.aging_factor

    def _starved(self, request: "GpuRequest", now: float) -> bool:
        return (now - request.submitted_at) * self.aging_factor >= request.expected_duration_s

    def dispatch(self) -> None:
        monitor = self.monitor
        while self._queue:
            views = monitor._gpu_views()
            if not views:
                return
            now = monitor.env.now
            starved = next(
                (r for r in self._queue if self._starved(r, now)), None
            )
            if starved is not None:
                # FCFS-style: the oldest starved request owns the line.
                choice = monitor.policy.choose(views, starved.declared_bytes)
                if choice is None:
                    return  # blocks every younger request until it fits
                self._queue.remove(starved)
                if self.metrics is not None:
                    self.metrics.counter(
                        "scheduler.starvation_grants", discipline=self.name
                    ).inc()
                self._grant(starved, choice)
                continue
            candidates = []
            for idx, request in enumerate(self._queue):
                choice = monitor.policy.choose(views, request.declared_bytes)
                if choice is not None:
                    aged = (
                        request.expected_duration_s
                        - self.aging_factor * (now - request.submitted_at)
                    )
                    candidates.append((aged, idx, choice))
            if not candidates:
                return
            _, idx, choice = min(candidates)
            request = self._queue[idx]
            del self._queue[idx]
            self._grant(request, choice)


class _Flow:
    """One function class's queue + virtual-time tags + sticky device."""

    __slots__ = ("key", "index", "start_tag", "finish_tag", "requests", "last_device")

    def __init__(self, key: str, index: int):
        self.key = key
        self.index = index  # creation order, the deterministic tie-break
        self.start_tag = 0.0
        self.finish_tag = 0.0
        self.requests: collections.deque = collections.deque()
        self.last_device: Optional[int] = None


class MqfqScheduler(DispatchScheduler):
    """MQFQ-style fair queueing with GPU stickiness.

    Start-time fair queueing over per-function-class flows: an idle flow
    (re)activates at ``start = max(V, finish)``; serving a request
    advances the flow's tags by the request's cost (its expected
    duration, or ``default_cost_s`` when unhinted).  The global virtual
    clock ``V`` is the monotone minimum start tag across active flows.
    Eligibility is throttled: a flow whose start tag exceeds ``V + T``
    must wait for the clock, so a blocked (infeasible) flow — which pins
    ``V`` while it waits — can be overtaken by at most ``T`` of virtual
    time before everything else throttles and drains.  That is the MQFQ
    fairness bound, with ``T = 0`` degrading to pure start-tag order and
    ``T = inf`` to SFF-like work conservation.

    Stickiness: each flow remembers the GPU that served it last and
    prefers it while feasible (warm API-server and artifact-cache state
    live there); otherwise the deployment's placement policy chooses.
    """

    name = "mqfq"

    def __init__(self, monitor, metrics=None, throttle_window_s: float = 60.0,
                 default_cost_s: float = 1.0):
        super().__init__(monitor, metrics)
        if throttle_window_s < 0:
            raise ConfigurationError("mqfq_throttle_window_s must be non-negative")
        self.throttle_window_s = throttle_window_s
        self.default_cost_s = default_cost_s
        self._flows: dict[str, _Flow] = {}
        self._vtime = 0.0

    # -- flow plumbing ------------------------------------------------------
    def flow_key(self, request: "GpuRequest") -> str:
        """Function class of a request.

        Unhinted requests (no ``flow_key``) used to collapse into one
        shared ``~{size_class}`` flow, so a single chatty unhinted
        function could starve every classmate queued behind it in that
        flow's FIFO.  The fallback is now per *invocation* (the closest
        per-function identity a bare request carries), so each unhinted
        request activates its own flow at the current virtual time and
        competes under the same start-tag order as everything else.  The
        size-class fallback remains only for anonymous requests
        (``invocation_id == -1``, e.g. raw test harness submissions).
        """
        if request.flow_key:
            return request.flow_key
        if request.invocation_id != -1:
            return f"~inv:{request.invocation_id}"
        return f"~{size_class(request.declared_bytes)}"

    def _flow_for(self, request: "GpuRequest") -> _Flow:
        key = self.flow_key(request)
        flow = self._flows.get(key)
        if flow is None:
            flow = _Flow(key, len(self._flows))
            self._flows[key] = flow
        return flow

    def _cost(self, request: "GpuRequest") -> float:
        return request.expected_duration_s or self.default_cost_s

    def enqueue(self, request: "GpuRequest") -> None:
        super().enqueue(request)
        flow = self._flow_for(request)
        if not flow.requests:
            flow.start_tag = max(self._vtime, flow.finish_tag)
            flow.finish_tag = flow.start_tag + self._cost(request)
        flow.requests.append(request)

    def requeue(self, request: "GpuRequest") -> None:
        super().requeue(request)
        flow = self._flow_for(request)
        if not flow.requests:
            # Reactivate where the flow left off — the crashed grant
            # already advanced its tags, so it does not pay twice.
            flow.start_tag = max(self._vtime, flow.start_tag)
        flow.requests.appendleft(request)

    def remove(self, request: "GpuRequest") -> bool:
        if not super().remove(request):
            return False
        flow = self._flows.get(self.flow_key(request))
        if flow is not None:
            try:
                flow.requests.remove(request)
            except ValueError:
                pass
            self._maybe_prune(flow)
        return True

    def _maybe_prune(self, flow: _Flow) -> None:
        # per-invocation fallback flows never see a second request
        # (invocation ids are unique); drop them once drained so the
        # flow table doesn't grow with every unhinted invocation
        if not flow.requests and flow.key.startswith("~inv:"):
            self._flows.pop(flow.key, None)

    # -- dispatch -----------------------------------------------------------
    def _choose_device(self, views, flow: _Flow, request: "GpuRequest"):
        if flow.last_device is not None:
            for view in views:
                if (
                    view.device_id == flow.last_device
                    and view.schedulable_free >= request.declared_bytes
                ):
                    if self.metrics is not None:
                        self.metrics.counter(
                            "scheduler.sticky_hits", discipline=self.name
                        ).inc()
                    return view.device_id
            if self.metrics is not None:
                self.metrics.counter(
                    "scheduler.sticky_misses", discipline=self.name
                ).inc()
        return self.monitor.policy.choose(views, request.declared_bytes)

    def dispatch(self) -> None:
        monitor = self.monitor
        progress = True
        while progress and self._queue:
            progress = False
            views = monitor._gpu_views()
            if not views:
                return
            active = [f for f in self._flows.values() if f.requests]
            if not active:
                return
            # V also tracks the minimum active start tag, so the most
            # lagging flow is always eligible (never throttled).
            self._vtime = max(self._vtime, min(f.start_tag for f in active))
            for flow in sorted(active, key=lambda f: (f.start_tag, f.index)):
                if flow.start_tag > self._vtime + self.throttle_window_s:
                    break  # this and every later flow is throttled
                head = flow.requests[0]
                choice = self._choose_device(views, flow, head)
                if choice is None:
                    continue  # head doesn't fit; let the next flow try
                flow.requests.popleft()
                self._queue.remove(head)
                flow.start_tag = flow.finish_tag
                if flow.requests:
                    flow.finish_tag = flow.start_tag + self._cost(flow.requests[0])
                flow.last_device = choice
                self._maybe_prune(flow)
                self._grant(head, choice)
                progress = True
                break


def make_scheduler(discipline: str, monitor, metrics=None, *,
                   sff_aging_factor: float = 0.1,
                   mqfq_throttle_window_s: float = 60.0) -> DispatchScheduler:
    """Build the scheduler for one monitor's configured discipline."""
    if discipline == "fcfs":
        return FcfsScheduler(monitor, metrics)
    if discipline == "sff":
        return SffScheduler(monitor, metrics)
    if discipline == "sff_aged":
        return AgedSffScheduler(monitor, metrics, aging_factor=sff_aging_factor)
    if discipline == "mqfq":
        return MqfqScheduler(
            monitor, metrics, throttle_window_s=mqfq_throttle_window_s
        )
    raise ConfigurationError(
        f"unknown queue discipline {discipline!r} (choose from {DISCIPLINES})"
    )
