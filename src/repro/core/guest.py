"""The DGSF guest library (paper §V-B, §V-C).

This is the interposition shim a function's process loads instead of the
real CUDA/cuDNN/cuBLAS libraries.  Every entry point a workload can call
is implemented here; depending on the API's classification and the active
optimization flags a call is:

* **localized** — answered from guest-side state, zero network traffic
  (``cudaPointerGetAttributes`` from the allocation table,
  ``__cudaPushCallConfiguration`` piggybacked onto the next launch,
  ``cudaMallocHost`` fully emulated, descriptor create/set/destroy served
  from the guest-side descriptor pool),
* **batched** — appended to a local buffer of enqueue-only calls and
  shipped in a single message at the next synchronization point,
* **async-forwarded** — sent immediately on the pipelined RPC channel
  without waiting for the reply; remote failures are deferred and surface
  at the next synchronization point (``cudaStreamSynchronize`` /
  ``cudaDeviceSynchronize`` / a D2H copy — any synchronous round trip),
* **remoted** — one synchronous round trip to the API server.

Counters record intercepted vs forwarded calls so the evaluation can
report the paper's "reduced forwarded APIs by up to 48%/96%" numbers.

Method names and signatures form the *GPU session facade* shared with the
native baseline (:class:`repro.core.deployment.NativeGpuSession`):
workloads are written once against this facade and run unmodified under
native, DGSF/OpenFaaS and DGSF/Lambda deployments.
"""

from __future__ import annotations

import itertools
from typing import Generator, Optional

import numpy as np

from repro.errors import ReproError
from repro.sim.core import Environment
from repro.simcuda.costs import CostModel, DEFAULT_COSTS
from repro.simcuda.cudnn import DESCRIPTOR_KINDS
from repro.simcuda.errors import CudaError, cudaError
from repro.simcuda.runtime import PointerAttributes
from repro.simnet.rpc import PendingReply, RpcClient, RpcError, RpcTimeout
from repro.obs.metrics import MetricsRegistry
from repro.core.classify import ApiClass, classify
from repro.core.config import OptimizationFlags

__all__ = ["GuestLibrary", "GuestGpuBundle", "GuestRpcError", "IDEMPOTENT_METHODS"]

_local_ids = itertools.count(0x6000_0000)
_guest_ids = itertools.count(1)

#: flush the batch buffer when it reaches this many calls even without a
#: synchronization point (bounds guest memory and server burstiness)
BATCH_FLUSH_THRESHOLD = 48

#: remotable methods that are safe to re-issue after a lost reply: they
#: either mutate nothing server-side or overwrite the same bytes/state.
#: Allocation and handle/stream/event creation are NOT here — replaying
#: them would leak server resources if the first attempt did land.
IDEMPOTENT_METHODS = frozenset(
    {
        "attach",
        "cudaGetDeviceCount",
        "cudaGetDeviceProperties",
        "cudaSetDevice",
        "pushCallConfiguration",
        "cudaMemGetInfo",
        "cudaDeviceSynchronize",
        "cudaStreamSynchronize",
        "cudaEventSynchronize",
        "cudaEventElapsedTime",
        "memcpyD2H",
        "memcpyH2D",
        "memcpyD2D",
        "cudaMemset",
    }
)


class GuestRpcError(ReproError):
    """A remoted call could not be completed: the RPC timed out and was
    either non-idempotent (unsafe to replay) or out of retries.  The
    function fails cleanly instead of hanging on a dead server."""


def _translate_remote_error(exc: RpcError) -> Exception:
    """Map a marshalled remote failure back to a CudaError when possible."""
    text = str(exc)
    for code in cudaError:
        if code.name in text:
            return CudaError(code, text)
    return exc


class GuestLibrary:
    """One function's interposer, connected to one API server."""

    def __init__(
        self,
        env: Environment,
        rpc: RpcClient,
        flags: OptimizationFlags = OptimizationFlags(),
        costs: CostModel = DEFAULT_COSTS,
        batch_flush_threshold: int = BATCH_FLUSH_THRESHOLD,
        rpc_timeout_s: float = 0.0,
        rpc_max_retries: int = 2,
        rpc_retry_backoff_s: float = 0.25,
        async_max_in_flight: int = 64,
        metrics: Optional[MetricsRegistry] = None,
        tracer=None,
        span=None,
    ):
        self.env = env
        self.rpc = rpc
        self.flags = flags
        self.costs = costs
        self.batch_flush_threshold = max(1, batch_flush_threshold)
        #: reply deadline per remoted call; 0 = wait forever (no fault model)
        self.rpc_timeout_s = rpc_timeout_s
        self.rpc_max_retries = rpc_max_retries
        self.rpc_retry_backoff_s = rpc_retry_backoff_s
        #: async-forward backpressure: cap on unharvested in-flight calls
        self.async_max_in_flight = max(1, async_max_in_flight)
        self.attached = False
        # guest-side caches/state
        self._device_allocs: dict[int, int] = {}      # va -> size
        self._host_allocs: dict[int, int] = {}
        self._kernel_tokens: dict[str, int] = {}      # name -> server token
        self._descriptor_pool: dict[str, list[int]] = {k: [] for k in DESCRIPTOR_KINDS}
        self._local_descriptors: dict[int, tuple[str, dict]] = {}
        self._device_count: Optional[int] = None
        self._push_config: Optional[tuple] = None
        self._batch: list[tuple[str, tuple, int]] = []
        # async-forward state: unharvested in-flight calls (FIFO) and the
        # first remote failure awaiting the next synchronization point
        self._pending: list[PendingReply] = []
        self._deferred_error: Optional[Exception] = None
        # counters live in the (possibly shared) metrics registry, one
        # labeled instrument per guest; the legacy attribute names below
        # are read-only views so CommStats/CallTrace keep working
        self.guest_id = next(_guest_ids)
        self.metrics = metrics if metrics is not None else MetricsRegistry()
        c = self.metrics.counter
        g = self.guest_id
        self._c_intercepted = c("guest.calls_intercepted", guest=g)
        self._c_localized = c("guest.calls_localized", guest=g)
        self._c_batched = c("guest.calls_batched", guest=g)
        self._c_async_forwarded = c("guest.calls_async_forwarded", guest=g)
        self._c_async_deferred_errors = c("guest.async_deferred_errors", guest=g)
        self._c_async_replies_lost = c("guest.async_replies_lost", guest=g)
        self._c_rpc_timeouts = c("guest.rpc_timeouts", guest=g)
        self._c_rpc_retries = c("guest.rpc_retries", guest=g)
        # tracing: RPC spans hang off the invocation's root span when one
        # is provided (sharing its track), else a per-guest track
        self.tracer = tracer
        self._span = span
        if span is not None:
            self._trace_pid, self._trace_tid = span.pid, span.tid
        else:
            self._trace_pid, self._trace_tid = "guest", f"guest-{g}"
        if tracer is not None and span is not None:
            # propagate the trace context on the wire so the API server
            # can parent its execution spans under this invocation
            rpc.trace_ctx = (span.trace_id, span.span_id)

    # -- counter views ----------------------------------------------------------
    @property
    def calls_intercepted(self) -> int:
        return self._c_intercepted.value

    @property
    def calls_localized(self) -> int:
        return self._c_localized.value

    @property
    def calls_batched(self) -> int:
        return self._c_batched.value

    @property
    def calls_async_forwarded(self) -> int:
        return self._c_async_forwarded.value

    @property
    def async_deferred_errors(self) -> int:
        return self._c_async_deferred_errors.value

    @property
    def async_replies_lost(self) -> int:
        return self._c_async_replies_lost.value

    @property
    def rpc_timeouts(self) -> int:
        return self._c_rpc_timeouts.value

    @property
    def rpc_retries(self) -> int:
        return self._c_rpc_retries.value

    # -- derived counters -----------------------------------------------------------
    @property
    def calls_forwarded(self) -> int:
        """API calls that crossed the network (batched ones included)."""
        return self.rpc.calls_sent

    @property
    def calls_forwarded_individually(self) -> int:
        """Calls that crossed the network as their *own* synchronous
        message — the paper's "forwarded APIs" metric excludes calls
        piggybacked in batches (§V-C)."""
        return self.rpc.calls_sent - self.calls_batched

    @property
    def messages_sent(self) -> int:
        return self.rpc.messages_sent

    @property
    def async_in_flight(self) -> int:
        """Async-forwarded calls currently awaiting harvest."""
        return len(self._pending)

    @property
    def max_async_in_flight_seen(self) -> int:
        """High-water pipelining depth observed on the connection."""
        return self.rpc.max_in_flight

    # -- attach ------------------------------------------------------------------------
    def attach(self, kernel_names: list[str]) -> Generator:
        """Step ② of §V-A: register kernels with the API server.

        The server replies with tokens, so subsequent ``cudaGetFunction``
        calls are answered locally.
        """
        tokens = yield from self._remote(
            "attach", list(kernel_names), pooled=self.flags.handle_pooling
        )
        self._kernel_tokens.update(tokens)
        self.attached = True

    def detach(self) -> Generator:
        """Flush outstanding batched work before the connection closes.

        Async-forwarded calls still in flight are abandoned (their replies
        are no longer deliverable once the connection closes) and any
        deferred error is discarded — detach is process exit, not a
        synchronization point.
        """
        yield from self._flush()
        for pending in self._pending:
            pending.abandon()
            self._end_async_span(pending, "abandoned")
        self._pending = []
        self._deferred_error = None
        self.attached = False

    # -- plumbing ----------------------------------------------------------------------
    def _intercept(self) -> None:
        self._c_intercepted.inc()

    def _local(self) -> Generator:
        """Account a localized call: guest-side cost only."""
        self._c_localized.inc()
        yield self.env.timeout(self.costs.api_call_local_s)

    def _remote(self, method: str, *args, extra_bytes: int = 0,
                reply_extra_bytes: int = 0, **kwargs) -> Generator:
        """Synchronous round trip (flushes the batch first for ordering).

        With ``rpc_timeout_s`` set, replies are awaited under a deadline;
        timed-out *idempotent* calls are retried with bounded exponential
        backoff, everything else surfaces as :class:`GuestRpcError`.
        """
        yield from self._flush()
        timeout_s = self.rpc_timeout_s if self.rpc_timeout_s > 0 else None
        retries = self.rpc_max_retries if (
            timeout_s is not None and method in IDEMPOTENT_METHODS
        ) else 0
        t0 = self.env.now
        status = "error"
        attempts = 0
        try:
            for attempt in range(retries + 1):
                attempts = attempt + 1
                try:
                    result = yield from self.rpc.call(
                        method,
                        *args,
                        extra_bytes=extra_bytes,
                        reply_extra_bytes=reply_extra_bytes,
                        timeout_s=timeout_s,
                        **kwargs,
                    )
                except RpcTimeout as exc:
                    self._c_rpc_timeouts.inc()
                    if attempt >= retries:
                        status = "timeout"
                        raise GuestRpcError(
                            f"{method} gave up after {attempt + 1} attempt(s): {exc}"
                        ) from None
                    self._c_rpc_retries.inc()
                    if self.tracer is not None:
                        self.tracer.instant(
                            "rpc_retry", pid=self._trace_pid,
                            tid=self._trace_tid, parent=self._span,
                            method=method, attempt=attempt + 1,
                        )
                    yield self.env.timeout(self.rpc_retry_backoff_s * (2 ** attempt))
                except RpcError as exc:
                    status = "remote_error"
                    raise _translate_remote_error(exc) from None
                else:
                    # The sync round trip succeeded; it is a synchronization
                    # point: harvest async-forwarded completions and surface
                    # the first deferred failure (tentpole semantics).
                    # No-ops unless async forwarding is active.
                    status = "ok"
                    if self._pending:
                        self._drain_pending()
                    if self._deferred_error is not None:
                        err, self._deferred_error = self._deferred_error, None
                        raise err
                    return result
        finally:
            if self.tracer is not None:
                self.tracer.complete(
                    f"rpc:{method}", t0, self.env.now, cat="rpc",
                    pid=self._trace_pid, tid=self._trace_tid,
                    parent=self._span, route="sync", status=status,
                    attempts=attempts, req_bytes=extra_bytes,
                    reply_bytes=reply_extra_bytes,
                )

    def _enqueue(self, method: str, args: tuple, extra_bytes: int = 0) -> Generator:
        """Forward an enqueue-only call per the active optimization flags:
        pipelined async forwarding, the batch buffer, or a sync RPC."""
        if self.flags.async_forward:
            yield from self._forward_async(method, args, extra_bytes)
        elif self.flags.batching:
            self._c_batched.inc()
            self._batch.append((method, args, extra_bytes))
            if len(self._batch) >= self.batch_flush_threshold:
                self._flush_now()
            yield self.env.timeout(self.costs.api_call_local_s)
        else:
            # without batching every enqueue is its own synchronous RPC
            yield from self._remote(method, *args, extra_bytes=extra_bytes)

    def _forward_async(self, method: str, args: tuple, extra_bytes: int) -> Generator:
        """Send an enqueue-only call immediately on the pipelined channel.

        The guest does not wait for the reply; the server starts executing
        (and enqueuing device work) while the function keeps running, so
        server dispatch and GPU time overlap host compute instead of being
        deferred to the next flush.  Ordering with batched flushes is
        preserved: anything sitting in the batch buffer leaves first, and
        the connection is FIFO.
        """
        if self._batch:
            self._flush_now()
        while len(self._pending) >= self.async_max_in_flight:
            # backpressure: absorb the oldest in-flight call before sending
            yield from self._absorb_oldest()
        self._c_async_forwarded.inc()
        pending = self.rpc.call_async(method, *args, extra_bytes=extra_bytes)
        if self.tracer is not None:
            # open span closed at harvest time — the span's extent is the
            # call's full pipelined lifetime (send -> completion observed)
            pending.span = self.tracer.begin(
                f"rpc:{method}", cat="rpc", pid=self._trace_pid,
                tid=self._trace_tid, parent=self._span, route="async",
                req_bytes=extra_bytes, msg_id=pending.msg_id,
            )
        self._pending.append(pending)
        yield self.env.timeout(self.costs.api_call_local_s)

    def _absorb_oldest(self) -> Generator:
        """Blocking harvest of the oldest in-flight async call (backpressure
        path).  Failures are deferred, not raised — this is not a
        synchronization point."""
        pending = self._pending.pop(0)
        timeout_s = self.rpc_timeout_s if self.rpc_timeout_s > 0 else None
        try:
            yield from pending.wait(timeout_s=timeout_s)
        except RpcTimeout:
            self._c_rpc_timeouts.inc()
            self._c_async_replies_lost.inc()
            self._end_async_span(pending, "lost")
            self._defer(GuestRpcError(
                f"async {pending.method} reply lost (msg {pending.msg_id})"
            ))
        except RpcError as exc:
            self._end_async_span(pending, "remote_error")
            self._defer(_translate_remote_error(exc))
        else:
            self._end_async_span(pending, "ok")

    def _drain_pending(self) -> None:
        """Harvest async completions at a synchronization point.

        The connection is FIFO per direction and the server dispatches
        sequentially, so by the time the sync reply arrived every earlier
        async reply has too — anything missing was lost to a fault
        (dropped reply, server crash) and is abandoned.
        """
        pending, self._pending = self._pending, []
        for p in pending:
            if p.arrived:
                try:
                    p.result()
                except RpcError as exc:
                    self._end_async_span(p, "remote_error")
                    self._defer(_translate_remote_error(exc))
                else:
                    self._end_async_span(p, "ok")
            else:
                p.abandon()
                self._c_async_replies_lost.inc()
                self._end_async_span(p, "lost")
                self._defer(GuestRpcError(
                    f"async {p.method} reply lost (msg {p.msg_id})"
                ))

    def _end_async_span(self, pending: PendingReply, status: str) -> None:
        if pending.span is not None:
            pending.span.end(status=status)
            pending.span = None

    def _defer(self, err: Exception) -> None:
        """Record a failed async-forwarded call for the next sync point."""
        self._c_async_deferred_errors.inc()
        if self._deferred_error is None:
            self._deferred_error = err

    def _flush(self) -> Generator:
        if self._batch:
            self._flush_now()
        if False:
            yield
        return None

    def _flush_now(self) -> None:
        batch, self._batch = self._batch, []
        if self.tracer is not None:
            self.tracer.instant(
                "batch_flush", pid=self._trace_pid, tid=self._trace_tid,
                parent=self._span, calls=len(batch),
            )
        # one-way: ordering is guaranteed by the FIFO connection and the
        # server's sequential dispatch; the next sync call observes it
        gen = self.rpc.call_batch(batch, oneway=True)
        # oneway batches complete synchronously on the client side
        try:
            next(gen)
        except (StopIteration, TypeError):
            pass

    # ======================= CUDA runtime surface =======================

    # --- device management ---
    def cudaGetDeviceCount(self) -> Generator:
        self._intercept()
        if classify("cudaGetDeviceCount", self.flags) is ApiClass.LOCALIZABLE:
            if self._device_count is not None:
                yield from self._local()
                return self._device_count
        count = yield from self._remote("cudaGetDeviceCount")
        self._device_count = count
        return count

    def cudaGetDeviceProperties(self, device: int = 0) -> Generator:
        self._intercept()
        return (yield from self._remote("cudaGetDeviceProperties", device))

    def cudaSetDevice(self, device: int) -> Generator:
        self._intercept()
        if classify("cudaSetDevice", self.flags) is ApiClass.LOCALIZABLE:
            if device != 0:
                raise CudaError(cudaError.cudaErrorInvalidDevice, str(device))
            yield from self._local()
            return None
        return (yield from self._remote("cudaSetDevice", device))

    # --- memory ---
    def cudaMalloc(self, size: int) -> Generator:
        self._intercept()
        va = yield from self._remote("cudaMalloc", int(size))
        self._device_allocs[va] = int(size)
        return va

    def cudaFree(self, ptr: int) -> Generator:
        self._intercept()
        if ptr not in self._device_allocs:
            raise CudaError(cudaError.cudaErrorInvalidValue, f"{ptr:#x} not allocated")
        yield from self._remote("cudaFree", int(ptr))
        del self._device_allocs[ptr]
        return None

    def memcpyH2D(self, dst: int, size: int, payload: Optional[np.ndarray] = None,
                  sync: bool = True, stream: int = 0) -> Generator:
        self._intercept()
        pay_bytes = int(payload.nbytes) if payload is not None else 0
        extra = max(0, int(size) - pay_bytes)
        args = (int(dst), int(size), payload, sync, stream)
        if not sync and classify("cudaMemcpyAsync", self.flags) is ApiClass.BATCHABLE:
            yield from self._enqueue("memcpyH2D", args, extra_bytes=extra)
            return None
        yield from self._remote("memcpyH2D", *args, extra_bytes=extra)
        return None

    def memcpyD2H(self, src: int, size: int, stream: int = 0) -> Generator:
        self._intercept()
        data = yield from self._remote(
            "memcpyD2H", int(src), int(size), stream,
            reply_extra_bytes=int(size),
        )
        return data

    def memcpyD2D(self, dst: int, src: int, size: int, sync: bool = True,
                  stream: int = 0) -> Generator:
        self._intercept()
        args = (int(dst), int(src), int(size), sync, stream)
        if not sync and classify("cudaMemcpyAsync", self.flags) is ApiClass.BATCHABLE:
            yield from self._enqueue("memcpyD2D", args)
            return None
        yield from self._remote("memcpyD2D", *args)
        return None

    def cudaMemset(self, ptr: int, value: int, size: int, sync: bool = True,
                   stream: int = 0) -> Generator:
        self._intercept()
        args = (int(ptr), int(value), int(size), sync, stream)
        if not sync and classify("cudaMemsetAsync", self.flags) is ApiClass.BATCHABLE:
            yield from self._enqueue("cudaMemset", args)
            return None
        yield from self._remote("cudaMemset", *args)
        return None

    def cudaMallocHost(self, size: int) -> Generator:
        self._intercept()
        if classify("cudaMallocHost", self.flags) is ApiClass.LOCALIZABLE:
            yield from self._local()
            ptr = next(_local_ids)
            self._host_allocs[ptr] = int(size)
            return ptr
        # unoptimized DGSF still keeps host memory on the guest, but pays a
        # round trip to keep the server's view coherent
        yield from self._remote("pushCallConfiguration")  # cheap server no-op
        ptr = next(_local_ids)
        self._host_allocs[ptr] = int(size)
        return ptr

    def cudaFreeHost(self, ptr: int) -> Generator:
        self._intercept()
        if ptr not in self._host_allocs:
            raise CudaError(cudaError.cudaErrorInvalidValue, f"{ptr:#x}")
        if classify("cudaFreeHost", self.flags) is ApiClass.LOCALIZABLE:
            yield from self._local()
        else:
            yield from self._remote("pushCallConfiguration")
        del self._host_allocs[ptr]
        return None

    def cudaPointerGetAttributes(self, ptr: int) -> Generator:
        self._intercept()
        if classify("cudaPointerGetAttributes", self.flags) is ApiClass.LOCALIZABLE:
            # "the guest library tracks the addresses returned by device
            # memory allocation functions" (§V-C)
            yield from self._local()
            if ptr in self._device_allocs:
                return PointerAttributes(True, 0, self._device_allocs[ptr])
            if ptr in self._host_allocs:
                return PointerAttributes(False, -1, self._host_allocs[ptr])
            raise CudaError(cudaError.cudaErrorInvalidValue, f"{ptr:#x}")
        # unoptimized: ask the server (it only knows device pointers)
        if ptr in self._host_allocs:
            yield from self._remote("pushCallConfiguration")
            return PointerAttributes(False, -1, self._host_allocs[ptr])
        yield from self._remote("pushCallConfiguration")
        if ptr in self._device_allocs:
            return PointerAttributes(True, 0, self._device_allocs[ptr])
        raise CudaError(cudaError.cudaErrorInvalidValue, f"{ptr:#x}")

    # --- kernels ---
    def cudaGetFunction(self, name: str) -> Generator:
        self._intercept()
        token = self._kernel_tokens.get(name)
        if token is not None:
            yield from self._local()
            return token
        token = yield from self._remote("cudaGetFunction", name)
        self._kernel_tokens[name] = token
        return token

    def pushCallConfiguration(self, grid=(1, 1, 1), block=(1, 1, 1),
                              stream: int = 0) -> Generator:
        """``__cudaPushCallConfiguration``: emitted before every launch."""
        self._intercept()
        if classify("__cudaPushCallConfiguration", self.flags) is ApiClass.LOCALIZABLE:
            # piggybacked onto the launch itself (§V-C)
            yield from self._local()
            self._push_config = (tuple(grid), tuple(block), stream)
            return None
        yield from self._remote("pushCallConfiguration")
        self._push_config = (tuple(grid), tuple(block), stream)
        return None

    def cudaLaunchKernel(self, token: int, grid=(1, 1, 1), block=(1, 1, 1),
                         args: tuple = (), stream: int = 0,
                         work: Optional[float] = None) -> Generator:
        self._intercept()
        self._push_config = None
        call_args = (int(token), tuple(grid), tuple(block), tuple(args), stream, work)
        if classify("cudaLaunchKernel", self.flags) is ApiClass.BATCHABLE:
            yield from self._enqueue("cudaLaunchKernel", call_args)
            return None
        yield from self._remote("cudaLaunchKernel", *call_args)
        return None

    # --- streams / events / sync ---
    def cudaStreamCreate(self) -> Generator:
        self._intercept()
        return (yield from self._remote("cudaStreamCreate"))

    def cudaStreamSynchronize(self, stream: int) -> Generator:
        self._intercept()
        yield from self._remote("cudaStreamSynchronize", stream)
        return None

    def cudaStreamDestroy(self, stream: int) -> Generator:
        self._intercept()
        yield from self._remote("cudaStreamDestroy", stream)
        return None

    def cudaEventCreate(self) -> Generator:
        self._intercept()
        return (yield from self._remote("cudaEventCreate"))

    def cudaEventRecord(self, event: int, stream: int = 0) -> Generator:
        self._intercept()
        if classify("cudaEventRecord", self.flags) is ApiClass.BATCHABLE:
            yield from self._enqueue("cudaEventRecord", (event, stream))
            return None
        yield from self._remote("cudaEventRecord", event, stream)
        return None

    def cudaEventSynchronize(self, event: int) -> Generator:
        self._intercept()
        yield from self._remote("cudaEventSynchronize", event)
        return None

    def cudaEventElapsedTime(self, start: int, end: int) -> Generator:
        self._intercept()
        return (yield from self._remote("cudaEventElapsedTime", start, end))

    def cudaMemGetInfo(self) -> Generator:
        self._intercept()
        if classify("cudaPointerGetAttributes", self.flags) is ApiClass.LOCALIZABLE:
            # the guest tracks its own allocations, and the budget is the
            # declared amount — answerable locally once known
            if getattr(self, "_mem_budget", None) is not None:
                yield from self._local()
                used = sum(self._device_allocs.values())
                return (self._mem_budget - used, self._mem_budget)
        free, total = yield from self._remote("cudaMemGetInfo")
        self._mem_budget = total
        return (free, total)

    def cudaDeviceSynchronize(self) -> Generator:
        self._intercept()
        yield from self._remote("cudaDeviceSynchronize")
        return None

    # ======================= cuDNN surface =======================

    def cudnnCreate(self) -> Generator:
        self._intercept()
        return (yield from self._remote("cudnnCreate", self.flags.handle_pooling))

    def cudnnCreateDescriptor(self, kind: str) -> Generator:
        self._intercept()
        if classify("cudnnCreateDescriptor", self.flags) is ApiClass.LOCALIZABLE:
            # guest-side descriptor pool: reuse or mint locally (§V-C)
            yield from self._local()
            pool = self._descriptor_pool.get(kind)
            if pool is None:
                raise CudaError(cudaError.cudaErrorInvalidValue, f"kind {kind!r}")
            if pool:
                token = pool.pop()
            else:
                token = next(_local_ids)
            self._local_descriptors[token] = (kind, {})
            return token
        return (yield from self._remote("cudnnDescriptorOp", kind, "create"))

    def cudnnSetDescriptor(self, desc: int, **settings) -> Generator:
        self._intercept()
        if classify("cudnnSetDescriptor", self.flags) is ApiClass.LOCALIZABLE:
            yield from self._local()
            if desc in self._local_descriptors:
                self._local_descriptors[desc][1].update(settings)
            return None
        yield from self._remote("cudnnDescriptorOp", "tensor", "set")
        return None

    def cudnnDestroyDescriptor(self, desc: int) -> Generator:
        self._intercept()
        if classify("cudnnDestroyDescriptor", self.flags) is ApiClass.LOCALIZABLE:
            yield from self._local()
            entry = self._local_descriptors.pop(desc, None)
            if entry is not None:
                self._descriptor_pool[entry[0]].append(desc)
            return None
        yield from self._remote("cudnnDescriptorOp", "tensor", "destroy")
        return None

    def cudnnOp(self, handle: int, op: str, work: float, sync: bool = False,
                stream: int = 0) -> Generator:
        self._intercept()
        args = (int(handle), op, float(work), sync, stream)
        if not sync and classify("cudnnOpAsync", self.flags) is ApiClass.BATCHABLE:
            yield from self._enqueue("cudnnOp", args)
            return None
        yield from self._remote("cudnnOp", *args)
        return None

    # ======================= cuBLAS surface =======================

    def cublasCreate(self) -> Generator:
        self._intercept()
        return (yield from self._remote("cublasCreate", self.flags.handle_pooling))

    def cublasOp(self, handle: int, op: str, work: float, sync: bool = False,
                 stream: int = 0) -> Generator:
        self._intercept()
        args = (int(handle), op, float(work), sync, stream)
        if not sync and classify("cublasOpAsync", self.flags) is ApiClass.BATCHABLE:
            yield from self._enqueue("cublasOp", args)
            return None
        yield from self._remote("cublasOp", *args)
        return None

    # ======================= LLM decode surface =======================
    # Serving engines drive the server-side decode loop through these
    # remoted calls; none are idempotent (submit/step mutate engine
    # state), so a crash mid-call surfaces to the platform for retry.

    def llmConfigure(self, **engine_kwargs) -> Generator:
        self._intercept()
        return (yield from self._remote("llmConfigure", **engine_kwargs))

    def llmSubmit(self, req_id: int, prompt_tokens: int,
                  output_tokens: int) -> Generator:
        self._intercept()
        return (yield from self._remote(
            "llmSubmit", int(req_id), int(prompt_tokens), int(output_tokens)
        ))

    def llmStep(self) -> Generator:
        self._intercept()
        return (yield from self._remote("llmStep"))

    def llmStats(self) -> Generator:
        self._intercept()
        return (yield from self._remote("llmStats"))


class GuestGpuBundle:
    """What a DGSF function receives as its GPU: the guest library plus
    bookkeeping used by the deployment glue."""

    def __init__(self, guest: GuestLibrary, api_server, connection, rpc_server):
        self.guest = guest
        self.api_server = api_server
        self.connection = connection
        self.rpc_server = rpc_server

    @property
    def gpu(self) -> GuestLibrary:
        return self.guest
