"""Deployment-level fault plans.

A :class:`FaultPlan` declares *what* faults a chaos run injects; a
:class:`FaultDirector` turns the plan into concrete injectors, all fed
from one dedicated RNG stream (``rngs.stream("faults")``) so the same
seed reproduces the same crash/drop schedule and a plan-free run draws
nothing — no-fault experiments keep their exact event timeline.

Server crashes are drawn per session: when a function begins a session,
the injector decides (with ``server_crash_prob``) whether this session's
API server will crash, and if so after how many handled calls (uniform in
``crash_after_calls``) — i.e. mid-call, while the function is actively
remoting work.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Sequence

import numpy as np

from repro.errors import ConfigurationError
from repro.simnet.faults import LinkFaultInjector

__all__ = ["FaultPlan", "FaultDirector", "ServerFaultInjector"]


@dataclass(frozen=True)
class FaultPlan:
    """Declarative description of the faults to inject into a deployment."""

    #: probability that a given session's API server crashes mid-call
    server_crash_prob: float = 0.0
    #: (lo, hi) inclusive range of handled calls before the crash fires
    crash_after_calls: tuple[int, int] = (1, 40)
    #: cap on total API-server crashes across the run (0 = unlimited)
    max_crashes: int = 0
    #: per-message drop probability on guest<->server links
    link_drop_prob: float = 0.0
    #: per-message probability of an added latency spike
    delay_spike_prob: float = 0.0
    #: size of the latency spike, seconds
    delay_spike_s: float = 0.05
    #: ``(start, end)`` windows during which guest links drop everything
    partitions: Sequence[tuple[float, float]] = ()

    def __post_init__(self):
        if not 0.0 <= self.server_crash_prob <= 1.0:
            raise ConfigurationError("server_crash_prob must be in [0, 1]")
        lo, hi = self.crash_after_calls
        if lo < 1 or hi < lo:
            raise ConfigurationError(
                f"crash_after_calls {self.crash_after_calls} must satisfy 1 <= lo <= hi"
            )
        if self.max_crashes < 0:
            raise ConfigurationError("max_crashes must be non-negative")
        if not 0.0 <= self.link_drop_prob <= 1.0:
            raise ConfigurationError("link_drop_prob must be in [0, 1]")
        if not 0.0 <= self.delay_spike_prob <= 1.0:
            raise ConfigurationError("delay_spike_prob must be in [0, 1]")
        if self.delay_spike_s < 0:
            raise ConfigurationError("delay_spike_s must be non-negative")
        for window in self.partitions:
            start, end = window
            if end < start:
                raise ConfigurationError(f"partition window {window} ends before it starts")

    @property
    def any_link_faults(self) -> bool:
        return (
            self.link_drop_prob > 0
            or self.delay_spike_prob > 0
            or len(tuple(self.partitions)) > 0
        )


class ServerFaultInjector:
    """Draws per-session crash schedules for API servers."""

    def __init__(self, plan: FaultPlan, rng: np.random.Generator):
        self.plan = plan
        self.rng = rng
        #: sessions for which a crash was scheduled
        self.crashes_planned = 0

    def draw_session_crash(self) -> Optional[int]:
        """None, or the number of handled calls after which to crash."""
        plan = self.plan
        if plan.server_crash_prob <= 0:
            return None
        if plan.max_crashes and self.crashes_planned >= plan.max_crashes:
            return None
        if self.rng.random() >= plan.server_crash_prob:
            return None
        self.crashes_planned += 1
        lo, hi = plan.crash_after_calls
        return int(self.rng.integers(lo, hi + 1))


class FaultDirector:
    """Builds and shares the concrete injectors for one deployment.

    One director per deployment; all injectors share the director's RNG so
    fault decisions across servers/links form a single reproducible draw
    sequence.
    """

    def __init__(self, plan: FaultPlan, rng: np.random.Generator):
        self.plan = plan
        self.rng = rng
        self._server_injector: Optional[ServerFaultInjector] = None

    def server_injector(self) -> ServerFaultInjector:
        if self._server_injector is None:
            self._server_injector = ServerFaultInjector(self.plan, self.rng)
        return self._server_injector

    def link_injector(self) -> Optional[LinkFaultInjector]:
        """A fresh injector for one guest<->server connection (or None)."""
        if not self.plan.any_link_faults:
            return None
        return LinkFaultInjector(
            self.rng,
            drop_prob=self.plan.link_drop_prob,
            delay_spike_prob=self.plan.delay_spike_prob,
            delay_spike_s=self.plan.delay_spike_s,
            partitions=self.plan.partitions,
        )
