"""The DGSF API server (paper §V-A/§V-B/§V-C).

An API server is a process on the GPU server that "handles exclusively
one serverless function at a time and executes them on an actual physical
GPU".  It:

* pre-creates its CUDA context and one cuDNN + one cuBLAS handle on its
  *home* GPU at bring-up — the 755 MB idle footprint of §V-C — so none of
  that initialization is on any function's critical path,
* realizes guest API calls through the *driver-level* low-level memory
  management (``cuMemCreate``/``cuMemAddressReserve``/``cuMemMap``) so the
  virtual address map can be reproduced on another GPU during migration,
* *simulates* restricted APIs — ``cudaGetDeviceCount`` always answers 1,
  property queries describe only the currently assigned GPU,
* tracks every allocation so DGSF "knows exactly how much memory an
  application is using" and enforces the function's declared limit,
* keeps guest-visible handles (streams, events, kernel functions, cuDNN/
  cuBLAS handles) as opaque tokens mapped to per-context objects, the
  translation-map mechanism migration relies on (§V-D).

Execution is serialized with migration through an exec lock: "Migration
occurs at API call boundaries."
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Generator, Optional

import numpy as np

from repro.core.decode import DecodeEngine
from repro.errors import ReproError, SimulationError
from repro.sim.core import Environment
from repro.sim.resources import Resource
from repro.simcuda.context import CudaContext
from repro.simcuda.costs import CostModel
from repro.simcuda.cudnn import CudnnHandle, CudnnLibrary
from repro.simcuda.cublas import CublasHandle, CublasLibrary
from repro.simcuda.errors import CudaError, cudaError
from repro.simcuda.stream import Stream
from repro.simcuda.types import Dim3
from repro.simnet.rpc import RpcRequest, RpcServer

__all__ = ["ApiServer", "ApiServerDown", "FunctionSession", "ApiServerStats"]

_token_ids = itertools.count(0xA000_0000)


class ApiServerDown(ReproError):
    """The API server process died (injected crash or detected failure).

    Raised locally when a guest reaches a dead/recovering server; on the
    wire the crash manifests as silence — no reply ever arrives and the
    guest's RPC timeout fires instead.
    """


@dataclass(frozen=True)
class ApiServerStats:
    """One §V-A step-③ update message: "The API server constantly sends
    updates messages to the monitor so that it can keep track of
    utilization of each GPU"."""

    server_id: int
    t: float
    busy: bool
    current_device_id: int
    used_bytes: int
    api_calls: int


@dataclass
class FunctionSession:
    """Per-function state held by the API server while serving it."""

    declared_bytes: int
    invocation_id: int = -1
    used_bytes: int = 0
    peak_bytes: int = 0
    #: guest VA -> allocation size (the VAs live in the current context's space)
    allocations: dict[int, int] = field(default_factory=dict)
    #: guest stream token -> {device_id: Stream}
    streams: dict[int, dict[int, Stream]] = field(default_factory=dict)
    #: guest event token -> CudaEvent (in current context)
    events: dict[int, object] = field(default_factory=dict)
    #: guest function token -> kernel name
    kernel_names: dict[int, str] = field(default_factory=dict)
    #: guest cudnn token -> {device_id: CudnnHandle}
    cudnn_handles: dict[int, dict[int, CudnnHandle]] = field(default_factory=dict)
    cublas_handles: dict[int, dict[int, CublasHandle]] = field(default_factory=dict)
    #: handles borrowed from the shared pools (to return at session end)
    borrowed_cudnn: list[CudnnHandle] = field(default_factory=list)
    borrowed_cublas: list[CublasHandle] = field(default_factory=list)
    api_calls: int = 0
    #: server-side LLM decode engine, created by ``llmConfigure``
    llm: Optional[DecodeEngine] = None


class ApiServer:
    """One API server of a GPU server."""

    def __init__(self, env: Environment, gpu_server, server_id: int, home_device_id: int):
        self.env = env
        self.gpu_server = gpu_server
        self.server_id = server_id
        self.home_device_id = home_device_id
        self.current_device_id = home_device_id
        #: where the session's memory lives — normally equals
        #: ``current_device_id``; DCUDA-style peer-access migration leaves
        #: it behind on the source GPU
        self.memory_device_id = home_device_id
        #: multiplicative slowdown applied to kernel work (peer access)
        self.kernel_work_multiplier = 1.0
        #: device_id -> pre-created context (home at bring-up; target
        #: contexts are claimed from the per-GPU migration slot)
        self.contexts: dict[int, CudaContext] = {}
        #: per-context library facades (created alongside contexts)
        self._cudnn_libs: dict[int, CudnnLibrary] = {}
        self._cublas_libs: dict[int, CublasLibrary] = {}
        #: the server's own precreated handles on its home GPU (§V-C)
        self._own_cudnn: Optional[CudnnHandle] = None
        self._own_cublas: Optional[CublasHandle] = None
        self._own_cudnn_free = True
        self._own_cublas_free = True
        self.session: Optional[FunctionSession] = None
        self.exec_lock = Resource(env, capacity=1)
        self.migrations = 0
        self.requests_handled = 0
        #: set by the monitor between grant and release so a server cannot
        #: be handed to two functions (begin_session happens later, after
        #: the reply network hop)
        self.reserved = False
        self._rpc: Optional[RpcServer] = None
        # -- fault/recovery state --------------------------------------------
        #: the process is gone; nothing can be served until re-bring-up
        self.dead = False
        #: the monitor noticed the death and a replacement is being set up
        self.recovering = False
        #: did the crash orphan an *attached* function (vs. an idle server)?
        self.crashed_mid_session = False
        self.crashes = 0
        #: API-server-local artifact cache (None when disabled).  Host-side
        #: staging state: it survives GPU-to-GPU migration (the server
        #: stays on the same machine) but dies with the process on crash.
        self.artifact_cache = None
        cache_bytes = getattr(
            getattr(gpu_server, "config", None), "artifact_cache_bytes", 0
        )
        if cache_bytes:
            from repro.faas.storage import ArtifactCache

            self.artifact_cache = ArtifactCache(
                cache_bytes,
                metrics=getattr(gpu_server, "metrics", None),
                server=server_id,
            )
        #: optional :class:`repro.obs.Tracer` (set by the deployment):
        #: execution of each remoted call/batch becomes a "server" span
        self.tracer = None
        #: optional :class:`~repro.core.faults.ServerFaultInjector`
        self.fault_injector = None
        #: calls remaining until the injected crash fires (None = no crash)
        self._crash_countdown: Optional[int] = None
        #: bumped on crash/restart so stale heartbeat loops exit
        self._stats_generation = 0

    # -- bring-up ----------------------------------------------------------------
    @property
    def costs(self) -> CostModel:
        return self.gpu_server.costs

    @property
    def charged_bytes(self) -> int:
        """Declared bytes the monitor's charge ledger holds against this
        server's current assignment (0 while idle)."""
        monitor = getattr(self.gpu_server, "monitor", None)
        return monitor.charged_bytes(self) if monitor is not None else 0

    def setup(self) -> Generator:
        """Create the home context + own handle pair (off critical path)."""
        driver = self.gpu_server.driver
        ctx = yield from driver.cuCtxCreate(self.home_device_id)
        self._adopt_context(self.home_device_id, ctx)
        cudnn = self._cudnn_libs[self.home_device_id]
        h = yield from cudnn.cudnnCreate()
        self._own_cudnn = cudnn._handles[h]
        cublas = self._cublas_libs[self.home_device_id]
        h = yield from cublas.cublasCreate()
        self._own_cublas = cublas._handles[h]

    def _adopt_context(self, device_id: int, ctx: CudaContext) -> None:
        self.contexts[device_id] = ctx
        self._cudnn_libs[device_id] = CudnnLibrary(self.env, ctx, self.costs)
        self._cublas_libs[device_id] = CublasLibrary(self.env, ctx, self.costs)

    def release_context(self, device_id: int) -> CudaContext:
        """Detach a non-home context (returning a migration slot)."""
        if device_id == self.home_device_id:
            raise SimulationError("cannot release the home context")
        del self._cudnn_libs[device_id]
        del self._cublas_libs[device_id]
        return self.contexts.pop(device_id)

    # -- state ----------------------------------------------------------------------
    @property
    def busy(self) -> bool:
        return self.session is not None

    @property
    def schedulable(self) -> bool:
        """May the monitor grant this server to a new function?"""
        return not self.busy and not self.reserved and not self.dead and not self.recovering

    @property
    def migrated(self) -> bool:
        return self.current_device_id != self.home_device_id

    @property
    def context(self) -> CudaContext:
        """The *compute* context (kernels, streams)."""
        return self.contexts[self.current_device_id]

    @property
    def memory_context(self) -> CudaContext:
        """The context owning the session's memory (usually == context)."""
        return self.contexts[self.memory_device_id]

    @property
    def device(self):
        return self.context.device

    @property
    def used_bytes(self) -> int:
        return self.session.used_bytes if self.session else 0

    # -- serving ---------------------------------------------------------------------
    def serve_endpoint(self, endpoint) -> RpcServer:
        """Start an RPC server for one function's connection."""
        if self._rpc is not None:
            raise SimulationError("API server already serving a connection")
        self._rpc = RpcServer(endpoint, self.handle, batch_handler=self.handle_batch)
        self._rpc.start()
        return self._rpc

    def stop_serving(self) -> None:
        if self._rpc is not None:
            self._rpc.stop()
            self._rpc = None

    def begin_session(self, declared_bytes: int, invocation_id: int = -1) -> None:
        if self.dead or self.recovering:
            raise ApiServerDown(f"API server {self.server_id} is down")
        if self.busy:
            raise SimulationError(f"API server {self.server_id} already busy")
        self.session = FunctionSession(
            declared_bytes=declared_bytes, invocation_id=invocation_id
        )
        if self.fault_injector is not None:
            self._crash_countdown = self.fault_injector.draw_session_crash()

    def end_session(self) -> Generator:
        """Tear down function state; return home if migrated (§V-A)."""
        if self.session is None:
            raise SimulationError("no active session")
        with self.exec_lock.request() as lock:
            yield lock
            yield self.context.synchronize()
            session = self.session
            # Free leftover allocations (functions should free, but the
            # server guarantees cleanup like a process exit would).
            for va in list(session.allocations):
                yield from self._free_va(va)
            # Return borrowed pool handles.
            pools = self.gpu_server.pools
            for h in session.borrowed_cudnn:
                pools.return_cudnn(h)
            for h in session.borrowed_cublas:
                pools.return_cublas(h)
            self._own_cudnn_free = True
            self._own_cublas_free = True
            # Destroy per-function streams (all twins).
            for twins in session.streams.values():
                for dev_id, stream in twins.items():
                    ctx = self.contexts.get(dev_id)
                    if ctx is not None and stream.handle in ctx.streams:
                        ctx.destroy_stream(stream.handle)
            self.session = None
            if self.migrated:
                # "the API server changes its current GPU to the originally
                # assigned one" — no data left to move at this point.
                self.gpu_server.release_migration_slot(self, self.current_device_id)
                self.current_device_id = self.home_device_id
            self.memory_device_id = self.home_device_id
            self.kernel_work_multiplier = 1.0

    # -- RPC dispatch -------------------------------------------------------------------
    def _trace_track(self) -> tuple[str, str]:
        host = getattr(self.gpu_server, "host", None)
        pid = host.name if host is not None else "gpu-server"
        return pid, f"api-{self.server_id}"

    def _trace_server_span(self, name, t0, request, status, calls=1) -> None:
        """Record execution of a remoted call/batch (t0 = arrival, so the
        exec-lock wait is visible inside the span)."""
        trace_id, parent_id = getattr(request, "_trace", (None, None))
        pid, tid = self._trace_track()
        self.tracer.complete(
            name, t0, self.env.now, cat="server", pid=pid, tid=tid,
            trace_id=trace_id, parent_id=parent_id, status=status,
            server=self.server_id, msg_id=request.msg_id, calls=calls,
        )

    def handle(self, request: RpcRequest) -> Generator:
        """Dispatch one remoted API call (the RpcServer handler)."""
        t0 = self.env.now
        status = "error"
        try:
            with self.exec_lock.request() as lock:
                yield lock
                self.requests_handled += 1
                if self.session is not None:
                    self.session.api_calls += 1
                yield self.env.timeout(self.costs.api_call_server_s)
                self._maybe_crash(1)
                method = getattr(self, "_rpc_" + request.method, None)
                if method is None:
                    raise CudaError(
                        cudaError.cudaErrorNotSupported, f"unknown API {request.method!r}"
                    )
                result = yield from method(*request.args, **request.kwargs)
                status = "ok"
                return result
        finally:
            if self.tracer is not None:
                self._trace_server_span(f"srv:{request.method}", t0, request, status)

    def handle_batch(self, requests: list) -> Generator:
        """Execute a shipped batch under one exec-lock acquisition.

        Per-call unmarshal/dispatch cost is charged as a single aggregate
        timeout; migration still only happens at (batch) boundaries.
        """
        t0 = self.env.now
        status = "error"
        try:
            with self.exec_lock.request() as lock:
                yield lock
                self.requests_handled += len(requests)
                if self.session is not None:
                    self.session.api_calls += len(requests)
                yield self.env.timeout(self.costs.api_call_server_s * len(requests))
                self._maybe_crash(len(requests))
                values = []
                for request in requests:
                    method = getattr(self, "_rpc_" + request.method, None)
                    if method is None:
                        raise CudaError(
                            cudaError.cudaErrorNotSupported,
                            f"unknown API {request.method!r}",
                        )
                    values.append((yield from method(*request.args, **request.kwargs)))
                status = "ok"
                return values
        finally:
            if self.tracer is not None and requests:
                self._trace_server_span(
                    "srv:__batch__", t0, requests[0], status, calls=len(requests)
                )

    # Each _rpc_* method below implements one remoted API.

    def _rpc_attach(self, kernel_names: list[str], pooled: bool = True) -> Generator:
        """Step ② of §V-A: the guest sends information about its kernels.

        Without the startup optimization (``pooled=False``, the ablation
        baseline) the runtime context is initialized on demand here —
        putting the full 3.2 s CUDA initialization back on the critical
        path, exactly what handle pooling removes (§VIII-C).
        """
        session = self._session()
        if not pooled:
            yield self.env.timeout(self.costs.cuda_init_s)
        tokens = {}
        for name in kernel_names:
            token = next(_token_ids)
            session.kernel_names[token] = name
            # resolving also warms the per-context function pointer
            self.context.get_function(name)
            tokens[name] = token
        yield self.env.timeout(self.costs.api_call_server_s)
        return tokens

    # --- device management (restricted APIs, §V-B) ---
    def _rpc_cudaGetDeviceCount(self) -> Generator:
        # "the API server should always reply with 1"
        if False:
            yield
        return 1

    def _rpc_cudaGetDeviceProperties(self, device: int) -> Generator:
        if device != 0:
            raise CudaError(
                cudaError.cudaErrorInvalidDevice,
                "functions see exactly one GPU (index 0)",
            )
        if False:
            yield
        props = self.device.properties
        # Return a plain dict: the real system marshals a struct, and the
        # guest must not receive live server objects.
        return {
            "name": props.name,
            "total_global_mem": props.total_global_mem,
            "multiprocessor_count": props.multiprocessor_count,
            "clock_rate_khz": props.clock_rate_khz,
            "compute_capability": props.compute_capability,
        }

    def _rpc_pushCallConfiguration(self, *args) -> Generator:
        """Host-side no-op some unoptimized guests still forward."""
        if False:
            yield
        return None

    def _rpc_cudaSetDevice(self, device: int) -> Generator:
        if device != 0:
            raise CudaError(cudaError.cudaErrorInvalidDevice, str(device))
        if False:
            yield
        return None

    # --- memory management (DGSF-managed, §V-B) ---
    def _rpc_cudaMalloc(self, size: int) -> Generator:
        session = self._session()
        if session.used_bytes + size > session.declared_bytes:
            raise CudaError(
                cudaError.cudaErrorMemoryAllocation,
                f"function exceeded its declared GPU memory "
                f"({session.used_bytes + size} > {session.declared_bytes})",
            )
        driver = self.gpu_server.driver
        ctx = self.memory_context
        alloc = yield from driver.cuMemCreate(self.memory_device_id, size)
        va = driver.cuMemAddressReserve(ctx, size)
        driver.cuMemMap(ctx, va, alloc)
        session.allocations[va] = size
        session.used_bytes += size
        session.peak_bytes = max(session.peak_bytes, session.used_bytes)
        return va

    def _rpc_cudaFree(self, va: int) -> Generator:
        yield from self._free_va(va)
        return None

    def _free_va(self, va: int) -> Generator:
        session = self._session()
        if va not in session.allocations:
            raise CudaError(cudaError.cudaErrorInvalidValue, f"{va:#x} not allocated")
        driver = self.gpu_server.driver
        ctx = self.memory_context
        alloc = driver.cuMemUnmap(ctx, va)
        driver.cuMemAddressFree(ctx, va)
        yield from driver.cuMemRelease(alloc)
        session.used_bytes -= session.allocations.pop(va)

    def _llm_alloc(self, size: int) -> Generator:
        """Allocate a KV-cache page — same driver path as ``cudaMalloc``
        but exempt from the function's *declared* limit: cache growth is
        runtime-managed, admission-controlled through the monitor's
        charge ledger (``charge_extra``) instead of the static
        declaration."""
        session = self._session()
        driver = self.gpu_server.driver
        ctx = self.memory_context
        alloc = yield from driver.cuMemCreate(self.memory_device_id, size)
        va = driver.cuMemAddressReserve(ctx, size)
        driver.cuMemMap(ctx, va, alloc)
        session.allocations[va] = size
        session.used_bytes += size
        session.peak_bytes = max(session.peak_bytes, session.used_bytes)
        return va

    # --- copies ---
    def _rpc_memcpyH2D(self, dst: int, size: int, payload=None, sync: bool = True,
                       stream: int = 0) -> Generator:
        ctx = self.memory_context
        dst_ptr = int(dst)

        def start():
            if payload is not None:
                mapping, offset = ctx.address_space.translate(dst_ptr)
                mapping.allocation.write(offset, np.asarray(payload))
            return ctx.device.copy_h2d(size)

        done = self._stream(stream).enqueue(start, name="h2d")
        if sync:
            yield done
        return None

    def _rpc_memcpyD2H(self, src: int, size: int, stream: int = 0) -> Generator:
        ctx = self.memory_context
        src_ptr = int(src)
        result: dict = {}

        def start():
            mapping, offset = ctx.address_space.translate(src_ptr)
            result["data"] = mapping.allocation.read(offset, size)
            return ctx.device.copy_d2h(size)

        done = self._stream(stream).enqueue(start, name="d2h")
        yield done  # D2H must return data: always synchronous here
        return result.get("data")

    def _rpc_memcpyD2D(self, dst: int, src: int, size: int, sync: bool = True,
                       stream: int = 0) -> Generator:
        ctx = self.memory_context
        d, s = int(dst), int(src)

        def start():
            smap, soff = ctx.address_space.translate(s)
            dmap, doff = ctx.address_space.translate(d)
            dmap.allocation.write(doff, smap.allocation.read(soff, size))
            return ctx.device.copy_d2d(size)

        done = self._stream(stream).enqueue(start, name="d2d")
        if sync:
            yield done
        return None

    def _rpc_cudaMemset(self, ptr: int, value: int, size: int, sync: bool = True,
                        stream: int = 0) -> Generator:
        ctx = self.memory_context
        dev_ptr = int(ptr)

        def start():
            mapping, offset = ctx.address_space.translate(dev_ptr)
            window = mapping.allocation.read(offset, size)
            mapping.allocation.write(
                offset, np.full(len(window), value & 0xFF, np.uint8)
            )
            return ctx.device.memset(size)

        done = self._stream(stream).enqueue(start, name="memset")
        if sync:
            yield done
        return None

    # --- kernels ---
    def _rpc_cudaGetFunction(self, name: str) -> Generator:
        session = self._session()
        self.context.get_function(name)  # validates + warms
        token = next(_token_ids)
        session.kernel_names[token] = name
        if False:
            yield
        return token

    def _rpc_cudaLaunchKernel(self, token: int, grid, block, args, stream: int = 0,
                              work=None) -> Generator:
        session = self._session()
        name = session.kernel_names.get(token)
        if name is None:
            raise CudaError(
                cudaError.cudaErrorInvalidResourceHandle, f"kernel token {token:#x}"
            )
        ctx = self.context
        # "the API server must make sure it is using the correct pointer
        # for the current context in case the API server has migrated"
        fptr = ctx.get_function(name)
        yield self.env.timeout(self.costs.kernel_launch_s)
        if work is not None and self.kernel_work_multiplier != 1.0:
            # remote (peer) memory access slowdown after a DCUDA-style move
            work = work * self.kernel_work_multiplier
        ctx.launch_kernel(
            fptr,
            Dim3(*grid),
            Dim3(*block),
            tuple(args),
            stream_handle=self._stream(stream).handle,
            work_override=work,
        )
        return None

    # --- streams / events ---
    def _rpc_cudaStreamCreate(self) -> Generator:
        session = self._session()
        yield self.env.timeout(self.costs.stream_create_s)
        token = next(_token_ids)
        # "the API server preemptively creates streams on each context when
        # one stream is created and keeps a translation map" (§V-D)
        twins = {}
        for dev_id, ctx in self.contexts.items():
            twins[dev_id] = ctx.create_stream()
        session.streams[token] = twins
        return token

    def _rpc_cudaStreamSynchronize(self, token: int) -> Generator:
        yield self._stream(token).synchronize()
        return None

    def _rpc_cudaStreamDestroy(self, token: int) -> Generator:
        session = self._session()
        twins = session.streams.pop(token, None)
        if twins is None:
            raise CudaError(cudaError.cudaErrorInvalidResourceHandle, f"stream {token:#x}")
        for dev_id, stream in twins.items():
            ctx = self.contexts.get(dev_id)
            if ctx is not None and stream.handle in ctx.streams:
                ctx.destroy_stream(stream.handle)
        if False:
            yield
        return None

    def _rpc_cudaEventCreate(self) -> Generator:
        session = self._session()
        token = next(_token_ids)
        session.events[token] = self.context.create_event()
        if False:
            yield
        return token

    def _rpc_cudaEventRecord(self, token: int, stream: int = 0) -> Generator:
        event = self._event(token)
        event.record(self._stream(stream))
        if False:
            yield
        return None

    def _rpc_cudaEventSynchronize(self, token: int) -> Generator:
        yield self._event(token).synchronize()
        return None

    def _rpc_cudaEventElapsedTime(self, start: int, end: int) -> Generator:
        if False:
            yield
        try:
            seconds = self._event(end).elapsed_since(self._event(start))
        except RuntimeError as exc:
            raise CudaError(cudaError.cudaErrorInvalidResourceHandle, str(exc))
        return seconds * 1000.0

    def _rpc_cudaMemGetInfo(self) -> Generator:
        """Restricted like device properties: the function sees only its
        own declared budget, not the whole GPU server's memory state."""
        if False:
            yield
        session = self._session()
        free = session.declared_bytes - session.used_bytes
        return (free, session.declared_bytes)

    def _rpc_cudaDeviceSynchronize(self) -> Generator:
        yield self.context.synchronize()
        return None

    # --- cuDNN / cuBLAS ---
    def _rpc_cudnnCreate(self, pooled: bool = True) -> Generator:
        """Create (or hand out a pooled) cuDNN handle.

        With handle pooling the server returns its own precreated handle
        (or borrows from the per-GPU shared pool); without it, the full
        1.2 s creation happens inline — the ablation baseline.
        """
        session = self._session()
        handle: Optional[CudnnHandle] = None
        if pooled:
            if self._own_cudnn_free and self.current_device_id == self.home_device_id:
                handle = self._own_cudnn
                self._own_cudnn_free = False
            else:
                handle = self.gpu_server.pools.borrow_cudnn(self.current_device_id)
                if handle is not None:
                    session.borrowed_cudnn.append(handle)
        if handle is None:
            lib = self._cudnn_libs[self.current_device_id]
            h = yield from lib.cudnnCreate()
            handle = lib._handles[h]
        else:
            self._cudnn_libs[self.current_device_id].adopt_handle(handle)
        token = next(_token_ids)
        session.cudnn_handles[token] = {self.current_device_id: handle}
        return token

    def _rpc_cublasCreate(self, pooled: bool = True) -> Generator:
        session = self._session()
        handle: Optional[CublasHandle] = None
        if pooled:
            if self._own_cublas_free and self.current_device_id == self.home_device_id:
                handle = self._own_cublas
                self._own_cublas_free = False
            else:
                handle = self.gpu_server.pools.borrow_cublas(self.current_device_id)
                if handle is not None:
                    session.borrowed_cublas.append(handle)
        if handle is None:
            lib = self._cublas_libs[self.current_device_id]
            h = yield from lib.cublasCreate()
            handle = lib._handles[h]
        else:
            self._cublas_libs[self.current_device_id].adopt_handle(handle)
        token = next(_token_ids)
        session.cublas_handles[token] = {self.current_device_id: handle}
        return token

    def _rpc_cudnnDescriptorOp(self, kind: str, op: str) -> Generator:
        """Unpooled descriptor traffic (ablation baseline): host-side work."""
        lib = self._cudnn_libs[self.current_device_id]
        if op == "create":
            return (yield from lib.cudnnCreateDescriptor(kind))
        # set/destroy: tiny host-side cost, nothing to return
        yield self.env.timeout(self.costs.api_call_local_s)
        return None

    def _rpc_cudnnOp(self, token: int, op: str, work: float, sync: bool = False,
                     stream: int = 0) -> Generator:
        handle = self._library_handle(self._session().cudnn_handles, token)
        lib = self._cudnn_libs[self.current_device_id]
        lib.adopt_handle(handle)
        done = yield from lib.cudnnOp(
            handle.handle, op, work * self.kernel_work_multiplier,
            stream=self._stream(stream).handle,
        )
        if sync:
            yield done
        return None

    def _rpc_cublasOp(self, token: int, op: str, work: float, sync: bool = False,
                      stream: int = 0) -> Generator:
        handle = self._library_handle(self._session().cublas_handles, token)
        lib = self._cublas_libs[self.current_device_id]
        lib.adopt_handle(handle)
        done = yield from lib.cublasOp(
            handle.handle, op, work * self.kernel_work_multiplier,
            stream=self._stream(stream).handle,
        )
        if sync:
            yield done
        return None

    # --- LLM decode engine (iteration-level batching + KV paging) ---
    def _rpc_llmConfigure(self, **engine_kwargs) -> Generator:
        session = self._session()
        if session.llm is not None:
            raise CudaError(
                cudaError.cudaErrorInvalidValue, "decode engine already configured"
            )
        config = getattr(self.gpu_server, "config", None)
        batch_cap = getattr(config, "llm_max_decode_batch", 0) if config else 0
        session.llm = DecodeEngine(self, batch_cap=batch_cap, **engine_kwargs)
        if False:
            yield
        return session.llm.max_batch

    def _rpc_llmSubmit(self, req_id: int, prompt_tokens: int,
                       output_tokens: int) -> Generator:
        self._llm_engine().submit(req_id, prompt_tokens, output_tokens)
        if False:
            yield
        return None

    def _rpc_llmStep(self) -> Generator:
        return (yield from self._llm_engine().step())

    def _rpc_llmStats(self) -> Generator:
        if False:
            yield
        return self._llm_engine().stats()

    def _llm_engine(self) -> DecodeEngine:
        engine = self._session().llm
        if engine is None:
            raise CudaError(
                cudaError.cudaErrorInitializationError, "no decode engine configured"
            )
        return engine

    # -- helpers ----------------------------------------------------------------------
    def _session(self) -> FunctionSession:
        if self.session is None:
            raise CudaError(
                cudaError.cudaErrorInitializationError, "no function attached"
            )
        return self.session

    def _stream(self, token: int) -> Stream:
        if token in (0, None):
            return self.context.default_stream
        session = self._session()
        twins = session.streams.get(token)
        if twins is None:
            raise CudaError(cudaError.cudaErrorInvalidResourceHandle, f"stream {token:#x}")
        # the translation map in action: pick this context's twin
        return twins[self.current_device_id]

    def _event(self, token: int):
        session = self._session()
        event = session.events.get(token)
        if event is None:
            raise CudaError(cudaError.cudaErrorInvalidResourceHandle, f"event {token:#x}")
        return event

    def _library_handle(self, table: dict, token: int):
        twins = table.get(token)
        if twins is None:
            raise CudaError(cudaError.cudaErrorInvalidResourceHandle, f"handle {token:#x}")
        handle = twins.get(self.current_device_id)
        if handle is None:
            raise CudaError(
                cudaError.cudaErrorInvalidResourceHandle,
                f"handle {token:#x} has no twin on GPU {self.current_device_id} "
                "(migration should have installed one)",
            )
        return handle

    # -- crash / recovery ---------------------------------------------------------
    def _maybe_crash(self, calls: int) -> None:
        """Tick the injected-crash countdown; fires mid-call when it hits 0."""
        if self._crash_countdown is None:
            return
        self._crash_countdown -= calls
        if self._crash_countdown <= 0:
            self.crash()
            raise ApiServerDown(
                f"API server {self.server_id} crashed mid-call (injected)"
            )

    def crash(self) -> None:
        """Kill the API server process, as the OS would tear it down.

        Everything the *process* owned vanishes instantly and synchronously:
        its RPC loop dies without replying, its CUDA contexts are destroyed
        (which drops all session allocations and the 303 MB context
        footprint), its own cuDNN/cuBLAS handles are gone.  Shared-pool
        handles live in the manager's slot contexts and survive — they only
        return to stock.  The monitor notices via missed heartbeats and
        runs recovery; ``crash()`` itself does no re-bring-up.
        """
        if self.dead:
            return
        self.dead = True
        self.crashes += 1
        self.crashed_mid_session = self.busy
        if self.tracer is not None:
            pid, tid = self._trace_track()
            self.tracer.instant(
                "server_crash", pid=pid, tid=tid, server=self.server_id,
                mid_session=self.busy,
            )
        self._crash_countdown = None
        if self.artifact_cache is not None:
            # staged artifacts died with the process's scratch directory
            self.artifact_cache.invalidate_all()
        self._stats_generation += 1  # silence the heartbeat loop
        session, self.session = self.session, None
        rpc, self._rpc = self._rpc, None
        if rpc is not None:
            rpc.kill()
        # Shared-pool handles are not process-owned: back to stock.  Handles
        # the session created inline (pool miss / unpooled baseline) die
        # with the process — release their device footprint.
        pools = self.gpu_server.pools
        if session is not None:
            for h in session.borrowed_cudnn:
                pools.return_cudnn(h)
            for h in session.borrowed_cublas:
                pools.return_cublas(h)
            borrowed = set(session.borrowed_cudnn)
            for twins in session.cudnn_handles.values():
                for dev_id, h in twins.items():
                    if h is not self._own_cudnn and h not in borrowed:
                        self.gpu_server.device(dev_id).unreserve_bytes(
                            self.costs.cudnn_handle_bytes
                        )
            borrowed = set(session.borrowed_cublas)
            for twins in session.cublas_handles.values():
                for dev_id, h in twins.items():
                    if h is not self._own_cublas and h not in borrowed:
                        self.gpu_server.device(dev_id).unreserve_bytes(
                            self.costs.cublas_handle_bytes
                        )
        self._own_cudnn_free = True
        self._own_cublas_free = True
        driver = self.gpu_server.driver
        for device_id, ctx in list(self.contexts.items()):
            # OS teardown frees the process's device memory in one sweep
            # (no cuMemRelease latency: the process is not there to pay it).
            space = ctx.address_space
            for mapping in space.mappings:
                space.unmap(mapping.va)
                space.free_reservation(mapping.va)
                ctx.device.free_phys(mapping.allocation)
            for va in list(space.reservations):
                space.free_reservation(va)
            if device_id != self.home_device_id:
                # this context was claimed from the per-GPU migration slot
                self.gpu_server.note_slot_lost(device_id)
            driver.cuCtxDestroy(ctx)
        home = self.gpu_server.device(self.home_device_id)
        if self._own_cudnn is not None:
            home.unreserve_bytes(self.costs.cudnn_handle_bytes)
        if self._own_cublas is not None:
            home.unreserve_bytes(self.costs.cublas_handle_bytes)
        self._own_cudnn = None
        self._own_cublas = None
        self.contexts.clear()
        self._cudnn_libs.clear()
        self._cublas_libs.clear()
        self.current_device_id = self.home_device_id
        self.memory_device_id = self.home_device_id
        self.kernel_work_multiplier = 1.0

    def stats(self) -> ApiServerStats:
        """Snapshot for the periodic monitor update (§V-A ③)."""
        return ApiServerStats(
            server_id=self.server_id,
            t=self.env.now,
            busy=self.busy,
            current_device_id=self.current_device_id,
            used_bytes=self.used_bytes,
            api_calls=self.session.api_calls if self.session else 0,
        )

    def start_stats_reporting(self, monitor, period_s: float) -> None:
        """Begin the periodic update-message loop to the monitor.

        The loop is generation-tagged: a crash (or a later restart) bumps
        the generation, so a dead server's heartbeats stop — which is
        exactly the signal the monitor's failure detector watches for.
        """
        self._stats_generation += 1
        generation = self._stats_generation

        def loop():
            while self._stats_generation == generation:
                yield self.env.timeout(period_s)
                if self._stats_generation != generation:
                    return
                monitor.receive_stats(self.stats())

        self.env.process(loop(), name=f"stats-{self.server_id}")

    def __repr__(self) -> str:
        return (
            f"<ApiServer {self.server_id} home={self.home_device_id} "
            f"now={self.current_device_id} {'busy' if self.busy else 'idle'}>"
        )
