"""DGSF: the paper's contribution.

* :mod:`~repro.core.config` — deployment configuration (GPU count, sharing
  level, scheduling policy, optimization flags).
* :mod:`~repro.core.classify` — the remotable / localizable / special
  taxonomy of interposed APIs (§V-B).
* :mod:`~repro.core.guest` — the guest library: interposition, remoting,
  descriptor pooling, call batching, local emulation (§V-B, §V-C).
* :mod:`~repro.core.api_server` — API servers with pre-created contexts
  and handle pools; restricted-API simulation (§V-A, §V-C).
* :mod:`~repro.core.monitor` — GPU-server monitor: statistics, the
  function queue + charge ledger, GPU assignment policies, imbalance
  detection (§V-A).
* :mod:`~repro.core.scheduler` — pluggable dispatch disciplines: FCFS,
  SFF, aged SFF (starvation-bounded), MQFQ-style fair queueing.
* :mod:`~repro.core.migration` — VA-preserving live migration (§V-D).
* :mod:`~repro.core.gpu_server` — manager + assembly of one GPU server.
* :mod:`~repro.core.deployment` — end-to-end wiring: serverless platform
  + network + GPU server + guest libraries.
"""

from repro.core.config import DgsfConfig, OptimizationFlags
from repro.core.classify import ApiClass, classify, LOCALIZABLE, BATCHABLE
from repro.core.policies import Policy, BestFit, WorstFit, make_policy
from repro.core.backend import GpuBackend
from repro.core.handlepool import HandlePools
from repro.core.api_server import ApiServer, ApiServerDown
from repro.core.monitor import Monitor, GpuRequest
from repro.core.scheduler import DISCIPLINES, DispatchScheduler, make_scheduler, size_class
from repro.core.gpu_server import GpuServer
from repro.core.guest import GuestLibrary, GuestGpuBundle, GuestRpcError
from repro.core.migration import migrate_api_server, MigrationRecord
from repro.core.deployment import DgsfDeployment, NativeGpuProvider
from repro.core.faults import FaultPlan, FaultDirector, ServerFaultInjector
from repro.core.audit import (
    AuditError,
    AuditReport,
    AuditViolation,
    audit_deployment,
    audit_gpu_server,
)
from repro.core.stats import (
    summarize_invocations,
    summarize_outcomes,
    OutcomeSummary,
    WorkloadStats,
)
from repro.core.tracing import CallTrace, CallRecord, attach_trace

__all__ = [
    "DgsfConfig",
    "OptimizationFlags",
    "ApiClass",
    "classify",
    "LOCALIZABLE",
    "BATCHABLE",
    "Policy",
    "BestFit",
    "WorstFit",
    "make_policy",
    "GpuBackend",
    "HandlePools",
    "ApiServer",
    "ApiServerDown",
    "Monitor",
    "GpuRequest",
    "DISCIPLINES",
    "DispatchScheduler",
    "make_scheduler",
    "size_class",
    "GpuServer",
    "GuestLibrary",
    "GuestGpuBundle",
    "GuestRpcError",
    "migrate_api_server",
    "MigrationRecord",
    "DgsfDeployment",
    "NativeGpuProvider",
    "FaultPlan",
    "FaultDirector",
    "ServerFaultInjector",
    "AuditError",
    "AuditReport",
    "AuditViolation",
    "audit_deployment",
    "audit_gpu_server",
    "summarize_invocations",
    "summarize_outcomes",
    "OutcomeSummary",
    "WorkloadStats",
    "CallTrace",
    "CallRecord",
    "attach_trace",
]
