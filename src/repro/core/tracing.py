"""Interposition tracing: record what the guest library sees.

The real DGSF generates its remoting layer from API lists, and debugging
it means staring at call traces.  :class:`CallTrace` provides the
equivalent facility here: attach one to a :class:`~repro.core.guest
.GuestLibrary` and every interposed call is recorded with its timestamp,
classification outcome (localized / batched / async-forwarded / remoted)
and duration.

Traces answer questions like "which calls dominate this workload's
remoting overhead?" and back the call-mix numbers in EXPERIMENTS.md.
"""

from __future__ import annotations

import collections
from dataclasses import dataclass, field
from typing import Optional

__all__ = ["CallRecord", "CallTrace", "attach_trace"]


@dataclass(frozen=True)
class CallRecord:
    """One interposed API call."""

    t: float
    api: str
    #: "local" | "batched" | "async" | "remote"
    route: str
    duration_s: float


@dataclass
class CallTrace:
    """An append-only trace with summary helpers.

    Bounded: past :attr:`max_records`, new records are counted in
    :attr:`dropped` instead of silently discarded, so a truncated trace is
    always distinguishable from a complete one.
    """

    records: list[CallRecord] = field(default_factory=list)
    max_records: int = 1_000_000
    #: records refused because the trace was full (never silent)
    dropped: int = 0

    def add(self, record: CallRecord) -> None:
        if len(self.records) < self.max_records:
            self.records.append(record)
        else:
            self.dropped += 1

    def __len__(self) -> int:
        return len(self.records)

    @property
    def truncated(self) -> bool:
        return self.dropped > 0

    def summary(self) -> dict:
        """Headline numbers, including truncation state."""
        return {
            "records": len(self.records),
            "dropped": self.dropped,
            "max_records": self.max_records,
            "truncated": self.truncated,
            "by_route": self.counts_by_route(),
        }

    # -- summaries -------------------------------------------------------------
    def counts_by_api(self) -> dict[str, int]:
        counter: collections.Counter = collections.Counter(
            r.api for r in self.records
        )
        return dict(counter)

    def counts_by_route(self) -> dict[str, int]:
        counter: collections.Counter = collections.Counter(
            r.route for r in self.records
        )
        return dict(counter)

    def time_by_api(self) -> dict[str, float]:
        out: dict[str, float] = {}
        for r in self.records:
            out[r.api] = out.get(r.api, 0.0) + r.duration_s
        return out

    def top_by_time(self, n: int = 10) -> list[tuple[str, float]]:
        """The APIs dominating interposition time — the paper's candidates
        for localization/batching."""
        return sorted(self.time_by_api().items(), key=lambda kv: -kv[1])[:n]

    def between(self, start: float, end: float) -> "CallTrace":
        """Sub-trace restricted to a time window (e.g. one phase)."""
        return CallTrace(
            records=[r for r in self.records if start <= r.t < end],
            max_records=self.max_records,
            dropped=self.dropped,  # window may be missing records too
        )


def attach_trace(guest, trace: Optional[CallTrace] = None) -> CallTrace:
    """Wrap every public API method of ``guest`` with trace recording.

    Returns the trace.  Wrapping happens per-instance (the class is left
    untouched); the route is inferred from the counter deltas each call
    produces, so the tracer never duplicates classification logic.
    """
    trace = trace or CallTrace()
    env = guest.env

    def make_wrapper(name, method):
        def wrapper(*args, **kwargs):
            t0 = env.now
            local0 = guest.calls_localized
            batch0 = guest.calls_batched
            async0 = getattr(guest, "calls_async_forwarded", 0)
            result = yield from method(*args, **kwargs)
            if guest.calls_localized > local0:
                route = "local"
            elif guest.calls_batched > batch0:
                route = "batched"
            elif getattr(guest, "calls_async_forwarded", 0) > async0:
                route = "async"
            else:
                route = "remote"
            trace.add(CallRecord(t=t0, api=name, route=route,
                                 duration_s=env.now - t0))
            return result

        wrapper.__name__ = name
        return wrapper

    for name in dir(guest):
        if name.startswith(("cuda", "cudnn", "cublas", "pushCall", "memcpy")):
            method = getattr(guest, name)
            if callable(method):
                setattr(guest, name, make_wrapper(name, method))
    return trace
