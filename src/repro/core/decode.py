"""Iteration-level decode scheduling on the API server (LLM serving).

One :class:`DecodeEngine` lives inside an API server's function session
(created by ``llmConfigure``).  It owns the serving-side half of the LLM
workload:

* **continuous batching** — between decode iterations, waiting sequences
  join the active batch (up to ``max_batch``) and finished ones leave;
  ``mode="request"`` is the ablation baseline, which only forms a new
  batch once the previous one has fully drained (no mid-flight joins),
* **KV-cache paging** — each sequence's cache grows page by page as real
  simulated device allocations (``cuMemCreate``/map, exempt from the
  function's *declared* limit) charged through the monitor's ledger via
  :meth:`~repro.core.monitor.Monitor.charge_extra`, so cache pressure is
  visible to feasibility checks, imbalance detection, migration
  targeting, the GPU-memory SLO rule, and the invariant auditor,
* **eviction / recompute** — when the ledger denies a page, the engine
  preempts the most-recently-admitted other sequence (LIFO, as in
  paged-attention engines): its pages are freed and uncharged, and it
  re-queues keeping its generated count — re-admission pays prefill over
  prompt + generated tokens (recompute).  A lone sequence that must grow
  force-charges instead (the progress guarantee): ``committed`` may then
  exceed capacity, blocking new grants on the device until pages free.

Iteration cost is ``decode_base_s + decode_s_per_seq * len(active)`` —
sublinear per sequence, which is what makes batching pay.  Everything is
driven by ``llmStep`` RPCs from the guest, so execution serializes with
migration at API-call boundaries like every other remoted call.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field
from typing import Generator, Optional

from repro.simcuda.errors import CudaError, cudaError

__all__ = ["DecodeEngine", "SequenceState", "DECODE_MODES"]

DECODE_MODES = ("continuous", "request")


@dataclass
class SequenceState:
    """One request's decode state inside the engine."""

    req_id: int
    prompt_tokens: int
    output_tokens: int
    #: tokens emitted so far — survives eviction (recompute re-prefills
    #: prompt + generated, it does not re-emit)
    generated: int = 0
    #: guest VAs of the KV pages currently allocated for this sequence
    page_vas: list[int] = field(default_factory=list)

    @property
    def kv_tokens(self) -> int:
        """Context tokens the cache must cover to decode the next token."""
        return self.prompt_tokens + self.generated + 1


class DecodeEngine:
    """Decode-step scheduler + KV-cache pager for one function session."""

    def __init__(self, server, *, kv_bytes_per_token: int, kv_page_tokens: int,
                 prefill_s_per_token: float, decode_base_s: float,
                 decode_s_per_seq: float, max_batch: int,
                 mode: str = "continuous", batch_cap: int = 0):
        if mode not in DECODE_MODES:
            raise CudaError(
                cudaError.cudaErrorInvalidValue, f"unknown decode mode {mode!r}"
            )
        if kv_bytes_per_token <= 0 or kv_page_tokens <= 0 or max_batch <= 0:
            raise CudaError(
                cudaError.cudaErrorInvalidValue, "invalid decode engine shape"
            )
        self.server = server
        self.kv_bytes_per_token = int(kv_bytes_per_token)
        self.kv_page_tokens = int(kv_page_tokens)
        self.page_bytes = self.kv_bytes_per_token * self.kv_page_tokens
        self.prefill_s_per_token = float(prefill_s_per_token)
        self.decode_base_s = float(decode_base_s)
        self.decode_s_per_seq = float(decode_s_per_seq)
        #: deployment-level cap (``DgsfConfig.llm_max_decode_batch``) wins
        #: over whatever the guest asked for
        self.max_batch = min(int(max_batch), int(batch_cap)) if batch_cap else int(max_batch)
        self.mode = mode
        self.waiting: deque[SequenceState] = deque()
        self.active: list[SequenceState] = []
        self.n_iterations = 0
        self.n_prefills = 0
        self.n_recomputes = 0
        self.n_preemptions = 0
        self.n_kv_denials = 0
        self.n_kv_forced = 0
        self.kv_pages = 0
        self.kv_pages_peak = 0
        metrics = getattr(server.gpu_server, "metrics", None)
        self._ctr_iters = self._ctr_preempt = self._ctr_denials = None
        if metrics is not None:
            self._ctr_iters = metrics.counter("llm.iterations", mode=mode)
            self._ctr_preempt = metrics.counter("llm.preemptions", mode=mode)
            self._ctr_denials = metrics.counter("llm.kv_denials", mode=mode)

    @property
    def _monitor(self):
        return getattr(self.server.gpu_server, "monitor", None)

    # -- intake ------------------------------------------------------------------
    def submit(self, req_id: int, prompt_tokens: int, output_tokens: int) -> None:
        if prompt_tokens <= 0 or output_tokens <= 0:
            raise CudaError(
                cudaError.cudaErrorInvalidValue,
                f"request {req_id}: token counts must be positive",
            )
        self.waiting.append(SequenceState(
            req_id=int(req_id),
            prompt_tokens=int(prompt_tokens),
            output_tokens=int(output_tokens),
        ))

    # -- the decode loop -----------------------------------------------------------
    def step(self) -> Generator:
        """One engine iteration: admit, decode, emit.

        Returns ``[(req_id, token_number, done), ...]`` — one token per
        active sequence.  Guaranteed to make progress whenever sequences
        are waiting or active (the guest loops on it).
        """
        env = self.server.env
        emissions: list[tuple[int, int, bool]] = []
        # --- admission between iterations ---
        quota = self.max_batch - len(self.active)
        if self.mode == "request" and self.active:
            quota = 0  # request-level batching: no mid-flight joins
        while quota > 0 and self.waiting:
            seq = self.waiting[0]
            # Admission never evicts (evicting an active sequence to admit
            # a waiting one would thrash A<->B); a first sequence on an
            # otherwise-empty engine force-charges so serving always
            # starts even when a co-resident engine owns the headroom.
            ok = yield from self._ensure_pages(
                seq, evict_ok=False, force_ok=not self.active
            )
            if not ok:
                break
            self.waiting.popleft()
            self.active.append(seq)
            quota -= 1
            self.n_prefills += 1
            if seq.generated:
                self.n_recomputes += 1  # eviction recovery: re-prefill
            yield env.timeout(
                self.prefill_s_per_token * (seq.prompt_tokens + seq.generated)
            )
        if not self.active:
            return emissions
        # --- one batched decode iteration ---
        yield env.timeout(self.decode_base_s + self.decode_s_per_seq * len(self.active))
        self.n_iterations += 1
        if self._ctr_iters is not None:
            self._ctr_iters.inc()
        for seq in list(self.active):
            if seq not in self.active:
                continue  # evicted by an earlier sequence's cache growth
            yield from self._ensure_pages(seq, evict_ok=True, force_ok=True)
            seq.generated += 1
            done = seq.generated >= seq.output_tokens
            emissions.append((seq.req_id, seq.generated, done))
            if done:
                self.active.remove(seq)
                yield from self._release_pages(seq)
        return emissions

    def stats(self) -> dict:
        return {
            "n_iterations": self.n_iterations,
            "n_prefills": self.n_prefills,
            "n_recomputes": self.n_recomputes,
            "n_preemptions": self.n_preemptions,
            "n_kv_denials": self.n_kv_denials,
            "n_kv_forced": self.n_kv_forced,
            "kv_pages_peak": self.kv_pages_peak,
        }

    # -- KV paging ---------------------------------------------------------------
    def _ensure_pages(self, seq: SequenceState, *, evict_ok: bool,
                      force_ok: bool) -> Generator:
        """Grow ``seq``'s cache to cover its context; True on success."""
        target = -(-seq.kv_tokens // self.kv_page_tokens)
        while len(seq.page_vas) < target:
            ok = yield from self._acquire_page(seq, evict_ok=evict_ok,
                                               force_ok=force_ok)
            if not ok:
                return False
        return True

    def _acquire_page(self, seq: SequenceState, *, evict_ok: bool,
                      force_ok: bool) -> Generator:
        monitor = self._monitor
        if monitor is not None:
            charged = monitor.charge_extra(self.server, self.page_bytes)
            if not charged:
                self.n_kv_denials += 1
                if self._ctr_denials is not None:
                    self._ctr_denials.inc()
            while not charged and evict_ok:
                victim = self._pick_victim(seq)
                if victim is None:
                    break
                yield from self._evict(victim)
                charged = monitor.charge_extra(self.server, self.page_bytes)
            if not charged:
                if not force_ok:
                    return False
                monitor.charge_extra(self.server, self.page_bytes, force=True)
                self.n_kv_forced += 1
        va = yield from self.server._llm_alloc(self.page_bytes)
        seq.page_vas.append(va)
        self.kv_pages += 1
        self.kv_pages_peak = max(self.kv_pages_peak, self.kv_pages)
        return True

    def _pick_victim(self, needy: SequenceState) -> Optional[SequenceState]:
        """LIFO preemption: the most recently admitted other sequence."""
        for candidate in reversed(self.active):
            if candidate is not needy:
                return candidate
        return None

    def _evict(self, victim: SequenceState) -> Generator:
        self.active.remove(victim)
        yield from self._release_pages(victim)
        # back to the head of the waiting line, generated count kept:
        # re-admission pays recompute prefill instead of re-emitting
        self.waiting.appendleft(victim)
        self.n_preemptions += 1
        if self._ctr_preempt is not None:
            self._ctr_preempt.inc()

    def _release_pages(self, seq: SequenceState) -> Generator:
        if not seq.page_vas:
            return
        monitor = self._monitor
        if monitor is not None:
            monitor.uncharge_extra(self.server, self.page_bytes * len(seq.page_vas))
        self.kv_pages -= len(seq.page_vas)
        for va in seq.page_vas:
            yield from self.server._free_va(va)
        seq.page_vas = []

    def __repr__(self) -> str:
        return (
            f"<DecodeEngine mode={self.mode} active={len(self.active)} "
            f"waiting={len(self.waiting)} pages={self.kv_pages}>"
        )
