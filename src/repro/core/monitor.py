"""The GPU server's monitor (paper §V-A, §V-D).

"The monitor is the main piece of the GPU server, maintaining statistics
about the state of each GPU and API server and handling incoming function
GPU requests by using scheduling policies to choose an appropriate API
server."

Responsibilities implemented here:

* a queue of function GPU requests, dispatched by a pluggable discipline
  (:mod:`repro.core.scheduler`): the paper's deployed FCFS policy
  ("Scheduling at the GPU server enforces a first-come first-serve
  policy", §VIII-D — head-of-line blocking included), its future-work
  shortest-function-first, plus the starvation-bounded ``sff_aged`` and
  MQFQ-style fair-queueing extensions,
* GPU selection via the configured policy (best-fit / worst-fit) over
  GPUs that currently have an idle API server and enough *schedulable*
  memory (capacity minus static footprints minus committed declarations),
* the scheduling charge ledger: every granted request charges its
  declared bytes against one device until release — the single
  accounting that feasibility checks, migration targeting and the
  invariant auditor all read,
* imbalance detection and migration triggering: when one GPU hosts ≥2
  busy API servers while another is idle, move the cheapest busy server
  over (§V-D's scenario).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Generator, Optional

from repro.errors import SimulationError
from repro.sim.core import Environment, Event
from repro.core.migration import migrate_api_server, MigrationRecord
from repro.core.policies import Policy
from repro.core.scheduler import DISCIPLINES, make_scheduler

__all__ = ["Monitor", "GpuRequest"]


@dataclass
class _GpuSchedView:
    """What the policy sees about one GPU."""

    device_id: int
    schedulable_free: int


@dataclass
class GpuRequest:
    """A queued "function needs a GPU" request."""

    declared_bytes: int
    invocation_id: int
    submitted_at: float
    #: fires with the assigned ApiServer
    granted: Event
    granted_at: float = -1.0
    #: hint used by the shortest-function-first discipline (0 = unknown)
    expected_duration_s: float = 0.0
    #: fires with the replacement request when a granted-but-unbegun
    #: request is re-queued because its server died
    resubmitted: Optional[Event] = None
    #: the replacement request, once re-queued
    superseded: Optional["GpuRequest"] = None
    #: (trace_id, parent_span_id) of the requesting invocation, when
    #: tracing — lets the monitor parent its queue span under it
    trace_ctx: Optional[tuple] = None
    #: function-class key for fair-queueing disciplines (the function
    #: name, when the platform submits it); None = derived from size
    flow_key: Optional[str] = None
    #: where this request's *accountable* wait began.  Equals
    #: ``submitted_at`` for a fresh request; a crash-requeued clone gets
    #: the requeue time instead, so the original's already-traced queue
    #: span [submit, grant1] is not counted a second time inside the
    #: clone's span (critpath coverage used to exceed 100% of e2e).
    #: ``submitted_at`` keeps the true arrival for aging/starvation
    #: bounds.  -1.0 = unset (falls back to ``submitted_at``).
    accounted_from: float = -1.0

    def wait_start(self) -> float:
        """Start of the wait window charged to this request's grant."""
        return self.accounted_from if self.accounted_from >= 0.0 else self.submitted_at


class Monitor:
    """Statistics + scheduling + migration control for one GPU server."""

    def __init__(self, env: Environment, gpu_server, policy: Policy,
                 migration_enabled: bool = False, period_s: float = 0.5,
                 confirm_checks: int = 4, queue_discipline: str = "fcfs",
                 heartbeat_timeout_s: float = 2.0,
                 sff_aging_factor: float = 0.1,
                 mqfq_throttle_window_s: float = 60.0,
                 metrics=None):
        if queue_discipline not in DISCIPLINES:
            raise SimulationError(f"unknown queue discipline {queue_discipline!r}")
        self.env = env
        self.gpu_server = gpu_server
        self.policy = policy
        self.queue_discipline = queue_discipline
        self.metrics = metrics
        self.scheduler = make_scheduler(
            queue_discipline, self, metrics,
            sff_aging_factor=sff_aging_factor,
            mqfq_throttle_window_s=mqfq_throttle_window_s,
        )
        self.migration_enabled = migration_enabled
        self.period_s = period_s
        self.confirm_checks = max(1, confirm_checks)
        self._imbalance_streak = 0
        #: device_id -> declared bytes committed by functions assigned there
        self.committed: dict[int, int] = {
            d.device_id: 0 for d in gpu_server.devices
        }
        #: device_id -> schedulable capacity (set after bring-up)
        self.schedulable_capacity: dict[int, int] = {}
        #: server_id -> (device_id, declared_bytes) the scheduler charged —
        #: the ONE byte accounting for grants (feasibility, migration
        #: targeting and the auditor all read it; see ``charged_bytes``)
        self._charges: dict[int, tuple[int, int]] = {}
        self.requests_total = 0
        self.requests_queued_peak = 0
        #: server_id -> last received ApiServerStats (§V-A ③ updates)
        self.last_stats: dict[int, object] = {}
        self.migration_records: list[MigrationRecord] = []
        self._migration_proc = None
        self._migration_in_flight = False
        # -- failure detection / recovery ------------------------------------
        #: declare a server dead after this long without a heartbeat
        self.heartbeat_timeout_s = heartbeat_timeout_s
        #: server_id -> time of the last §V-A ③ update received
        self._last_seen: dict[int, float] = {}
        #: server_id -> the GpuRequest currently holding that server
        self._inflight: dict[int, GpuRequest] = {}
        #: crashed-mid-session servers whose function hasn't released yet
        self._pending_release: set[int] = set()
        #: restarted servers still waiting for that release
        self._restarted: set[int] = set()
        self.crashes_detected = 0
        self.requests_requeued = 0
        self._health_proc = None
        #: optional :class:`repro.obs.Tracer` (set by the deployment)
        self.tracer = None

    def _trace_track(self) -> tuple[str, str]:
        host = getattr(self.gpu_server, "host", None)
        return (host.name if host is not None else "gpu-server"), "monitor"

    # -- bring-up ----------------------------------------------------------------
    def finalize_capacity(self) -> None:
        """Snapshot per-GPU schedulable capacity after static bring-up."""
        for device in self.gpu_server.devices:
            self.schedulable_capacity[device.device_id] = device.mem_free

    def start(self) -> None:
        # §V-A ③: every API server streams periodic updates
        for server in self.gpu_server.api_servers:
            server.start_stats_reporting(self, self.period_s / 2)
            self._last_seen[server.server_id] = self.env.now
        if self.migration_enabled and self._migration_proc is None:
            self._migration_proc = self.env.process(
                self._migration_loop(), name="monitor-migration"
            )
        if self._health_proc is None:
            self._health_proc = self.env.process(
                self._health_loop(), name="monitor-health"
            )

    def receive_stats(self, stats) -> None:
        """Record an API server's update message."""
        self.last_stats[stats.server_id] = stats
        self._last_seen[stats.server_id] = stats.t

    # -- charge ledger -----------------------------------------------------------
    def charged_bytes(self, server) -> int:
        """Declared bytes currently charged against ``server`` (0 if idle)."""
        charge = self._charges.get(server.server_id)
        return charge[1] if charge is not None else 0

    def charged_device(self, server) -> Optional[int]:
        """The device a server's charge rests on (None if uncharged)."""
        charge = self._charges.get(server.server_id)
        return charge[0] if charge is not None else None

    def charges(self) -> dict[int, tuple[int, int]]:
        """Snapshot of the ledger: server_id -> (device_id, bytes)."""
        return dict(self._charges)

    def _uncharge(self, server_id: int) -> Optional[int]:
        """Drop a server's charge; returns the device it rested on."""
        charge = self._charges.pop(server_id, None)
        if charge is None:
            return None
        device_id, declared = charge
        self.committed[device_id] -= declared
        self._publish_committed(device_id)
        return device_id

    def _publish_committed(self, device_id: int) -> None:
        """Gauge the device's committed fraction (drives the memory SLO)."""
        if self.metrics is None:
            return
        capacity = self.schedulable_capacity.get(device_id)
        if not capacity:
            return
        self.metrics.gauge(
            "gpu.committed_frac", device=device_id
        ).set(self.committed[device_id] / capacity, t=self.env.now)

    # -- dynamic (KV-cache) charges ----------------------------------------------
    def charge_extra(self, api_server, nbytes: int, force: bool = False) -> bool:
        """Grow a granted server's charge by ``nbytes`` of dynamic memory.

        LLM serving allocates KV-cache pages *after* the grant, beyond the
        declared bytes; charging them through the same ledger means cache
        pressure is visible everywhere declared bytes are: feasibility
        checks (``schedulable_free``), imbalance detection and migration
        targeting (``charged_bytes``), and the invariant auditor.  Returns
        False — charging nothing — when the device lacks schedulable
        headroom, which is the API server's signal to evict.

        ``force=True`` charges unconditionally (the progress guarantee for
        a lone sequence that must grow or live-lock): ``committed`` may
        then exceed capacity, making ``schedulable_free`` negative — no
        new grants land on the device until pages are released, which is
        exactly the pressure semantics wanted.
        """
        if nbytes <= 0:
            raise SimulationError("extra charge must be positive")
        sid = api_server.server_id
        charge = self._charges.get(sid)
        if charge is None:
            raise SimulationError(f"server {sid} holds no charge to grow")
        device_id, total = charge
        if not force and self.schedulable_free(device_id) < nbytes:
            return False
        self.committed[device_id] += nbytes
        self._charges[sid] = (device_id, total + nbytes)
        self._publish_committed(device_id)
        return True

    def uncharge_extra(self, api_server, nbytes: int) -> None:
        """Return ``nbytes`` of a server's dynamic charge (eviction path).

        The base (declared) charge must survive until :meth:`release`,
        which pops the whole remaining total at once.
        """
        sid = api_server.server_id
        charge = self._charges.get(sid)
        if charge is None:
            raise SimulationError(f"server {sid} holds no charge")
        device_id, total = charge
        if nbytes <= 0 or nbytes > total:
            raise SimulationError(
                f"cannot uncharge {nbytes} B from a {total} B charge"
            )
        self.committed[device_id] -= nbytes
        self._charges[sid] = (device_id, total - nbytes)
        self._publish_committed(device_id)

    # -- request handling --------------------------------------------------------------
    def schedulable_free(self, device_id: int) -> int:
        capacity = self.schedulable_capacity.get(device_id)
        if capacity is None:
            raise SimulationError("finalize_capacity() not called")
        return capacity - self.committed[device_id]

    @property
    def queue_length(self) -> int:
        return len(self.scheduler)

    @property
    def _queue(self):
        """The scheduler's arrival-ordered deque (legacy test hook)."""
        return self.scheduler._queue

    def observe_pending_waits(self) -> None:
        """Teardown hook: flush still-queued waits into the metrics.

        See :meth:`DispatchScheduler.flush_pending_waits` — without this,
        a saturated run's tail waits (requests never granted) are absent
        from ``scheduler.queue_wait_s`` entirely.
        """
        self.scheduler.flush_pending_waits()

    def submit_request(self, declared_bytes: int, invocation_id: int = -1,
                       expected_duration_s: float = 0.0,
                       trace_ctx: Optional[tuple] = None,
                       flow_key: Optional[str] = None) -> GpuRequest:
        """Enqueue a GPU request; its ``granted`` event fires with a server."""
        if declared_bytes <= 0:
            raise SimulationError("declared GPU memory must be positive")
        max_cap = max(self.schedulable_capacity.values(), default=0)
        if declared_bytes > max_cap:
            raise SimulationError(
                f"request for {declared_bytes} B exceeds any GPU's schedulable "
                f"capacity ({max_cap} B)"
            )
        request = GpuRequest(
            declared_bytes=declared_bytes,
            invocation_id=invocation_id,
            submitted_at=self.env.now,
            granted=Event(self.env),
            expected_duration_s=expected_duration_s,
            resubmitted=Event(self.env),
            trace_ctx=trace_ctx,
            flow_key=flow_key,
            accounted_from=self.env.now,
        )
        self.requests_total += 1
        self.scheduler.enqueue(request)
        self.requests_queued_peak = max(self.requests_queued_peak, self.queue_length)
        self._try_dispatch()
        return request

    def release(self, api_server) -> None:
        """A function finished on ``api_server``; free its slot."""
        sid = api_server.server_id
        self._inflight.pop(sid, None)
        if sid in self._pending_release:
            # The server crashed under this function and the monitor already
            # uncommitted its charge; this is the orphaned lease coming back.
            self._pending_release.discard(sid)
            if sid in self._restarted:
                self._finish_recovery(api_server)
            return
        if self._uncharge(sid) is None:
            raise SimulationError(f"server {sid} was not charged")
        # release is called after end_session, so the server is idle again
        # (possibly freshly returned to its home GPU)
        api_server.reserved = False
        self._try_dispatch()

    def cancel(self, request: GpuRequest) -> None:
        """Abandon a request whose function died waiting for (or right
        after) its grant — e.g. killed by the platform watchdog.

        Without this, a granted-but-never-attached request would keep its
        server reserved and charged forever.
        """
        while request.superseded is not None:
            request = request.superseded
        if self.scheduler.remove(request):
            return
        if not request.granted.triggered:
            return  # never queued here (or already cancelled)
        server = request.granted.value
        sid = server.server_id
        if self._inflight.get(sid) is not request:
            return  # already released or recovered
        self._inflight.pop(sid, None)
        self._uncharge(sid)
        server.reserved = False
        self._try_dispatch()

    def _gpu_views(self) -> list:
        views = []
        for device in self.gpu_server.devices:
            if any(
                s.home_device_id == device.device_id and s.schedulable
                for s in self.gpu_server.api_servers
            ):
                views.append(
                    _GpuSchedView(
                        device_id=device.device_id,
                        schedulable_free=self.schedulable_free(device.device_id),
                    )
                )
        return views

    def _grant(self, request: GpuRequest, device_id: int) -> None:
        server = next(
            s
            for s in self.gpu_server.api_servers
            if s.home_device_id == device_id and s.schedulable
        )
        server.reserved = True
        self.committed[device_id] += request.declared_bytes
        self._charges[server.server_id] = (device_id, request.declared_bytes)
        self._publish_committed(device_id)
        self._inflight[server.server_id] = request
        request.granted_at = self.env.now
        if self.tracer is not None:
            pid, tid = self._trace_track()
            trace_id, parent_id = request.trace_ctx or (None, None)
            self.tracer.complete(
                "gpu_request", request.wait_start(), self.env.now,
                cat="queue", pid=pid, tid=tid,
                trace_id=trace_id, parent_id=parent_id,
                invocation_id=request.invocation_id,
                declared_bytes=request.declared_bytes,
                server=server.server_id, device=device_id,
            )
        request.granted.succeed(server)

    def _try_dispatch(self) -> None:
        self.scheduler.dispatch()

    # -- migration control ------------------------------------------------------------
    def _migration_loop(self) -> Generator:
        """Periodically detect imbalance and migrate (§V-D)."""
        while True:
            yield self.env.timeout(self.period_s)
            if self._migration_in_flight:
                continue
            plan = self._find_imbalance()
            if plan is None:
                self._imbalance_streak = 0
                continue
            # Require sustained imbalance with no queued demand: a GPU
            # that is idle only because its next function is still
            # downloading must not trigger a move.
            if self.queue_length:
                # Queued demand invalidates the observation entirely — a
                # stale streak must not fire a move on the first tick
                # after the queue drains.
                self._imbalance_streak = 0
                continue
            self._imbalance_streak += 1
            if self._imbalance_streak < self.confirm_checks:
                continue
            self._imbalance_streak = 0
            server, target = plan
            self._migration_in_flight = True
            yield from self._migrate_one(server, target)
            self._migration_in_flight = False
            self._try_dispatch()

    # -- failure detection / recovery (§V-A ③ heartbeats as liveness) -------------
    def _health_loop(self) -> Generator:
        """Declare servers dead after missed heartbeats and run recovery.

        Pure observer: draws no randomness and only reads clocks, so an
        always-on health loop leaves fault-free runs' timelines untouched.
        """
        while True:
            yield self.env.timeout(self.period_s)
            now = self.env.now
            if self.metrics is not None:
                # the tick doubles as the SLO engine's time pulse: its
                # notification drives rule evaluation at ``now`` even when
                # no invocations complete, so alerts can *clear* during a
                # quiet recovery
                self.metrics.counter("monitor.health_ticks").inc()
            for server in self.gpu_server.api_servers:
                if server.recovering:
                    continue
                if server.dead:
                    # crashed since the last tick (or killed explicitly)
                    self._handle_dead_server(server)
                    continue
                last = self._last_seen.get(server.server_id)
                if last is not None and now - last > self.heartbeat_timeout_s:
                    server.crash()  # liveness lost: fence and tear down
                    self._handle_dead_server(server)

    def _handle_dead_server(self, server) -> None:
        """Uncommit a dead server's charge, rescue its request, restart it."""
        sid = server.server_id
        self.crashes_detected += 1
        if self.metrics is not None:
            self.metrics.counter("monitor.crashes_detected").inc()
        if self.tracer is not None:
            pid, tid = self._trace_track()
            self.tracer.instant("crash_detected", pid=pid, tid=tid, server=sid)
        server.recovering = True
        self._uncharge(sid)
        orphan = self._inflight.pop(sid, None)
        if orphan is not None:
            if server.crashed_mid_session:
                # The function was attached when the server died; it will
                # notice (RPC timeout) and come back through release().
                self._pending_release.add(sid)
            else:
                # Granted but the session never began: the request can be
                # transparently re-queued at the front of the line.
                self._requeue(orphan)
        self.gpu_server.restart_api_server(server)

    def _requeue(self, orphan: GpuRequest) -> None:
        clone = GpuRequest(
            declared_bytes=orphan.declared_bytes,
            invocation_id=orphan.invocation_id,
            submitted_at=orphan.submitted_at,
            granted=Event(self.env),
            expected_duration_s=orphan.expected_duration_s,
            resubmitted=Event(self.env),
            trace_ctx=orphan.trace_ctx,
            flow_key=orphan.flow_key,
            # the wait already served before the crash was accounted to the
            # orphan's grant; the clone's window starts at the requeue
            accounted_from=self.env.now,
        )
        orphan.superseded = clone
        self.requests_requeued += 1
        if self.metrics is not None:
            self.metrics.counter("monitor.requests_requeued").inc()
        if self.tracer is not None:
            pid, tid = self._trace_track()
            trace_id, parent_id = orphan.trace_ctx or (None, None)
            self.tracer.instant(
                "request_requeued", pid=pid, tid=tid,
                trace_id=trace_id, parent_id=parent_id,
                invocation_id=orphan.invocation_id,
            )
        self.scheduler.requeue(clone)
        if orphan.resubmitted is not None:
            orphan.resubmitted.succeed(clone)
        self._try_dispatch()

    def server_restarted(self, server) -> None:
        """The GPU server finished re-bring-up of a crashed API server."""
        sid = server.server_id
        self._last_seen[sid] = self.env.now
        server.start_stats_reporting(self, self.period_s / 2)
        self._restarted.add(sid)
        if sid not in self._pending_release:
            self._finish_recovery(server)

    def _finish_recovery(self, server) -> None:
        sid = server.server_id
        self._restarted.discard(sid)
        server.recovering = False
        server.reserved = False
        server.crashed_mid_session = False
        self._try_dispatch()

    def _find_imbalance(self) -> Optional[tuple[object, int]]:
        """(busy server to move, idle target GPU) or None.

        Decisions use the *reported* statistics (the last §V-A ③ update
        message from each server), not live state — the monitor acts on
        slightly stale information, as the real system does.

        Candidate ordering and target feasibility both use the charge
        ledger (declared bytes): the charge is what actually moves to the
        target GPU's committed accounting, so ordering by live
        ``used_bytes`` — which can sit far below the charge while a
        function is still allocating — could prefer a server whose charge
        barely fits (or doesn't fit) over a genuinely cheap one.
        """
        servers = self.gpu_server.api_servers
        busy_on: dict[int, list] = {d.device_id: [] for d in self.gpu_server.devices}
        for s in servers:
            report = self.last_stats.get(s.server_id)
            if report is None:
                continue
            # guard against moving a server that finished since it reported
            if report.busy and s.busy:
                busy_on[report.current_device_id].append(s)
        idle_gpus = [d for d, lst in busy_on.items() if not lst]
        crowded = [(d, lst) for d, lst in busy_on.items() if len(lst) >= 2]
        if not idle_gpus or not crowded:
            return None
        # most crowded GPU first; move its cheapest (least charged) server
        crowded.sort(key=lambda item: -len(item[1]))
        for device_id, servers_here in crowded:
            candidates = sorted(
                servers_here, key=lambda s: (self.charged_bytes(s), s.server_id)
            )
            for server in candidates:
                for target in sorted(idle_gpus):
                    if not self.gpu_server.migration_slot_available(target):
                        continue
                    if self.schedulable_free(target) >= self.charged_bytes(server):
                        return server, target
        return None

    def _migrate_one(self, server, target_device_id: int) -> Generator:
        source = server.current_device_id
        try:
            record = yield from migrate_api_server(server, target_device_id)
        except SimulationError:
            return  # server finished in the meantime; nothing to do
        self.migration_records.append(record)
        if self.tracer is not None:
            pid, tid = self._trace_track()
            self.tracer.complete(
                "migration", record.started_at,
                record.started_at + record.duration_s,
                cat="migration", pid=pid, tid=tid,
                server=record.server_id, source=record.source_device,
                target=record.target_device, moved_bytes=record.moved_bytes,
                allocations=record.allocations_moved,
            )
        # move the scheduling charge with the server
        charge = self._charges.get(server.server_id)
        if charge is not None:
            # the stored total includes any dynamic (KV-cache) extras, so
            # cache pressure moves to the target with the server
            _, declared = charge
            self.committed[source] -= declared
            self.committed[target_device_id] += declared
            self._charges[server.server_id] = (target_device_id, declared)
            self._publish_committed(source)
            self._publish_committed(target_device_id)
