"""GPU assignment policies (paper §VIII-D/E).

Given a function's declared GPU memory requirement and the current
per-GPU committed memory, a policy picks which GPU (among those with an
idle API server and enough schedulable memory) gets the function:

* **best-fit** "tries to condense as many functions as it can into GPUs"
  — choose the feasible GPU with the *least* remaining free memory.
* **worst-fit** "tries to spread the load across GPUs" — choose the
  feasible GPU with the *most* remaining free memory.
* **first-fit** — lowest-numbered feasible GPU (used in tests).
"""

from __future__ import annotations

from typing import Optional, Protocol

from repro.errors import ConfigurationError

__all__ = ["Policy", "BestFit", "WorstFit", "FirstFit", "make_policy", "GpuView"]


class GpuView(Protocol):
    """What a policy is allowed to see about one GPU."""

    device_id: int

    @property
    def schedulable_free(self) -> int: ...


class Policy:
    """Base class; ``choose`` returns a device_id or None (no fit)."""

    name = "abstract"

    def choose(self, candidates: list, required_bytes: int) -> Optional[int]:
        feasible = [g for g in candidates if g.schedulable_free >= required_bytes]
        if not feasible:
            return None
        return self._pick(feasible, required_bytes)

    def _pick(self, feasible: list, required_bytes: int) -> int:
        raise NotImplementedError


class BestFit(Policy):
    name = "best_fit"

    def _pick(self, feasible, required_bytes):
        return min(feasible, key=lambda g: (g.schedulable_free, g.device_id)).device_id


class WorstFit(Policy):
    name = "worst_fit"

    def _pick(self, feasible, required_bytes):
        return max(feasible, key=lambda g: (g.schedulable_free, -g.device_id)).device_id


class FirstFit(Policy):
    name = "first_fit"

    def _pick(self, feasible, required_bytes):
        return min(feasible, key=lambda g: g.device_id).device_id


def make_policy(name: str) -> Policy:
    try:
        return {"best_fit": BestFit, "worst_fit": WorstFit, "first_fit": FirstFit}[name]()
    except KeyError:
        raise ConfigurationError(f"unknown policy {name!r}") from None
