"""Pre-created CUDA contexts and cuDNN/cuBLAS handle pools (paper §V-C).

"Each GPU node maintains a pool of GPU API servers with their GPU runtime
initialized... Each API server pre-creates a set of cuDNN and cuBLAS
handles, which are returned directly to serve the corresponding API
calls."

:class:`HandlePools` owns, per GPU, a stock of initialized cuDNN and
cuBLAS handles (their device-memory footprint is charged at creation
time, off any function's critical path).  API servers borrow handles when
serving ``cudnnCreate``/``cublasCreate`` from the pool and return them
when the function finishes; migration borrows *twin* handles on the
destination GPU.
"""

from __future__ import annotations

from typing import Generator, Optional

from repro.errors import ConfigurationError
from repro.sim.core import Environment
from repro.simcuda.context import CudaContext
from repro.simcuda.costs import CostModel
from repro.simcuda.cudnn import CudnnHandle, CudnnLibrary
from repro.simcuda.cublas import CublasHandle, CublasLibrary

__all__ = ["HandlePools"]


class HandlePools:
    """Per-GPU stocks of pre-initialized library handles."""

    def __init__(self, env: Environment, costs: CostModel):
        self.env = env
        self.costs = costs
        #: device_id -> available handles
        self._cudnn: dict[int, list[CudnnHandle]] = {}
        self._cublas: dict[int, list[CublasHandle]] = {}
        #: device_id -> library objects used to mint pool handles
        self._cudnn_libs: dict[int, CudnnLibrary] = {}
        self._cublas_libs: dict[int, CublasLibrary] = {}

    def prefill(self, context: CudaContext, count: int) -> Generator:
        """Create ``count`` handles of each kind on the context's GPU.

        Called by the manager at GPU-server bring-up; consumes real
        simulated time (count × (1.2 s + 0.2 s)) but runs before any
        function arrives.
        """
        if count <= 0:
            raise ConfigurationError("pool count must be positive")
        device_id = context.device.device_id
        cudnn_lib = self._cudnn_libs.setdefault(
            device_id, CudnnLibrary(self.env, context, self.costs)
        )
        cublas_lib = self._cublas_libs.setdefault(
            device_id, CublasLibrary(self.env, context, self.costs)
        )
        for _ in range(count):
            h = yield from cudnn_lib.cudnnCreate()
            self._cudnn.setdefault(device_id, []).append(cudnn_lib._handles[h])
            h = yield from cublas_lib.cublasCreate()
            self._cublas.setdefault(device_id, []).append(cublas_lib._handles[h])

    # -- borrowing -------------------------------------------------------------
    def borrow_cudnn(self, device_id: int) -> Optional[CudnnHandle]:
        """Take a pre-created cuDNN handle for this GPU (None if exhausted)."""
        stock = self._cudnn.get(device_id, [])
        return stock.pop() if stock else None

    def borrow_cublas(self, device_id: int) -> Optional[CublasHandle]:
        stock = self._cublas.get(device_id, [])
        return stock.pop() if stock else None

    def return_cudnn(self, handle: CudnnHandle) -> None:
        self._cudnn.setdefault(handle.device_id, []).append(handle)

    def return_cublas(self, handle: CublasHandle) -> None:
        self._cublas.setdefault(handle.device_id, []).append(handle)

    def available(self, device_id: int) -> tuple[int, int]:
        """(cudnn, cublas) handles in stock for one GPU."""
        return (
            len(self._cudnn.get(device_id, [])),
            len(self._cublas.get(device_id, [])),
        )
