"""Invariant auditor for DGSF deployments.

The fault-injection layer exercises code paths (crashes, re-queues,
re-bring-up) where the scheduler's byte accounting and the device memory
model can silently drift apart.  This module checks, at any quiescent
point:

* **committed-vs-charged consistency** — the monitor's per-device
  ``committed`` bytes equal the sum of the charges its ledger
  (:meth:`Monitor.charges`) holds against that device, and every charge
  belongs to a live (or recovering) server,
* **device memory accounting** — ``mem_used`` never exceeds capacity and
  always covers the bytes of live tracked allocations (the rest is
  reserved static footprint: contexts, handles),
* **no leaked reservations** — at end state, no server is still busy or
  reserved (unless mid-recovery), no request is stuck in flight, and no
  physical allocations or charges survive the last release.

``audit_deployment``/``audit_gpu_server`` return an :class:`AuditReport`;
test fixtures call :meth:`AuditReport.raise_if_failed` so any violation
fails the test that caused it.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.errors import ReproError

__all__ = ["AuditError", "AuditViolation", "AuditReport",
           "audit_gpu_server", "audit_deployment"]


class AuditError(ReproError):
    """At least one deployment invariant does not hold."""


@dataclass(frozen=True)
class AuditViolation:
    kind: str
    detail: str


@dataclass
class AuditReport:
    violations: list[AuditViolation] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return not self.violations

    def add(self, kind: str, detail: str) -> None:
        self.violations.append(AuditViolation(kind, detail))

    def raise_if_failed(self) -> None:
        if self.violations:
            lines = "\n".join(f"  [{v.kind}] {v.detail}" for v in self.violations)
            raise AuditError(f"{len(self.violations)} invariant violation(s):\n{lines}")

    def merge(self, other: "AuditReport") -> "AuditReport":
        self.violations.extend(other.violations)
        return self


def audit_gpu_server(gpu_server, end_state: bool = False,
                     check_schedulable: bool = False) -> AuditReport:
    """Audit one GPU server's scheduler/memory invariants.

    ``end_state=True`` additionally requires quiescence: no busy servers,
    no queued or in-flight requests, no leaked charges or allocations.
    ``check_schedulable=True`` requires every GPU to have at least one
    grantable home server again (crash recovery completed).
    """
    report = AuditReport()
    monitor = gpu_server.monitor
    servers = gpu_server.api_servers

    # 1. committed == sum of charges, per device; charges map to real servers.
    by_id = {s.server_id: s for s in servers}
    charges = monitor.charges()
    charged_sum: dict[int, int] = {d.device_id: 0 for d in gpu_server.devices}
    for sid, (device_id, charged_bytes) in charges.items():
        server = by_id.get(sid)
        if server is None:
            report.add("charge", f"charge for unknown server {sid}")
            continue
        if charged_bytes <= 0:
            report.add(
                "charge",
                f"server {sid} charged against GPU {device_id} "
                f"with non-positive bytes ({charged_bytes})",
            )
        if device_id not in charged_sum:
            report.add("charge", f"server {sid} charged against unknown GPU {device_id}")
            continue
        charged_sum[device_id] += charged_bytes
    for device_id, committed in monitor.committed.items():
        if committed < 0:
            report.add("committed", f"GPU {device_id} committed is negative ({committed})")
        if committed != charged_sum.get(device_id, 0):
            report.add(
                "committed",
                f"GPU {device_id} committed={committed} but per-server "
                f"charges sum to {charged_sum.get(device_id, 0)}",
            )

    # 2. charge <-> reservation coherence (dead/recovering servers exempt:
    #    the monitor intentionally keeps them fenced while recovery runs).
    for server in servers:
        charged = server.server_id in charges
        if server.dead or server.recovering:
            continue
        if charged and not (server.reserved or server.busy):
            report.add(
                "reservation",
                f"server {server.server_id} is charged but neither reserved nor busy",
            )

    # 3. device memory accounting.
    for device in gpu_server.devices:
        live = sum(a.size for a in device._allocations)
        if device.mem_used > device.total_mem:
            report.add(
                "memory",
                f"GPU {device.device_id} mem_used {device.mem_used} exceeds "
                f"capacity {device.total_mem}",
            )
        if device.mem_used < live:
            report.add(
                "memory",
                f"GPU {device.device_id} mem_used {device.mem_used} below "
                f"live allocation bytes {live}",
            )
        if device.mem_used < 0:
            report.add("memory", f"GPU {device.device_id} mem_used negative")

    if end_state:
        for server in servers:
            if server.busy:
                report.add("end-state", f"server {server.server_id} still busy")
            if server.reserved and not (server.dead or server.recovering):
                report.add("end-state", f"server {server.server_id} still reserved")
        if monitor.queue_length:
            report.add("end-state", f"{monitor.queue_length} request(s) still queued")
        if monitor._inflight:
            report.add(
                "end-state",
                f"request(s) still in flight on servers {sorted(monitor._inflight)}",
            )
        if monitor._pending_release:
            report.add(
                "end-state",
                f"orphaned leases never released: {sorted(monitor._pending_release)}",
            )
        # With every session ended, only static footprints may hold memory.
        for device in gpu_server.devices:
            if device._allocations:
                report.add(
                    "leak",
                    f"GPU {device.device_id} still tracks "
                    f"{len(device._allocations)} physical allocation(s)",
                )
        for device_id, committed in monitor.committed.items():
            if committed != 0:
                report.add(
                    "leak", f"GPU {device_id} still has {committed} committed bytes"
                )

    if check_schedulable:
        for device in gpu_server.devices:
            if not any(
                s.home_device_id == device.device_id and s.schedulable
                for s in servers
            ):
                report.add(
                    "schedulable",
                    f"GPU {device.device_id} has no grantable home API server",
                )

    return report


def audit_deployment(deployment, end_state: bool = False,
                     check_schedulable: bool = False) -> AuditReport:
    """Audit every GPU server of a DGSF deployment."""
    report = AuditReport()
    for gpu_server in deployment.gpu_servers:
        report.merge(
            audit_gpu_server(
                gpu_server, end_state=end_state, check_schedulable=check_schedulable
            )
        )
    return report
