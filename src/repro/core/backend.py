"""The serverless backend's GPU-server registry (paper §IV).

"Scaling up GPU servers in DGSF is simple.  A GPU server only needs the
address of the central serverless backend to signal its availability.
After it is initialized and its API servers created, it announces it is
ready and how many functions it can handle."

The paper's prototype uses one GPU server and a fixed choice policy;
"different policies can be used in a commercial deployment, such as
choosing the least loaded GPU server to optimize latency or the opposite
to increase utilization."  :class:`GpuBackend` implements that policy
space over any number of registered GPU servers.
"""

from __future__ import annotations

import itertools

from repro.errors import ConfigurationError

__all__ = ["GpuBackend"]


class GpuBackend:
    """Chooses a GPU server for each function that requests a GPU."""

    POLICIES = ("least_loaded", "round_robin")

    def __init__(self, policy: str = "least_loaded"):
        if policy not in self.POLICIES:
            raise ConfigurationError(f"unknown backend policy {policy!r}")
        self.policy = policy
        self._servers: list = []
        self._rr = itertools.count()
        #: per-server count of requests routed (for tests/ablation)
        self.routed: dict[int, int] = {}
        #: per-server functions currently routed and not yet released —
        #: the load signal (the monitor's own state lags by a network hop)
        self.outstanding: dict[int, int] = {}

    def register(self, gpu_server) -> None:
        """A GPU server announced readiness to the backend."""
        self._servers.append(gpu_server)
        self.routed[id(gpu_server)] = 0
        self.outstanding[id(gpu_server)] = 0

    @property
    def servers(self) -> list:
        return list(self._servers)

    def choose(self, declared_bytes: int):
        """Pick the GPU server that will receive this function's request.

        Only servers that could *ever* satisfy the declaration are
        candidates; among those the policy decides.
        """
        if not self._servers:
            raise ConfigurationError("no GPU servers registered")
        feasible = [
            s for s in self._servers
            if max(s.monitor.schedulable_capacity.values(), default=0)
            >= declared_bytes
        ]
        if not feasible:
            raise ConfigurationError(
                f"no GPU server can ever satisfy {declared_bytes} B"
            )
        if self.policy == "round_robin":
            start = next(self._rr)
            chosen = feasible[start % len(feasible)]
        else:  # least_loaded: fewest functions currently routed there
            chosen = min(
                feasible, key=lambda s: (self.outstanding[id(s)], id(s))
            )
        self.routed[id(chosen)] += 1
        self.outstanding[id(chosen)] += 1
        return chosen

    def note_release(self, gpu_server) -> None:
        """A function routed to ``gpu_server`` finished."""
        if self.outstanding.get(id(gpu_server), 0) <= 0:
            raise ConfigurationError("release without a matching route")
        self.outstanding[id(gpu_server)] -= 1
