"""Aggregation of invocation records into the paper's reported metrics.

The evaluation reports, per experiment:

* the provider's *end-to-end* time — "the time to handle all functions",
* the *sum of all functions' end-to-end time* (launch → completion),
* per-workload mean/std of queueing and execution delay (Figs. 5, 6, 8).
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.faas.platform import Invocation
from repro.obs import percentile

__all__ = [
    "WorkloadStats",
    "RunStats",
    "OutcomeSummary",
    "CommStats",
    "CacheStats",
    "summarize_invocations",
    "summarize_outcomes",
    "summarize_caches",
]

#: invocation states that mean "the platform is done with it"
TERMINAL_STATUSES = ("completed", "failed", "timeout")


@dataclass
class WorkloadStats:
    """Per-workload latency summary."""

    name: str
    count: int
    mean_e2e_s: float
    std_e2e_s: float
    mean_queue_s: float
    mean_exec_s: float
    p50_e2e_s: float = 0.0
    p95_e2e_s: float = 0.0
    p99_e2e_s: float = 0.0

    def as_row(self) -> dict:
        return {
            "workload": self.name,
            "n": self.count,
            "mean_e2e_s": round(self.mean_e2e_s, 3),
            "std_e2e_s": round(self.std_e2e_s, 3),
            "p50_e2e_s": round(self.p50_e2e_s, 3),
            "p95_e2e_s": round(self.p95_e2e_s, 3),
            "p99_e2e_s": round(self.p99_e2e_s, 3),
            "mean_queue_s": round(self.mean_queue_s, 3),
            "mean_exec_s": round(self.mean_exec_s, 3),
        }


@dataclass
class RunStats:
    """Whole-run summary."""

    provider_e2e_s: float
    function_e2e_sum_s: float
    per_workload: dict[str, WorkloadStats] = field(default_factory=dict)
    #: latency percentiles over *all* completed invocations
    p50_e2e_s: float = 0.0
    p95_e2e_s: float = 0.0
    p99_e2e_s: float = 0.0

    def as_dict(self) -> dict:
        return {
            "provider_e2e_s": round(self.provider_e2e_s, 3),
            "function_e2e_sum_s": round(self.function_e2e_sum_s, 3),
            "p50_e2e_s": round(self.p50_e2e_s, 3),
            "p95_e2e_s": round(self.p95_e2e_s, 3),
            "p99_e2e_s": round(self.p99_e2e_s, 3),
            "per_workload": {k: v.as_row() for k, v in self.per_workload.items()},
        }


def summarize_invocations(invocations: list[Invocation]) -> RunStats:
    """Aggregate completed invocations into :class:`RunStats`.

    *Queueing delay* here is the time before the handler starts plus the
    GPU-queue wait at the monitor (the ``gpu_queue`` phase) — the paper's
    "queueing ... delay" which grows when all API servers are busy.
    """
    if not invocations:
        raise ValueError("no invocations to summarize")
    done = [inv for inv in invocations if inv.t_end >= 0]
    if not done:
        raise ValueError("no completed invocations")
    provider_e2e = max(i.t_end for i in done) - min(i.t_submit for i in done)
    e2e_sum = sum(i.e2e_s for i in done)
    per: dict[str, WorkloadStats] = {}
    by_name: dict[str, list[Invocation]] = {}
    for inv in done:
        by_name.setdefault(inv.function_name, []).append(inv)
    for name, invs in sorted(by_name.items()):
        e2es = np.array([i.e2e_s for i in invs])
        queues = np.array(
            [i.queue_s + i.phases.get("gpu_queue", 0.0) for i in invs]
        )
        per[name] = WorkloadStats(
            name=name,
            count=len(invs),
            mean_e2e_s=float(e2es.mean()),
            std_e2e_s=float(e2es.std()),
            mean_queue_s=float(queues.mean()),
            mean_exec_s=float((e2es - queues).mean()),
            p50_e2e_s=percentile(e2es.tolist(), 50),
            p95_e2e_s=percentile(e2es.tolist(), 95),
            p99_e2e_s=percentile(e2es.tolist(), 99),
        )
    all_e2es = [i.e2e_s for i in done]
    return RunStats(
        provider_e2e_s=provider_e2e,
        function_e2e_sum_s=e2e_sum,
        per_workload=per,
        p50_e2e_s=percentile(all_e2es, 50),
        p95_e2e_s=percentile(all_e2es, 95),
        p99_e2e_s=percentile(all_e2es, 99),
    )


@dataclass(frozen=True)
class CommStats:
    """Communication-path summary of one guest's lifetime.

    Captures the latency-hiding counters: how deep the pipelined channel
    ran (``max_in_flight``), how many enqueue-only calls were forwarded
    asynchronously vs batched, and how many async failures were deferred
    to (or lost before) a synchronization point.
    """

    calls_intercepted: int
    calls_localized: int
    calls_batched: int
    calls_async_forwarded: int
    messages_sent: int
    max_in_flight: int
    async_deferred_errors: int
    async_replies_lost: int
    rpc_timeouts: int
    rpc_retries: int

    @classmethod
    def from_guest(cls, guest) -> "CommStats":
        return cls(
            calls_intercepted=guest.calls_intercepted,
            calls_localized=guest.calls_localized,
            calls_batched=guest.calls_batched,
            calls_async_forwarded=guest.calls_async_forwarded,
            messages_sent=guest.messages_sent,
            max_in_flight=guest.rpc.max_in_flight,
            async_deferred_errors=guest.async_deferred_errors,
            async_replies_lost=guest.async_replies_lost,
            rpc_timeouts=guest.rpc_timeouts,
            rpc_retries=guest.rpc_retries,
        )

    def as_dict(self) -> dict:
        return {
            "calls_intercepted": self.calls_intercepted,
            "calls_localized": self.calls_localized,
            "calls_batched": self.calls_batched,
            "calls_async_forwarded": self.calls_async_forwarded,
            "messages_sent": self.messages_sent,
            "max_in_flight": self.max_in_flight,
            "async_deferred_errors": self.async_deferred_errors,
            "async_replies_lost": self.async_replies_lost,
            "rpc_timeouts": self.rpc_timeouts,
            "rpc_retries": self.rpc_retries,
        }


@dataclass(frozen=True)
class CacheStats:
    """Aggregate artifact-cache effectiveness across API servers."""

    hits: int
    misses: int
    hit_bytes: int
    miss_bytes: int
    evictions: int
    invalidations: int

    @property
    def hit_rate(self) -> float:
        total = self.hits + self.misses
        return self.hits / total if total else 0.0

    @classmethod
    def from_registry(cls, registry, **match) -> "CacheStats":
        """Aggregate the ``artifact_cache.*`` counters of a
        :class:`~repro.obs.MetricsRegistry` (optionally filtered by label,
        e.g. ``server=3``)."""
        t = registry.total
        return cls(
            hits=int(t("artifact_cache.hits", **match)),
            misses=int(t("artifact_cache.misses", **match)),
            hit_bytes=int(t("artifact_cache.hit_bytes", **match)),
            miss_bytes=int(t("artifact_cache.miss_bytes", **match)),
            evictions=int(t("artifact_cache.evictions", **match)),
            invalidations=int(t("artifact_cache.invalidations", **match)),
        )

    def as_dict(self) -> dict:
        return {
            "hits": self.hits,
            "misses": self.misses,
            "hit_bytes": self.hit_bytes,
            "miss_bytes": self.miss_bytes,
            "evictions": self.evictions,
            "invalidations": self.invalidations,
            "hit_rate": round(self.hit_rate, 4),
        }


def summarize_caches(api_servers) -> CacheStats:
    """Sum artifact-cache counters over API servers (caches may be None)."""
    hits = misses = hit_bytes = miss_bytes = evictions = invalidations = 0
    for server in api_servers:
        cache = getattr(server, "artifact_cache", None)
        if cache is None:
            continue
        hits += cache.hits
        misses += cache.misses
        hit_bytes += cache.hit_bytes
        miss_bytes += cache.miss_bytes
        evictions += cache.evictions
        invalidations += cache.invalidations
    return CacheStats(
        hits=hits,
        misses=misses,
        hit_bytes=hit_bytes,
        miss_bytes=miss_bytes,
        evictions=evictions,
        invalidations=invalidations,
    )


@dataclass
class OutcomeSummary:
    """Terminal-status census of a (possibly faulty) run.

    Chaos experiments care less about latency than about *liveness*: every
    invocation must reach a terminal status — a wedged function means a
    recovery path leaked a waiter.
    """

    counts: dict[str, int] = field(default_factory=dict)
    total: int = 0
    completion_rate: float = 0.0
    mean_completed_e2e_s: float = 0.0
    #: True iff every invocation reached completed/failed/timeout
    all_terminal: bool = True

    def as_dict(self) -> dict:
        return {
            "counts": dict(self.counts),
            "total": self.total,
            "completion_rate": round(self.completion_rate, 4),
            "mean_completed_e2e_s": round(self.mean_completed_e2e_s, 3),
            "all_terminal": self.all_terminal,
        }

    @classmethod
    def from_registry(cls, registry, expected_total: "int | None" = None) -> "OutcomeSummary":
        """Build the census from ``invocation.*`` metrics instead of the
        invocation list.

        The platform only publishes *terminal* invocations, so a wedged
        function is invisible here unless ``expected_total`` (how many
        invocations were submitted) is given — then the shortfall is
        reported as non-terminal.
        """
        counts: dict[str, int] = {}
        for metric in registry.find("invocation.status"):
            status = metric.labels.get("status", "unknown")
            counts[status] = counts.get(status, 0) + int(metric.value)
        seen = sum(counts.values())
        total = expected_total if expected_total is not None else seen
        stuck = total - seen
        completed_obs = [
            obs
            for h in registry.find("invocation.e2e_s", status="completed")
            for obs in h.observations
        ]
        completed = counts.get("completed", 0)
        return cls(
            counts=counts,
            total=total,
            completion_rate=(completed / total) if total else 0.0,
            mean_completed_e2e_s=(
                float(np.mean(completed_obs)) if completed_obs else 0.0
            ),
            all_terminal=stuck == 0
            and all(s in TERMINAL_STATUSES for s in counts),
        )


def summarize_outcomes(invocations: list[Invocation]) -> OutcomeSummary:
    """Count terminal vs. stuck invocations (the chaos-run liveness check)."""
    counts: dict[str, int] = {}
    for inv in invocations:
        counts[inv.status] = counts.get(inv.status, 0) + 1
    completed = [inv for inv in invocations if inv.status == "completed"]
    total = len(invocations)
    return OutcomeSummary(
        counts=counts,
        total=total,
        completion_rate=(len(completed) / total) if total else 0.0,
        mean_completed_e2e_s=(
            float(np.mean([i.e2e_s for i in completed])) if completed else 0.0
        ),
        all_terminal=all(inv.status in TERMINAL_STATUSES for inv in invocations),
    )
