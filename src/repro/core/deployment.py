"""End-to-end deployments: wiring functions to GPUs.

Three ways a workload gets a GPU, all behind the same *GPU session
facade* (the method set of :class:`repro.core.guest.GuestLibrary`):

* :class:`NativeGpuSession`/:class:`NativeGpuProvider` — the paper's
  *native* baseline: the function executes on a machine with physically
  attached GPUs; first CUDA call pays the 3.2 s initialization.
* :class:`DgsfDeployment` with the default network — DGSF over the
  OpenFaaS-style deployment (10 Gbps, low jitter).
* :class:`DgsfDeployment.lambda_deployment` — the AWS Lambda variant:
  same GPU server, but the function-side network is slower and noisier
  and S3 throughput is degraded (§VIII-B).
"""

from __future__ import annotations

from typing import Generator, Optional

import numpy as np

from repro.errors import ConfigurationError
from repro.sim.core import Environment
from repro.sim.resources import Resource
from repro.sim.rng import RngRegistry
from repro.simcuda.costs import CostModel, DEFAULT_COSTS
from repro.simcuda.cudnn import CudnnLibrary
from repro.simcuda.cublas import CublasLibrary
from repro.simcuda.device import SimGPU
from repro.simcuda.kernels import KernelRegistry, builtin_registry
from repro.simcuda.runtime import LocalCudaRuntime
from repro.simcuda.types import Dim3, MemcpyKind
from repro.simnet.link import NetworkProfile
from repro.simnet.net import Network
from repro.simnet.rpc import RpcClient
from repro.faas.platform import ServerlessPlatform, FunctionContext, FunctionSpec
from repro.faas.storage import ObjectStore, StorageProfile, S3_DEFAULT, S3_LAMBDA
from repro.core.api_server import ApiServerDown
from repro.core.backend import GpuBackend
from repro.core.config import DgsfConfig
from repro.core.faults import FaultDirector
from repro.core.gpu_server import GpuServer
from repro.core.guest import GuestLibrary, GuestGpuBundle, GuestRpcError
from repro.obs import MetricsRegistry, SloEngine, Tracer
from repro.obs.sampling import TraceSampler

__all__ = [
    "NativeGpuSession",
    "NativeGpuProvider",
    "DgsfGpuProvider",
    "DgsfDeployment",
    "NativeDeployment",
]


# ======================================================================
# Native baseline
# ======================================================================

class NativeGpuSession:
    """Adapter exposing the GPU session facade over a local runtime."""

    def __init__(self, env: Environment, runtime: LocalCudaRuntime):
        self.env = env
        self.rt = runtime
        self._cudnn: Optional[CudnnLibrary] = None
        self._cublas: Optional[CublasLibrary] = None
        # facade-level counters (parity with GuestLibrary)
        self.calls_intercepted = 0
        self.calls_forwarded = 0  # native: nothing crosses a network

    def _ensure_libs(self) -> Generator:
        if self._cudnn is None:
            yield from self.rt.cudaGetDeviceCount()  # triggers lazy CUDA init
            self._cudnn = CudnnLibrary(self.env, self.rt.context, self.rt.costs)
            self._cublas = CublasLibrary(self.env, self.rt.context, self.rt.costs)

    # --- device management ---
    def cudaGetDeviceCount(self) -> Generator:
        self.calls_intercepted += 1
        return (yield from self.rt.cudaGetDeviceCount())

    def cudaGetDeviceProperties(self, device: int = 0) -> Generator:
        self.calls_intercepted += 1
        props = yield from self.rt.cudaGetDeviceProperties(device)
        return {
            "name": props.name,
            "total_global_mem": props.total_global_mem,
            "multiprocessor_count": props.multiprocessor_count,
            "clock_rate_khz": props.clock_rate_khz,
            "compute_capability": props.compute_capability,
        }

    def cudaSetDevice(self, device: int) -> Generator:
        self.calls_intercepted += 1
        return (yield from self.rt.cudaSetDevice(device))

    # --- memory ---
    def cudaMalloc(self, size: int) -> Generator:
        self.calls_intercepted += 1
        return (yield from self.rt.cudaMalloc(size))

    def cudaFree(self, ptr: int) -> Generator:
        self.calls_intercepted += 1
        return (yield from self.rt.cudaFree(ptr))

    def memcpyH2D(self, dst: int, size: int, payload=None, sync: bool = True,
                  stream: int = 0) -> Generator:
        self.calls_intercepted += 1
        done = yield from self.rt.cudaMemcpyAsync(
            dst, payload, size, MemcpyKind.HostToDevice, stream=stream
        )
        if sync:
            yield done
        return None

    def memcpyD2H(self, src: int, size: int, stream: int = 0) -> Generator:
        self.calls_intercepted += 1
        out = np.zeros(min(size, self.rt.costs.payload_cap_bytes), dtype=np.uint8)
        yield from self.rt.cudaMemcpy(out, src, size, MemcpyKind.DeviceToHost)
        return out

    def memcpyD2D(self, dst: int, src: int, size: int, sync: bool = True,
                  stream: int = 0) -> Generator:
        self.calls_intercepted += 1
        done = yield from self.rt.cudaMemcpyAsync(
            dst, src, size, MemcpyKind.DeviceToDevice, stream=stream
        )
        if sync:
            yield done
        return None

    def cudaMemset(self, ptr: int, value: int, size: int, sync: bool = True,
                   stream: int = 0) -> Generator:
        self.calls_intercepted += 1
        yield from self.rt.cudaMemset(ptr, value, size)
        return None

    def cudaMallocHost(self, size: int) -> Generator:
        self.calls_intercepted += 1
        return (yield from self.rt.cudaMallocHost(size))

    def cudaFreeHost(self, ptr: int) -> Generator:
        self.calls_intercepted += 1
        return (yield from self.rt.cudaFreeHost(ptr))

    def cudaPointerGetAttributes(self, ptr: int) -> Generator:
        self.calls_intercepted += 1
        return (yield from self.rt.cudaPointerGetAttributes(ptr))

    # --- kernels ---
    def cudaGetFunction(self, name: str) -> Generator:
        self.calls_intercepted += 1
        return (yield from self.rt.cudaGetFunction(name))

    def pushCallConfiguration(self, grid=(1, 1, 1), block=(1, 1, 1),
                              stream: int = 0) -> Generator:
        self.calls_intercepted += 1
        yield from self.rt.cudaPushCallConfiguration(Dim3(*grid), Dim3(*block), stream)
        return None

    def cudaLaunchKernel(self, token: int, grid=(1, 1, 1), block=(1, 1, 1),
                         args: tuple = (), stream: int = 0,
                         work: Optional[float] = None) -> Generator:
        self.calls_intercepted += 1
        yield from self.rt.cudaLaunchKernel(
            token, Dim3(*grid), Dim3(*block), tuple(args), stream=stream, work=work
        )
        return None

    # --- streams / events / sync ---
    def cudaStreamCreate(self) -> Generator:
        self.calls_intercepted += 1
        return (yield from self.rt.cudaStreamCreate())

    def cudaStreamSynchronize(self, stream: int) -> Generator:
        self.calls_intercepted += 1
        return (yield from self.rt.cudaStreamSynchronize(stream))

    def cudaStreamDestroy(self, stream: int) -> Generator:
        self.calls_intercepted += 1
        return (yield from self.rt.cudaStreamDestroy(stream))

    def cudaEventCreate(self) -> Generator:
        self.calls_intercepted += 1
        return (yield from self.rt.cudaEventCreate())

    def cudaEventRecord(self, event: int, stream: int = 0) -> Generator:
        self.calls_intercepted += 1
        return (yield from self.rt.cudaEventRecord(event, stream))

    def cudaEventSynchronize(self, event: int) -> Generator:
        self.calls_intercepted += 1
        return (yield from self.rt.cudaEventSynchronize(event))

    def cudaEventElapsedTime(self, start: int, end: int) -> Generator:
        self.calls_intercepted += 1
        return (yield from self.rt.cudaEventElapsedTime(start, end))

    def cudaMemGetInfo(self) -> Generator:
        self.calls_intercepted += 1
        return (yield from self.rt.cudaMemGetInfo())

    def cudaDeviceSynchronize(self) -> Generator:
        self.calls_intercepted += 1
        return (yield from self.rt.cudaDeviceSynchronize())

    # --- cuDNN / cuBLAS ---
    def cudnnCreate(self) -> Generator:
        self.calls_intercepted += 1
        yield from self._ensure_libs()
        return (yield from self._cudnn.cudnnCreate())

    def cudnnCreateDescriptor(self, kind: str) -> Generator:
        self.calls_intercepted += 1
        yield from self._ensure_libs()
        return (yield from self._cudnn.cudnnCreateDescriptor(kind))

    def cudnnSetDescriptor(self, desc: int, **settings) -> Generator:
        self.calls_intercepted += 1
        yield from self._ensure_libs()
        return (yield from self._cudnn.cudnnSetDescriptor(desc, **settings))

    def cudnnDestroyDescriptor(self, desc: int) -> Generator:
        self.calls_intercepted += 1
        yield from self._ensure_libs()
        return (yield from self._cudnn.cudnnDestroyDescriptor(desc))

    def cudnnOp(self, handle: int, op: str, work: float, sync: bool = False,
                stream: int = 0) -> Generator:
        self.calls_intercepted += 1
        yield from self._ensure_libs()
        done = yield from self._cudnn.cudnnOp(handle, op, work, stream=stream)
        if sync:
            yield done
        return None

    def cublasCreate(self) -> Generator:
        self.calls_intercepted += 1
        yield from self._ensure_libs()
        return (yield from self._cublas.cublasCreate())

    def cublasOp(self, handle: int, op: str, work: float, sync: bool = False,
                 stream: int = 0) -> Generator:
        self.calls_intercepted += 1
        yield from self._ensure_libs()
        done = yield from self._cublas.cublasOp(handle, op, work, stream=stream)
        if sync:
            yield done
        return None


class _NativeLease:
    def __init__(self, provider, gpu_session, request):
        self.gpu = gpu_session
        self._provider = provider
        self._request = request

    def release(self) -> Generator:
        self._provider._gate.release(self._request)
        if False:
            yield
        return None


class NativeGpuProvider:
    """The native baseline: one function at a time per local GPU."""

    def __init__(self, env: Environment, num_gpus: int = 1,
                 kernel_registry: Optional[KernelRegistry] = None,
                 costs: CostModel = DEFAULT_COSTS):
        self.env = env
        self.costs = costs
        self.kernels = kernel_registry or builtin_registry()
        self.devices = [SimGPU(env, i, costs=costs) for i in range(num_gpus)]
        self._gate = Resource(env, capacity=num_gpus)
        self._free = list(self.devices)

    def acquire(self, fc: FunctionContext, spec: FunctionSpec) -> Generator:
        t0 = self.env.now
        request = self._gate.request()
        yield request
        fc.add_phase("gpu_queue", self.env.now - t0)
        device = self._free.pop()
        # native: a fresh process gets a fresh (uninitialized) runtime
        runtime = LocalCudaRuntime(self.env, [device], self.kernels, self.costs)
        session = NativeGpuSession(self.env, runtime)
        lease = _NativeLease(self, session, request)

        def _release() -> Generator:
            # process exit tears the context down and frees its memory
            rt = session.rt
            if rt._context is not None:
                ctx = rt._context
                for mapping in list(ctx.address_space.mappings):
                    ctx.address_space.unmap(mapping.va)
                    ctx.device.free_phys(mapping.allocation)
                extra = ctx.device.mem_used
                if extra:
                    ctx.device.unreserve_bytes(extra)
                ctx.destroy()
            self._free.append(device)
            self._gate.release(request)
            if False:
                yield
            return None

        lease.release = _release
        return lease


# ======================================================================
# DGSF deployment
# ======================================================================

class _DgsfLease:
    def __init__(self, provider, bundle: GuestGpuBundle, fc: FunctionContext):
        self._provider = provider
        self._bundle = bundle
        self._fc = fc

    @property
    def gpu(self) -> GuestLibrary:
        return self._bundle.guest

    @property
    def api_server(self):
        return self._bundle.api_server

    def release(self) -> Generator:
        yield from self._provider._release(self._bundle)
        return None


class DgsfGpuProvider:
    """Installs DGSF GPUs into the serverless platform.

    ``acquire`` performs the §V-A handshake: ① ask the monitor for an API
    server (this is where functions queue under load — recorded as the
    ``gpu_queue`` phase), then connect and ② register kernels.
    """

    def __init__(self, deployment: "DgsfDeployment"):
        self.deployment = deployment
        self.control_rtt_s = 2 * deployment.network.default_profile.latency_s

    def acquire(self, fc: FunctionContext, spec: FunctionSpec) -> Generator:
        dep = self.deployment
        t0 = fc.env.now
        # the backend chooses a GPU server, then ① the guest library talks
        # to that server's monitor
        gpu_server = dep.backend.choose(spec.gpu_mem_bytes)
        request = None
        try:
            yield fc.env.timeout(self.control_rtt_s)
            span = fc.invocation._span
            request = gpu_server.monitor.submit_request(
                spec.gpu_mem_bytes,
                fc.invocation.invocation_id,
                expected_duration_s=spec.expected_duration_s,
                trace_ctx=(span.trace_id, span.span_id) if span is not None else None,
                flow_key=spec.name,
            )
            while True:
                api_server = yield request.granted
                yield fc.env.timeout(self.control_rtt_s)
                if not api_server.dead:
                    break
                # The server died during the grant's network hop and the
                # monitor re-queued us; wait for the replacement grant.
                request = yield request.resubmitted
        except BaseException:
            # Died waiting (watchdog kill, …): the queued/charged request
            # would otherwise hold a server forever.
            if request is not None:
                gpu_server.monitor.cancel(request)
            dep.backend.note_release(gpu_server)
            raise
        fc.add_phase("gpu_queue", fc.env.now - t0)

        connection = dep.network.connect(fc.host, gpu_server.host)
        if dep.fault_director is not None:
            connection.faults = dep.fault_director.link_injector()
        connection.tracer = dep.tracer
        connection.label = f"inv-{fc.invocation.invocation_id}"
        root = fc.invocation._span
        if root is not None:
            # xfer spans join the invocation's trace: the critical-path
            # report needs wire time inside the per-invocation span tree
            connection.trace_ctx = (root.trace_id, root.span_id)
        try:
            api_server.begin_session(
                spec.gpu_mem_bytes, invocation_id=fc.invocation.invocation_id
            )
            rpc_server = api_server.serve_endpoint(connection.b)
            guest = GuestLibrary(
                fc.env,
                RpcClient(connection.a),
                flags=dep.config.optimizations,
                costs=dep.costs,
                rpc_timeout_s=dep.config.rpc_timeout_s,
                rpc_max_retries=dep.config.rpc_max_retries,
                rpc_retry_backoff_s=dep.config.rpc_retry_backoff_s,
                async_max_in_flight=dep.config.async_max_in_flight,
                metrics=dep.metrics,
                tracer=dep.tracer,
                span=fc.invocation._span,
            )
            kernel_names = fc.params.get("kernel_names", dep.kernels.names())
            # The attach handshake happens here; workloads time their own
            # "cuda_init" phase around acquire_gpu(), so it is not recorded
            # twice.  With the startup optimization the remote context already
            # exists; without it, attach pays the on-demand 3.2 s init.
            yield from guest.attach(kernel_names)
        except BaseException:
            api_server.stop_serving()
            if not api_server.dead and api_server.busy:
                yield from api_server.end_session()
            gpu_server.monitor.release(api_server)
            dep.backend.note_release(gpu_server)
            raise
        bundle = GuestGpuBundle(guest, api_server, connection, rpc_server)
        return _DgsfLease(self, bundle, fc)

    def artifact_cache_for(self, fc: FunctionContext) -> Generator:
        """Resolve the artifact cache of the API server serving ``fc``.

        Called from :meth:`FunctionContext.download`.  With caching off
        (the default) this returns None without consuming simulated time,
        leaving the download path — and the event timeline — untouched.

        With caching on, the GPU must be acquired *before* the download so
        the server identity (and hence its local cache) is known; that is
        the structural cost of server-side caching, traded against warm
        downloads dropping from seconds to milliseconds.  ``acquire_gpu``
        is idempotent, so the workload's own later call is a no-op.
        """
        if self.deployment.config.artifact_cache_bytes <= 0:
            return None
        if fc.spec is None or fc.spec.gpu_mem_bytes <= 0:
            return None  # CPU-only function: never grab a GPU for a download
        yield from fc.acquire_gpu()
        return fc._gpu_lease.api_server.artifact_cache

    def _release(self, bundle: GuestGpuBundle) -> Generator:
        server = bundle.api_server
        try:
            yield from bundle.guest.detach()
        except (GuestRpcError, ApiServerDown):
            # The server died (or the link stayed down) under this
            # function; the lease must still come home so the monitor can
            # finish recovery and free the slot.
            pass
        server.stop_serving()
        if not server.dead and server.busy:
            yield from server.end_session()
        server.gpu_server.monitor.release(server)
        self.deployment.backend.note_release(server.gpu_server)
        return None


class DgsfDeployment:
    """A complete DGSF world: platform + network + storage + GPU server."""

    def __init__(
        self,
        config: DgsfConfig = DgsfConfig(),
        kernel_registry: Optional[KernelRegistry] = None,
        costs: CostModel = DEFAULT_COSTS,
        network_profile: Optional[NetworkProfile] = None,
        storage_profile: StorageProfile = S3_DEFAULT,
        env: Optional[Environment] = None,
        rngs: Optional[RngRegistry] = None,
        tracer: Optional[Tracer] = None,
        sample_scope: str = "",
    ):
        self.config = config
        self.costs = costs
        self.env = env or Environment()
        # Sharded runs pass a forked per-group registry so this world's
        # streams are independent of every co-resident deployment; solo
        # runs keep the historical root-registry derivation bit-identical.
        self.rngs = rngs if rngs is not None else RngRegistry(seed=config.seed)
        self.kernels = kernel_registry or builtin_registry()
        # Observability: one registry + SLO engine + (optional) tracer
        # shared by every layer.  All three only read ``env.now`` and
        # append to Python lists, so enabling them cannot perturb the
        # event timeline.  An injected ``tracer`` (a shard's namespaced
        # tracer, typically) takes precedence over building one from the
        # config — in a worker process only the shard tracer's spans make
        # it home to the coordinator.
        self.metrics = MetricsRegistry(clock=lambda: self.env.now)
        self.slo = SloEngine().attach(self.metrics)
        if tracer is not None:
            self.tracer: Optional[Tracer] = tracer
        else:
            # A sub-1.0 sample rate attaches the head+tail sampler; at
            # exactly 1.0 no sampler exists and the tracer behaves
            # byte-for-byte as before (the rate-1.0 golden equality bar).
            sampler = (
                TraceSampler(config.trace_sample_rate)
                if config.tracing_enabled and config.trace_sample_rate < 1.0
                else None
            )
            self.tracer = (
                Tracer(self.env, max_spans=config.trace_max_spans,
                       sampler=sampler)
                if config.tracing_enabled
                else None
            )
        #: stable sampling-key prefix for this deployment's invocations;
        #: sharded topologies pass their group name so keys — and hence
        #: the kept-trace set — are invariant to shard packing
        self.sample_scope = sample_scope
        if self.tracer is not None and self.tracer._sampler is not None:
            # SLO alerts tail-keep the traces they overlap (scope-local)
            def _keep_alert_traces(event, _tracer=self.tracer,
                                   _scope=sample_scope):
                _tracer.note_alert(
                    event.t, scope=_scope,
                    exemplar_trace_ids=tuple(
                        event.details.get("exemplars", ())),
                )
            self.slo.on_alert(_keep_alert_traces)
        profile = network_profile or NetworkProfile(latency_s=1.2e-3)
        self.network = Network(
            self.env, default_profile=profile, rng=self.rngs.stream("network")
        )
        self.fn_host = self.network.add_host("fn-server", bandwidth_bps=10e9)
        self.gpu_host = self.network.add_host("gpu-server", bandwidth_bps=10e9)
        self.storage = ObjectStore(
            self.env, profile=storage_profile, rng=self.rngs.stream("storage")
        )
        self.platform = ServerlessPlatform(self.env, self.fn_host, storage=self.storage)
        self.platform.metrics = self.metrics
        self.platform.tracer = self.tracer
        self.platform.sample_scope = sample_scope
        # one or more disaggregated GPU servers behind the backend (§IV)
        self.backend = GpuBackend(policy=config.backend_policy)
        self.gpu_servers: list[GpuServer] = []
        for i in range(config.num_gpu_servers):
            host = self.gpu_host if i == 0 else self.network.add_host(
                f"gpu-server-{i}", bandwidth_bps=10e9
            )
            server = GpuServer(self.env, config, host=host,
                               kernel_registry=self.kernels, costs=costs,
                               metrics=self.metrics, tracer=self.tracer)
            server.nvml.bind_metrics(self.metrics, gpu_server=i)
            self.gpu_servers.append(server)
        self.platform.gpu_provider = DgsfGpuProvider(self)
        # Fault injection: one director per deployment, drawing from its own
        # RNG stream so fault-free runs keep their exact event timeline.
        self.fault_director: Optional[FaultDirector] = None
        if config.fault_plan is not None:
            self.fault_director = FaultDirector(
                config.fault_plan, self.rngs.stream("faults")
            )
            injector = self.fault_director.server_injector()
            for server in self.gpu_servers:
                for api_server in server.api_servers:
                    api_server.fault_injector = injector
        self._ready = False

    @property
    def gpu_server(self) -> GpuServer:
        """The first GPU server (single-server deployments' shorthand)."""
        return self.gpu_servers[0]

    @classmethod
    def lambda_deployment(cls, config: DgsfConfig = DgsfConfig(), **kwargs) -> "DgsfDeployment":
        """AWS-Lambda-flavoured deployment: slower, noisier networking."""
        lam_profile = NetworkProfile(
            latency_s=1.6e-3,
            jitter_stddev=400e-6,
            bandwidth_factor_range=(0.12, 0.35),
        )
        return cls(
            config=config,
            network_profile=lam_profile,
            storage_profile=S3_LAMBDA,
            **kwargs,
        )

    def start_servers(self) -> list:
        """Begin GPU-server bring-up; returns the servers' ready events.

        Split out of :meth:`setup` so sharded topologies can bring several
        co-resident deployments up *concurrently* from t=0 — sequential
        ``setup()`` calls would shift the later groups' timelines by the
        earlier groups' bring-up time, making outcomes depend on how
        groups were packed onto shards.
        """
        if self._ready:
            raise ConfigurationError("deployment already set up")
        for server in self.gpu_servers:
            server.start()
        return [s.ready for s in self.gpu_servers]

    def finish_setup(self) -> None:
        """Register brought-up servers; pair with :meth:`start_servers`."""
        # "it announces it is ready" — register with the backend
        for server in self.gpu_servers:
            self.backend.register(server)
        self._ready = True

    def setup(self) -> None:
        """Run GPU-server bring-up to completion (pre-experiment time)."""
        ready_events = self.start_servers()
        from repro.sim.core import AllOf

        self.env.run(until=AllOf(self.env, ready_events))
        self.finish_setup()

    @property
    def ready(self) -> bool:
        return self._ready


class NativeDeployment:
    """Baseline world: same platform/storage, locally attached GPUs."""

    def __init__(
        self,
        num_gpus: int = 1,
        kernel_registry: Optional[KernelRegistry] = None,
        costs: CostModel = DEFAULT_COSTS,
        storage_profile: StorageProfile = S3_DEFAULT,
        seed: int = 0,
        env: Optional[Environment] = None,
        tracing_enabled: bool = False,
        trace_max_spans: int = 250_000,
        trace_sample_rate: float = 1.0,
    ):
        self.env = env or Environment()
        self.costs = costs
        self.rngs = RngRegistry(seed=seed)
        self.kernels = kernel_registry or builtin_registry()
        self.metrics = MetricsRegistry(clock=lambda: self.env.now)
        self.slo = SloEngine().attach(self.metrics)
        sampler = (TraceSampler(trace_sample_rate)
                   if tracing_enabled and trace_sample_rate < 1.0 else None)
        self.tracer: Optional[Tracer] = (
            Tracer(self.env, max_spans=trace_max_spans, sampler=sampler)
            if tracing_enabled else None
        )
        self.network = Network(self.env, rng=self.rngs.stream("network"))
        self.fn_host = self.network.add_host("gpu-machine", bandwidth_bps=10e9)
        self.storage = ObjectStore(
            self.env, profile=storage_profile, rng=self.rngs.stream("storage")
        )
        self.platform = ServerlessPlatform(self.env, self.fn_host, storage=self.storage)
        self.platform.metrics = self.metrics
        self.platform.tracer = self.tracer
        self.platform.gpu_provider = NativeGpuProvider(
            self.env, num_gpus=num_gpus,
            kernel_registry=self.kernels, costs=costs,
        )

    def setup(self) -> None:
        """Nothing to bring up natively; provided for interface parity."""
        return None
