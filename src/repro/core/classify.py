"""API classification: remotable vs localizable vs special (paper §V-B).

"There are two classes of APIs: remotable and localizable.  Localizable
APIs are not forwarded since they can be immediately responded by the
guest library using internally cached information or can be safely
ignored.  Remotable APIs require the guest library to use our TCP-based
RPC mechanism."

Within the remotable class, DGSF further distinguishes:

* *batchable* — "APIs that don't cause an immediate change to GPU state
  are accumulated locally and sent in batches" (§V-C): kernel launches,
  async memcpys/memsets, event records.
* *special* — remoted but not realized as-is: ``cudaGetDeviceCount``
  (always answers 1), pooled handle creation, DGSF-managed allocation.

Which class applies can depend on the active optimization flags — e.g.
cuDNN descriptor APIs are remotable in unoptimized DGSF and localizable
once guest-side descriptor pooling is enabled.  :func:`classify` takes the
flags and returns the effective class.
"""

from __future__ import annotations

import enum

from repro.core.config import OptimizationFlags

__all__ = ["ApiClass", "classify", "LOCALIZABLE", "BATCHABLE", "SPECIAL"]


class ApiClass(enum.Enum):
    #: answered entirely on the guest; never crosses the network
    LOCALIZABLE = "localizable"
    #: forwarded synchronously (caller needs the result or ordering)
    REMOTABLE_SYNC = "remotable_sync"
    #: enqueue-only; may be accumulated and shipped in a batch
    BATCHABLE = "batchable"


#: APIs that are localizable *when the corresponding optimization is on*.
#: Maps API name -> the OptimizationFlags attribute that enables local
#: handling ("" = always localizable in DGSF).
LOCALIZABLE: dict[str, str] = {
    # host-state-only APIs: "fully emulated on the client side" (§V-C)
    "cudaMallocHost": "avoid_unnecessary",
    "cudaFreeHost": "avoid_unnecessary",
    # guest tracks device allocations, so attributes are known locally
    "cudaPointerGetAttributes": "avoid_unnecessary",
    # piggybacked onto the launch API
    "__cudaPushCallConfiguration": "avoid_unnecessary",
    # device count is fixed at 1 for the function's lifetime: cacheable
    "cudaGetDeviceCount": "avoid_unnecessary",
    "cudaSetDevice": "avoid_unnecessary",
    # cuDNN descriptors pooled/managed guest-side
    "cudnnCreateDescriptor": "descriptor_pooling",
    "cudnnSetDescriptor": "descriptor_pooling",
    "cudnnDestroyDescriptor": "descriptor_pooling",
}

#: Enqueue-only APIs eligible for batching.
BATCHABLE: frozenset[str] = frozenset(
    {
        "cudaLaunchKernel",
        "cudaMemcpyAsync",
        "cudaMemsetAsync",
        "cudaEventRecord",
        "cudnnOpAsync",
        "cublasOpAsync",
    }
)

#: Remoted but specially realized on the API server (documentation aid;
#: dispatch happens in the server handler).
SPECIAL: frozenset[str] = frozenset(
    {
        "cudaGetDeviceCount",       # always answers 1
        "cudaGetDeviceProperties",  # properties of the *assigned* GPU only
        "cudnnCreate",              # served from the handle pool
        "cublasCreate",             # served from the handle pool
        "cudaMalloc",               # realized via low-level VA management
    }
)


def classify(api: str, flags: OptimizationFlags) -> ApiClass:
    """Effective class of ``api`` under the given optimization flags.

    BATCHABLE covers every enqueue-only API the guest need not wait on;
    the guest then either buffers it for a batched flush (``batching``) or
    forwards it immediately on the pipelined channel (``async_forward``).
    """
    gate = LOCALIZABLE.get(api)
    if gate is not None:
        if gate == "" or getattr(flags, gate):
            return ApiClass.LOCALIZABLE
    if api in BATCHABLE and (flags.batching or flags.async_forward):
        return ApiClass.BATCHABLE
    return ApiClass.REMOTABLE_SYNC
