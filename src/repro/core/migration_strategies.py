"""Alternative migration strategies — the Table I / §IX comparison.

The paper positions DGSF's VA-preserving migration against two prior
approaches:

* **Gandiva-style checkpoint/restore** (§II, §IX): "relies on library
  functions that can snapshot-restore its state, e.g. TensorFlow's
  train.Saver" — the application's device state is serialized *through
  the host*, destroyed, and rebuilt at the destination.  Generality is
  lost (the library must support it) and the data crosses PCIe twice.
* **DCUDA-style peer access** (§II, §IX): "does not explicitly move the
  data to the destination GPU's memory: application memory accesses may
  — and will — page fault and require data to be read on-demand from the
  peer GPU."  Migration itself is nearly free, but every subsequent
  access pays remote-access overhead, and the source GPU's memory is
  *not* freed ("it is desirable to move data explicitly as to possibly
  create enough space for another function").

Both are implemented here against the same API-server machinery so the
trade-offs can be measured (``benchmarks/test_ablation_migration_strategies.py``),
reproducing the argument of Table I quantitatively.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Generator

from repro.errors import SimulationError
from repro.sim.core import Environment

__all__ = [
    "StrategyOutcome",
    "checkpoint_restore_migration",
    "peer_access_migration",
    "MIGRATION_STRATEGIES",
]


@dataclass
class StrategyOutcome:
    """What one strategy did and what it costs afterwards."""

    strategy: str
    duration_s: float
    moved_bytes: int
    #: bytes still resident on the *source* GPU afterwards
    residual_source_bytes: int
    #: multiplicative slowdown on subsequent device accesses (1.0 = none)
    post_access_penalty: float


def checkpoint_restore_migration(api_server, target_device_id: int) -> Generator:
    """Gandiva-style: snapshot to host, destroy, restore on the target.

    Data moves D2H on the source then H2D on the target (two PCIe
    crossings instead of one device-to-device copy), and the virtual
    addresses are *not* preserved — the session's pointer table is
    rewritten, which only works because our sessions track every
    allocation (a real application with device pointers embedded in
    device data structures would break, which is the paper's point).
    """
    env: Environment = api_server.env
    gpu_server = api_server.gpu_server
    driver = gpu_server.driver
    costs = api_server.costs
    source_device_id = api_server.current_device_id
    if target_device_id == source_device_id:
        raise SimulationError("migration target equals current GPU")
    session = api_server.session
    if session is None:
        raise SimulationError("cannot migrate an idle API server")

    t_start = env.now
    with api_server.exec_lock.request() as lock:
        yield lock
        source_ctx = api_server.context
        yield source_ctx.synchronize()
        if target_device_id == api_server.home_device_id:
            target_ctx = api_server.contexts[target_device_id]
        else:
            target_ctx = gpu_server.claim_migration_slot(api_server, target_device_id)
        # library-level snapshot bookkeeping (the train.Saver pass)
        yield env.timeout(costs.migration_fixed_s * 2)

        moved = 0
        source_device = source_ctx.device
        target_device = target_ctx.device
        old_allocations = dict(session.allocations)
        session.allocations.clear()
        for va, size in sorted(old_allocations.items()):
            mapping, _ = source_ctx.address_space.translate(va)
            old_alloc = mapping.allocation
            # snapshot: D2H on the source...
            yield source_device.copy_d2h(size)
            host_copy = old_alloc.read(0, old_alloc.payload_bytes)
            driver.cuMemUnmap(source_ctx, va)
            driver.cuMemAddressFree(source_ctx, va)
            yield from driver.cuMemRelease(old_alloc)
            # ...restore: fresh allocation at a NEW address on the target
            new_alloc = yield from driver.cuMemCreate(target_device_id, size)
            new_va = driver.cuMemAddressReserve(target_ctx, size)
            driver.cuMemMap(target_ctx, new_va, new_alloc)
            yield target_device.copy_h2d(size)
            new_alloc.write(0, host_copy)
            session.allocations[new_va] = size
            moved += size

        # handle/stream state is rebuilt by the library on restore
        for twins in session.streams.values():
            if target_device_id not in twins:
                twins[target_device_id] = target_ctx.create_stream()
        for token in list(session.events):
            session.events[token] = target_ctx.create_event()
        for table, borrow, lib_map, borrowed in (
            (session.cudnn_handles, gpu_server.pools.borrow_cudnn,
             api_server._cudnn_libs, session.borrowed_cudnn),
            (session.cublas_handles, gpu_server.pools.borrow_cublas,
             api_server._cublas_libs, session.borrowed_cublas),
        ):
            for token, twins in table.items():
                if target_device_id not in twins:
                    handle = borrow(target_device_id)
                    if handle is None:
                        lib = lib_map[target_device_id]
                        h = yield from (
                            lib.cudnnCreate() if hasattr(lib, "cudnnCreate")
                            else lib.cublasCreate()
                        )
                        handle = lib._handles[h]
                    else:
                        borrowed.append(handle)
                    twins[target_device_id] = handle

        previous = source_device_id
        api_server.current_device_id = target_device_id
        api_server.memory_device_id = target_device_id
        if previous != api_server.home_device_id:
            gpu_server.release_migration_slot(api_server, previous)
        api_server.migrations += 1

    return StrategyOutcome(
        strategy="checkpoint_restore",
        duration_s=env.now - t_start,
        moved_bytes=moved,
        residual_source_bytes=0,
        post_access_penalty=1.0,
    )


#: remote (peer) memory access slowdown under DCUDA-style migration:
#: NVLink/PCIe peer reads are several times slower than local HBM
PEER_ACCESS_PENALTY = 2.5


def peer_access_migration(api_server, target_device_id: int) -> Generator:
    """DCUDA-style: switch execution, leave the data on the source GPU.

    Migration is almost instantaneous, but (a) the source GPU's memory is
    not freed — it cannot host another function — and (b) every kernel
    afterwards pays remote-access overhead.  The caller applies the
    returned ``post_access_penalty`` to subsequent kernel work.
    """
    env: Environment = api_server.env
    gpu_server = api_server.gpu_server
    costs = api_server.costs
    source_device_id = api_server.current_device_id
    if target_device_id == source_device_id:
        raise SimulationError("migration target equals current GPU")
    session = api_server.session
    if session is None:
        raise SimulationError("cannot migrate an idle API server")

    t_start = env.now
    with api_server.exec_lock.request() as lock:
        yield lock
        source_ctx = api_server.context
        yield source_ctx.synchronize()
        if target_device_id == api_server.home_device_id:
            target_ctx = api_server.contexts[target_device_id]
        else:
            target_ctx = gpu_server.claim_migration_slot(api_server, target_device_id)
        # execution state switch only; data stays put
        yield env.timeout(costs.migration_fixed_s * 0.1)
        for twins in session.streams.values():
            if target_device_id not in twins:
                twins[target_device_id] = target_ctx.create_stream()
        for token in list(session.events):
            session.events[token] = target_ctx.create_event()
        residual = sum(session.allocations.values())
        previous = source_device_id
        api_server.current_device_id = target_device_id
        # memory_device_id intentionally stays at the source: the data was
        # not moved, and future memory ops/frees go to the source context
        api_server.kernel_work_multiplier = PEER_ACCESS_PENALTY
        if previous != api_server.home_device_id:
            gpu_server.release_migration_slot(api_server, previous)
        api_server.migrations += 1
        # NOTE: the VA map still lives in the *source* context; kernels
        # reach it through peer access.  We leave translate() pointing at
        # the source space by keeping the session allocations as-is; the
        # penalty models the remote faults.

    return StrategyOutcome(
        strategy="peer_access",
        duration_s=env.now - t_start,
        moved_bytes=0,
        residual_source_bytes=residual,
        post_access_penalty=PEER_ACCESS_PENALTY,
    )


def _dgsf_strategy(api_server, target_device_id: int) -> Generator:
    """DGSF's own strategy wrapped in the common outcome type."""
    from repro.core.migration import migrate_api_server

    record = yield from migrate_api_server(api_server, target_device_id)
    return StrategyOutcome(
        strategy="dgsf",
        duration_s=record.duration_s,
        moved_bytes=record.moved_bytes,
        residual_source_bytes=0,
        post_access_penalty=1.0,
    )


MIGRATION_STRATEGIES = {
    "dgsf": _dgsf_strategy,
    "checkpoint_restore": checkpoint_restore_migration,
    "peer_access": peer_access_migration,
}
