"""Live migration of an API server between GPUs (paper §V-D).

The sequence, mirroring the paper:

1. *Quiesce*: stop handling API calls (taking the server's exec lock —
   "Migration occurs at API call boundaries") and wait for all pending
   stream operations to complete.
2. *Claim* the destination GPU's pre-initialized migration-slot context
   (contexts cannot be created in 3.2 s on the migration path).
3. For every application allocation: create physical memory on the target
   GPU, copy device-to-device, reserve the *same virtual address* in the
   destination context (fixed-address ``cuMemAddressReserve``), map the
   new physical memory there, and release the source memory.  Application
   pointers — including indirect ones stored in device data structures —
   remain valid because the address map is identical.
4. *Translate handles*: install twins for streams, events and cuDNN/
   cuBLAS handles in the destination context via the translation maps.
5. Switch the server's current context and resume.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Generator

from repro.errors import SimulationError
from repro.sim.core import Environment

__all__ = ["MigrationRecord", "migrate_api_server"]


@dataclass
class MigrationRecord:
    """Outcome of one migration."""

    server_id: int
    source_device: int
    target_device: int
    moved_bytes: int
    allocations_moved: int
    started_at: float
    duration_s: float


def migrate_api_server(api_server, target_device_id: int) -> Generator:
    """Migrate ``api_server``'s live function to ``target_device_id``.

    Returns a :class:`MigrationRecord`.  The caller (monitor) is
    responsible for scheduling-level accounting (committed memory moves).
    """
    env: Environment = api_server.env
    gpu_server = api_server.gpu_server
    driver = gpu_server.driver
    costs = api_server.costs
    source_device_id = api_server.current_device_id
    if target_device_id == source_device_id:
        raise SimulationError("migration target equals current GPU")
    if api_server.session is None:
        raise SimulationError("cannot migrate an idle API server")
    if api_server.memory_device_id != api_server.current_device_id:
        raise SimulationError(
            "cannot migrate a session whose memory was left behind by a "
            "peer-access move"
        )

    t_start = env.now
    with api_server.exec_lock.request() as lock:
        # 1. quiesce: no new API calls; drain pending operations
        yield lock
        source_ctx = api_server.context
        yield source_ctx.synchronize()

        # 2. the destination context: the server's own home context when
        # migrating back home, otherwise the target GPU's pre-initialized
        # migration slot
        if target_device_id == api_server.home_device_id:
            target_ctx = api_server.contexts[target_device_id]
        else:
            target_ctx = gpu_server.claim_migration_slot(api_server, target_device_id)

        # fixed overhead: driver coordination, context switch, bookkeeping
        yield env.timeout(costs.migration_fixed_s)

        session = api_server.session
        moved_bytes = 0
        moved_allocs = 0
        # 3. move every allocation, preserving virtual addresses
        for va, size in sorted(session.allocations.items()):
            old_mapping, _ = source_ctx.address_space.translate(va)
            old_alloc = old_mapping.allocation
            new_alloc = yield from driver.cuMemCreate(target_device_id, size)
            # temporary-VA data move (modelled as the copy itself)
            yield from driver.cuMemcpyDtoD(new_alloc, old_alloc, size)
            yield env.timeout(costs.migration_per_allocation_s)
            got = driver.cuMemAddressReserve(target_ctx, size, fixed_addr=va)
            assert got == va, "fixed-address reservation must preserve the VA"
            driver.cuMemMap(target_ctx, got, new_alloc)
            # release the source-side resources
            driver.cuMemUnmap(source_ctx, va)
            driver.cuMemAddressFree(source_ctx, va)
            yield from driver.cuMemRelease(old_alloc)
            moved_bytes += size
            moved_allocs += 1

        # 4a. stream twins: ensure each guest stream has a twin in the
        # destination context (pre-created twins may predate this context)
        for twins in session.streams.values():
            if target_device_id not in twins:
                twins[target_device_id] = target_ctx.create_stream()

        # 4b. events: recreate in the destination context
        for token in list(session.events):
            session.events[token] = target_ctx.create_event()

        # 4c. cuDNN / cuBLAS handle twins from the target GPU's pool
        pools = gpu_server.pools
        for token, twins in session.cudnn_handles.items():
            if target_device_id not in twins:
                handle = pools.borrow_cudnn(target_device_id)
                if handle is None:
                    lib = api_server._cudnn_libs[target_device_id]
                    h = yield from lib.cudnnCreate()
                    handle = lib._handles[h]
                else:
                    session.borrowed_cudnn.append(handle)
                twins[target_device_id] = handle
        for token, twins in session.cublas_handles.items():
            if target_device_id not in twins:
                handle = pools.borrow_cublas(target_device_id)
                if handle is None:
                    lib = api_server._cublas_libs[target_device_id]
                    h = yield from lib.cublasCreate()
                    handle = lib._handles[h]
                else:
                    session.borrowed_cublas.append(handle)
                twins[target_device_id] = handle

        # 5. switch and resume; release a previously claimed slot if this
        # server had already migrated once
        previous = source_device_id
        api_server.current_device_id = target_device_id
        api_server.memory_device_id = target_device_id
        if previous != api_server.home_device_id:
            gpu_server.release_migration_slot(api_server, previous)
        api_server.migrations += 1

    return MigrationRecord(
        server_id=api_server.server_id,
        source_device=source_device_id,
        target_device=target_device_id,
        moved_bytes=moved_bytes,
        allocations_moved=moved_allocs,
        started_at=t_start,
        duration_s=env.now - t_start,
    )
