"""The GPU server: manager bring-up + assembly (paper §IV, §V-A).

"When a GPU server is provisioned, the first piece that runs is the
manager, which is responsible for setting up the environment, checking
the available GPUs and creating the monitor and the initial idle API
servers.  Once set up, it sends the serverless backend a message
announcing that it is ready and how many functions it can handle (one per
API server created)."

Bring-up creates, *before any function arrives*:

* one API server per (GPU × sharing level), each with its home context
  and own cuDNN/cuBLAS handle pair (the 755 MB idle footprint),
* one *migration slot* per GPU — a spare pre-initialized context a
  migrating API server claims instantly (contexts cost 3.2 s, which would
  dwarf the 0.5–2 s migration budget of Table V if created on demand),
* a small shared pool of cuDNN/cuBLAS handles per GPU for migration
  twins and for functions that create more handles than the server owns.
"""

from __future__ import annotations

from typing import Generator, Optional

from repro.errors import ConfigurationError, SimulationError
from repro.sim.core import Environment, Event
from repro.simcuda.context import CudaContext
from repro.simcuda.costs import CostModel, DEFAULT_COSTS
from repro.simcuda.device import SimGPU
from repro.simcuda.driver import DriverAPI
from repro.simcuda.kernels import KernelRegistry, builtin_registry
from repro.simcuda.nvml import NvmlSampler
from repro.core.api_server import ApiServer
from repro.core.config import DgsfConfig
from repro.core.handlepool import HandlePools
from repro.core.monitor import Monitor
from repro.core.policies import make_policy

__all__ = ["GpuServer"]


class GpuServer:
    """One disaggregated GPU machine with its manager-created pieces."""

    def __init__(
        self,
        env: Environment,
        config: DgsfConfig,
        host=None,
        kernel_registry: Optional[KernelRegistry] = None,
        costs: CostModel = DEFAULT_COSTS,
        metrics=None,
        tracer=None,
    ):
        self.env = env
        self.config = config
        self.host = host
        self.costs = costs
        if metrics is None:
            from repro.obs.metrics import MetricsRegistry

            metrics = MetricsRegistry()
        self.metrics = metrics
        self.tracer = tracer
        self.devices = [SimGPU(env, i, costs=costs) for i in range(config.num_gpus)]
        self.driver = DriverAPI(env, self.devices, kernel_registry or builtin_registry(), costs)
        self.driver.cuInit()
        self.pools = HandlePools(env, costs)
        self.api_servers: list[ApiServer] = []
        sid = 0
        for device in self.devices:
            for _ in range(config.api_servers_per_gpu):
                server = ApiServer(env, self, sid, device.device_id)
                server.tracer = tracer
                self.api_servers.append(server)
                sid += 1
        #: device_id -> spare context (None while claimed)
        self._migration_slots: dict[int, Optional[CudaContext]] = {}
        self.monitor = Monitor(
            env,
            self,
            policy=make_policy(config.policy),
            migration_enabled=config.migration_enabled,
            period_s=config.monitor_period_s,
            confirm_checks=config.migration_confirm_checks,
            queue_discipline=config.queue_discipline,
            heartbeat_timeout_s=config.heartbeat_timeout_s,
            sff_aging_factor=config.sff_aging_factor,
            mqfq_throttle_window_s=config.mqfq_throttle_window_s,
            metrics=self.metrics,
        )
        self.monitor.tracer = tracer
        self.nvml = NvmlSampler(env, self.devices)
        self.ready = Event(env)
        self._setup_proc = None
        #: device_ids whose migration-slot context died with a crashed server
        self._lost_slots: set[int] = set()
        self.servers_restarted = 0

    # -- bring-up -----------------------------------------------------------------
    def start(self):
        """Kick off manager bring-up; ``self.ready`` fires when done."""
        if self._setup_proc is not None:
            raise SimulationError("GPU server already started")
        self._setup_proc = self.env.process(self._bringup(), name="gpu-server-manager")
        return self._setup_proc

    def _bringup(self) -> Generator:
        # API servers initialize in parallel (independent processes).
        procs = [
            self.env.process(server.setup(), name=f"apiserver-{server.server_id}-setup")
            for server in self.api_servers
        ]
        # Spare migration-slot contexts + shared handle pools, per GPU, in
        # parallel with the API servers.
        slot_procs = [
            self.env.process(self._setup_slot(device), name=f"slot-{device.device_id}")
            for device in self.devices
        ]
        yield self.env.all_of(procs + slot_procs)
        self.monitor.finalize_capacity()
        self.monitor.start()
        # "it announces it is ready and how many functions it can handle"
        self.ready.succeed(len(self.api_servers))

    def _setup_slot(self, device: SimGPU) -> Generator:
        ctx = yield from self.driver.cuCtxCreate(device.device_id)
        self._migration_slots[device.device_id] = ctx
        yield from self.pools.prefill(ctx, self.config.pool_handles_per_gpu)

    # -- migration slots -----------------------------------------------------------
    def migration_slot_available(self, device_id: int) -> bool:
        return self._migration_slots.get(device_id) is not None

    def claim_migration_slot(self, api_server: ApiServer, device_id: int) -> CudaContext:
        ctx = self._migration_slots.get(device_id)
        if ctx is None:
            raise SimulationError(f"no free migration slot on GPU {device_id}")
        self._migration_slots[device_id] = None
        api_server._adopt_context(device_id, ctx)
        return ctx

    def release_migration_slot(self, api_server: ApiServer, device_id: int) -> None:
        if self._migration_slots.get(device_id) is not None:
            raise SimulationError(f"migration slot on GPU {device_id} is not claimed")
        ctx = api_server.release_context(device_id)
        self._migration_slots[device_id] = ctx

    def note_slot_lost(self, device_id: int) -> None:
        """A claimed migration-slot context died with a crashed API server."""
        self._lost_slots.add(device_id)

    # -- crash recovery -----------------------------------------------------------
    def restart_api_server(self, server: ApiServer):
        """Re-bring-up a crashed API server (§V-A recovery path).

        Recreates the home context and the own cuDNN/cuBLAS handle pair —
        paying the full 3.2 s CUDA initialization plus handle creation and
        re-charging the 755 MB idle footprint — and rebuilds any migration
        slot the crash consumed.  Notifies the monitor when serviceable.
        """
        if not server.dead:
            raise SimulationError(f"API server {server.server_id} is not dead")

        def bringup() -> Generator:
            yield from server.setup()
            # restore migration slots this crash consumed
            lost, self._lost_slots = sorted(self._lost_slots), set()
            for device_id in lost:
                ctx = yield from self.driver.cuCtxCreate(device_id)
                self._migration_slots[device_id] = ctx
            server.dead = False
            self.servers_restarted += 1
            self.monitor.server_restarted(server)

        return self.env.process(
            bringup(), name=f"apiserver-{server.server_id}-restart"
        )

    # -- inspection ---------------------------------------------------------------------
    @property
    def capacity(self) -> int:
        """How many functions the server can handle concurrently."""
        return len(self.api_servers)

    def device(self, device_id: int) -> SimGPU:
        for d in self.devices:
            if d.device_id == device_id:
                return d
        raise ConfigurationError(f"no GPU {device_id}")

    def idle_api_servers(self) -> list[ApiServer]:
        return [s for s in self.api_servers if not s.busy]

    def shutdown(self) -> Generator:
        """Tear the GPU server down: destroy contexts, free all static
        memory ("The manager then idles until it is shut down", §V-A)."""
        if any(s.busy for s in self.api_servers):
            raise SimulationError("cannot shut down with busy API servers")
        for server in self.api_servers:
            server.stop_serving()
            if server.artifact_cache is not None:
                server.artifact_cache.invalidate_all()
            ctx = server.contexts[server.home_device_id]
            # own handles
            if server._own_cudnn is not None:
                ctx.device.unreserve_bytes(self.costs.cudnn_handle_bytes)
            if server._own_cublas is not None:
                ctx.device.unreserve_bytes(self.costs.cublas_handle_bytes)
            self.driver.cuCtxDestroy(ctx)
        for device_id, ctx in list(self._migration_slots.items()):
            if ctx is not None:
                self.driver.cuCtxDestroy(ctx)
                self._migration_slots[device_id] = None
        # drain the shared handle pools
        for device in self.devices:
            cudnn_n, cublas_n = self.pools.available(device.device_id)
            device.unreserve_bytes(
                cudnn_n * self.costs.cudnn_handle_bytes
                + cublas_n * self.costs.cublas_handle_bytes
            )
        if False:
            yield
        return None

    def __repr__(self) -> str:
        return (
            f"<GpuServer gpus={len(self.devices)} servers={len(self.api_servers)} "
            f"policy={self.config.policy} sharing={self.config.api_servers_per_gpu}>"
        )
