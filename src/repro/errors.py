"""Top-level exception hierarchy shared by all repro subpackages.

Subsystems define their own more specific exceptions (e.g.
:class:`repro.simcuda.errors.CudaError`) but everything raised by this
package derives from :class:`ReproError` so callers can catch broadly.
"""


class ReproError(Exception):
    """Base class for every exception raised by the repro package."""


class SimulationError(ReproError):
    """An inconsistency inside the discrete-event simulation kernel."""


class ConfigurationError(ReproError):
    """Invalid user-supplied configuration (sizes, policies, topology)."""
