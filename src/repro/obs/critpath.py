"""Critical-path extraction and per-resource attribution over span trees.

The tracer records every invocation as a tree of spans: a platform root
(``invocation:*``) with retroactive ``phase`` children, guest ``rpc:*``
round trips, the ``gpu_request`` queue span, net ``xfer:*`` transfers and
API-server ``srv:*`` execution spans stitched in via the propagated wire
context.  Because a function invocation is one logical thread, its
critical path is the *innermost* span covering each instant of the root's
wall time; this module sweeps the tree to produce:

* :func:`critical_path` — the ordered list of :class:`PathSegment`\\ s
  (time interval, covering span stack, attributed resource) for one
  invocation's trace,
* :func:`invocation_critpaths` — one attribution row per invocation:
  seconds per resource (queue / wire / serialization / gpu_compute /
  object_store / cpu), the dominant resource, and coverage (fraction of
  root wall time explained by non-root spans — the same >= 95% bar the
  latency-breakdown report enforces),
* :func:`aggregate_critpaths` + :func:`bottleneck_table` — "top
  bottleneck by workload x percentile" rollups,
* :func:`folded_stacks` / :func:`dump_folded` — a folded flamegraph
  export (``stack;frames;joined value``) loadable in speedscope or
  FlameGraph's ``flamegraph.pl``.

Everything here is offline analysis over an existing tracer — it reads
records and never touches the simulation.

Resource semantics (how a span category maps to the contended resource):

====================  =================  =================================
span                  resource           meaning
====================  =================  =================================
``platform_queue``    ``queue``          waiting for a warm container
``gpu_queue`` phase / ``queue``          §V-A ① waiting for an API server
``gpu_request``
``download`` phase    ``object_store``   S3 GET (or cache staging)
``xfer:*``            ``wire``           NIC serialization + propagation
``srv:*``             ``gpu_compute``    API-server execution (exec-lock
                                         wait + CUDA work)
``rpc:*`` remainder   ``serialization``  client-side marshal/stack time
                                         not inside a nested xfer/srv span
everything else       ``cpu``            guest-local compute
====================  =================  =================================
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.obs.metrics import _percentile

__all__ = [
    "RESOURCES",
    "PathSegment",
    "resource_of",
    "critical_path",
    "invocation_critpaths",
    "aggregate_critpaths",
    "bottleneck_table",
    "folded_stacks",
    "dump_folded",
    "critpath_report",
]

#: every resource bucket attribution can land in
RESOURCES = ("queue", "wire", "serialization", "gpu_compute", "object_store", "cpu")

#: span category -> nesting depth.  Higher = more specific: an ``srv:*``
#: span inside an ``rpc:*`` span inside a ``processing`` phase wins the
#: instant.  Categories share the root's trace but (by construction of
#: the wire context) may all parent directly under the root, so category
#: priority — not parent pointers — encodes the physical nesting.
_CAT_DEPTH = {
    "invocation": 0,
    "phase": 1,
    "queue": 2,
    "rpc": 3,
    "net": 4,
    "server": 5,
}

_CAT_RESOURCE = {
    "queue": "queue",
    "rpc": "serialization",
    "net": "wire",
    "server": "gpu_compute",
}

_PHASE_RESOURCE = {
    "platform_queue": "queue",
    "gpu_queue": "queue",
    "download": "object_store",
}


def resource_of(record) -> str:
    """The resource bucket a span's *own* time is attributed to."""
    if record.cat == "phase":
        return _PHASE_RESOURCE.get(record.name, "cpu")
    return _CAT_RESOURCE.get(record.cat, "cpu")


@dataclass
class PathSegment:
    """One interval of an invocation's critical path."""

    t_start: float
    t_end: float
    #: resource of the innermost covering span
    resource: str
    #: covering span names, outermost (the invocation root) first
    stack: tuple

    @property
    def duration_s(self) -> float:
        return self.t_end - self.t_start


def _find_root(records):
    for r in records:
        if r.ph == "X" and r.cat == "invocation":
            return r
    return None


def critical_path(records, root=None) -> list[PathSegment]:
    """Sweep one trace's spans into ordered critical-path segments.

    ``records`` is one trace's record list (e.g. a value of
    ``tracer.by_trace()``); ``root`` defaults to its ``invocation`` span.
    Spans are clipped to the root's extent (post-completion teardown RPC
    belongs to the platform, not the function), then a boundary sweep
    assigns every instant to the innermost active span by category depth
    (ties: latest start, then span id — the most recently opened wins).
    Adjacent segments with the same stack are merged.
    """
    root = root or _find_root(records)
    if root is None or root.t_end <= root.t_start:
        return []
    spans = []
    for r in records:
        if r.ph != "X" or r.cat not in _CAT_DEPTH or r is root:
            continue
        lo = max(r.t_start, root.t_start)
        hi = min(r.t_end, root.t_end)
        if hi > lo:
            spans.append((lo, hi, r))
    # boundary sweep: at each boundary, close spans ending there, open
    # spans starting there, then emit one segment up to the next boundary
    starts_at: dict[float, list] = {}
    ends_at: dict[float, list] = {}
    for lo, hi, r in spans:
        starts_at.setdefault(lo, []).append(r)
        ends_at.setdefault(hi, []).append(r)
    boundaries = sorted(
        {root.t_start, root.t_end} | set(starts_at) | set(ends_at)
    )
    active: dict[int, dict[int, object]] = {}  # depth -> {span_id: record}
    segments: list[PathSegment] = []
    for i, t in enumerate(boundaries[:-1]):
        for r in ends_at.get(t, ()):
            depth_set = active.get(_CAT_DEPTH[r.cat])
            if depth_set is not None:
                depth_set.pop(r.span_id, None)
        for r in starts_at.get(t, ()):
            active.setdefault(_CAT_DEPTH[r.cat], {})[r.span_id] = r
        t_next = boundaries[i + 1]
        stack = [root.name]
        innermost = root
        for depth in sorted(active):
            layer = active[depth]
            if not layer:
                continue
            best = max(layer.values(), key=lambda r: (r.t_start, r.span_id))
            stack.append(best.name)
            innermost = best
        seg = PathSegment(t, t_next, resource_of(innermost), tuple(stack))
        if segments and segments[-1].stack == seg.stack \
                and segments[-1].t_end == seg.t_start:
            segments[-1] = PathSegment(
                segments[-1].t_start, seg.t_end, seg.resource, seg.stack
            )
        else:
            segments.append(seg)
    return segments


def invocation_critpaths(tracer, invocations=None) -> list[dict]:
    """One resource-attribution row per root ``invocation`` span.

    ``invocations`` (optional) restricts/orders the rows via ``trace_id``,
    exactly like :func:`repro.obs.report.invocation_breakdowns`.
    """
    by_trace = tracer.by_trace()
    if invocations is not None:
        trace_ids = [inv.trace_id for inv in invocations
                     if getattr(inv, "trace_id", None) in by_trace]
    else:
        trace_ids = sorted(by_trace)
    rows = []
    for trace_id in trace_ids:
        records = by_trace[trace_id]
        root = _find_root(records)
        if root is None:
            continue
        segments = critical_path(records, root)
        resources = {name: 0.0 for name in RESOURCES}
        covered = 0.0
        for seg in segments:
            resources[seg.resource] += seg.duration_s
            if len(seg.stack) > 1:
                covered += seg.duration_s
        duration = root.duration_s
        attributed = sum(resources.values())
        dominant = max(RESOURCES, key=lambda name: resources[name])
        rows.append({
            "trace_id": trace_id,
            "invocation_id": root.args.get("invocation_id"),
            "workload": root.args.get("workload", root.name),
            "status": root.args.get("status", "unknown"),
            "e2e_s": duration,
            "resources": resources,
            "attributed_s": attributed,
            # non-root spans must explain >= 95% of wall time (the same
            # bar the phase-breakdown report enforces)
            "coverage": covered / duration if duration > 0 else 1.0,
            "dominant": dominant,
            "dominant_share": resources[dominant] / duration if duration > 0 else 0.0,
            "segments": len(segments),
        })
    return rows


def _resource_stats(rows: list[dict]) -> dict:
    per_resource = {}
    e2es = [row["e2e_s"] for row in rows]
    for name in RESOURCES:
        seconds = [row["resources"][name] for row in rows]
        shares = [
            row["resources"][name] / row["e2e_s"] if row["e2e_s"] > 0 else 0.0
            for row in rows
        ]
        per_resource[name] = {
            "mean_s": sum(seconds) / len(seconds),
            "p50_s": _percentile(seconds, 50),
            "p95_s": _percentile(seconds, 95),
            "share_mean": sum(shares) / len(shares),
            "share_p50": _percentile(shares, 50),
            "share_p95": _percentile(shares, 95),
        }
    top = {
        "mean": max(RESOURCES, key=lambda n: per_resource[n]["mean_s"]),
        "p50": max(RESOURCES, key=lambda n: per_resource[n]["p50_s"]),
        "p95": max(RESOURCES, key=lambda n: per_resource[n]["p95_s"]),
    }
    return {
        "count": len(rows),
        "e2e_p50_s": _percentile(e2es, 50),
        "e2e_p95_s": _percentile(e2es, 95),
        "coverage_min": min(row["coverage"] for row in rows),
        "resources": per_resource,
        "top_bottleneck": top,
    }


def aggregate_critpaths(rows: list[dict]) -> dict:
    """Aggregate attribution rows, overall and per workload."""
    if not rows:
        return {"count": 0, "workloads": {}}
    out = _resource_stats(rows)
    by_workload: dict[str, list[dict]] = {}
    for row in rows:
        by_workload.setdefault(row["workload"], []).append(row)
    out["workloads"] = {
        name: _resource_stats(group)
        for name, group in sorted(by_workload.items())
    }
    return out


def bottleneck_table(aggregate: dict) -> list[dict]:
    """Flatten "top bottleneck by workload x percentile" into table rows."""
    rows = []
    for workload, agg in aggregate.get("workloads", {}).items():
        for pct in ("p50", "p95"):
            resource = agg["top_bottleneck"][pct]
            stats = agg["resources"][resource]
            rows.append({
                "workload": workload,
                "percentile": pct,
                "bottleneck": resource,
                "seconds": round(stats[f"{pct}_s"], 4),
                "share": round(stats[f"share_{pct}"], 4),
            })
    return rows


def folded_stacks(tracer, invocations=None) -> dict[str, float]:
    """Aggregate critical-path segments into folded stacks -> seconds.

    Stack frames are joined with ``;`` outermost-first, so the root frame
    (``invocation:<workload>``) groups the flamegraph by workload.
    """
    by_trace = tracer.by_trace()
    if invocations is not None:
        trace_ids = [inv.trace_id for inv in invocations
                     if getattr(inv, "trace_id", None) in by_trace]
    else:
        trace_ids = sorted(by_trace)
    stacks: dict[str, float] = {}
    for trace_id in trace_ids:
        records = by_trace[trace_id]
        for seg in critical_path(records):
            key = ";".join(seg.stack)
            stacks[key] = stacks.get(key, 0.0) + seg.duration_s
    return stacks


def dump_folded(stacks: dict[str, float], path) -> int:
    """Write folded stacks (integer microsecond weights) to ``path``.

    The format is one ``frame;frame;... value`` line per stack —
    speedscope and Brendan Gregg's ``flamegraph.pl`` both load it
    directly.  Returns the number of lines written; sub-microsecond
    stacks round up to 1 so no sampled stack vanishes from the graph.
    """
    lines = []
    for key in sorted(stacks):
        weight = max(1, round(stacks[key] * 1e6))
        lines.append(f"{key} {weight}")
    with open(path, "w") as fh:
        fh.write("\n".join(lines) + ("\n" if lines else ""))
    return len(lines)


def critpath_report(tracer, invocations=None,
                    min_coverage: Optional[float] = None) -> dict:
    """Per-invocation attribution + aggregate, with optional validation.

    With ``min_coverage`` set, rows below the bar are listed under
    ``"violations"`` (empty = pass) so CLI callers can gate on it.
    """
    rows = invocation_critpaths(tracer, invocations)
    report = {
        "per_invocation": rows,
        "aggregate": aggregate_critpaths(rows),
    }
    if min_coverage is not None:
        report["violations"] = [
            f"invocation {row['invocation_id']} ({row['workload']}): "
            f"critical-path coverage {row['coverage']:.3f} < {min_coverage}"
            for row in rows if row["coverage"] < min_coverage
        ]
    return report
