"""Streaming SLO evaluation: burn-rate alerts over live metric streams.

The engine subscribes to a :class:`~repro.obs.metrics.MetricsRegistry`
and consumes every recorded observation as ``(metric, value, t)`` —
nothing is polled, nothing re-walks histories.  Each rule keeps sliding
**sim-time** windows over the observations it cares about and follows a
two-state machine (ok -> firing -> ok); every transition appends a
structured :class:`AlertEvent` to the engine's log.

Rules shipped by :func:`default_rules`:

* :class:`BurnRateRule` — the SRE multi-window availability alert: the
  error *budget* is ``1 - target``; a window's **burn rate** is its
  error rate divided by the budget.  The rule fires only when **every**
  window burns past its factor (a fast window for responsiveness, a slow
  window so one blip can't page) and clears as soon as any window
  recovers — after a crash heals, successes (or simply sim time) drain
  the fast window first, clearing the alert.
* :class:`LatencyRule` — windowed p95 latency against a threshold.
* :class:`GpuImbalanceRule` — spread between the busiest and idlest
  GPU's windowed mean utilization (catches skewed scheduling / a wedged
  server, §V-C's sharing concern).
* :class:`GpuMemoryPressureRule` — sustained near-capacity committed
  memory on a device (declared charges + KV-cache extras), the regime
  where LLM cache growth forces evictions and blocks grants.
* :class:`QueueStarvationRule` — oldest unserved scheduler request's
  wait (FIFO-approximated from enqueue/grant/cancel counter streams);
  catches disciplines starving large jobs.

Determinism: evaluation is pure bookkeeping over observations and their
timestamps — no events, no timeouts, no RNG — so an attached engine
never perturbs the simulated timeline (the determinism goldens pin
this).  Time-driven transitions (e.g. clearing after a quiet recovery)
ride on the monitor's health-tick pulse, which drives
:meth:`SloEngine.evaluate` without adding events.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field
from typing import Optional

from repro.obs.metrics import MetricsRegistry, _percentile

__all__ = [
    "AlertEvent",
    "SlidingWindow",
    "Rule",
    "BurnRateRule",
    "LatencyRule",
    "GpuImbalanceRule",
    "GpuMemoryPressureRule",
    "QueueStarvationRule",
    "SloEngine",
    "default_rules",
    "evaluate_cluster_slo",
]


@dataclass
class AlertEvent:
    """One alert transition (firing or resolved), stamped with sim time."""

    t: float
    rule: str
    severity: str
    state: str  # "firing" | "resolved"
    details: dict = field(default_factory=dict)

    def as_dict(self) -> dict:
        return {
            "t": self.t,
            "rule": self.rule,
            "severity": self.severity,
            "state": self.state,
            "details": self.details,
        }


class SlidingWindow:
    """(t, value, tag) samples within the trailing ``width`` seconds.

    ``tag`` (optional, default ``None``) carries per-sample context —
    rules use it for exemplar trace ids, so a breaching window can name
    the concrete traces behind it.
    """

    __slots__ = ("width", "_samples", "_sum")

    def __init__(self, width: float):
        if width <= 0:
            raise ValueError("window width must be positive")
        self.width = width
        self._samples: deque = deque()
        self._sum = 0.0

    def add(self, t: float, value: float, tag=None) -> None:
        self._samples.append((t, value, tag))
        self._sum += value

    def prune(self, now: float) -> None:
        cutoff = now - self.width
        samples = self._samples
        while samples and samples[0][0] < cutoff:
            _, value, _ = samples.popleft()
            self._sum -= value

    @property
    def count(self) -> int:
        return len(self._samples)

    @property
    def total(self) -> float:
        return self._sum

    def mean(self) -> Optional[float]:
        if not self._samples:
            return None
        return self._sum / len(self._samples)

    def values(self) -> list[float]:
        return [v for _, v, _ in self._samples]

    def tagged(self) -> list[tuple]:
        """The live (value, tag) pairs whose tag is set (exemplars)."""
        return [(v, tag) for _, v, tag in self._samples if tag is not None]


class Rule:
    """Base class: consume observations, report condition state.

    ``metrics`` lists the metric names the engine routes to
    :meth:`observe`; :meth:`check` returns a details dict while the
    condition holds and ``None`` otherwise.
    """

    name: str = "rule"
    severity: str = "warning"
    metrics: tuple = ()

    def observe(self, metric, value: float, t: float) -> None:  # pragma: no cover
        raise NotImplementedError

    def check(self, now: float) -> Optional[dict]:  # pragma: no cover
        raise NotImplementedError


class BurnRateRule(Rule):
    """Multi-window, multi-burn-rate availability alert.

    ``windows`` is ``[(width_s, burn_factor), ...]``; with target 0.99
    the budget is 0.01, so ``(60.0, 5.0)`` means "error rate >= 5% over
    the last minute".  Success/failure is read from the
    ``invocation.status`` counter stream (``status == "completed"``
    counts as success; ``failed`` / ``timeout`` / anything else as
    failure).
    """

    metrics = ("invocation.status",)

    def __init__(self, name: str = "availability-burn", target: float = 0.99,
                 windows=((60.0, 5.0), (240.0, 2.0)),
                 severity: str = "page"):
        if not 0.0 < target < 1.0:
            raise ValueError("SLO target must be in (0, 1)")
        self.name = name
        self.severity = severity
        self.target = target
        self.budget = 1.0 - target
        self.windows = [
            (SlidingWindow(width), SlidingWindow(width), factor)
            for width, factor in windows
        ]  # (total, failures, burn factor)

    def observe(self, metric, value: float, t: float) -> None:
        failed = 0.0 if metric.labels.get("status") == "completed" else value
        tag = getattr(metric, "last_trace_id", None)
        for total, failures, _ in self.windows:
            total.add(t, value)
            if failed:
                failures.add(t, failed, tag)

    def check(self, now: float) -> Optional[dict]:
        details = {"target": self.target, "windows": []}
        firing = True
        for total, failures, factor in self.windows:
            total.prune(now)
            failures.prune(now)
            rate = failures.total / total.total if total.total > 0 else 0.0
            burn = rate / self.budget
            details["windows"].append({
                "width_s": total.width,
                "error_rate": round(rate, 6),
                "burn_rate": round(burn, 4),
                "burn_threshold": factor,
            })
            if burn < factor:
                firing = False
        if not firing:
            return None
        # exemplars: the traces behind the fast window's live failures
        seen: list[int] = []
        for _, tag in self.windows[0][1].tagged():
            if tag not in seen:
                seen.append(tag)
        if seen:
            details["exemplars"] = seen[-5:]
        return details


class LatencyRule(Rule):
    """Windowed p95 end-to-end latency against a static threshold."""

    metrics = ("invocation.e2e_s",)

    def __init__(self, name: str = "latency-p95", threshold_s: float = 120.0,
                 window_s: float = 300.0, min_count: int = 5,
                 severity: str = "warning"):
        self.name = name
        self.severity = severity
        self.threshold_s = threshold_s
        self.min_count = min_count
        self.window = SlidingWindow(window_s)

    def observe(self, metric, value: float, t: float) -> None:
        # count every completion: a timed-out invocation is a latency too
        self.window.add(t, value, getattr(metric, "last_trace_id", None))

    def check(self, now: float) -> Optional[dict]:
        self.window.prune(now)
        if self.window.count < self.min_count:
            return None
        p95 = _percentile(self.window.values(), 95)
        if p95 <= self.threshold_s:
            return None
        details = {
            "p95_s": round(p95, 4),
            "threshold_s": self.threshold_s,
            "count": self.window.count,
        }
        # exemplars: the worst in-window latencies with trace context
        offenders = sorted(
            (pair for pair in self.window.tagged() if pair[0] > self.threshold_s),
            key=lambda pair: -pair[0],
        )
        if offenders:
            details["exemplars"] = [tag for _, tag in offenders[:3]]
        return details


class GpuImbalanceRule(Rule):
    """Busiest-vs-idlest GPU windowed mean utilization spread."""

    metrics = ("gpu.utilization",)

    def __init__(self, name: str = "gpu-imbalance", min_spread: float = 0.4,
                 window_s: float = 120.0, min_samples: int = 3,
                 severity: str = "warning"):
        self.name = name
        self.severity = severity
        self.min_spread = min_spread
        self.window_s = window_s
        self.min_samples = min_samples
        self._devices: dict[tuple, SlidingWindow] = {}

    def observe(self, metric, value: float, t: float) -> None:
        key = (metric.labels.get("gpu_server"), metric.labels.get("device"))
        window = self._devices.get(key)
        if window is None:
            window = self._devices[key] = SlidingWindow(self.window_s)
        window.add(t, value)

    def check(self, now: float) -> Optional[dict]:
        means = {}
        for key, window in self._devices.items():
            window.prune(now)
            if window.count >= self.min_samples:
                means[key] = window.mean()
        if len(means) < 2:
            return None
        busiest = max(means, key=lambda k: means[k])
        idlest = min(means, key=lambda k: means[k])
        spread = means[busiest] - means[idlest]
        if spread < self.min_spread:
            return None
        return {
            "spread": round(spread, 4),
            "min_spread": self.min_spread,
            "busiest": {"gpu": f"{busiest[0]}/gpu{busiest[1]}",
                        "mean_util": round(means[busiest], 4)},
            "idlest": {"gpu": f"{idlest[0]}/gpu{idlest[1]}",
                       "mean_util": round(means[idlest], 4)},
        }


class GpuMemoryPressureRule(Rule):
    """Sustained near-capacity committed GPU memory on any device.

    Watches the monitor's ``gpu.committed_frac`` gauge (declared charges
    plus dynamic KV-cache extras over schedulable capacity).  Fires when
    some device's windowed mean committed fraction stays at or above
    ``min_frac`` — the regime where LLM KV-cache growth forces evictions
    and blocks new grants.  One-shot spikes (a single large grant that
    releases quickly) don't hold the windowed mean up, so they don't page.
    """

    metrics = ("gpu.committed_frac",)

    def __init__(self, name: str = "gpu-memory-pressure", min_frac: float = 0.95,
                 window_s: float = 30.0, min_samples: int = 3,
                 severity: str = "warning"):
        if not 0.0 < min_frac <= 1.0:
            raise ValueError("min_frac must be in (0, 1]")
        self.name = name
        self.severity = severity
        self.min_frac = min_frac
        self.window_s = window_s
        self.min_samples = min_samples
        self._devices: dict[tuple, SlidingWindow] = {}

    def observe(self, metric, value: float, t: float) -> None:
        key = (metric.labels.get("gpu_server"), metric.labels.get("device"))
        window = self._devices.get(key)
        if window is None:
            window = self._devices[key] = SlidingWindow(self.window_s)
        window.add(t, value)

    def check(self, now: float) -> Optional[dict]:
        worst_key, worst_mean = None, None
        for key, window in self._devices.items():
            window.prune(now)
            if window.count < self.min_samples:
                continue
            mean = window.mean()
            if worst_mean is None or mean > worst_mean:
                worst_key, worst_mean = key, mean
        if worst_mean is None or worst_mean < self.min_frac:
            return None
        return {
            "device": f"gpu{worst_key[1]}",
            "mean_committed_frac": round(worst_mean, 4),
            "min_frac": self.min_frac,
        }


class QueueStarvationRule(Rule):
    """Oldest unserved GPU request waiting past ``max_wait_s``.

    Pairs the scheduler's ``enqueued`` / ``granted`` / ``cancelled``
    counter streams FIFO-style — exact for FCFS and a sound *lower*
    bound on the oldest wait for reordering disciplines (SFF serving a
    younger request keeps the older arrival at the deque head).
    """

    metrics = ("scheduler.enqueued", "scheduler.granted", "scheduler.cancelled")

    def __init__(self, name: str = "queue-starvation", max_wait_s: float = 60.0,
                 severity: str = "warning"):
        self.name = name
        self.severity = severity
        self.max_wait_s = max_wait_s
        self._pending: deque = deque()

    def observe(self, metric, value: float, t: float) -> None:
        if metric.name == "scheduler.enqueued":
            for _ in range(int(value)):
                self._pending.append(t)
        else:  # granted or cancelled both leave the queue
            for _ in range(int(value)):
                if self._pending:
                    self._pending.popleft()

    def check(self, now: float) -> Optional[dict]:
        if not self._pending:
            return None
        oldest_wait = now - self._pending[0]
        if oldest_wait <= self.max_wait_s:
            return None
        return {
            "oldest_wait_s": round(oldest_wait, 4),
            "max_wait_s": self.max_wait_s,
            "backlog": len(self._pending),
        }


def default_rules() -> list[Rule]:
    """The stock rule set deployments attach out of the box."""
    return [
        BurnRateRule(),
        LatencyRule(),
        GpuImbalanceRule(),
        GpuMemoryPressureRule(),
        QueueStarvationRule(),
    ]


class SloEngine:
    """Routes a registry's observation stream to rules, logs transitions.

    Rules are re-checked whenever one of their metrics records (streaming
    fire) and on every explicit :meth:`evaluate` (the monitor's health
    tick calls it each period, and harnesses call it once at run end) —
    so alerts both fire and *clear* even when the triggering traffic
    stops.
    """

    def __init__(self, rules: Optional[list] = None):
        self.rules: list[Rule] = list(rules) if rules is not None else default_rules()
        names = [rule.name for rule in self.rules]
        if len(names) != len(set(names)):
            raise ValueError(f"duplicate rule names: {names}")
        self.alerts: list[AlertEvent] = []
        #: rule name -> the AlertEvent currently firing
        self.active: dict[str, AlertEvent] = {}
        self._routes: dict[str, list[Rule]] = {}
        #: callbacks invoked on every *firing* transition (resolved
        #: transitions are log-only) — the deployment hooks the tracer's
        #: sampler here so alert-overlapping traces are tail-kept
        self._alert_hooks: list = []
        for rule in self.rules:
            for metric_name in rule.metrics:
                self._routes.setdefault(metric_name, []).append(rule)

    def attach(self, registry: MetricsRegistry) -> "SloEngine":
        registry.subscribe(self._on_observation)
        return self

    def on_alert(self, hook) -> "SloEngine":
        """Register ``hook(event)`` for firing transitions.  Hooks must be
        pure bookkeeping (no events, no RNG), same contract as registry
        subscribers."""
        self._alert_hooks.append(hook)
        return self

    # -- streaming ---------------------------------------------------------------
    def _on_observation(self, metric, value, t) -> None:
        interested = self._routes.get(metric.name)
        if not interested:
            return
        for rule in interested:
            rule.observe(metric, value, t)
        # any observation also advances time for every rule: a success
        # stream must be able to *clear* an availability burn, and a
        # starving queue must fire off grant traffic elsewhere
        self.evaluate(t)

    # -- evaluation --------------------------------------------------------------
    def evaluate(self, now: float) -> list[AlertEvent]:
        """Re-check every rule at ``now``; returns transitions (if any)."""
        transitions = []
        for rule in self.rules:
            details = rule.check(now)
            firing = self.active.get(rule.name)
            if details is not None and firing is None:
                event = AlertEvent(now, rule.name, rule.severity, "firing", details)
                self.active[rule.name] = event
                self.alerts.append(event)
                transitions.append(event)
                for hook in self._alert_hooks:
                    hook(event)
            elif details is None and firing is not None:
                event = AlertEvent(
                    now, rule.name, rule.severity, "resolved",
                    {"fired_at": firing.t, "duration_s": now - firing.t},
                )
                del self.active[rule.name]
                self.alerts.append(event)
                transitions.append(event)
        return transitions

    # -- reporting ---------------------------------------------------------------
    def summary(self) -> dict:
        fired: dict[str, int] = {}
        for event in self.alerts:
            if event.state == "firing":
                fired[event.rule] = fired.get(event.rule, 0) + 1
        return {
            "events": len(self.alerts),
            "fired": fired,
            "active": sorted(self.active),
        }

    def alert_log(self) -> list[dict]:
        """Serializable transition log, for alerts.json artifacts."""
        return [event.as_dict() for event in self.alerts]


def evaluate_cluster_slo(registry: MetricsRegistry,
                         rules: Optional[list] = None) -> SloEngine:
    """Evaluate SLO rules over a *merged* registry's gauge series.

    Per-shard engines stream live inside their own worker and never see
    the neighbours' metrics; some conditions only exist at cluster scope
    (a GPU-utilization spread *across* shards, for one).  This replays
    every timestamped gauge sample of ``registry`` — the merged registry
    a sharded run assembles — through a fresh engine in global time
    order, so windowed rules behave exactly as if they had streamed the
    cluster live.  Counters and histograms carry no per-observation
    timestamps across a snapshot merge, so only gauge-fed rules can be
    re-evaluated here; rules whose metrics never appear simply stay
    silent.  Returns the engine (inspect ``.alerts`` / ``.summary()``).
    """
    engine = SloEngine(rules if rules is not None else [GpuImbalanceRule()])
    stream: list[tuple] = []
    for (name, _), metric in sorted(registry._metrics.items()):
        if name not in engine._routes or not hasattr(metric, "times"):
            continue
        for t, value in zip(metric.times, metric.values):
            stream.append((t, name, metric, value))
    stream.sort(key=lambda sample: (sample[0], sample[1]))
    for t, _, metric, value in stream:
        for rule in engine._routes[metric.name]:
            rule.observe(metric, value, t)
        engine.evaluate(t)
    if stream:
        engine.evaluate(stream[-1][0])
    return engine
