"""Latency-breakdown reports over a :class:`~repro.obs.trace.Tracer`.

The platform emits, per invocation, a root ``invocation`` span whose
``phase``-category children partition the invocation's wall sim-time
(platform queue, download, cuda_init, gpu_queue, model_load,
processing, ...).  This module turns those span trees into:

* :func:`invocation_breakdowns` — one row per invocation with its phase
  attribution and *coverage* (fraction of the root span accounted for by
  phase children; the acceptance bar is >= 0.95), plus the RPC call mix
  observed under that invocation.
* :func:`aggregate_breakdowns` — p50/p95/p99 (and mean) per phase and
  for end-to-end latency, overall and per workload.
"""

from __future__ import annotations

from typing import Optional

from repro.obs.metrics import _percentile

__all__ = ["percentile", "invocation_breakdowns", "aggregate_breakdowns"]


def percentile(values, q: float) -> float:
    """Linear-interpolation percentile of a sequence."""
    return _percentile(list(values), q)


def invocation_breakdowns(tracer, invocations=None) -> list[dict]:
    """One breakdown row per root ``invocation`` span in ``tracer``.

    ``invocations`` (optional) restricts/orders the rows to the given
    :class:`~repro.faas.platform.Invocation` records via their
    ``trace_id`` and lets the report cross-check the span tree against
    the invocation's measured ``e2e_s``.
    """
    by_trace = tracer.by_trace()
    wanted: Optional[list] = None
    if invocations is not None:
        wanted = [inv for inv in invocations
                  if getattr(inv, "trace_id", None) in by_trace]
    rows = []
    trace_ids = ([inv.trace_id for inv in wanted] if wanted is not None
                 else sorted(by_trace))
    inv_by_trace = ({inv.trace_id: inv for inv in wanted}
                    if wanted is not None else {})
    for trace_id in trace_ids:
        records = by_trace[trace_id]
        roots = [r for r in records if r.ph == "X" and r.cat == "invocation"]
        if not roots:
            continue
        root = roots[0]
        phases: dict[str, float] = {}
        for r in records:
            if r.ph == "X" and r.cat == "phase" and r.parent_id == root.span_id:
                phases[r.name] = phases.get(r.name, 0.0) + r.duration_s
        rpc_mix: dict[str, int] = {}
        rpc_time = 0.0
        for r in records:
            if r.ph == "X" and r.cat == "rpc":
                rpc_mix[r.name] = rpc_mix.get(r.name, 0) + 1
                rpc_time += r.duration_s
        attributed = sum(phases.values())
        duration = root.duration_s
        row = {
            "trace_id": trace_id,
            "invocation_id": root.args.get("invocation_id"),
            "workload": root.args.get("workload", root.name),
            "status": root.args.get("status", "unknown"),
            "e2e_s": duration,
            "phases": phases,
            "attributed_s": attributed,
            "coverage": attributed / duration if duration > 0 else 1.0,
            "rpc_calls": sum(rpc_mix.values()),
            "rpc_time_s": rpc_time,
            "rpc_mix": rpc_mix,
        }
        inv = inv_by_trace.get(trace_id)
        if inv is not None:
            row["measured_e2e_s"] = inv.e2e_s
            row["e2e_matches_span"] = abs(inv.e2e_s - duration) < 1e-9
        rows.append(row)
    return rows


def _series_stats(values: list[float]) -> dict:
    return {
        "mean": sum(values) / len(values),
        "p50": percentile(values, 50),
        "p95": percentile(values, 95),
        "p99": percentile(values, 99),
    }


def _aggregate(rows: list[dict]) -> dict:
    phase_series: dict[str, list[float]] = {}
    for row in rows:
        for name, seconds in row["phases"].items():
            phase_series.setdefault(name, []).append(seconds)
    rpc_mix: dict[str, int] = {}
    for row in rows:
        for name, n in row["rpc_mix"].items():
            rpc_mix[name] = rpc_mix.get(name, 0) + n
    return {
        "count": len(rows),
        "e2e": _series_stats([row["e2e_s"] for row in rows]),
        "coverage_min": min(row["coverage"] for row in rows),
        "coverage_mean": sum(row["coverage"] for row in rows) / len(rows),
        "phases": {name: _series_stats(vals)
                   for name, vals in sorted(phase_series.items())},
        "rpc_mix": dict(sorted(rpc_mix.items())),
    }


def aggregate_breakdowns(rows: list[dict]) -> dict:
    """Aggregate breakdown rows to percentiles, overall and per workload."""
    if not rows:
        return {"count": 0, "workloads": {}}
    out = _aggregate(rows)
    by_workload: dict[str, list[dict]] = {}
    for row in rows:
        by_workload.setdefault(row["workload"], []).append(row)
    out["workloads"] = {
        name: _aggregate(group) for name, group in sorted(by_workload.items())
    }
    return out


def breakdown_table_rows(aggregate: dict) -> list[dict]:
    """Flatten an :func:`aggregate_breakdowns` result into table rows
    (one per workload phase) for ``experiments.reporting.render_table``."""
    rows = []
    for workload, agg in aggregate.get("workloads", {}).items():
        for phase, stats in agg["phases"].items():
            rows.append({
                "workload": workload,
                "phase": phase,
                "mean_s": round(stats["mean"], 4),
                "p50_s": round(stats["p50"], 4),
                "p95_s": round(stats["p95"], 4),
                "p99_s": round(stats["p99"], 4),
            })
        rows.append({
            "workload": workload,
            "phase": "e2e",
            "mean_s": round(agg["e2e"]["mean"], 4),
            "p50_s": round(agg["e2e"]["p50"], 4),
            "p95_s": round(agg["e2e"]["p95"], 4),
            "p99_s": round(agg["e2e"]["p99"], 4),
        })
    return rows
