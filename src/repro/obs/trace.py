"""Span-based sim-time tracing with Chrome trace-event export.

Every invocation gets a *trace* (one ``trace_id``); layers along the way
open *spans* against it: the platform records the root ``invocation``
span and one child span per measured phase, the guest wraps each RPC
round trip (sync and async), the API server wraps execution of each
request, and the monitor records GPU-queue waits and migrations.
Point-in-time happenings (retries, crashes, batch flushes) are
*instants*.

The tracer is **bounded**: past ``max_spans`` records it stops storing
and counts what it dropped — it never drops silently (``dropped`` is
surfaced in :meth:`Tracer.summary` and in the exported JSON's
``otherData``).

Recording is pure bookkeeping over ``env.now`` — no events, no timeouts,
no RNG — so tracing never perturbs the simulated timeline.

Export is the Chrome trace-event JSON object format (``traceEvents`` +
metadata), loadable in Perfetto or chrome://tracing.  Track names
(``pid``/``tid``) are strings internally and mapped to integers with
``process_name``/``thread_name`` metadata events on export; timestamps
are microseconds per the format spec.

**Distributed collection** (sharded runs, :mod:`repro.sim.shard`): a
tracer built with ``namespace=<shard_id>`` allocates span/trace ids from
its *own* counters offset into a per-namespace id block, so ids are
deterministic per shard (independent of what else traced in the
process) and collision-free across shards.  :meth:`Tracer.snapshot`
dumps the records as plain picklable tuples (mirroring
:meth:`repro.obs.metrics.MetricsRegistry.snapshot`) and
:meth:`Tracer.merge_snapshot` folds shard snapshots into one merged
tracer — optionally re-homing each shard's spans onto a prefixed
Perfetto process track.  :func:`trace_digest` is the canonical
content digest: records are stably sorted by timeline position and ids
renumbered by that order, so the digest is invariant to absolute
counter values — a 1-shard sharded run digests identically to a plain
single-process run of the same world.
"""

from __future__ import annotations

import itertools
import json
import zlib
from dataclasses import dataclass, field
from typing import Optional

from repro.obs import sampling as _sampling

__all__ = ["NullSpan", "Span", "SpanRecord", "Tracer", "trace_digest"]

_span_ids = itertools.count(1)
_trace_ids = itertools.count(1)

#: width of one namespace's id block: a namespaced tracer's ids live in
#: ``[namespace * 2**40, (namespace + 1) * 2**40)`` — far beyond any
#: realistic span count, so blocks never collide
_NAMESPACE_STRIDE = 1 << 40

#: snapshot wire-format version (bumped on layout changes)
_SNAPSHOT_VERSION = 1


@dataclass
class SpanRecord:
    """One completed span ("X") or instant ("i") event."""

    span_id: int
    parent_id: Optional[int]
    trace_id: Optional[int]
    name: str
    cat: str
    t_start: float
    t_end: float
    pid: str
    tid: str
    ph: str = "X"
    args: dict = field(default_factory=dict)

    @property
    def duration_s(self) -> float:
        return self.t_end - self.t_start


class Span:
    """An open span; call :meth:`end` to record it."""

    __slots__ = (
        "tracer", "span_id", "parent_id", "trace_id",
        "name", "cat", "pid", "tid", "t_start", "args", "_ended",
    )

    def __init__(self, tracer, name, cat, pid, tid, trace_id, parent_id,
                 t_start, args):
        self.tracer = tracer
        self.span_id = tracer._next_span_id()
        self.parent_id = parent_id
        self.trace_id = trace_id
        self.name = name
        self.cat = cat
        self.pid = pid
        self.tid = tid
        self.t_start = t_start
        self.args = args
        self._ended = False

    def end(self, t_end: Optional[float] = None, **args) -> None:
        """Record the span, closing it at ``t_end`` (default: now)."""
        if self._ended:
            return
        self._ended = True
        self.tracer._open.pop(self.span_id, None)
        if args:
            self.args.update(args)
        self.tracer._record(SpanRecord(
            span_id=self.span_id,
            parent_id=self.parent_id,
            trace_id=self.trace_id,
            name=self.name,
            cat=self.cat,
            t_start=self.t_start,
            t_end=self.tracer.now if t_end is None else t_end,
            pid=self.pid,
            tid=self.tid,
            args=self.args,
        ))

    # -- children ---------------------------------------------------------------
    def child(self, name: str, cat: str = "span", **args) -> "Span":
        """Open a child span on the same track, starting now."""
        return self.tracer.begin(
            name, cat=cat, pid=self.pid, tid=self.tid,
            trace_id=self.trace_id, parent=self, **args,
        )

    def child_complete(self, name: str, t_start: float, t_end: float,
                       cat: str = "span", **args) -> None:
        """Record an already-finished child span (retroactive)."""
        self.tracer.complete(
            name, t_start, t_end, cat=cat, pid=self.pid, tid=self.tid,
            trace_id=self.trace_id, parent=self, **args,
        )

    def phase(self, name: str, seconds: float) -> None:
        """Record a phase that just finished (ending now) and took
        ``seconds`` — the shape ``Invocation.add_phase`` reports in."""
        now = self.tracer.now
        self.child_complete(name, now - seconds, now, cat="phase")

    def instant(self, name: str, **args) -> None:
        self.tracer.instant(
            name, pid=self.pid, tid=self.tid,
            trace_id=self.trace_id, parent=self, **args,
        )


class NullSpan:
    """Span stand-in for a trace already *sampled out* (see
    :mod:`repro.obs.sampling`).

    Returned by :meth:`Tracer.begin` instead of a real :class:`Span` so
    child spans of an unsampled root are rejected at ``begin()`` — no
    Span allocation, no ``_open`` registration, no buffered record — yet
    call sites keep working unchanged.  Nothing is lost silently: every
    record the caller *would* have produced bumps the tracer's
    ``sampled_out`` counter (distinct from ``dropped``, which means the
    tracer ran out of span budget).
    """

    __slots__ = ("tracer", "trace_id", "span_id", "parent_id", "_ended")

    def __init__(self, tracer, trace_id):
        self.tracer = tracer
        self.trace_id = trace_id
        self.span_id = 0  # sentinel: never allocated, never a parent ref
        self.parent_id = None
        self._ended = False

    def end(self, t_end=None, **args) -> None:
        if self._ended:
            return
        self._ended = True
        self.tracer.sampled_out += 1

    def child(self, name, cat="span", **args) -> "NullSpan":
        return NullSpan(self.tracer, self.trace_id)

    def child_complete(self, name, t_start, t_end, cat="span", **args) -> None:
        self.tracer.sampled_out += 1

    def phase(self, name, seconds) -> None:
        self.tracer.sampled_out += 1

    def instant(self, name, **args) -> None:
        self.tracer.sampled_out += 1


class Tracer:
    """Bounded collector of spans across the whole deployment.

    ``namespace`` (optional) switches id allocation from the process-wide
    counters to tracer-local counters offset by ``namespace * 2**40``:
    shard workers use their shard id, so every shard's ids are
    deterministic and globally unique in the merged trace.  ``env`` may
    be ``None`` for a merge-target tracer that only aggregates snapshots
    (its clock tracks the latest merged ``t_end``).
    """

    def __init__(self, env, max_spans: int = 250_000,
                 namespace: Optional[int] = None,
                 sampler: Optional["_sampling.TraceSampler"] = None):
        if max_spans <= 0:
            raise ValueError("max_spans must be positive")
        if namespace is not None and namespace < 0:
            raise ValueError("namespace must be non-negative")
        self.env = env
        self.max_spans = max_spans
        self.namespace = namespace
        self._merged_now = 0.0
        if namespace is not None:
            base = namespace * _NAMESPACE_STRIDE
            self._span_counter = itertools.count(base + 1)
            self._trace_counter = itertools.count(base + 1)
        else:
            self._span_counter = None
            self._trace_counter = None
        self.records: list[SpanRecord] = []
        #: records discarded because the tracer was full — never silent:
        #: surfaced in summary() and the exported JSON
        self.dropped = 0
        #: records discarded because their trace was sampled out — a
        #: deliberate sampling decision, counted separately from the
        #: budget-exhaustion ``dropped`` (satellite contract: no silent
        #: loss, and the two causes are never conflated)
        self.sampled_out = 0
        #: span_id -> Span handles begun but not yet ended.  Export closes
        #: them synthetically at ``env.now`` with an ``"open": true`` flag
        #: instead of dropping them from the JSON.
        self._open: dict[int, Span] = {}
        #: optional head+tail sampling policy; None means keep everything
        #: (the pre-sampling behaviour, byte-for-byte)
        self._sampler = sampler
        #: trace_id -> buffered records of a still-*pending* trace (head-
        #: rejected, tail fate unknown).  Buffered records count against
        #: ``max_spans`` so sampling never grows memory past the budget.
        self._pending_buf: dict[int, list[SpanRecord]] = {}
        self._pending_count = 0
        #: merge-target only: (trace_id, record-tuple) pairs shipped by
        #: shard snapshots for traces homed on *other* shards, resolved
        #: against the merged kept set by :meth:`resolve_foreign`
        self._foreign_stash: list[tuple] = []
        #: per-shard sampler summaries folded in via merge_snapshot — a
        #: merged tracer has no sampler of its own but still reports the
        #: fleet's aggregate sampling stats
        self._merged_sampling: list[dict] = []

    @property
    def now(self) -> float:
        if self.env is None:
            return self._merged_now
        return self.env.now

    def _next_span_id(self) -> int:
        if self._span_counter is not None:
            return next(self._span_counter)
        return next(_span_ids)

    def new_trace_id(self) -> int:
        if self._trace_counter is not None:
            return next(self._trace_counter)
        return next(_trace_ids)

    # -- recording --------------------------------------------------------------
    def begin(self, name: str, cat: str = "span", pid: str = "sim",
              tid: str = "main", trace_id: Optional[int] = None,
              parent: Optional[Span] = None, t_start: Optional[float] = None,
              **args) -> Span:
        """Open a span starting now (or at ``t_start``).

        For a trace already sampled *out*, returns a :class:`NullSpan`
        — the cheap rejection path: no allocation beyond the stub, no
        ``_open`` bookkeeping, and every downstream record counts as
        ``sampled_out``.
        """
        resolved_trace = (trace_id if trace_id is not None else
                          (parent.trace_id if parent is not None else None))
        if (self._sampler is not None
                and self._sampler.state(resolved_trace) == _sampling.OUT):
            return NullSpan(self, resolved_trace)
        span = Span(
            self, name, cat, pid, tid,
            trace_id=resolved_trace,
            parent_id=parent.span_id if parent is not None else None,
            t_start=self.now if t_start is None else t_start,
            args=args,
        )
        self._open[span.span_id] = span
        return span

    def complete(self, name: str, t_start: float, t_end: float,
                 cat: str = "span", pid: str = "sim", tid: str = "main",
                 trace_id: Optional[int] = None,
                 parent: Optional[Span] = None,
                 parent_id: Optional[int] = None, **args) -> None:
        """Record an already-finished span in one shot.

        ``parent`` takes a :class:`Span` handle; layers that only carry the
        propagated ``(trace_id, span_id)`` wire context (e.g. the API
        server) pass the raw ``parent_id`` instead.
        """
        self._record(SpanRecord(
            span_id=self._next_span_id(),
            parent_id=parent.span_id if parent is not None else parent_id,
            trace_id=trace_id if trace_id is not None else
            (parent.trace_id if parent is not None else None),
            name=name, cat=cat, t_start=t_start, t_end=t_end,
            pid=pid, tid=tid, args=args,
        ))

    def instant(self, name: str, cat: str = "event", pid: str = "sim",
                tid: str = "main", trace_id: Optional[int] = None,
                parent: Optional[Span] = None,
                parent_id: Optional[int] = None, **args) -> None:
        """Record a point-in-time event (retry, crash, flush, ...)."""
        now = self.now
        self._record(SpanRecord(
            span_id=self._next_span_id(),
            parent_id=parent.span_id if parent is not None else parent_id,
            trace_id=trace_id if trace_id is not None else
            (parent.trace_id if parent is not None else None),
            name=name, cat=cat, t_start=now, t_end=now,
            pid=pid, tid=tid, ph="i", args=args,
        ))

    def _record(self, record: SpanRecord) -> None:
        sampler = self._sampler
        if sampler is None:
            if len(self.records) >= self.max_spans:
                self.dropped += 1
                return
            self.records.append(record)
            return
        # A closing root invocation span is the sampler's tail-rule hook:
        # non-completed status keeps the trace, and every root end advances
        # latency-champion + retention bookkeeping (all in sim-time order,
        # so decisions are deterministic and layout-invariant).
        if (record.ph == "X" and record.cat == "invocation"
                and record.trace_id is not None):
            self._apply_resolutions(sampler.on_root_end(
                record.trace_id, record.t_start, record.t_end,
                str(record.args.get("status", "completed")),
            ))
        state = sampler.state(record.trace_id)
        if state == _sampling.OUT:
            self.sampled_out += 1
            return
        if len(self.records) + self._pending_count >= self.max_spans:
            self.dropped += 1
            return
        if state in (_sampling.PENDING, _sampling.FOREIGN_PENDING):
            self._pending_buf.setdefault(record.trace_id, []).append(record)
            self._pending_count += 1
            if state == _sampling.PENDING:
                # eager tail-keep on interesting names (preemption, crash
                # requeue, RPC retry) — promotes the whole buffered trace
                self._apply_resolutions(
                    sampler.note_record(record.trace_id, record.name))
            return
        self.records.append(record)  # kept, or not subject to sampling

    def _apply_resolutions(self, resolutions) -> None:
        """Apply sampler verdicts: flush a kept trace's buffered records
        into the store, or discard a sampled-out trace's buffer (counted,
        never silent)."""
        for trace_id, kept, _reason in resolutions:
            buf = self._pending_buf.pop(trace_id, None)
            if buf is None:
                continue
            self._pending_count -= len(buf)
            if kept:
                self.records.extend(buf)
            else:
                self.sampled_out += len(buf)

    # -- sampling ---------------------------------------------------------------
    def sample_root(self, trace_id: Optional[int], key=None, scope: str = "",
                    workload: str = "", t_start: Optional[float] = None) -> bool:
        """Head-sample a new root trace; True when head-kept.

        Call once per root trace *before* opening its root span.  ``key``
        must be stable across reruns and shard layouts (scope + workload
        + per-platform arrival index); without a sampler every trace is
        kept and this is a no-op.
        """
        if self._sampler is None or trace_id is None:
            return True
        return self._sampler.register(
            trace_id, key=key, scope=scope, workload=workload,
            t_start=self.now if t_start is None else t_start,
        )

    def register_foreign(self, trace_id: Optional[int], sampled: bool) -> None:
        """Adopt a remote shard's head decision carried on the wire."""
        if self._sampler is not None and trace_id is not None:
            self._sampler.register_foreign(trace_id, sampled)

    def note_alert(self, t: float, scope: str = "",
                   exemplar_trace_ids=()) -> None:
        """An SLO alert fired: tail-keep the overlapping pending traces."""
        if self._sampler is not None:
            self._apply_resolutions(self._sampler.note_alert(
                t, scope=scope, exemplar_trace_ids=exemplar_trace_ids))

    def keep_trace(self, trace_id: int, reason: str = "forced") -> None:
        """Unconditionally keep one pending trace (debug / ad-hoc rules)."""
        if self._sampler is not None:
            self._apply_resolutions(self._sampler.force_keep(trace_id, reason))

    def finalize_sampling(self) -> None:
        """Resolve every still-pending local trace (champions kept, the
        rest sampled out).  Idempotent; called automatically by every
        export/query entry point, so callers only need it explicitly when
        inspecting ``records`` raw mid-run."""
        if self._sampler is not None:
            self._apply_resolutions(self._sampler.finalize())

    def _wire_sampled(self, trace_id: Optional[int]) -> Optional[bool]:
        """The sampled flag to propagate on an envelope for ``trace_id``:
        True = kept, False = pending/out (receiver buffers as foreign),
        None = no sampler, don't extend the wire tuple."""
        if self._sampler is None or trace_id is None:
            return None
        return self._sampler.state(trace_id) in (None, _sampling.KEPT)

    # -- queries ----------------------------------------------------------------
    def spans(self, cat: Optional[str] = None) -> list[SpanRecord]:
        self.finalize_sampling()
        if cat is None:
            return [r for r in self.records if r.ph == "X"]
        return [r for r in self.records if r.ph == "X" and r.cat == cat]

    def instants(self, name: Optional[str] = None) -> list[SpanRecord]:
        self.finalize_sampling()
        if name is None:
            return [r for r in self.records if r.ph == "i"]
        return [r for r in self.records if r.ph == "i" and r.name == name]

    def by_trace(self) -> dict[int, list[SpanRecord]]:
        self.finalize_sampling()
        out: dict[int, list[SpanRecord]] = {}
        for r in self.records:
            if r.trace_id is not None:
                out.setdefault(r.trace_id, []).append(r)
        return out

    @property
    def open_spans(self) -> int:
        """Spans begun but not yet ended (live invocations, in-flight RPC)."""
        return len(self._open)

    def _open_records(self) -> list[SpanRecord]:
        """Synthetic closed records for still-open spans, ending now.

        Export-only views — nothing is stored, the spans stay open and
        their eventual real :meth:`Span.end` records normally.
        """
        now = self.now
        records = []
        sampler = self._sampler
        for span in sorted(self._open.values(), key=lambda s: s.span_id):
            if sampler is not None and sampler.state(span.trace_id) in (
                    _sampling.OUT, _sampling.FOREIGN_PENDING):
                # out: decided against; foreign: shipped separately in the
                # snapshot for post-merge resolution (never exported here)
                continue
            args = dict(span.args)
            args["open"] = True
            records.append(SpanRecord(
                span_id=span.span_id,
                parent_id=span.parent_id,
                trace_id=span.trace_id,
                name=span.name,
                cat=span.cat,
                t_start=span.t_start,
                t_end=max(now, span.t_start),
                pid=span.pid,
                tid=span.tid,
                args=args,
            ))
        return records

    def summary(self) -> dict:
        self.finalize_sampling()
        out = {
            "spans": sum(1 for r in self.records if r.ph == "X"),
            "instants": sum(1 for r in self.records if r.ph == "i"),
            "traces": len(self.by_trace()),
            "dropped": self.dropped,
            "sampled_out": self.sampled_out,
            "open_spans": self.open_spans,
            "max_spans": self.max_spans,
        }
        if self._sampler is not None:
            out["sampling"] = self._sampler.summary()
        elif self._merged_sampling:
            agg = {"rate": self._merged_sampling[0]["rate"], "head_kept": 0,
                   "tail_kept": {}, "out_traces": 0, "pending": 0,
                   "foreign_pending": 0, "late_keeps": 0}
            for s in self._merged_sampling:
                for key in ("head_kept", "out_traces", "pending",
                            "foreign_pending", "late_keeps"):
                    agg[key] += s.get(key, 0)
                for reason, n in s.get("tail_kept", {}).items():
                    agg["tail_kept"][reason] = agg["tail_kept"].get(reason, 0) + n
            agg["tail_kept"] = dict(sorted(agg["tail_kept"].items()))
            out["sampling"] = agg
        return out

    # -- export -----------------------------------------------------------------
    def to_chrome(self) -> dict:
        """Chrome trace-event JSON (object format) for Perfetto.

        Spans still open at export time are emitted with a synthetic end
        at ``env.now`` and an ``"open": true`` flag — a mid-run export
        never silently omits in-flight work.
        """
        self.finalize_sampling()
        pids: dict[str, int] = {}
        tids: dict[tuple[str, str], int] = {}
        events: list[dict] = []
        for r in self.records + self._open_records():
            if r.pid not in pids:
                pids[r.pid] = len(pids) + 1
                events.append({
                    "ph": "M", "name": "process_name", "pid": pids[r.pid],
                    "tid": 0, "args": {"name": r.pid},
                })
            track = (r.pid, r.tid)
            if track not in tids:
                tids[track] = len(tids) + 1
                events.append({
                    "ph": "M", "name": "thread_name", "pid": pids[r.pid],
                    "tid": tids[track], "args": {"name": r.tid},
                })
            args = dict(r.args)
            if r.trace_id is not None:
                args["trace_id"] = r.trace_id
            args["span_id"] = r.span_id
            if r.parent_id is not None:
                args["parent_id"] = r.parent_id
            event = {
                "name": r.name,
                "cat": r.cat,
                "ph": r.ph,
                "ts": r.t_start * 1e6,
                "pid": pids[r.pid],
                "tid": tids[track],
                "args": args,
            }
            if r.ph == "X":
                event["dur"] = (r.t_end - r.t_start) * 1e6
            else:
                event["s"] = "t"
            events.append(event)
        return {
            "traceEvents": events,
            "displayTimeUnit": "ms",
            "otherData": {
                "source": "repro.obs",
                "clock": "sim-seconds",
                "dropped": self.dropped,
                "sampled_out": self.sampled_out,
                "open_spans": self.open_spans,
            },
        }

    def dump_chrome(self, path) -> None:
        with open(path, "w") as fh:
            json.dump(self.to_chrome(), fh)

    def digest(self) -> int:
        """Canonical content digest (see :func:`trace_digest`), including
        synthetic closes for still-open spans — exactly what a shard
        snapshot ships, so plain-run and merged digests are comparable."""
        self.finalize_sampling()
        return trace_digest(self.records + self._open_records())

    # -- cross-process collection ------------------------------------------------
    def snapshot(self) -> dict:
        """A picklable dump of every record, for shipping a shard's spans
        back to the coordinator (see :mod:`repro.sim.shard`).

        Kept intentionally plain (nested tuples/lists of primitives) so it
        survives ``multiprocessing`` pipes without custom reducers.  Spans
        still open at snapshot time are included with a synthetic end at
        ``now`` and an ``"open": true`` arg — a shard harvest never
        silently omits in-flight work.
        """
        self.finalize_sampling()

        def entry(r: SpanRecord) -> tuple:
            return (r.span_id, r.parent_id, r.trace_id, r.name, r.cat,
                    r.t_start, r.t_end, r.pid, r.tid, r.ph, dict(r.args))

        records = [entry(r) for r in self.records + self._open_records()]
        snap = {
            "version": _SNAPSHOT_VERSION,
            "namespace": self.namespace,
            "max_spans": self.max_spans,
            "dropped": self.dropped,
            "open_spans": self.open_spans,
            "records": records,
        }
        if self._sampler is not None:
            # Traces homed on another shard whose head decision said
            # "pending": their records ride home as (trace_id, record)
            # pairs for the coordinator to resolve against the merged
            # kept set.  Optional keys — absent for unsampled tracers, so
            # the snapshot wire format is unchanged at rate 1.0.
            foreign = [(tid, entry(r))
                       for tid, buf in self._pending_buf.items()
                       for r in buf]
            now = self.now
            for span in sorted(self._open.values(), key=lambda s: s.span_id):
                if self._sampler.state(span.trace_id) == _sampling.FOREIGN_PENDING:
                    args = dict(span.args)
                    args["open"] = True
                    foreign.append((span.trace_id, (
                        span.span_id, span.parent_id, span.trace_id,
                        span.name, span.cat, span.t_start,
                        max(now, span.t_start), span.pid, span.tid,
                        "X", args,
                    )))
            snap["sampled_out"] = self.sampled_out
            snap["foreign"] = foreign
            snap["sampling"] = self._sampler.summary()
        return snap

    def merge_snapshot(self, snapshot: dict,
                       track_prefix: Optional[str] = None) -> int:
        """Fold a :meth:`snapshot` into this tracer; returns records added.

        ``track_prefix`` (e.g. ``"shard2/"``) re-homes the snapshot's
        spans onto prefixed Perfetto process tracks, so a merged export
        shows one process group per shard.  Records are appended in
        snapshot order; merging shard snapshots in shard order keeps the
        merged record sequence — and therefore :func:`trace_digest` —
        deterministic.  Dropped counts accumulate; records past this
        tracer's ``max_spans`` are counted dropped, never lost silently.
        """
        if not isinstance(snapshot, dict) or "records" not in snapshot:
            raise ValueError(f"bad tracer snapshot: {type(snapshot).__name__}")
        version = snapshot.get("version")
        if version != _SNAPSHOT_VERSION:
            raise ValueError(
                f"tracer snapshot version {version!r} is not supported "
                f"(expected {_SNAPSHOT_VERSION})"
            )
        added = 0
        self.dropped += snapshot.get("dropped", 0)
        self.sampled_out += snapshot.get("sampled_out", 0)
        if snapshot.get("sampling") is not None:
            self._merged_sampling.append(snapshot["sampling"])
        for entry in snapshot["records"]:
            (span_id, parent_id, trace_id, name, cat,
             t_start, t_end, pid, tid, ph, args) = entry
            if track_prefix:
                pid = f"{track_prefix}{pid}"
            record = SpanRecord(
                span_id=span_id, parent_id=parent_id, trace_id=trace_id,
                name=name, cat=cat, t_start=t_start, t_end=t_end,
                pid=pid, tid=tid, ph=ph, args=dict(args),
            )
            self._record(record)
            added += 1
            if t_end > self._merged_now:
                self._merged_now = t_end
        for foreign_trace, entry in snapshot.get("foreign", ()):
            if track_prefix:
                entry = list(entry)
                entry[7] = f"{track_prefix}{entry[7]}"
                entry = tuple(entry)
            self._foreign_stash.append((foreign_trace, entry))
        return added

    def resolve_foreign(self) -> int:
        """Resolve snapshot-shipped foreign records against the merged
        kept set; returns records adopted.

        A foreign record belongs to a trace homed on another shard; that
        home shard's tail rules decided its fate, and a kept trace always
        ships at least its root record — so after merging every shard,
        membership of the trace id in ``records`` *is* the decision.
        Rejected records count as ``sampled_out``, matching what the
        single-shard run of the same world counts when it discards the
        same buffers locally.
        """
        if not self._foreign_stash:
            return 0
        kept = {r.trace_id for r in self.records if r.trace_id is not None}
        added = 0
        for trace_id, entry in self._foreign_stash:
            if trace_id in kept:
                (span_id, parent_id, tid_, name, cat,
                 t_start, t_end, pid, tid, ph, args) = entry
                self._record(SpanRecord(
                    span_id=span_id, parent_id=parent_id, trace_id=tid_,
                    name=name, cat=cat, t_start=t_start, t_end=t_end,
                    pid=pid, tid=tid, ph=ph, args=dict(args),
                ))
                added += 1
                if t_end > self._merged_now:
                    self._merged_now = t_end
            else:
                self.sampled_out += 1
        self._foreign_stash.clear()
        return added


def trace_digest(records) -> int:
    """CRC32 content digest of a record list, invariant to absolute ids.

    Records are stably sorted by timeline position (start, end, track,
    category, name, phase, canonical args) and span/trace ids renumbered
    by first appearance in that order, so two runs recording the *same
    spans* digest identically even when their id counters differ — the
    bar that makes a 1-shard sharded run comparable to a plain run.  A
    parent id pointing outside the record set canonicalizes to ``-1``.
    """
    def sort_key(r: SpanRecord):
        return (r.t_start, r.t_end, r.pid, r.tid, r.cat, r.name, r.ph,
                json.dumps(r.args, sort_keys=True, default=str))

    ordered = sorted(records, key=sort_key)
    span_index = {r.span_id: i for i, r in enumerate(ordered)}
    trace_index: dict[int, int] = {}
    crc = 0
    for i, r in enumerate(ordered):
        if r.trace_id is None:
            trace = None
        else:
            trace = trace_index.setdefault(r.trace_id, len(trace_index))
        parent = (None if r.parent_id is None
                  else span_index.get(r.parent_id, -1))
        row = json.dumps(
            [i, parent, trace, r.name, r.cat, r.t_start, r.t_end,
             r.pid, r.tid, r.ph, r.args],
            sort_keys=True, separators=(",", ":"), default=str,
        )
        crc = zlib.crc32(row.encode(), crc)
    return crc
