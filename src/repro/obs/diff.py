"""Differential regression attribution: *why* did the tail move?

A banded-metric failure ("steady p99 +40 ms") names the symptom; this
module names the cause.  It aligns two runs — flight bundles, critpath
attribution reports, or benchmark rows carrying embedded attribution —
by workload x percentile x resource category and decomposes the latency
delta additively:

    steady/continuous p99 +40.0 ms: 80% queue, 15% gpu_compute

The decomposition leans on the critical-path invariant
(:mod:`repro.obs.critpath`): per-invocation resource seconds sum to the
invocation's wall time (coverage >= 95%), so the *mean over a tail
cohort* of each category is an additive split of that cohort's mean
latency — and the per-category deltas between two runs sum to the
latency delta.  No heuristics, no span re-matching: plain subtraction.

Three layers:

* :func:`cohort_attribution` — critpath rows -> per-workload tail
  cohorts (invocations at/above each percentile cutoff) with mean
  resource seconds per category,
* :func:`diff_attribution` + :func:`format_diff_row` — align two
  attribution maps and emit the regression table,
* :func:`flame_diff` — two folded-stack maps -> difffolded lines
  (``stack base fresh``, integer microseconds) loadable in
  ``flamegraph.pl --negate`` / speedscope's diff view.

``python -m repro.obs.diff BASE FRESH [--out DIR]`` runs the whole
pipeline from the CLI; ``scripts/bench_compare.py --explain`` calls the
same functions when a banded metric fails in CI.

Everything here is offline analysis over frozen artifacts — it never
touches a live simulation.
"""

from __future__ import annotations

import argparse
import json
import os
import sys
from typing import Optional

from repro.errors import ConfigurationError
from repro.obs.critpath import (
    RESOURCES,
    folded_stacks,
    invocation_critpaths,
)
from repro.obs.metrics import _percentile

__all__ = [
    "PERCENTILES",
    "cohort_attribution",
    "attribution_from_tracer",
    "attribution_from_bundle",
    "load_attribution",
    "diff_attribution",
    "format_diff_row",
    "flame_diff",
    "dump_flame_diff",
    "main",
]

#: tail percentiles attribution is computed at
PERCENTILES = (50, 95, 99)

#: minimum share of the latency delta a category must explain to be
#: named in the formatted line (smaller contributors fold into the rest)
_SHARE_FLOOR = 0.05


class _RecordsView:
    """Duck-typed stand-in for a Tracer over already-frozen records.

    :func:`~repro.obs.critpath.invocation_critpaths` and
    :func:`~repro.obs.critpath.folded_stacks` only need ``by_trace()``,
    so a bundle's ``records.json`` can feed them without a live tracer.
    """

    def __init__(self, records):
        self.records = records

    def by_trace(self):
        out = {}
        for r in self.records:
            if r.trace_id is not None:
                out.setdefault(r.trace_id, []).append(r)
        return out


# -- layer 1: cohort attribution ---------------------------------------------

def cohort_attribution(rows, percentiles=PERCENTILES) -> dict:
    """Critpath rows -> per-workload tail-cohort category means.

    ``rows`` is :func:`~repro.obs.critpath.invocation_critpaths` output.
    For each workload and each percentile ``p``, the cohort is every
    invocation with ``e2e_s >= percentile(e2e, p)`` — the invocations
    that *are* the tail, not a single order statistic — and the entry
    records the cohort's mean latency plus the mean seconds each
    resource category contributed.  Because critical-path categories
    partition wall time, ``sum(categories) ~= latency_s``; diffing two
    of these maps decomposes a latency delta additively.
    """
    by_workload: dict[str, list[dict]] = {}
    for row in rows:
        by_workload.setdefault(str(row["workload"]), []).append(row)
    out = {}
    for workload, group in sorted(by_workload.items()):
        e2es = [row["e2e_s"] for row in group]
        entry: dict = {"count": len(group)}
        for pct in percentiles:
            cutoff = _percentile(e2es, pct)
            cohort = [row for row in group if row["e2e_s"] >= cutoff]
            if not cohort:  # degenerate (all-zero) group
                cohort = group
            n = len(cohort)
            entry[f"p{pct}"] = {
                "latency_s": sum(row["e2e_s"] for row in cohort) / n,
                "cohort": n,
                "categories": {
                    name: sum(row["resources"][name] for row in cohort) / n
                    for name in RESOURCES
                },
            }
        out[workload] = entry
    return out


def attribution_from_tracer(tracer, percentiles=PERCENTILES) -> dict:
    """Live (or merged) tracer -> attribution map."""
    return cohort_attribution(invocation_critpaths(tracer), percentiles)


def attribution_from_bundle(bundle_dir, percentiles=PERCENTILES) -> dict:
    """Flight bundle -> attribution map, rebuilt from ``records.json``.

    The bundle's ``critpath.json`` keeps only the aggregate (per-
    invocation rows can run to millions), so cohorts are recomputed from
    the exact span records — the digest-checked source of truth.
    """
    from repro.obs.flight import load_bundle_records

    records = load_bundle_records(os.path.join(bundle_dir, "records.json"))
    view = _RecordsView(records)
    return cohort_attribution(invocation_critpaths(view), percentiles)


def load_attribution(path) -> dict:
    """Load an attribution map from any supported artifact.

    * a flight-bundle *directory* -> rebuilt from ``records.json``,
    * a JSON file with an ``"attribution"`` key -> that map,
    * a benchmark JSON whose ``"rows"`` carry per-row ``"attribution"``
      (e.g. ``BENCH_llm.json``) -> one pseudo-workload per
      ``scenario/mode`` row,
    * a bare attribution map -> itself.
    """
    if os.path.isdir(path):
        return attribution_from_bundle(path)
    with open(path) as fh:
        data = json.load(fh)
    if not isinstance(data, dict):
        raise ConfigurationError(f"{path}: not an attribution artifact")
    if isinstance(data.get("attribution"), dict):
        return data["attribution"]
    if isinstance(data.get("rows"), list):
        out = {}
        for row in data["rows"]:
            attr = row.get("attribution")
            if isinstance(attr, dict):
                label = "/".join(
                    str(row[k]) for k in ("scenario", "mode") if k in row
                ) or f"row{len(out)}"
                out[label] = attr
        if not out:
            raise ConfigurationError(
                f"{path}: benchmark rows carry no attribution (regenerate "
                f"with tracing enabled)"
            )
        return out
    return data


# -- layer 2: alignment + diff table -----------------------------------------

def _percentile_keys(entry: dict) -> list[str]:
    keys = [
        k for k, v in entry.items()
        if k.startswith("p") and isinstance(v, dict) and "latency_s" in v
    ]
    return sorted(keys, key=lambda k: int(k[1:]))


def diff_attribution(base: dict, fresh: dict,
                     percentiles: Optional[tuple] = None) -> list[dict]:
    """Align two attribution maps; one diff row per workload x percentile.

    Only workloads present in *both* maps are diffed (a workload that
    appeared or vanished is a shape change, not a regression).  Each row
    carries the latency delta, per-category deltas, each category's
    share of the attributed delta, and the top contributor — the
    category CI blames when the corresponding banded metric fails.
    """
    rows = []
    for workload in sorted(set(base) & set(fresh)):
        b_entry, f_entry = base[workload], fresh[workload]
        keys = [k for k in _percentile_keys(b_entry)
                if k in set(_percentile_keys(f_entry))]
        if percentiles is not None:
            wanted = {f"p{p}" for p in percentiles}
            keys = [k for k in keys if k in wanted]
        for key in keys:
            b, f = b_entry[key], f_entry[key]
            deltas = {
                name: f["categories"].get(name, 0.0)
                - b["categories"].get(name, 0.0)
                for name in sorted(set(b["categories"]) | set(f["categories"]))
            }
            delta_latency = f["latency_s"] - b["latency_s"]
            attributed = sum(deltas.values())
            sign = 1.0 if attributed >= 0 else -1.0
            # shares are magnitudes over the dominant direction, so an
            # improvement (negative deltas) attributes the same way a
            # regression does
            denom = sum(d * sign for d in deltas.values() if d * sign > 0)
            shares = {
                name: (d * sign / denom if denom > 0 and d * sign > 0 else 0.0)
                for name, d in deltas.items()
            }
            top = max(deltas, key=lambda name: sign * deltas[name])
            rows.append({
                "workload": workload,
                "percentile": key,
                "base_latency_s": b["latency_s"],
                "fresh_latency_s": f["latency_s"],
                "delta_latency_s": delta_latency,
                "deltas": deltas,
                "shares": shares,
                "top": top,
                "regression": delta_latency > 0,
            })
    return rows


def format_diff_row(row: dict) -> str:
    """``steady/continuous p99 +40.0 ms: 80% queue, 15% gpu_compute``."""
    delta_ms = row["delta_latency_s"] * 1e3
    contributors = sorted(
        ((share, name) for name, share in row["shares"].items()
         if share >= _SHARE_FLOOR),
        key=lambda pair: (-pair[0], pair[1]),
    )
    if contributors:
        detail = ", ".join(f"{share:.0%} {name}" for share, name in contributors)
    else:
        detail = "no attributed movement"
    return (f"{row['workload']} {row['percentile']} "
            f"{delta_ms:+.1f} ms: {detail}")


# -- layer 3: flamegraph diff ------------------------------------------------

def flame_diff(base_stacks: dict, fresh_stacks: dict) -> list[str]:
    """Two folded-stack maps -> difffolded lines ``stack base fresh``.

    Weights are integer microseconds (matching
    :func:`~repro.obs.critpath.dump_folded`); stacks absent from one
    side get weight 0, which is exactly how ``flamegraph.pl --negate``
    and speedscope's left-heavy diff view expect grown/vanished stacks.
    """
    lines = []
    for key in sorted(set(base_stacks) | set(fresh_stacks)):
        b = round(base_stacks.get(key, 0.0) * 1e6)
        f = round(fresh_stacks.get(key, 0.0) * 1e6)
        lines.append(f"{key} {b} {f}")
    return lines


def dump_flame_diff(base_stacks: dict, fresh_stacks: dict, path) -> int:
    """Write the difffolded flame diff to ``path``; returns line count."""
    lines = flame_diff(base_stacks, fresh_stacks)
    with open(path, "w") as fh:
        fh.write("\n".join(lines) + ("\n" if lines else ""))
    return len(lines)


def _bundle_stacks(path) -> Optional[dict]:
    records_path = os.path.join(path, "records.json")
    if not (os.path.isdir(path) and os.path.exists(records_path)):
        return None
    from repro.obs.flight import load_bundle_records

    return folded_stacks(_RecordsView(load_bundle_records(records_path)))


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.obs.diff",
        description="attribute a latency regression between two runs",
    )
    parser.add_argument("base", help="flight bundle dir or attribution JSON")
    parser.add_argument("fresh", help="flight bundle dir or attribution JSON")
    parser.add_argument("--out", default=None,
                        help="directory for diff.json + flame_diff.folded")
    parser.add_argument("--regressions-only", action="store_true",
                        help="print only rows whose latency moved up")
    args = parser.parse_args(argv)

    rows = diff_attribution(load_attribution(args.base),
                            load_attribution(args.fresh))
    shown = [r for r in rows if r["regression"]] \
        if args.regressions_only else rows
    for row in shown:
        print(format_diff_row(row))
    if not rows:
        print("no overlapping workloads to diff", file=sys.stderr)

    if args.out:
        os.makedirs(args.out, exist_ok=True)
        with open(os.path.join(args.out, "diff.json"), "w") as fh:
            json.dump({"rows": rows}, fh, indent=1, sort_keys=True)
        base_stacks = _bundle_stacks(args.base)
        fresh_stacks = _bundle_stacks(args.fresh)
        if base_stacks is not None and fresh_stacks is not None:
            dump_flame_diff(base_stacks, fresh_stacks,
                            os.path.join(args.out, "flame_diff.folded"))
    return 0


if __name__ == "__main__":
    sys.exit(main())
