"""Flight-recorder bundles: one self-validating artifact per sharded run.

A sharded run with tracing on ends holding the whole story — merged span
timeline, merged metrics, SLO alerts (per-shard streams + the
cluster-level re-evaluation), critical-path attribution, and the
conservative-sync epoch telemetry.  :func:`write_flight_bundle` freezes
all of it into one directory so the run can be debugged (or a CI
artifact inspected) long after the processes are gone:

========================  ==================================================
file                      contents
========================  ==================================================
``manifest.json``         run shape, digests, file inventory (the index)
``trace.json``            Chrome trace-event JSON — load in Perfetto
``records.json``          exact span records (tracer snapshot form) — the
                          digest-checkable source of truth; ``trace.json``
                          stores microsecond floats and is lossy
``metrics.json``          merged registry dump (``as_dict`` form)
``alerts.json``           per-shard SLO transitions + cluster re-evaluation
``critpath.json``         critical-path aggregate + coverage violations
``flame.folded``          folded critical-path stacks (``stack weight``
                          lines) — feed two bundles' copies to
                          :mod:`repro.obs.diff` for a flamegraph diff
``epochs.json``           ``run_sharded``'s sync telemetry (epoch log,
                          barrier stalls, envelope traffic, imbalance)
========================  ==================================================

:func:`validate_flight_bundle` re-opens a bundle and checks it end to
end — files present, trace loadable with per-shard tracks, the records
digest matching the manifest, critpath coverage above the bar — and
returns a list of problems (empty = valid), which is what
``scripts/shard_report.py --validate`` and verify.sh gate on.
"""

from __future__ import annotations

import json
import os
from typing import Optional

from repro.errors import ConfigurationError
from repro.obs.critpath import critpath_report, dump_folded, folded_stacks
from repro.obs.slo import evaluate_cluster_slo
from repro.obs.trace import SpanRecord, trace_digest

__all__ = [
    "BUNDLE_VERSION",
    "write_flight_bundle",
    "validate_flight_bundle",
    "load_chrome_records",
    "load_bundle_records",
]

BUNDLE_VERSION = 1

#: the critpath coverage bar a bundle must clear to validate (same 95%
#: bar the latency-breakdown report enforces)
DEFAULT_MIN_COVERAGE = 0.95

_BUNDLE_FILES = (
    "trace.json",
    "records.json",
    "metrics.json",
    "alerts.json",
    "critpath.json",
    "flame.folded",
    "epochs.json",
)


def _dump(path: str, payload) -> None:
    # default=str matches trace_digest's canonicalization: a non-JSON arg
    # value (numpy scalar, enum, ...) serializes to the same string the
    # digest hashed, so a written-then-reloaded bundle digests identically
    with open(path, "w") as fh:
        json.dump(payload, fh, indent=1, sort_keys=True, default=str)


def write_flight_bundle(result, out_dir,
                        min_coverage: float = DEFAULT_MIN_COVERAGE,
                        cluster_rules: Optional[list] = None) -> dict:
    """Freeze a traced :class:`~repro.sim.shard.ShardRunResult` to disk.

    Requires a run made with ``run_sharded(..., tracing=True)`` — without
    the merged tracer there is nothing to record.  Returns the manifest
    dict (also written as ``manifest.json``).
    """
    if result.tracer is None:
        raise ConfigurationError(
            "flight bundle requires a traced run: pass tracing=True to "
            "run_sharded (result.tracer is None)"
        )
    os.makedirs(out_dir, exist_ok=True)
    tracer = result.tracer

    cluster = evaluate_cluster_slo(result.metrics, rules=cluster_rules)
    critpath = critpath_report(tracer, min_coverage=min_coverage)
    # per-invocation rows can run to millions; the bundle keeps the
    # aggregate + the violation list (names the offenders) and records
    # how many rows were summarized away
    critpath_out = {
        "aggregate": critpath["aggregate"],
        "violations": critpath["violations"],
        "min_coverage": min_coverage,
        "invocations": len(critpath["per_invocation"]),
        "coverage_min": min(
            (row["coverage"] for row in critpath["per_invocation"]),
            default=None,
        ),
    }

    _dump(os.path.join(out_dir, "trace.json"), tracer.to_chrome())
    _dump(os.path.join(out_dir, "records.json"), tracer.snapshot())
    _dump(os.path.join(out_dir, "metrics.json"), result.metrics.as_dict())
    _dump(os.path.join(out_dir, "alerts.json"), {
        "shard": result.alerts,
        "cluster": cluster.alert_log(),
        "cluster_summary": cluster.summary(),
    })
    _dump(os.path.join(out_dir, "critpath.json"), critpath_out)
    dump_folded(folded_stacks(tracer), os.path.join(out_dir, "flame.folded"))
    _dump(os.path.join(out_dir, "epochs.json"), result.sync)

    lookahead = result.lookahead_s
    manifest = {
        "version": BUNDLE_VERSION,
        "num_shards": result.num_shards,
        "total_groups": result.total_groups,
        "mode": result.mode,
        "lookahead_s": None if lookahead == float("inf") else lookahead,
        "n_epochs": result.n_epochs,
        "n_envelopes": result.n_envelopes,
        "events_processed": result.events_processed,
        "merged_digest": result.merged_digest,
        "trace_digest": result.trace_digest,
        "n_span_records": len(tracer.records),
        "n_alerts": len(result.alerts),
        "files": list(_BUNDLE_FILES),
        # sampling provenance: a bundle made at rate < 1.0 holds a
        # *subset* of traces — diffing it against an unsampled bundle is
        # valid for kept traces but the cohorts are smaller
        "sampled_out": tracer.sampled_out,
        "sampling": tracer.summary().get("sampling"),
    }
    _dump(os.path.join(out_dir, "manifest.json"), manifest)
    return manifest


def load_chrome_records(path) -> list[dict]:
    """Load a bundle's ``trace.json`` back into flat span dicts.

    Reverses the export's integer pid/tid mapping via the
    ``process_name``/``thread_name`` metadata events, so each returned
    dict carries the original string track names.  Times are microsecond
    floats as stored — lossy vs the simulator's seconds; digest checks
    must use ``records.json`` (:func:`load_bundle_records`) instead.
    """
    with open(path) as fh:
        chrome = json.load(fh)
    events = chrome.get("traceEvents")
    if not isinstance(events, list):
        raise ConfigurationError(f"{path}: no traceEvents list")
    pid_names: dict[int, str] = {}
    tid_names: dict[tuple[int, int], str] = {}
    records = []
    for event in events:
        if event.get("ph") == "M":
            if event["name"] == "process_name":
                pid_names[event["pid"]] = event["args"]["name"]
            elif event["name"] == "thread_name":
                tid_names[(event["pid"], event["tid"])] = event["args"]["name"]
            continue
        records.append({
            "name": event["name"],
            "cat": event.get("cat"),
            "ph": event.get("ph"),
            "ts_us": event.get("ts"),
            "dur_us": event.get("dur", 0.0),
            "pid": pid_names.get(event["pid"], str(event["pid"])),
            "tid": tid_names.get((event["pid"], event["tid"]),
                                 str(event["tid"])),
            "args": event.get("args", {}),
        })
    return records


def load_bundle_records(path) -> list[SpanRecord]:
    """Load a bundle's ``records.json`` back into :class:`SpanRecord`\\ s
    (exact floats — the digest-checkable form)."""
    with open(path) as fh:
        snapshot = json.load(fh)
    records = []
    for entry in snapshot["records"]:
        (span_id, parent_id, trace_id, name, cat,
         t_start, t_end, pid, tid, ph, args) = entry
        records.append(SpanRecord(
            span_id=span_id, parent_id=parent_id, trace_id=trace_id,
            name=name, cat=cat, t_start=t_start, t_end=t_end,
            pid=pid, tid=tid, ph=ph, args=args,
        ))
    return records


def validate_flight_bundle(bundle_dir,
                           min_coverage: float = DEFAULT_MIN_COVERAGE) -> list[str]:
    """Check a bundle end to end; returns problems (empty = valid)."""
    problems: list[str] = []
    manifest_path = os.path.join(bundle_dir, "manifest.json")
    try:
        with open(manifest_path) as fh:
            manifest = json.load(fh)
    except (OSError, ValueError) as exc:
        return [f"manifest.json unreadable: {exc}"]
    if manifest.get("version") != BUNDLE_VERSION:
        return [f"unsupported bundle version {manifest.get('version')!r} "
                f"(expected {BUNDLE_VERSION})"]
    for name in manifest.get("files", _BUNDLE_FILES):
        if not os.path.exists(os.path.join(bundle_dir, name)):
            problems.append(f"missing bundle file: {name}")
    if problems:
        return problems

    # trace.json: loadable, and with >1 shard every shard owns a track
    try:
        records = load_chrome_records(os.path.join(bundle_dir, "trace.json"))
    except (OSError, ValueError, KeyError, ConfigurationError) as exc:
        problems.append(f"trace.json unloadable: {exc}")
        records = []
    if manifest.get("num_shards", 1) > 1 and records:
        shard_tracks = {
            r["pid"].split("/", 1)[0]
            for r in records if r["pid"].startswith("shard")
        }
        if len(shard_tracks) < manifest["num_shards"]:
            problems.append(
                f"trace.json has spans from {len(shard_tracks)} shard "
                f"track(s), expected {manifest['num_shards']}"
            )

    # records.json: the exact form must reproduce the manifest digest
    try:
        exact = load_bundle_records(os.path.join(bundle_dir, "records.json"))
        digest = trace_digest(exact)
        if digest != manifest.get("trace_digest"):
            problems.append(
                f"records.json digest {digest} != manifest trace_digest "
                f"{manifest.get('trace_digest')}"
            )
        if len(exact) != manifest.get("n_span_records"):
            problems.append(
                f"records.json holds {len(exact)} records, manifest says "
                f"{manifest.get('n_span_records')}"
            )
    except (OSError, ValueError, KeyError) as exc:
        problems.append(f"records.json unloadable: {exc}")

    # critpath.json: coverage bar
    try:
        with open(os.path.join(bundle_dir, "critpath.json")) as fh:
            critpath = json.load(fh)
        for violation in critpath.get("violations", []):
            problems.append(f"critpath violation: {violation}")
        coverage_min = critpath.get("coverage_min")
        if coverage_min is not None and coverage_min < min_coverage:
            problems.append(
                f"critpath coverage_min {coverage_min:.3f} < {min_coverage}"
            )
    except (OSError, ValueError) as exc:
        problems.append(f"critpath.json unloadable: {exc}")

    # alerts.json / epochs.json: well-formed and consistent with manifest
    try:
        with open(os.path.join(bundle_dir, "alerts.json")) as fh:
            alerts = json.load(fh)
        if not isinstance(alerts.get("shard"), list) \
                or not isinstance(alerts.get("cluster"), list):
            problems.append("alerts.json missing shard/cluster lists")
        elif len(alerts["shard"]) != manifest.get("n_alerts"):
            problems.append(
                f"alerts.json holds {len(alerts['shard'])} shard alerts, "
                f"manifest says {manifest.get('n_alerts')}"
            )
    except (OSError, ValueError) as exc:
        problems.append(f"alerts.json unloadable: {exc}")
    try:
        with open(os.path.join(bundle_dir, "epochs.json")) as fh:
            epochs = json.load(fh)
        if epochs.get("n_epochs") != manifest.get("n_epochs"):
            problems.append(
                f"epochs.json n_epochs {epochs.get('n_epochs')} != "
                f"manifest {manifest.get('n_epochs')}"
            )
    except (OSError, ValueError) as exc:
        problems.append(f"epochs.json unloadable: {exc}")
    return problems
