"""Deterministic head + tail trace sampling for always-on tracing.

The bounded :class:`~repro.obs.trace.Tracer` keeps every span until it
hits ``max_spans`` and then drops *wholesale* — the million-invocation
runs the roadmap targets truncate at an arbitrary point and lose exactly
the traces someone will want to look at.  This module replaces
truncation with a **representative, seed-stable** kept set:

* **Head sampling** — each new root trace is kept with probability
  ``rate``, decided by hashing a caller-supplied *sampling key* (CRC32
  mapped to [0, 1)).  The key — not the raw trace id — is hashed
  because trace ids are allocated from per-tracer counters whose values
  depend on how groups were packed onto shards; a stable key (scope +
  workload + per-platform arrival index) makes the kept set invariant
  across reruns, shard counts, and inline-vs-process execution modes.
* **Tail keeping** — a head-rejected trace is not discarded at birth: it
  goes *pending* (its spans buffered, counted against the tracer's span
  budget) until its fate is known.  Pending traces are promoted to kept
  when they turn out interesting:

  - the root invocation ends with a non-``completed`` status,
  - an *interesting* span/instant lands on the trace (KV-cache
    preemption, crash requeue, RPC retry — :data:`INTERESTING_NAMES`),
  - an SLO alert fires while the trace is in flight or recently closed
    (``SLO-alert overlap``), or the alert names the trace as an exemplar,
  - the trace is the latency maximum of its ``(scope, workload,
    window)`` bucket — every window keeps its worst invocation.

  Everything else is finalized *out* once it is ``retention_s`` past its
  close (no alert can retro-keep it any more), so pending memory is
  bounded by the traffic of one retention window, not by run length.

Decisions are pure bookkeeping over sim-time calls the tracer already
makes — no events, no RNG — so sampling never perturbs the timeline, and
a run at ``rate=1.0`` stores exactly what an unsampled run stores.

Cross-shard propagation: a sender's head decision rides the envelope
trace context (:mod:`repro.simnet.envelope`); the receiving tracer
registers *foreign* trace decisions via
:meth:`~repro.obs.trace.Tracer.register_foreign` and ships
still-undecided foreign records home in its snapshot, where the
coordinator resolves them against the merged kept set
(:meth:`~repro.obs.trace.Tracer.resolve_foreign`).
"""

from __future__ import annotations

import zlib
from typing import Optional

__all__ = [
    "TraceSampler",
    "INTERESTING_NAMES",
    "sample_key_hash",
    "KEPT",
    "PENDING",
    "OUT",
    "FOREIGN_PENDING",
]

#: span/instant names that promote a pending trace on sight — the
#: "error / preempted / crash-requeued" tail-keep rule
INTERESTING_NAMES = frozenset({
    "kv_preempt",        # KV-cache preemption hit this invocation's engine
    "request_requeued",  # crash-rescue requeued this invocation's request
    "rpc_retry",         # the guest retried an idempotent RPC
})

#: decision states (``state()`` return values)
KEPT = "kept"
PENDING = "pending"
OUT = "out"
FOREIGN_PENDING = "foreign"


def sample_key_hash(key) -> float:
    """Map a sampling key to a deterministic uniform-ish float in [0, 1).

    ``zlib.crc32`` of the key's string form — stable across processes and
    Python versions (unlike ``hash()``), cheap, and good enough spread
    for sampling decisions.
    """
    crc = zlib.crc32(str(key).encode())
    return crc / 4294967296.0  # 2**32


class _Pending:
    """Book-keeping for one head-rejected trace awaiting its fate."""

    __slots__ = ("scope", "workload", "t_start", "t_end")

    def __init__(self, scope: str, workload: str, t_start: float):
        self.scope = scope
        self.workload = workload
        self.t_start = t_start
        self.t_end: Optional[float] = None  # set when the root ends


class TraceSampler:
    """Head-rate + tail-keep decisions over root traces.

    The sampler is *passive*: it never touches the tracer.  Every method
    that can change a trace's fate returns a resolution list
    ``[(trace_id, kept: bool, reason), ...]`` which the owning tracer
    applies (flushing or discarding the buffered spans).  All calls
    arrive in sim-time order (they are driven by simulation events), so
    the kept set is deterministic and — with stable keys — invariant to
    shard layout.
    """

    def __init__(self, rate: float, *, window_s: float = 60.0,
                 retention_s: float = 300.0):
        if not 0.0 <= rate <= 1.0:
            raise ValueError(f"sample rate must be in [0, 1], got {rate}")
        if window_s <= 0 or retention_s <= 0:
            raise ValueError("window_s and retention_s must be positive")
        self.rate = rate
        #: latency-champion window width (per scope × workload)
        self.window_s = window_s
        #: how long a closed pending trace stays revivable by an alert
        self.retention_s = retention_s
        self._kept: dict[int, str] = {}        # trace_id -> keep reason
        self._out: set[int] = set()
        self._pending: dict[int, _Pending] = {}
        self._foreign: set[int] = set()        # undecided, homed elsewhere
        #: (scope, workload, window_index) -> (e2e_s, trace_id)
        self._champions: dict[tuple, tuple] = {}
        self._closed: list[tuple] = []         # (t_end, trace_id) FIFO-ish
        # -- counters (surfaced in Tracer.summary / bundle manifests) ----
        self.head_kept = 0
        self.tail_kept: dict[str, int] = {}
        self.out_traces = 0
        #: force_keep calls that arrived after the trace was finalized out
        #: — loud, because it means retention_s was too short for a rule
        self.late_keeps = 0

    # -- decisions ----------------------------------------------------------
    def head_decision(self, key) -> bool:
        """Pure head-sampling verdict for ``key`` (no state change)."""
        if self.rate >= 1.0:
            return True
        if self.rate <= 0.0:
            return False
        return sample_key_hash(key) < self.rate

    def register(self, trace_id: int, key=None, scope: str = "",
                 workload: str = "", t_start: float = 0.0) -> bool:
        """Head decision for a new root trace; True when head-kept.

        ``key`` defaults to the trace id itself — rerun-deterministic but
        *not* shard-layout invariant (counter values shift with packing);
        callers that need layout invariance pass a stable key.
        """
        if self.head_decision(key if key is not None else trace_id):
            self.head_kept += 1
            self._kept[trace_id] = "head"
            self._foreign.discard(trace_id)
            return True
        self._pending[trace_id] = _Pending(scope, workload, t_start)
        self._foreign.discard(trace_id)
        return False

    def register_foreign(self, trace_id: int, sampled: bool) -> None:
        """Adopt a remote shard's head decision for a trace homed there.

        ``sampled=True`` means the sender had already kept the trace;
        ``False`` means it was pending there — records stay buffered as
        *foreign* and the coordinator resolves them after the merge.
        """
        if (trace_id in self._kept or trace_id in self._out
                or trace_id in self._pending or trace_id in self._foreign):
            return
        if sampled:
            self._kept[trace_id] = "foreign-head"
        else:
            self._foreign.add(trace_id)

    def state(self, trace_id: Optional[int]) -> Optional[str]:
        """One of :data:`KEPT`/:data:`PENDING`/:data:`OUT`/
        :data:`FOREIGN_PENDING`, or ``None`` for an unregistered trace
        (treated as kept — non-invocation traces are never sampled away).
        """
        if trace_id is None:
            return None
        if trace_id in self._kept:
            return KEPT
        if trace_id in self._pending:
            return PENDING
        if trace_id in self._out:
            return OUT
        if trace_id in self._foreign:
            return FOREIGN_PENDING
        return None

    # -- tail rules ---------------------------------------------------------
    def _promote(self, trace_id: int, reason: str, resolutions: list) -> None:
        pending = self._pending.pop(trace_id, None)
        if pending is None:
            return
        self._kept[trace_id] = reason
        self.tail_kept[reason] = self.tail_kept.get(reason, 0) + 1
        resolutions.append((trace_id, True, reason))

    def _finalize_out(self, trace_id: int, resolutions: list) -> None:
        if self._pending.pop(trace_id, None) is not None:
            self._out.add(trace_id)
            self.out_traces += 1
            resolutions.append((trace_id, False, "sampled_out"))

    def _expire(self, now: float, resolutions: list) -> None:
        """Finalize closed non-champion pendings past the retention window."""
        if not self._closed:
            return
        cutoff = now - self.retention_s
        keep_from = 0
        champions = {tid for _, tid in self._champions.values()}
        for t_end, trace_id in self._closed:
            if t_end >= cutoff:
                break
            keep_from += 1
            if trace_id in champions:
                continue  # champions are resolved at finalize / displacement
            self._finalize_out(trace_id, resolutions)
        if keep_from:
            del self._closed[:keep_from]

    def note_record(self, trace_id: int, name: str) -> list:
        """Eager promote on an interesting span/instant name; returns
        resolutions (applied by the tracer)."""
        resolutions: list = []
        if name in INTERESTING_NAMES and trace_id in self._pending:
            self._promote(trace_id, name, resolutions)
        return resolutions

    def on_root_end(self, trace_id: int, t_start: float, t_end: float,
                    status: str) -> list:
        """Tail rules at root-span end; returns resolutions.

        Kept roots participate too: the latency champion of a window is
        the max over *all* its invocations, so a kept root can displace a
        pending champion (which then ages out normally).
        """
        resolutions: list = []
        self._expire(t_end, resolutions)
        pending = self._pending.get(trace_id)
        scope, workload = "", ""
        if pending is not None:
            pending.t_end = t_end
            scope, workload = pending.scope, pending.workload
            if status != "completed":
                self._promote(trace_id, f"status:{status}", resolutions)
                return resolutions
        elif trace_id not in self._kept:
            return resolutions  # out / foreign: nothing to decide here
        # latency-champion bookkeeping (kept and pending roots alike)
        window = int(t_end // self.window_s)
        ckey = (scope, workload, window)
        e2e = t_end - t_start
        current = self._champions.get(ckey)
        if current is None or e2e > current[0]:
            self._champions[ckey] = (e2e, trace_id)
            # the displaced champion rejoins the ordinary closed pool
            # (self._closed already holds it — nothing more to do)
        if pending is not None:
            self._closed.append((t_end, trace_id))
        return resolutions

    def note_alert(self, t: float, scope: str = "",
                   exemplar_trace_ids=()) -> list:
        """An SLO alert fired at ``t``: keep every overlapping trace.

        Promotes the scope's open pendings, its pendings closed within
        the retention window, and the alert's exemplar traces; returns
        resolutions.  Scope-filtered so one group's alert cannot change
        a co-resident group's kept set (that would make the kept set
        depend on shard packing).
        """
        resolutions: list = []
        cutoff = t - self.retention_s
        overlap = [
            tid for tid, p in self._pending.items()
            if p.scope == scope and (p.t_end is None or p.t_end >= cutoff)
        ]
        for tid in overlap:
            self._promote(tid, "alert", resolutions)
        for tid in exemplar_trace_ids:
            if tid in self._pending:
                self._promote(tid, "exemplar", resolutions)
            elif tid in self._out:
                self.late_keeps += 1
        return resolutions

    def force_keep(self, trace_id: int, reason: str = "forced") -> list:
        """Promote one pending trace unconditionally; returns resolutions."""
        resolutions: list = []
        if trace_id in self._pending:
            self._promote(trace_id, reason, resolutions)
        elif trace_id in self._out:
            self.late_keeps += 1
        return resolutions

    def finalize(self) -> list:
        """Resolve every remaining *local* pending (run is over).

        Window champions are kept; everything else goes out.  Foreign
        pendings are left for the coordinator's post-merge resolution.
        Idempotent; returns resolutions.
        """
        resolutions: list = []
        champions = {tid for _, tid in self._champions.values()}
        for trace_id in list(self._pending):
            if trace_id in champions:
                self._promote(trace_id, "latency_max", resolutions)
            else:
                self._finalize_out(trace_id, resolutions)
        self._closed.clear()
        return resolutions

    # -- reporting ----------------------------------------------------------
    def summary(self) -> dict:
        return {
            "rate": self.rate,
            "head_kept": self.head_kept,
            "tail_kept": dict(sorted(self.tail_kept.items())),
            "out_traces": self.out_traces,
            "pending": len(self._pending),
            "foreign_pending": len(self._foreign),
            "late_keeps": self.late_keeps,
        }
