"""Cross-layer observability: span tracing, metrics registry, reports.

``repro.obs`` is the substrate every layer of the stack reports into:

* :mod:`repro.obs.trace` — a bounded sim-time span :class:`Tracer` with
  Chrome trace-event JSON export (loadable in Perfetto / chrome://tracing).
* :mod:`repro.obs.metrics` — a :class:`MetricsRegistry` of labeled
  counters, gauge time-series, and sim-time histograms that the legacy
  stat summaries (``CommStats``/``CacheStats``/``OutcomeSummary``) are
  views over.
* :mod:`repro.obs.report` — per-invocation latency breakdowns (phase
  attribution + coverage) and p50/p95/p99 aggregation.
* :mod:`repro.obs.critpath` — critical-path extraction over span trees:
  per-resource attribution (queue / wire / serialization / gpu_compute /
  object_store / cpu), top-bottleneck tables, and folded flamegraph
  export.
* :mod:`repro.obs.slo` — a streaming SLO engine over the registry's
  observation stream: multi-window burn-rate availability alerts, GPU
  imbalance and queue-starvation detectors, structured
  :class:`~repro.obs.slo.AlertEvent` logs — plus
  :func:`~repro.obs.slo.evaluate_cluster_slo`, which replays a *merged*
  registry's gauge series so cluster-scope conditions (cross-shard GPU
  imbalance) are evaluated after a sharded run.
* :mod:`repro.obs.flight` — flight-recorder bundles: one self-validating
  artifact directory per sharded run (merged trace, metrics, alerts,
  critpath, folded flame stacks, epoch telemetry, manifest).
* :mod:`repro.obs.sampling` — deterministic head sampling (trace-key
  hash vs ``DgsfConfig.trace_sample_rate``) plus tail-keep rules that
  retain the interesting traces: errored/preempted roots, SLO-alert
  exemplars and overlaps, and each window's latency maximum.  Decisions
  propagate over the cross-shard wire so a trace is kept or dropped
  whole, identically for every shard count.
* :mod:`repro.obs.diff` — differential regression attribution: align
  two runs' tail-cohort critical-path attributions by workload x
  percentile x category and decompose a latency delta additively
  ("steady p99 +40 ms: 80% queue, 15% gpu_compute"), plus a difffolded
  flamegraph diff.

Everything here is pure bookkeeping: recording a span or bumping a
counter reads ``env.now`` and appends to Python lists, but never creates
events, timeouts, or RNG draws — so an instrumented run is
timeline-identical to an uninstrumented one, and the determinism goldens
hold bit-for-bit with tracing, SLO evaluation and critical-path
collection on or off.
"""

from repro.obs.diff import (
    attribution_from_bundle,
    attribution_from_tracer,
    cohort_attribution,
    diff_attribution,
    flame_diff,
    format_diff_row,
    load_attribution,
)
from repro.obs.critpath import (
    aggregate_critpaths,
    bottleneck_table,
    critical_path,
    critpath_report,
    dump_folded,
    folded_stacks,
    invocation_critpaths,
)
from repro.obs.flight import (
    load_bundle_records,
    load_chrome_records,
    validate_flight_bundle,
    write_flight_bundle,
)
from repro.obs.metrics import Counter, Gauge, Histogram, MetricsRegistry
from repro.obs.report import (
    aggregate_breakdowns,
    breakdown_table_rows,
    invocation_breakdowns,
    percentile,
)
from repro.obs.sampling import TraceSampler
from repro.obs.slo import AlertEvent, SloEngine, default_rules, evaluate_cluster_slo
from repro.obs.trace import NullSpan, Span, SpanRecord, Tracer, trace_digest

__all__ = [
    "AlertEvent",
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "NullSpan",
    "SloEngine",
    "Span",
    "SpanRecord",
    "Tracer",
    "TraceSampler",
    "aggregate_breakdowns",
    "aggregate_critpaths",
    "attribution_from_bundle",
    "attribution_from_tracer",
    "bottleneck_table",
    "breakdown_table_rows",
    "cohort_attribution",
    "critical_path",
    "critpath_report",
    "default_rules",
    "diff_attribution",
    "dump_folded",
    "evaluate_cluster_slo",
    "flame_diff",
    "folded_stacks",
    "format_diff_row",
    "invocation_breakdowns",
    "invocation_critpaths",
    "load_attribution",
    "load_bundle_records",
    "load_chrome_records",
    "percentile",
    "trace_digest",
    "validate_flight_bundle",
    "write_flight_bundle",
]
