"""Cross-layer observability: span tracing, metrics registry, reports.

``repro.obs`` is the substrate every layer of the stack reports into:

* :mod:`repro.obs.trace` — a bounded sim-time span :class:`Tracer` with
  Chrome trace-event JSON export (loadable in Perfetto / chrome://tracing).
* :mod:`repro.obs.metrics` — a :class:`MetricsRegistry` of labeled
  counters, gauge time-series, and sim-time histograms that the legacy
  stat summaries (``CommStats``/``CacheStats``/``OutcomeSummary``) are
  views over.
* :mod:`repro.obs.report` — per-invocation latency breakdowns (phase
  attribution + coverage) and p50/p95/p99 aggregation.

Everything here is pure bookkeeping: recording a span or bumping a
counter reads ``env.now`` and appends to Python lists, but never creates
events, timeouts, or RNG draws — so an instrumented run is
timeline-identical to an uninstrumented one, and the determinism goldens
hold bit-for-bit with tracing on or off.
"""

from repro.obs.metrics import Counter, Gauge, Histogram, MetricsRegistry
from repro.obs.report import (
    aggregate_breakdowns,
    breakdown_table_rows,
    invocation_breakdowns,
    percentile,
)
from repro.obs.trace import Span, SpanRecord, Tracer

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "Span",
    "SpanRecord",
    "Tracer",
    "aggregate_breakdowns",
    "breakdown_table_rows",
    "invocation_breakdowns",
    "percentile",
]
