"""Cross-layer observability: span tracing, metrics registry, reports.

``repro.obs`` is the substrate every layer of the stack reports into:

* :mod:`repro.obs.trace` — a bounded sim-time span :class:`Tracer` with
  Chrome trace-event JSON export (loadable in Perfetto / chrome://tracing).
* :mod:`repro.obs.metrics` — a :class:`MetricsRegistry` of labeled
  counters, gauge time-series, and sim-time histograms that the legacy
  stat summaries (``CommStats``/``CacheStats``/``OutcomeSummary``) are
  views over.
* :mod:`repro.obs.report` — per-invocation latency breakdowns (phase
  attribution + coverage) and p50/p95/p99 aggregation.
* :mod:`repro.obs.critpath` — critical-path extraction over span trees:
  per-resource attribution (queue / wire / serialization / gpu_compute /
  object_store / cpu), top-bottleneck tables, and folded flamegraph
  export.
* :mod:`repro.obs.slo` — a streaming SLO engine over the registry's
  observation stream: multi-window burn-rate availability alerts, GPU
  imbalance and queue-starvation detectors, structured
  :class:`~repro.obs.slo.AlertEvent` logs — plus
  :func:`~repro.obs.slo.evaluate_cluster_slo`, which replays a *merged*
  registry's gauge series so cluster-scope conditions (cross-shard GPU
  imbalance) are evaluated after a sharded run.
* :mod:`repro.obs.flight` — flight-recorder bundles: one self-validating
  artifact directory per sharded run (merged trace, metrics, alerts,
  critpath, epoch telemetry, manifest).

Everything here is pure bookkeeping: recording a span or bumping a
counter reads ``env.now`` and appends to Python lists, but never creates
events, timeouts, or RNG draws — so an instrumented run is
timeline-identical to an uninstrumented one, and the determinism goldens
hold bit-for-bit with tracing, SLO evaluation and critical-path
collection on or off.
"""

from repro.obs.critpath import (
    aggregate_critpaths,
    bottleneck_table,
    critical_path,
    critpath_report,
    dump_folded,
    folded_stacks,
    invocation_critpaths,
)
from repro.obs.flight import (
    load_bundle_records,
    load_chrome_records,
    validate_flight_bundle,
    write_flight_bundle,
)
from repro.obs.metrics import Counter, Gauge, Histogram, MetricsRegistry
from repro.obs.report import (
    aggregate_breakdowns,
    breakdown_table_rows,
    invocation_breakdowns,
    percentile,
)
from repro.obs.slo import AlertEvent, SloEngine, default_rules, evaluate_cluster_slo
from repro.obs.trace import Span, SpanRecord, Tracer, trace_digest

__all__ = [
    "AlertEvent",
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "SloEngine",
    "Span",
    "SpanRecord",
    "Tracer",
    "aggregate_breakdowns",
    "aggregate_critpaths",
    "bottleneck_table",
    "breakdown_table_rows",
    "critical_path",
    "critpath_report",
    "default_rules",
    "dump_folded",
    "evaluate_cluster_slo",
    "folded_stacks",
    "invocation_breakdowns",
    "invocation_critpaths",
    "load_bundle_records",
    "load_chrome_records",
    "percentile",
    "trace_digest",
    "validate_flight_bundle",
    "write_flight_bundle",
]
