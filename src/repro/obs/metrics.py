"""A minimal labeled-metrics registry for the simulator.

Three instrument kinds, all zero-sim-time (they never touch the event
queue, only read clocks the caller passes in):

* :class:`Counter` — monotonically increasing count (calls, bytes,
  faults).
* :class:`Gauge` — a sampled time series of (sim_time, value) points,
  e.g. NVML utilization.
* :class:`Histogram` — a bag of observations with percentile queries,
  e.g. per-invocation end-to-end latency.

Instruments are identified by ``(name, labels)``; the registry
get-or-creates on access so call sites never need existence checks:

    registry.counter("guest.calls_localized", guest=3).inc()
    registry.gauge("gpu.utilization", device=0).set(0.82, t=env.now)
    registry.histogram("invocation.e2e_s", workload="kmeans").observe(11.3)

Naming convention: dotted ``<layer>.<metric>`` names
(``guest.rpc_retries``, ``artifact_cache.hits``, ``invocation.status``);
dimensions go in labels, never in the name.

The registry is also a *stream*: subscribers (see :mod:`repro.obs.slo`)
receive every recorded observation as ``(metric, value, t)`` the moment
it happens, stamped with sim time from the registry's bound clock (or
the explicit ``t`` a gauge sample carries).  Notification is plain
synchronous bookkeeping — no events, no buffering — so attaching a
subscriber cannot perturb the simulated timeline.
"""

from __future__ import annotations

from typing import Callable, Iterator, Optional

__all__ = ["Counter", "Gauge", "Histogram", "MetricsRegistry"]


def _percentile_sorted(xs: list[float], q: float) -> float:
    """Linear-interpolation percentile over an *already sorted* list."""
    if not xs:
        raise ValueError("percentile of empty series")
    if len(xs) == 1:
        return xs[0]
    pos = (q / 100.0) * (len(xs) - 1)
    lo = int(pos)
    hi = min(lo + 1, len(xs) - 1)
    frac = pos - lo
    return xs[lo] * (1.0 - frac) + xs[hi] * frac


def _percentile(values: list[float], q: float) -> float:
    """Linear-interpolation percentile (numpy's default method), local so
    the metrics layer stays import-light."""
    if not values:
        raise ValueError("percentile of empty series")
    return _percentile_sorted(sorted(values), q)


class Counter:
    """A monotonically increasing counter."""

    __slots__ = ("name", "labels", "value", "last_trace_id", "_registry")

    def __init__(self, name: str, labels: dict):
        self.name = name
        self.labels = labels
        self.value = 0
        #: exemplar: the trace behind the most recent increment (None
        #: when the caller has no trace context) — lets an SLO rule link
        #: the counter stream back to a concrete timeline
        self.last_trace_id: Optional[int] = None
        self._registry: Optional["MetricsRegistry"] = None

    def inc(self, amount: int = 1, trace_id: Optional[int] = None) -> None:
        if amount < 0:
            raise ValueError(f"counter {self.name} cannot decrease")
        self.value += amount
        if trace_id is not None:
            self.last_trace_id = trace_id
        if self._registry is not None:
            self._registry._notify(self, amount)

    def __repr__(self):
        return f"Counter({self.name}{self.labels or ''}={self.value})"


#: retained-sample bound per gauge series; beyond it the series is
#: decimated exactly the way Histogram decimates (see Gauge.set) so
#: million-invocation runs keep O(cap) memory per gauge
_GAUGE_CAP = 65536


class Gauge:
    """A last-value gauge that also keeps a bounded (time, value) series.

    The series is complete until :data:`_GAUGE_CAP` samples have been
    retained, after which it is halved (every other sample dropped) and
    only every ``stride``-th new sample is kept — the same deterministic
    systematic decimation :class:`Histogram` applies, so same-seed runs
    stay bit-identical.  The *last* value is always exact regardless of
    decimation (:attr:`value` reads a scalar, not the series), and the
    live notification stream still fires for **every** ``set`` — SLO
    window rules see the full stream; only the stored history thins.
    :attr:`truncated`/:attr:`dropped` surface the loss, never silent.
    """

    __slots__ = ("name", "labels", "times", "values", "_registry",
                 "_count", "_last", "_stride", "_phase")

    def __init__(self, name: str, labels: dict):
        self.name = name
        self.labels = labels
        self.times: list[float] = []
        self.values: list[float] = []
        self._registry: Optional["MetricsRegistry"] = None
        self._count = 0
        self._last: Optional[tuple[float, float]] = None  # exact (t, value)
        self._stride = 1  # keep every _stride-th sample
        self._phase = 0

    def set(self, value: float, t: float) -> None:
        self._count += 1
        self._last = (t, value)
        self._phase += 1
        if self._phase >= self._stride:
            self._phase = 0
            self.times.append(t)
            self.values.append(value)
            if len(self.values) >= _GAUGE_CAP:
                # Halve the retained series and the future keep rate —
                # identical policy to Histogram.observe.
                del self.times[::2]
                del self.values[::2]
                self._stride *= 2
        if self._registry is not None:
            self._registry._notify(self, value, t=t)

    @property
    def value(self) -> Optional[float]:
        if self._last is not None:
            return self._last[1]
        return self.values[-1] if self.values else None

    @property
    def count(self) -> int:
        """Samples ever set (exact, decimation-independent)."""
        return max(self._count, len(self.values))

    @property
    def truncated(self) -> bool:
        """True once samples have been dropped from the stored series."""
        return self._stride > 1

    @property
    def dropped(self) -> int:
        """Samples not present in the retained series."""
        return self.count - len(self.values)

    def series(self) -> list[tuple[float, float]]:
        return list(zip(self.times, self.values))

    def __repr__(self):
        return f"Gauge({self.name}{self.labels or ''}={self.value})"


#: retained-sample bound per histogram; beyond it the sample is decimated
#: (see Histogram.observe) so memory stays O(cap) no matter how long the
#: scenario runs
_HISTOGRAM_CAP = 65536

#: fixed log-spaced bucket upper edges for histogram exemplars (seconds
#: or milliseconds alike — coverage from sub-ms to hours); fixed edges
#: keep the exemplar set deterministic and bounded
_EXEMPLAR_EDGES = (0.001, 0.005, 0.01, 0.05, 0.1, 0.5,
                   1.0, 5.0, 10.0, 50.0, 100.0, 500.0, 1000.0, 5000.0)


def _exemplar_bucket(value: float) -> float:
    """The upper edge of the exemplar bucket ``value`` falls in
    (``inf`` for values beyond the last edge)."""
    for edge in _EXEMPLAR_EDGES:
        if value <= edge:
            return edge
    return float("inf")


class Histogram:
    """A bag of observations with mean/percentile queries.

    ``count``/``sum``/``mean`` are exact over *every* observation (scalar
    accumulators).  Percentiles are computed from :attr:`observations`,
    the retained sample: complete until :data:`_HISTOGRAM_CAP` values
    have been kept, after which the sample is halved (every other
    retained value dropped) and only every ``stride``-th new observation
    is kept — a deterministic systematic sample, so same-seed runs stay
    bit-identical.  :attr:`truncated`/:attr:`dropped` report when and how
    much was dropped instead of letting the list grow without bound.

    The sorted snapshot used by percentile queries is cached and
    invalidated when the sample changes, so ``p50``/``p95``/``p99`` after
    a batch of observes sort once, not three times.

    **Exemplars**: an ``observe`` that carries a ``trace_id`` files it as
    the exemplar for the fixed log-spaced bucket its value falls in
    (latest observation wins) and as :attr:`last_trace_id` — so "what
    does a 40 s invocation look like?" maps straight to a concrete trace
    in the flight bundle, and SLO rules can name the traces that
    breached them.  Exemplars are bounded (one per bucket) and purely
    additive: call sites without trace context change nothing.
    """

    __slots__ = ("name", "labels", "observations", "_registry",
                 "_count", "_total", "_sorted", "_stride", "_phase",
                 "last_trace_id", "exemplars")

    def __init__(self, name: str, labels: dict):
        self.name = name
        self.labels = labels
        self.observations: list[float] = []
        self._registry: Optional["MetricsRegistry"] = None
        self._count = 0
        self._total = 0.0
        self._sorted: Optional[list[float]] = None  # cached sorted sample
        self._stride = 1  # keep every _stride-th observation
        self._phase = 0
        #: exemplar: the trace behind the most recent observation
        self.last_trace_id: Optional[int] = None
        #: bucket upper edge -> (value, trace_id) of its latest exemplar
        self.exemplars: dict[float, tuple[float, int]] = {}

    def observe(self, value: float, trace_id: Optional[int] = None) -> None:
        self._count += 1
        self._total += value
        self._phase += 1
        if self._phase >= self._stride:
            self._phase = 0
            obs = self.observations
            obs.append(value)
            self._sorted = None
            if len(obs) >= _HISTOGRAM_CAP:
                # Halve the sample (drop every other retained value) and
                # halve the keep rate for future observations.
                del obs[::2]
                self._stride *= 2
        if trace_id is not None:
            self.last_trace_id = trace_id
            self.exemplars[_exemplar_bucket(value)] = (value, trace_id)
        if self._registry is not None:
            self._registry._notify(self, value)

    @property
    def count(self) -> int:
        return self._count

    @property
    def total(self) -> float:
        return self._total

    @property
    def mean(self) -> float:
        if not self._count:
            raise ValueError(f"histogram {self.name} is empty")
        return self._total / self._count

    @property
    def truncated(self) -> bool:
        """True once observations have been dropped from the sample."""
        return self._stride > 1

    @property
    def dropped(self) -> int:
        """Observations not present in the retained sample."""
        return self._count - len(self.observations)

    def percentile(self, q: float) -> float:
        xs = self._sorted
        if xs is None:
            xs = self._sorted = sorted(self.observations)
        return _percentile_sorted(xs, q)

    @property
    def p50(self) -> float:
        return self.percentile(50)

    @property
    def p95(self) -> float:
        return self.percentile(95)

    @property
    def p99(self) -> float:
        return self.percentile(99)

    def __repr__(self):
        return f"Histogram({self.name}{self.labels or ''}, n={self.count})"


_KINDS = {"counter": Counter, "gauge": Gauge, "histogram": Histogram}


class MetricsRegistry:
    """Get-or-create store of labeled instruments.

    ``clock`` (optional) is a zero-argument callable returning the current
    sim time; the deployment binds it to ``env.now`` so counter/histogram
    notifications carry timestamps without every call site threading one
    through.  Gauges already carry their own ``t``.
    """

    def __init__(self, clock: Optional[Callable[[], float]] = None):
        self._metrics: dict[tuple[str, tuple], object] = {}
        self.clock = clock
        self._subscribers: list[Callable] = []

    # -- streaming ---------------------------------------------------------------
    def subscribe(self, callback: Callable) -> None:
        """Receive ``(metric, value, t)`` for every recorded observation.

        ``t`` comes from the gauge sample itself or the bound clock (0.0
        with no clock).  Callbacks must be pure bookkeeping: they run
        synchronously inside the recording call and must never touch the
        event queue or draw randomness.
        """
        self._subscribers.append(callback)

    def _notify(self, metric, value, t: Optional[float] = None) -> None:
        if not self._subscribers:
            return
        if t is None:
            t = self.clock() if self.clock is not None else 0.0
        for callback in self._subscribers:
            callback(metric, value, t)

    def _get(self, kind: str, name: str, labels: dict):
        key = (name, tuple(sorted(labels.items())))
        metric = self._metrics.get(key)
        if metric is None:
            metric = _KINDS[kind](name, labels)
            metric._registry = self
            self._metrics[key] = metric
            return metric
        expected = _KINDS[kind]
        if not isinstance(metric, expected):
            raise TypeError(
                f"metric {name!r}{labels} already registered as "
                f"{type(metric).__name__}, not {expected.__name__}"
            )
        return metric

    def counter(self, name: str, **labels) -> Counter:
        return self._get("counter", name, labels)

    def gauge(self, name: str, **labels) -> Gauge:
        return self._get("gauge", name, labels)

    def histogram(self, name: str, **labels) -> Histogram:
        return self._get("histogram", name, labels)

    # -- queries ---------------------------------------------------------------
    def find(self, name: str, **match) -> Iterator:
        """Yield every instrument named ``name`` whose labels are a
        superset of ``match``."""
        for (metric_name, _), metric in self._metrics.items():
            if metric_name != name:
                continue
            if all(metric.labels.get(k) == v for k, v in match.items()):
                yield metric

    def total(self, name: str, **match) -> int:
        """Sum of every matching counter's value (0 if none exist)."""
        return sum(m.value for m in self.find(name, **match))

    # -- cross-process merging -------------------------------------------------
    def snapshot(self) -> list:
        """A picklable dump of every instrument, for shipping a shard's
        metrics back to the coordinator (see :mod:`repro.sim.shard`).

        Kept intentionally plain (nested tuples/lists of primitives) so it
        survives ``multiprocessing`` pipes without custom reducers.
        """
        out = []
        for (name, label_items), metric in sorted(self._metrics.items()):
            labels = list(label_items)
            if isinstance(metric, Counter):
                out.append(("counter", name, labels, metric.value))
            elif isinstance(metric, Gauge):
                out.append(("gauge", name, labels,
                            list(metric.times), list(metric.values),
                            metric.count, metric._last))
            else:
                out.append(("histogram", name, labels, metric._count,
                            metric._total, list(metric.observations),
                            sorted((edge, v, tid) for edge, (v, tid)
                                   in metric.exemplars.items())))
        return out

    def merge_snapshot(self, snapshot: list) -> None:
        """Fold a :meth:`snapshot` into this registry (additive merge).

        Counters add; gauge series concatenate then re-sort by sample
        time; histograms combine exact count/total accumulators and pool
        the retained samples (re-capped if the pooled sample exceeds the
        retention bound).  Merging shard snapshots in shard order is
        deterministic, so merged digests are reproducible.
        """
        for entry in snapshot:
            kind, name, labels = entry[0], entry[1], dict(entry[2])
            if kind == "counter":
                self.counter(name, **labels).value += entry[3]
            elif kind == "gauge":
                gauge = self.gauge(name, **labels)
                gauge._count += entry[5] if len(entry) > 5 else len(entry[3])
                gauge.times.extend(entry[3])
                gauge.values.extend(entry[4])
                series = sorted(zip(gauge.times, gauge.values))
                gauge.times = [t for t, _ in series]
                gauge.values = [v for _, v in series]
                incoming_last = entry[6] if len(entry) > 6 else None
                if incoming_last is not None:
                    incoming_last = tuple(incoming_last)
                    if gauge._last is None or incoming_last[0] >= gauge._last[0]:
                        gauge._last = incoming_last
                while len(gauge.values) >= _GAUGE_CAP:
                    del gauge.times[::2]
                    del gauge.values[::2]
                    gauge._stride *= 2
            elif kind == "histogram":
                hist = self.histogram(name, **labels)
                hist._count += entry[3]
                hist._total += entry[4]
                hist.observations.extend(entry[5])
                hist._sorted = None
                while len(hist.observations) >= _HISTOGRAM_CAP:
                    del hist.observations[::2]
                    hist._stride *= 2
                if len(entry) > 6:
                    for edge, value, tid in entry[6]:
                        hist.exemplars[edge] = (value, tid)
                        hist.last_trace_id = tid
            else:
                raise ValueError(f"unknown snapshot entry kind {kind!r}")

    def as_dict(self) -> dict:
        """A plain serializable snapshot, for reports and debugging."""
        out = {}
        for (name, label_items), metric in sorted(self._metrics.items()):
            key = name
            if label_items:
                key += "{" + ",".join(f"{k}={v}" for k, v in label_items) + "}"
            if isinstance(metric, Counter):
                out[key] = metric.value
            elif isinstance(metric, Gauge):
                entry = {"last": metric.value, "samples": len(metric.times)}
                if metric.truncated:
                    # The stored series is decimated; surface how much the
                    # cap dropped (the live stream saw everything).
                    entry["sample_dropped"] = metric.dropped
                out[key] = entry
            else:
                entry = {"count": metric.count, "sum": metric.total}
                if metric.count:
                    entry.update(
                        mean=metric.mean,
                        p50=metric.p50,
                        p95=metric.p95,
                        p99=metric.p99,
                    )
                if metric.truncated:
                    # Percentiles above are estimates over the retained
                    # sample; surface how much the cap dropped.
                    entry["sample_dropped"] = metric.dropped
                if metric.exemplars:
                    entry["exemplars"] = [
                        {"le": edge, "value": value, "trace_id": tid}
                        for edge, (value, tid) in sorted(metric.exemplars.items())
                    ]
                out[key] = entry
        return out

    def __len__(self):
        return len(self._metrics)
