"""ONNX-Runtime-like inference session.

Call-stream shape (mirroring what DGSF observes from real ONNX Runtime):

* session creation queries the device, creates one cuDNN and one cuBLAS
  handle, walks the graph creating/setting descriptors per layer, uploads
  weights in per-layer chunks, and runs a short warm-up,
* each ``run`` creates a few fresh descriptors (ONNX Runtime re-binds
  shapes per call), uploads the batch, enqueues a stream of cuDNN/cuBLAS
  ops and glue kernels (all enqueue-only → batchable under DGSF), then
  synchronizes and downloads the outputs.

The paper measures DGSF cutting ONNX Runtime's forwarded calls by up to
48% — here that emerges from the descriptor/launch mix.
"""

from __future__ import annotations

from typing import Generator, Optional


from repro.errors import SimulationError
from repro.mllib.model import ModelSpec
from repro.mllib.tensor import DeviceTensor

__all__ = ["OnnxInferenceSession"]


class OnnxInferenceSession:
    """An InferenceSession bound to one GPU session facade."""

    def __init__(self, env, gpu, spec: ModelSpec):
        self.env = env
        self.gpu = gpu
        self.spec = spec
        self.weights: Optional[DeviceTensor] = None
        self.workspace: Optional[DeviceTensor] = None
        self.input_buf: Optional[DeviceTensor] = None
        self.output_buf: Optional[DeviceTensor] = None
        self._cudnn = None
        self._cublas = None
        self._loaded = False

    # -- model loading ------------------------------------------------------------
    def load(self) -> Generator:
        """Create handles, bind descriptors, upload weights, warm up."""
        gpu, spec = self.gpu, self.spec
        # device discovery: ORT picks the best visible GPU
        count = yield from gpu.cudaGetDeviceCount()
        for d in range(count):
            yield from gpu.cudaGetDeviceProperties(d)
        yield from gpu.cudaSetDevice(0)
        if spec.uses_cudnn:
            self._cudnn = yield from gpu.cudnnCreate()
        if spec.uses_cublas:
            self._cublas = yield from gpu.cublasCreate()
        # graph walk: descriptor create+set pairs
        for _ in range(spec.load_descriptor_calls):
            desc = yield from gpu.cudnnCreateDescriptor("tensor")
            yield from gpu.cudnnSetDescriptor(desc, layout="nchw")
        # weight upload: one allocation, chunked per layer
        weights_ptr = yield from gpu.cudaMalloc(spec.weight_bytes)
        self.weights = DeviceTensor(weights_ptr, spec.weight_bytes)
        chunk = max(1, spec.weight_bytes // max(1, spec.n_layers))
        uploaded = 0
        while uploaded < spec.weight_bytes:
            size = min(chunk, spec.weight_bytes - uploaded)
            yield from gpu.memcpyH2D(weights_ptr + uploaded, size, sync=False)
            uploaded += size
        workspace_ptr = yield from gpu.cudaMalloc(spec.workspace_bytes)
        self.workspace = DeviceTensor(workspace_ptr, spec.workspace_bytes)
        # warm-up: weight reformatting etc.
        if spec.uses_cudnn and self._cudnn is not None:
            yield from gpu.cudnnOp(self._cudnn, "warmup", spec.load_work_s, sync=True)
        else:
            fptr = yield from gpu.cudaGetFunction("timed")
            yield from gpu.cudaLaunchKernel(fptr, args=(spec.load_work_s,))
            yield from gpu.cudaDeviceSynchronize()
        self._loaded = True

    # -- inference ---------------------------------------------------------------------
    def run(self, input_bytes: int, output_bytes: int = 1 << 14) -> Generator:
        """One batch: upload, enqueue the op stream, sync, download."""
        if not self._loaded:
            raise SimulationError("session not loaded")
        gpu, spec = self.gpu, self.spec
        if self.input_buf is None or self.input_buf.nbytes < input_bytes:
            ptr = yield from gpu.cudaMalloc(max(input_bytes, 1))
            self.input_buf = DeviceTensor(ptr, max(input_bytes, 1))
        if self.output_buf is None:
            ptr = yield from gpu.cudaMalloc(max(output_bytes, 1))
            self.output_buf = DeviceTensor(ptr, max(output_bytes, 1))
        # per-run descriptor churn
        descs = []
        for _ in range(spec.infer_descriptor_calls):
            d = yield from gpu.cudnnCreateDescriptor("tensor")
            descs.append(d)
        yield from gpu.memcpyH2D(self.input_buf.ptr, input_bytes, sync=True)
        # host-side pre/post-processing: wall time with no kernel resident
        if spec.host_work_per_batch_s > 0:
            yield self.env.timeout(spec.host_work_per_batch_s)
        # the op stream: interleave cudnn/cublas/launch enqueues with the
        # unavoidable synchronous round trips (stream waits, error checks)
        n_ops = spec.cudnn_ops_per_batch + spec.cublas_ops_per_batch
        per_op = spec.batch_work_s / max(1, n_ops)
        syncs_per_op, syncs_extra = divmod(spec.sync_ops_per_batch, max(1, n_ops))
        for i in range(spec.cudnn_ops_per_batch):
            yield from gpu.cudnnOp(self._cudnn, "conv_fwd", per_op)
            for _ in range(syncs_per_op):
                yield from gpu.cudaStreamSynchronize(0)
        for i in range(spec.cublas_ops_per_batch):
            yield from gpu.cublasOp(self._cublas, "gemm", per_op)
            for _ in range(syncs_per_op):
                yield from gpu.cudaStreamSynchronize(0)
        for _ in range(syncs_extra):
            yield from gpu.cudaStreamSynchronize(0)
        fptr = yield from gpu.cudaGetFunction("timed_light")
        for _ in range(spec.launches_per_batch):
            yield from gpu.pushCallConfiguration()
            yield from gpu.cudaLaunchKernel(fptr, args=(0.0,))
        yield from gpu.cudaDeviceSynchronize()
        out = yield from gpu.memcpyD2H(self.output_buf.ptr, output_bytes)
        for d in descs:
            yield from gpu.cudnnDestroyDescriptor(d)
        return out

    # -- teardown ---------------------------------------------------------------------------
    def close(self) -> Generator:
        for tensor in (self.weights, self.workspace, self.input_buf, self.output_buf):
            if tensor is not None:
                yield from self.gpu.cudaFree(tensor.ptr)
        self.weights = self.workspace = self.input_buf = self.output_buf = None
        self._loaded = False
