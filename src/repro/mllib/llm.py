"""LLM serving sessions: autoregressive decode over the DGSF facade.

The six paper workloads are one-shot inference; modern serverless-GPU
traffic is autoregressive LLM serving, whose per-token decode loops and
growing KV caches stress exactly the layers DGSF disaggregates (ROADMAP
item 3).  Revati (arXiv:2601.00397) shows GPU-free time-warp emulation
reproduces LLM serving dynamics faithfully — our sim-time substrate is
that — so the session here models the *call stream* an LLM engine makes
through the guest library:

* ``load()`` uploads the weights like any model (one allocation, chunked
  H2D copies), then configures a server-side decode engine
  (:class:`repro.core.decode.DecodeEngine`) via ``llmConfigure``,
* ``serve()`` submits chat requests as they arrive and drives the decode
  loop one ``llmStep`` RPC per iteration — the engine admits/evicts
  sequences between iterations (continuous batching) and returns the
  tokens emitted, which the session timestamps on receipt: time-to-first-
  token and inter-token latency are measured where a client would see
  them, after the reply network hop,
* every emitted token becomes a trace instant on the invocation's span
  (token streaming), and per-token latencies/counters go to the metrics
  registry labeled by workload and batching mode.

KV-cache memory is *not* modeled here: the server-side engine allocates
real simulated device pages and charges them through the monitor's
ledger, so cache pressure interacts with feasibility, imbalance
detection, migration, and the GPU-memory SLO rule.
"""

from __future__ import annotations

import struct
import zlib
from dataclasses import dataclass
from typing import Generator, Optional

import numpy as np

from repro.errors import ConfigurationError, SimulationError

__all__ = ["LlmModelSpec", "ChatRequest", "make_chat_trace", "LlmSession"]


@dataclass(frozen=True)
class LlmModelSpec:
    """Cost/shape parameters of one served LLM."""

    name: str
    #: parameter bytes uploaded at load (one allocation, chunked copies)
    weight_bytes: int
    #: KV-cache bytes appended per token of context (all layers)
    kv_bytes_per_token: int
    #: tokens per KV page — pages are the allocation granularity, as in
    #: paged-attention engines; growth allocates page by page
    kv_page_tokens: int = 64
    #: prefill cost per prompt token (recompute pays this again)
    prefill_s_per_token: float = 2e-4
    #: fixed cost of one decode iteration (kernel launches, sampling)
    decode_base_s: float = 8e-3
    #: marginal cost per active sequence in an iteration — deliberately
    #: sublinear per sequence, which is why batching wins
    decode_s_per_seq: float = 2e-3
    #: engine-side bound on concurrently decoding sequences
    max_batch: int = 8

    def __post_init__(self):
        if self.weight_bytes <= 0:
            raise ConfigurationError("weight_bytes must be positive")
        if self.kv_bytes_per_token <= 0:
            raise ConfigurationError("kv_bytes_per_token must be positive")
        if self.kv_page_tokens <= 0:
            raise ConfigurationError("kv_page_tokens must be positive")
        if self.prefill_s_per_token < 0:
            raise ConfigurationError("prefill_s_per_token must be non-negative")
        if self.decode_base_s <= 0:
            raise ConfigurationError("decode_base_s must be positive")
        if self.decode_s_per_seq < 0:
            raise ConfigurationError("decode_s_per_seq must be non-negative")
        if self.max_batch <= 0:
            raise ConfigurationError("max_batch must be positive")


@dataclass(frozen=True)
class ChatRequest:
    """One chat turn in a workload trace."""

    req_id: int
    #: arrival offset from the start of serving (seconds)
    arrival_offset_s: float
    prompt_tokens: int
    output_tokens: int


def make_chat_trace(
    n_requests: int,
    mean_gap_s: float,
    prompt_mean_tokens: int,
    output_mean_tokens: int,
    seed: int,
    long_context_frac: float = 0.0,
    long_prompt_tokens: int = 0,
) -> list[ChatRequest]:
    """A deterministic chat-arrival trace.

    Seeded by the workload's fixed ``trace_seed`` — never by invocation
    id, which is process-global and not seed-stable — so every invocation
    of a workload replays the identical trace and token counts are
    seed-stable (the determinism golden).  Prompt/output lengths are
    exponential with a floor; a ``long_context_frac`` fraction of prompts
    is replaced by ``long_prompt_tokens`` outliers.
    """
    if n_requests <= 0:
        raise ConfigurationError("n_requests must be positive")
    if mean_gap_s < 0:
        raise ConfigurationError("mean_gap_s must be non-negative")
    if not 0.0 <= long_context_frac <= 1.0:
        raise ConfigurationError("long_context_frac must be in [0, 1]")
    if long_context_frac > 0 and long_prompt_tokens <= 0:
        raise ConfigurationError(
            "long_prompt_tokens must be positive when outliers are enabled"
        )
    rng = np.random.default_rng(seed)
    gaps = rng.exponential(mean_gap_s, size=n_requests) if mean_gap_s else np.zeros(n_requests)
    arrivals = np.concatenate([[0.0], np.cumsum(gaps)[:-1]])
    prompts = np.maximum(4, rng.exponential(prompt_mean_tokens, size=n_requests).astype(int))
    outputs = np.maximum(4, rng.exponential(output_mean_tokens, size=n_requests).astype(int))
    long_draw = rng.random(n_requests)
    requests = []
    for i in range(n_requests):
        prompt = int(prompts[i])
        if long_context_frac > 0 and long_draw[i] < long_context_frac:
            prompt = int(long_prompt_tokens)
        requests.append(ChatRequest(
            req_id=i,
            arrival_offset_s=float(arrivals[i]),
            prompt_tokens=prompt,
            output_tokens=int(outputs[i]),
        ))
    return requests


class LlmSession:
    """An LLM engine bound to one GPU session facade."""

    def __init__(self, env, gpu, spec: LlmModelSpec, metrics=None,
                 workload: str = "llm", span=None):
        self.env = env
        self.gpu = gpu
        self.spec = spec
        self.metrics = metrics
        self.workload = workload
        self.span = span
        self._weights_ptr: Optional[int] = None
        self._loaded = False
        #: CRC32 over the emission stream ``(req, token, t)`` — the
        #: bit-identical determinism digest for a served trace
        self.emission_crc = 0
        self.tokens_emitted = 0

    # -- model loading ------------------------------------------------------------
    def load(self, mode: str = "continuous") -> Generator:
        """Upload weights, then configure the server-side decode engine."""
        gpu, spec = self.gpu, self.spec
        count = yield from gpu.cudaGetDeviceCount()
        for d in range(count):
            yield from gpu.cudaGetDeviceProperties(d)
        yield from gpu.cudaSetDevice(0)
        ptr = yield from gpu.cudaMalloc(spec.weight_bytes)
        self._weights_ptr = ptr
        chunk = max(1, spec.weight_bytes // 16)
        uploaded = 0
        while uploaded < spec.weight_bytes:
            size = min(chunk, spec.weight_bytes - uploaded)
            yield from gpu.memcpyH2D(ptr + uploaded, size, sync=False)
            uploaded += size
        yield from gpu.cudaDeviceSynchronize()
        yield from gpu.llmConfigure(
            kv_bytes_per_token=spec.kv_bytes_per_token,
            kv_page_tokens=spec.kv_page_tokens,
            prefill_s_per_token=spec.prefill_s_per_token,
            decode_base_s=spec.decode_base_s,
            decode_s_per_seq=spec.decode_s_per_seq,
            max_batch=spec.max_batch,
            mode=mode,
        )
        self._loaded = True

    # -- serving ---------------------------------------------------------------------
    def serve(self, requests: list[ChatRequest], mode: str = "continuous") -> Generator:
        """Drive the decode loop over a chat trace; returns a summary.

        Requests are submitted at their arrival offsets; between arrivals
        the session repeatedly calls ``llmStep`` — one RPC per decode
        iteration — and timestamps the returned token emissions.
        """
        if not self._loaded:
            raise SimulationError("LLM session not loaded")
        env, gpu = self.env, self.gpu
        ordered = sorted(requests, key=lambda r: (r.arrival_offset_s, r.req_id))
        t0 = env.now
        arrive: dict[int, float] = {}
        last_t: dict[int, float] = {}
        finish: dict[int, float] = {}
        inflight: set[int] = set()
        next_idx = 0
        hist_token = hist_ttft = ctr_tokens = None
        if self.metrics is not None:
            labels = {"workload": self.workload, "mode": mode}
            hist_token = self.metrics.histogram("llm.token_latency_s", **labels)
            hist_ttft = self.metrics.histogram("llm.ttft_s", **labels)
            ctr_tokens = self.metrics.counter("llm.tokens", **labels)
        # exemplar link: latency observations carry the serving trace id
        # so an SLO alert (or a histogram bucket) can name the trace
        trace_id = self.span.trace_id if self.span is not None else None
        while next_idx < len(ordered) or inflight:
            # submit every request that has arrived by now
            while (next_idx < len(ordered)
                   and ordered[next_idx].arrival_offset_s <= env.now - t0 + 1e-12):
                req = ordered[next_idx]
                yield from gpu.llmSubmit(
                    req.req_id, req.prompt_tokens, req.output_tokens
                )
                arrive[req.req_id] = env.now
                inflight.add(req.req_id)
                next_idx += 1
            if not inflight:
                # idle until the next arrival — nothing is decoding
                yield env.timeout(t0 + ordered[next_idx].arrival_offset_s - env.now)
                continue
            emissions = yield from gpu.llmStep()
            t = env.now
            if not emissions:
                raise SimulationError(
                    "llmStep made no progress with sequences in flight"
                )
            for req_id, token_n, done in emissions:
                prev = last_t.get(req_id, arrive[req_id])
                if hist_token is not None:
                    hist_token.observe(t - prev, trace_id=trace_id)
                    if token_n == 1:
                        hist_ttft.observe(t - arrive[req_id], trace_id=trace_id)
                last_t[req_id] = t
                self.tokens_emitted += 1
                self.emission_crc = zlib.crc32(
                    struct.pack("<qqd", req_id, token_n, t), self.emission_crc
                )
                if self.span is not None:
                    self.span.instant("llm_token", req=req_id, n=token_n, done=done)
                if done:
                    finish[req_id] = t
                    inflight.discard(req_id)
            if ctr_tokens is not None:
                ctr_tokens.inc(len(emissions))
        stats = yield from gpu.llmStats()
        if (self.span is not None and stats.get("n_preemptions")
                and getattr(self.span.tracer, "_sampler", None) is not None):
            # tail-keep hook: kv_preempt is an "interesting" instant, so
            # a sampled run always retains preemption-storm traces.  Only
            # emitted under a sampler — unsampled trace digests (goldens,
            # BENCH_shard) stay byte-identical to the pre-sampling export.
            self.span.instant("kv_preempt", n=int(stats["n_preemptions"]))
        return {
            "n_requests": len(ordered),
            "n_tokens": self.tokens_emitted,
            "emission_crc": self.emission_crc,
            "last_finish_s": round(max(finish.values()) - t0, 9) if finish else 0.0,
            **stats,
        }

    # -- teardown ---------------------------------------------------------------------
    def close(self) -> Generator:
        if self._weights_ptr is not None:
            yield from self.gpu.cudaFree(self._weights_ptr)
            self._weights_ptr = None
        self._loaded = False
