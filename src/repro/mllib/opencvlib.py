"""OpenCV-CUDA-like image operations over the GPU session facade.

Used by image-preprocessing stages (and the examples): upload a frame,
run resize/filter kernels, download the result.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Generator

import numpy as np

__all__ = ["CvGpuMat", "cv_upload", "cv_resize", "cv_filter", "cv_download"]


@dataclass
class CvGpuMat:
    """GpuMat: a device image."""

    ptr: int
    nbytes: int
    height: int
    width: int
    channels: int = 3


def cv_upload(gpu, frame: np.ndarray) -> Generator:
    """cv::cuda::GpuMat::upload."""
    h, w = frame.shape[:2]
    c = frame.shape[2] if frame.ndim == 3 else 1
    nbytes = int(frame.nbytes)
    ptr = yield from gpu.cudaMalloc(nbytes)
    yield from gpu.memcpyH2D(ptr, nbytes, payload=frame.view(np.uint8).ravel())
    return CvGpuMat(ptr, nbytes, h, w, c)


def cv_resize(gpu, src: CvGpuMat, out_h: int, out_w: int,
              work_s: float = 2e-4) -> Generator:
    """cv::cuda::resize — allocates the destination and launches."""
    nbytes = out_h * out_w * src.channels
    dst_ptr = yield from gpu.cudaMalloc(max(nbytes, 1))
    fptr = yield from gpu.cudaGetFunction("timed_light")
    yield from gpu.cudaLaunchKernel(
        fptr, grid=(max(1, out_h // 16), max(1, out_w // 16), 1),
        block=(16, 16, 1), args=(work_s,),
    )
    return CvGpuMat(dst_ptr, max(nbytes, 1), out_h, out_w, src.channels)


def cv_filter(gpu, src: CvGpuMat, work_s: float = 3e-4) -> Generator:
    """In-place filter (Gaussian/normalization stand-in)."""
    fptr = yield from gpu.cudaGetFunction("timed_light")
    yield from gpu.cudaLaunchKernel(fptr, args=(work_s,))
    return src


def cv_download(gpu, mat: CvGpuMat) -> Generator:
    """GpuMat::download — synchronizes then copies back."""
    yield from gpu.cudaDeviceSynchronize()
    data = yield from gpu.memcpyD2H(mat.ptr, mat.nbytes)
    return data
