"""Model specifications: the knobs that shape a framework's call stream.

The DGSF optimizations act on *call mixes* — how many descriptor calls a
model load makes, how many enqueue-only launches an inference makes, how
much actual GPU work there is.  A :class:`ModelSpec` captures exactly
those quantities for one model; :mod:`repro.workloads.params` instantiates
one per paper workload, calibrated so the phase breakdowns land near the
paper's Figures 3/4.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import ConfigurationError

__all__ = ["ModelSpec"]


@dataclass(frozen=True)
class ModelSpec:
    """Shape of one model's GPU API traffic."""

    name: str
    #: serialized model size (bytes uploaded H2D during load)
    weight_bytes: int
    #: persistent device working set besides weights (activations, workspace)
    workspace_bytes: int
    #: layers (drives per-layer load traffic)
    n_layers: int
    #: descriptor create+set call pairs during model *load*
    load_descriptor_calls: int
    #: descriptor create/set/destroy calls per inference *batch*
    infer_descriptor_calls: int
    #: enqueue-only kernel launches per batch (glue/elementwise kernels)
    launches_per_batch: int
    #: cuDNN ops per batch (conv/bn/act) and cuBLAS ops per batch (gemm)
    cudnn_ops_per_batch: int
    cublas_ops_per_batch: int
    #: standalone GPU seconds of compute per batch
    batch_work_s: float
    #: SM occupancy of this model's kernels (processor-sharing demand)
    gpu_demand: float
    #: synchronous round trips interleaved with the op stream per batch
    #: (stream queries, intermediate result reads, error checks) — these
    #: cannot be batched and are the source of DGSF's residual inference
    #: slowdown vs native (e.g. face detection +28%, §VIII-B)
    sync_ops_per_batch: int = 0
    #: host-side (CPU) seconds per batch: pre/post-processing
    host_work_per_batch_s: float = 0.0
    #: GPU seconds of load-time work (weight reformatting, warmup)
    load_work_s: float = 0.05
    uses_cudnn: bool = True
    uses_cublas: bool = True

    def __post_init__(self):
        if self.weight_bytes <= 0:
            raise ConfigurationError(f"{self.name}: weight_bytes must be positive")
        if not 0 < self.gpu_demand <= 1.0:
            raise ConfigurationError(f"{self.name}: gpu_demand must be in (0, 1]")
        if self.batch_work_s < 0 or self.load_work_s < 0:
            raise ConfigurationError(f"{self.name}: negative work")
