"""TensorFlow-1.x-like session.

Two behaviours matter for the paper:

* **Chattiness** — TF's runtime emits an extremely high rate of
  enqueue-only and host-state calls (push-call-configurations, pointer
  queries, small launches).  DGSF reduces TF's forwarded APIs "by up to
  96%"; here that emerges because almost all of TF's traffic is
  localizable or batchable.
* **The greedy arena allocator** — TF grabs a large device arena up
  front.  CovidCTNet runs *two* models whose allocators "for a brief
  moment during execution" hold 13 538 MB together, forcing the function
  to declare an entire GPU even though its steady working set is 7.8 GB
  (paper §VII).  :meth:`TfSession.load` reproduces the transient spike.
"""

from __future__ import annotations

from typing import Generator, Optional

from repro.errors import SimulationError
from repro.mllib.model import ModelSpec
from repro.mllib.tensor import DeviceTensor

__all__ = ["TfSession"]


class TfSession:
    """A TF-like session for one model."""

    def __init__(self, env, gpu, spec: ModelSpec,
                 arena_bytes: Optional[int] = None):
        self.env = env
        self.gpu = gpu
        self.spec = spec
        #: transient allocator arena; defaults to 1.7× the working set,
        #: mimicking TF's growth-doubling allocator
        self.arena_bytes = arena_bytes
        self.arena: Optional[DeviceTensor] = None
        self.weights: Optional[DeviceTensor] = None
        self._cudnn = None
        self._cublas = None
        self._loaded = False

    def load(self, trim: bool = True) -> Generator:
        """Device discovery, arena grab, graph construction, weight upload.

        With ``trim=False`` the transient arena is kept until an explicit
        :meth:`trim_arena` — CovidCTNet loads *two* models whose arenas
        coexist briefly, creating the 13 538 MB spike (§VII).
        """
        gpu, spec = self.gpu, self.spec
        # TF "first asks how many GPUs there are, gets their properties and
        # makes the best fitting one active" (§V-B)
        count = yield from gpu.cudaGetDeviceCount()
        for d in range(count):
            yield from gpu.cudaGetDeviceProperties(d)
        yield from gpu.cudaSetDevice(0)
        self._cudnn = yield from gpu.cudnnCreate()
        self._cublas = yield from gpu.cublasCreate()
        # the greedy arena: transient allocation spike
        working = spec.weight_bytes + spec.workspace_bytes
        arena_size = self.arena_bytes if self.arena_bytes else int(working * 1.7)
        arena_ptr = yield from gpu.cudaMalloc(arena_size)
        self.arena = DeviceTensor(arena_ptr, arena_size)
        # graph construction: heavy descriptor + host-state churn
        for _ in range(spec.load_descriptor_calls):
            d = yield from gpu.cudnnCreateDescriptor("tensor")
            yield from gpu.cudnnSetDescriptor(d, layout="nhwc")
        for _ in range(spec.load_descriptor_calls // 2):
            hptr = yield from gpu.cudaMallocHost(4096)
            yield from gpu.cudaFreeHost(hptr)
        # weight upload into a dedicated allocation
        weights_ptr = yield from gpu.cudaMalloc(spec.weight_bytes)
        self.weights = DeviceTensor(weights_ptr, spec.weight_bytes)
        yield from gpu.memcpyH2D(weights_ptr, spec.weight_bytes, sync=True)
        yield from gpu.cudnnOp(self._cudnn, "graph_warmup", spec.load_work_s, sync=True)
        self._loaded = True
        if trim:
            yield from self.trim_arena()

    def trim_arena(self) -> Generator:
        """Release the transient arena down to the steady working set."""
        if self.arena is None:
            raise SimulationError("no arena to trim")
        yield from self.gpu.cudaFree(self.arena.ptr)
        arena_ptr = yield from self.gpu.cudaMalloc(self.spec.workspace_bytes)
        self.arena = DeviceTensor(arena_ptr, self.spec.workspace_bytes)

    def run(self, input_bytes: int, output_bytes: int = 1 << 14) -> Generator:
        """One batch through the TF graph executor."""
        if not self._loaded:
            raise SimulationError("session not loaded")
        gpu, spec = self.gpu, self.spec
        yield from gpu.memcpyH2D(self.arena.ptr, input_bytes, sync=True)
        # host-side pre/post-processing (feed/fetch marshalling)
        if spec.host_work_per_batch_s > 0:
            yield self.env.timeout(spec.host_work_per_batch_s)
        fptr = yield from gpu.cudaGetFunction("timed_light")
        n_ops = spec.cudnn_ops_per_batch + spec.cublas_ops_per_batch
        per_op = spec.batch_work_s / max(1, n_ops)
        # TF interleaves several glue launches and placement checks with
        # every heavy op — the source of its extreme chattiness
        glue_per_op = max(3, (3 * spec.launches_per_batch) // max(1, n_ops))
        for i in range(spec.cudnn_ops_per_batch):
            for _ in range(glue_per_op):
                yield from gpu.pushCallConfiguration()
                yield from gpu.cudaLaunchKernel(fptr, args=(0.0,))
            # pointer-attribute churn (TF checks feed/fetch placement)
            yield from gpu.cudaPointerGetAttributes(self.arena.ptr)
            yield from gpu.cudnnOp(self._cudnn, "conv_fwd", per_op)
        for i in range(spec.cublas_ops_per_batch):
            for _ in range(glue_per_op):
                yield from gpu.pushCallConfiguration()
                yield from gpu.cudaLaunchKernel(fptr, args=(0.0,))
            yield from gpu.cublasOp(self._cublas, "gemm", per_op)
        # TF-1.x session.run fetches force synchronous stream waits
        for _ in range(spec.sync_ops_per_batch):
            yield from gpu.cudaStreamSynchronize(0)
        yield from gpu.cudaDeviceSynchronize()
        out = yield from gpu.memcpyD2H(self.arena.ptr, output_bytes)
        return out

    def close(self) -> Generator:
        for tensor in (self.arena, self.weights):
            if tensor is not None:
                yield from self.gpu.cudaFree(tensor.ptr)
        self.arena = self.weights = None
        self._loaded = False
