"""Device tensor handle shared by the client libraries."""

from __future__ import annotations

from dataclasses import dataclass

__all__ = ["DeviceTensor"]


@dataclass
class DeviceTensor:
    """A chunk of device memory with shape metadata (host-side view)."""

    ptr: int
    nbytes: int
    shape: tuple[int, ...] = ()

    def __post_init__(self):
        if self.nbytes <= 0:
            raise ValueError("tensor must have positive size")
