"""CuPy-like array library over the GPU session facade.

Only the pieces scientific workloads need: array upload, elementwise
kernels, reductions, download.  Arrays carry real payload windows, so
``asnumpy(array)`` returns genuinely computed bytes.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Generator

import numpy as np

from repro.errors import SimulationError

__all__ = ["CupyContext", "CupyArray"]


@dataclass
class CupyArray:
    """Device array handle."""

    ptr: int
    nbytes: int
    shape: tuple[int, ...]
    dtype: str = "float32"


class CupyContext:
    """Factory/executor for CuPy-style operations on one GPU session."""

    def __init__(self, env, gpu):
        self.env = env
        self.gpu = gpu
        self._live: set[int] = set()

    def array(self, host: np.ndarray) -> Generator:
        """cp.array: allocate + H2D."""
        nbytes = int(host.nbytes)
        ptr = yield from self.gpu.cudaMalloc(nbytes)
        yield from self.gpu.memcpyH2D(
            ptr, nbytes, payload=np.ascontiguousarray(host).view(np.uint8).ravel()
        )
        self._live.add(ptr)
        return CupyArray(ptr, nbytes, tuple(host.shape), str(host.dtype))

    def empty(self, shape: tuple[int, ...], itemsize: int = 4) -> Generator:
        n = int(np.prod(shape)) * itemsize
        ptr = yield from self.gpu.cudaMalloc(max(n, 1))
        self._live.add(ptr)
        return CupyArray(ptr, max(n, 1), tuple(shape))

    def axpy(self, a: float, x: CupyArray, y: CupyArray,
             work_s: float = 1e-4) -> Generator:
        """y = a*x + y, elementwise on the device."""
        n = min(x.nbytes, y.nbytes) // 4
        fptr = yield from self.gpu.cudaGetFunction("axpy")
        yield from self.gpu.cudaLaunchKernel(
            fptr, grid=(max(1, n // 256), 1, 1), block=(256, 1, 1),
            args=(work_s, a, x.ptr, y.ptr, n),
        )
        return y

    def fill(self, x: CupyArray, value: int, work_s: float = 1e-4) -> Generator:
        fptr = yield from self.gpu.cudaGetFunction("fill")
        yield from self.gpu.cudaLaunchKernel(
            fptr, args=(work_s, x.ptr, x.nbytes, value)
        )
        return x

    def asnumpy(self, x: CupyArray) -> Generator:
        """Synchronize and download."""
        yield from self.gpu.cudaDeviceSynchronize()
        data = yield from self.gpu.memcpyD2H(x.ptr, x.nbytes)
        return data

    def free(self, x: CupyArray) -> Generator:
        if x.ptr not in self._live:
            raise SimulationError("double free of CupyArray")
        self._live.discard(x.ptr)
        yield from self.gpu.cudaFree(x.ptr)

    def free_all(self) -> Generator:
        for ptr in list(self._live):
            yield from self.gpu.cudaFree(ptr)
        self._live.clear()
