"""Client-side GPU libraries.

The paper's workloads never call CUDA directly (except K-means and the
synthetic microbenchmark): they go through TensorFlow, ONNX Runtime, CuPy
or OpenCV, and it is those libraries' *API call streams* that DGSF
interposes.  This package provides behavioural stand-ins that emit
realistic call mixes against the GPU session facade:

* :mod:`~repro.mllib.onnxrt` — ONNX-Runtime-like ``InferenceSession``:
  descriptor-heavy model loading, per-batch descriptor churn, mixed
  cuDNN/cuBLAS inference ops (DGSF cuts its forwarded calls by ~48%).
* :mod:`~repro.mllib.tflib` — TensorFlow-1.x-like session: an even
  chattier call stream (~96% reducible) plus the greedy arena allocator
  whose transient peak forces CovidCTNet to request a whole GPU.
* :mod:`~repro.mllib.cupylib` — CuPy-like arrays for scientific code.
* :mod:`~repro.mllib.opencvlib` — OpenCV-CUDA-like image ops.

Each library method is a generator; call with ``yield from`` inside a
simulation process, passing the GPU session facade (a
:class:`repro.core.guest.GuestLibrary` or
:class:`repro.core.deployment.NativeGpuSession`).
"""

from repro.mllib.model import ModelSpec
from repro.mllib.tensor import DeviceTensor
from repro.mllib.onnxrt import OnnxInferenceSession
from repro.mllib.tflib import TfSession
from repro.mllib.cupylib import CupyContext, CupyArray
from repro.mllib.opencvlib import CvGpuMat, cv_upload, cv_resize, cv_filter, cv_download
from repro.mllib.llm import LlmModelSpec, ChatRequest, make_chat_trace, LlmSession

__all__ = [
    "ModelSpec",
    "DeviceTensor",
    "OnnxInferenceSession",
    "TfSession",
    "CupyContext",
    "CupyArray",
    "CvGpuMat",
    "cv_upload",
    "cv_resize",
    "cv_filter",
    "cv_download",
    "LlmModelSpec",
    "ChatRequest",
    "make_chat_trace",
    "LlmSession",
]
