"""CUDA error codes and the exception used to surface them.

Real CUDA returns status codes; raising an exception carrying the code is
the natural Python idiom and keeps call sites honest (a forgotten check
cannot silently continue).
"""

from __future__ import annotations

import enum

from repro.errors import ReproError

__all__ = ["cudaError", "CUresult", "CudaError"]


class cudaError(enum.IntEnum):
    """Runtime API status codes (subset relevant to the reproduction)."""

    cudaSuccess = 0
    cudaErrorInvalidValue = 1
    cudaErrorMemoryAllocation = 2
    cudaErrorInitializationError = 3
    cudaErrorInvalidDevice = 101
    cudaErrorInvalidResourceHandle = 400
    cudaErrorNotSupported = 801
    cudaErrorInvalidAddressSpace = 717


class CUresult(enum.IntEnum):
    """Driver API status codes (subset)."""

    CUDA_SUCCESS = 0
    CUDA_ERROR_INVALID_VALUE = 1
    CUDA_ERROR_OUT_OF_MEMORY = 2
    CUDA_ERROR_NOT_INITIALIZED = 3
    CUDA_ERROR_INVALID_CONTEXT = 201
    CUDA_ERROR_MAP_FAILED = 205
    CUDA_ERROR_ALREADY_MAPPED = 208
    CUDA_ERROR_NOT_MAPPED = 211
    CUDA_ERROR_INVALID_HANDLE = 400
    CUDA_ERROR_NOT_FOUND = 500


class CudaError(ReproError):
    """A CUDA runtime/driver/library call failed.

    ``code`` is the :class:`cudaError` or :class:`CUresult` member the real
    API would have returned.
    """

    def __init__(self, code: enum.IntEnum, message: str = ""):
        self.code = code
        super().__init__(f"{code.name}: {message}" if message else code.name)
